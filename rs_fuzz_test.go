package nucleus

import (
	"fmt"
	"sort"
	"testing"

	"nucleus/internal/graph"
	inucleus "nucleus/internal/nucleus"
	"nucleus/internal/peel"
)

// rsPairs are the (r,s) pairs the fuzzer cycles through: the three
// first-class decompositions plus three genuinely generic pairs that
// exercise the FlatRS builder.
var rsPairs = [][2]int{{1, 2}, {2, 3}, {3, 4}, {1, 3}, {2, 4}, {1, 4}}

// fuzzGraph decodes fuzz bytes into a small graph. Vertex ids are masked
// to 5 bits and the edge count capped so clique enumeration stays cheap
// even for adversarial inputs ((r,s) up to (3,4) on ≤32 vertices).
func fuzzGraph(data []byte) *Graph {
	const maxEdges = 96
	var edges [][2]uint32
	for i := 0; i+1 < len(data) && len(edges) < maxEdges; i += 2 {
		edges = append(edges, [2]uint32{uint32(data[i] % 32), uint32(data[i+1] % 32)})
	}
	return graph.Build(-1, edges)
}

// kappaByVertexKey maps each cell's sorted vertex set to its κ value,
// making decompositions comparable across engines that number cells
// differently (FlatRS/Hyper enumeration order vs canonical edge or
// triangle ids).
func kappaByVertexKey(t *testing.T, inst inucleus.Instance, kappa []int32) map[string]int32 {
	t.Helper()
	out := make(map[string]int32, len(kappa))
	var buf []uint32
	for c := range kappa {
		buf = inst.CellVertices(int32(c), buf[:0])
		vs := append([]uint32(nil), buf...)
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		key := fmt.Sprint(vs)
		if prev, dup := out[key]; dup && prev != kappa[c] {
			t.Fatalf("cell %s appears twice with κ %d and %d", key, prev, kappa[c])
		}
		out[key] = kappa[c]
	}
	return out
}

// FuzzDecomposeRS differentially fuzzes the public generic-(r,s) entry
// point: for arbitrary small graphs, (r,s) pairs and thread counts, the
// parallel Peel path, the converged AND path, and an independent oracle —
// sequential bucket peeling over the materialized hypergraph — must agree
// on κ for every cell (matched by vertex set, so the comparison is robust
// to cell-id remapping between engines).
func FuzzDecomposeRS(f *testing.F) {
	for _, seed := range familySeedBytes() {
		f.Add(seed, uint8(1), uint8(3))
	}
	f.Add([]byte{0, 1, 1, 2, 2, 0, 0, 2}, uint8(4), uint8(2))
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, rsSel, threads uint8) {
		g := fuzzGraph(data)
		pair := rsPairs[int(rsSel)%len(rsPairs)]
		r, s := pair[0], pair[1]
		nThreads := 1 + int(threads%8)

		pr := DecomposeRS(g, r, s, Options{Algorithm: Peel, Threads: nThreads})
		ar := DecomposeRS(g, r, s, Options{Algorithm: AND, Threads: nThreads})
		if !ar.Converged {
			t.Fatalf("(%d,%d): AND did not converge", r, s)
		}
		if len(pr.Kappa) != len(ar.Kappa) {
			t.Fatalf("(%d,%d): Peel has %d cells, AND %d", r, s, len(pr.Kappa), len(ar.Kappa))
		}
		for c := range pr.Kappa {
			if pr.Kappa[c] != ar.Kappa[c] {
				t.Fatalf("(%d,%d) threads=%d: κ(%s) = %d via Peel, %d via AND",
					r, s, nThreads, pr.CellLabel(int32(c)), pr.Kappa[c], ar.Kappa[c])
			}
		}

		// Independent oracle: sequential peel over the materialized
		// hypergraph, compared by vertex-set key.
		oracle := inucleus.NewHyper(g, r, s)
		or := peel.Run(oracle)
		want := kappaByVertexKey(t, oracle, or.Kappa)
		got := kappaByVertexKey(t, pr.inst, pr.Kappa)
		if len(got) != len(want) {
			t.Fatalf("(%d,%d): %d cells, oracle has %d", r, s, len(got), len(want))
		}
		for key, k := range want {
			if gk, ok := got[key]; !ok {
				t.Fatalf("(%d,%d): oracle cell %s missing", r, s, key)
			} else if gk != k {
				t.Fatalf("(%d,%d) threads=%d: κ(%s) = %d, oracle %d", r, s, nThreads, key, gk, k)
			}
		}
		if pr.MaxKappa != or.MaxKappa {
			t.Fatalf("(%d,%d): MaxKappa %d, oracle %d", r, s, pr.MaxKappa, or.MaxKappa)
		}
	})
}

// familySeedBytes serializes small instances of the generator families as
// byte-pair edge lists for the fuzz corpus.
func familySeedBytes() [][]byte {
	gs := []*graph.Graph{
		graph.Complete(7),
		graph.CliqueChain(3, 4),
		graph.GnM(28, 70, 1),
		graph.BarabasiAlbert(30, 3, 2),
		graph.WattsStrogatz(30, 4, 0.2, 4),
		graph.PlantedCommunities(3, 8, 0.5, 10, 5),
	}
	var out [][]byte
	for _, g := range gs {
		var data []byte
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(uint32(u)) {
				if v > uint32(u) {
					data = append(data, byte(u), byte(v))
				}
			}
		}
		out = append(out, data)
	}
	return out
}
