# The lint target is the single static-analysis entry point: CI's lint
# job runs exactly `make lint`, so a clean local run is a clean CI run.
# See docs/DEVELOPMENT.md#static-analysis for the analyzer reference.

.PHONY: lint fmt test race build

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi
	go run ./cmd/nucleuslint ./...

fmt:
	gofmt -w .

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...
