// Quickstart: generate a small graph, compute its k-core, k-truss and
// (3,4) nucleus decompositions with the local AND algorithm, and verify
// against the peeling baseline.
package main

import (
	"fmt"

	"nucleus"
)

func main() {
	// A triangle-rich power-law graph: 1000 vertices, heavy-tailed degrees.
	g := nucleus.PowerLawCluster(1000, 6, 0.5, 42)
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.N(), g.M())

	for _, dec := range []nucleus.Decomposition{nucleus.KCore, nucleus.KTruss, nucleus.Nucleus34} {
		// The local asynchronous algorithm with plateau-skipping
		// notifications (the paper's fastest variant).
		local := nucleus.Decompose(g, dec, nucleus.Options{Algorithm: nucleus.AND})
		// The classic global peeling baseline.
		exact := nucleus.Decompose(g, dec, nucleus.Options{Algorithm: nucleus.Peel})

		agree := nucleus.ExactFraction(local.Kappa, exact.Kappa)
		fmt.Printf("%-16v cells=%-7d max-k=%-4d AND-iterations=%-3d agreement=%.0f%%\n",
			dec, len(local.Kappa), local.MaxKappa, local.Iterations, 100*agree)
	}

	// Intermediate results are usable approximations: stop after 2 sweeps.
	exact := nucleus.Decompose(g, nucleus.KTruss, nucleus.Options{Algorithm: nucleus.Peel})
	approx := nucleus.Decompose(g, nucleus.KTruss, nucleus.Options{Algorithm: nucleus.SND, MaxSweeps: 2})
	fmt.Printf("\nafter 2 SND sweeps: Kendall-Tau vs exact = %.3f, %.0f%% of truss numbers already exact\n",
		nucleus.KendallTau(approx.Kappa, exact.Kappa),
		100*nucleus.ExactFraction(approx.Kappa, exact.Kappa))
}
