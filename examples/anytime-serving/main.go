// Anytime serving: the paper's local algorithms converge monotonically
// from above (τ ≥ κ after every sweep — Theorem 1), so useful approximate
// hierarchies exist long before convergence. This example drives the
// nucleusd HTTP surface that exposes exactly that:
//
//  1. a deadline-budgeted synchronous query returns an in-budget τ bound
//     with approximate:true and convergence stats;
//  2. an async job streams per-sweep progress over SSE while it runs;
//  3. once the exact result is cached, a budgeted query quantifies its
//     own error against it;
//  4. a hopeless job is cancelled cooperatively mid-run.
//
// The demo graph is a long path: the slowest-converging core instance
// per cell count for SND (endpoint influence travels one hop per sweep),
// so the anytime machinery has thousands of sweeps to show itself on a
// graph that costs almost nothing to build.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"nucleus"
)

func main() {
	srv := nucleus.NewServer(nucleus.ServerConfig{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// A 6001-vertex path: full SND convergence needs ~3000 sweeps.
	const n = 6001
	var body strings.Builder
	for i := 0; i < n-1; i++ {
		fmt.Fprintf(&body, "%d %d\n", i, i+1)
	}
	resp, err := http.Post(ts.URL+"/graphs/path", "text/plain", strings.NewReader(body.String()))
	if err != nil {
		log.Fatalf("upload: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		log.Fatalf("upload: status %s", resp.Status)
	}
	fmt.Printf("uploaded path graph: n=%d\n\n", n)

	// --- 1. Budgeted synchronous queries. ------------------------------
	fmt.Println("== budgeted queries ==")
	for _, q := range []string{
		"maxSweeps=2",
		"max_ms=3",
	} {
		var out struct {
			Approximate bool    `json:"approximate"`
			Converged   bool    `json:"converged"`
			StoppedBy   string  `json:"stoppedBy"`
			Sweeps      int     `json:"sweeps"`
			MaxTau      int32   `json:"maxTau"`
			DurationMs  float64 `json:"durationMs"`
			Convergence struct {
				FractionStable float64 `json:"fractionStable"`
			} `json:"convergence"`
		}
		getJSON(ts.URL+"/graphs/path/decompose?dec=core&alg=snd&"+q, &out)
		fmt.Printf("?%-12s -> approximate=%-5v stoppedBy=%-8s sweeps=%-5d max-tau=%d stable=%.1f%% in %.1fms\n",
			q, out.Approximate, out.StoppedBy, out.Sweeps, out.MaxTau,
			100*out.Convergence.FractionStable, out.DurationMs)
	}

	// --- 2. Stream a full decomposition job over SSE. ------------------
	fmt.Println("\n== streaming job progress (SSE, sampled) ==")
	var jv struct {
		ID string `json:"id"`
	}
	postJSON(ts.URL+"/jobs", `{"graph":"path","decomposition":"core","algorithm":"snd"}`, &jv)
	streamResp, err := http.Get(ts.URL + "/jobs/" + jv.ID + "/stream")
	if err != nil {
		log.Fatal(err)
	}
	printed := 0
	event := ""
	sc := bufio.NewScanner(streamResp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			var s struct {
				Sweep          int     `json:"sweep"`
				MaxTau         int32   `json:"maxTau"`
				Updates        int64   `json:"updates"`
				FractionStable float64 `json:"fractionStable"`
				Snapshot       *struct {
					Sweep  int   `json:"sweep"`
					MaxTau int32 `json:"maxTau"`
				} `json:"snapshot"`
			}
			if err := json.Unmarshal([]byte(data), &s); err != nil {
				log.Fatalf("bad event %q: %v", data, err)
			}
			if event == "done" {
				fmt.Printf("done: converged after %d sweeps, exact max kappa %d\n",
					s.Snapshot.Sweep, s.Snapshot.MaxTau)
			} else if s.Sweep%500 == 0 || printed == 0 {
				fmt.Printf("sweep %5d: max-tau %d, %5d cells still updating, %.2f%% stable\n",
					s.Sweep, s.MaxTau, s.Updates, 100*s.FractionStable)
				printed++
			}
		}
	}
	streamResp.Body.Close()

	// --- 3. The budgeted query now knows its own error. ----------------
	fmt.Println("\n== accuracy of the 2-sweep bound (vs the now-cached exact result) ==")
	var acc struct {
		Accuracy *struct {
			MaxError      int32   `json:"maxError"`
			MeanError     float64 `json:"meanError"`
			ExactFraction float64 `json:"exactFraction"`
		} `json:"accuracy"`
	}
	getJSON(ts.URL+"/graphs/path/decompose?dec=core&alg=snd&maxSweeps=2", &acc)
	fmt.Printf("max error %d, mean error %.4f, %.2f%% of cells already exact\n",
		acc.Accuracy.MaxError, acc.Accuracy.MeanError, 100*acc.Accuracy.ExactFraction)

	// --- 4. Cooperative cancellation. ----------------------------------
	fmt.Println("\n== cancelling a hopeless job ==")
	var big strings.Builder
	for i := 0; i < 50000; i++ {
		fmt.Fprintf(&big, "%d %d\n", i, i+1)
	}
	resp, err = http.Post(ts.URL+"/graphs/huge", "text/plain", strings.NewReader(big.String()))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	postJSON(ts.URL+"/jobs", `{"graph":"huge","decomposition":"core","algorithm":"snd"}`, &jv)
	req, _ := http.NewRequest("DELETE", ts.URL+"/jobs/"+jv.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	for {
		var cur struct {
			State string `json:"state"`
		}
		getJSON(ts.URL+"/jobs/"+jv.ID, &cur)
		if cur.State == "cancelled" || cur.State == "done" || cur.State == "failed" {
			fmt.Printf("job %s ended as %q (DELETE answered %s)\n", jv.ID, cur.State, resp.Status)
			break
		}
	}

	var stats struct {
		Anytime struct {
			ProgressSnapshots int64 `json:"progressSnapshots"`
			Streams           int64 `json:"streams"`
			BudgetedQueries   int64 `json:"budgetedQueries"`
			DeadlineStops     int64 `json:"deadlineStops"`
		} `json:"anytime"`
	}
	getJSON(ts.URL+"/stats", &stats)
	fmt.Printf("\n/stats anytime: %+v\n", stats.Anytime)
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
}

func postJSON(url, body string, out any) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
}
