// Densest subgraph: the paper's introduction motivates dense subgraph
// discovery (spam link farms, DNA motifs, price-value motifs). This
// example plants a hidden near-clique in a sparse background and compares
// what each tool recovers: the global densest-subgraph approximations see
// only a large diffuse blob, while the nucleus hierarchy pinpoints the
// planted structure.
package main

import (
	"fmt"
	"math/rand"

	"nucleus"
)

func main() {
	// Sparse background + a hidden 24-vertex near-clique + a decoy: a big
	// diffuse region whose AVERAGE degree beats the clique's, though its
	// edge density is tiny. Average-degree objectives chase the decoy;
	// density-seeking hierarchies should not.
	rng := rand.New(rand.NewSource(5))
	var edges [][2]uint32
	const n, cliqueSize, decoyLo, decoyHi = 3000, 24, 1000, 1500
	for i := 0; i < 4*n; i++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		edges = append(edges, [2]uint32{u, v})
	}
	for u := 0; u < cliqueSize; u++ {
		for v := u + 1; v < cliqueSize; v++ {
			if rng.Float64() < 0.9 {
				edges = append(edges, [2]uint32{uint32(u), uint32(v)})
			}
		}
	}
	// Decoy: 500 vertices with ~7500 internal edges -> avg degree ~30,
	// density ~0.06.
	for i := 0; i < 7500; i++ {
		u := uint32(decoyLo + rng.Intn(decoyHi-decoyLo))
		v := uint32(decoyLo + rng.Intn(decoyHi-decoyLo))
		edges = append(edges, [2]uint32{u, v})
	}
	g := nucleus.BuildGraph(n, edges)
	fmt.Printf("graph: %d vertices, %d edges; hidden %d-vertex near-clique and a diffuse decoy\n\n",
		g.N(), g.M(), cliqueSize)

	report := func(name string, r *nucleus.DenseSubgraph) {
		planted := 0
		for _, v := range r.Vertices {
			if v < cliqueSize {
				planted++
			}
		}
		fmt.Printf("%-22s %6d vertices  avg-deg %6.2f  density %.3f  (%d/%d planted)\n",
			name, len(r.Vertices), r.AverageDegree, r.EdgeDensity, planted, cliqueSize)
	}

	report("charikar 2-approx", nucleus.DensestSubgraphApprox(g))
	report("max-core", nucleus.MaxCoreSubgraph(g))

	// The (3,4) nucleus hierarchy: take the densest leaf.
	res := nucleus.Decompose(g, nucleus.Nucleus34, nucleus.Options{})
	forest := nucleus.BuildHierarchy(g, nucleus.Nucleus34, res.Kappa)
	var best *nucleus.DenseSubgraph
	for _, leaf := range forest.Leaves() {
		vs := forest.Vertices(leaf)
		if len(vs) < 5 {
			continue
		}
		r := nucleus.MeasureDensity(g, vs)
		if best == nil || r.EdgeDensity > best.EdgeDensity {
			best = r
		}
	}
	if best != nil {
		report("densest (3,4) nucleus", best)
	}

	fmt.Println("\nThe average-degree objective prefers a big sparse region; the (3,4)")
	fmt.Println("nucleus isolates the planted near-clique at near-1.0 density.")
}
