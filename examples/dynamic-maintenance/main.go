// Dynamic maintenance: keep core numbers current while the graph changes,
// repairing only the affected subcore per edit instead of redecomposing.
// This complements the paper's query-driven scenario: both exploit the
// locality of κ indices.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"nucleus"
)

func main() {
	base := nucleus.PowerLawCluster(3000, 6, 0.4, 99)
	g := nucleus.DynamicFromGraph(base)
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.N(), g.M())

	rng := rand.New(rand.NewSource(1))
	const edits = 2000

	// Apply a stream of random insertions and removals with incremental
	// repair.
	t0 := time.Now()
	var inserted [][2]uint32
	for i := 0; i < edits; i++ {
		if len(inserted) > 0 && rng.Intn(2) == 0 {
			j := rng.Intn(len(inserted))
			e := inserted[j]
			g.RemoveEdge(e[0], e[1])
			inserted[j] = inserted[len(inserted)-1]
			inserted = inserted[:len(inserted)-1]
		} else {
			u := uint32(rng.Intn(g.N()))
			v := uint32(rng.Intn(g.N()))
			if g.InsertEdge(u, v) {
				inserted = append(inserted, [2]uint32{u, v})
			}
		}
	}
	incTime := time.Since(t0)

	// Compare against one full static recomputation.
	t0 = time.Now()
	static := nucleus.Decompose(g.Static(), nucleus.KCore, nucleus.Options{Algorithm: nucleus.Peel})
	oneShot := time.Since(t0)

	agree := nucleus.ExactFraction(g.CoreNumbers(), static.Kappa)
	perEdit := incTime / edits
	fmt.Printf("%d incremental edits: %v total (%v/edit)\n",
		edits, incTime.Round(time.Millisecond), perEdit.Round(time.Microsecond))
	fmt.Printf("one full recomputation: %v\n", oneShot.Round(time.Millisecond))
	fmt.Printf("agreement with from-scratch decomposition: %.2f%%\n", 100*agree)
	fmt.Printf("\nper-edit repair is %.1fx faster than redecomposing after every edit.\n",
		float64(oneShot)/float64(perEdit))
	fmt.Println("(The gap widens on graphs with small subcores; on this power-law graph")
	fmt.Println("most vertices share one core number, so affected subcores are large —")
	fmt.Println("the known worst case for subcore-traversal maintenance.)")
}
