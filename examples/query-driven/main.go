// Query-driven estimation: estimate the core and truss numbers of a few
// query vertices/edges without decomposing the whole graph. The local
// update rule only needs a cell's s-clique co-members, so running it on an
// h-hop neighborhood of the queries yields upper-bound estimates that
// tighten as h grows — the paper's query-driven scenario.
package main

import (
	"fmt"

	"nucleus"
)

func main() {
	g := nucleus.PowerLawCluster(5000, 8, 0.4, 13)
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.N(), g.M())

	// Ground truth for comparison (in a real deployment this is exactly
	// what we want to avoid computing).
	exactCore := nucleus.Decompose(g, nucleus.KCore, nucleus.Options{Algorithm: nucleus.Peel})

	queries := []uint32{1, 17, 256, 1024, 4096}
	fmt.Println("core-number estimates (exact in parentheses):")
	fmt.Printf("%-6s", "hops")
	for _, q := range queries {
		fmt.Printf("  v%-6d", q)
	}
	fmt.Printf("%10s\n", "touched")
	for _, hops := range []int{0, 1, 2, 3} {
		est := nucleus.EstimateCoreNumbers(g, queries, hops, 0)
		fmt.Printf("%-6d", hops)
		for i, q := range queries {
			fmt.Printf("  %2d (%2d)", est.Tau[i], exactCore.Kappa[q])
		}
		fmt.Printf("%9.1f%%\n", 100*float64(est.ActiveCells)/float64(g.N()))
	}

	// Truss numbers for a few edges.
	u0, v0 := g.Edge(0)
	u1, v1 := g.Edge(g.M() / 2)
	queryEdges := [][2]uint32{{u0, v0}, {u1, v1}}
	fmt.Println("\ntruss-number estimates:")
	for _, hops := range []int{1, 2} {
		est := nucleus.EstimateTrussNumbers(g, queryEdges, hops, 0)
		fmt.Printf("hops=%d: edge(%d,%d) -> %d, edge(%d,%d) -> %d (%d edges touched)\n",
			hops, u0, v0, est.Tau[0], u1, v1, est.Tau[1], est.ActiveCells)
	}
	fmt.Println("\nEstimates never undershoot the true value and converge to it as the")
	fmt.Println("neighborhood radius grows, while touching a tiny fraction of the graph.")
}
