// Durable serving: run nucleusd on a filesystem store, build up state
// (upload, decompose, mutate), kill the server mid-workload WITHOUT any
// shutdown, and restart it on the same data directory. Recovery replays
// snapshot + write-ahead log: every graph comes back at its exact
// pre-kill version with identical core numbers, and the κ cache is
// warm-seeded so nothing is recomputed cold.
//
// The "kill" is honest from the store's point of view: every snapshot
// and WAL frame is fsynced before the request is acknowledged, so
// abandoning the first server instance here is indistinguishable from a
// SIGKILL between two requests.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"nucleus"
)

func main() {
	dir, err := os.MkdirTemp("", "nucleusd-durable-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Printf("data-dir: %s\n\n", dir)

	// --- Instance 1: build up state. -----------------------------------
	st1, err := nucleus.OpenFSStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	srv1 := nucleus.NewServer(nucleus.ServerConfig{Workers: 2, Store: st1})
	ts1 := httptest.NewServer(srv1)

	// Upload a triangle-rich graph as an edge list.
	g := nucleus.PowerLawCluster(2000, 5, 0.4, 7)
	var body strings.Builder
	for _, e := range g.Edges() {
		fmt.Fprintf(&body, "%d %d\n", e[0], e[1])
	}
	post(ts1.URL+"/graphs/demo", "text/plain", body.String())
	fmt.Printf("uploaded demo: n=%d m=%d\n", g.N(), g.M())

	// A converged core decomposition (so mutations maintain κ exactly and
	// warm-seed the cache), then a few edit batches through the WAL.
	post(ts1.URL+"/jobs", "application/json", `{"graph":"demo","decomposition":"core"}`)
	waitIdle(ts1.URL)
	var mut struct {
		Version uint64 `json:"version"`
		N       int    `json:"n"`
		M       int64  `json:"m"`
		MaxCore int32  `json:"maxCore"`
	}
	for i := 0; i < 3; i++ {
		batch := fmt.Sprintf(`{"edits":[{"op":"add","u":%d,"v":%d},{"op":"add","u":%d,"v":%d}]}`,
			i, 2000+2*i, i+10, 2001+2*i)
		getJSON(post(ts1.URL+"/graphs/demo/edges", "application/json", batch), &mut)
	}
	fmt.Printf("after 3 edit batches: version=%d n=%d m=%d maxCore=%d\n",
		mut.Version, mut.N, mut.M, mut.MaxCore)
	preKappa := coreNumbers(ts1.URL, mut.N)

	// --- Kill: no Close, no drain, no flush. ---------------------------
	ts1.Close()
	fmt.Println("\n--- killed instance 1 (no shutdown) ---")

	// --- Instance 2: recover from the same directory. ------------------
	st2, err := nucleus.OpenFSStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	srv2 := nucleus.NewServer(nucleus.ServerConfig{Workers: 2, Store: st2})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	var gv struct {
		Version   uint64 `json:"version"`
		N         int    `json:"n"`
		M         int64  `json:"m"`
		Mutations int    `json:"mutations"`
	}
	getJSON(get(ts2.URL+"/graphs/demo"), &gv)
	fmt.Printf("recovered demo: version=%d n=%d m=%d mutations=%d\n",
		gv.Version, gv.N, gv.M, gv.Mutations)
	if gv.Version != mut.Version {
		log.Fatalf("version mismatch: %d after recovery, want %d", gv.Version, mut.Version)
	}

	postKappa := coreNumbers(ts2.URL, gv.N)
	for v := range preKappa {
		if preKappa[v] != postKappa[v] {
			log.Fatalf("κ(%d) = %d after recovery, want %d", v, postKappa[v], preKappa[v])
		}
	}
	fmt.Printf("all %d core numbers identical across the restart\n", len(preKappa))

	var stats struct {
		Mutations struct {
			WarmRuns int64 `json:"warmRuns"`
			ColdRuns int64 `json:"coldRuns"`
		} `json:"mutations"`
		Persistence struct {
			Replays         int64 `json:"replays"`
			ReplayedBatches int64 `json:"replayedBatches"`
		} `json:"persistence"`
	}
	getJSON(get(ts2.URL+"/stats"), &stats)
	fmt.Printf("recovery: %d graph(s) replayed, %d WAL batch(es) re-applied, "+
		"%d warm-seeded run(s), %d cold decompositions\n",
		stats.Persistence.Replays, stats.Persistence.ReplayedBatches,
		stats.Mutations.WarmRuns, stats.Mutations.ColdRuns)
	if stats.Mutations.ColdRuns != 0 {
		log.Fatal("recovery should not have decomposed anything cold")
	}

	// The workload continues where it left off: the recovered overlay
	// accepts the next batch, and the warm-seeded cache serves the next
	// core request without recomputing.
	getJSON(post(ts2.URL+"/graphs/demo/edges", "application/json",
		`{"edits":[{"op":"add","u":1,"v":2006}]}`), &mut)
	fmt.Printf("\nworkload resumed: next batch published version %d\n", mut.Version)
}

func post(url, contentType, body string) []byte {
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	return readOK(resp)
}

func get(url string) []byte {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	return readOK(resp)
}

func readOK(resp *http.Response) []byte {
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		log.Fatalf("%s %s: %d: %s", resp.Request.Method, resp.Request.URL, resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}

func getJSON(data []byte, v any) {
	if err := json.Unmarshal(data, v); err != nil {
		log.Fatalf("decoding %q: %v", data, err)
	}
}

// coreNumbers fetches the maintained core numbers of vertices [0, n).
func coreNumbers(base string, n int) []int32 {
	var sb strings.Builder
	for v := 0; v < n; v++ {
		if v > 0 {
			sb.WriteByte('&')
		}
		fmt.Fprintf(&sb, "v=%d", v)
	}
	var out struct {
		CoreNumbers []int32 `json:"coreNumbers"`
	}
	getJSON(get(base+"/graphs/demo/core?"+sb.String()), &out)
	return out.CoreNumbers
}

// waitIdle polls /jobs until nothing is queued or running.
func waitIdle(base string) {
	for {
		var jobs []struct {
			State string `json:"state"`
		}
		getJSON(get(base+"/jobs"), &jobs)
		busy := false
		for _, j := range jobs {
			if j.State == "queued" || j.State == "running" {
				busy = true
			}
		}
		if !busy {
			return
		}
	}
}
