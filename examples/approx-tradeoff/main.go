// Approximation trade-off: the local algorithms expose intermediate τ
// indices that approximate the exact decomposition — something the peeling
// process cannot do, because peeling reveals the densest regions only at
// the very end. This example sweeps the iteration budget and reports
// quality versus time for the k-truss decomposition.
package main

import (
	"fmt"
	"time"

	"nucleus"
)

func main() {
	g := nucleus.RMAT(13, 8, 0.57, 0.19, 0.19, 11)
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.N(), g.M())

	t0 := time.Now()
	exact := nucleus.Decompose(g, nucleus.KTruss, nucleus.Options{Algorithm: nucleus.Peel})
	peelTime := time.Since(t0)
	fmt.Printf("exact peeling: %v (no useful intermediate state)\n\n", peelTime.Round(time.Millisecond))

	fmt.Printf("%-8s %12s %12s %12s\n", "sweeps", "time", "kendall-tau", "exact-frac")
	for _, budget := range []int{1, 2, 3, 5, 8, 12, 0} {
		t0 = time.Now()
		res := nucleus.Decompose(g, nucleus.KTruss, nucleus.Options{
			Algorithm: nucleus.SND,
			MaxSweeps: budget,
		})
		elapsed := time.Since(t0)
		label := fmt.Sprint(budget)
		if budget == 0 {
			label = "full"
		}
		fmt.Printf("%-8s %12v %12.4f %12.4f\n", label,
			elapsed.Round(time.Millisecond),
			nucleus.KendallTau(res.Kappa, exact.Kappa),
			nucleus.ExactFraction(res.Kappa, exact.Kappa))
	}
	fmt.Println("\nA handful of sweeps already orders the graph almost exactly like the")
	fmt.Println("exact decomposition (Kendall-Tau ~1), at a fraction of the full runtime.")
}
