// Community hierarchy: the paper's motivating use case — hierarchical
// dense subgraph discovery. On a citation-network-like graph of planted
// communities, the (3,4) nucleus hierarchy recovers the planted structure:
// each dense community appears as its own deep nucleus, nested inside
// sparser ancestors, while coarser decompositions blur them together.
package main

import (
	"fmt"
	"os"

	"nucleus"
)

func main() {
	// 6 dense communities of 30 vertices plus a sparse backbone — think
	// "research areas" in a citation graph.
	g := nucleus.PlantedCommunities(6, 30, 0.45, 400, 7)
	fmt.Printf("graph: %d vertices, %d edges, 6 planted communities\n\n", g.N(), g.M())

	for _, dec := range []nucleus.Decomposition{nucleus.KCore, nucleus.KTruss, nucleus.Nucleus34} {
		res := nucleus.Decompose(g, dec, nucleus.Options{})
		forest := nucleus.BuildHierarchy(g, dec, res.Kappa)
		fmt.Printf("--- %v hierarchy (%d nuclei) ---\n", dec, forest.NumNodes())
		// Show nuclei with at least 40 cells: the interesting dense parts.
		forest.Print(os.Stdout, g, 40)

		// Report the leaves: the densest discovered subgraphs.
		var leaves int
		var walk func(n *nucleus.HierarchyNode)
		var deepest *nucleus.HierarchyNode
		walk = func(n *nucleus.HierarchyNode) {
			if len(n.Children) == 0 {
				leaves++
				if deepest == nil || n.K > deepest.K {
					deepest = n
				}
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		for _, r := range forest.Roots {
			walk(r)
		}
		if deepest != nil {
			vs := forest.Vertices(deepest)
			fmt.Printf("deepest nucleus: k=%d, %d vertices, density %.2f\n\n",
				deepest.K, len(vs), forest.Density(g, deepest))
		}
	}
}
