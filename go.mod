module nucleus

go 1.24

toolchain go1.24.0
