module nucleus

go 1.24
