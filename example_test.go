package nucleus_test

import (
	"fmt"

	"nucleus"
)

// The paper's Figure 2 toy graph: f—e—a—b plus the triangle {b,c,d}.
func figure2() *nucleus.Graph {
	return nucleus.BuildGraph(6, [][2]uint32{
		{0, 4}, {0, 1}, // a-e, a-b
		{1, 2}, {1, 3}, // b-c, b-d
		{2, 3}, // c-d
		{4, 5}, // e-f
	})
}

func ExampleDecompose() {
	g := figure2()
	res := nucleus.Decompose(g, nucleus.KCore, nucleus.Options{Algorithm: nucleus.SND})
	fmt.Println("core numbers:", res.Kappa)
	fmt.Println("iterations:", res.Iterations)
	// Output:
	// core numbers: [1 2 2 2 1 1]
	// iterations: 2
}

func ExampleDecompose_truss() {
	// K5: every edge is in 3 triangles; uniform truss number 3.
	var edges [][2]uint32
	for u := uint32(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			edges = append(edges, [2]uint32{u, v})
		}
	}
	g := nucleus.BuildGraph(5, edges)
	res := nucleus.Decompose(g, nucleus.KTruss, nucleus.Options{})
	fmt.Println("max truss:", res.MaxKappa)
	fmt.Println("histogram:", res.Histogram())
	// Output:
	// max truss: 3
	// histogram: [0 0 0 10]
}

func ExampleBuildHierarchy() {
	g := figure2()
	res := nucleus.Decompose(g, nucleus.KCore, nucleus.Options{})
	forest := nucleus.BuildHierarchy(g, nucleus.KCore, res.Kappa)
	root := forest.Roots[0]
	fmt.Printf("root: k=%d cells=%d\n", root.K, root.SubtreeCells)
	child := root.Children[0]
	fmt.Printf("child: k=%d vertices=%v\n", child.K, forest.Vertices(child))
	// Output:
	// root: k=1 cells=6
	// child: k=2 vertices=[1 2 3]
}

func ExampleEstimateCoreNumbers() {
	g := figure2()
	// Estimate the core number of vertex b (id 1) from its 1-hop
	// neighborhood only.
	est := nucleus.EstimateCoreNumbers(g, []uint32{1}, 1, 0)
	fmt.Println("estimate:", est.Tau[0], "cells touched:", est.ActiveCells)
	// Output:
	// estimate: 2 cells touched: 4
}

func ExampleKendallTau() {
	exact := []int32{1, 2, 2, 3}
	approx := []int32{1, 2, 2, 3}
	fmt.Printf("%.1f\n", nucleus.KendallTau(approx, exact))
	// Output:
	// 1.0
}
