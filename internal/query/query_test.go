package query

import (
	"testing"

	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
	"nucleus/internal/peel"
)

func TestCoreNumbersConvergeWithHops(t *testing.T) {
	g := graph.PowerLawCluster(600, 5, 0.5, 41)
	kappa := peel.Run(nucleus.NewCore(g)).Kappa
	queries := []uint32{0, 10, 50, 100, 300}

	prevErr := int64(1 << 40)
	for _, hops := range []int{0, 1, 2, 4, 8} {
		est := CoreNumbers(g, queries, hops, 0)
		var errSum int64
		for i, q := range queries {
			if est.Tau[i] < kappa[q] {
				t.Fatalf("hops=%d: estimate %d below κ %d for vertex %d", hops, est.Tau[i], kappa[q], q)
			}
			errSum += int64(est.Tau[i] - kappa[q])
		}
		if errSum > prevErr {
			t.Fatalf("error grew with hops=%d: %d > %d", hops, errSum, prevErr)
		}
		prevErr = errSum
	}
}

func TestCoreNumbersExactWithFullGraph(t *testing.T) {
	g := graph.PowerLawCluster(200, 4, 0.5, 43)
	kappa := peel.Run(nucleus.NewCore(g)).Kappa
	queries := []uint32{1, 2, 3}
	// Enough hops to cover the whole graph: estimates become exact.
	est := CoreNumbers(g, queries, g.N(), 0)
	for i, q := range queries {
		if est.Tau[i] != kappa[q] {
			t.Fatalf("full-graph estimate %d != κ %d for vertex %d", est.Tau[i], kappa[q], q)
		}
	}
	if est.ActiveCells != g.N() {
		t.Fatalf("active cells = %d, want %d", est.ActiveCells, g.N())
	}
}

func TestCoreNumbersZeroHops(t *testing.T) {
	// hops=0 restricts to the queries themselves: τ = H of neighbor degrees
	// after one round at most, but never below κ.
	g := graph.Star(5)
	est := CoreNumbers(g, []uint32{0}, 0, 0)
	if est.ActiveCells != 1 {
		t.Fatalf("active = %d", est.ActiveCells)
	}
	// Hub's neighbors all have degree 1 frozen: H({1,1,1,1,1}) = 1 = κ.
	if est.Tau[0] != 1 {
		t.Fatalf("hub estimate = %d, want 1", est.Tau[0])
	}
}

func TestTrussNumbersUpperBoundAndConvergence(t *testing.T) {
	g := graph.PlantedCommunities(4, 20, 0.5, 60, 45)
	inst := nucleus.NewTruss(g)
	kappa := peel.Run(inst).Kappa
	// Query a handful of existing edges.
	var queryEdges [][2]uint32
	for e := int64(0); e < g.M() && len(queryEdges) < 5; e += g.M() / 5 {
		u, v := g.Edge(e)
		queryEdges = append(queryEdges, [2]uint32{u, v})
	}
	prevErr := int64(1 << 40)
	for _, hops := range []int{1, 2, 3} {
		est := TrussNumbers(g, queryEdges, hops, 0)
		var errSum int64
		for i, qe := range queryEdges {
			id, _ := g.EdgeID(qe[0], qe[1])
			if est.Tau[i] < kappa[id] {
				t.Fatalf("hops=%d: estimate below κ", hops)
			}
			errSum += int64(est.Tau[i] - kappa[id])
		}
		if errSum > prevErr {
			t.Fatalf("truss estimate error grew with hops")
		}
		prevErr = errSum
	}
}

func TestTrussNumbersMissingEdge(t *testing.T) {
	g := graph.Path(4)
	est := TrussNumbers(g, [][2]uint32{{0, 3}}, 1, 0)
	if est.Tau[0] != -1 {
		t.Fatalf("missing edge estimate = %d, want -1", est.Tau[0])
	}
}

func TestQueryBudgetedSweeps(t *testing.T) {
	g := graph.PowerLawCluster(300, 5, 0.5, 47)
	// One sweep only: still an upper bound.
	kappa := peel.Run(nucleus.NewCore(g)).Kappa
	est := CoreNumbers(g, []uint32{5, 6}, 2, 1)
	for i, q := range []uint32{5, 6} {
		if est.Tau[i] < kappa[q] {
			t.Fatalf("budgeted estimate below κ")
		}
	}
}
