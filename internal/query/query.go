// Package query implements the paper's query-driven scenario (§1.2, §5):
// estimating the core or truss numbers of a handful of query cells without
// decomposing the whole graph. The local algorithms make this possible
// because the update of a cell only reads its s-clique co-members: running
// the iterations on the cells within h hops of the queries — everything
// else frozen at τ0 = its s-degree — produces an upper-bound estimate that
// tightens as h grows (by Theorem 1, τ never drops below κ).
//
// The iteration cost of a query is proportional to the region size, not
// the graph: Estimate.ActiveCells reports how many cells were touched.
// hops = 0 degenerates to τ = s-degree; a few hops usually recover the
// exact κ on real graphs. Constructing a Truss instance does pay a global
// per-edge triangle count — callers answering repeated queries should
// build the instance once and use the *On variants (the nucleusd
// /estimate endpoints memoize instances per registered graph this way).
package query

import (
	"nucleus/internal/graph"
	"nucleus/internal/localhi"
	"nucleus/internal/nucleus"
)

// Estimate holds a query-driven estimation result.
type Estimate struct {
	// Tau[i] is the estimated κ of the i-th query cell.
	Tau []int32
	// ActiveCells is the number of cells the computation touched.
	ActiveCells int
	// Result is the underlying bounded local run.
	Result *localhi.Result
}

// restricted runs the local iterations over the given cell subset only.
// An empty subset short-circuits to τ = s-degree (the hops-independent
// upper bound): passing it to the engine would mean "all cells" and
// silently run a full-graph decomposition.
func restricted(inst nucleus.Instance, cells []int32, maxSweeps int) *localhi.Result {
	if len(cells) == 0 {
		return &localhi.Result{Tau: inst.Degrees()}
	}
	return localhi.And(inst, localhi.Options{
		Subset:       cells,
		MaxSweeps:    maxSweeps,
		Notification: true,
	})
}

// CoreNumbers estimates κ₂ for the query vertices using the cells within
// `hops` BFS hops and at most maxSweeps local iterations (0 = until the
// restricted computation converges).
func CoreNumbers(g *graph.Graph, queries []uint32, hops, maxSweeps int) *Estimate {
	return CoreNumbersOn(nucleus.NewCore(g), g, queries, hops, maxSweeps)
}

// CoreNumbersOn is CoreNumbers over a caller-supplied (1,2) instance of g,
// letting repeated queries share one instance.
func CoreNumbersOn(inst nucleus.Instance, g *graph.Graph, queries []uint32, hops, maxSweeps int) *Estimate {
	region := g.BFSWithin(queries, hops)
	cells := make([]int32, len(region))
	for i, v := range region {
		cells[i] = int32(v)
	}
	res := restricted(inst, cells, maxSweeps)
	out := &Estimate{ActiveCells: len(cells), Result: res}
	for _, q := range queries {
		out.Tau = append(out.Tau, res.Tau[q])
	}
	return out
}

// TrussNumbers estimates κ₃ for the query edges (given as endpoint pairs)
// using all edges within `hops` hops of either endpoint and at most
// maxSweeps local iterations.
func TrussNumbers(g *graph.Graph, queryEdges [][2]uint32, hops, maxSweeps int) *Estimate {
	return TrussNumbersOn(nucleus.NewTruss(g), g, queryEdges, hops, maxSweeps)
}

// TrussNumbersOn is TrussNumbers over a caller-supplied (2,3) instance of
// g, amortizing the instance's global triangle count across queries.
func TrussNumbersOn(inst nucleus.Instance, g *graph.Graph, queryEdges [][2]uint32, hops, maxSweeps int) *Estimate {
	var seeds []uint32
	for _, e := range queryEdges {
		seeds = append(seeds, e[0], e[1])
	}
	region := g.BFSWithin(seeds, hops)
	inRegion := make(map[uint32]struct{}, len(region))
	for _, v := range region {
		inRegion[v] = struct{}{}
	}
	// The cell set is every edge with both endpoints in the region.
	var cells []int32
	for _, u := range region {
		eids := g.EdgeIDs(u)
		for i, v := range g.Neighbors(u) {
			if v > u {
				if _, ok := inRegion[v]; ok {
					cells = append(cells, int32(eids[i]))
				}
			}
		}
	}
	res := restricted(inst, cells, maxSweeps)
	out := &Estimate{ActiveCells: len(cells), Result: res}
	for _, e := range queryEdges {
		id, ok := g.EdgeID(e[0], e[1])
		if !ok {
			out.Tau = append(out.Tau, -1)
			continue
		}
		out.Tau = append(out.Tau, res.Tau[id])
	}
	return out
}
