// Package query implements the paper's query-driven scenario (§1.2, §5):
// estimating the core or truss numbers of a handful of query cells without
// decomposing the whole graph. The local algorithms make this possible
// because the update of a cell only reads its s-clique co-members: running
// the iterations on the cells within h hops of the queries — everything
// else frozen at τ0 = its s-degree — produces an upper-bound estimate that
// tightens as h grows (by Theorem 1, τ never drops below κ).
package query

import (
	"nucleus/internal/graph"
	"nucleus/internal/localhi"
	"nucleus/internal/nucleus"
)

// Estimate holds a query-driven estimation result.
type Estimate struct {
	// Tau[i] is the estimated κ of the i-th query cell.
	Tau []int32
	// ActiveCells is the number of cells the computation touched.
	ActiveCells int
	// Result is the underlying bounded local run.
	Result *localhi.Result
}

// CoreNumbers estimates κ₂ for the query vertices using the cells within
// `hops` BFS hops and at most maxSweeps local iterations (0 = until the
// restricted computation converges).
func CoreNumbers(g *graph.Graph, queries []uint32, hops, maxSweeps int) *Estimate {
	inst := nucleus.NewCore(g)
	region := g.BFSWithin(queries, hops)
	cells := make([]int32, len(region))
	for i, v := range region {
		cells[i] = int32(v)
	}
	res := localhi.And(inst, localhi.Options{
		Subset:       cells,
		MaxSweeps:    maxSweeps,
		Notification: true,
	})
	out := &Estimate{ActiveCells: len(cells), Result: res}
	for _, q := range queries {
		out.Tau = append(out.Tau, res.Tau[q])
	}
	return out
}

// TrussNumbers estimates κ₃ for the query edges (given as endpoint pairs)
// using all edges within `hops` hops of either endpoint and at most
// maxSweeps local iterations.
func TrussNumbers(g *graph.Graph, queryEdges [][2]uint32, hops, maxSweeps int) *Estimate {
	inst := nucleus.NewTruss(g)
	var seeds []uint32
	for _, e := range queryEdges {
		seeds = append(seeds, e[0], e[1])
	}
	region := g.BFSWithin(seeds, hops)
	inRegion := make(map[uint32]struct{}, len(region))
	for _, v := range region {
		inRegion[v] = struct{}{}
	}
	// The cell set is every edge with both endpoints in the region.
	var cells []int32
	for _, u := range region {
		eids := g.EdgeIDs(u)
		for i, v := range g.Neighbors(u) {
			if v > u {
				if _, ok := inRegion[v]; ok {
					cells = append(cells, int32(eids[i]))
				}
			}
		}
	}
	res := localhi.And(inst, localhi.Options{
		Subset:       cells,
		MaxSweeps:    maxSweeps,
		Notification: true,
	})
	out := &Estimate{ActiveCells: len(cells), Result: res}
	for _, e := range queryEdges {
		id, ok := g.EdgeID(e[0], e[1])
		if !ok {
			out.Tau = append(out.Tau, -1)
			continue
		}
		out.Tau = append(out.Tau, res.Tau[id])
	}
	return out
}
