package par

// Scratch is a fixed set of per-worker reusable buffers for loops that
// accumulate intermediate results worker-locally (frontier fragments,
// touched lists, counting arrays). Buffers keep their capacity across
// rounds, so steady-state use allocates nothing once each worker's buffer
// has grown to its high-water mark.
//
// Get hands out the worker's buffer truncated to length zero (Grow hands
// it out zero-filled at a requested length); the caller owns it until the
// next Get/Grow for the same worker index. Distinct worker indices may be
// used concurrently; one index must not.
type Scratch[T any] struct {
	bufs [][]T
}

// NewScratch returns a Scratch with buffers for the given worker count.
func NewScratch[T any](workers int) *Scratch[T] {
	if workers < 1 {
		workers = 1
	}
	return &Scratch[T]{bufs: make([][]T, workers)}
}

// Workers returns the number of per-worker buffers.
func (s *Scratch[T]) Workers() int { return len(s.bufs) }

// Get returns worker w's buffer with length 0, retaining capacity.
func (s *Scratch[T]) Get(w int) []T {
	return s.bufs[w][:0]
}

// Put stores buf back as worker w's buffer so capacity grown by the
// caller (via append) is retained for the next round.
func (s *Scratch[T]) Put(w int, buf []T) {
	s.bufs[w] = buf
}

// Grow returns worker w's buffer resized to length n, growing the backing
// array if needed and zeroing the returned prefix.
func (s *Scratch[T]) Grow(w, n int) []T {
	b := s.bufs[w]
	if cap(b) < n {
		b = make([]T, n)
	} else {
		b = b[:n]
		var zero T
		for i := range b {
			b[i] = zero
		}
	}
	s.bufs[w] = b
	return b
}
