// Package par provides the shard-parallel primitives shared by every
// parallel O(n+m) stage in the tree: grained parallel-for loops, the
// deterministic two-pass counting-sort scatter behind the CSR builders,
// prefix sums, order-preserving parallel gathers, and per-worker scratch
// pools.
//
// Every primitive here is *deterministic by construction*: the output is
// bit-identical at every thread count (including 1), so callers can prove
// parallel == sequential with a differential test instead of reasoning
// about schedules. The two tricks that make that cheap:
//
//   - Two-pass counting-sort scatter (ScatterByKey, CountingCSR): a count
//     pass over contiguous per-worker source ranges, a prefix sum over
//     (key-major, worker-minor) counts, then a scatter pass in which every
//     entry's slot is a pure function of its source position — exactly the
//     slot a sequential stable counting sort would assign.
//   - Chunk-ordered gathers (Collect): dynamically scheduled chunks each
//     append to their own buffer, and buffers are concatenated in chunk
//     order, reproducing the sequential emission order regardless of which
//     worker ran which chunk when.
//
// Workers are plain goroutines claiming grain-sized chunks off an atomic
// cursor; there are no pools or channels to manage, and a threads <= 1
// call runs entirely on the calling goroutine with zero synchronization.
package par

import (
	"sync"
	"sync/atomic"
)

// workersFor clamps a requested thread count to the amount of work: at
// least one worker, at most one per grain-sized chunk of n items.
func workersFor(n, grain, threads int) int {
	if threads < 1 {
		threads = 1
	}
	if grain < 1 {
		grain = 1
	}
	if max := (n + grain - 1) / grain; threads > max {
		threads = max
	}
	if threads < 1 {
		threads = 1
	}
	return threads
}

// ForEach runs body over [0, n) split into grain-sized chunks claimed
// dynamically by up to threads workers. body must be safe to call
// concurrently on disjoint ranges. threads <= 1 (or n within one grain)
// runs inline on the calling goroutine.
func ForEach(n, grain, threads int, body func(lo, hi int)) {
	ForEachWorker(n, grain, threads, func(_, lo, hi int) { body(lo, hi) })
}

// ForEachWorker is ForEach with the worker index passed to body, for
// callers that accumulate into per-worker state (scratch lists, counters).
// Worker indices are dense in [0, workers) where workers is the clamped
// thread count; which chunks a worker processes is scheduling-dependent,
// so per-worker state must be order-insensitive or re-ordered afterwards.
func ForEachWorker(n, grain, threads int, body func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers := workersFor(n, grain, threads)
	if workers == 1 {
		body(0, 0, n)
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(w, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// Ranges splits [0, n) into one contiguous range per worker and calls
// body(w, lo, hi) for each. The split depends only on n and the clamped
// worker count, so per-worker results indexed by w can be merged in a
// deterministic order (the basis of the two-pass scatter). Returns the
// worker count used. threads <= 1 runs body(0, 0, n) inline.
func Ranges(n, threads int, body func(w, lo, hi int)) int {
	if n <= 0 {
		return 0
	}
	if threads < 1 {
		threads = 1
	}
	if threads > n {
		threads = n
	}
	if threads == 1 {
		body(0, 0, n)
		return 1
	}
	chunk := (n + threads - 1) / threads
	var wg sync.WaitGroup
	workers := 0
	for w := 0; w < threads; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		workers++
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			body(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	return workers
}

// PrefixSum converts counts to exclusive prefix sums in place — after the
// call a[i] holds the sum of the original a[0:i] — and returns the total.
// This is the count→offset conversion of every CSR build in the tree.
func PrefixSum(a []int64) int64 {
	var sum int64
	for i, v := range a {
		a[i] = sum
		sum += v
	}
	return sum
}

// ScatterByKey is the deterministic two-pass counting-sort scatter: visit
// is called for every source index i in [0, n) and may emit any number of
// (key, value) entries with keys in [0, numKeys); the result groups values
// by key into a flat CSR — values of key k are items[offs[k]:offs[k+1]] —
// ordered within a group by (source index, emission order). That is
// exactly the order a sequential loop appending to per-key slices would
// produce, at every thread count.
//
// visit runs twice per source index (count pass, scatter pass) and must
// emit the identical sequence both times; it runs concurrently on
// disjoint contiguous source ranges.
func ScatterByKey[T any](n, numKeys, threads int, visit func(i int, emit func(key int, v T))) (offs []int64, items []T) {
	offs = make([]int64, numKeys+1)
	if n <= 0 || numKeys <= 0 {
		return offs, nil
	}
	if threads < 1 {
		threads = 1
	}
	if threads > n {
		threads = n
	}

	// Pass 1: per-worker counts over contiguous source ranges.
	counts := make([][]int64, threads)
	workers := Ranges(n, threads, func(w, lo, hi int) {
		c := make([]int64, numKeys)
		counts[w] = c
		for i := lo; i < hi; i++ {
			visit(i, func(key int, _ T) { c[key]++ })
		}
	})
	counts = counts[:workers]

	// Key-major, worker-minor prefix sum: counts[w][k] becomes the first
	// slot for worker w's entries of key k, and offs becomes the CSR
	// offsets. Worker-minor order is what pins every entry to the slot a
	// sequential scan would give it. The totals pass parallelizes over
	// keys; the running sum itself is one serial O(numKeys) walk.
	tot := offs[1:]
	ForEach(numKeys, 4096, threads, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			var t int64
			for _, c := range counts {
				t += c[k]
			}
			tot[k] = t
		}
	})
	// Inclusive scan over the counts sitting at offs[1:]: with offs[0] = 0
	// this turns offs into the standard CSR offset array (offs[k] = first
	// slot of key k). Then convert counts to cursors.
	for k := 1; k <= numKeys; k++ {
		offs[k] += offs[k-1]
	}
	total := offs[numKeys]
	ForEach(numKeys, 4096, threads, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			cur := offs[k]
			for _, c := range counts {
				n := c[k]
				c[k] = cur
				cur += n
			}
		}
	})

	// Pass 2: scatter. Each worker re-scans its exact pass-1 range, so its
	// cursors cover precisely its own entries; slots are disjoint across
	// workers by construction.
	items = make([]T, total)
	Ranges(n, threads, func(w, lo, hi int) {
		cur := counts[w]
		for i := lo; i < hi; i++ {
			visit(i, func(key int, v T) {
				items[cur[key]] = v
				cur[key]++
			})
		}
	})
	return offs, items
}

// CountingCSR buckets the indices [0, len(keys)) by their key: index i
// lands in group keys[i], and groups are returned as a flat CSR with
// indices ascending within each group — the stable counting sort every
// bucket structure in the tree starts from. Keys must lie in [0, numKeys).
func CountingCSR(keys []int32, numKeys, threads int) (offs []int64, items []int32) {
	return ScatterByKey(len(keys), numKeys, threads, func(i int, emit func(int, int32)) {
		emit(int(keys[i]), int32(i))
	})
}

// Collect gathers the emissions of a loop over [0, n) in parallel while
// preserving the sequential emission order: emit(i, out) must append
// index i's outputs to out and return it, chunks of grain indices are
// claimed dynamically, and the per-chunk buffers are concatenated in
// chunk order. The result is bit-identical to running emit sequentially
// for i = 0..n-1 with a single shared buffer, at every thread count.
func Collect[T any](n, grain, threads int, emit func(i int, out []T) []T) []T {
	if n <= 0 {
		return nil
	}
	if grain < 1 {
		grain = 1
	}
	workers := workersFor(n, grain, threads)
	if workers == 1 {
		var out []T
		for i := 0; i < n; i++ {
			out = emit(i, out)
		}
		return out
	}
	chunks := (n + grain - 1) / grain
	bufs := make([][]T, chunks)
	ForEach(chunks, 1, workers, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := c*grain, (c+1)*grain
			if hi > n {
				hi = n
			}
			var buf []T
			for i := lo; i < hi; i++ {
				buf = emit(i, buf)
			}
			bufs[c] = buf
		}
	})
	// Concatenate in chunk order: sizes → offsets → parallel copy.
	sizes := make([]int64, chunks)
	for c, b := range bufs {
		sizes[c] = int64(len(b))
	}
	total := PrefixSum(sizes)
	out := make([]T, total)
	ForEach(chunks, 1, workers, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			copy(out[sizes[c]:], bufs[c])
		}
	})
	return out
}

// MaxInt32 returns the maximum of a (0 for an empty slice), reduced in
// parallel over contiguous ranges.
func MaxInt32(a []int32, threads int) int32 {
	if len(a) == 0 {
		return 0
	}
	if threads < 1 {
		threads = 1
	}
	partial := make([]int32, threads)
	workers := Ranges(len(a), threads, func(w, lo, hi int) {
		m := a[lo]
		for _, v := range a[lo+1 : hi] {
			if v > m {
				m = v
			}
		}
		partial[w] = m
	})
	m := partial[0]
	for _, v := range partial[1:workers] {
		if v > m {
			m = v
		}
	}
	return m
}
