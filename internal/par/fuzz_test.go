package par_test

import (
	"testing"

	"nucleus/internal/par"
)

// FuzzCountingCSR feeds arbitrary key arrays (one byte per source index,
// so numKeys <= 256) through the two-pass scatter at threads {1,2,4,8} and
// checks every run against the sequential stable counting-sort oracle.
// The corpus is seeded from the degree arrays of the PR 6 generator
// families — the exact distributions the peel bucket builder scatters.
func FuzzCountingCSR(f *testing.F) {
	for _, fam := range degreeFamilies {
		deg := fam.mk().Degrees()
		seed := make([]byte, len(deg))
		for i, d := range deg {
			seed[i] = byte(d) // wraps >255; fine, it is just a key pattern
		}
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{255, 0, 128, 7, 7, 7})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<14 {
			data = data[:1<<14]
		}
		keys := make([]int32, len(data))
		numKeys := 1
		for i, b := range data {
			keys[i] = int32(b)
			if int(b)+1 > numKeys {
				numKeys = int(b) + 1
			}
		}
		visit := func(i int, emit func(key int, v int32)) {
			emit(int(keys[i]), int32(i))
		}
		wantOffs, wantItems := seqScatter(len(keys), numKeys, visit)
		for _, threads := range parThreads {
			offs, items := par.CountingCSR(keys, numKeys, threads)
			if len(offs) != len(wantOffs) {
				t.Fatalf("threads=%d: %d offsets, want %d", threads, len(offs), len(wantOffs))
			}
			for k := range offs {
				if offs[k] != wantOffs[k] {
					t.Fatalf("threads=%d: offs[%d] = %d, want %d", threads, k, offs[k], wantOffs[k])
				}
			}
			if len(items) != len(wantItems) {
				t.Fatalf("threads=%d: %d items, want %d", threads, len(items), len(wantItems))
			}
			for i := range items {
				if items[i] != wantItems[i] {
					t.Fatalf("threads=%d: items[%d] = %d, want %d", threads, i, items[i], wantItems[i])
				}
			}
		}
	})
}
