package par_test

import (
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"nucleus/internal/graph"
	"nucleus/internal/par"
)

// parThreads is the worker-count axis every property below is checked
// over: parallel outputs must be bit-identical to the threads=1 run.
var parThreads = []int{1, 2, 4, 8}

// degreeFamilies yields realistic key distributions for the scatter
// properties: per-vertex degrees of the PR 6 generator families, which is
// exactly the input shape the peel bucket builder feeds CountingCSR.
var degreeFamilies = []struct {
	name string
	mk   func() *graph.Graph
}{
	{"complete", func() *graph.Graph { return graph.Complete(10) }},
	{"cliqueChain", func() *graph.Graph { return graph.CliqueChain(4, 6) }},
	{"gnm", func() *graph.Graph { return graph.GnM(220, 800, 1) }},
	{"barabasiAlbert", func() *graph.Graph { return graph.BarabasiAlbert(200, 5, 2) }},
	{"rmat", func() *graph.Graph { return graph.RMAT(8, 4, 0.45, 0.22, 0.22, 3) }},
	{"wattsStrogatz", func() *graph.Graph { return graph.WattsStrogatz(180, 6, 0.1, 4) }},
	{"plantedCommunities", func() *graph.Graph { return graph.PlantedCommunities(5, 18, 0.45, 50, 5) }},
	{"powerLawCluster", func() *graph.Graph { return graph.PowerLawCluster(200, 6, 0.45, 6) }},
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000} {
		for _, grain := range []int{1, 16, 128} {
			for _, threads := range parThreads {
				visits := make([]int32, n)
				par.ForEach(n, grain, threads, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&visits[i], 1)
					}
				})
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("n=%d grain=%d threads=%d: index %d visited %d times", n, grain, threads, i, v)
					}
				}
			}
		}
	}
}

func TestRangesPartition(t *testing.T) {
	for _, n := range []int{1, 2, 7, 100, 1001} {
		for _, threads := range parThreads {
			var mu sync.Mutex
			type span struct{ w, lo, hi int }
			var spans []span
			workers := par.Ranges(n, threads, func(w, lo, hi int) {
				mu.Lock()
				spans = append(spans, span{w, lo, hi})
				mu.Unlock()
			})
			if len(spans) != workers {
				t.Fatalf("n=%d threads=%d: %d spans for %d workers", n, threads, len(spans), workers)
			}
			covered := make([]bool, n)
			for _, s := range spans {
				if s.w < 0 || s.w >= workers {
					t.Fatalf("worker index %d out of [0,%d)", s.w, workers)
				}
				for i := s.lo; i < s.hi; i++ {
					if covered[i] {
						t.Fatalf("index %d covered twice", i)
					}
					covered[i] = true
				}
			}
			for i, c := range covered {
				if !c {
					t.Fatalf("n=%d threads=%d: index %d uncovered", n, threads, i)
				}
			}
		}
	}
}

func TestPrefixSum(t *testing.T) {
	a := []int64{3, 0, 5, 1}
	total := par.PrefixSum(a)
	if total != 9 {
		t.Fatalf("total = %d, want 9", total)
	}
	if want := []int64{0, 3, 3, 8}; !reflect.DeepEqual(a, want) {
		t.Fatalf("prefix = %v, want %v", a, want)
	}
	if got := par.PrefixSum(nil); got != 0 {
		t.Fatalf("empty total = %d", got)
	}
}

// seqScatter is the sequential reference: append each value to its key's
// slice in visit order, then flatten.
func seqScatter(n, numKeys int, visit func(i int, emit func(key int, v int32))) ([]int64, []int32) {
	groups := make([][]int32, numKeys)
	for i := 0; i < n; i++ {
		visit(i, func(key int, v int32) { groups[key] = append(groups[key], v) })
	}
	offs := make([]int64, numKeys+1)
	var items []int32
	for k, g := range groups {
		offs[k] = int64(len(items))
		items = append(items, g...)
	}
	offs[numKeys] = int64(len(items))
	return offs, items
}

func checkScatterMatches(t *testing.T, label string, n, numKeys int, visit func(i int, emit func(key int, v int32))) {
	t.Helper()
	wantOffs, wantItems := seqScatter(n, numKeys, visit)
	for _, threads := range parThreads {
		offs, items := par.ScatterByKey(n, numKeys, threads, visit)
		if !reflect.DeepEqual(offs, wantOffs) {
			t.Fatalf("%s threads=%d: offsets diverge from sequential", label, threads)
		}
		if len(items) != len(wantItems) {
			t.Fatalf("%s threads=%d: %d items, want %d", label, threads, len(items), len(wantItems))
		}
		for i := range items {
			if items[i] != wantItems[i] {
				t.Fatalf("%s threads=%d: items[%d] = %d, want %d (order not bit-identical)", label, threads, i, items[i], wantItems[i])
			}
		}
	}
}

func TestScatterByKeyMatchesSequential(t *testing.T) {
	// Random multi-emit workload: every source emits 0–3 entries.
	rng := rand.New(rand.NewSource(42))
	const n, numKeys = 500, 37
	type entry struct {
		key int
		v   int32
	}
	emits := make([][]entry, n)
	for i := range emits {
		for j := rng.Intn(4); j > 0; j-- {
			emits[i] = append(emits[i], entry{rng.Intn(numKeys), int32(rng.Int31())})
		}
	}
	visit := func(i int, emit func(key int, v int32)) {
		for _, e := range emits[i] {
			emit(e.key, e.v)
		}
	}
	checkScatterMatches(t, "random", n, numKeys, visit)
}

func TestCountingCSRMatchesSequentialOnDegreeFamilies(t *testing.T) {
	for _, fam := range degreeFamilies {
		g := fam.mk()
		keys := g.Degrees()
		numKeys := int(par.MaxInt32(keys, 1)) + 1
		checkScatterMatches(t, fam.name, len(keys), numKeys, func(i int, emit func(int, int32)) {
			emit(int(keys[i]), int32(i))
		})
		// CountingCSR groups must list indices ascending within a bucket.
		offs, items := par.CountingCSR(keys, numKeys, 4)
		for k := 0; k < numKeys; k++ {
			row := items[offs[k]:offs[k+1]]
			for i, c := range row {
				if keys[c] != int32(k) {
					t.Fatalf("%s: cell %d in bucket %d has key %d", fam.name, c, k, keys[c])
				}
				if i > 0 && row[i-1] >= c {
					t.Fatalf("%s: bucket %d not ascending", fam.name, k)
				}
			}
		}
	}
}

func TestCollectMatchesSequential(t *testing.T) {
	n := 777
	emit := func(i int, out []int32) []int32 {
		// Variable fan-out, including zero-emission indices.
		for j := 0; j < i%4; j++ {
			out = append(out, int32(i*10+j))
		}
		return out
	}
	var want []int32
	for i := 0; i < n; i++ {
		want = emit(i, want)
	}
	for _, threads := range parThreads {
		for _, grain := range []int{1, 8, 64, 1024} {
			got := par.Collect(n, grain, threads, emit)
			if len(got) != len(want) {
				t.Fatalf("threads=%d grain=%d: len %d, want %d", threads, grain, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("threads=%d grain=%d: out[%d] = %d, want %d", threads, grain, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMaxInt32(t *testing.T) {
	for _, fam := range degreeFamilies {
		deg := fam.mk().Degrees()
		want := int32(0)
		for _, d := range deg {
			if d > want {
				want = d
			}
		}
		for _, threads := range parThreads {
			if got := par.MaxInt32(deg, threads); got != want {
				t.Fatalf("%s threads=%d: max %d, want %d", fam.name, threads, got, want)
			}
		}
	}
	if got := par.MaxInt32(nil, 4); got != 0 {
		t.Fatalf("empty max = %d", got)
	}
}

func TestScratchReuse(t *testing.T) {
	s := par.NewScratch[int32](4)
	if s.Workers() != 4 {
		t.Fatalf("workers = %d", s.Workers())
	}
	b := s.Get(2)
	b = append(b, 1, 2, 3)
	s.Put(2, b)
	b2 := s.Get(2)
	if len(b2) != 0 || cap(b2) < 3 {
		t.Fatalf("Get after Put: len=%d cap=%d, want 0 and >=3", len(b2), cap(b2))
	}
	g := s.Grow(1, 5)
	if len(g) != 5 {
		t.Fatalf("Grow len = %d", len(g))
	}
	g[0] = 9
	g2 := s.Grow(1, 3)
	if g2[0] != 0 {
		t.Fatalf("Grow did not zero reused prefix: %v", g2)
	}
}
