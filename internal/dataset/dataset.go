// Package dataset maps the real-world graphs of the paper's Table 3 to
// synthetic analogues that can be generated offline at laptop scale. Each
// analogue is chosen to reproduce the structural property that drives the
// paper's experiments — heavy-tailed degrees, locally dense communities, or
// web-like sparsity — because the convergence behaviour of the iterated
// h-index computation is governed by the degree-level structure (Theorem
// 3), not by the raw size. The substitution is documented per entry and in
// DESIGN.md §4.
package dataset

import (
	"fmt"
	"sync"

	"nucleus/internal/cliques"
	"nucleus/internal/graph"
)

// PaperStats records the statistics the paper's Table 3 reports for the
// original graph.
type PaperStats struct {
	V, E, Tri, K4 string
}

// Dataset is one synthetic stand-in.
type Dataset struct {
	// Key is the paper's short name (e.g. "fb").
	Key string
	// Name is the paper's full dataset name.
	Name string
	// Substitute describes the generator standing in for the original.
	Substitute string
	// Paper are the original statistics from Table 3.
	Paper PaperStats
	// Heavy34 marks datasets cheap enough for the (3,4) decomposition in
	// the experiment drivers (the paper notes (3,4) is the most expensive
	// instance).
	Small34 bool
	// Gen generates the graph (deterministic).
	Gen func() *graph.Graph

	once sync.Once
	g    *graph.Graph
}

// Graph generates (once) and returns the dataset's graph.
func (d *Dataset) Graph() *graph.Graph {
	d.once.Do(func() { d.g = d.Gen() })
	return d.g
}

// Stats holds measured statistics of a generated graph.
type Stats struct {
	V, E, Tri, K4 int64
}

// Measure computes |V|, |E|, |triangles| and |4-cliques| of g, mirroring
// the columns of Table 3.
func Measure(g *graph.Graph) Stats {
	return Stats{
		V:   int64(g.N()),
		E:   g.M(),
		Tri: cliques.Count(g),
		K4:  cliques.CountK4(g),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d |tri|=%d |K4|=%d", s.V, s.E, s.Tri, s.K4)
}

var registry = []*Dataset{
	{
		Key: "fb", Name: "facebook",
		Substitute: "planted communities (20 groups × 80 vertices, p_in=0.35): locally dense social structure, triangle- and K4-rich",
		Paper:      PaperStats{"4K", "88.2K", "1.6M", "30.0M"},
		Small34:    true,
		Gen: func() *graph.Graph {
			return graph.PlantedCommunities(20, 80, 0.35, 1500, 42)
		},
	},
	{
		Key: "tw", Name: "twitter",
		Substitute: "power-law cluster graph (n=4000, k=12, p=0.5): heavy-tailed follower counts with high clustering",
		Paper:      PaperStats{"81.3K", "1.3M", "13.1M", "104.9M"},
		Small34:    true,
		Gen: func() *graph.Graph {
			return graph.PowerLawCluster(4000, 12, 0.5, 7)
		},
	},
	{
		Key: "sse", Name: "soc-sign-epinions",
		Substitute: "RMAT (scale 13, edge factor 8, skewed): trust-network degree skew",
		Paper:      PaperStats{"131.8K", "711.2K", "4.9M", "58.6M"},
		Small34:    true,
		Gen: func() *graph.Graph {
			return graph.RMAT(13, 8, 0.57, 0.19, 0.19, 11)
		},
	},
	{
		Key: "wn", Name: "web-NotreDame",
		Substitute: "log-normal Chung–Lu graph (n=6000, μ=1.2, σ=1.3): web-graph degree distribution",
		Paper:      PaperStats{"325.7K", "1.1M", "8.9M", "231.9M"},
		Small34:    true,
		Gen: func() *graph.Graph {
			return graph.LogNormalDegrees(6000, 1.2, 1.3, 19)
		},
	},
	{
		Key: "wgo", Name: "web-Google",
		Substitute: "RMAT (scale 14, edge factor 5, mildly skewed): sparse web crawl",
		Paper:      PaperStats{"916.4K", "4.3M", "13.4M", "39.9M"},
		Gen: func() *graph.Graph {
			return graph.RMAT(14, 5, 0.45, 0.25, 0.15, 23)
		},
	},
	{
		Key: "hg", Name: "soc-twitter-higgs",
		Substitute: "power-law cluster graph (n=8000, k=14, p=0.3): retweet-cascade style social graph",
		Paper:      PaperStats{"456.6K", "12.5M", "83.0M", "429.7M"},
		Gen: func() *graph.Graph {
			return graph.PowerLawCluster(8000, 14, 0.3, 29)
		},
	},
	{
		Key: "ask", Name: "as-skitter",
		Substitute: "RMAT (scale 14, edge factor 7, skewed): internet-topology skew",
		Paper:      PaperStats{"1.7M", "11.1M", "28.8M", "148.8M"},
		Gen: func() *graph.Graph {
			return graph.RMAT(14, 7, 0.57, 0.19, 0.19, 31)
		},
	},
	{
		Key: "wiki", Name: "wikipedia-200611",
		Substitute: "RMAT (scale 14, edge factor 6): large sparse hyperlink graph",
		Paper:      PaperStats{"3.1M", "37.0M", "88.8M", "162.9M"},
		Gen: func() *graph.Graph {
			return graph.RMAT(14, 6, 0.52, 0.23, 0.15, 37)
		},
	},
	{
		Key: "slj", Name: "soc-LiveJournal",
		Substitute: "RMAT (scale 14, edge factor 10): large social network",
		Paper:      PaperStats{"4.8M", "68.5M", "285.7M", "9.9B"},
		Gen: func() *graph.Graph {
			return graph.RMAT(14, 10, 0.48, 0.22, 0.22, 41)
		},
	},
	{
		Key: "ork", Name: "soc-orkut",
		Substitute: "RMAT (scale 13, edge factor 14): dense social network",
		Paper:      PaperStats{"2.9M", "106.3M", "524.6M", "2.4B"},
		Gen: func() *graph.Graph {
			return graph.RMAT(13, 14, 0.45, 0.22, 0.22, 43)
		},
	},
	{
		Key: "fri", Name: "friendster",
		Substitute: "RMAT (scale 15, edge factor 6): the paper's largest graph (Figure 1b only)",
		Paper:      PaperStats{"65.6M", "1.8B", "—", "—"},
		Gen: func() *graph.Graph {
			return graph.RMAT(15, 6, 0.48, 0.22, 0.22, 47)
		},
	},
}

// All returns every dataset in registry order.
func All() []*Dataset { return registry }

// Get returns the dataset with the given key, or nil.
func Get(key string) *Dataset {
	for _, d := range registry {
		if d.Key == key {
			return d
		}
	}
	return nil
}

// Keys returns the registry keys in order.
func Keys() []string {
	out := make([]string, len(registry))
	for i, d := range registry {
		out[i] = d.Key
	}
	return out
}

// Small34 returns the datasets flagged as affordable for the (3,4)
// decomposition.
func Small34() []*Dataset {
	var out []*Dataset
	for _, d := range registry {
		if d.Small34 {
			out = append(out, d)
		}
	}
	return out
}
