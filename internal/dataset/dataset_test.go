package dataset

import (
	"testing"

	"nucleus/internal/cliques"
)

func TestRegistryIntegrity(t *testing.T) {
	seen := make(map[string]bool)
	for _, d := range All() {
		if d.Key == "" || d.Name == "" || d.Substitute == "" || d.Gen == nil {
			t.Errorf("incomplete dataset %q", d.Key)
		}
		if seen[d.Key] {
			t.Errorf("duplicate key %q", d.Key)
		}
		seen[d.Key] = true
		if d.Paper.V == "" || d.Paper.E == "" {
			t.Errorf("dataset %q missing paper stats", d.Key)
		}
	}
	if len(Keys()) != len(All()) {
		t.Error("Keys/All mismatch")
	}
}

func TestGetAndSmall34(t *testing.T) {
	if Get("fb") == nil {
		t.Fatal("fb missing")
	}
	if Get("nope") != nil {
		t.Fatal("found nonexistent dataset")
	}
	small := Small34()
	if len(small) == 0 {
		t.Fatal("no (3,4)-affordable datasets")
	}
	for _, d := range small {
		if !d.Small34 {
			t.Errorf("%s not flagged Small34", d.Key)
		}
	}
}

func TestGraphMemoized(t *testing.T) {
	d := Get("fb")
	a := d.Graph()
	b := d.Graph()
	if a != b {
		t.Fatal("Graph() not memoized")
	}
	if a.N() == 0 || a.M() == 0 {
		t.Fatal("empty generated graph")
	}
}

func TestFacebookAnalogueIsTriangleRich(t *testing.T) {
	g := Get("fb").Graph()
	tri := cliques.Count(g)
	// The facebook stand-in must have a high triangles-per-edge ratio; that
	// is the structural property the convergence experiments rely on.
	if float64(tri)/float64(g.M()) < 1.0 {
		t.Errorf("fb analogue too triangle-poor: %d triangles over %d edges", tri, g.M())
	}
}

func TestMeasureMatchesCliquePackage(t *testing.T) {
	g := Get("fb").Graph()
	s := Measure(g)
	if s.V != int64(g.N()) || s.E != g.M() {
		t.Fatal("measure V/E wrong")
	}
	if s.Tri != cliques.Count(g) || s.K4 != cliques.CountK4(g) {
		t.Fatal("measure Tri/K4 wrong")
	}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}

// TestAllDatasetsGenerate exercises every registry generator and checks
// basic shape sanity — connectivity of the bulk and non-trivial triangle
// content where the experiments need it.
func TestAllDatasetsGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("generates every dataset")
	}
	for _, d := range All() {
		g := d.Graph()
		if g.N() < 1000 {
			t.Errorf("%s: only %d vertices", d.Key, g.N())
		}
		if g.M() < int64(g.N()) {
			t.Errorf("%s: too sparse: %d edges for %d vertices", d.Key, g.M(), g.N())
		}
		if d.Small34 {
			tri := cliques.Count(g)
			if tri == 0 {
				t.Errorf("%s: flagged for (3,4) but has no triangles", d.Key)
			}
		}
	}
}
