package peel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nucleus/internal/cliques"
	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
)

// naiveTruss computes truss numbers by literal repeated minimum-support
// removal over an explicit edge/triangle structure — an implementation
// independent of the Instance machinery.
func naiveTruss(g *graph.Graph) []int32 {
	m := int(g.M())
	support := cliques.CountPerEdge(g)
	removed := make([]bool, m)
	kappa := make([]int32, m)
	k := int32(0)
	for step := 0; step < m; step++ {
		best := -1
		for e := 0; e < m; e++ {
			if !removed[e] && (best < 0 || support[e] < support[best]) {
				best = e
			}
		}
		if support[best] > k {
			k = support[best]
		}
		kappa[best] = k
		removed[best] = true
		cliques.ForEachTriangleOfEdge(g, int64(best), func(_ uint32, euw, evw int64) bool {
			if !removed[euw] && !removed[evw] {
				support[euw]--
				support[evw]--
			}
			return true
		})
	}
	return kappa
}

func TestTrussMatchesNaiveQuick(t *testing.T) {
	err := quick.Check(func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%20) + 4
		m := int(mRaw%80) + 1
		if maxM := n * (n - 1) / 2; m > maxM {
			m = maxM
		}
		g := graph.GnM(n, m, seed)
		got := Run(nucleus.NewTruss(g)).Kappa
		want := naiveTruss(g)
		for e := range want {
			if got[e] != want[e] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(31))})
	if err != nil {
		t.Fatal(err)
	}
}

// TestN34MatchesHyperQuick: the on-the-fly (3,4) instance agrees with the
// materialized hypergraph, matched through triangle vertex sets.
func TestN34MatchesHyperQuick(t *testing.T) {
	err := quick.Check(func(seed int64, mRaw uint8) bool {
		n := 14
		m := int(mRaw%60) + 20
		if maxM := n * (n - 1) / 2; m > maxM {
			m = maxM
		}
		g := graph.GnM(n, m, seed)
		n34 := nucleus.NewN34(g)
		hyper := nucleus.NewHyper(g, 3, 4)
		a := Run(n34).Kappa
		b := Run(hyper).Kappa
		if n34.NumCells() != hyper.NumCells() {
			return false
		}
		// Match cells by vertex triple.
		byKey := make(map[[3]uint32]int32)
		for c := int32(0); c < int32(n34.NumCells()); c++ {
			vs := n34.CellVertices(c, nil)
			byKey[[3]uint32{vs[0], vs[1], vs[2]}] = a[c]
		}
		for c := int32(0); c < int32(hyper.NumCells()); c++ {
			vs := hyper.CellVertices(c, nil)
			want, ok := byKey[[3]uint32{vs[0], vs[1], vs[2]}]
			if !ok || b[c] != want {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(32))})
	if err != nil {
		t.Fatal(err)
	}
}

// TestKappaIsMaxMinDegreeSubgraph verifies Lemma 1 on small graphs by
// brute force for the (1,2) instance: κ(v) = max over subgraphs containing
// v of the subgraph's minimum degree.
func TestKappaIsMaxMinDegreeSubgraph(t *testing.T) {
	err := quick.Check(func(seed int64, mRaw uint8) bool {
		n := 8
		m := int(mRaw%20) + 1
		if maxM := n * (n - 1) / 2; m > maxM {
			m = maxM
		}
		g := graph.GnM(n, m, seed)
		kappa := Run(nucleus.NewCore(g)).Kappa
		for v := 0; v < n; v++ {
			best := int32(0)
			for mask := 1; mask < 1<<n; mask++ {
				if mask&(1<<v) == 0 {
					continue
				}
				minDeg := int32(1 << 30)
				for u := 0; u < n; u++ {
					if mask&(1<<u) == 0 {
						continue
					}
					d := int32(0)
					for _, w := range g.Neighbors(uint32(u)) {
						if mask&(1<<w) != 0 {
							d++
						}
					}
					if d < minDeg {
						minDeg = d
					}
				}
				if minDeg > best {
					best = minDeg
				}
			}
			if kappa[v] != best {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(33))})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPeelEmptyAndDegenerate(t *testing.T) {
	empty := graph.Build(0, nil)
	res := Run(nucleus.NewCore(empty))
	if len(res.Kappa) != 0 || res.MaxKappa != 0 {
		t.Fatal("empty graph mishandled")
	}
	iso := graph.Build(3, nil)
	res = Run(nucleus.NewCore(iso))
	for _, k := range res.Kappa {
		if k != 0 {
			t.Fatalf("isolated κ = %v", res.Kappa)
		}
	}
	lv := Levels(nucleus.NewCore(iso))
	if lv.Count != 1 || lv.Sizes[0] != 3 {
		t.Fatalf("isolated levels = %v", lv.Sizes)
	}
}

func TestLevelsEmptyInstance(t *testing.T) {
	empty := graph.Build(0, nil)
	lv := Levels(nucleus.NewCore(empty))
	if lv.Count != 0 || len(lv.Sizes) != 0 {
		t.Fatalf("empty levels = %+v", lv)
	}
}

func BenchmarkPeelCore(b *testing.B) {
	g := graph.PowerLawCluster(5000, 6, 0.4, 83)
	inst := nucleus.NewCore(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(inst)
	}
}

func BenchmarkLevelsCore(b *testing.B) {
	g := graph.PowerLawCluster(1000, 5, 0.4, 85)
	inst := nucleus.NewCore(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Levels(inst)
	}
}
