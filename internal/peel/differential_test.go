package peel

import (
	"testing"

	"nucleus/internal/graph"
	"nucleus/internal/localhi"
	"nucleus/internal/nucleus"
)

// diffThreads is the worker-count axis of the differential suite.
var diffThreads = []int{1, 2, 4, 8}

// diffFamilies are the 8 generator families the differential suite runs
// over. Sizes are kept modest so the full cross product (families ×
// instances × thread counts × three engines) stays fast under -race.
var diffFamilies = []struct {
	name string
	mk   func() *graph.Graph
}{
	{"complete", func() *graph.Graph { return graph.Complete(10) }},
	{"cliqueChain", func() *graph.Graph { return graph.CliqueChain(4, 6) }},
	{"gnm", func() *graph.Graph { return graph.GnM(220, 800, 1) }},
	{"barabasiAlbert", func() *graph.Graph { return graph.BarabasiAlbert(200, 5, 2) }},
	{"rmat", func() *graph.Graph { return graph.RMAT(8, 4, 0.45, 0.22, 0.22, 3) }},
	{"wattsStrogatz", func() *graph.Graph { return graph.WattsStrogatz(180, 6, 0.1, 4) }},
	{"plantedCommunities", func() *graph.Graph { return graph.PlantedCommunities(5, 18, 0.45, 50, 5) }},
	{"powerLawCluster", func() *graph.Graph { return graph.PowerLawCluster(200, 6, 0.45, 6) }},
}

// diffInstances are the cell families differentiated per graph: the three
// first-class families (on-the-fly and flat-indexed) plus generic (r,s)
// pairs over the flat CSR incidence.
var diffInstances = []struct {
	name string
	mk   func(g *graph.Graph) nucleus.Instance
}{
	{"core", func(g *graph.Graph) nucleus.Instance { return nucleus.NewCore(g) }},
	{"truss", func(g *graph.Graph) nucleus.Instance { return nucleus.NewTruss(g) }},
	{"trussIndexed", func(g *graph.Graph) nucleus.Instance { return nucleus.NewIndexedTruss(g, 2) }},
	{"n34", func(g *graph.Graph) nucleus.Instance { return nucleus.NewN34(g) }},
	{"n34Indexed", func(g *graph.Graph) nucleus.Instance { return nucleus.NewIndexedN34(g, 2) }},
	{"rs13", func(g *graph.Graph) nucleus.Instance { return nucleus.NewFlatRS(g, 1, 3, 2) }},
	{"rs24", func(g *graph.Graph) nucleus.Instance { return nucleus.NewFlatRS(g, 2, 4, 2) }},
}

// TestDifferentialParallelPeel is the differential property suite of the
// parallel peeling engine: for every generator family, cell family and
// thread count,
//
//	parallel peel κ == sequential peel κ == converged local τ (AND and SND),
//
// with the parallel Order additionally bit-identical across thread counts.
// The suite runs under -race in CI, which is what makes the "no subtle
// nondeterminism" claim a tested property rather than a hope.
func TestDifferentialParallelPeel(t *testing.T) {
	for _, fam := range diffFamilies {
		g := fam.mk()
		for _, instKind := range diffInstances {
			t.Run(fam.name+"/"+instKind.name, func(t *testing.T) {
				inst := instKind.mk(g)
				seq := Run(inst)
				var refOrder []int32
				for _, threads := range diffThreads {
					par := RunThreads(inst, threads)
					if par.MaxKappa != seq.MaxKappa {
						t.Fatalf("threads=%d: MaxKappa %d, sequential %d", threads, par.MaxKappa, seq.MaxKappa)
					}
					for c := range seq.Kappa {
						if par.Kappa[c] != seq.Kappa[c] {
							t.Fatalf("threads=%d: κ(%s) = %d, sequential %d",
								threads, inst.CellLabel(int32(c)), par.Kappa[c], seq.Kappa[c])
						}
					}
					if refOrder == nil {
						refOrder = par.Order
						checkValidOrder(t, par)
					} else {
						for i := range refOrder {
							if par.Order[i] != refOrder[i] {
								t.Fatalf("threads=%d: order[%d] = %d, threads=1 order %d",
									threads, i, par.Order[i], refOrder[i])
							}
						}
					}

					// Converged local algorithms must land on the same κ.
					for _, alg := range []struct {
						name string
						run  func() *localhi.Result
					}{
						{"and", func() *localhi.Result {
							return localhi.And(inst, localhi.Options{Threads: threads, Notification: true})
						}},
						{"snd", func() *localhi.Result {
							return localhi.Snd(inst, localhi.Options{Threads: threads})
						}},
					} {
						lr := alg.run()
						if !lr.Converged {
							t.Fatalf("threads=%d: %s did not converge", threads, alg.name)
						}
						for c := range seq.Kappa {
							if lr.Tau[c] != seq.Kappa[c] {
								t.Fatalf("threads=%d: %s τ(%s) = %d, peel κ %d",
									threads, alg.name, inst.CellLabel(int32(c)), lr.Tau[c], seq.Kappa[c])
							}
						}
					}
				}
			})
		}
	}
}

// TestDifferentialLevelsBound spot-checks Theorem 3 glue across the
// families: the parallel peel κ of every cell is bounded by its s-degree
// and the level structure partitions all cells.
func TestDifferentialLevelsBound(t *testing.T) {
	for _, fam := range diffFamilies {
		g := fam.mk()
		inst := nucleus.NewCore(g)
		par := RunThreads(inst, 4)
		lv := Levels(inst)
		deg := inst.Degrees()
		total := 0
		for _, sz := range lv.Sizes {
			total += sz
		}
		if total != len(par.Kappa) {
			t.Fatalf("%s: levels cover %d cells, want %d", fam.name, total, len(par.Kappa))
		}
		for c, k := range par.Kappa {
			if k > deg[c] {
				t.Fatalf("%s: κ(%d) = %d exceeds degree %d", fam.name, c, k, deg[c])
			}
		}
	}
}
