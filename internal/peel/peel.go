// Package peel implements the paper's Algorithm 1: the global bucket-based
// peeling algorithm that computes exact κ indices for any (r,s) nucleus
// instance, generalizing Batagelj–Zaversnik k-core peeling and the k-truss
// peeling of Cohen. It also computes the degree levels of Definition 7,
// whose count upper-bounds the iteration count of the local algorithms
// (Theorem 3).
package peel

import (
	"nucleus/internal/nucleus"
)

// Result carries the exact decomposition produced by Run.
type Result struct {
	// Kappa[c] is the κ index of cell c.
	Kappa []int32
	// Order lists cells in the order they were peeled (non-decreasing κ).
	Order []int32
	// MaxKappa is the largest κ index (the degeneracy of the instance).
	MaxKappa int32
}

// Run peels the instance: repeatedly process an unprocessed cell of minimum
// current s-degree, record its κ, and decrement the degrees of co-members
// of its still-unprocessed s-cliques.
func Run(inst nucleus.Instance) *Result {
	n := inst.NumCells()
	deg := inst.Degrees()
	q := newBucketQueue(deg)
	kappa := make([]int32, n)
	order := make([]int32, 0, n)
	processed := make([]bool, n)
	res := &Result{}
	// k tracks the running maximum of processed degrees: κ values are
	// non-decreasing along the peeling order even when a decremented cell
	// dips below an earlier minimum.
	k := int32(0)
	for i := 0; i < n; i++ {
		c := q.popMin()
		if deg[c] > k {
			k = deg[c]
		}
		kappa[c] = k
		processed[c] = true
		order = append(order, c)
		inst.VisitSCliques(c, func(others []int32) bool {
			for _, d := range others {
				if processed[d] {
					return true // this s-clique was already destroyed
				}
			}
			for _, d := range others {
				if deg[d] > k {
					deg[d]--
					q.decrease(d, deg[d])
				}
			}
			return true
		})
	}
	res.Kappa = kappa
	res.Order = order
	res.MaxKappa = k
	return res
}

// bucketQueue is a bucket priority queue over cells keyed by their current
// degree. It uses lazy deletion: decrease-key appends the cell to its new
// bucket and stale entries are discarded on pop by validating against the
// live degree array. Total enqueued entries are bounded by the number of
// degree decrements, which the peeling work already pays for.
type bucketQueue struct {
	buckets [][]int32
	cur     int32 // lowest possibly non-empty bucket
	deg     []int32
	popped  []bool
}

func newBucketQueue(deg []int32) *bucketQueue {
	maxD := int32(0)
	for _, d := range deg {
		if d > maxD {
			maxD = d
		}
	}
	q := &bucketQueue{
		buckets: make([][]int32, maxD+1),
		deg:     deg,
		popped:  make([]bool, len(deg)),
	}
	for c, d := range deg {
		q.buckets[d] = append(q.buckets[d], int32(c))
	}
	return q
}

// popMin removes and returns an unprocessed cell of minimum current degree.
// It must only be called while unprocessed cells remain.
//
//nucleus:noalloc
func (q *bucketQueue) popMin() int32 {
	for {
		if int(q.cur) >= len(q.buckets) {
			panic("peel: popMin on empty queue")
		}
		b := q.buckets[q.cur]
		if len(b) == 0 {
			q.cur++
			continue
		}
		c := b[len(b)-1]
		q.buckets[q.cur] = b[:len(b)-1]
		if q.popped[c] || q.deg[c] != q.cur {
			continue // stale entry
		}
		q.popped[c] = true
		return c
	}
}

// decrease records that cell c now has degree newDeg.
//
//nucleus:noalloc
func (q *bucketQueue) decrease(c int32, newDeg int32) {
	if q.popped[c] {
		return
	}
	q.buckets[newDeg] = append(q.buckets[newDeg], c) //nucleus:lint-ignore noalloc lazy-deletion push: total appends are bounded by total decrements, buckets grow to that bound once
	if newDeg < q.cur {
		q.cur = newDeg
	}
}
