package peel

import (
	"math/rand"
	"testing"

	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
)

// checkParallelMatches asserts RunThreads reproduces the sequential κ at
// every thread count and that its Order is a valid peeling order that does
// not depend on the worker count.
func checkParallelMatches(t *testing.T, inst nucleus.Instance) {
	t.Helper()
	seq := Run(inst)
	ref := RunThreads(inst, 1)
	if ref.MaxKappa != seq.MaxKappa {
		t.Fatalf("RunThreads(1) MaxKappa = %d, want %d", ref.MaxKappa, seq.MaxKappa)
	}
	for c := range seq.Kappa {
		if ref.Kappa[c] != seq.Kappa[c] {
			t.Fatalf("RunThreads(1) κ(%d) = %d, want %d", c, ref.Kappa[c], seq.Kappa[c])
		}
	}
	checkValidOrder(t, ref)
	for _, threads := range []int{2, 3, 4, 8} {
		par := RunThreads(inst, threads)
		if par.MaxKappa != seq.MaxKappa {
			t.Fatalf("threads=%d: MaxKappa = %d, want %d", threads, par.MaxKappa, seq.MaxKappa)
		}
		for c := range seq.Kappa {
			if par.Kappa[c] != seq.Kappa[c] {
				t.Fatalf("threads=%d: κ(%d) = %d, want %d", threads, c, par.Kappa[c], seq.Kappa[c])
			}
		}
		// Order must be bit-identical across thread counts.
		if len(par.Order) != len(ref.Order) {
			t.Fatalf("threads=%d: order length %d, want %d", threads, len(par.Order), len(ref.Order))
		}
		for i := range ref.Order {
			if par.Order[i] != ref.Order[i] {
				t.Fatalf("threads=%d: order[%d] = %d, want %d", threads, i, par.Order[i], ref.Order[i])
			}
		}
	}
}

// checkValidOrder asserts Order is a permutation of all cells with
// non-decreasing κ.
func checkValidOrder(t *testing.T, res *Result) {
	t.Helper()
	if len(res.Order) != len(res.Kappa) {
		t.Fatalf("order lists %d cells, want %d", len(res.Order), len(res.Kappa))
	}
	seen := make([]bool, len(res.Kappa))
	last := int32(0)
	for i, c := range res.Order {
		if seen[c] {
			t.Fatalf("cell %d peeled twice", c)
		}
		seen[c] = true
		if res.Kappa[c] < last {
			t.Fatalf("order[%d]: κ decreased %d -> %d", i, last, res.Kappa[c])
		}
		last = res.Kappa[c]
	}
}

func TestParallelCoreCompleteGraph(t *testing.T) {
	checkParallelMatches(t, nucleus.NewCore(graph.Complete(9)))
}

func TestParallelCoreFigure2(t *testing.T) {
	g := graph.Figure2()
	res := RunThreads(nucleus.NewCore(g), 4)
	want := []int32{1, 2, 2, 2, 1, 1}
	for v := range want {
		if res.Kappa[v] != want[v] {
			t.Fatalf("core numbers = %v, want %v", res.Kappa, want)
		}
	}
}

func TestParallelEmptyAndDegenerate(t *testing.T) {
	for _, threads := range []int{1, 4} {
		res := RunThreads(nucleus.NewCore(graph.Build(0, nil)), threads)
		if len(res.Kappa) != 0 || len(res.Order) != 0 || res.MaxKappa != 0 {
			t.Fatalf("threads=%d: empty graph peeled to %+v", threads, res)
		}
		res = RunThreads(nucleus.NewCore(graph.Build(11, nil)), threads)
		if len(res.Order) != 11 || res.MaxKappa != 0 {
			t.Fatalf("threads=%d: isolated vertices: %+v", threads, res)
		}
		// Truss of a triangle-free graph: all cells peel at level 0.
		res = RunThreads(nucleus.NewTruss(graph.Build(-1, [][2]uint32{{0, 1}, {1, 2}, {2, 3}})), threads)
		if res.MaxKappa != 0 || len(res.Order) != 3 {
			t.Fatalf("threads=%d: path truss: %+v", threads, res)
		}
	}
}

func TestParallelZeroThreadsClamped(t *testing.T) {
	g := graph.CliqueChain(3, 5)
	res := RunThreads(nucleus.NewCore(g), 0)
	for v, k := range res.Kappa {
		if k != 4 {
			t.Fatalf("core(%d) = %d, want 4", v, k)
		}
	}
}

func TestParallelCoreMatchesSequentialQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 30; iter++ {
		n := 2 + rng.Intn(60)
		m := rng.Intn(3 * n)
		edges := make([][2]uint32, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, [2]uint32{uint32(rng.Intn(n)), uint32(rng.Intn(n))})
		}
		g := graph.Build(n, edges)
		checkParallelMatches(t, nucleus.NewCore(g))
	}
}

func TestParallelTrussAndN34Quick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 8; iter++ {
		n := 10 + rng.Intn(30)
		m := n + rng.Intn(4*n)
		edges := make([][2]uint32, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, [2]uint32{uint32(rng.Intn(n)), uint32(rng.Intn(n))})
		}
		g := graph.Build(n, edges)
		checkParallelMatches(t, nucleus.NewTruss(g))
		checkParallelMatches(t, nucleus.NewIndexedTruss(g, 2))
		checkParallelMatches(t, nucleus.NewN34(g))
	}
}

// TestParallelLargeFrontier exercises the multi-worker path: a graph whose
// min-degree bucket holds thousands of cells so sub-rounds actually split
// across workers (the inline small-frontier shortcut is bypassed).
func TestParallelLargeFrontier(t *testing.T) {
	g := graph.GnM(4000, 16000, 5)
	checkParallelMatches(t, nucleus.NewCore(g))
}
