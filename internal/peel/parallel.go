package peel

import (
	"sort"
	"sync"
	"sync/atomic"

	"nucleus/internal/nucleus"
)

// RunThreads peels the instance with round-synchronous frontier
// parallelism, the bucketed (Julienne-style) formulation of Algorithm 1:
//
//	level k:   extract every unprocessed cell of current minimum degree k
//	           (the whole min bucket) as the frontier
//	sub-round: process the frontier across a worker pool — each dying
//	           s-clique is attributed to exactly one frontier member and
//	           contributes one pending decrement (an atomic delta counter)
//	           per surviving co-member cell
//	barrier:   merge the pending decrements into the degree array, clamped
//	           at k (degrees never drop below the level being peeled, as in
//	           the sequential algorithm); cells that fell to k form the next
//	           sub-round's frontier, cells still above k move buckets
//
// The merge is a sum of commutative atomic increments and every frontier is
// sorted before it is recorded, so Kappa, MaxKappa and Order are all
// bit-identical across thread counts (and to a 1-worker run). Kappa and
// MaxKappa also match the sequential Run exactly — κ is unique — while
// Order is a different (still valid: non-decreasing κ, each cell minimum
// within the remainder) peeling order, since Run pops one cell at a time
// where RunThreads peels whole levels.
//
// threads <= 1 runs the same engine on the calling goroutine. Small
// frontiers are always processed inline: a barrier per sub-round only pays
// for itself when there is enough frontier work to split.
func RunThreads(inst nucleus.Instance, threads int) *Result {
	if threads < 1 {
		threads = 1
	}
	n := inst.NumCells()
	res := &Result{Kappa: make([]int32, n), Order: make([]int32, 0, n)}
	if n == 0 {
		return res
	}

	deg := inst.Degrees()
	maxD := int32(0)
	for _, d := range deg {
		if d > maxD {
			maxD = d
		}
	}
	buckets := make([][]int32, maxD+1)
	for c, d := range deg {
		buckets[d] = append(buckets[d], int32(c))
	}

	p := &parPeeler{
		inst:    inst,
		deg:     deg,
		delta:   make([]int32, n),
		stamp:   make([]int32, n),
		threads: threads,
		touched: make([][]int32, threads),
	}
	for i := range p.stamp {
		p.stamp[i] = -1
	}

	var (
		frontier  []int32
		next      []int32
		remaining = n
		cur       int32 // lowest possibly non-empty bucket
		k         int32 // current peeling level
		sr        int32 // sub-round stamp, strictly increasing
	)
	for remaining > 0 {
		// Advance to the next level: extract the whole current-min bucket,
		// dropping lazily-deleted entries (cells peeled already or moved to
		// a lower bucket by a barrier merge).
		frontier = frontier[:0]
		for len(frontier) == 0 {
			if int(cur) >= len(buckets) {
				panic("peel: level scan ran past the last bucket")
			}
			for _, c := range buckets[cur] {
				if p.stamp[c] < 0 && deg[c] == cur {
					frontier = append(frontier, c)
				}
			}
			buckets[cur] = nil
			if len(frontier) == 0 {
				cur++
			}
		}
		k = cur

		for len(frontier) > 0 {
			// Sort for determinism: bucket extraction and the per-worker
			// touched lists both yield scheduling-dependent orders.
			sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
			for _, c := range frontier {
				p.stamp[c] = sr
				res.Kappa[c] = k
			}
			res.Order = append(res.Order, frontier...)
			remaining -= len(frontier)

			p.processFrontier(frontier, sr)

			// Barrier merge: apply the pending decrements, clamped at the
			// level (the sequential algorithm never decrements a cell below
			// k — it is about to be peeled at k anyway), and route each
			// touched cell to the next frontier or its new bucket.
			next = next[:0]
			for w := range p.touched {
				for _, d := range p.touched[w] {
					nd := deg[d] - p.delta[d] //nucleus:lint-ignore atomicfield barrier merge: all workers joined before this read, every atomic add happens-before it
					p.delta[d] = 0            //nucleus:lint-ignore atomicfield same barrier: workers are parked until the next frontier is published, no concurrent adds
					if nd <= k {
						nd = k
						next = append(next, d)
					} else {
						buckets[nd] = append(buckets[nd], d)
					}
					deg[d] = nd
				}
				p.touched[w] = p.touched[w][:0]
			}
			sr++
			frontier, next = next, frontier
		}
		// Every cell at degree k is peeled and merges clamp at k, so the
		// minimum degree among the remainder is strictly above the level.
		cur++
	}
	res.MaxKappa = k
	return res
}

// parPeeler holds the shared state of one RunThreads invocation.
type parPeeler struct {
	inst nucleus.Instance
	// deg is the current degree of every unprocessed cell; written only at
	// barrier merges, read-only during frontier processing.
	deg []int32
	// delta accumulates pending decrements during a sub-round (atomic) and
	// is reset to zero for every touched cell at the merge.
	delta []int32
	// stamp[c] is -1 while c is unprocessed, else the sub-round in which it
	// was peeled. All stamps of a sub-round are written before its frontier
	// pass starts, so the pass reads them without synchronization.
	stamp   []int32
	threads int
	// touched[w] is worker w's list of cells it claimed (first decrement
	// wins) during the current sub-round.
	touched [][]int32
}

// frontierGrain is the minimum number of frontier cells per worker before a
// sub-round is worth parallelizing; below it the barrier and goroutine
// overhead outweigh the clique scans.
const frontierGrain = 128

// processFrontier scans the s-cliques of every frontier cell and records
// the decrements they imply. An s-clique dies in the sub-round of its
// earliest-peeled member; within one sub-round it is attributed to the
// member with the smallest cell id, which alone records one decrement for
// each still-unprocessed co-member. The first decrement of a cell claims it
// into the worker's touched list, so the barrier merge visits each touched
// cell exactly once.
func (p *parPeeler) processFrontier(frontier []int32, sr int32) {
	span := func(lo, hi int, tl *[]int32) {
		for i := lo; i < hi; i++ {
			c := frontier[i]
			p.inst.VisitSCliques(c, func(others []int32) bool {
				for _, d := range others {
					st := p.stamp[d]
					if st >= 0 && st < sr {
						return true // destroyed in an earlier sub-round
					}
					if st == sr && d < c {
						return true // attributed to the smaller peer
					}
				}
				for _, d := range others {
					if p.stamp[d] < 0 {
						if atomic.AddInt32(&p.delta[d], 1) == 1 {
							*tl = append(*tl, d)
						}
					}
				}
				return true
			})
		}
	}

	workers := p.threads
	if max := (len(frontier) + frontierGrain - 1) / frontierGrain; workers > max {
		workers = max
	}
	if workers <= 1 {
		span(0, len(frontier), &p.touched[0])
		return
	}
	var cursor int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&cursor, frontierGrain)) - frontierGrain
				if lo >= len(frontier) {
					return
				}
				hi := lo + frontierGrain
				if hi > len(frontier) {
					hi = len(frontier)
				}
				span(lo, hi, &p.touched[w])
			}
		}(w)
	}
	wg.Wait()
}
