package peel

import (
	"sort"
	"sync/atomic"

	"nucleus/internal/nucleus"
	"nucleus/internal/par"
)

// RunThreads peels the instance with round-synchronous frontier
// parallelism, the bucketed (Julienne-style) formulation of Algorithm 1:
//
//	level k:   extract every unprocessed cell of current minimum degree k
//	           (the whole min bucket) as the frontier
//	sub-round: process the frontier across a worker pool — each dying
//	           s-clique is attributed to exactly one frontier member and
//	           contributes one pending decrement (an atomic delta counter)
//	           per surviving co-member cell
//	barrier:   merge the pending decrements into the degree array, clamped
//	           at k (degrees never drop below the level being peeled, as in
//	           the sequential algorithm); cells that fell to k form the next
//	           sub-round's frontier, cells still above k move buckets
//
// The merge is a sum of commutative atomic increments and every frontier is
// sorted before it is recorded, so Kappa, MaxKappa and Order are all
// bit-identical across thread counts (and to a 1-worker run). Kappa and
// MaxKappa also match the sequential Run exactly — κ is unique — while
// Order is a different (still valid: non-decreasing κ, each cell minimum
// within the remainder) peeling order, since Run pops one cell at a time
// where RunThreads peels whole levels.
//
// Buckets are a flat counting-sort CSR (par.CountingCSR over the initial
// degrees) instead of a ragged [][]int32: one offsets array plus one cells
// array, built in parallel. Cells only ever move to *higher* buckets after
// construction (merges clamp at the current level, so a cell's new degree
// is either the level — peeled next sub-round — or strictly above it), so
// moved cells go to an append-only spill chain per bucket and both static
// row and chain are validated lazily (stamp < 0 && deg == cur) at
// extraction. Level extraction shards the static row across the worker
// pool; the steady-state barrier merge is allocation-free (mergeTouched is
// //nucleus:noalloc).
//
// threads <= 1 runs the same engine on the calling goroutine. Small
// frontiers are always processed inline: a barrier per sub-round only pays
// for itself when there is enough frontier work to split.
func RunThreads(inst nucleus.Instance, threads int) *Result {
	if threads < 1 {
		threads = 1
	}
	n := inst.NumCells()
	res := &Result{Kappa: make([]int32, n), Order: make([]int32, 0, n)}
	if n == 0 {
		return res
	}

	deg := inst.Degrees()
	maxD := par.MaxInt32(deg, threads)
	boffs, bcells := par.CountingCSR(deg, int(maxD)+1, threads)

	p := &parPeeler{
		inst:      inst,
		deg:       deg,
		delta:     make([]int32, n),
		stamp:     make([]int32, n),
		threads:   threads,
		touched:   make([][]int32, threads),
		levelBufs: make([][]int32, threads),
		boffs:     boffs,
		bcells:    bcells,
		spillHead: make([]int32, int(maxD)+1),
	}
	for i := range p.stamp {
		p.stamp[i] = -1
	}
	for i := range p.spillHead {
		p.spillHead[i] = -1
	}

	var (
		frontier  = make([]int32, 0, n)
		next      = make([]int32, 0, n)
		remaining = n
		cur       int32 // lowest possibly non-empty bucket
		k         int32 // current peeling level
		sr        int32 // sub-round stamp, strictly increasing
	)
	for remaining > 0 {
		// Advance to the next level: extract the whole current-min bucket,
		// dropping lazily-deleted entries (cells peeled already or moved to
		// a lower bucket by a barrier merge).
		frontier = frontier[:0]
		for len(frontier) == 0 {
			if int(cur) >= len(p.spillHead) {
				panic("peel: level scan ran past the last bucket")
			}
			frontier = p.extractLevel(cur, frontier)
			if len(frontier) == 0 {
				cur++
			}
		}
		k = cur

		for len(frontier) > 0 {
			// Sort for determinism: bucket extraction and the per-worker
			// touched lists both yield scheduling-dependent orders.
			sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
			for _, c := range frontier {
				p.stamp[c] = sr
				res.Kappa[c] = k
			}
			res.Order = append(res.Order, frontier...)
			remaining -= len(frontier)

			p.processFrontier(frontier, sr)

			next = p.mergeTouched(k, next[:0])
			sr++
			frontier, next = next, frontier
		}
		// Every cell at degree k is peeled and merges clamp at k, so the
		// minimum degree among the remainder is strictly above the level.
		cur++
	}
	res.MaxKappa = k
	return res
}

// parPeeler holds the shared state of one RunThreads invocation.
type parPeeler struct {
	inst nucleus.Instance
	// deg is the current degree of every unprocessed cell; written only at
	// barrier merges, read-only during frontier processing.
	deg []int32
	// delta accumulates pending decrements during a sub-round (atomic) and
	// is reset to zero for every touched cell at the merge.
	delta []int32
	// stamp[c] is -1 while c is unprocessed, else the sub-round in which it
	// was peeled. All stamps of a sub-round are written before its frontier
	// pass starts, so the pass reads them without synchronization.
	stamp   []int32
	threads int
	// touched[w] is worker w's list of cells it claimed (first decrement
	// wins) during the current sub-round.
	touched [][]int32
	// levelBufs[w] collects worker w's still-valid cells during a sharded
	// level extraction; drained into the frontier after the join.
	levelBufs [][]int32
	// boffs/bcells is the static counting-sort bucket CSR over the initial
	// degrees: bucket d's cells are bcells[boffs[d]:boffs[d+1]]. Entries are
	// validated lazily at extraction, never deleted.
	boffs  []int64
	bcells []int32
	// spillHead/spillCell/spillNext hold cells moved to higher buckets by
	// barrier merges as per-bucket singly linked chains threaded through two
	// append-only arrays: spillHead[d] is the newest entry of bucket d (-1 =
	// none), entry i is cell spillCell[i] with predecessor spillNext[i].
	spillHead []int32
	spillCell []int32
	spillNext []int32
}

// levelGrain is the number of static-bucket entries per chunk when a level
// extraction is sharded across the worker pool.
const levelGrain = 2048

// extractLevel appends every still-valid cell of bucket cur — unprocessed
// and still at degree cur — to frontier. The static CSR row shards across
// the pool (stamps and degrees are only written at barriers, so the scan
// just reads); the spill chain is walked inline and reset. Extraction
// order is scheduling-dependent, which is fine: every sub-round sorts its
// frontier before recording it.
func (p *parPeeler) extractLevel(cur int32, frontier []int32) []int32 {
	row := p.bcells[p.boffs[cur]:p.boffs[cur+1]]
	par.ForEachWorker(len(row), levelGrain, p.threads, func(w, lo, hi int) {
		buf := p.levelBufs[w]
		for _, c := range row[lo:hi] {
			if p.stamp[c] < 0 && p.deg[c] == cur {
				buf = append(buf, c)
			}
		}
		p.levelBufs[w] = buf
	})
	for w := range p.levelBufs {
		frontier = append(frontier, p.levelBufs[w]...)
		p.levelBufs[w] = p.levelBufs[w][:0]
	}
	for i := p.spillHead[cur]; i >= 0; i = p.spillNext[i] {
		c := p.spillCell[i]
		if p.stamp[c] < 0 && p.deg[c] == cur {
			frontier = append(frontier, c)
		}
	}
	p.spillHead[cur] = -1
	return frontier
}

// mergeTouched is the steady-state barrier merge: apply the pending
// decrements of the sub-round, clamped at the level k (the sequential
// algorithm never decrements a cell below k — it is about to be peeled at
// k anyway), and route each touched cell to the next frontier or its new
// bucket's spill chain. All workers joined before the call, so the delta
// reads and resets race with nothing.
//
//nucleus:noalloc
func (p *parPeeler) mergeTouched(k int32, next []int32) []int32 {
	for w := range p.touched {
		for _, d := range p.touched[w] {
			nd := p.deg[d] - p.delta[d] //nucleus:lint-ignore atomicfield barrier merge: all workers joined before this read, every atomic add happens-before it
			p.delta[d] = 0              //nucleus:lint-ignore atomicfield same barrier: workers are parked until the next frontier is published, no concurrent adds
			if nd <= k {
				nd = k
				next = append(next, d) //nucleus:lint-ignore noalloc next is preallocated to cap n and each unprocessed cell is appended at most once per merge
			} else {
				p.spillCell = append(p.spillCell, d)               //nucleus:lint-ignore noalloc spill push: total pushes are bounded by total s-clique decrements, the array grows to that bound once
				p.spillNext = append(p.spillNext, p.spillHead[nd]) //nucleus:lint-ignore noalloc same bound: spillNext grows in lockstep with spillCell
				p.spillHead[nd] = int32(len(p.spillCell) - 1)
			}
			p.deg[d] = nd
		}
		p.touched[w] = p.touched[w][:0]
	}
	return next
}

// frontierGrain is the minimum number of frontier cells per worker before a
// sub-round is worth parallelizing; below it the barrier and goroutine
// overhead outweigh the clique scans.
const frontierGrain = 128

// processFrontier scans the s-cliques of every frontier cell and records
// the decrements they imply. An s-clique dies in the sub-round of its
// earliest-peeled member; within one sub-round it is attributed to the
// member with the smallest cell id, which alone records one decrement for
// each still-unprocessed co-member. The first decrement of a cell claims it
// into the worker's touched list, so the barrier merge visits each touched
// cell exactly once.
func (p *parPeeler) processFrontier(frontier []int32, sr int32) {
	par.ForEachWorker(len(frontier), frontierGrain, p.threads, func(w, lo, hi int) {
		tl := &p.touched[w]
		for i := lo; i < hi; i++ {
			c := frontier[i]
			p.inst.VisitSCliques(c, func(others []int32) bool {
				for _, d := range others {
					st := p.stamp[d]
					if st >= 0 && st < sr {
						return true // destroyed in an earlier sub-round
					}
					if st == sr && d < c {
						return true // attributed to the smaller peer
					}
				}
				for _, d := range others {
					if p.stamp[d] < 0 {
						if atomic.AddInt32(&p.delta[d], 1) == 1 {
							*tl = append(*tl, d)
						}
					}
				}
				return true
			})
		}
	})
}
