package peel

import (
	"nucleus/internal/nucleus"
)

// LevelsResult describes the degree levels of Definition 7.
type LevelsResult struct {
	// Level[c] is the level index of cell c.
	Level []int32
	// Count is the number of levels ℓ; by Theorem 3 the local algorithms
	// converge within ℓ iterations (cells in level i converge within i).
	Count int
	// Sizes[i] is |L_i|.
	Sizes []int
}

// Levels computes the degree levels: L_0 is the set of cells of minimum
// s-degree; L_i is the set of cells of minimum s-degree once all earlier
// levels (and the s-cliques touching them) are removed. All cells of a
// level are removed simultaneously.
func Levels(inst nucleus.Instance) *LevelsResult {
	n := inst.NumCells()
	deg := inst.Degrees()
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	remaining := n
	res := &LevelsResult{Level: level}
	cur := make([]int32, 0, n)
	for remaining > 0 {
		// Find the minimum degree among remaining cells.
		min := int32(-1)
		for c := 0; c < n; c++ {
			if level[c] < 0 && (min < 0 || deg[c] < min) {
				min = deg[c]
			}
		}
		cur = cur[:0]
		for c := 0; c < n; c++ {
			if level[c] < 0 && deg[c] == min {
				cur = append(cur, int32(c))
			}
		}
		li := int32(res.Count)
		for _, c := range cur {
			level[c] = li
		}
		// Remove the level: an s-clique dies when its first member leaves.
		// Attribute each dying s-clique to exactly one of its members in
		// this level — the one with the smallest cell id — so surviving
		// members are decremented exactly once per s-clique.
		for _, c := range cur {
			inst.VisitSCliques(c, func(others []int32) bool {
				for _, d := range others {
					if level[d] >= 0 && level[d] < li {
						return true // already destroyed by an earlier level
					}
					if level[d] == li && d < c {
						return true // attributed to the smaller member
					}
				}
				for _, d := range others {
					if level[d] < 0 {
						deg[d]--
					}
				}
				return true
			})
		}
		res.Sizes = append(res.Sizes, len(cur))
		remaining -= len(cur)
		res.Count++
	}
	return res
}
