package peel

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"nucleus/internal/dataset"
	"nucleus/internal/nucleus"
)

// benchWorkers returns the worker-count axis for the scaling benchmarks.
// cmd/benchsweep sets NUCLEUS_PEEL_WORKERS (comma-separated) to control
// the sweep; the default covers the usual doubling ladder.
func benchWorkers() []int {
	spec := os.Getenv("NUCLEUS_PEEL_WORKERS")
	if spec == "" {
		spec = "1,2,4,8"
	}
	var out []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err == nil && n >= 1 {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// benchScaling runs RunThreads sub-benchmarks across the worker axis,
// gating each worker count on exact agreement with the sequential engine
// before timing — a scaling number for a wrong answer is worthless.
func benchScaling(b *testing.B, inst nucleus.Instance) {
	b.Helper()
	seq := Run(inst)
	for _, w := range benchWorkers() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			par := RunThreads(inst, w)
			if par.MaxKappa != seq.MaxKappa {
				b.Fatalf("workers=%d: MaxKappa %d, sequential %d", w, par.MaxKappa, seq.MaxKappa)
			}
			for c := range seq.Kappa {
				if par.Kappa[c] != seq.Kappa[c] {
					b.Fatalf("workers=%d: κ(%d) = %d, sequential %d", w, c, par.Kappa[c], seq.Kappa[c])
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				RunThreads(inst, w)
			}
		})
	}
}

// BenchmarkPeelScalingTruss is the multi-core scaling row of the bench
// sweep: parallel bucket peeling of the bundled "fb" truss instance
// (planted communities, triangle-rich — wide frontiers, the favorable
// case for frontier parallelism).
func BenchmarkPeelScalingTruss(b *testing.B) {
	benchScaling(b, nucleus.NewIndexedTruss(dataset.Get("fb").Graph(), 1))
}

// BenchmarkPeelScalingCore covers the unfavorable shape: k-core peeling
// has cheap per-cell work, so it bounds the overhead of the barrier
// merge rather than showing off speedup.
func BenchmarkPeelScalingCore(b *testing.B) {
	benchScaling(b, nucleus.NewCore(dataset.Get("fb").Graph()))
}
