package peel

import (
	"testing"

	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
)

// edgesFromBytes decodes fuzz data into an edge list: consecutive byte
// pairs are endpoints, capped so adversarial inputs cannot make clique
// enumeration (or -race runs) pathological.
func edgesFromBytes(data []byte) [][2]uint32 {
	const maxEdges = 512
	var edges [][2]uint32
	for i := 0; i+1 < len(data) && len(edges) < maxEdges; i += 2 {
		edges = append(edges, [2]uint32{uint32(data[i]), uint32(data[i+1])})
	}
	return edges
}

// familySeeds encodes small instances of the generator families as fuzz
// corpus entries, so the fuzzer starts from structured graphs (cliques,
// hubs, communities) instead of only random byte soup.
func familySeeds() [][]byte {
	gs := []*graph.Graph{
		graph.Complete(8),
		graph.CliqueChain(3, 5),
		graph.GnM(60, 150, 1),
		graph.BarabasiAlbert(50, 4, 2),
		graph.RMAT(6, 4, 0.45, 0.22, 0.22, 3),
		graph.WattsStrogatz(48, 4, 0.2, 4),
		graph.PlantedCommunities(3, 10, 0.5, 12, 5),
		graph.PowerLawCluster(50, 4, 0.5, 6),
	}
	var out [][]byte
	for _, g := range gs {
		var data []byte
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(uint32(u)) {
				if v > uint32(u) {
					data = append(data, byte(u), byte(v))
				}
			}
		}
		out = append(out, data)
	}
	return out
}

// FuzzPeelFrontier differentially fuzzes the parallel frontier engine
// against the sequential bucket queue: for arbitrary graphs, cell families
// and thread counts, κ and MaxKappa must match exactly, and the parallel
// Order must be a valid peeling order that is identical at every worker
// count.
func FuzzPeelFrontier(f *testing.F) {
	for _, seed := range familySeeds() {
		f.Add(seed, uint8(4), uint8(1))
	}
	f.Add([]byte{0, 1, 1, 2, 2, 0}, uint8(2), uint8(0))
	f.Add([]byte{}, uint8(8), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, threads, famSel uint8) {
		g := graph.Build(-1, edgesFromBytes(data))
		var inst nucleus.Instance
		switch famSel % 4 {
		case 0:
			inst = nucleus.NewCore(g)
		case 1:
			inst = nucleus.NewTruss(g)
		case 2:
			inst = nucleus.NewIndexedTruss(g, 2)
		default:
			inst = nucleus.NewN34(g)
		}
		seq := Run(inst)
		nThreads := 1 + int(threads%8)
		par := RunThreads(inst, nThreads)
		if par.MaxKappa != seq.MaxKappa {
			t.Fatalf("threads=%d: MaxKappa %d, sequential %d", nThreads, par.MaxKappa, seq.MaxKappa)
		}
		for c := range seq.Kappa {
			if par.Kappa[c] != seq.Kappa[c] {
				t.Fatalf("threads=%d: κ(%d) = %d, sequential %d", nThreads, c, par.Kappa[c], seq.Kappa[c])
			}
		}
		checkValidOrder(t, par)
		ref := RunThreads(inst, 1)
		for i := range ref.Order {
			if par.Order[i] != ref.Order[i] {
				t.Fatalf("threads=%d: order[%d] = %d, 1-worker order %d", nThreads, i, par.Order[i], ref.Order[i])
			}
		}
	})
}
