package peel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
)

// naiveCore computes core numbers by literal repeated minimum-degree
// removal, the defining process.
func naiveCore(g *graph.Graph) []int32 {
	n := g.N()
	deg := make([]int32, n)
	removed := make([]bool, n)
	kappa := make([]int32, n)
	for u := 0; u < n; u++ {
		deg[u] = int32(g.Degree(uint32(u)))
	}
	k := int32(0)
	for iter := 0; iter < n; iter++ {
		best := -1
		for u := 0; u < n; u++ {
			if !removed[u] && (best < 0 || deg[u] < deg[best]) {
				best = u
			}
		}
		if deg[best] > k {
			k = deg[best]
		}
		kappa[best] = k
		removed[best] = true
		for _, v := range g.Neighbors(uint32(best)) {
			if !removed[v] {
				deg[v]--
			}
		}
	}
	return kappa
}

func TestCoreCompleteGraph(t *testing.T) {
	g := graph.Complete(7)
	res := Run(nucleus.NewCore(g))
	for v, k := range res.Kappa {
		if k != 6 {
			t.Fatalf("K7 core(%d) = %d, want 6", v, k)
		}
	}
	if res.MaxKappa != 6 {
		t.Fatalf("max kappa = %d", res.MaxKappa)
	}
}

func TestCoreFigure2(t *testing.T) {
	// Paper Figure 2: κ₂ = {a:1, b:2, c:2, d:2, e:1, f:1}.
	g := graph.Figure2()
	res := Run(nucleus.NewCore(g))
	want := []int32{1, 2, 2, 2, 1, 1}
	for v := range want {
		if res.Kappa[v] != want[v] {
			t.Fatalf("core numbers = %v, want %v", res.Kappa, want)
		}
	}
}

func TestCoreCliqueChain(t *testing.T) {
	// Three K5s joined by bridges: every clique vertex has core number 4.
	g := graph.CliqueChain(3, 5)
	res := Run(nucleus.NewCore(g))
	for v, k := range res.Kappa {
		if k != 4 {
			t.Fatalf("core(%d) = %d, want 4", v, k)
		}
	}
}

func TestCoreStarAndPath(t *testing.T) {
	star := Run(nucleus.NewCore(graph.Star(9)))
	for _, k := range star.Kappa {
		if k != 1 {
			t.Fatalf("star core = %v", star.Kappa)
		}
	}
	path := Run(nucleus.NewCore(graph.Path(9)))
	for _, k := range path.Kappa {
		if k != 1 {
			t.Fatalf("path core = %v", path.Kappa)
		}
	}
}

func TestCoreMatchesNaiveQuick(t *testing.T) {
	quickGraphs(t, func(g *graph.Graph) bool {
		got := Run(nucleus.NewCore(g)).Kappa
		want := naiveCore(g)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	})
}

func TestPeelOrderNonDecreasing(t *testing.T) {
	g := graph.PowerLawCluster(300, 4, 0.5, 13)
	res := Run(nucleus.NewCore(g))
	if len(res.Order) != g.N() {
		t.Fatalf("order length %d", len(res.Order))
	}
	for i := 1; i < len(res.Order); i++ {
		if res.Kappa[res.Order[i]] < res.Kappa[res.Order[i-1]] {
			t.Fatalf("peeling order not non-decreasing in κ at %d", i)
		}
	}
}

func TestTrussCompleteGraph(t *testing.T) {
	// K6: every edge is in 4 triangles and the whole graph peels uniformly:
	// truss number 4 for all edges (using the paper's k = triangle count
	// convention).
	g := graph.Complete(6)
	res := Run(nucleus.NewTruss(g))
	for e, k := range res.Kappa {
		if k != 4 {
			t.Fatalf("K6 truss(%d) = %d, want 4", e, k)
		}
	}
}

func TestTrussFigure3Style(t *testing.T) {
	// Nucleus34Toy: K4 {a,b,c,d} glued to K5 {c,d,e,f,h} plus pendant g.
	// Edge gh is in no triangle: truss 0. Edges inside the K5 have truss 3.
	g := graph.Nucleus34Toy()
	res := Run(nucleus.NewTruss(g))
	gh, ok := g.EdgeID(6, 7)
	if !ok {
		t.Fatal("missing edge gh")
	}
	if res.Kappa[gh] != 0 {
		t.Fatalf("truss(gh) = %d, want 0", res.Kappa[gh])
	}
	ef, _ := g.EdgeID(4, 5)
	if res.Kappa[ef] != 3 {
		t.Fatalf("truss(ef) = %d, want 3", res.Kappa[ef])
	}
}

func TestN34CompleteGraph(t *testing.T) {
	// K7: every triangle is in 4 four-cliques; peeling is uniform, κ = 4.
	g := graph.Complete(7)
	res := Run(nucleus.NewN34(g))
	for c, k := range res.Kappa {
		if k != 4 {
			t.Fatalf("K7 (3,4) kappa(%d) = %d, want 4", c, k)
		}
	}
}

func TestN34ToySeparateNuclei(t *testing.T) {
	// In the Figure 3 toy, triangles inside the K4 block get κ = 1, and
	// triangles of the K5 block get κ = 2; triangles touching g get 0.
	g := graph.Nucleus34Toy()
	inst := nucleus.NewN34(g)
	res := Run(inst)
	for c := int32(0); c < int32(inst.NumCells()); c++ {
		vs := inst.CellVertices(c, nil)
		inK4 := vs[0] <= 3 && vs[1] <= 3 && vs[2] <= 3
		allK5 := true
		for _, v := range vs {
			if v != 2 && v != 3 && v != 4 && v != 5 && v != 7 {
				allK5 = false
			}
		}
		switch {
		case inK4 && res.Kappa[c] != 1:
			t.Fatalf("K4-block triangle %v κ = %d, want 1", vs, res.Kappa[c])
		case allK5 && res.Kappa[c] != 2:
			t.Fatalf("K5-block triangle %v κ = %d, want 2", vs, res.Kappa[c])
		}
	}
}

func TestHyperMatchesSpecialized(t *testing.T) {
	// Peeling the explicit hypergraph must agree with the on-the-fly
	// instances for (1,2) — cell ids coincide (vertex order).
	quickGraphs(t, func(g *graph.Graph) bool {
		a := Run(nucleus.NewCore(g)).Kappa
		b := Run(nucleus.NewHyper(g, 1, 2)).Kappa
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	})
}

func TestHyper25(t *testing.T) {
	// Exotic instance (2,5): cells are edges, s-cliques are 5-cliques.
	// In K6 every edge lies in C(4,3) = 4 five-cliques and peeling is
	// uniform: κ = 4 for all edges.
	g := graph.Complete(6)
	res := Run(nucleus.NewHyper(g, 2, 5))
	for _, k := range res.Kappa {
		if k != 4 {
			t.Fatalf("(2,5) on K6: κ = %v", res.Kappa)
		}
	}
}

func TestLevelsFigure4(t *testing.T) {
	// The LevelsToy is built to produce 4 levels for (1,2).
	g := graph.LevelsToy()
	res := Levels(nucleus.NewCore(g))
	if res.Count != 4 {
		t.Fatalf("levels = %d (sizes %v), want 4", res.Count, res.Sizes)
	}
	if res.Sizes[0] != 1 || res.Sizes[1] != 1 || res.Sizes[2] != 2 || res.Sizes[3] != 3 {
		t.Fatalf("level sizes = %v, want [1 1 2 3]", res.Sizes)
	}
	if res.Level[0] != 0 || res.Level[1] != 1 {
		t.Fatalf("levels of a,b = %d,%d", res.Level[0], res.Level[1])
	}
}

func TestLevelsPartition(t *testing.T) {
	quickGraphs(t, func(g *graph.Graph) bool {
		inst := nucleus.NewCore(g)
		res := Levels(inst)
		total := 0
		for _, s := range res.Sizes {
			if s == 0 {
				return false // empty level
			}
			total += s
		}
		if total != inst.NumCells() {
			return false
		}
		for _, l := range res.Level {
			if l < 0 || int(l) >= res.Count {
				return false
			}
		}
		return true
	})
}

// TestLevelsKappaMonotone verifies Theorem 2: κ is non-decreasing across
// levels.
func TestLevelsKappaMonotone(t *testing.T) {
	quickGraphs(t, func(g *graph.Graph) bool {
		inst := nucleus.NewCore(g)
		levels := Levels(inst)
		kappa := Run(nucleus.NewCore(g)).Kappa
		// max κ in level i must be <= min κ in level j for i < j.
		maxAt := make([]int32, levels.Count)
		minAt := make([]int32, levels.Count)
		for i := range minAt {
			minAt[i] = 1 << 30
		}
		for c, l := range levels.Level {
			if kappa[c] > maxAt[l] {
				maxAt[l] = kappa[c]
			}
			if kappa[c] < minAt[l] {
				minAt[l] = kappa[c]
			}
		}
		for i := 1; i < levels.Count; i++ {
			if maxAt[i-1] > minAt[i] {
				return false
			}
		}
		return true
	})
}

func TestLevelsTrussInstance(t *testing.T) {
	g := graph.Complete(5)
	res := Levels(nucleus.NewTruss(g))
	// K5 is perfectly symmetric: one level holding all 10 edges.
	if res.Count != 1 || res.Sizes[0] != 10 {
		t.Fatalf("K5 truss levels = %d %v", res.Count, res.Sizes)
	}
}

func quickGraphs(t *testing.T, pred func(*graph.Graph) bool) {
	t.Helper()
	err := quick.Check(func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%30) + 3
		m := int(mRaw%120) + 1
		maxM := n * (n - 1) / 2
		if m > maxM {
			m = maxM
		}
		return pred(graph.GnM(n, m, seed))
	}, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(12))})
	if err != nil {
		t.Fatal(err)
	}
}
