package replica

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"encoding/json"

	"nucleus/internal/sched"
	"nucleus/internal/store"
)

// Config wires a Puller to its primary and its local applier.
type Config struct {
	// Primary is the base URL of the node to pull from (changeable at
	// runtime via SetPrimary when the router promotes a new primary).
	Primary string
	// Applier receives the shipped state.
	Applier Applier
	// Generation returns this node's current cluster generation; pulls
	// from sources below it are rejected (ErrStaleSource).
	Generation func() uint64
	// AdoptGeneration, if non-nil, is invoked when the source advertises
	// a newer generation than ours — the normal state of a surviving
	// replica repointed at a freshly promoted primary.
	AdoptGeneration func(uint64)
	// Clock measures replication lag; nil means the wall clock. Tests
	// inject sched.NewFakeClock for deterministic lag assertions.
	Clock sched.Clock
	// Client performs the HTTP pulls; nil means http.DefaultClient.
	Client *http.Client
	// ChunkBytes caps one WAL request; <= 0 defaults to 4 MiB.
	ChunkBytes int64
	// Interval is the Run loop cadence; <= 0 defaults to 1s. (PullOnce
	// callers — tests, the cluster harness — never start Run.)
	Interval time.Duration
}

// errNeedResync is the internal signal that the WAL cannot be extended
// onto the local state (corrupt frame, compaction reset, or a log whose
// base snapshot is newer than what we hold): fall back to a snapshot.
var errNeedResync = fmt.Errorf("replica: WAL not extendable, snapshot resync required")

// maxSyncRounds bounds the resync↔tail loop for one graph within one
// PullOnce. Convergence normally takes at most two rounds (snapshot,
// then tail); racing a concurrent compaction can add one more.
const maxSyncRounds = 4

// graphState is the pull cursor for one graph: how many WAL bytes have
// been consumed and the incremental frame scanner positioned there.
type graphState struct {
	offset  int64
	scanner *store.WALScanner
}

// Puller tails a primary's replication endpoints and applies what it
// finds. All methods are safe for concurrent use; PullOnce runs are
// serialized internally so the background Run loop and a manual call
// cannot interleave half-applied cycles.
type Puller struct {
	cfg    Config
	client *http.Client
	clock  sched.Clock

	// pullMu serializes whole pull cycles; mu guards the fields below.
	pullMu      sync.Mutex
	mu          sync.Mutex
	primary     string
	states      map[string]*graphState
	status      Status
	behindSince time.Time
	behind      bool

	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}
}

// NewPuller constructs a Puller; call Run to start background pulling
// or PullOnce to drive it manually.
func NewPuller(cfg Config) *Puller {
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	clock := cfg.Clock
	if clock == nil {
		clock = sched.RealClock()
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 4 << 20
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	return &Puller{
		cfg:     cfg,
		client:  client,
		clock:   clock,
		primary: cfg.Primary,
		states:  make(map[string]*graphState),
		status:  Status{Primary: cfg.Primary},
		stopCh:  make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Primary returns the current source base URL.
func (p *Puller) Primary() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.primary
}

// SetPrimary repoints the puller at a new source (after a promotion).
// Pull cursors reset lazily: offsets into the old primary's logs are
// meaningless against the new one, so every graph re-tails from zero
// and relies on version dedup.
func (p *Puller) SetPrimary(url string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if url == p.primary {
		return
	}
	p.primary = url
	p.status.Primary = url
	p.states = make(map[string]*graphState)
}

// Status returns a consistent snapshot of pull progress, with LagMs
// evaluated against the clock now.
func (p *Puller) Status() Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.status
	if p.behind {
		st.LagMs = float64(p.clock.Now().Sub(p.behindSince)) / float64(time.Millisecond)
	}
	return st
}

// Run pulls every Interval until Stop. It is the background mode used
// by a live replica; deterministic tests call PullOnce instead.
func (p *Puller) Run() {
	defer close(p.done)
	ticker := time.NewTicker(p.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stopCh:
			return
		case <-ticker.C:
			// Errors are recorded in Status and retried next tick.
			p.PullOnce(context.Background()) //nucleus:ignore-err
		}
	}
}

// Stop terminates Run and waits for the in-flight pull, if any.
func (p *Puller) Stop() {
	p.stopOnce.Do(func() { close(p.stopCh) })
	<-p.done
}

// StopNoWait is Stop for pullers whose Run was never started.
func (p *Puller) StopNoWait() {
	p.stopOnce.Do(func() { close(p.stopCh) })
}

// PullOnce executes one full pull cycle: fetch the manifest, sync every
// graph it names, drop local graphs it does not, and update lag. The
// first error is returned after the remaining graphs were still tried.
func (p *Puller) PullOnce(ctx context.Context) error {
	p.pullMu.Lock()
	defer p.pullMu.Unlock()

	primary := p.Primary()
	man, err := p.fetchManifest(ctx, primary)
	if err != nil {
		p.recordError(err, false)
		return err
	}
	if myGen := p.gen(); man.Generation < myGen {
		err := fmt.Errorf("%w: source %s at generation %d, node at %d", ErrStaleSource, primary, man.Generation, myGen)
		p.recordError(err, true)
		return err
	} else if man.Generation > myGen && p.cfg.AdoptGeneration != nil {
		p.cfg.AdoptGeneration(man.Generation)
	}

	var firstErr error
	manifested := make(map[string]bool, len(man.Graphs))
	for _, mg := range man.Graphs {
		manifested[mg.Name] = true
		if err := p.syncGraph(ctx, primary, mg); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, name := range p.cfg.Applier.GraphNames() {
		if manifested[name] {
			continue
		}
		if err := p.cfg.Applier.DropGraph(name); err != nil && firstErr == nil {
			firstErr = err
		}
		p.mu.Lock()
		delete(p.states, name)
		p.mu.Unlock()
	}

	var lag int64
	for _, mg := range man.Graphs {
		local, ok := p.cfg.Applier.GraphVersion(mg.Name)
		if !ok {
			local = 0
		}
		if mg.Version > local {
			lag += int64(mg.Version - local)
		}
	}
	p.mu.Lock()
	p.status.Pulls++
	p.status.LagVersions = lag
	if lag == 0 {
		p.behind = false
		p.status.LagMs = 0
	} else if !p.behind {
		p.behind = true
		p.behindSince = p.clock.Now()
	}
	p.mu.Unlock()
	if firstErr != nil {
		p.recordError(firstErr, false)
	}
	return firstErr
}

func (p *Puller) gen() uint64 {
	if p.cfg.Generation == nil {
		return 0
	}
	return p.cfg.Generation()
}

func (p *Puller) recordError(err error, stale bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.status.Errors++
	if stale {
		p.status.StalePulls++
	}
	p.status.LastError = err.Error()
}

func (p *Puller) stateFor(name string) *graphState {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.states[name]
	if !ok {
		st = &graphState{scanner: store.NewWALScanner()}
		p.states[name] = st
	}
	return st
}

// syncGraph brings one graph to the manifest's version, alternating
// between tailing the WAL and full snapshot resyncs until it converges
// or the round bound trips (a racing manifest; the next pull retries).
func (p *Puller) syncGraph(ctx context.Context, primary string, mg ManifestGraph) error {
	st := p.stateFor(mg.Name)
	for round := 0; round < maxSyncRounds; round++ {
		local, exists := p.cfg.Applier.GraphVersion(mg.Name)
		if exists && local >= mg.Version {
			return nil
		}
		if !exists {
			if err := p.resync(ctx, primary, mg.Name, st); err != nil {
				return err
			}
			continue
		}
		progressed, err := p.tailWAL(ctx, primary, mg.Name, st, local)
		switch {
		case err == errNeedResync || (err == nil && !progressed):
			if rerr := p.resync(ctx, primary, mg.Name, st); rerr != nil {
				return rerr
			}
		case err != nil:
			return err
		}
	}
	if local, _ := p.cfg.Applier.GraphVersion(mg.Name); local < mg.Version {
		return fmt.Errorf("replica: %q stalled at version %d (manifest %d)", mg.Name, local, mg.Version)
	}
	return nil
}

// tailWAL pulls and applies WAL bytes from the graph's cursor until the
// source reports no more. progressed reports whether any batch applied.
func (p *Puller) tailWAL(ctx context.Context, primary, name string, st *graphState, localVer uint64) (bool, error) {
	progressed := false
	for {
		chunk, walSize, srcGen, err := p.fetchWAL(ctx, primary, name, st.offset)
		if err != nil {
			return progressed, err
		}
		if myGen := p.gen(); srcGen < myGen {
			err := fmt.Errorf("%w: WAL source at generation %d, node at %d", ErrStaleSource, srcGen, myGen)
			p.recordError(err, true)
			return progressed, err
		}
		if walSize < st.offset {
			// The log was reset under us (compaction folded it into a new
			// snapshot); the cursor is meaningless.
			return progressed, errNeedResync
		}
		if len(chunk) == 0 {
			return progressed, nil
		}
		st.offset += int64(len(chunk))
		p.mu.Lock()
		p.status.BytesPulled += int64(len(chunk))
		p.mu.Unlock()
		st.scanner.Feed(chunk)
		for {
			cb, err := st.scanner.Next()
			if err != nil {
				return progressed, errNeedResync
			}
			if cb == nil {
				break
			}
			if gen, ok := st.scanner.Generation(); ok && localVer < gen {
				// This log extends a snapshot newer than our state: we
				// missed a compaction epoch; batches here presume a base
				// we do not have.
				return progressed, errNeedResync
			}
			if cb.Version <= localVer {
				p.mu.Lock()
				p.status.DuplicatesSkipped++
				p.mu.Unlock()
				continue
			}
			applied, err := p.cfg.Applier.ApplyBatch(name, &cb.Batch, cb.Version)
			if err != nil {
				return progressed, err
			}
			p.mu.Lock()
			if applied {
				p.status.BatchesApplied++
			} else {
				p.status.DuplicatesSkipped++
			}
			p.mu.Unlock()
			if applied {
				localVer = cb.Version
				progressed = true
			}
		}
		if gen, ok := st.scanner.Generation(); ok && localVer < gen {
			return progressed, errNeedResync
		}
		if st.offset >= walSize {
			return progressed, nil
		}
	}
}

// resync installs the primary's current snapshot (when it advances the
// local state) and resets the WAL cursor to re-tail the fresh log.
func (p *Puller) resync(ctx context.Context, primary, name string, st *graphState) error {
	img, srcGen, err := p.fetchSnapshot(ctx, primary, name)
	if err != nil {
		return err
	}
	if myGen := p.gen(); srcGen < myGen {
		err := fmt.Errorf("%w: snapshot source at generation %d, node at %d", ErrStaleSource, srcGen, myGen)
		p.recordError(err, true)
		return err
	}
	snap, err := store.DecodeSnapshot(img)
	if err != nil {
		return fmt.Errorf("replica: decoding shipped snapshot of %q: %w", name, err)
	}
	local, exists := p.cfg.Applier.GraphVersion(name)
	if !exists || snap.Meta.Version > local {
		if err := p.cfg.Applier.InstallSnapshot(name, snap); err != nil {
			return err
		}
		p.mu.Lock()
		p.status.SnapshotsInstalled++
		p.mu.Unlock()
	}
	st.offset = 0
	st.scanner = store.NewWALScanner()
	return nil
}

// ---------------------------------------------------------------------------
// HTTP fetches.

func (p *Puller) fetchManifest(ctx context.Context, primary string) (*Manifest, error) {
	body, _, err := p.get(ctx, primary+"/replication/manifest")
	if err != nil {
		return nil, err
	}
	var man Manifest
	if err := json.Unmarshal(body, &man); err != nil {
		return nil, fmt.Errorf("replica: decoding manifest: %w", err)
	}
	return &man, nil
}

func (p *Puller) fetchWAL(ctx context.Context, primary, name string, offset int64) (chunk []byte, walSize int64, srcGen uint64, err error) {
	u := fmt.Sprintf("%s/replication/wal/%s?offset=%d&limit=%d",
		primary, url.PathEscape(name), offset, p.cfg.ChunkBytes)
	body, hdr, err := p.get(ctx, u)
	if err != nil {
		return nil, 0, 0, err
	}
	walSize, err = strconv.ParseInt(hdr.Get(WALSizeHeader), 10, 64)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("replica: bad %s header: %w", WALSizeHeader, err)
	}
	srcGen, err = strconv.ParseUint(hdr.Get(GenerationHeader), 10, 64)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("replica: bad %s header: %w", GenerationHeader, err)
	}
	return body, walSize, srcGen, nil
}

func (p *Puller) fetchSnapshot(ctx context.Context, primary, name string) (img []byte, srcGen uint64, err error) {
	body, hdr, err := p.get(ctx, primary+"/replication/snapshot/"+url.PathEscape(name))
	if err != nil {
		return nil, 0, err
	}
	srcGen, err = strconv.ParseUint(hdr.Get(GenerationHeader), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("replica: bad %s header: %w", GenerationHeader, err)
	}
	return body, srcGen, nil
}

func (p *Puller) get(ctx context.Context, url string) ([]byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		snippet := body
		if len(snippet) > 200 {
			snippet = snippet[:200]
		}
		return nil, nil, fmt.Errorf("replica: GET %s: %s: %s", url, resp.Status, snippet)
	}
	return body, resp.Header, nil
}
