package replica

// Fault injection for the replication stream. The fake primary serves
// REAL snapshot and WAL bytes — produced by the same store.FS codec a
// live primary ships from — and damages them on the wire the way the
// PR 4 store corruption tests damage them on disk: torn chunk
// boundaries, flipped bytes, duplicated ranges, stale generations, and
// mid-stream disconnects. The applier is a fake recording every install
// and apply, so exactly-once and nothing-applied properties are exact
// statements about the call log.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"nucleus/internal/graph"
	"nucleus/internal/sched"
	"nucleus/internal/store"
)

// fakePrimary is an httptest-backed replication source over a real FS
// store, with per-request fault knobs.
type fakePrimary struct {
	t  *testing.T
	fs *store.FS

	mu       sync.Mutex
	gen      uint64
	versions map[string]uint64

	// Fault knobs (consumed once where named so).
	walCorruptOnce bool // flip one byte of the next non-empty WAL chunk
	walFailOnce    bool // 500 the next WAL request
	walFailAlways  bool // 500 every WAL request
	ignoreOffset   bool // serve every WAL request from byte 0

	srv *httptest.Server
}

func newFakePrimary(t *testing.T) *fakePrimary {
	t.Helper()
	fs, err := store.OpenFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fp := &fakePrimary{t: t, fs: fs, gen: 1, versions: make(map[string]uint64)}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /replication/manifest", fp.handleManifest)
	mux.HandleFunc("GET /replication/snapshot/{name}", fp.handleSnapshot)
	mux.HandleFunc("GET /replication/wal/{name}", fp.handleWAL)
	fp.srv = httptest.NewServer(mux)
	t.Cleanup(fp.srv.Close)
	t.Cleanup(func() { fp.fs.Close() })
	return fp
}

func (fp *fakePrimary) setGen(g uint64) {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	fp.gen = g
}

func (fp *fakePrimary) createGraph(name string, version uint64) {
	fp.t.Helper()
	snap := &store.Snapshot{
		Meta:  store.Meta{Version: version, Source: "upload:edgelist"},
		Graph: graph.Build(4, [][2]uint32{{0, 1}, {1, 2}}),
	}
	if err := fp.fs.SaveSnapshot(name, snap); err != nil {
		fp.t.Fatal(err)
	}
	fp.mu.Lock()
	fp.versions[name] = version
	fp.mu.Unlock()
}

func (fp *fakePrimary) commitBatch(name string) uint64 {
	fp.t.Helper()
	fp.mu.Lock()
	v := fp.versions[name] + 1
	fp.versions[name] = v
	fp.mu.Unlock()
	b := store.Batch{Edits: []store.BatchOp{{Op: store.OpAdd, U: uint32(v), V: uint32(v + 1)}}, GrowTo: int(v) + 2}
	if _, err := fp.fs.BeginBatch(name, &b); err != nil {
		fp.t.Fatal(err)
	}
	if _, err := fp.fs.CommitBatch(name, v); err != nil {
		fp.t.Fatal(err)
	}
	return v
}

func (fp *fakePrimary) deleteGraph(name string) {
	fp.t.Helper()
	if err := fp.fs.Delete(name); err != nil {
		fp.t.Fatal(err)
	}
	fp.mu.Lock()
	delete(fp.versions, name)
	fp.mu.Unlock()
}

func (fp *fakePrimary) handleManifest(w http.ResponseWriter, r *http.Request) {
	fp.mu.Lock()
	man := Manifest{Generation: fp.gen, Role: RolePrimary}
	for name, v := range fp.versions {
		man.Graphs = append(man.Graphs, ManifestGraph{Name: name, Version: v, WALBytes: fp.fs.WALSize(name)})
	}
	fp.mu.Unlock()
	w.Header().Set(GenerationHeader, strconv.FormatUint(man.Generation, 10))
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"generation":%d,"role":%q,"graphs":[`, man.Generation, man.Role)
	for i, g := range man.Graphs {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprintf(w, `{"name":%q,"version":%d,"walBytes":%d}`, g.Name, g.Version, g.WALBytes)
	}
	fmt.Fprint(w, "]}")
}

func (fp *fakePrimary) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	img, err := fp.fs.SnapshotImage(r.PathValue("name"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	fp.mu.Lock()
	gen := fp.gen
	fp.mu.Unlock()
	w.Header().Set(GenerationHeader, strconv.FormatUint(gen, 10))
	w.Write(img) //nucleus:ignore-err test server
}

func (fp *fakePrimary) handleWAL(w http.ResponseWriter, r *http.Request) {
	fp.mu.Lock()
	if fp.walFailOnce || fp.walFailAlways {
		fp.walFailOnce = false
		fp.mu.Unlock()
		http.Error(w, "injected WAL failure", http.StatusInternalServerError)
		return
	}
	gen := fp.gen
	corrupt := fp.walCorruptOnce
	ignoreOffset := fp.ignoreOffset
	fp.mu.Unlock()

	offset, _ := strconv.ParseInt(r.URL.Query().Get("offset"), 10, 64)
	limit, _ := strconv.ParseInt(r.URL.Query().Get("limit"), 10, 64)
	if ignoreOffset {
		offset = 0
	}
	chunk, size, err := fp.fs.WALImage(r.PathValue("name"), offset, limit)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if corrupt && len(chunk) > 0 {
		fp.mu.Lock()
		fp.walCorruptOnce = false
		fp.mu.Unlock()
		chunk = append([]byte(nil), chunk...)
		chunk[len(chunk)/2] ^= 0x40
	}
	w.Header().Set(GenerationHeader, strconv.FormatUint(gen, 10))
	w.Header().Set(WALSizeHeader, strconv.FormatInt(size, 10))
	w.Write(chunk) //nucleus:ignore-err test server
}

// fakeApplier records every install/apply/drop in order.
type fakeApplier struct {
	mu     sync.Mutex
	graphs map[string]uint64
	log    []string // "snap:name@v", "batch:name@v", "drop:name"
}

func newFakeApplier() *fakeApplier {
	return &fakeApplier{graphs: make(map[string]uint64)}
}

func (a *fakeApplier) GraphVersion(name string) (uint64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	v, ok := a.graphs[name]
	return v, ok
}

func (a *fakeApplier) GraphNames() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.graphs))
	for n := range a.graphs {
		names = append(names, n)
	}
	return names
}

func (a *fakeApplier) InstallSnapshot(name string, snap *store.Snapshot) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.graphs[name] = snap.Meta.Version
	a.log = append(a.log, fmt.Sprintf("snap:%s@%d", name, snap.Meta.Version))
	return nil
}

func (a *fakeApplier) ApplyBatch(name string, b *store.Batch, version uint64) (bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cur, ok := a.graphs[name]
	if !ok {
		return false, fmt.Errorf("fakeApplier: batch for missing graph %q", name)
	}
	if version <= cur {
		return false, nil
	}
	if version != cur+1 {
		return false, fmt.Errorf("fakeApplier: %q version gap: %d -> %d", name, cur, version)
	}
	a.graphs[name] = version
	a.log = append(a.log, fmt.Sprintf("batch:%s@%d", name, version))
	return true, nil
}

func (a *fakeApplier) DropGraph(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.graphs, name)
	a.log = append(a.log, "drop:"+name)
	return nil
}

// appliedOnce asserts every entry in the log is unique (no double
// install/apply of the same version).
func (a *fakeApplier) appliedOnce(t *testing.T) {
	t.Helper()
	a.mu.Lock()
	defer a.mu.Unlock()
	seen := map[string]bool{}
	for _, e := range a.log {
		if strings.HasPrefix(e, "batch:") && seen[e] {
			t.Fatalf("batch applied twice: %s (log: %v)", e, a.log)
		}
		seen[e] = true
	}
}

func newTestPuller(fp *fakePrimary, a Applier, gen func() uint64, adopt func(uint64), clock sched.Clock) *Puller {
	if gen == nil {
		gen = func() uint64 { return 1 }
	}
	return NewPuller(Config{
		Primary:         fp.srv.URL,
		Applier:         a,
		Generation:      gen,
		AdoptGeneration: adopt,
		Clock:           clock,
		Client:          fp.srv.Client(),
	})
}

// TestPullerTornFramesAcrossChunks: a 7-byte chunk cap slices every
// frame across many HTTP responses; the incremental scanner must
// reassemble them and apply each committed batch exactly once.
func TestPullerTornFramesAcrossChunks(t *testing.T) {
	fp := newFakePrimary(t)
	fp.createGraph("g", 1)
	var want uint64
	for i := 0; i < 10; i++ {
		want = fp.commitBatch("g")
	}
	a := newFakeApplier()
	p := newTestPuller(fp, a, nil, nil, nil)
	p.cfg.ChunkBytes = 7
	if err := p.PullOnce(context.Background()); err != nil {
		t.Fatalf("pull: %v", err)
	}
	if v, _ := a.GraphVersion("g"); v != want {
		t.Fatalf("replica at version %d, want %d", v, want)
	}
	a.appliedOnce(t)
	st := p.Status()
	if st.BatchesApplied != 10 || st.SnapshotsInstalled != 1 {
		t.Fatalf("status: %d batches, %d snapshots; want 10, 1", st.BatchesApplied, st.SnapshotsInstalled)
	}
	if st.LagVersions != 0 || st.LagMs != 0 {
		t.Fatalf("caught-up replica reports lag %d versions / %.0fms", st.LagVersions, st.LagMs)
	}
}

// TestPullerMidStreamDisconnectResume: the source 500s one WAL request
// mid-pull; the next pull resumes from the same cursor and the batch
// sequence stays gap-free and exactly-once.
func TestPullerMidStreamDisconnectResume(t *testing.T) {
	fp := newFakePrimary(t)
	fp.createGraph("g", 1)
	for i := 0; i < 4; i++ {
		fp.commitBatch("g")
	}
	a := newFakeApplier()
	p := newTestPuller(fp, a, nil, nil, nil)
	if err := p.PullOnce(context.Background()); err != nil {
		t.Fatalf("initial pull: %v", err)
	}

	var want uint64
	for i := 0; i < 4; i++ {
		want = fp.commitBatch("g")
	}
	fp.mu.Lock()
	fp.walFailOnce = true
	fp.mu.Unlock()
	if err := p.PullOnce(context.Background()); err == nil {
		t.Fatal("pull against failing WAL endpoint succeeded")
	}
	if p.Status().LagVersions == 0 {
		t.Fatal("interrupted pull reports no lag")
	}
	if err := p.PullOnce(context.Background()); err != nil {
		t.Fatalf("resume pull: %v", err)
	}
	if v, _ := a.GraphVersion("g"); v != want {
		t.Fatalf("replica at version %d, want %d", v, want)
	}
	a.appliedOnce(t)
}

// TestPullerCorruptFrameResyncs: a flipped byte in a shipped WAL chunk
// must never be applied — the puller detects it, falls back to a
// snapshot resync, re-tails the clean log, and converges with every
// batch applied exactly once.
func TestPullerCorruptFrameResyncs(t *testing.T) {
	fp := newFakePrimary(t)
	fp.createGraph("g", 1)
	for i := 0; i < 3; i++ {
		fp.commitBatch("g")
	}
	a := newFakeApplier()
	p := newTestPuller(fp, a, nil, nil, nil)
	if err := p.PullOnce(context.Background()); err != nil {
		t.Fatalf("initial pull: %v", err)
	}

	var want uint64
	for i := 0; i < 3; i++ {
		want = fp.commitBatch("g")
	}
	fp.mu.Lock()
	fp.walCorruptOnce = true
	fp.mu.Unlock()
	if err := p.PullOnce(context.Background()); err != nil {
		t.Fatalf("pull over corrupt chunk: %v", err)
	}
	if v, _ := a.GraphVersion("g"); v != want {
		t.Fatalf("replica at version %d, want %d", v, want)
	}
	a.appliedOnce(t)
	if p.Status().DuplicatesSkipped == 0 {
		t.Fatal("resync re-tailed the log but skipped no duplicates — dedup path untested")
	}
}

// TestPullerDuplicateBatches: a source that ignores the offset and
// replays the full log on every request (duplicate batches on the
// wire) must still result in exactly-once application.
func TestPullerDuplicateBatches(t *testing.T) {
	fp := newFakePrimary(t)
	fp.createGraph("g", 1)
	var want uint64
	for i := 0; i < 5; i++ {
		want = fp.commitBatch("g")
	}
	fp.mu.Lock()
	fp.ignoreOffset = true
	fp.mu.Unlock()
	a := newFakeApplier()
	p := newTestPuller(fp, a, nil, nil, nil)
	if err := p.PullOnce(context.Background()); err != nil {
		t.Fatalf("pull: %v", err)
	}
	if v, _ := a.GraphVersion("g"); v != want {
		t.Fatalf("replica at version %d, want %d", v, want)
	}
	a.appliedOnce(t)
}

// TestPullerFencesStaleSource: a deposed primary resurrects at its old
// generation; a replica that has moved on (generation 2) must reject
// the whole stream and apply nothing.
func TestPullerFencesStaleSource(t *testing.T) {
	fp := newFakePrimary(t)
	fp.createGraph("g", 1)
	fp.commitBatch("g")
	// fp.gen is 1: the resurrected pre-promotion primary.
	a := newFakeApplier()
	p := newTestPuller(fp, a, func() uint64 { return 2 }, nil, nil)
	err := p.PullOnce(context.Background())
	if !errors.Is(err, ErrStaleSource) {
		t.Fatalf("pull from stale source: err = %v, want ErrStaleSource", err)
	}
	if len(a.GraphNames()) != 0 {
		t.Fatalf("stale source state applied: %v", a.log)
	}
	st := p.Status()
	if st.StalePulls != 1 {
		t.Fatalf("StalePulls = %d, want 1", st.StalePulls)
	}

	// The source catching up to the cluster generation unfences it.
	fp.setGen(2)
	if err := p.PullOnce(context.Background()); err != nil {
		t.Fatalf("pull after source caught up: %v", err)
	}
	if v, _ := a.GraphVersion("g"); v != 2 {
		t.Fatalf("replica at version %d, want 2", v)
	}
}

// TestPullerAdoptsNewerGeneration: a surviving replica repointed at a
// freshly promoted primary (higher generation) adopts the new epoch.
func TestPullerAdoptsNewerGeneration(t *testing.T) {
	fp := newFakePrimary(t)
	fp.createGraph("g", 1)
	fp.setGen(3)
	var myGen uint64 = 1
	var mu sync.Mutex
	a := newFakeApplier()
	p := newTestPuller(fp, a,
		func() uint64 { mu.Lock(); defer mu.Unlock(); return myGen },
		func(g uint64) { mu.Lock(); defer mu.Unlock(); myGen = g },
		nil)
	if err := p.PullOnce(context.Background()); err != nil {
		t.Fatalf("pull: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if myGen != 3 {
		t.Fatalf("node generation = %d after pulling a gen-3 source, want 3", myGen)
	}
}

// TestPullerDropsDeletedGraphs: graphs the primary deletes disappear
// from the manifest and must be dropped locally on the next pull.
func TestPullerDropsDeletedGraphs(t *testing.T) {
	fp := newFakePrimary(t)
	fp.createGraph("keep", 1)
	fp.createGraph("gone", 1)
	a := newFakeApplier()
	p := newTestPuller(fp, a, nil, nil, nil)
	if err := p.PullOnce(context.Background()); err != nil {
		t.Fatalf("pull: %v", err)
	}
	if len(a.GraphNames()) != 2 {
		t.Fatalf("replica has %v, want both graphs", a.GraphNames())
	}
	fp.deleteGraph("gone")
	if err := p.PullOnce(context.Background()); err != nil {
		t.Fatalf("pull after delete: %v", err)
	}
	if _, ok := a.GraphVersion("gone"); ok {
		t.Fatal("deleted graph still present on replica")
	}
	if _, ok := a.GraphVersion("keep"); !ok {
		t.Fatal("surviving graph dropped")
	}
}

// TestPullerLagTracking: with the WAL endpoint failing, lag versions
// accumulate and LagMs grows on the injected fake clock; once the
// endpoint heals and the pull catches up, both return to zero.
func TestPullerLagTracking(t *testing.T) {
	clock := sched.NewFakeClock()
	fp := newFakePrimary(t)
	fp.createGraph("g", 1)
	a := newFakeApplier()
	p := newTestPuller(fp, a, nil, nil, clock)
	if err := p.PullOnce(context.Background()); err != nil {
		t.Fatalf("initial pull: %v", err)
	}

	fp.commitBatch("g")
	fp.commitBatch("g")
	fp.mu.Lock()
	fp.walFailAlways = true
	fp.mu.Unlock()
	if err := p.PullOnce(context.Background()); err == nil {
		t.Fatal("pull with failing WAL endpoint succeeded")
	}
	st := p.Status()
	if st.LagVersions != 2 {
		t.Fatalf("LagVersions = %d, want 2", st.LagVersions)
	}
	clock.Advance(5 * time.Second)
	if got := p.Status().LagMs; got != 5000 {
		t.Fatalf("LagMs = %.0f after 5s behind, want 5000", got)
	}

	fp.mu.Lock()
	fp.walFailAlways = false
	fp.mu.Unlock()
	if err := p.PullOnce(context.Background()); err != nil {
		t.Fatalf("healed pull: %v", err)
	}
	st = p.Status()
	if st.LagVersions != 0 || st.LagMs != 0 {
		t.Fatalf("caught-up lag = %d versions / %.0fms, want 0/0", st.LagVersions, st.LagMs)
	}
}

// TestPullerSetPrimaryResetsCursors: repointing at a new primary resets
// WAL cursors; version dedup keeps application exactly-once even though
// the new source's log is re-read from zero.
func TestPullerSetPrimaryResetsCursors(t *testing.T) {
	fp1 := newFakePrimary(t)
	fp1.createGraph("g", 1)
	fp1.commitBatch("g")
	fp1.commitBatch("g")

	a := newFakeApplier()
	p := newTestPuller(fp1, a, nil, nil, nil)
	if err := p.PullOnce(context.Background()); err != nil {
		t.Fatalf("pull from first primary: %v", err)
	}

	// Second primary: same lineage, one more batch (as a promoted
	// replica's store would hold).
	fp2 := newFakePrimary(t)
	fp2.createGraph("g", 1)
	fp2.commitBatch("g")
	fp2.commitBatch("g")
	want := fp2.commitBatch("g")
	fp2.setGen(2)

	var myGen uint64 = 1
	var mu sync.Mutex
	p2 := p // same puller, repointed
	p2.cfg.Generation = func() uint64 { mu.Lock(); defer mu.Unlock(); return myGen }
	p2.cfg.AdoptGeneration = func(g uint64) { mu.Lock(); defer mu.Unlock(); myGen = g }
	p2.SetPrimary(fp2.srv.URL)
	if err := p2.PullOnce(context.Background()); err != nil {
		t.Fatalf("pull from new primary: %v", err)
	}
	if v, _ := a.GraphVersion("g"); v != want {
		t.Fatalf("replica at version %d, want %d", v, want)
	}
	a.appliedOnce(t)
}
