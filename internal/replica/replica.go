// Package replica implements the WAL-shipping side of nucleusd's
// primary/replica split (docs/REPLICATION.md) — the Polynesia design
// transplanted to graphs: an update-optimized primary absorbs mutation
// batches, analytics-optimized read replicas serve decompose/query/
// anytime traffic, and consistency flows through log shipping.
//
// The transport is pull-based HTTP against the primary's /replication
// endpoints: a replica polls the manifest (per-graph version + WAL
// size), fetches byte ranges of each graph's write-ahead log, decodes
// them incrementally with store.WALScanner, and applies every committed
// batch — through the same durable BeginBatch/CommitBatch path a
// primary uses, so a replica is itself crash-recoverable and
// promotable. When the log cannot be extended onto the local state
// (first contact, compaction reset, corrupt frame, or a WAL whose
// header generation is newer than the local graph) the replica falls
// back to a full snapshot resync and re-tails the fresh log.
//
// Failover safety rests on the cluster generation stamped on every
// replication response and proxied write: a pull from a source whose
// generation is below the replica's own is rejected wholesale
// (ErrStaleSource), which is what fences a deposed primary that
// resurrects and still believes it leads; a source with a NEWER
// generation is adopted, which is how surviving replicas converge on a
// freshly promoted primary's epoch.
package replica

import (
	"errors"

	"nucleus/internal/store"
)

// HTTP protocol constants shared by the primary's replication handlers
// (internal/server), the puller, and the router.
const (
	// GenerationHeader carries the sender's cluster generation: stamped
	// by the router on proxied writes (fencing) and by nucleusd on every
	// /replication response (stale-source detection).
	GenerationHeader = "X-Nucleus-Generation"
	// WALSizeHeader carries the total WAL byte size on /replication/wal
	// responses, so the puller knows whether more bytes remain and
	// detects a compaction reset (size below its offset).
	WALSizeHeader = "X-Nucleus-Wal-Size"
)

// Node roles.
const (
	RoleStandalone = "standalone"
	RolePrimary    = "primary"
	RoleReplica    = "replica"
)

// ErrStaleSource reports a replication source (primary) whose cluster
// generation is older than this node's — a deposed primary that came
// back without learning of the promotion. Nothing from it is applied.
var ErrStaleSource = errors.New("replica: replication source has a stale generation")

// Manifest is the primary's replication catalogue: its generation and
// every persisted graph with the version and WAL extent a replica needs
// to decide what to pull.
type Manifest struct {
	Generation uint64          `json:"generation"`
	Role       string          `json:"role"`
	Graphs     []ManifestGraph `json:"graphs"`
}

// ManifestGraph is one graph's shippable state.
type ManifestGraph struct {
	Name     string `json:"name"`
	Version  uint64 `json:"version"`
	WALBytes int64  `json:"walBytes"`
}

// NodeStatus is the GET /replication/status document: the node's role
// and generation, how far its state extends, and — on replicas — the
// puller's progress. The router reads MaxVersion to pick the most
// caught-up replica at promotion time.
type NodeStatus struct {
	Role       string `json:"role"`
	Generation uint64 `json:"generation"`
	// MaxVersion is the highest published registry version on this node
	// (0 when empty): the promotion fitness score.
	MaxVersion uint64 `json:"maxVersion"`
	Graphs     int    `json:"graphs"`
	// Replica-only pull progress (zero values on primaries).
	Primary            string  `json:"primary,omitempty"`
	LagVersions        int64   `json:"lagVersions"`
	LagMs              float64 `json:"lagMs"`
	Pulls              int64   `json:"pulls"`
	PullErrors         int64   `json:"pullErrors"`
	StalePulls         int64   `json:"stalePulls"`
	BytesPulled        int64   `json:"bytesPulled"`
	SnapshotsInstalled int64   `json:"snapshotsInstalled"`
	BatchesApplied     int64   `json:"batchesApplied"`
	DuplicatesSkipped  int64   `json:"duplicatesSkipped"`
	LastError          string  `json:"lastError,omitempty"`
}

// Applier is what the puller applies shipped state through — the
// serving layer's registry+store, behind an interface so this package
// never imports internal/server. Implementations must be safe for
// concurrent use with live read traffic; batch application must be
// idempotent by version (applied=false for a version at or below the
// graph's current one) and must publish each batch at EXACTLY the
// version the primary acknowledged, so a promoted replica serves the
// identical version history.
type Applier interface {
	// GraphVersion reports the local published version of name, or
	// ok=false when the graph is not present.
	GraphVersion(name string) (uint64, bool)
	// GraphNames lists the locally present graphs (for dropping ones the
	// primary deleted).
	GraphNames() []string
	// InstallSnapshot replaces (or creates) the local graph with a full
	// shipped snapshot, publishing it at snap.Meta.Version. Installs at
	// or below the current local version are skipped by the caller.
	InstallSnapshot(name string, snap *store.Snapshot) error
	// ApplyBatch applies one committed batch at the primary's published
	// version. applied=false reports a duplicate (version already
	// reached) — not an error.
	ApplyBatch(name string, b *store.Batch, version uint64) (applied bool, err error)
	// DropGraph removes a graph the primary no longer has.
	DropGraph(name string) error
}

// Status is a snapshot of the puller's progress and lag, merged by the
// server into NodeStatus, /stats and /metrics.
type Status struct {
	// Primary is the source base URL currently being pulled.
	Primary string
	// LagVersions is Σ over manifest graphs of (primary version − local
	// version) at the end of the last pull: the committed-batch frames
	// not yet applied locally.
	LagVersions int64
	// LagMs is how long the replica has continuously been behind: 0 when
	// the last pull fully caught up, otherwise the time since the pull
	// that first observed the current lag streak.
	LagMs float64

	Pulls              int64
	Errors             int64
	StalePulls         int64
	BytesPulled        int64
	SnapshotsInstalled int64
	BatchesApplied     int64
	DuplicatesSkipped  int64
	LastError          string
}
