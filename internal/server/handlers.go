package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"nucleus/internal/graph"
	"nucleus/internal/hierarchy"
	"nucleus/internal/query"
)

// ---------------------------------------------------------------------------
// JSON plumbing.

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// maxJSONBody caps JSON request bodies (jobs, generate, estimates); graph
// uploads have their own MaxUploadBytes limit.
const maxJSONBody = 8 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "JSON body exceeds the %d-byte limit", mbe.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return false
	}
	return true
}

func queryInt(r *http.Request, name string, def int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("invalid %s=%q: want an integer", name, s)
	}
	return v, nil
}

// ---------------------------------------------------------------------------
// Health and stats.

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type statsResponse struct {
	UptimeSeconds float64          `json:"uptimeSeconds"`
	Requests      int64            `json:"requests"`
	Graphs        int              `json:"graphs"`
	Workers       int              `json:"workers"`
	Jobs          jobsStats        `json:"jobs"`
	Scheduler     schedulerStats   `json:"scheduler"`
	Cache         cacheStats       `json:"cache"`
	Mutations     mutationStats    `json:"mutations"`
	Index         indexStats       `json:"index"`
	Anytime       anytimeStats     `json:"anytime"`
	Persistence   persistenceStats `json:"persistence"`
	Replication   replicationStats `json:"replication"`
}

// replicationStats reports the node's place in a replicated deployment
// (see docs/REPLICATION.md). On a replica the lag/pull fields mirror
// GET /replication/status; FencedWrites counts writes rejected by the
// generation fence and Promotions counts replica→primary transitions
// this process performed.
type replicationStats struct {
	Role       string `json:"role"`
	Generation uint64 `json:"generation"`
	MaxVersion uint64 `json:"maxVersion"`
	// Replica-only pull progress (zero values elsewhere).
	Primary            string  `json:"primary,omitempty"`
	LagVersions        int64   `json:"lagVersions"`
	LagMs              float64 `json:"lagMs"`
	Pulls              int64   `json:"pulls"`
	PullErrors         int64   `json:"pullErrors"`
	StalePulls         int64   `json:"stalePulls"`
	BytesPulled        int64   `json:"bytesPulled"`
	SnapshotsInstalled int64   `json:"snapshotsInstalled"`
	BatchesApplied     int64   `json:"batchesApplied"`
	DuplicatesSkipped  int64   `json:"duplicatesSkipped"`
	FencedWrites       int64   `json:"fencedWrites"`
	Promotions         int64   `json:"promotions"`
	LastError          string  `json:"lastError,omitempty"`
}

// replicationStats assembles the /stats replication section from the
// node status and the fence counters.
func (s *Server) replicationStats() replicationStats {
	ns := s.nodeStatus()
	return replicationStats{
		Role:               ns.Role,
		Generation:         ns.Generation,
		MaxVersion:         ns.MaxVersion,
		Primary:            ns.Primary,
		LagVersions:        ns.LagVersions,
		LagMs:              ns.LagMs,
		Pulls:              ns.Pulls,
		PullErrors:         ns.PullErrors,
		StalePulls:         ns.StalePulls,
		BytesPulled:        ns.BytesPulled,
		SnapshotsInstalled: ns.SnapshotsInstalled,
		BatchesApplied:     ns.BatchesApplied,
		DuplicatesSkipped:  ns.DuplicatesSkipped,
		FencedWrites:       s.fencedWrites.Load(),
		Promotions:         s.promotions.Load(),
		LastError:          ns.LastError,
	}
}

// schedulerStats reports the workload-aware dispatch layer (see
// internal/sched and docs/OPERATIONS.md). PredictedWaitMs is the cost
// model's estimate of how long a job submitted now would queue.
type schedulerStats struct {
	PredictedWaitMs float64                    `json:"predictedWaitMs"`
	PerTenant       map[string]tenantStatsView `json:"perTenant"`
	CostModel       costModelStatsView         `json:"costModel"`
}

// tenantStatsView is one tenant's cumulative admission outcomes plus its
// live queue occupancy. Admitted counts jobs accepted into the queue;
// Shed counts refusals (at admission or by dispatch-time deadline
// expiry); Degraded counts jobs re-budgeted to meet their deadline.
// Weight is the tenant's deficit-round-robin weight (-tenant-weight; 1
// unless configured higher).
type tenantStatsView struct {
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed"`
	Degraded int64 `json:"degraded"`
	InFlight int   `json:"inFlight"`
	Queued   int   `json:"queued"`
	Weight   int   `json:"weight"`
}

// costModelStatsView reports the observed-cost model: how many
// (graph version, family, algorithm) keys it has learned, how its
// predictions split between learned (hits) and cold-prior (misses)
// answers, and its running mean absolute prediction error.
type costModelStatsView struct {
	Entries       int     `json:"entries"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	Observations  int64   `json:"observations"`
	MeanAbsErrPct float64 `json:"meanAbsErrPct"`
}

// anytimeStats reports the anytime serving surface (see docs/ANYTIME.md).
// ProgressSnapshots counts copy-on-write τ snapshots published by
// completed runs; Streams counts GET /jobs/{id}/stream connections
// served; BudgetedQueries counts GET /graphs/{name}/decompose requests
// admitted, and DeadlineStops how many of their runs were ended by the
// ?maxMs= wall-clock deadline rather than by convergence or the sweep
// budget.
type anytimeStats struct {
	ProgressSnapshots int64 `json:"progressSnapshots"`
	Streams           int64 `json:"streams"`
	BudgetedQueries   int64 `json:"budgetedQueries"`
	DeadlineStops     int64 `json:"deadlineStops"`
}

// persistenceStats reports the durable store (see internal/store and
// docs/OPERATIONS.md). Snapshots counts full snapshot writes (uploads,
// generates and compactions); WALAppends/WALBytes count appended frames
// (batch + commit) and their bytes since start. Replays is the number of
// graphs recovered at startup and ReplayedBatches the committed WAL
// batches re-applied for them; Compactions counts WALs folded into fresh
// snapshots. Errors counts non-fatal persistence failures (logged; the
// server keeps serving from memory).
type persistenceStats struct {
	Enabled         bool  `json:"enabled"`
	Snapshots       int64 `json:"snapshots"`
	WALAppends      int64 `json:"walAppends"`
	WALBytes        int64 `json:"walBytes"`
	Replays         int64 `json:"replays"`
	ReplayedBatches int64 `json:"replayedBatches"`
	Compactions     int64 `json:"compactions"`
	Errors          int64 `json:"errors"`
}

// indexStats reports the per-(graph version, family) instance cache.
// Builds counts flat s-clique incidence indexes materialized; Reuses
// counts requests served by a memoized instance (no re-counting of
// triangles/4-cliques at all); Fallbacks counts instances constructed
// without a flat index (over budget, indexing disabled, or the core
// family, whose CSR adjacency needs none). Bytes is the total size of all
// indexes built since start (an upper bound on live index memory: dead
// graph versions release theirs with the entry).
type indexStats struct {
	Builds    int64 `json:"builds"`
	Reuses    int64 `json:"reuses"`
	Fallbacks int64 `json:"fallbacks"`
	Bytes     int64 `json:"bytes"`
}

type jobsStats struct {
	Submitted int64 `json:"submitted"`
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Done      int   `json:"done"`
	Failed    int   `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	// Shed counts jobs refused by the admission policy or expired in the
	// queue (503 + Retry-After); Degraded counts jobs re-budgeted to a
	// computed maxSweeps so their deadline stayed feasible.
	Shed     int64 `json:"shed"`
	Degraded int64 `json:"degraded"`
}

type cacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Lookups is hits + misses: the number of decomposition requests
	// resolved against the cache (per-request accounting — a coalesced
	// request counts as one hit).
	Lookups  int64 `json:"lookups"`
	Entries  int   `json:"entries"`
	Capacity int   `json:"capacity"`
}

// mutationStats reports the mutation path and its warm-start savings.
type mutationStats struct {
	// Batches is the number of published edit batches; Applied/Ignored
	// count individual edits.
	Batches int64 `json:"batches"`
	Applied int64 `json:"applied"`
	Ignored int64 `json:"ignored"`
	// WarmRuns is the number of warm-started reconvergence runs seeded
	// from a previous version's κ; ColdRuns counts full decompositions
	// actually executed by the engines.
	WarmRuns int64 `json:"warmRuns"`
	ColdRuns int64 `json:"coldRuns"`
	// WarmSweeps is the total sweeps warm runs needed; SweepsSaved sums,
	// per warm run, the sweeps of the cold run it was seeded from minus
	// its own (0 when the seed came from peeling, which reports none).
	WarmSweeps  int64 `json:"warmSweeps"`
	SweepsSaved int64 `json:"sweepsSaved"`
}

// schedulerStats assembles the /stats scheduler section from the live
// dispatch queue and the cost model.
func (s *Server) schedulerStats() schedulerStats {
	st := s.jobs.sched.Stats()
	perTenant := make(map[string]tenantStatsView, len(st.PerTenant))
	for name, ts := range st.PerTenant {
		perTenant[name] = tenantStatsView{
			Admitted: ts.Admitted,
			Shed:     ts.Shed,
			Degraded: ts.Degraded,
			InFlight: ts.InFlight,
			Queued:   ts.Queued,
			Weight:   ts.Weight,
		}
	}
	cm := s.jobs.cost.Stats()
	return schedulerStats{
		PredictedWaitMs: s.jobs.sched.PredictedWaitMs(),
		PerTenant:       perTenant,
		CostModel: costModelStatsView{
			Entries:       cm.Entries,
			Hits:          cm.Hits,
			Misses:        cm.Misses,
			Observations:  cm.Observations,
			MeanAbsErrPct: cm.MeanAbsErrPct,
		},
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	queued, running := s.jobs.counts()
	hits, misses := s.cacheHits.Load(), s.cacheMisses.Load()
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Graphs:        s.reg.count(),
		Workers:       s.cfg.Workers,
		Jobs: jobsStats{
			Submitted: s.jobs.submitted.Load(),
			Queued:    queued,
			Running:   running,
			Done:      int(s.jobs.completed.Load()),
			Failed:    int(s.jobs.failed.Load()),
			Cancelled: s.jobs.cancelled.Load(),
			Shed:      s.jobs.shed.Load(),
			Degraded:  s.jobs.degraded.Load(),
		},
		Scheduler: s.schedulerStats(),
		Cache: cacheStats{
			Hits:     hits,
			Misses:   misses,
			Lookups:  hits + misses,
			Entries:  s.cache.len(),
			Capacity: s.cfg.CacheSize,
		},
		Mutations: mutationStats{
			Batches:     s.mutBatches.Load(),
			Applied:     s.mutApplied.Load(),
			Ignored:     s.mutIgnored.Load(),
			WarmRuns:    s.warmRuns.Load(),
			ColdRuns:    s.coldRuns.Load(),
			WarmSweeps:  s.warmSweeps.Load(),
			SweepsSaved: s.sweepsSaved.Load(),
		},
		Index: indexStats{
			Builds:    s.idxBuilds.Load(),
			Reuses:    s.idxReuses.Load(),
			Fallbacks: s.idxFallbacks.Load(),
			Bytes:     s.idxBytes.Load(),
		},
		Anytime: anytimeStats{
			ProgressSnapshots: s.progressSnaps.Load(),
			Streams:           s.sseStreams.Load(),
			BudgetedQueries:   s.budgetedQueries.Load(),
			DeadlineStops:     s.deadlineStops.Load(),
		},
		Persistence: persistenceStats{
			Enabled:         s.store.Durable(),
			Snapshots:       s.snapSaves.Load(),
			WALAppends:      s.walAppends.Load(),
			WALBytes:        s.walBytes.Load(),
			Replays:         s.replays.Load(),
			ReplayedBatches: s.replayedBatches.Load(),
			Compactions:     s.compactions.Load(),
			Errors:          s.persistErrors.Load(),
		},
		Replication: s.replicationStats(),
	})
}

// ---------------------------------------------------------------------------
// Graph registry.

type graphView struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	M    int64  `json:"m"`
	// Version is the registry version of this graph; edit batches and
	// re-uploads bump it (cached results are keyed by it).
	Version uint64 `json:"version"`
	// Mutations is the number of edit batches applied to reach this
	// version (0 for a fresh upload/generation).
	Mutations int       `json:"mutations"`
	Source    string    `json:"source"`
	CreatedAt time.Time `json:"createdAt"`
}

func viewGraph(e *graphEntry) graphView {
	return graphView{
		Name: e.name, N: e.g.N(), M: e.g.M(),
		Version: e.version, Mutations: e.mutations,
		Source: e.source, CreatedAt: e.created,
	}
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.list()
	out := make([]graphView, len(entries))
	for i, e := range entries {
		out[i] = viewGraph(e)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleUploadGraph(w http.ResponseWriter, r *http.Request) {
	if !s.admitWrite(w, r) {
		return
	}
	name := r.PathValue("name")
	format := r.URL.Query().Get("format")
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	g, err := readGraph(format, body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "upload exceeds the %d-byte limit", mbe.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "parsing %s upload: %v", orDefault(format, "edgelist"), err)
		return
	}
	s.registerGraph(w, name, "upload:"+orDefault(format, "edgelist"), g)
}

// registerGraph installs a parsed upload/generation under the per-name
// mutation lock and persists its snapshot before acknowledging, so a 201
// means the graph survives a crash. The lock keeps the install + snapshot
// pair atomic with respect to edit batches, compaction and other uploads
// of the same name. Persistence failure rolls the registration back: the
// entry the upload displaced (if any) is reinstated — a failed re-upload
// must not destroy the healthy graph clients are querying — and its cache
// entries, never purged on this path, remain valid.
func (s *Server) registerGraph(w http.ResponseWriter, name, source string, g *graph.Graph) {
	lock := s.reg.mutationLock(name)
	lock.Lock()
	prev, hadPrev := s.reg.get(name)
	e := s.reg.put(name, source, g)
	err := s.persistSnapshot(e)
	if err != nil {
		s.persistErrors.Add(1)
		if hadPrev {
			s.reg.install(prev)
		} else {
			s.reg.deleteIf(name, e.version)
		}
		lock.Unlock()
		writeError(w, http.StatusInternalServerError, "persisting graph %q: %v", name, err)
		return
	}
	lock.Unlock()
	s.cache.purgeGraph(name, e.version) // replacement invalidates prior results
	writeJSON(w, http.StatusCreated, viewGraph(e))
}

func (s *Server) handleGenerateGraph(w http.ResponseWriter, r *http.Request) {
	if !s.admitWrite(w, r) {
		return
	}
	name := r.PathValue("name")
	var req generateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	g, err := generate(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.registerGraph(w, name, "generator:"+req.Generator, g)
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, viewGraph(e))
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	if !s.admitWrite(w, r) {
		return
	}
	name := r.PathValue("name")
	// Existence pre-check before creating a per-name mutation lock (same
	// rationale as the mutation path: junk names must not allocate locks).
	if _, ok := s.reg.get(name); !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", name)
		return
	}
	lock := s.reg.mutationLock(name)
	lock.Lock()
	e, ok := s.reg.delete(name)
	var storeErr error
	if ok {
		storeErr = s.store.Delete(name)
	}
	lock.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", name)
		return
	}
	s.cache.purgeGraph(name, e.version+1)
	if storeErr != nil {
		s.persistErrors.Add(1)
		writeError(w, http.StatusInternalServerError, "graph %q removed from memory, but deleting its persisted data failed: %v", name, storeErr)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// ---------------------------------------------------------------------------
// Jobs.

type jobView struct {
	ID            string `json:"id"`
	Graph         string `json:"graph"`
	Decomposition string `json:"decomposition"`
	Algorithm     string `json:"algorithm"`
	MaxSweeps     int    `json:"maxSweeps"`
	// Threads is the effective intra-job worker count: the request value,
	// defaulted to the server's -job-threads and clamped to the host.
	Threads     int       `json:"threads"`
	State       JobState  `json:"state"`
	Cached      bool      `json:"cached"`
	Error       string    `json:"error,omitempty"`
	SubmittedAt time.Time `json:"submittedAt"`
	// Scheduling facts: the submitting tenant, the requested relative
	// deadline (0 when none), the cost model's price for the admitted
	// run, and — while queued — the job's 1-based EDF rank within its
	// tenant's queue (0 otherwise). Degraded marks a job the admission
	// policy re-budgeted to meet its deadline; its result reports
	// converged=false like any sweep-bounded run.
	Tenant          string  `json:"tenant"`
	DeadlineMs      int     `json:"deadlineMs,omitempty"`
	PredictedCostMs float64 `json:"predictedCostMs"`
	QueuePosition   int     `json:"queuePosition,omitempty"`
	Degraded        bool    `json:"degraded"`
	// Result summary; meaningful (non-zero) once State is done. No
	// omitempty: clients rely on "converged": false being visible for
	// sweep-bounded approximate runs.
	Cells      int   `json:"cells"`
	MaxKappa   int32 `json:"maxKappa"`
	Converged  bool  `json:"converged"`
	Iterations int   `json:"iterations"`
	Sweeps     int   `json:"sweeps"`
	// DurationMS is wall time from start to finish (0 for cache hits).
	DurationMS float64 `json:"durationMs"`
}

func viewJob(j *job) jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:              j.id,
		Graph:           j.req.Graph,
		Decomposition:   j.req.Decomposition,
		Algorithm:       j.req.Algorithm,
		MaxSweeps:       j.req.MaxSweeps,
		Threads:         j.threads,
		State:           j.state,
		Cached:          j.cached,
		Error:           j.errMsg,
		SubmittedAt:     j.submitted,
		Tenant:          j.tenant,
		DeadlineMs:      j.deadlineMs,
		PredictedCostMs: j.predictedMs,
		Degraded:        j.degraded,
	}
	if j.state == JobQueued {
		// Lock order j.mu → scheduler, matching cancel.
		v.QueuePosition = j.mgr.sched.Position(j.id)
	}
	if j.state == JobDone && j.result != nil {
		v.Cells = len(j.result.Kappa)
		v.MaxKappa = j.result.MaxKappa
		v.Converged = j.result.Converged
		v.Iterations = j.result.Iterations
		v.Sweeps = j.result.Sweeps
	}
	if !j.finished.IsZero() && !j.started.IsZero() {
		v.DurationMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	}
	return v
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	deadlineMs, err := queryInt(r, "deadlineMs", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if deadlineMs < 0 {
		writeError(w, http.StatusBadRequest, "deadlineMs must be non-negative, got %d", deadlineMs)
		return
	}
	j, err := s.jobs.submit(req, r.Header.Get("X-Nucleus-Tenant"), deadlineMs)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, errQueueFull), errors.Is(err, errTenantQuota):
			status = http.StatusTooManyRequests
		case errors.Is(err, errUnknownGraph):
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	v := viewJob(j)
	if v.State == JobShed {
		// The admission policy refused the job: the deadline (or the
		// -max-queue-wait ceiling) cannot survive the predicted queue
		// wait. Retry-After estimates when the backlog will have drained.
		w.Header().Set("Retry-After", strconv.Itoa(s.jobs.retryAfterSec()))
		writeJSON(w, http.StatusServiceUnavailable, v)
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.list()
	out := make([]jobView, len(jobs))
	for i, j := range jobs {
		out[i] = viewJob(j)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, viewJob(j))
}

type jobResultResponse struct {
	jobView
	// Histogram[k] is the number of cells with κ index exactly k.
	Histogram []int64 `json:"histogram"`
	// Kappa is the full per-cell κ array; only with ?kappa=true.
	Kappa []int32 `json:"kappa,omitempty"`
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	v := viewJob(j)
	switch v.State {
	case JobDone:
	case JobFailed:
		writeError(w, http.StatusConflict, "job %s failed: %s", v.ID, v.Error)
		return
	case JobCancelled:
		writeError(w, http.StatusConflict, "job %s was cancelled; its partial result is on GET /jobs/%s/progress", v.ID, v.ID)
		return
	case JobShed:
		w.Header().Set("Retry-After", strconv.Itoa(s.jobs.retryAfterSec()))
		writeError(w, http.StatusServiceUnavailable, "job %s was shed: %s", v.ID, v.Error)
		return
	default:
		writeError(w, http.StatusConflict, "job %s is %s; poll GET /jobs/%s until done", v.ID, v.State, v.ID)
		return
	}
	j.mu.Lock()
	res := j.result
	j.mu.Unlock()
	hist := make([]int64, res.MaxKappa+1)
	for _, k := range res.Kappa {
		hist[k]++
	}
	out := jobResultResponse{jobView: v, Histogram: hist}
	if r.URL.Query().Get("kappa") == "true" {
		out.Kappa = res.Kappa
	}
	writeJSON(w, http.StatusOK, out)
}

// ---------------------------------------------------------------------------
// Query-driven estimation (synchronous).

type estimateCoreRequest struct {
	Graph string `json:"graph"`
	// Vertices are the query vertex ids.
	Vertices []uint32 `json:"vertices"`
	// Hops is the BFS radius of the local region; 0 means only the
	// queries themselves (τ = degree).
	Hops int `json:"hops"`
	// MaxSweeps bounds the restricted iterations; 0 runs the restricted
	// computation to convergence.
	MaxSweeps int `json:"maxSweeps"`
}

type estimateResponse struct {
	Graph string `json:"graph"`
	// Estimates[i] is the τ upper bound for the i-th query (−1 for a
	// truss query edge not present in the graph).
	Estimates []int32 `json:"estimates"`
	// ActiveCells is how many cells the restricted computation touched —
	// the cost measure of the paper's query-driven scenario.
	ActiveCells int `json:"activeCells"`
	Sweeps      int `json:"sweeps"`
}

func (s *Server) handleEstimateCore(w http.ResponseWriter, r *http.Request) {
	var req estimateCoreRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	e, ok := s.reg.get(req.Graph)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", req.Graph)
		return
	}
	if len(req.Vertices) == 0 {
		writeError(w, http.StatusBadRequest, "vertices must be non-empty")
		return
	}
	for _, v := range req.Vertices {
		if int(v) >= e.g.N() {
			writeError(w, http.StatusBadRequest, "vertex %d out of range (n=%d)", v, e.g.N())
			return
		}
	}
	s.acquireSync()
	defer s.releaseSync() // defer: an engine panic must not leak the slot
	est := query.CoreNumbersOn(s.instanceOf(e, "core"), e.g, req.Vertices, req.Hops, req.MaxSweeps)
	writeJSON(w, http.StatusOK, estimateResponse{
		Graph:       req.Graph,
		Estimates:   est.Tau,
		ActiveCells: est.ActiveCells,
		Sweeps:      est.Result.Sweeps,
	})
}

type estimateTrussRequest struct {
	Graph string `json:"graph"`
	// Edges are the query edges as [u, v] endpoint pairs.
	Edges     [][2]uint32 `json:"edges"`
	Hops      int         `json:"hops"`
	MaxSweeps int         `json:"maxSweeps"`
}

func (s *Server) handleEstimateTruss(w http.ResponseWriter, r *http.Request) {
	var req estimateTrussRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	e, ok := s.reg.get(req.Graph)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", req.Graph)
		return
	}
	if len(req.Edges) == 0 {
		writeError(w, http.StatusBadRequest, "edges must be non-empty")
		return
	}
	for _, ed := range req.Edges {
		if int(ed[0]) >= e.g.N() || int(ed[1]) >= e.g.N() {
			writeError(w, http.StatusBadRequest, "edge [%d %d] out of range (n=%d)", ed[0], ed[1], e.g.N())
			return
		}
	}
	s.acquireSync()
	defer s.releaseSync()
	est := query.TrussNumbersOn(s.instanceOf(e, "truss"), e.g, req.Edges, req.Hops, req.MaxSweeps)
	writeJSON(w, http.StatusOK, estimateResponse{
		Graph:       req.Graph,
		Estimates:   est.Tau,
		ActiveCells: est.ActiveCells,
		Sweeps:      est.Result.Sweeps,
	})
}

// ---------------------------------------------------------------------------
// Hierarchy, nuclei and densest subgraph (synchronous, cache-backed).

// decParams extracts and validates the dec/alg/maxSweeps query parameters
// shared by the hierarchy and nuclei endpoints.
func (s *Server) decParams(w http.ResponseWriter, r *http.Request) (dec, alg string, maxSweeps int, ok bool) {
	var err error
	if dec, err = normalizeDec(r.URL.Query().Get("dec")); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return "", "", 0, false
	}
	if alg, err = normalizeAlg(r.URL.Query().Get("alg")); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return "", "", 0, false
	}
	if maxSweeps, err = queryInt(r, "maxSweeps", 0); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return "", "", 0, false
	}
	return dec, alg, maxSweeps, true
}

func (s *Server) handleHierarchy(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", r.PathValue("name"))
		return
	}
	dec, alg, maxSweeps, ok := s.decParams(w, r)
	if !ok {
		return
	}
	res, err := s.kappaFor(e, dec, alg, maxSweeps)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	forest := hierarchy.Build(res.Inst, res.Kappa)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = forest.WriteJSON(w, e.g)
}

type nucleusView struct {
	// Cells is the number of cells (vertices/edges/triangles) in the
	// nucleus.
	Cells int `json:"cells"`
	// Vertices is the nucleus vertex set, ascending.
	Vertices []uint32 `json:"vertices"`
}

type nucleiResponse struct {
	Graph         string        `json:"graph"`
	Decomposition string        `json:"decomposition"`
	K             int           `json:"k"`
	Nuclei        []nucleusView `json:"nuclei"`
}

func (s *Server) handleNuclei(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", r.PathValue("name"))
		return
	}
	dec, alg, maxSweeps, ok := s.decParams(w, r)
	if !ok {
		return
	}
	k, err := queryInt(r, "k", 1)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if k < 0 || k > math.MaxInt32 {
		// κ indices are int32; a wider k would wrap when truncated below.
		writeError(w, http.StatusBadRequest, "k=%d out of range [0, %d]", k, math.MaxInt32)
		return
	}
	res, err := s.kappaFor(e, dec, alg, maxSweeps)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	inst := res.Inst
	cellSets := hierarchy.KNucleusSubgraphs(inst, res.Kappa, int32(k))
	out := nucleiResponse{Graph: e.name, Decomposition: dec, K: k, Nuclei: []nucleusView{}}
	for _, cells := range cellSets {
		out.Nuclei = append(out.Nuclei, nucleusView{
			Cells:    len(cells),
			Vertices: hierarchy.CellsToVertices(inst, cells),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

type densestResponse struct {
	Graph         string   `json:"graph"`
	Method        string   `json:"method"`
	Vertices      []uint32 `json:"vertices"`
	Edges         int64    `json:"edges"`
	AverageDegree float64  `json:"averageDegree"`
	EdgeDensity   float64  `json:"edgeDensity"`
}

func (s *Server) handleDensest(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", r.PathValue("name"))
		return
	}
	method := orDefault(r.URL.Query().Get("method"), "approx")
	if method != "approx" && method != "maxcore" {
		writeError(w, http.StatusBadRequest, "unknown method %q (want approx or maxcore)", method)
		return
	}
	s.acquireSync() // a memo miss runs a full graph peel
	defer s.releaseSync()
	res := e.densestFor(method)
	writeJSON(w, http.StatusOK, densestResponse{
		Graph:         e.name,
		Method:        method,
		Vertices:      res.Vertices,
		Edges:         res.Edges,
		AverageDegree: res.AverageDegree,
		EdgeDensity:   res.EdgeDensity,
	})
}
