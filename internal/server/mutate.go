package server

import (
	"log"
	"net/http"
	"strconv"

	"nucleus/internal/dynamic"
	"nucleus/internal/localhi"
	"nucleus/internal/store"
)

// ---------------------------------------------------------------------------
// Incremental edge mutations (POST /graphs/{name}/edges).
//
// The paper's premise (§1.2) is that κ indices depend only on local
// structure, so an edited graph should never pay a cold full-graph
// decomposition. The mutation path exploits that twice:
//
//   - core numbers are repaired *during* the batch by the subcore
//     traversal of package dynamic (each edit touches only the κ=k region
//     around the edge), keeping an exact maintained κ array;
//   - the decomposition cache for the republished version is warm-seeded
//     from the previous version's cached κ via the Lemma 2 warm start
//     (old κ + insert count is a valid upper start), so the next
//     core/truss request reconverges in a few sweeps instead of from the
//     degrees.
//
// Publication is copy-on-write: the mutable overlay is snapshotted into a
// fresh immutable CSR graph installed under a bumped version, so jobs
// in flight on the previous version keep their consistent snapshot.
//
// Durability (package store): each batch is appended to the graph's WAL
// BEFORE it touches the overlay, and a commit frame carrying the published
// version is appended after replaceIf succeeds — both under the per-name
// mutation lock, so the pair is adjacent in the log. Warm cache seeding
// runs after the lock is released: it is reconvergence work over the whole
// graph, and serializing it with the next batch would turn the mutation
// path into a decomposition queue (regression tests:
// TestConcurrentMutatorsWarmSeed, TestWarmSeedHoldsNoMutationLock).

// edgeOp is one edit of a mutation batch.
type edgeOp struct {
	// Op is "add" or "remove".
	Op string `json:"op"`
	U  uint32 `json:"u"`
	V  uint32 `json:"v"`
}

// mutateRequest is the JSON body of POST /graphs/{name}/edges.
type mutateRequest struct {
	Edits []edgeOp `json:"edits"`
	// GrowTo optionally raises the vertex count beyond the largest edit
	// endpoint (for trailing isolated vertices). Added edges grow the
	// graph implicitly.
	GrowTo int `json:"growTo"`
}

// mutateResponse reports one applied batch.
type mutateResponse struct {
	Graph   string `json:"graph"`
	Version uint64 `json:"version"`
	N       int    `json:"n"`
	M       int64  `json:"m"`
	// Added/Removed count edits that changed the graph; Ignored counts
	// no-ops (duplicate adds, absent removes, self-loops, out-of-range
	// removes).
	Added   int `json:"added"`
	Removed int `json:"removed"`
	Ignored int `json:"ignored"`
	// MaxCore is the maximum maintained core number after the batch.
	MaxCore int32 `json:"maxCore"`
	// WarmSeeded lists the decompositions whose cache entries for the new
	// version were re-derived by warm-started reconvergence.
	WarmSeeded []string `json:"warmSeeded"`
}

func (s *Server) handleMutateGraph(w http.ResponseWriter, r *http.Request) {
	if !s.admitWrite(w, r) {
		return
	}
	name := r.PathValue("name")
	var req mutateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Edits) == 0 {
		writeError(w, http.StatusBadRequest, "edits must be non-empty")
		return
	}
	// Validate and convert to the WAL batch representation up front: the
	// durable log must never contain an op the replayer cannot interpret.
	batch := &store.Batch{Edits: make([]store.BatchOp, len(req.Edits))}
	if req.GrowTo > 0 {
		batch.GrowTo = req.GrowTo
	}
	for i, ed := range req.Edits {
		switch ed.Op {
		case "add":
			batch.Edits[i] = store.BatchOp{Op: store.OpAdd, U: ed.U, V: ed.V}
		case "remove":
			batch.Edits[i] = store.BatchOp{Op: store.OpRemove, U: ed.U, V: ed.V}
		default:
			writeError(w, http.StatusBadRequest, "edit %d: unknown op %q (want add or remove)", i, ed.Op)
			return
		}
	}

	// Cheap existence pre-check before creating a per-name mutation lock:
	// without it, requests naming junk graphs would grow the lock map
	// without bound (locks are deliberately retained across versions).
	if _, ok := s.reg.get(name); !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", name)
		return
	}

	// Lock ordering matters here: the per-name mutation lock FIRST, the
	// sync slot only once this batch is actually next in line. The other
	// way around, every batch queued on one hot graph would pin a slot
	// while blocked on the lock, starving the sync endpoints of every
	// other graph.
	lock := s.reg.mutationLock(name)
	lock.Lock()
	locked := true
	unlock := func() {
		if locked {
			locked = false
			lock.Unlock()
		}
	}
	defer unlock()

	// Overlay repair, snapshot and warm seeding are graph-sized work on a
	// request goroutine; take a sync slot like the other such endpoints,
	// held across the warm seeding below (which runs after unlock).
	s.acquireSync() //nucleus:lint-ignore lockdiscipline deliberate ordering per the comment above: mutation lock first, sync slot second, so queued batches never pin slots
	defer s.releaseSync()

	old, ne, resp, ok := s.applyMutationLocked(w, name, batch)
	if !ok {
		return // error already written
	}
	unlock() // warm seeding must not serialize the next batch of this name
	if ne != nil {
		// Published: warm-seed the new version's cache from the old
		// version's results OUTSIDE the mutation lock — the next batch of
		// this name must not queue behind graph-sized reconvergence — then
		// purge the now-stale entries (the seeds carry the new version and
		// survive the purge).
		resp.WarmSeeded = s.warmSeed(old, ne, resp.Added)
		s.cache.purgeGraph(name, ne.version)
	}
	s.maybeCompact(name)
	writeJSON(w, http.StatusOK, resp)
}

// batchNeedN resolves the vertex count a batch requires: the current n,
// the explicit growTo, and one past the largest added endpoint. int64
// arithmetic so an add naming vertex 2^31-1 overflows nothing on 32-bit
// platforms and trips the ceiling check at the call site. Self-loop adds
// are rejected at apply time and must not grow the graph either.
func batchNeedN(n int, b *store.Batch) int64 {
	needN := int64(n)
	if int64(b.GrowTo) > needN {
		needN = int64(b.GrowTo)
	}
	for _, ed := range b.Edits {
		if ed.Op != store.OpAdd || ed.U == ed.V {
			continue
		}
		if v := int64(ed.U) + 1; v > needN {
			needN = v
		}
		if v := int64(ed.V) + 1; v > needN {
			needN = v
		}
	}
	return needN
}

// applyBatch grows the overlay and applies one batch to it, repairing κ
// incrementally. The no-op semantics (duplicate adds, absent or
// out-of-range removes, self-loops) are shared verbatim between the HTTP
// handler and WAL replay — recovery MUST reproduce the handler's exact
// decisions or replayed graphs would drift from the acknowledged state.
func applyBatch(dyn *dynamic.Graph, b *store.Batch, needN int) (added, removed, ignored int) {
	dyn.Grow(needN)
	for _, ed := range b.Edits {
		switch {
		case ed.Op == store.OpAdd && dyn.InsertEdge(ed.U, ed.V):
			added++
		case ed.Op == store.OpRemove && int(ed.U) < dyn.N() && int(ed.V) < dyn.N() && dyn.RemoveEdge(ed.U, ed.V):
			removed++
		default:
			ignored++
		}
	}
	return added, removed, ignored
}

// applyMutationLocked is the critical section of the mutation path:
// holding the per-name mutation lock (the caller's), it write-ahead logs
// the batch, repairs the overlay, publishes the copy-on-write snapshot
// and logs the commit. It returns the entry the batch was applied
// against, the published entry (nil for a fully no-op batch) and the
// response skeleton; ok=false means an error response was already
// written.
func (s *Server) applyMutationLocked(w http.ResponseWriter, name string, batch *store.Batch) (old, ne *graphEntry, resp *mutateResponse, ok bool) {
	e, found := s.reg.get(name)
	if !found {
		writeError(w, http.StatusNotFound, "unknown graph %q", name)
		return nil, nil, nil, false
	}

	// Resolve and bound the target vertex count before anything durable or
	// mutable happens.
	needN := batchNeedN(e.g.N(), batch)
	if needN > maxGenVertices {
		writeError(w, http.StatusBadRequest, "mutation would grow the graph to %d vertices, exceeding the limit of %d", needN, maxGenVertices)
		return nil, nil, nil, false
	}

	// Write-ahead: the batch must be durable before it is applied. A
	// failure here rejects the batch outright — nothing has been mutated.
	if n, err := s.store.BeginBatch(name, batch); err != nil {
		s.persistErrors.Add(1)
		writeError(w, http.StatusInternalServerError, "writing batch to the WAL: %v", err)
		return nil, nil, nil, false
	} else if n > 0 {
		s.walAppends.Add(1)
		s.walBytes.Add(int64(n))
	}

	dyn := e.dyn
	if dyn == nil {
		// First mutation of this lineage: build the overlay, seeding its
		// core numbers from the recovered/maintained κ or from a cached
		// exact decomposition when one exists (skipping FromStatic's cold
		// peel).
		switch {
		case e.coreKappa != nil:
			dyn = dynamic.FromStaticCores(e.g, e.coreKappa)
		default:
			if seed := s.exactCoreKappa(e); seed != nil {
				dyn = dynamic.FromStaticCores(e.g, seed)
			} else {
				dyn = dynamic.FromStatic(e.g)
			}
		}
	}
	// needN <= maxGenVertices, so the int conversion is safe.
	added, removed, ignored := applyBatch(dyn, batch, int(needN))

	if added == 0 && removed == 0 && dyn.N() == e.g.N() {
		// Fully no-op batch (e.g. an idempotent retry): the graph is
		// bit-identical, so don't republish — a version bump would purge
		// every cache entry the warm seeder does not re-derive (n34, snd,
		// bounded runs) and pay an O(m) snapshot for nothing. No commit
		// frame either: replay drops the batch, which is exactly right
		// since it changed nothing. Keep the (possibly just-built) overlay
		// for the next batch; e.dyn is only touched under the per-name
		// mutation lock held here.
		e.dyn = dyn
		s.mutIgnored.Add(int64(ignored))
		return e, nil, &mutateResponse{
			Graph:      name,
			Version:    e.version,
			N:          e.g.N(),
			M:          e.g.M(),
			Ignored:    ignored,
			MaxCore:    maxOf(dyn.CoreNumbers()),
			WarmSeeded: []string{},
		}, true
	}

	// Copy-on-write publication: snapshot the overlay into a fresh
	// immutable entry. In-flight work on the old version keeps its graph.
	kappa := append([]int32(nil), dyn.CoreNumbers()...)
	ne = &graphEntry{
		name:      name,
		g:         dyn.Static(),
		source:    e.source,
		created:   e.created,
		dyn:       dyn,
		coreKappa: kappa,
		mutations: e.mutations + 1,
	}
	if !s.reg.replaceIf(name, e.version, ne) {
		// Defensive: uploads and deletes now hold this same lock, so a
		// concurrent replacement should be impossible — but if it ever
		// happens, our edits are against a dead snapshot and must not be
		// published (the uncommitted WAL batch is dropped on replay).
		writeError(w, http.StatusConflict, "graph %q was replaced concurrently; re-fetch and retry", name)
		return nil, nil, nil, false
	}
	// Commit frame: replay applies the batch at exactly this version. A
	// failed append cannot be rolled back (the overlay already mutated and
	// the version published), so it degrades durability, loudly: the batch
	// may not survive a restart.
	if n, err := s.store.CommitBatch(name, ne.version); err != nil {
		s.persistErrors.Add(1)
		log.Printf("nucleusd: WAL commit for graph %q version %d failed (batch applied in memory, may be lost on restart): %v", name, ne.version, err)
	} else if n > 0 {
		s.walAppends.Add(1)
		s.walBytes.Add(int64(n))
	}
	s.mutBatches.Add(1)
	s.mutApplied.Add(int64(added + removed))
	s.mutIgnored.Add(int64(ignored))

	return e, ne, &mutateResponse{
		Graph:   name,
		Version: ne.version,
		N:       ne.g.N(),
		M:       ne.g.M(),
		Added:   added,
		Removed: removed,
		Ignored: ignored,
		MaxCore: maxOf(kappa),
	}, true
}

func maxOf(kappa []int32) int32 {
	m := int32(0)
	for _, k := range kappa {
		if k > m {
			m = k
		}
	}
	return m
}

// exactCoreKappa returns an exact (converged, unbounded) core-number array
// for the entry from the result cache, or nil.
func (s *Server) exactCoreKappa(e *graphEntry) []int32 {
	if res := s.convergedResult(e, "core"); res != nil {
		return res.Kappa
	}
	return nil
}

// convergedResult returns a cached converged full-budget decomposition of
// the entry for dec under any algorithm, preferring the local algorithms
// (whose Sweeps field makes the warm saving measurable).
func (s *Server) convergedResult(e *graphEntry, dec string) *decompResult {
	for _, alg := range []string{"and", "snd", "peel"} {
		if res, ok := s.cache.peek(cacheKey{e.name, e.version, dec, alg, 0}); ok && res.Converged {
			return res
		}
	}
	return nil
}

// warmSeed re-derives the new version's core/truss cache entries by
// Lemma 2 warm-started reconvergence instead of letting the next request
// pay a cold run. Seeding happens only for decompositions the previous
// version had a cached converged result for (demonstrated interest), and
// lands under the (dec, "and", 0) key — the warm runs ARE converged And
// runs — which is exactly the key the default job/hierarchy path
// consults. Returns the seeded decomposition names.
//
// Core gets the tightest possible start: the overlay's incrementally
// maintained κ is already exact for the NEW graph, so the run starts at
// the fixpoint (bump 0) and needs only one scan plus the certification
// sweep — it doubles as a convergence check of the maintained array.
// Truss has no maintained counterpart, so it starts from the previous
// version's κ bumped by the insert count (each insertion raises truss
// numbers by at most one).
func (s *Server) warmSeed(old, ne *graphEntry, inserts int) []string {
	seeded := []string{} // non-nil so the response field is [] rather than null
	threads := s.cfg.JobThreads
	var keys []cacheKey
	if seedRes := s.convergedResult(old, "core"); seedRes != nil {
		inst := s.instanceOf(ne, "core")
		lr := dynamic.WarmCoreNumbersOn(inst, ne.g, ne.coreKappa, 0, threads)
		s.recordWarm(seedRes, lr)
		k := cacheKey{ne.name, ne.version, "core", "and", 0}
		s.cache.put(k, localResult(lr, inst))
		keys = append(keys, k)
		seeded = append(seeded, "core")
	}
	if seedRes := s.convergedResult(old, "truss"); seedRes != nil {
		inst := s.instanceOf(ne, "truss")
		lr := dynamic.WarmTrussNumbersOn(inst, ne.g, old.g, seedRes.Kappa, inserts, threads)
		s.recordWarm(seedRes, lr)
		k := cacheKey{ne.name, ne.version, "truss", "and", 0}
		s.cache.put(k, localResult(lr, inst))
		keys = append(keys, k)
		seeded = append(seeded, "truss")
	}
	// Liveness recheck, mirroring computeShared: if ne was itself replaced
	// (or the graph deleted) while the warm runs executed, that
	// replacement's purge may have run before our puts — take the dead
	// entries back out rather than pinning κ arrays and s-clique indices
	// in the LRU unreachable.
	if cur, ok := s.reg.get(ne.name); !ok || cur.version != ne.version {
		for _, k := range keys {
			s.cache.remove(k)
		}
	}
	return seeded
}

// recordWarm updates the warm-start counters: the sweeps the warm run
// spent, and — when the seed result came from a sweep-reporting local
// algorithm — the sweeps saved relative to that cold run.
func (s *Server) recordWarm(seed *decompResult, lr *localhi.Result) {
	s.warmRuns.Add(1)
	s.warmSweeps.Add(int64(lr.Sweeps))
	if seed.Sweeps > lr.Sweeps {
		s.sweepsSaved.Add(int64(seed.Sweeps - lr.Sweeps))
	}
}

// ---------------------------------------------------------------------------
// Maintained core-number point lookups (GET /graphs/{name}/core?v=…).

// coreLookupResponse answers a point lookup of core numbers.
type coreLookupResponse struct {
	Graph   string `json:"graph"`
	Version uint64 `json:"version"`
	// Maintained is true when the answer came straight from the κ array
	// kept up to date by the mutation path (O(1) per vertex); false when
	// it was served from a (possibly freshly computed) cached full
	// decomposition.
	Maintained  bool     `json:"maintained"`
	Vertices    []uint32 `json:"vertices"`
	CoreNumbers []int32  `json:"coreNumbers"`
}

func (s *Server) handleCoreLookup(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", r.PathValue("name"))
		return
	}
	raw := r.URL.Query()["v"]
	if len(raw) == 0 {
		writeError(w, http.StatusBadRequest, "at least one v=<vertex id> parameter is required")
		return
	}
	vertices := make([]uint32, 0, len(raw))
	for _, sv := range raw {
		v, err := strconv.ParseUint(sv, 10, 32)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid v=%q: want a vertex id", sv)
			return
		}
		if int(v) >= e.g.N() {
			writeError(w, http.StatusBadRequest, "vertex %d out of range (n=%d)", v, e.g.N())
			return
		}
		vertices = append(vertices, uint32(v))
	}

	kappa := e.coreKappa
	maintained := kappa != nil
	if !maintained {
		// Never-mutated graph: fall back to the cache-backed decomposition
		// path (cheap after the first request).
		res, err := s.kappaFor(e, "core", "and", 0)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		kappa = res.Kappa
	}
	out := coreLookupResponse{
		Graph:       e.name,
		Version:     e.version,
		Maintained:  maintained,
		Vertices:    vertices,
		CoreNumbers: make([]int32, len(vertices)),
	}
	for i, v := range vertices {
		out.CoreNumbers[i] = kappa[v]
	}
	writeJSON(w, http.StatusOK, out)
}
