package server

import (
	"log"
	"net/http"
	"strconv"
	"time"

	"nucleus/internal/dynamic"
	"nucleus/internal/replica"
	"nucleus/internal/sched"
	"nucleus/internal/store"
)

// ---------------------------------------------------------------------------
// WAL-shipping replication (docs/REPLICATION.md).
//
// A nucleusd node plays one of three roles. A *standalone* node is the
// historical single-node deployment. A *primary* absorbs every write
// and exposes its persisted images — snapshot files and WAL byte ranges
// — on the /replication endpoints for replicas to pull. A *replica* is
// read-only for clients: a background puller (internal/replica) tails
// the primary's manifest and WALs and applies each committed batch
// through the same WAL-then-publish path the primary's mutation handler
// uses, at EXACTLY the version the primary acknowledged, so a promoted
// replica serves the identical version history with warm κ state and
// its own durable snapshot+WAL (it can in turn be replicated from).
//
// Failover safety is generation fencing: every node carries a cluster
// generation, every /replication response and every router-proxied
// write is stamped with one, and a mismatch is rejected — a write
// stamped with the old generation at a deposed primary answers 409
// (fencedWrites), and a replica refuses to pull from a source whose
// generation is below its own (stalePulls). Promotion bumps the
// generation, which is what retires the old primary's authority.

// ReplicationConfig configures a node's role in a replicated
// deployment. The zero value is a standalone node.
type ReplicationConfig struct {
	// Role is replica.RoleStandalone (default), RolePrimary or
	// RoleReplica. Any other value is treated as standalone.
	Role string
	// Primary is the base URL a replica pulls from (e.g.
	// "http://10.0.0.1:7171"). Required when Role is RoleReplica.
	Primary string
	// Generation is the node's starting cluster generation. Replicas
	// adopt newer generations advertised by their source; promotion sets
	// a higher one explicitly.
	Generation uint64
	// PullInterval is the replica's background pull cadence. 0 defaults
	// to 1s; negative disables the background loop entirely — pulls then
	// happen only via POST /replication/pull, which is what the
	// deterministic cluster tests use.
	PullInterval time.Duration
	// Clock measures replication lag; nil means the wall clock (tests
	// inject sched.NewFakeClock).
	Clock sched.Clock
	// Client performs the replica's HTTP pulls; nil means
	// http.DefaultClient.
	Client *http.Client
}

// normalizedRole maps a configured role string onto the three valid
// roles, defaulting junk to standalone.
func normalizedRole(role string) string {
	switch role {
	case replica.RolePrimary, replica.RoleReplica:
		return role
	}
	return replica.RoleStandalone
}

// startReplication wires the node's role, generation and (for replicas)
// the background puller. Called from New after recovery, before the
// routes exist.
func (s *Server) startReplication() {
	rc := s.cfg.Replication
	s.generation.Store(rc.Generation)
	s.replRole = normalizedRole(rc.Role)
	if s.replRole != replica.RoleReplica || rc.Primary == "" {
		return
	}
	s.puller = replica.NewPuller(replica.Config{
		Primary:         rc.Primary,
		Applier:         replApplier{s},
		Generation:      s.generation.Load,
		AdoptGeneration: s.raiseGeneration,
		Clock:           rc.Clock,
		Client:          rc.Client,
		Interval:        rc.PullInterval,
	})
	if rc.PullInterval >= 0 {
		s.pullerRunning = true
		go s.puller.Run()
	}
}

// stopReplication shuts the puller down idempotently (Close may run
// twice, and promotion also detaches it).
func (s *Server) stopReplication() {
	s.replMu.Lock()
	p, running := s.puller, s.pullerRunning
	s.puller, s.pullerRunning = nil, false
	s.replMu.Unlock()
	if p == nil {
		return
	}
	if running {
		p.Stop()
	} else {
		p.StopNoWait()
	}
}

// raiseGeneration lifts the node's generation to at least g (never
// lowers it — a concurrent promotion must win over a pull adopting the
// old source's generation).
func (s *Server) raiseGeneration(g uint64) {
	for {
		cur := s.generation.Load()
		if cur >= g || s.generation.CompareAndSwap(cur, g) {
			return
		}
	}
}

// role returns the node's current replication role.
func (s *Server) role() string {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return s.replRole
}

// admitWrite gates a mutating endpoint behind the replication role and
// the generation fence, writing the refusal itself. Replicas are
// read-only for clients (writes belong on the primary; the router
// enforces that, this is the backstop). A write stamped with a
// generation — the router stamps every proxied one — is admitted only
// when the stamp matches the node's: a deposed primary still serving
// its old generation rejects the new epoch's writes, and late writes
// proxied under the old generation bounce off everyone.
func (s *Server) admitWrite(w http.ResponseWriter, r *http.Request) bool {
	s.replMu.Lock()
	role := s.replRole
	var primary string
	if s.puller != nil {
		primary = s.puller.Primary()
	}
	s.replMu.Unlock()
	if role == replica.RoleReplica {
		writeError(w, http.StatusForbidden,
			"node is a read-only replica (primary: %s); send writes to the primary", orDefault(primary, "unknown"))
		return false
	}
	if stamp := r.Header.Get(replica.GenerationHeader); stamp != "" {
		g, err := strconv.ParseUint(stamp, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid %s header %q: %v", replica.GenerationHeader, stamp, err)
			return false
		}
		if cur := s.generation.Load(); g != cur {
			s.fencedWrites.Add(1)
			writeError(w, http.StatusConflict,
				"write fenced: stamped generation %d does not match node generation %d", g, cur)
			return false
		}
	}
	return true
}

// nodeStatus assembles the GET /replication/status document.
func (s *Server) nodeStatus() replica.NodeStatus {
	s.replMu.Lock()
	role := s.replRole
	p := s.puller
	s.replMu.Unlock()
	st := replica.NodeStatus{
		Role:       role,
		Generation: s.generation.Load(),
		MaxVersion: s.reg.maxVersion(),
		Graphs:     s.reg.count(),
	}
	if p != nil {
		ps := p.Status()
		st.Primary = ps.Primary
		st.LagVersions = ps.LagVersions
		st.LagMs = ps.LagMs
		st.Pulls = ps.Pulls
		st.PullErrors = ps.Errors
		st.StalePulls = ps.StalePulls
		st.BytesPulled = ps.BytesPulled
		st.SnapshotsInstalled = ps.SnapshotsInstalled
		st.BatchesApplied = ps.BatchesApplied
		st.DuplicatesSkipped = ps.DuplicatesSkipped
		st.LastError = ps.LastError
	}
	return st
}

// ---------------------------------------------------------------------------
// Replication HTTP handlers.

// replicationSource resolves the store's raw-image capability, writing
// the refusal when the backend cannot ship state (the null store).
func (s *Server) replicationSource(w http.ResponseWriter) (store.ReplicationSource, bool) {
	src, ok := s.store.(store.ReplicationSource)
	if !ok {
		writeError(w, http.StatusNotImplemented,
			"replication requires a durable store (run nucleusd with -data-dir)")
		return nil, false
	}
	return src, true
}

func (s *Server) stampGeneration(w http.ResponseWriter) {
	w.Header().Set(replica.GenerationHeader, strconv.FormatUint(s.generation.Load(), 10))
}

func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	s.stampGeneration(w)
	writeJSON(w, http.StatusOK, s.nodeStatus())
}

func (s *Server) handleReplManifest(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.replicationSource(w); !ok {
		return
	}
	man := replica.Manifest{
		Generation: s.generation.Load(),
		Role:       s.role(),
		Graphs:     []replica.ManifestGraph{},
	}
	for _, e := range s.reg.list() {
		man.Graphs = append(man.Graphs, replica.ManifestGraph{
			Name:     e.name,
			Version:  e.version,
			WALBytes: s.store.WALSize(e.name),
		})
	}
	s.stampGeneration(w)
	writeJSON(w, http.StatusOK, man)
}

func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	src, ok := s.replicationSource(w)
	if !ok {
		return
	}
	name := r.PathValue("name")
	img, err := src.SnapshotImage(name)
	if err == store.ErrNotFound {
		writeError(w, http.StatusNotFound, "no persisted snapshot for graph %q", name)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reading snapshot of %q: %v", name, err)
		return
	}
	s.stampGeneration(w)
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(img)
}

func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	src, ok := s.replicationSource(w)
	if !ok {
		return
	}
	name := r.PathValue("name")
	offset, err := queryInt64(r, "offset", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	limit, err := queryInt64(r, "limit", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if offset < 0 {
		writeError(w, http.StatusBadRequest, "offset must be non-negative, got %d", offset)
		return
	}
	chunk, size, err := src.WALImage(name, offset, limit)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reading WAL of %q: %v", name, err)
		return
	}
	s.stampGeneration(w)
	w.Header().Set(replica.WALSizeHeader, strconv.FormatInt(size, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(chunk)
}

// promoteRequest is the JSON body of POST /replication/promote: the new
// cluster generation this node leads under. It must exceed the node's
// current generation — that strict increase is the fence that retires
// the deposed primary.
type promoteRequest struct {
	Generation uint64 `json:"generation"`
}

func (s *Server) handleReplPromote(w http.ResponseWriter, r *http.Request) {
	var req promoteRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	s.replMu.Lock()
	switch {
	case s.replRole == replica.RolePrimary && req.Generation <= s.generation.Load():
		// Idempotent re-promotion (a router retry): already leading at or
		// past this generation.
		s.replMu.Unlock()
		s.stampGeneration(w)
		writeJSON(w, http.StatusOK, s.nodeStatus())
		return
	case s.replRole == replica.RoleStandalone:
		s.replMu.Unlock()
		writeError(w, http.StatusConflict, "standalone node cannot be promoted (start nucleusd with -role)")
		return
	case req.Generation <= s.generation.Load():
		cur := s.generation.Load()
		s.replMu.Unlock()
		writeError(w, http.StatusBadRequest,
			"promotion generation %d must exceed the current generation %d", req.Generation, cur)
		return
	}
	s.replRole = replica.RolePrimary
	p, running := s.puller, s.pullerRunning
	s.puller, s.pullerRunning = nil, false
	s.replMu.Unlock()
	// The generation bump is what fences the old primary; raise it before
	// acknowledging so no post-200 write can be admitted under the old
	// epoch.
	s.raiseGeneration(req.Generation)
	s.promotions.Add(1)
	if p != nil {
		// Detach the puller so no late pull from the deposed primary can
		// apply state after this node started accepting writes.
		if running {
			p.Stop()
		} else {
			p.StopNoWait()
		}
	}
	log.Printf("nucleusd: promoted to primary at generation %d", req.Generation)
	s.stampGeneration(w)
	writeJSON(w, http.StatusOK, s.nodeStatus())
}

// repointRequest is the JSON body of POST /replication/repoint: the new
// primary a surviving replica should pull from, and (optionally) the
// new cluster generation to adopt immediately rather than on first
// pull.
type repointRequest struct {
	Primary    string `json:"primary"`
	Generation uint64 `json:"generation"`
}

func (s *Server) handleReplRepoint(w http.ResponseWriter, r *http.Request) {
	var req repointRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Primary == "" {
		writeError(w, http.StatusBadRequest, "primary must be non-empty")
		return
	}
	s.replMu.Lock()
	p := s.puller
	role := s.replRole
	s.replMu.Unlock()
	if role != replica.RoleReplica || p == nil {
		writeError(w, http.StatusConflict, "only a replica can be repointed (role: %s)", role)
		return
	}
	p.SetPrimary(req.Primary)
	if req.Generation > 0 {
		s.raiseGeneration(req.Generation)
	}
	log.Printf("nucleusd: repointed replication at %s (generation %d)", req.Primary, s.generation.Load())
	s.stampGeneration(w)
	writeJSON(w, http.StatusOK, s.nodeStatus())
}

// handleReplPull runs one synchronous pull cycle. Operationally it
// forces an immediate catch-up (e.g. right before a planned promotion);
// the deterministic cluster tests use it as their only pull driver,
// with PullInterval < 0 disabling the background loop.
func (s *Server) handleReplPull(w http.ResponseWriter, r *http.Request) {
	s.replMu.Lock()
	p := s.puller
	role := s.replRole
	s.replMu.Unlock()
	if role != replica.RoleReplica || p == nil {
		writeError(w, http.StatusConflict, "only a replica pulls (role: %s)", role)
		return
	}
	err := p.PullOnce(r.Context())
	s.stampGeneration(w)
	status := http.StatusOK
	if err != nil {
		// The error detail is in the status document's lastError; 502
		// distinguishes "pull failed" from "pull clean" for scripts.
		status = http.StatusBadGateway
	}
	writeJSON(w, status, s.nodeStatus())
}

func queryInt64(r *http.Request, name string, def int64) (int64, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, &strconv.NumError{Func: "ParseInt", Num: s, Err: err}
	}
	return v, nil
}

// ---------------------------------------------------------------------------
// The applier: how shipped state enters the serving layer.

// replApplier implements replica.Applier over the server's registry,
// store and cache. Every method takes the same per-name mutation lock
// the primary's handlers take, so replication application serializes
// with compaction and (after a promotion) with client writes exactly
// the way local mutations do.
type replApplier struct {
	s *Server
}

func (a replApplier) GraphVersion(name string) (uint64, bool) {
	e, ok := a.s.reg.get(name)
	if !ok {
		return 0, false
	}
	return e.version, true
}

func (a replApplier) GraphNames() []string {
	entries := a.s.reg.list()
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.name
	}
	return names
}

// InstallSnapshot publishes a shipped snapshot at exactly its
// Meta.Version, persists it locally (a replica must itself be
// crash-recoverable and promotable), and warm-seeds the core cache from
// the shipped κ so the first read decomposes warm, not cold.
func (a replApplier) InstallSnapshot(name string, snap *store.Snapshot) error {
	s := a.s
	lock := s.reg.mutationLock(name)
	lock.Lock()
	e := rebuildEntry(name, snap, nil)
	if !s.reg.installReplicated(e, snap.Meta.Version) {
		lock.Unlock()
		return nil // a duplicate shipment; the local state already covers it
	}
	if err := s.persistSnapshot(e); err != nil {
		// Keep serving the shipped state from memory; durability is
		// degraded, loudly, like a failed WAL commit on the primary.
		s.persistErrors.Add(1)
		log.Printf("nucleusd: persisting replicated snapshot of %q: %v", name, err)
	}
	lock.Unlock()
	// Warm seeding is graph-sized reconvergence; like the mutation path
	// it must not hold the lock. The seed carries e.version and survives
	// the purge of the displaced version's entries.
	if e.coreKappa != nil {
		s.warmRecoverCore(e)
	}
	s.cache.purgeGraph(name, e.version)
	return nil
}

// ApplyBatch re-applies one committed batch through the primary's exact
// pipeline — WAL batch frame, overlay repair, copy-on-write publish,
// WAL commit frame — but at the shipped version instead of a freshly
// minted one. Idempotence is by version: a batch at or below the local
// version reports applied=false without touching anything.
func (a replApplier) ApplyBatch(name string, batch *store.Batch, version uint64) (bool, error) {
	s := a.s
	lock := s.reg.mutationLock(name)
	lock.Lock()
	e, ok := s.reg.get(name)
	if !ok {
		// The puller snapshots before tailing, so this is a deleted-graph
		// race; the next pull cycle re-resolves it.
		lock.Unlock()
		return false, errReplUnknownGraph(name)
	}
	if e.version >= version {
		lock.Unlock()
		return false, nil
	}
	needN := batchNeedN(e.g.N(), batch)
	if needN > maxGenVertices {
		lock.Unlock()
		return false, errReplOversize(name, needN)
	}
	// Durability first, exactly as on the primary: the batch must be in
	// the local WAL before it mutates anything, so a promoted replica
	// survives its own crash with every acknowledged batch.
	if n, err := s.store.BeginBatch(name, batch); err != nil {
		s.persistErrors.Add(1)
		lock.Unlock()
		return false, err
	} else if n > 0 {
		s.walAppends.Add(1)
		s.walBytes.Add(int64(n))
	}
	dyn := e.dyn
	if dyn == nil {
		// Same overlay seeding ladder as the mutation handler: maintained
		// κ, then a cached exact decomposition, then a cold peel.
		switch {
		case e.coreKappa != nil:
			dyn = dynamic.FromStaticCores(e.g, e.coreKappa)
		default:
			if seed := s.exactCoreKappa(e); seed != nil {
				dyn = dynamic.FromStaticCores(e.g, seed)
			} else {
				dyn = dynamic.FromStatic(e.g)
			}
		}
	}
	added, removed, ignored := applyBatch(dyn, batch, int(needN))
	// Publish unconditionally — even if every edit was a no-op here, the
	// primary committed this batch at this version and the version
	// sequence is the replication contract.
	kappa := append([]int32(nil), dyn.CoreNumbers()...)
	ne := &graphEntry{
		name:      name,
		g:         dyn.Static(),
		source:    e.source,
		created:   e.created,
		dyn:       dyn,
		coreKappa: kappa,
		mutations: e.mutations + 1,
	}
	if !s.reg.installReplicated(ne, version) {
		lock.Unlock()
		return false, nil
	}
	if n, err := s.store.CommitBatch(name, version); err != nil {
		s.persistErrors.Add(1)
		log.Printf("nucleusd: WAL commit for replicated batch of %q version %d failed (applied in memory, may be lost on restart): %v", name, version, err)
	} else if n > 0 {
		s.walAppends.Add(1)
		s.walBytes.Add(int64(n))
	}
	s.mutBatches.Add(1)
	s.mutApplied.Add(int64(added + removed))
	s.mutIgnored.Add(int64(ignored))
	lock.Unlock()
	// Outside the lock, like the mutation handler: warm-seed the new
	// version's cache from the old one's converged results, then purge
	// the stale entries (the seeds carry the new version and survive).
	// Unlike the primary's "demonstrated interest" policy, a replica
	// seeds core unconditionally — reads land here while writes land on
	// the primary, so the first read must not pay a cold run. The
	// overlay's maintained κ makes that a single certification sweep.
	coreSeeded := false
	for _, d := range s.warmSeed(e, ne, added) {
		if d == "core" {
			coreSeeded = true
		}
	}
	if !coreSeeded {
		s.warmRecoverCore(ne)
	}
	s.cache.purgeGraph(name, version)
	s.maybeCompact(name)
	return true, nil
}

// DropGraph removes a graph the primary no longer has, mirroring the
// DELETE handler.
func (a replApplier) DropGraph(name string) error {
	s := a.s
	if _, ok := s.reg.get(name); !ok {
		return nil
	}
	lock := s.reg.mutationLock(name)
	lock.Lock()
	e, ok := s.reg.delete(name)
	var storeErr error
	if ok {
		storeErr = s.store.Delete(name)
	}
	lock.Unlock()
	if ok {
		s.cache.purgeGraph(name, e.version+1)
	}
	if storeErr != nil {
		s.persistErrors.Add(1)
	}
	return storeErr
}

// errReplUnknownGraph / errReplOversize keep the applier's error paths
// allocation-free in the common case and the messages consistent.
type replApplyError struct{ msg string }

func (e replApplyError) Error() string { return e.msg }

func errReplUnknownGraph(name string) error {
	return replApplyError{"replicated batch for unknown graph " + strconv.Quote(name)}
}

func errReplOversize(name string, needN int64) error {
	return replApplyError{"replicated batch would grow graph " + strconv.Quote(name) +
		" to " + strconv.FormatInt(needN, 10) + " vertices, exceeding the limit of " +
		strconv.Itoa(maxGenVertices)}
}
