package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"nucleus/internal/nucleus"
)

// jsonString canonicalizes a decoded JSON value for comparison.
func jsonString(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return "<marshal error>"
	}
	return string(b)
}

// statsIndex fetches the /stats index section.
func statsIndex(t *testing.T, base string) indexStats {
	t.Helper()
	var st statsResponse
	if resp := doJSON(t, "GET", base+"/stats", nil, &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats: status %d", resp.StatusCode)
	}
	return st.Index
}

// TestInstanceReuseAcrossDecompositions proves the tentpole serving
// property: a second decomposition of the same graph version — even under
// a different algorithm and sweep budget, i.e. a result-cache miss — must
// reuse the memoized instance instead of rebuilding the s-clique index.
func TestInstanceReuseAcrossDecompositions(t *testing.T) {
	ts := testServer(t, Config{Workers: 1, JobThreads: 2})
	postJSON(t, ts.URL+"/graphs/g/generate", map[string]any{"generator": "planted", "communities": 3, "size": 12, "seed": 5}, nil)

	var jv jobView
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "g", "decomposition": "truss", "algorithm": "and"}, &jv)
	if v := waitForJob(t, ts.URL, jv.ID); v.State != JobDone {
		t.Fatalf("first job: state %s (%s)", v.State, v.Error)
	}
	after1 := statsIndex(t, ts.URL)
	if after1.Builds != 1 {
		t.Fatalf("after first truss job: builds = %d, want 1", after1.Builds)
	}
	if after1.Bytes <= 0 {
		t.Fatalf("after first truss job: bytes = %d, want > 0", after1.Bytes)
	}

	// Different algorithm + budget → different cache key → the engine runs
	// again, but the index build counter must not move.
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "g", "decomposition": "truss", "algorithm": "snd", "maxSweeps": 2}, &jv)
	if v := waitForJob(t, ts.URL, jv.ID); v.State != JobDone {
		t.Fatalf("second job: state %s (%s)", v.State, v.Error)
	}
	after2 := statsIndex(t, ts.URL)
	if after2.Builds != after1.Builds {
		t.Fatalf("second decompose rebuilt the index: builds %d → %d", after1.Builds, after2.Builds)
	}
	if after2.Reuses <= after1.Reuses {
		t.Fatalf("second decompose did not reuse the instance: reuses %d → %d", after1.Reuses, after2.Reuses)
	}

	// The memoized indexed instance also serves the synchronous estimate
	// path.
	resp := postJSON(t, ts.URL+"/estimate/truss", map[string]any{"graph": "g", "edges": [][2]int{{0, 1}}, "hops": 1}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: status %d", resp.StatusCode)
	}
	after3 := statsIndex(t, ts.URL)
	if after3.Builds != after1.Builds || after3.Reuses <= after2.Reuses {
		t.Fatalf("estimate path: builds %d reuses %d, want builds unchanged and reuses to grow", after3.Builds, after3.Reuses)
	}

	// Re-uploading the graph bumps the version: the old index dies with
	// its entry and the next request builds a fresh one.
	postJSON(t, ts.URL+"/graphs/g/generate", map[string]any{"generator": "planted", "communities": 3, "size": 12, "seed": 6}, nil)
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "g", "decomposition": "truss", "algorithm": "and"}, &jv)
	if v := waitForJob(t, ts.URL, jv.ID); v.State != JobDone {
		t.Fatalf("post-replace job: state %s (%s)", v.State, v.Error)
	}
	after4 := statsIndex(t, ts.URL)
	if after4.Builds != after1.Builds+1 {
		t.Fatalf("new graph version: builds = %d, want %d", after4.Builds, after1.Builds+1)
	}
}

// TestIndexBudgetFallbackCounters checks that a disabled budget keeps
// serving correctly while counting fallbacks instead of builds, and that
// the core family never builds an index.
func TestIndexBudgetFallbackCounters(t *testing.T) {
	ts, s := testServerWith(t, Config{Workers: 1, IndexMemBudget: -1}) // indexing disabled
	postJSON(t, ts.URL+"/graphs/g/generate", map[string]any{"generator": "complete", "n": 8}, nil)

	var jv jobView
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "g", "decomposition": "truss"}, &jv)
	if v := waitForJob(t, ts.URL, jv.ID); v.State != JobDone {
		t.Fatalf("truss job: state %s (%s)", v.State, v.Error)
	}
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "g", "decomposition": "core"}, &jv)
	if v := waitForJob(t, ts.URL, jv.ID); v.State != JobDone {
		t.Fatalf("core job: state %s (%s)", v.State, v.Error)
	}
	st := statsIndex(t, ts.URL)
	if st.Builds != 0 || st.Bytes != 0 {
		t.Fatalf("disabled budget built an index: %+v", st)
	}
	if st.Fallbacks != 2 {
		t.Fatalf("fallbacks = %d, want 2 (truss + core)", st.Fallbacks)
	}

	// White-box: with indexing disabled the memo must hold an on-the-fly
	// instance.
	e, ok := s.reg.get("g")
	if !ok {
		t.Fatal("graph g missing")
	}
	if _, isIndexed := s.instanceOf(e, "truss").(nucleus.FlatIncidence); isIndexed {
		t.Fatal("disabled budget produced a flat-incidence instance")
	}
}

// TestIndexedServingMatchesOnTheFly runs the same job on two servers —
// indexing enabled vs disabled — and demands identical κ histograms end
// to end.
func TestIndexedServingMatchesOnTheFly(t *testing.T) {
	gen := map[string]any{"generator": "planted", "communities": 3, "size": 12, "seed": 5}
	var histograms []map[string]any
	for _, budget := range []int64{0 /* default 1 GiB */, -1 /* disabled */} {
		ts, _ := testServerWith(t, Config{Workers: 1, IndexMemBudget: budget})
		postJSON(t, ts.URL+"/graphs/g/generate", gen, nil)
		var jv jobView
		postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "g", "decomposition": "n34", "algorithm": "and"}, &jv)
		if v := waitForJob(t, ts.URL, jv.ID); v.State != JobDone {
			t.Fatalf("budget %d: job state %s (%s)", budget, v.State, v.Error)
		}
		var res map[string]any
		doJSON(t, "GET", ts.URL+"/jobs/"+jv.ID+"/result?kappa=true", nil, &res)
		histograms = append(histograms, res)
	}
	a, b := histograms[0], histograms[1]
	for _, key := range []string{"histogram", "kappa", "maxKappa", "converged"} {
		if got, want := jsonString(a[key]), jsonString(b[key]); got != want {
			t.Fatalf("indexed vs on-the-fly %s: %s vs %s", key, got, want)
		}
	}
}
