package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
	"nucleus/internal/peel"
)

// uploadPath registers the n-vertex path 0–1–…–(n−1) under name. The
// path is the slowest-converging core instance per cell count for SND
// (the endpoints' influence travels one hop per synchronous sweep, so
// full convergence needs ~n/2 sweeps), which makes it the ideal fixture
// for budgets, streams and cancellation.
func uploadPath(t *testing.T, base, name string, n int) {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < n-1; i++ {
		fmt.Fprintf(&sb, "%d %d\n", i, i+1)
	}
	resp, err := http.Post(base+"/graphs/"+name, "text/plain", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload %s: status %d", name, resp.StatusCode)
	}
}

// pathCoreKappa returns the exact core numbers of the n-path (computed
// independently through the peeling baseline).
func pathCoreKappa(n int) []int32 {
	edges := make([][2]uint32, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, [2]uint32{uint32(i), uint32(i + 1)})
	}
	return peel.Run(nucleus.NewCore(graph.Build(n, edges))).Kappa
}

// TestBudgetedQuerySweeps is the acceptance scenario: on a graph whose
// full decomposition takes ≥10 sweeps, ?maxSweeps=2 returns in budget
// with approximate:true, a τ vector that upper-bounds the converged κ
// pointwise, and convergence stats; and once the exact result is cached,
// the same budgeted query also reports its true accuracy.
func TestBudgetedQuerySweeps(t *testing.T) {
	const n = 41
	ts := testServer(t, Config{Workers: 1})
	uploadPath(t, ts.URL, "p", n)
	exact := pathCoreKappa(n)

	var budget decomposeResponse
	resp := doJSON(t, "GET", ts.URL+"/graphs/p/decompose?dec=core&alg=snd&max_sweeps=2&tau=true", nil, &budget)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budgeted decompose: status %d", resp.StatusCode)
	}
	if !budget.Approximate || budget.Converged {
		t.Fatalf("budgeted run not marked approximate: %+v", budget)
	}
	if budget.Sweeps != 2 || budget.StoppedBy != "sweeps" {
		t.Fatalf("budgeted run: sweeps=%d stoppedBy=%q, want 2/sweeps", budget.Sweeps, budget.StoppedBy)
	}
	if len(budget.Tau) != n {
		t.Fatalf("τ vector has %d cells, want %d", len(budget.Tau), n)
	}
	strict := false
	for c, tau := range budget.Tau {
		if tau < exact[c] {
			t.Fatalf("cell %d: budgeted τ %d < κ %d", c, tau, exact[c])
		}
		if tau > exact[c] {
			strict = true
		}
	}
	if !strict {
		t.Fatal("2-sweep τ already equals κ everywhere; fixture too easy to exercise approximation")
	}
	if budget.Convergence.UpdateRate <= 0 || budget.Convergence.FractionStable >= 1 {
		t.Fatalf("convergence stats missing: %+v", budget.Convergence)
	}
	if budget.Accuracy != nil {
		t.Fatalf("accuracy reported without a converged baseline: %+v", budget.Accuracy)
	}

	// Full decomposition of the same graph: must converge, match κ, and
	// take the ≥10 sweeps the acceptance criterion demands of the fixture.
	var full decomposeResponse
	doJSON(t, "GET", ts.URL+"/graphs/p/decompose?dec=core&alg=snd&tau=true", nil, &full)
	if !full.Converged || full.Approximate || full.StoppedBy != "" {
		t.Fatalf("full run: %+v", full)
	}
	if full.Sweeps < 10 {
		t.Fatalf("full decomposition took %d sweeps; fixture must need >= 10", full.Sweeps)
	}
	for c, tau := range full.Tau {
		if tau != exact[c] {
			t.Fatalf("cell %d: converged τ %d != κ %d", c, tau, exact[c])
		}
	}

	// The exact result is now cached, so the budgeted query can quantify
	// its own error.
	doJSON(t, "GET", ts.URL+"/graphs/p/decompose?dec=core&alg=snd&maxSweeps=2", nil, &budget)
	if budget.Accuracy == nil {
		t.Fatal("accuracy missing despite cached converged baseline")
	}
	if budget.Accuracy.MaxError < 1 || budget.Accuracy.ExactFraction >= 1 {
		t.Fatalf("accuracy implausible for a 2-sweep path approximation: %+v", budget.Accuracy)
	}
}

// TestBudgetedQueryDeadline pins the wall-clock budget: a ?maxMs=
// deadline on a graph far too large to converge in it returns promptly
// with approximate:true and stoppedBy:"deadline", and /stats counts the
// deadline stop.
func TestBudgetedQueryDeadline(t *testing.T) {
	ts := testServer(t, Config{Workers: 1})
	uploadPath(t, ts.URL, "big", 20001) // ~10k SND sweeps: unreachable in 2ms

	start := time.Now()
	var out decomposeResponse
	resp := doJSON(t, "GET", ts.URL+"/graphs/big/decompose?dec=core&alg=snd&max_ms=2", nil, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadline decompose: status %d", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline-budgeted query took %v", elapsed)
	}
	if !out.Approximate || out.StoppedBy != "deadline" {
		t.Fatalf("deadline run: approximate=%v stoppedBy=%q", out.Approximate, out.StoppedBy)
	}
	if out.Sweeps < 1 {
		t.Fatalf("deadline run finished %d sweeps; the first sweep must always complete", out.Sweeps)
	}

	var st statsResponse
	doJSON(t, "GET", ts.URL+"/stats", nil, &st)
	if st.Anytime.BudgetedQueries < 1 || st.Anytime.DeadlineStops < 1 {
		t.Fatalf("anytime stats missed the deadline stop: %+v", st.Anytime)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	event string
	data  []byte
}

// readSSE consumes a text/event-stream body into parsed events.
func readSSE(t *testing.T, resp *http.Response) []sseEvent {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != nil {
				events = append(events, cur)
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = append([]byte(nil), strings.TrimPrefix(line, "data: ")...)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return events
}

// TestJobStreamSSE submits a slow SND job and verifies the acceptance
// behavior of GET /jobs/{id}/stream: progress events with non-increasing
// (and eventually strictly decreasing) max-τ, terminated by a done event
// carrying the exact converged result.
func TestJobStreamSSE(t *testing.T) {
	const n = 4001 // ~2k SND sweeps: long enough to stream mid-run
	ts := testServer(t, Config{Workers: 1})
	uploadPath(t, ts.URL, "p", n)

	var jv jobView
	postJSON(t, ts.URL+"/jobs", jobRequest{Graph: "p", Decomposition: "core", Algorithm: "snd"}, &jv)
	resp, err := http.Get(ts.URL + "/jobs/" + jv.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	events := readSSE(t, resp)
	if len(events) == 0 {
		t.Fatal("stream produced no events")
	}
	if events[len(events)-1].event != "done" {
		t.Fatalf("stream did not terminate with done: last event %q", events[len(events)-1].event)
	}

	var maxTaus []int32
	for _, ev := range events[:len(events)-1] {
		if ev.event != "progress" {
			t.Fatalf("unexpected event %q before done", ev.event)
		}
		var sv progressSnapshotView
		if err := json.Unmarshal(ev.data, &sv); err != nil {
			t.Fatalf("bad progress payload %q: %v", ev.data, err)
		}
		if sv.Cells != n {
			t.Fatalf("progress snapshot has %d cells, want %d", sv.Cells, n)
		}
		maxTaus = append(maxTaus, sv.MaxTau)
	}
	if len(maxTaus) < 2 {
		t.Fatalf("only %d progress events; job finished before the stream attached", len(maxTaus))
	}
	for i := 1; i < len(maxTaus); i++ {
		if maxTaus[i] > maxTaus[i-1] {
			t.Fatalf("max τ rose mid-stream: %d after %d", maxTaus[i], maxTaus[i-1])
		}
	}

	var done jobProgressResponse
	if err := json.Unmarshal(events[len(events)-1].data, &done); err != nil {
		t.Fatalf("bad done payload: %v", err)
	}
	if done.State != JobDone || done.Approximate || done.Snapshot == nil ||
		!done.Snapshot.Converged || !done.Snapshot.Final {
		t.Fatalf("done event not terminal-exact: %+v", done)
	}
	// Path core numbers are all 1, but τ starts at the degrees (max 2):
	// the stream must have witnessed the strict decrease to the exact κ.
	if done.Snapshot.MaxTau != 1 || maxTaus[0] != 2 {
		t.Fatalf("max τ did not decrease strictly to κ: first %d, final %d", maxTaus[0], done.Snapshot.MaxTau)
	}

	// The job result equals the independently computed exact κ.
	exact := pathCoreKappa(n)
	var res jobResultResponse
	doJSON(t, "GET", ts.URL+"/jobs/"+jv.ID+"/result?kappa=true", nil, &res)
	for c, k := range res.Kappa {
		if k != exact[c] {
			t.Fatalf("cell %d: job κ %d != exact %d", c, k, exact[c])
		}
	}

	var st statsResponse
	doJSON(t, "GET", ts.URL+"/stats", nil, &st)
	if st.Anytime.Streams < 1 || st.Anytime.ProgressSnapshots < int64(len(maxTaus)) {
		t.Fatalf("anytime stats undercount the stream: %+v", st.Anytime)
	}
}

// TestCancelRunningJob exercises cooperative cancellation end to end:
// DELETE on a running job returns 202, the engine stops at its next
// sweep boundary, the job lands in state cancelled, and its progress
// endpoint still serves the final (partial, uncertified) snapshot.
func TestCancelRunningJob(t *testing.T) {
	ts := testServer(t, Config{Workers: 1})
	uploadPath(t, ts.URL, "slow", 40001) // hours of sweeps if cancellation fails... minutes, but enough

	var jv jobView
	postJSON(t, ts.URL+"/jobs", jobRequest{Graph: "slow", Decomposition: "core", Algorithm: "snd"}, &jv)

	// Wait until it is actually running.
	deadline := time.Now().Add(15 * time.Second)
	for {
		var cur jobView
		doJSON(t, "GET", ts.URL+"/jobs/"+jv.ID, nil, &cur)
		if cur.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}

	req, _ := http.NewRequest("DELETE", ts.URL+"/jobs/"+jv.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE running job: status %d, want 202", resp.StatusCode)
	}

	deadline = time.Now().Add(30 * time.Second)
	var cur jobView
	for {
		doJSON(t, "GET", ts.URL+"/jobs/"+jv.ID, nil, &cur)
		if terminal(cur.State) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job did not stop after cancellation: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if cur.State != JobCancelled {
		t.Fatalf("cancelled job ended as %s", cur.State)
	}

	var prog jobProgressResponse
	doJSON(t, "GET", ts.URL+"/jobs/"+jv.ID+"/progress", nil, &prog)
	if prog.State != JobCancelled || !prog.Approximate || prog.Snapshot == nil || prog.Snapshot.Converged {
		t.Fatalf("cancelled job progress: %+v", prog)
	}

	// A second DELETE conflicts; an unknown id is 404.
	req, _ = http.NewRequest("DELETE", ts.URL+"/jobs/"+jv.ID, nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("re-DELETE: status %d, want 409", resp.StatusCode)
	}
	req, _ = http.NewRequest("DELETE", ts.URL+"/jobs/zzz", nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown job: status %d, want 404", resp.StatusCode)
	}

	var st statsResponse
	doJSON(t, "GET", ts.URL+"/stats", nil, &st)
	if st.Jobs.Cancelled != 1 {
		t.Fatalf("stats cancelled = %d, want 1", st.Jobs.Cancelled)
	}
}

// TestCancelQueuedJob: with a single worker busy on a long job, a queued
// job cancels instantly (200, state cancelled) and never runs.
func TestCancelQueuedJob(t *testing.T) {
	ts := testServer(t, Config{Workers: 1})
	uploadPath(t, ts.URL, "slow", 40001)
	uploadPath(t, ts.URL, "tiny", 5)

	var long jobView
	postJSON(t, ts.URL+"/jobs", jobRequest{Graph: "slow", Decomposition: "core", Algorithm: "snd"}, &long)
	var queued jobView
	postJSON(t, ts.URL+"/jobs", jobRequest{Graph: "tiny", Decomposition: "core", Algorithm: "snd"}, &queued)

	req, _ := http.NewRequest("DELETE", ts.URL+"/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var cv jobView
	if err := json.NewDecoder(resp.Body).Decode(&cv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || cv.State != JobCancelled {
		t.Fatalf("DELETE queued job: status %d state %s, want 200 cancelled", resp.StatusCode, cv.State)
	}

	// Unblock the worker.
	req, _ = http.NewRequest("DELETE", ts.URL+"/jobs/"+long.ID, nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitForJob(t, ts.URL, long.ID)

	var st statsResponse
	doJSON(t, "GET", ts.URL+"/stats", nil, &st)
	if st.Jobs.Cancelled != 2 {
		t.Fatalf("stats cancelled = %d, want 2", st.Jobs.Cancelled)
	}
	// The hits+misses invariant survives cancellation (both jobs resolve
	// their deferred accounting).
	if st.Cache.Hits+st.Cache.Misses != st.Cache.Lookups {
		t.Fatalf("cache accounting broken: %+v", st.Cache)
	}
}

// TestProgressDisabled pins ProgressEvery<0: jobs run without a live
// publisher, and the progress endpoint synthesizes its snapshot from the
// terminal result.
func TestProgressDisabled(t *testing.T) {
	ts := testServer(t, Config{Workers: 1, ProgressEvery: -1})
	uploadPath(t, ts.URL, "p", 41)

	var jv jobView
	postJSON(t, ts.URL+"/jobs", jobRequest{Graph: "p", Decomposition: "core", Algorithm: "snd"}, &jv)
	final := waitForJob(t, ts.URL, jv.ID)
	if final.State != JobDone {
		t.Fatalf("job ended as %s", final.State)
	}
	var prog jobProgressResponse
	doJSON(t, "GET", ts.URL+"/jobs/"+jv.ID+"/progress", nil, &prog)
	if prog.Snapshot == nil || !prog.Snapshot.Final || !prog.Snapshot.Converged || prog.Approximate {
		t.Fatalf("synthesized progress wrong: %+v", prog)
	}
	var st statsResponse
	doJSON(t, "GET", ts.URL+"/stats", nil, &st)
	if st.Anytime.ProgressSnapshots != 0 {
		t.Fatalf("progress disabled but %d snapshots published", st.Anytime.ProgressSnapshots)
	}
}
