package server

import (
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
	"nucleus/internal/peel"
	"nucleus/internal/store"
)

// e2eDataDir returns a fresh data directory for a recovery test. When
// NUCLEUS_E2E_DATADIR is set (the CI tier-2 job), directories are created
// under it and retained, so a failing run's snapshots and WALs can be
// uploaded as a debugging artifact; otherwise t.TempDir cleans up.
func e2eDataDir(t *testing.T) string {
	t.Helper()
	root := os.Getenv("NUCLEUS_E2E_DATADIR")
	if root == "" {
		return t.TempDir()
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		t.Fatal(err)
	}
	dir, err := os.MkdirTemp(root, strings.ReplaceAll(t.Name(), "/", "_")+"-*")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func openFS(t *testing.T, dir string) *store.FS {
	t.Helper()
	st, err := store.OpenFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// allCoreNumbers fetches the full maintained κ array of a graph through
// the point-lookup endpoint.
func allCoreNumbers(t *testing.T, base, name string, n int) coreLookupResponse {
	t.Helper()
	var sb strings.Builder
	for v := 0; v < n; v++ {
		if v > 0 {
			sb.WriteByte('&')
		}
		fmt.Fprintf(&sb, "v=%d", v)
	}
	var cl coreLookupResponse
	if resp := doJSON(t, "GET", base+"/graphs/"+name+"/core?"+sb.String(), nil, &cl); resp.StatusCode != 200 {
		t.Fatalf("core lookup on %q: status %d", name, resp.StatusCode)
	}
	return cl
}

// TestCrashRecoveryE2E is the acceptance flow for the durable store:
// upload → decompose → mutate (several WAL batches) → SIGKILL → restart →
// every graph back at its exact pre-kill version with identical per-vertex
// core numbers, ≥1 replay in /stats, and zero cold decompositions for the
// warm-seeded core family.
//
// The kill is simulated by abandoning the first Server without Close: the
// store fsyncs every snapshot and WAL frame before acknowledging, so there
// is nothing an orderly shutdown would flush — from the store's point of
// view, dropping the process here IS a SIGKILL.
func TestCrashRecoveryE2E(t *testing.T) {
	dir := e2eDataDir(t)

	// --- Instance 1: build up state. ---
	s1 := New(Config{Workers: 2, Store: openFS(t, dir)})
	ts1 := httptest.NewServer(s1)

	g := graph.PowerLawCluster(400, 4, 0.4, 11)
	doJSON(t, "POST", ts1.URL+"/graphs/mutable", strings.NewReader(edgeListBody(g)), nil)
	// A second, never-mutated graph: recovery must bring it back too, from
	// its snapshot alone.
	postJSON(t, ts1.URL+"/graphs/static/generate", map[string]any{"generator": "complete", "n": 7}, nil)

	// Converged cold runs so the mutation path maintains κ and warm-seeds.
	for _, dec := range []string{"core", "truss"} {
		var jv jobView
		postJSON(t, ts1.URL+"/jobs", map[string]any{"graph": "mutable", "decomposition": dec}, &jv)
		if v := waitForJob(t, ts1.URL, jv.ID); v.State != JobDone || !v.Converged {
			t.Fatalf("cold %s job: %+v", dec, v)
		}
	}

	// Three WAL batches: adds that grow the graph, a growTo, removals.
	var mr mutateResponse
	postJSON(t, ts1.URL+"/graphs/mutable/edges", map[string]any{"edits": []map[string]any{
		{"op": "add", "u": 0, "v": 399},
		{"op": "add", "u": 1, "v": 400}, // grows to 401 vertices
		{"op": "add", "u": 2, "v": 3},
	}}, &mr)
	postJSON(t, ts1.URL+"/graphs/mutable/edges", map[string]any{
		"edits":  []map[string]any{{"op": "add", "u": 5, "v": 6}},
		"growTo": 410,
	}, &mr)
	e0 := g.Edges()[0]
	if resp := postJSON(t, ts1.URL+"/graphs/mutable/edges", map[string]any{"edits": []map[string]any{
		{"op": "remove", "u": e0[0], "v": e0[1]},
		{"op": "add", "u": 7, "v": 8},
	}}, &mr); resp.StatusCode != 200 {
		t.Fatalf("mutation: status %d", resp.StatusCode)
	}

	var preMutable, preStatic graphView
	doJSON(t, "GET", ts1.URL+"/graphs/mutable", nil, &preMutable)
	doJSON(t, "GET", ts1.URL+"/graphs/static", nil, &preStatic)
	if preMutable.Version != mr.Version || preMutable.Mutations != 3 || preMutable.N != 410 {
		t.Fatalf("pre-kill mutable view: %+v", preMutable)
	}
	preKappa := allCoreNumbers(t, ts1.URL, "mutable", preMutable.N)
	if !preKappa.Maintained {
		t.Fatal("pre-kill κ not maintained")
	}

	// --- SIGKILL: drop instance 1 on the floor (no Close, no drain). ---
	ts1.Close()

	// --- Instance 2: recover from the same data directory. ---
	s2 := New(Config{Workers: 2, Store: openFS(t, dir)})
	ts2 := httptest.NewServer(s2)
	t.Cleanup(func() { ts2.Close(); s2.Close() })

	var postMutable, postStatic graphView
	doJSON(t, "GET", ts2.URL+"/graphs/mutable", nil, &postMutable)
	doJSON(t, "GET", ts2.URL+"/graphs/static", nil, &postStatic)
	if postMutable != preMutable {
		t.Fatalf("mutable graph after recovery:\n got %+v\nwant %+v", postMutable, preMutable)
	}
	if postStatic != preStatic {
		t.Fatalf("static graph after recovery:\n got %+v\nwant %+v", postStatic, preStatic)
	}

	postKappa := allCoreNumbers(t, ts2.URL, "mutable", postMutable.N)
	if !postKappa.Maintained || postKappa.Version != preKappa.Version {
		t.Fatalf("recovered κ meta: %+v, want version %d", postKappa, preKappa.Version)
	}
	for v := range preKappa.CoreNumbers {
		if postKappa.CoreNumbers[v] != preKappa.CoreNumbers[v] {
			t.Fatalf("κ(%d) = %d after recovery, want %d", v, postKappa.CoreNumbers[v], preKappa.CoreNumbers[v])
		}
	}

	// Stats: both graphs replayed, the three committed batches re-applied,
	// the core family warm-seeded with ZERO cold decompositions.
	st := getStats(t, ts2.URL)
	if !st.Persistence.Enabled || st.Persistence.Replays != 2 {
		t.Fatalf("persistence stats after recovery: %+v", st.Persistence)
	}
	if st.Persistence.ReplayedBatches != 3 {
		t.Fatalf("replayed batches: %d, want 3", st.Persistence.ReplayedBatches)
	}
	if st.Mutations.ColdRuns != 0 {
		t.Fatalf("recovery ran %d cold decompositions, want 0", st.Mutations.ColdRuns)
	}
	if st.Mutations.WarmRuns < 1 {
		t.Fatalf("recovery warm-seeded nothing: %+v", st.Mutations)
	}

	// The first post-restart core request is served from the warm-seeded
	// cache (no recomputation at all), converged, and exact.
	var jv jobView
	postJSON(t, ts2.URL+"/jobs", map[string]any{"graph": "mutable", "decomposition": "core"}, &jv)
	if !jv.Cached || jv.State != JobDone || !jv.Converged {
		t.Fatalf("post-restart core job not served warm: %+v", jv)
	}
	var res jobResultResponse
	doJSON(t, "GET", ts2.URL+"/jobs/"+jv.ID+"/result?kappa=true", nil, &res)
	for v := range preKappa.CoreNumbers {
		if res.Kappa[v] != preKappa.CoreNumbers[v] {
			t.Fatalf("warm-served κ(%d) = %d, want %d", v, res.Kappa[v], preKappa.CoreNumbers[v])
		}
	}
	if st2 := getStats(t, ts2.URL); st2.Mutations.ColdRuns != 0 {
		t.Fatalf("post-restart core request decomposed cold: %+v", st2.Mutations)
	}

	// Mutating the recovered lineage keeps working (the overlay carried
	// across the restart) and matches an independent cold peel.
	postJSON(t, ts2.URL+"/graphs/mutable/edges", map[string]any{"edits": []map[string]any{
		{"op": "add", "u": 9, "v": 410}, // fresh endpoint: guaranteed non-no-op
	}}, &mr)
	if mr.Version <= postMutable.Version {
		t.Fatalf("post-recovery mutation version: %+v", mr)
	}
}

// TestCrashRecoveryCompacted: once the compactor has folded the WAL into a
// fresh snapshot, recovery replays zero batches yet still lands on the
// exact published version and κ.
func TestCrashRecoveryCompacted(t *testing.T) {
	dir := e2eDataDir(t)
	// 1-byte threshold: every committed batch immediately triggers
	// background compaction.
	s1 := New(Config{Workers: 2, Store: openFS(t, dir), WALCompactBytes: 1})
	ts1 := httptest.NewServer(s1)

	postJSON(t, ts1.URL+"/graphs/g/generate", map[string]any{"generator": "gnm", "n": 120, "m": 480, "seed": 3}, nil)
	var mr mutateResponse
	postJSON(t, ts1.URL+"/graphs/g/edges", map[string]any{"edits": []map[string]any{
		{"op": "add", "u": 0, "v": 119}, {"op": "add", "u": 1, "v": 120},
	}}, &mr)

	deadline := time.Now().Add(10 * time.Second)
	for getStats(t, ts1.URL).Persistence.Compactions < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("compactor never folded the WAL: %+v", getStats(t, ts1.URL).Persistence)
		}
		time.Sleep(5 * time.Millisecond)
	}
	pre := allCoreNumbers(t, ts1.URL, "g", 121)
	ts1.Close()
	s1.Close() // orderly here; the kill path is covered by TestCrashRecoveryE2E

	s2 := New(Config{Workers: 2, Store: openFS(t, dir), WALCompactBytes: 1})
	ts2 := httptest.NewServer(s2)
	t.Cleanup(func() { ts2.Close(); s2.Close() })
	st := getStats(t, ts2.URL)
	if st.Persistence.Replays != 1 || st.Persistence.ReplayedBatches != 0 {
		t.Fatalf("compacted recovery: %+v", st.Persistence)
	}
	var gv graphView
	doJSON(t, "GET", ts2.URL+"/graphs/g", nil, &gv)
	if gv.Version != mr.Version || gv.Mutations != 1 || gv.N != 121 {
		t.Fatalf("compacted recovery view: %+v, want version %d", gv, mr.Version)
	}
	post := allCoreNumbers(t, ts2.URL, "g", 121)
	if !post.Maintained {
		t.Fatal("compacted snapshot lost the maintained κ")
	}
	for v := range pre.CoreNumbers {
		if post.CoreNumbers[v] != pre.CoreNumbers[v] {
			t.Fatalf("κ(%d) = %d, want %d", v, post.CoreNumbers[v], pre.CoreNumbers[v])
		}
	}
}

// TestConcurrentMutatorsWarmSeed is the regression test for warm seeding
// escaping the per-name critical section: many goroutines mutate the SAME
// graph (each batch publishing a version and warm-seeding the cache) while
// readers hammer lookups and stats. Run under -race in CI. Afterwards the
// maintained κ must match a cold peel of the independently rebuilt graph,
// and every batch must have been published exactly once.
func TestConcurrentMutatorsWarmSeed(t *testing.T) {
	dir := e2eDataDir(t)
	ts, s := testServerWith(t, Config{Workers: 4, Store: openFS(t, dir)})
	g := graph.PowerLawCluster(300, 4, 0.5, 21)
	doJSON(t, "POST", ts.URL+"/graphs/g", strings.NewReader(edgeListBody(g)), nil)

	// Converged cold runs activate warm seeding on every published batch.
	for _, dec := range []string{"core", "truss"} {
		var jv jobView
		postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "g", "decomposition": dec}, &jv)
		if v := waitForJob(t, ts.URL, jv.ID); v.State != JobDone {
			t.Fatalf("%s job: %+v", dec, v)
		}
	}

	const (
		mutators = 8
		batches  = 4
	)
	// Every batch adds one edge with a globally unique fresh endpoint, so
	// all 32 batches are guaranteed non-no-ops and the edit set commutes —
	// the final graph is order-independent and mirrorable.
	var edits []graph.EdgeEdit
	var mu sync.Mutex
	var wg sync.WaitGroup
	for m := 0; m < mutators; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				u := uint32((m*batches + b) % g.N())
				v := uint32(g.N() + m*batches + b) // fresh vertex: never a dup
				var mr mutateResponse
				resp := postJSON(t, ts.URL+"/graphs/g/edges", map[string]any{"edits": []map[string]any{
					{"op": "add", "u": u, "v": v},
				}}, &mr)
				if resp.StatusCode != 200 || mr.Added != 1 {
					t.Errorf("mutator %d batch %d: status %d, %+v", m, b, resp.StatusCode, mr)
					return
				}
				mu.Lock()
				edits = append(edits, graph.EdgeEdit{Add: true, U: u, V: v})
				mu.Unlock()
			}
		}(m)
	}
	// Concurrent readers: point lookups and decomposition requests racing
	// the warm seeder must never observe torn state.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				doJSON(t, "GET", ts.URL+"/graphs/g/core?v=0&v=1", nil, nil)
				doJSON(t, "GET", ts.URL+"/stats", nil, nil)
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var gv graphView
	doJSON(t, "GET", ts.URL+"/graphs/g", nil, &gv)
	if gv.Mutations != mutators*batches {
		t.Fatalf("published batches: %d, want %d", gv.Mutations, mutators*batches)
	}
	mirror := graph.ApplyEdits(g, 0, edits)
	if gv.N != mirror.N() || gv.M != mirror.M() {
		t.Fatalf("final shape (%d,%d), want (%d,%d)", gv.N, gv.M, mirror.N(), mirror.M())
	}
	want := peel.Run(nucleus.NewCore(mirror)).Kappa
	got := allCoreNumbers(t, ts.URL, "g", mirror.N())
	if !got.Maintained {
		t.Fatal("κ not maintained after concurrent batches")
	}
	for v := range want {
		if got.CoreNumbers[v] != want[v] {
			t.Fatalf("κ(%d) = %d, want %d", v, got.CoreNumbers[v], want[v])
		}
	}

	// And the WAL survived the interleaving: a fresh server recovers the
	// same final state.
	s.Close()
	s2 := New(Config{Workers: 2, Store: openFS(t, dir)})
	ts2 := httptest.NewServer(s2)
	t.Cleanup(func() { ts2.Close(); s2.Close() })
	var rv graphView
	doJSON(t, "GET", ts2.URL+"/graphs/g", nil, &rv)
	if rv.Version != gv.Version || rv.Mutations != gv.Mutations || rv.N != gv.N || rv.M != gv.M {
		t.Fatalf("recovered view %+v, want %+v", rv, gv)
	}
	rec := allCoreNumbers(t, ts2.URL, "g", mirror.N())
	for v := range want {
		if rec.CoreNumbers[v] != want[v] {
			t.Fatalf("recovered κ(%d) = %d, want %d", v, rec.CoreNumbers[v], want[v])
		}
	}
}

// TestWarmSeedHoldsNoMutationLock pins the lock discipline directly: the
// warm seeder must complete while this test HOLDS the graph's mutation
// lock. If a refactor ever moves warm seeding back under that lock (the
// pre-PR-4 behavior, which serialized every queued batch behind
// graph-sized reconvergence), this deadlocks and fails by timeout.
func TestWarmSeedHoldsNoMutationLock(t *testing.T) {
	ts, s := testServerWith(t, Config{Workers: 2})
	postJSON(t, ts.URL+"/graphs/g/generate", map[string]any{"generator": "plc", "n": 200, "k": 4, "seed": 9}, nil)
	var jv jobView
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "g", "decomposition": "core"}, &jv)
	waitForJob(t, ts.URL, jv.ID)
	postJSON(t, ts.URL+"/graphs/g/edges", map[string]any{"edits": []map[string]any{
		{"op": "add", "u": 0, "v": 199},
	}}, nil)
	e, ok := s.reg.get("g")
	if !ok {
		t.Fatal("graph vanished")
	}

	lock := s.reg.mutationLock("g")
	lock.Lock()
	defer lock.Unlock()
	done := make(chan []string, 1)
	go func() {
		// Re-seed the current version from its own cached results: the
		// full warm-seed body (instance fetch, reconvergence, cache put,
		// liveness recheck) runs while the mutation lock is held above.
		done <- s.warmSeed(e, e, 0)
	}()
	select { //nucleus:lint-ignore lockdiscipline the test holds the mutation lock on purpose: it proves warmSeed completes without ever needing it
	case seeded := <-done:
		if len(seeded) == 0 {
			t.Fatal("warm seeder did no work; the lock-freedom check proved nothing")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("warm seeding blocked on the per-name mutation lock")
	}
}
