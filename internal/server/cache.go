package server

import (
	"container/list"
	"sync"

	"nucleus/internal/nucleus"
)

// cacheKey identifies one decomposition result. The graph version ties the
// entry to a specific registry entry, so re-uploading a graph under the
// same name invalidates prior results implicitly. MaxSweeps is part of the
// key because a bounded run returns an approximation (τ ≥ κ), not the same
// array a converged run would.
type cacheKey struct {
	graph     string
	version   uint64
	dec       string
	alg       string
	maxSweeps int
}

// decompResult is a completed decomposition, shared between the job store
// and the cache. Immutable after creation.
type decompResult struct {
	Kappa      []int32
	MaxKappa   int32
	Converged  bool
	Iterations int
	Sweeps     int
	// Stopped is true when the run was ended by cooperative cancellation
	// or a wall-clock deadline rather than convergence or a sweep budget.
	// Stopped results are never cached: they depend on timing, not on the
	// request parameters.
	Stopped bool
	// Updates is the total number of τ decrements the run applied;
	// LastSweepUpdates is the count from the final sweep alone (the
	// ground-truth-free convergence signal surfaced to clients: its decay
	// toward zero tracks τ approaching κ). Both are 0 for peeling.
	Updates          int64
	LastSweepUpdates int64
	// Inst is the instance κ was computed on. Kept with the result so the
	// hierarchy/nuclei endpoints reuse the (often expensive) s-clique
	// enumeration instead of rebuilding it per request.
	Inst nucleus.Instance
}

// lruCache is a fixed-capacity LRU map from cacheKey to *decompResult.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[cacheKey]*list.Element
}

type lruEntry struct {
	key cacheKey
	val *decompResult
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		// A non-positive capacity would make put evict its own insertion
		// (the len > cap loop below), silently disabling the cache; clamp
		// to the smallest real cache instead.
		capacity = 1
	}
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[cacheKey]*list.Element, capacity),
	}
}

func (c *lruCache) get(k cacheKey) (*decompResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) put(k cacheKey, v *decompResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*lruEntry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&lruEntry{key: k, val: v})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// peek returns the entry for k without promoting it in the LRU order.
// Used by internal scans (e.g. warm-start seeding) that should not
// distort the eviction order the way client traffic does.
func (c *lruCache) peek(k cacheKey) (*decompResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	return el.Value.(*lruEntry).val, true
}

// purgeGraph removes every entry for the named graph with version below
// minVer. Deleting or replacing a graph makes those entries unreachable
// (the live version changed), so without this they pin κ arrays and
// s-clique indices until LRU pressure happens to evict them. An in-flight
// decomposition that finishes after the purge is handled by
// computeShared's liveness recheck, which removes its own stale insert.
func (c *lruCache) purgeGraph(name string, minVer uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*lruEntry)
		if e.key.graph == name && e.key.version < minVer {
			c.ll.Remove(el)
			delete(c.items, e.key)
		}
		el = next
	}
}

// remove drops one entry if present.
func (c *lruCache) remove(k cacheKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.Remove(el)
		delete(c.items, k)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
