package server

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"nucleus/internal/graph"
)

// TestCrashRecoveryManyGraphsConcurrent exercises the concurrent startup
// replay: many independent lineages — some mutated (snapshot + WAL), some
// snapshot-only, with and without maintained κ — recovered by the
// worker-pool fan-out in recoverFromStore. Every graph must land at its
// exact pre-kill version with identical per-vertex core numbers,
// regardless of which worker replayed it.
func TestCrashRecoveryManyGraphsConcurrent(t *testing.T) {
	dir := e2eDataDir(t)

	s1 := New(Config{Workers: 2, JobThreads: 4, Store: openFS(t, dir)})
	ts1 := httptest.NewServer(s1)

	const numGraphs = 6
	type preState struct {
		view  graphView
		kappa coreLookupResponse
	}
	pre := make(map[string]preState, numGraphs)
	wantBatches := 0
	for i := 0; i < numGraphs; i++ {
		name := fmt.Sprintf("g%d", i)
		g := graph.PowerLawCluster(120+10*i, 4, 0.4, int64(20+i))
		doJSON(t, "POST", ts1.URL+"/graphs/"+name, strings.NewReader(edgeListBody(g)), nil)

		if i%2 == 0 {
			// Even graphs: decompose (so κ is maintained) then mutate,
			// leaving i/2+1 committed WAL batches to replay.
			var jv jobView
			postJSON(t, ts1.URL+"/jobs", map[string]any{"graph": name, "decomposition": "core"}, &jv)
			if v := waitForJob(t, ts1.URL, jv.ID); v.State != JobDone || !v.Converged {
				t.Fatalf("cold core job on %q: %+v", name, v)
			}
			for b := 0; b <= i/2; b++ {
				var mr mutateResponse
				if resp := postJSON(t, ts1.URL+"/graphs/"+name+"/edges", map[string]any{"edits": []map[string]any{
					{"op": "add", "u": 0, "v": uint32(g.N() + b)},
				}}, &mr); resp.StatusCode != 200 {
					t.Fatalf("mutating %q: status %d", name, resp.StatusCode)
				}
				wantBatches++
			}
		}

		var gv graphView
		doJSON(t, "GET", ts1.URL+"/graphs/"+name, nil, &gv)
		pre[name] = preState{view: gv, kappa: allCoreNumbers(t, ts1.URL, name, gv.N)}
	}

	// SIGKILL: abandon instance 1 (no Close — every frame is already synced).
	ts1.Close()

	s2 := New(Config{Workers: 2, JobThreads: 4, Store: openFS(t, dir)})
	ts2 := httptest.NewServer(s2)
	t.Cleanup(func() { ts2.Close(); s2.Close() })

	// Stats first: the κ verification below runs cold decompositions on the
	// never-decomposed lineages itself, so recovery's zero-cold-runs
	// guarantee has to be checked before any lookups.
	st := getStats(t, ts2.URL)
	if st.Persistence.Replays != numGraphs {
		t.Fatalf("replays = %d, want %d", st.Persistence.Replays, numGraphs)
	}
	if st.Persistence.ReplayedBatches != int64(wantBatches) {
		t.Fatalf("replayed batches = %d, want %d", st.Persistence.ReplayedBatches, wantBatches)
	}
	if st.Mutations.ColdRuns != 0 {
		t.Fatalf("recovery ran %d cold decompositions, want 0", st.Mutations.ColdRuns)
	}

	for name, want := range pre {
		var gv graphView
		doJSON(t, "GET", ts2.URL+"/graphs/"+name, nil, &gv)
		if gv != want.view {
			t.Fatalf("%q after recovery:\n got %+v\nwant %+v", name, gv, want.view)
		}
		got := allCoreNumbers(t, ts2.URL, name, gv.N)
		if got.Maintained != want.kappa.Maintained || got.Version != want.kappa.Version {
			t.Fatalf("%q recovered κ meta: %+v, want %+v", name, got, want.kappa)
		}
		for v := range want.kappa.CoreNumbers {
			if got.CoreNumbers[v] != want.kappa.CoreNumbers[v] {
				t.Fatalf("%q: κ(%d) = %d after recovery, want %d", name, v, got.CoreNumbers[v], want.kappa.CoreNumbers[v])
			}
		}
	}

	// Version uniqueness across lineages must survive the concurrent bump:
	// a fresh mutation on any graph publishes above every recovered version.
	var maxVer uint64
	for _, want := range pre {
		if want.view.Version > maxVer {
			maxVer = want.view.Version
		}
	}
	var mr mutateResponse
	postJSON(t, ts2.URL+"/graphs/g1/edges", map[string]any{"edits": []map[string]any{
		// Fresh endpoint: guaranteed non-no-op, so a new version is published.
		{"op": "add", "u": 0, "v": pre["g1"].view.N},
	}}, &mr)
	if mr.Version <= maxVer {
		t.Fatalf("post-recovery mutation version %d not above recovered max %d", mr.Version, maxVer)
	}
}
