package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"nucleus/internal/localhi"
)

// Anytime serving: the HTTP surface of the paper's headline property.
// Theorem 1 makes every intermediate τ of a local decomposition a valid,
// monotonically tightening upper bound on κ, so a running job has useful
// partial results after every sweep. This file exposes them:
//
//   - GET  /jobs/{id}/progress — poll the freshest τ snapshot metrics;
//   - GET  /jobs/{id}/stream   — server-sent events, one per sweep;
//   - DELETE /jobs/{id}        — cooperative cancellation;
//   - GET  /graphs/{name}/decompose — synchronous decomposition under a
//     sweep budget (?maxSweeps=) and/or wall-clock deadline (?maxMs=),
//     returning the current τ bound with approximate:true when the run
//     did not converge in budget.
//
// See docs/ANYTIME.md for the model and docs/API.md for the endpoints.

// progressSnapshotView is the JSON shape of one anytime progress
// observation (a localhi.Snapshot, or a synthesized equivalent for
// results that never had a live publisher).
type progressSnapshotView struct {
	// Sweep is the 1-based sweep the snapshot was taken after.
	Sweep int `json:"sweep"`
	Cells int `json:"cells"`
	// MaxTau upper-bounds the largest κ and never rises across snapshots.
	MaxTau int32 `json:"maxTau"`
	// TauSum is the scalar progress measure: monotonically non-increasing,
	// stationary exactly at κ.
	TauSum int64 `json:"tauSum"`
	// Updates is the number of τ decrements in this sweep; UpdateRate is
	// Updates/Cells and FractionStable its complement — the ground-truth-
	// free convergence signals (§1.2): the rate decays to 0 as τ → κ.
	Updates        int64   `json:"updates"`
	UpdateRate     float64 `json:"updateRate"`
	FractionStable float64 `json:"fractionStable"`
	Converged      bool    `json:"converged"`
	Final          bool    `json:"final"`
	ElapsedMs      float64 `json:"elapsedMs"`
}

func snapView(s *localhi.Snapshot) progressSnapshotView {
	return progressSnapshotView{
		Sweep:          s.Sweep,
		Cells:          len(s.Tau),
		MaxTau:         s.MaxTau,
		TauSum:         s.TauSum,
		Updates:        s.Updates,
		UpdateRate:     s.UpdateRate,
		FractionStable: s.FractionStable,
		Converged:      s.Converged,
		Final:          s.Final,
		ElapsedMs:      float64(s.Elapsed) / float64(time.Millisecond),
	}
}

// synthSnapshotView builds the terminal snapshot for a result that had
// no live publisher (peel runs, cache hits, publishing disabled).
func synthSnapshotView(res *decompResult, durationMs float64) progressSnapshotView {
	var sum int64
	for _, k := range res.Kappa {
		sum += int64(k)
	}
	v := progressSnapshotView{
		Sweep:     res.Sweeps,
		Cells:     len(res.Kappa),
		MaxTau:    res.MaxKappa,
		TauSum:    sum,
		Updates:   res.LastSweepUpdates,
		Converged: res.Converged,
		Final:     true,
		ElapsedMs: durationMs,
	}
	if n := len(res.Kappa); n > 0 {
		v.UpdateRate = float64(res.LastSweepUpdates) / float64(n)
	}
	v.FractionStable = 1 - v.UpdateRate
	return v
}

// jobProgressResponse is the body of GET /jobs/{id}/progress and the
// payload of the SSE done event.
type jobProgressResponse struct {
	ID     string   `json:"id"`
	State  JobState `json:"state"`
	Cached bool     `json:"cached"`
	Error  string   `json:"error,omitempty"`
	// Approximate is true while the freshest τ is an uncertified upper
	// bound; it flips to false only once convergence is certified.
	Approximate bool `json:"approximate"`
	// Snapshot is the freshest progress observation; absent before the
	// first sweep of a queued/just-started job.
	Snapshot *progressSnapshotView `json:"snapshot,omitempty"`
}

func (j *job) stateNow() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (s *Server) jobProgress(j *job) jobProgressResponse {
	v := viewJob(j)
	out := jobProgressResponse{ID: v.ID, State: v.State, Cached: v.Cached, Error: v.Error, Approximate: true}
	if p := j.progress(); p != nil {
		if snap := p.Latest(); snap != nil {
			sv := snapView(snap)
			out.Snapshot = &sv
			out.Approximate = !snap.Converged
			return out
		}
	}
	// No published snapshot (queued, peel, cache hit, or publishing
	// disabled): synthesize the terminal view from the stored result.
	j.mu.Lock()
	res := j.result
	j.mu.Unlock()
	if res != nil {
		sv := synthSnapshotView(res, v.DurationMS)
		out.Snapshot = &sv
		out.Approximate = !res.Converged
	}
	return out
}

func (s *Server) handleJobProgress(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.jobProgress(j))
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	running, err := s.jobs.cancel(j)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	status := http.StatusOK // queued: cancelled on the spot
	if running {
		// Cooperative: the engine observes the flag at its next sweep
		// boundary; poll GET /jobs/{id} for the transition to cancelled.
		status = http.StatusAccepted
	}
	writeJSON(w, status, viewJob(j))
}

// writeSSEEvent emits one server-sent event with a JSON payload.
func writeSSEEvent(w io.Writer, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte("{}")
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// terminal reports whether a job state is final.
func terminal(st JobState) bool {
	return st == JobDone || st == JobFailed || st == JobCancelled || st == JobShed
}

// handleJobStream streams a job's anytime progress as server-sent
// events: one `progress` event per published sweep snapshot (drop-oldest
// under a slow client, so the stream always shows the freshest state)
// followed by a single `done` event carrying the terminal state and
// final snapshot. The connection closes after `done` or when the client
// disconnects.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}
	s.sseStreams.Add(1)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // keep reverse proxies from buffering the feed
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	ctx := r.Context()

	var last *localhi.Progress
	for {
		// Wait for a publisher (the job may still be queued) or a terminal
		// state (cache hits and peel jobs never get one).
		var prog *localhi.Progress
		for {
			prog = j.progress()
			if (prog != nil && prog != last) || terminal(j.stateNow()) {
				break
			}
			select {
			case <-ctx.Done():
				return
			// 25ms keeps the wait for a queued job's publisher cheap (40
			// wakeups/s per open stream) while adding negligible latency
			// to the first progress event.
			case <-time.After(25 * time.Millisecond):
			}
		}
		if prog == nil || prog == last {
			break // terminal without (new) progress: emit done below
		}
		last = prog
		ch, cancel := prog.Subscribe(64)
	recv:
		for {
			select {
			case <-ctx.Done():
				cancel()
				return
			case snap, ok := <-ch:
				if !ok {
					break recv
				}
				if snap.Final {
					// The final snapshot travels in the done event, where
					// it is paired with the job's terminal state.
					continue
				}
				writeSSEEvent(w, "progress", snapView(snap))
				fl.Flush()
			}
		}
		cancel()
		// The publisher finished, but if this job had coalesced onto a
		// run that was cancelled by its owner, the computation restarts
		// under a fresh publisher — loop and re-attach instead of
		// reporting a non-terminal "done".
	}

	// Give the worker a moment to publish the terminal job state (it is
	// set just after the engine returns), then report it.
	deadline := time.Now().Add(5 * time.Second)
	for !terminal(j.stateNow()) && time.Now().Before(deadline) {
		select {
		case <-ctx.Done():
			return
		case <-time.After(5 * time.Millisecond):
		}
	}
	writeSSEEvent(w, "done", s.jobProgress(j))
	fl.Flush()
}

// ---------------------------------------------------------------------------
// Budgeted synchronous decomposition.

// convergenceStatsView reports how settled a (possibly partial) run was
// when it returned.
type convergenceStatsView struct {
	// Updates is the total τ decrements the run applied;
	// LastSweepUpdates the decrements of its final sweep alone.
	Updates          int64 `json:"updates"`
	LastSweepUpdates int64 `json:"lastSweepUpdates"`
	// UpdateRate is LastSweepUpdates/Cells; FractionStable its
	// complement. An exact run always ends at rate 0 / stable 1.
	UpdateRate     float64 `json:"updateRate"`
	FractionStable float64 `json:"fractionStable"`
}

// accuracyView quantifies a partial τ against a cached converged κ of
// the same graph version and decomposition — only available when some
// earlier request already paid for the exact result.
type accuracyView struct {
	// MaxError is the largest τ−κ over all cells (0 means τ is already
	// exact even though uncertified); MeanError the average.
	MaxError  int32   `json:"maxError"`
	MeanError float64 `json:"meanError"`
	// ExactFraction is the fraction of cells whose τ equals κ.
	ExactFraction float64 `json:"exactFraction"`
}

// decomposeResponse is the body of GET /graphs/{name}/decompose.
type decomposeResponse struct {
	Graph         string `json:"graph"`
	Version       uint64 `json:"version"`
	Decomposition string `json:"decomposition"`
	Algorithm     string `json:"algorithm"`
	MaxSweeps     int    `json:"maxSweeps"`
	MaxMs         int    `json:"maxMs"`
	Cells         int    `json:"cells"`
	// MaxTau is the largest τ value: for a converged run, the largest κ.
	MaxTau    int32 `json:"maxTau"`
	Converged bool  `json:"converged"`
	// Approximate marks an uncertified result: the returned τ (and
	// histogram) upper-bound the exact κ pointwise but may still shrink.
	Approximate bool `json:"approximate"`
	// StoppedBy is what ended a non-converged run: "deadline" (maxMs) or
	// "sweeps" (maxSweeps); empty for converged runs.
	StoppedBy   string               `json:"stoppedBy,omitempty"`
	Sweeps      int                  `json:"sweeps"`
	Iterations  int                  `json:"iterations"`
	DurationMs  float64              `json:"durationMs"`
	Convergence convergenceStatsView `json:"convergence"`
	// Accuracy compares the partial τ to a cached converged κ when one
	// exists for this graph version; absent otherwise.
	Accuracy *accuracyView `json:"accuracy,omitempty"`
	// Histogram[k] is the number of cells with τ exactly k.
	Histogram []int64 `json:"histogram"`
	// Tau is the full per-cell τ array; only with ?tau=true (alias
	// ?kappa=true).
	Tau []int32 `json:"tau,omitempty"`
}

// queryIntAny reads the first present query parameter among names.
func queryIntAny(r *http.Request, def int, names ...string) (int, error) {
	for _, n := range names {
		if r.URL.Query().Get(n) != "" {
			return queryInt(r, n, def)
		}
	}
	return def, nil
}

// convergedBaseline returns a cached converged κ for (entry, dec) under
// any algorithm, or nil. peek, not get: accuracy introspection must not
// distort the LRU order the way client traffic does.
func (s *Server) convergedBaseline(e *graphEntry, dec string) *decompResult {
	for _, alg := range []string{"and", "snd", "peel"} {
		if res, ok := s.cache.peek(cacheKey{e.name, e.version, dec, alg, 0}); ok && res.Converged {
			return res
		}
	}
	return nil
}

// handleDecompose is the budget-bounded synchronous decomposition: the
// caller trades exactness for a response-time guarantee via ?maxSweeps=
// (deterministic, cacheable) and/or ?maxMs= (wall-clock deadline,
// checked between sweeps, never cached). Without budgets it behaves like
// the other synchronous consumers: full decomposition through the cache.
func (s *Server) handleDecompose(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", r.PathValue("name"))
		return
	}
	dec, err := normalizeDec(r.URL.Query().Get("dec"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	alg, err := normalizeAlg(r.URL.Query().Get("alg"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	maxSweeps, err := queryIntAny(r, 0, "maxSweeps", "max_sweeps")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	maxMs, err := queryIntAny(r, 0, "maxMs", "max_ms")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if maxSweeps < 0 {
		maxSweeps = 0
	}
	if maxMs < 0 {
		maxMs = 0
	}
	s.budgetedQueries.Add(1)

	start := time.Now()
	var res *decompResult
	stoppedBy := ""
	if maxMs == 0 {
		// Deterministic request: fully cacheable and single-flighted.
		res, err = s.kappaFor(e, dec, alg, maxSweeps)
	} else {
		// Deadline-bounded: serve a cached exact result if one exists
		// (it cannot be beaten), otherwise run fresh with a between-sweep
		// deadline check. The partial result is timing-dependent, so it
		// is never cached — but a run that converges inside its deadline
		// produced the exact answer and seeds the cache for everyone.
		exactKey := cacheKey{e.name, e.version, dec, alg, 0}
		budgetKey := cacheKey{e.name, e.version, dec, alg, maxSweeps}
		if cached, ok := s.cache.get(exactKey); ok {
			s.cacheHits.Add(1)
			res = cached
		} else if cached, ok := s.cache.get(budgetKey); maxSweeps > 0 && ok {
			// The deterministic maxSweeps approximation is already known
			// (from a prior budgeted request); it trivially satisfies any
			// deadline.
			s.cacheHits.Add(1)
			res = cached
		} else {
			deadline := start.Add(time.Duration(maxMs) * time.Millisecond)
			func() {
				s.acquireSync()
				defer s.releaseSync()
				res, err = s.runDecomposition(e, dec, alg, s.cfg.JobThreads, maxSweeps, nil,
					func() bool { return time.Now().After(deadline) })
			}()
			s.cacheMisses.Add(1)
			if err == nil {
				switch {
				case res.Stopped:
					stoppedBy = "deadline"
					s.deadlineStops.Add(1)
				case res.Converged:
					s.cacheIfLive(exactKey, res)
				case maxSweeps > 0:
					// The deadline never fired, so this is the deterministic
					// maxSweeps approximation — reusable by budget-only
					// requests for the same key.
					s.cacheIfLive(budgetKey, res)
				}
			}
		}
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if stoppedBy == "" && !res.Converged {
		stoppedBy = "sweeps"
	}

	n := len(res.Kappa)
	out := decomposeResponse{
		Graph:         e.name,
		Version:       e.version,
		Decomposition: dec,
		Algorithm:     alg,
		MaxSweeps:     maxSweeps,
		MaxMs:         maxMs,
		Cells:         n,
		MaxTau:        res.MaxKappa,
		Converged:     res.Converged,
		Approximate:   !res.Converged,
		StoppedBy:     stoppedBy,
		Sweeps:        res.Sweeps,
		Iterations:    res.Iterations,
		DurationMs:    float64(time.Since(start)) / float64(time.Millisecond),
		Convergence: convergenceStatsView{
			Updates:          res.Updates,
			LastSweepUpdates: res.LastSweepUpdates,
		},
	}
	if n > 0 {
		out.Convergence.UpdateRate = float64(res.LastSweepUpdates) / float64(n)
	}
	out.Convergence.FractionStable = 1 - out.Convergence.UpdateRate
	if !res.Converged {
		if base := s.convergedBaseline(e, dec); base != nil && len(base.Kappa) == n && n > 0 {
			acc := &accuracyView{}
			var sum int64
			exact := 0
			for c, tau := range res.Kappa {
				d := tau - base.Kappa[c]
				if d > acc.MaxError {
					acc.MaxError = d
				}
				sum += int64(d)
				if d == 0 {
					exact++
				}
			}
			acc.MeanError = float64(sum) / float64(n)
			acc.ExactFraction = float64(exact) / float64(n)
			out.Accuracy = acc
		}
	}
	hist := make([]int64, res.MaxKappa+1)
	for _, k := range res.Kappa {
		hist[k]++
	}
	out.Histogram = hist
	if q := r.URL.Query(); q.Get("tau") == "true" || q.Get("kappa") == "true" {
		out.Tau = res.Kappa
	}
	writeJSON(w, http.StatusOK, out)
}
