package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nucleus/internal/replica"
)

// newPrimary spins up a durable primary node.
func newPrimary(t *testing.T, gen uint64) (*httptest.Server, *Server) {
	t.Helper()
	return testServerWith(t, Config{
		Workers: 2,
		Store:   openFS(t, e2eDataDir(t)),
		Replication: ReplicationConfig{
			Role:       replica.RolePrimary,
			Generation: gen,
		},
	})
}

// newReplica spins up a durable replica of primaryURL with the
// background pull loop disabled — tests drive POST /replication/pull.
func newReplica(t *testing.T, primaryURL string, gen uint64) (*httptest.Server, *Server) {
	t.Helper()
	return testServerWith(t, Config{
		Workers: 2,
		Store:   openFS(t, e2eDataDir(t)),
		Replication: ReplicationConfig{
			Role:         replica.RoleReplica,
			Primary:      primaryURL,
			Generation:   gen,
			PullInterval: -1,
		},
	})
}

// pull drives one replication cycle over HTTP and returns the node
// status it reports.
func pull(t *testing.T, replicaURL string, wantStatus int) replica.NodeStatus {
	t.Helper()
	var ns replica.NodeStatus
	resp := doJSON(t, "POST", replicaURL+"/replication/pull", nil, &ns)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST /replication/pull: status %d (want %d), lastError %q", resp.StatusCode, wantStatus, ns.LastError)
	}
	return ns
}

// mutateStamped posts an edit batch stamped with a cluster generation.
func mutateStamped(t *testing.T, base, name string, gen string, edits ...[2]uint32) *http.Response {
	t.Helper()
	body := mutateRequest{}
	for _, e := range edits {
		body.Edits = append(body.Edits, edgeOp{Op: "add", U: e[0], V: e[1]})
	}
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", base+"/graphs/"+name+"/edges", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if gen != "" {
		req.Header.Set(replica.GenerationHeader, gen)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestReplicationEndToEnd(t *testing.T) {
	pts, ps := newPrimary(t, 1)
	rts, rs := newReplica(t, pts.URL, 1)

	// Build state on the primary: an upload plus a few committed batches.
	if resp := doJSON(t, "POST", pts.URL+"/graphs/g", strings.NewReader("0 1\n1 2\n0 2\n"), nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}
	var mr mutateResponse
	for i := uint32(3); i < 8; i++ {
		if resp := postJSON(t, pts.URL+"/graphs/g/edges", mutateRequest{
			Edits: []edgeOp{{Op: "add", U: 0, V: i}, {Op: "add", U: 1, V: i}},
		}, &mr); resp.StatusCode != http.StatusOK {
			t.Fatalf("mutate: status %d", resp.StatusCode)
		}
	}

	ns := pull(t, rts.URL, http.StatusOK)
	if ns.LagVersions != 0 || ns.LagMs != 0 {
		t.Fatalf("replica still lagging after pull: %+v", ns)
	}
	if ns.SnapshotsInstalled == 0 {
		t.Fatalf("expected a snapshot resync on first contact: %+v", ns)
	}

	// The replica serves the graph at the primary's exact version with
	// bit-identical maintained core numbers.
	var pg, rg graphView
	doJSON(t, "GET", pts.URL+"/graphs/g", nil, &pg)
	if resp := doJSON(t, "GET", rts.URL+"/graphs/g", nil, &rg); resp.StatusCode != http.StatusOK {
		t.Fatalf("replica GET /graphs/g: status %d", resp.StatusCode)
	}
	if rg.Version != pg.Version || rg.N != pg.N || rg.M != pg.M {
		t.Fatalf("replica view %+v != primary view %+v", rg, pg)
	}
	pk := allCoreNumbers(t, pts.URL, "g", pg.N)
	rk := allCoreNumbers(t, rts.URL, "g", rg.N)
	if !pk.Maintained || !rk.Maintained {
		t.Fatalf("maintained κ expected on both nodes: primary %v replica %v", pk.Maintained, rk.Maintained)
	}
	for i := range pk.CoreNumbers {
		if pk.CoreNumbers[i] != rk.CoreNumbers[i] {
			t.Fatalf("κ[%d]: primary %d, replica %d", i, pk.CoreNumbers[i], rk.CoreNumbers[i])
		}
	}

	// Reads on the replica decompose warm: the shipped κ seeded the
	// cache, so no cold run happens.
	var dec struct {
		Converged bool `json:"converged"`
	}
	if resp := doJSON(t, "GET", rts.URL+"/graphs/g/decompose?dec=core&alg=and", nil, &dec); resp.StatusCode != http.StatusOK {
		t.Fatalf("replica decompose: status %d", resp.StatusCode)
	}
	if !dec.Converged {
		t.Fatal("replica decompose not converged")
	}
	if cold := getStats(t, rts.URL).Mutations.ColdRuns; cold != 0 {
		t.Fatalf("replica paid %d cold decompositions; want 0", cold)
	}

	// Writes bounce off the replica.
	if resp := mutateStamped(t, rts.URL, "g", "", [2]uint32{0, 9}); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("replica accepted a write: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, "POST", rts.URL+"/graphs/h", strings.NewReader("0 1\n"), nil); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("replica accepted an upload: status %d", resp.StatusCode)
	}

	// Incremental follow-up: more batches ship via the WAL, no snapshot.
	before := pull(t, rts.URL, http.StatusOK).SnapshotsInstalled
	for i := uint32(8); i < 11; i++ {
		postJSON(t, pts.URL+"/graphs/g/edges", mutateRequest{
			Edits: []edgeOp{{Op: "add", U: 2, V: i}},
		}, &mr)
	}
	ns = pull(t, rts.URL, http.StatusOK)
	if ns.SnapshotsInstalled != before {
		t.Fatalf("incremental batches triggered a resync: %d → %d snapshots", before, ns.SnapshotsInstalled)
	}
	if ns.BatchesApplied < 3 {
		t.Fatalf("expected ≥3 batches applied, got %d", ns.BatchesApplied)
	}
	doJSON(t, "GET", rts.URL+"/graphs/g", nil, &rg)
	if rg.Version != mr.Version {
		t.Fatalf("replica at version %d, primary acknowledged %d", rg.Version, mr.Version)
	}

	// Deletes propagate as drops.
	if resp := doJSON(t, "DELETE", pts.URL+"/graphs/g", nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	pull(t, rts.URL, http.StatusOK)
	if resp := doJSON(t, "GET", rts.URL+"/graphs/g", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("replica still serves deleted graph: status %d", resp.StatusCode)
	}

	// White-box: registry version counters stayed coherent.
	if rv, pv := rs.reg.maxVersion(), ps.reg.maxVersion(); rv != pv {
		t.Fatalf("maxVersion: replica %d, primary %d", rv, pv)
	}
}

func TestGenerationFencing(t *testing.T) {
	pts, _ := newPrimary(t, 5)
	if resp := doJSON(t, "POST", pts.URL+"/graphs/g", strings.NewReader("0 1\n1 2\n"), nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}

	// A correctly stamped write passes; unstamped writes pass too (the
	// stamp is the router's, direct clients do not carry one).
	if resp := mutateStamped(t, pts.URL, "g", "5", [2]uint32{0, 2}); resp.StatusCode != http.StatusOK {
		t.Fatalf("stamped write: status %d", resp.StatusCode)
	}
	if resp := mutateStamped(t, pts.URL, "g", "", [2]uint32{1, 3}); resp.StatusCode != http.StatusOK {
		t.Fatalf("unstamped write: status %d", resp.StatusCode)
	}

	// Stale and future stamps are fenced with 409.
	if resp := mutateStamped(t, pts.URL, "g", "4", [2]uint32{0, 4}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale-stamped write: status %d, want 409", resp.StatusCode)
	}
	if resp := mutateStamped(t, pts.URL, "g", "6", [2]uint32{0, 5}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("future-stamped write: status %d, want 409", resp.StatusCode)
	}
	if resp := mutateStamped(t, pts.URL, "g", "bogus", [2]uint32{0, 6}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("junk-stamped write: status %d, want 400", resp.StatusCode)
	}
	if fenced := getStats(t, pts.URL).Replication.FencedWrites; fenced != 2 {
		t.Fatalf("fencedWrites = %d, want 2", fenced)
	}
	// Fenced writes left no trace: the graph still has exactly the two
	// admitted batches' edges.
	var gv graphView
	doJSON(t, "GET", pts.URL+"/graphs/g", nil, &gv)
	if gv.M != 4 {
		t.Fatalf("m = %d after fenced writes, want 4", gv.M)
	}
}

func TestPromotionAndRepoint(t *testing.T) {
	pts, _ := newPrimary(t, 1)
	rts, _ := newReplica(t, pts.URL, 1)

	doJSON(t, "POST", pts.URL+"/graphs/g", strings.NewReader("0 1\n1 2\n0 2\n"), nil)
	var mr mutateResponse
	postJSON(t, pts.URL+"/graphs/g/edges", mutateRequest{Edits: []edgeOp{{Op: "add", U: 0, V: 3}}}, &mr)
	pull(t, rts.URL, http.StatusOK)

	// Promotion demands a strictly higher generation.
	var ns replica.NodeStatus
	if resp := postJSON(t, rts.URL+"/replication/promote", promoteRequest{Generation: 1}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("promote at same generation: status %d, want 400", resp.StatusCode)
	}
	if resp := postJSON(t, rts.URL+"/replication/promote", promoteRequest{Generation: 2}, &ns); resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d", resp.StatusCode)
	}
	if ns.Role != replica.RolePrimary || ns.Generation != 2 {
		t.Fatalf("promoted status: %+v", ns)
	}
	// Idempotent re-promotion (router retry).
	if resp := postJSON(t, rts.URL+"/replication/promote", promoteRequest{Generation: 2}, &ns); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-promote: status %d", resp.StatusCode)
	}

	// The promoted node accepts writes at the new generation and serves
	// the acknowledged history.
	if resp := mutateStamped(t, rts.URL, "g", "2", [2]uint32{1, 3}); resp.StatusCode != http.StatusOK {
		t.Fatalf("write on promoted node: status %d", resp.StatusCode)
	}
	var rg graphView
	doJSON(t, "GET", rts.URL+"/graphs/g", nil, &rg)
	if rg.Version != mr.Version+1 {
		t.Fatalf("promoted node at version %d, want %d", rg.Version, mr.Version+1)
	}

	// The deposed primary fences the new epoch's writes...
	if resp := mutateStamped(t, pts.URL, "g", "2", [2]uint32{2, 3}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("deposed primary accepted a gen-2 write: status %d", resp.StatusCode)
	}
	// ...and pulls/promotes cannot happen on the wrong roles.
	if resp := doJSON(t, "POST", pts.URL+"/replication/pull", nil, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("pull on a primary: status %d, want 409", resp.StatusCode)
	}
	if resp := postJSON(t, rts.URL+"/replication/repoint", repointRequest{Primary: pts.URL}, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("repoint on a primary: status %d, want 409", resp.StatusCode)
	}

	if promos := getStats(t, rts.URL).Replication.Promotions; promos != 1 {
		t.Fatalf("promotions = %d, want 1", promos)
	}
}

func TestRepointAdoptsNewPrimary(t *testing.T) {
	p1ts, _ := newPrimary(t, 1)
	p2ts, _ := newPrimary(t, 3) // stand-in for a freshly promoted node
	rts, _ := newReplica(t, p1ts.URL, 1)

	doJSON(t, "POST", p1ts.URL+"/graphs/a", strings.NewReader("0 1\n"), nil)
	pull(t, rts.URL, http.StatusOK)

	doJSON(t, "POST", p2ts.URL+"/graphs/b", strings.NewReader("0 1\n1 2\n"), nil)
	var ns replica.NodeStatus
	if resp := postJSON(t, rts.URL+"/replication/repoint", repointRequest{Primary: p2ts.URL, Generation: 3}, &ns); resp.StatusCode != http.StatusOK {
		t.Fatalf("repoint: status %d", resp.StatusCode)
	}
	if ns.Primary != p2ts.URL || ns.Generation != 3 {
		t.Fatalf("repointed status: %+v", ns)
	}
	// After repointing, the replica mirrors the new primary: b appears,
	// a (absent from the new manifest) is dropped.
	pull(t, rts.URL, http.StatusOK)
	if resp := doJSON(t, "GET", rts.URL+"/graphs/b", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("replica missing new primary's graph: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, "GET", rts.URL+"/graphs/a", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("replica kept old primary's graph: status %d", resp.StatusCode)
	}

	// The old primary is now a stale source: pulls from it are refused.
	postJSON(t, rts.URL+"/replication/repoint", repointRequest{Primary: p1ts.URL}, nil)
	ns = pull(t, rts.URL, http.StatusBadGateway)
	if ns.StalePulls == 0 {
		t.Fatalf("pull from a stale source not counted: %+v", ns)
	}
}

func TestReplicationRequiresDurableStore(t *testing.T) {
	ts := testServer(t, Config{}) // null store
	for _, path := range []string{"/replication/manifest", "/replication/snapshot/g", "/replication/wal/g"} {
		if resp := doJSON(t, "GET", ts.URL+path, nil, nil); resp.StatusCode != http.StatusNotImplemented {
			t.Fatalf("GET %s on a null store: status %d, want 501", path, resp.StatusCode)
		}
	}
	// Status still answers, reporting standalone.
	var ns replica.NodeStatus
	if resp := doJSON(t, "GET", ts.URL+"/replication/status", nil, &ns); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /replication/status: status %d", resp.StatusCode)
	}
	if ns.Role != replica.RoleStandalone {
		t.Fatalf("role = %q, want standalone", ns.Role)
	}
	if resp := postJSON(t, ts.URL+"/replication/promote", promoteRequest{Generation: 1}, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("promote on standalone: status %d, want 409", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	pts, _ := newPrimary(t, 7)
	doJSON(t, "POST", pts.URL+"/graphs/g", strings.NewReader("0 1\n1 2\n0 2\n"), nil)

	req, err := http.NewRequest("GET", pts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE nucleusd_requests_total counter",
		"nucleusd_graphs 1",
		`nucleusd_replication_role{role="primary"} 1`,
		`nucleusd_replication_role{role="replica"} 0`,
		"nucleusd_replication_generation 7",
		"nucleusd_replication_lag_versions 0",
		"nucleusd_replication_fenced_writes_total 0",
		"nucleusd_persist_enabled 1",
		"nucleusd_persist_snapshots_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Every nucleusd_* sample line's metric appears under exactly one
	// TYPE header (the format requires headers to precede samples).
	types := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			types[f[2]] = true
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if !types[name] {
			t.Errorf("sample %q has no preceding TYPE header", line)
		}
	}
}

func TestReplicaSurvivesRestart(t *testing.T) {
	// A replica's applied state is durable: kill it (abandon without
	// Close), restart on the same data dir, and it resumes at the exact
	// version — then catches up incrementally.
	pts, _ := newPrimary(t, 1)
	doJSON(t, "POST", pts.URL+"/graphs/g", strings.NewReader("0 1\n1 2\n0 2\n"), nil)
	var mr mutateResponse
	postJSON(t, pts.URL+"/graphs/g/edges", mutateRequest{Edits: []edgeOp{{Op: "add", U: 0, V: 3}}}, &mr)

	dir := e2eDataDir(t)
	cfg := Config{
		Workers: 2,
		Replication: ReplicationConfig{
			Role: replica.RoleReplica, Primary: pts.URL, Generation: 1, PullInterval: -1,
		},
	}
	cfg.Store = openFS(t, dir)
	r1 := New(cfg)
	rts1 := httptest.NewServer(r1)
	pull(t, rts1.URL, http.StatusOK)
	var rg graphView
	doJSON(t, "GET", rts1.URL+"/graphs/g", nil, &rg)
	v1 := rg.Version
	rts1.Close() // SIGKILL: no r1.Close()

	postJSON(t, pts.URL+"/graphs/g/edges", mutateRequest{Edits: []edgeOp{{Op: "add", U: 1, V: 4}}}, &mr)

	cfg.Store = openFS(t, dir)
	r2 := New(cfg)
	rts2 := httptest.NewServer(r2)
	t.Cleanup(func() { rts2.Close(); r2.Close() })
	doJSON(t, "GET", rts2.URL+"/graphs/g", nil, &rg)
	if rg.Version != v1 {
		t.Fatalf("restarted replica at version %d, want recovered %d", rg.Version, v1)
	}
	ns := pull(t, rts2.URL, http.StatusOK)
	doJSON(t, "GET", rts2.URL+"/graphs/g", nil, &rg)
	if rg.Version != mr.Version {
		t.Fatalf("restarted replica at version %d after pull, want %d (status %+v)", rg.Version, mr.Version, ns)
	}
	if ns.SnapshotsInstalled != 0 {
		t.Fatalf("restart should catch up via the WAL, not a resync: %+v", ns)
	}
}

// TestReplicationStatsSection checks that /stats carries the
// replication block on a replica, including lag while behind.
func TestReplicationStatsSection(t *testing.T) {
	pts, _ := newPrimary(t, 1)
	rts, _ := newReplica(t, pts.URL, 1)
	doJSON(t, "POST", pts.URL+"/graphs/g", strings.NewReader("0 1\n"), nil)
	pull(t, rts.URL, http.StatusOK)
	st := getStats(t, rts.URL)
	r := st.Replication
	if r.Role != replica.RoleReplica || r.Primary != pts.URL || r.Pulls == 0 {
		t.Fatalf("replication stats: %+v", r)
	}
	if r.Generation != 1 {
		t.Fatalf("generation = %d, want 1", r.Generation)
	}
	if fmt.Sprint(r.LagVersions, r.LagMs) != "0 0" {
		t.Fatalf("caught-up replica reports lag: %+v", r)
	}
}
