package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nucleus/internal/densest"
	"nucleus/internal/dynamic"
	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
)

// graphEntry is one named graph in the registry.
type graphEntry struct {
	name string
	g    *graph.Graph
	// version is a process-global monotonic id assigned when the entry is
	// created. Cache keys embed it, so replacing a graph under the same
	// name can never serve stale κ arrays: the stale entries simply age
	// out of the LRU.
	version uint64
	source  string
	created time.Time

	// Densest-subgraph results, memoized per method: the graph is
	// immutable, so they never go stale, and holding the mutex across
	// the computation single-flights concurrent requests.
	densestMu   sync.Mutex
	densestMemo map[string]*densest.Result

	// (r,s) instances, memoized per decomposition for the same reason.
	// Building a Truss/N34 instance runs a global triangle / 4-clique
	// count (and, budget permitting, materializes the flat s-clique
	// incidence index); memoizing it makes repeated estimation,
	// decomposition, hierarchy and warm-seed requests pay it once per
	// graph version. Entries are single-flight handles so the expensive
	// build runs outside instMu (a long n34 build must not block a
	// request for an already-memoized core instance). The memo dies with
	// the entry, so replacing or deleting a graph evicts its indexes
	// along with the version (modulo results in the LRU cache that still
	// pin their instance).
	instMu   sync.Mutex
	instMemo map[string]*instFlight

	// dyn is the mutable adjacency overlay with incrementally maintained
	// core numbers (subcore traversal). It is created on the first edit
	// batch and carried forward to each successor version of the same
	// name; it is only ever touched while holding the registry's per-name
	// mutation lock, so it is NOT safe to read from request handlers.
	dyn *dynamic.Graph
	// coreKappa is an immutable snapshot of the maintained core numbers
	// taken when this version was published (nil for versions that have
	// never been mutated). GET /graphs/{name}/core serves from it.
	coreKappa []int32
	// mutations counts the edit batches applied to reach this version.
	mutations int
}

// instFlight is one memoized-or-in-progress instance build. done is
// closed once inst (or panicVal, for a build that blew up) is set.
type instFlight struct {
	done     chan struct{}
	inst     nucleus.Instance
	panicVal any
}

// instanceOf returns the entry's (r,s) instance for the normalized
// decomposition name, building it on first use via the budget-aware
// adaptive constructor (nucleus.Build): a flat incidence index when it
// fits Config.IndexMemBudget, the on-the-fly instance otherwise.
// Instances are read-only after construction, so sharing across requests
// is safe. Builds are single-flighted per (entry, dec) but run outside
// instMu, so a slow n34 build never blocks a caller fetching an
// already-memoized instance of another family. The /stats index counters
// account every call: memo/flight hit → reuse, index built → build, no
// index → fallback.
func (s *Server) instanceOf(e *graphEntry, dec string) nucleus.Instance {
	e.instMu.Lock()
	if f, ok := e.instMemo[dec]; ok {
		e.instMu.Unlock()
		<-f.done
		if f.panicVal != nil {
			// The build this caller coalesced onto failed; surface the same
			// panic the builder saw (runDecomposition converts it to a
			// failed job; on the synchronous handler paths it propagates to
			// net/http's per-connection recover, exactly as a panic from
			// this caller's own build would have).
			panic(f.panicVal)
		}
		s.idxReuses.Add(1)
		return f.inst
	}
	f := &instFlight{done: make(chan struct{})}
	if e.instMemo == nil {
		e.instMemo = make(map[string]*instFlight, 3)
	}
	e.instMemo[dec] = f
	e.instMu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			// Record the failure for coalesced waiters, forget the flight so
			// a later request can retry, and propagate to this caller.
			f.panicVal = r
			e.instMu.Lock()
			delete(e.instMemo, dec)
			e.instMu.Unlock()
			close(f.done)
			panic(r)
		}
	}()
	fam, err := nucleus.ParseFamily(dec)
	if err != nil {
		panic(fmt.Sprintf("server: unnormalized decomposition %q", dec))
	}
	budget := s.cfg.IndexMemBudget
	if budget < 0 {
		budget = 0 // nucleus.Build: 0 = never index
	}
	inst, rep := nucleus.Build(e.g, fam, budget, s.cfg.JobThreads)
	if rep.Indexed {
		s.idxBuilds.Add(1)
		s.idxBytes.Add(rep.IndexBytes)
	} else {
		s.idxFallbacks.Add(1)
	}
	f.inst = inst
	close(f.done)
	return inst
}

// densestFor computes (once) and returns the densest subgraph of the
// entry under the given method ("approx" or "maxcore").
func (e *graphEntry) densestFor(method string) *densest.Result {
	e.densestMu.Lock()
	defer e.densestMu.Unlock()
	if r, ok := e.densestMemo[method]; ok {
		return r
	}
	// The memo mutex deliberately single-flights the computation: a second
	// request for the same method must wait for the first result, not
	// duplicate graph-sized work. The lock is per-entry and per-use, never
	// taken by the registry or mutation paths, so nothing else queues on it.
	var r *densest.Result
	if method == "maxcore" {
		r = densest.MaxCore(e.g) //nucleus:lint-ignore lockdiscipline densestMu exists to single-flight exactly this call; no other code path takes it
	} else {
		r = densest.Approx(e.g) //nucleus:lint-ignore lockdiscipline densestMu exists to single-flight exactly this call; no other code path takes it
	}
	if e.densestMemo == nil {
		e.densestMemo = make(map[string]*densest.Result, 2)
	}
	e.densestMemo[method] = r
	return r
}

// registry is the concurrent named-graph store.
type registry struct {
	mu      sync.RWMutex
	graphs  map[string]*graphEntry
	nextVer atomic.Uint64

	// mutMu guards mutLocks, the per-name mutation locks. A name's lock
	// serializes everything that changes its durable or published state:
	// edit batches (WAL batch append → overlay repair → snapshot →
	// republish → WAL commit append), uploads/generates/deletes (registry
	// install + snapshot persistence), and background WAL compaction.
	// Warm cache seeding deliberately runs OUTSIDE the lock — it is
	// graph-sized reconvergence work, and holding the lock across it would
	// stall every queued mutation of the name behind a cache refill (the
	// seeder re-validates liveness before keeping its entries). Different
	// names mutate concurrently. Locks are retained after delete — a
	// name's lock is a few words, and keeping it avoids racing a deletion
	// against a mutation in flight (handlers pre-check existence before
	// creating one, so junk names never allocate).
	mutMu    sync.Mutex
	mutLocks map[string]*sync.Mutex
}

func newRegistry() *registry {
	return &registry{
		graphs:   make(map[string]*graphEntry),
		mutLocks: make(map[string]*sync.Mutex),
	}
}

// mutationLock returns the mutation lock for name, creating it on first
// use.
func (r *registry) mutationLock(name string) *sync.Mutex {
	r.mutMu.Lock()
	defer r.mutMu.Unlock()
	l, ok := r.mutLocks[name]
	if !ok {
		l = &sync.Mutex{}
		r.mutLocks[name] = l
	}
	return l
}

func (r *registry) put(name, source string, g *graph.Graph) *graphEntry {
	// Version assignment and map install happen under one critical
	// section so concurrent uploads of the same name cannot leave a
	// lower-versioned entry live over a higher-versioned one.
	r.mu.Lock()
	e := &graphEntry{
		name:    name,
		g:       g,
		version: r.nextVer.Add(1),
		source:  source,
		created: time.Now(),
	}
	r.graphs[name] = e
	r.mu.Unlock()
	return e
}

// replaceIf installs e as the new version of name only if the live entry
// still has version oldVer, assigning the fresh version under the lock
// (same discipline as put). A false return means the graph was deleted or
// replaced concurrently — the caller's edits were applied against a dead
// snapshot and must not be published.
func (r *registry) replaceIf(name string, oldVer uint64, e *graphEntry) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur, ok := r.graphs[name]
	if !ok || cur.version != oldVer {
		return false
	}
	e.version = r.nextVer.Add(1)
	r.graphs[name] = e
	return true
}

// install places an entry under its existing version without assigning a
// fresh one: startup recovery (single-threaded, before the first request;
// bumpVersion afterwards keeps future versions above every installed one)
// and upload rollback (under the per-name mutation lock, reinstating the
// entry a failed re-upload displaced).
func (r *registry) install(e *graphEntry) {
	r.mu.Lock()
	r.graphs[e.name] = e
	r.mu.Unlock()
}

// bumpVersion raises the version counter to at least v. Recovery-only
// (single-threaded), so load+store needs no CAS loop.
func (r *registry) bumpVersion(v uint64) {
	if r.nextVer.Load() < v {
		r.nextVer.Store(v)
	}
}

// installReplicated installs e at exactly version — the version the
// primary acknowledged for this state — unless the live entry has
// already reached it (a duplicate shipment). Unlike put/replaceIf it
// never assigns a fresh version: replication's contract is that a
// promoted replica serves the identical version history. The version
// counter is raised so versions minted after a promotion stay above
// every replicated one (CAS loop: the puller runs concurrently with
// request traffic, unlike recovery's bumpVersion).
func (r *registry) installReplicated(e *graphEntry, version uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur, ok := r.graphs[e.name]; ok && cur.version >= version {
		return false
	}
	e.version = version
	r.graphs[e.name] = e
	for {
		cur := r.nextVer.Load()
		if cur >= version || r.nextVer.CompareAndSwap(cur, version) {
			return true
		}
	}
}

// maxVersion returns the highest published version across all graphs
// (0 when empty): the node's replication fitness score — the router
// promotes the replica with the largest one.
func (r *registry) maxVersion() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var mv uint64
	for _, e := range r.graphs {
		if e.version > mv {
			mv = e.version
		}
	}
	return mv
}

// deleteIf removes name only while its live entry is still exactly ver:
// the upload path uses it to roll back a registration whose snapshot
// could not be persisted, without clobbering a concurrent re-upload.
func (r *registry) deleteIf(name string, ver uint64) {
	r.mu.Lock()
	if cur, ok := r.graphs[name]; ok && cur.version == ver {
		delete(r.graphs, name)
	}
	r.mu.Unlock()
}

func (r *registry) get(name string) (*graphEntry, bool) {
	r.mu.RLock()
	e, ok := r.graphs[name]
	r.mu.RUnlock()
	return e, ok
}

func (r *registry) delete(name string) (*graphEntry, bool) {
	r.mu.Lock()
	e, ok := r.graphs[name]
	delete(r.graphs, name)
	r.mu.Unlock()
	return e, ok
}

func (r *registry) list() []*graphEntry {
	r.mu.RLock()
	out := make([]*graphEntry, 0, len(r.graphs))
	for _, e := range r.graphs {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (r *registry) count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.graphs)
}

// readGraph parses an uploaded graph body in the given format:
// "edgelist" (default when empty), "mm" (MatrixMarket) or "metis".
func readGraph(format string, body io.Reader) (*graph.Graph, error) {
	switch format {
	case "", "edgelist":
		return graph.ReadEdgeList(body)
	case "mm", "matrixmarket":
		return graph.ReadMatrixMarket(body)
	case "metis":
		return graph.ReadMETIS(body)
	}
	return nil, fmt.Errorf("unknown format %q (want edgelist, mm or metis)", format)
}

// generateRequest is the JSON body of POST /graphs/{name}/generate. Only
// the fields used by the selected generator are read; zero values fall
// back to small defaults so a bare {"generator":"gnm"} works.
type generateRequest struct {
	Generator string `json:"generator"`
	// Shared size parameters.
	N    int   `json:"n"`
	M    int   `json:"m"`
	K    int   `json:"k"`
	Seed int64 `json:"seed"`
	// Rewiring / triad probability (wattsstrogatz, powerlawcluster) and
	// intra-community probability (planted). Pointers distinguish an
	// explicit 0 (a valid probability) from an absent field.
	P *float64 `json:"p"`
	// RMAT parameters.
	Scale      int      `json:"scale"`
	EdgeFactor int      `json:"edgeFactor"`
	A          *float64 `json:"a"`
	B          *float64 `json:"b"`
	C          *float64 `json:"c"`
	// Planted-communities parameters.
	Communities int `json:"communities"`
	Size        int `json:"size"`
	InterEdges  int `json:"interEdges"`
	// CliqueChain parameters.
	Count int `json:"count"`
}

func defInt(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

func defFloat(v *float64, def float64) float64 {
	if v == nil {
		return def
	}
	return *v
}

// Generator size ceilings: a generate request is a few bytes of JSON, so
// without these a single call could allocate an arbitrarily large graph
// and OOM the server (the upload path is already bounded by
// MaxUploadBytes).
const (
	maxGenVertices = 1 << 25 // ~33M
	maxGenEdges    = 1 << 27 // ~134M (pre-dedup)
)

func checkGenSize(n, m int64) error {
	if n > maxGenVertices {
		return fmt.Errorf("generator size %d vertices exceeds the limit of %d", n, maxGenVertices)
	}
	if m > maxGenEdges {
		return fmt.Errorf("generator size %d edges exceeds the limit of %d", m, maxGenEdges)
	}
	return nil
}

// checkGenParams bounds every raw integer parameter before any products
// are formed, so the m computations in generate cannot overflow int64
// (each factor is at most 2^27, so any pairwise product fits).
func checkGenParams(params ...int) error {
	for _, p := range params {
		if int64(p) > maxGenEdges {
			return fmt.Errorf("generator parameter %d exceeds the limit of %d", p, maxGenEdges)
		}
	}
	return nil
}

// generate builds a graph from the request using the library generators.
func generate(req generateRequest) (*graph.Graph, error) {
	switch req.Generator {
	case "gnm":
		n := defInt(req.N, 1000)
		m := defInt(req.M, 4*n)
		if err := checkGenSize(int64(n), int64(m)); err != nil {
			return nil, err
		}
		// GnM rejection-samples distinct edges, so m beyond the simple
		// graph's capacity would spin forever.
		if maxM := int64(n) * int64(n-1) / 2; int64(m) > maxM {
			return nil, fmt.Errorf("gnm: %d edges exceed the %d possible on %d vertices", m, maxM, n)
		}
		return graph.GnM(n, m, req.Seed), nil
	case "ba", "barabasialbert":
		n, k := defInt(req.N, 1000), defInt(req.K, 4)
		if err := checkGenParams(n, k); err != nil {
			return nil, err
		}
		if err := checkGenSize(int64(n), int64(n)*int64(k)); err != nil {
			return nil, err
		}
		return graph.BarabasiAlbert(n, k, req.Seed), nil
	case "rmat":
		scale, ef := defInt(req.Scale, 10), defInt(req.EdgeFactor, 8)
		if scale > 25 {
			return nil, fmt.Errorf("rmat scale %d exceeds the limit of 25", scale)
		}
		if err := checkGenParams(ef); err != nil {
			return nil, err
		}
		if err := checkGenSize(int64(1)<<uint(scale), int64(ef)<<uint(scale)); err != nil {
			return nil, err
		}
		return graph.RMAT(scale, ef,
			defFloat(req.A, 0.45), defFloat(req.B, 0.22), defFloat(req.C, 0.22), req.Seed), nil
	case "ws", "wattsstrogatz":
		n, k := defInt(req.N, 1000), defInt(req.K, 6)
		if err := checkGenParams(n, k); err != nil {
			return nil, err
		}
		if err := checkGenSize(int64(n), int64(n)*int64(k)); err != nil {
			return nil, err
		}
		return graph.WattsStrogatz(n, k, defFloat(req.P, 0.1), req.Seed), nil
	case "plc", "powerlawcluster":
		n, k := defInt(req.N, 1000), defInt(req.K, 4)
		if err := checkGenParams(n, k); err != nil {
			return nil, err
		}
		if err := checkGenSize(int64(n), int64(n)*int64(k)); err != nil {
			return nil, err
		}
		return graph.PowerLawCluster(n, k, defFloat(req.P, 0.5), req.Seed), nil
	case "planted", "plantedcommunities":
		c, size := defInt(req.Communities, 8), defInt(req.Size, 32)
		inter := defInt(req.InterEdges, 64)
		if err := checkGenParams(c, size, inter); err != nil {
			return nil, err
		}
		nv := int64(c) * int64(size)
		// Vertex bound first: with nv <= 2^25 and size <= 2^27 the edge
		// product below cannot overflow.
		if err := checkGenSize(nv, 0); err != nil {
			return nil, err
		}
		if err := checkGenSize(nv, nv*int64(size-1)/2+int64(inter)); err != nil {
			return nil, err
		}
		return graph.PlantedCommunities(c, size, defFloat(req.P, 0.6), inter, req.Seed), nil
	case "complete":
		n := defInt(req.N, 16)
		if err := checkGenParams(n); err != nil {
			return nil, err
		}
		if err := checkGenSize(int64(n), int64(n)*int64(n-1)/2); err != nil {
			return nil, err
		}
		return graph.Complete(n), nil
	case "cliquechain":
		count, k := defInt(req.Count, 4), defInt(req.K, 8)
		if err := checkGenParams(count, k); err != nil {
			return nil, err
		}
		nv := int64(count) * int64(k)
		if err := checkGenSize(nv, 0); err != nil {
			return nil, err
		}
		if err := checkGenSize(nv, nv*int64(k-1)/2+int64(count)); err != nil {
			return nil, err
		}
		return graph.CliqueChain(count, k), nil
	}
	return nil, fmt.Errorf("unknown generator %q (want gnm, ba, rmat, ws, plc, planted, complete or cliquechain)", req.Generator)
}
