package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nucleus/internal/graph"
)

// testServerWith spins up a Server behind httptest and tears both down
// with the test, returning the Server for white-box assertions.
func testServerWith(t *testing.T, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts, s
}

func testServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts, _ := testServerWith(t, cfg)
	return ts
}

// doJSON issues a request and decodes the JSON response into out (when
// non-nil), failing the test on transport errors.
func doJSON(t *testing.T, method, url string, body io.Reader, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp
}

func postJSON(t *testing.T, url string, v any, out any) *http.Response {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return doJSON(t, "POST", url, bytes.NewReader(data), out)
}

// waitForJob polls GET /jobs/{id} until the job leaves queued/running.
func waitForJob(t *testing.T, base, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		var v jobView
		resp := doJSON(t, "GET", base+"/jobs/"+id, nil, &v)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs/%s: status %d", id, resp.StatusCode)
		}
		if terminal(v.State) {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return jobView{}
}

func getStats(t *testing.T, base string) statsResponse {
	t.Helper()
	var st statsResponse
	if resp := doJSON(t, "GET", base+"/stats", nil, &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats: status %d", resp.StatusCode)
	}
	return st
}

func TestHealthz(t *testing.T) {
	ts := testServer(t, Config{})
	var v map[string]string
	resp := doJSON(t, "GET", ts.URL+"/healthz", nil, &v)
	if resp.StatusCode != http.StatusOK || v["status"] != "ok" {
		t.Fatalf("healthz: status %d body %v", resp.StatusCode, v)
	}
}

func TestGraphUploadAndInfo(t *testing.T) {
	ts := testServer(t, Config{})
	// A triangle plus a pendant vertex.
	edges := "0 1\n1 2\n0 2\n2 3\n"
	var gv graphView
	resp := doJSON(t, "POST", ts.URL+"/graphs/tri", strings.NewReader(edges), &gv)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}
	if gv.N != 4 || gv.M != 4 {
		t.Fatalf("upload: got n=%d m=%d, want n=4 m=4", gv.N, gv.M)
	}
	resp = doJSON(t, "GET", ts.URL+"/graphs/tri", nil, &gv)
	if resp.StatusCode != http.StatusOK || gv.Source != "upload:edgelist" {
		t.Fatalf("get: status %d source %q", resp.StatusCode, gv.Source)
	}

	var list []graphView
	doJSON(t, "GET", ts.URL+"/graphs", nil, &list)
	if len(list) != 1 || list[0].Name != "tri" {
		t.Fatalf("list: %+v", list)
	}

	// MatrixMarket upload of the same triangle (1-based).
	mm := "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 3\n2 1\n3 1\n3 2\n"
	resp = doJSON(t, "POST", ts.URL+"/graphs/mmtri?format=mm", strings.NewReader(mm), &gv)
	if resp.StatusCode != http.StatusCreated || gv.N != 3 || gv.M != 3 {
		t.Fatalf("mm upload: status %d n=%d m=%d", resp.StatusCode, gv.N, gv.M)
	}

	// Bad format parameter.
	resp = doJSON(t, "POST", ts.URL+"/graphs/bad?format=nope", strings.NewReader(edges), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad format: status %d", resp.StatusCode)
	}

	// Delete and 404 afterwards.
	if resp := doJSON(t, "DELETE", ts.URL+"/graphs/tri", nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, "GET", ts.URL+"/graphs/tri", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: status %d", resp.StatusCode)
	}
}

func TestGenerateGraph(t *testing.T) {
	ts := testServer(t, Config{})
	var gv graphView
	resp := postJSON(t, ts.URL+"/graphs/k6/generate", map[string]any{"generator": "complete", "n": 6}, &gv)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("generate: status %d", resp.StatusCode)
	}
	if gv.N != 6 || gv.M != 15 {
		t.Fatalf("K6: got n=%d m=%d, want n=6 m=15", gv.N, gv.M)
	}
	resp = postJSON(t, ts.URL+"/graphs/x/generate", map[string]any{"generator": "nope"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad generator: status %d", resp.StatusCode)
	}
}

// TestEndToEndFlow is the acceptance flow: generate a graph, run an async
// k-truss decomposition job, fetch its κ histogram, answer a query-driven
// core estimate, and verify that a repeated decomposition request is
// served from the LRU cache via the /stats counters.
func TestEndToEndFlow(t *testing.T) {
	ts := testServer(t, Config{Workers: 2})

	// Upload a generated graph: K6, where every edge lies in 4 triangles,
	// so the (2,3) κ index of all 15 edges is 4.
	var gv graphView
	if resp := postJSON(t, ts.URL+"/graphs/k6/generate", map[string]any{"generator": "complete", "n": 6}, &gv); resp.StatusCode != http.StatusCreated {
		t.Fatalf("generate: status %d", resp.StatusCode)
	}

	// Async k-truss decomposition job.
	var jv jobView
	resp := postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "k6", "decomposition": "truss", "algorithm": "and"}, &jv)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if jv.Cached {
		t.Fatal("first job should not be a cache hit")
	}
	done := waitForJob(t, ts.URL, jv.ID)
	if done.State != JobDone || !done.Converged {
		t.Fatalf("job: %+v", done)
	}

	// κ histogram: all 15 edges at κ = 4.
	var res jobResultResponse
	if resp := doJSON(t, "GET", ts.URL+"/jobs/"+jv.ID+"/result", nil, &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", resp.StatusCode)
	}
	if res.MaxKappa != 4 || len(res.Histogram) != 5 || res.Histogram[4] != 15 {
		t.Fatalf("histogram: maxKappa=%d hist=%v", res.MaxKappa, res.Histogram)
	}
	if res.Kappa != nil {
		t.Fatal("kappa array should be omitted without ?kappa=true")
	}
	doJSON(t, "GET", ts.URL+"/jobs/"+jv.ID+"/result?kappa=true", nil, &res)
	if len(res.Kappa) != 15 {
		t.Fatalf("kappa: %v", res.Kappa)
	}

	// Query-driven core estimate: in K6 every vertex has core number 5,
	// and hops=1 already covers the whole graph.
	var est estimateResponse
	resp = postJSON(t, ts.URL+"/estimate/core", map[string]any{"graph": "k6", "vertices": []int{0, 3}, "hops": 1}, &est)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: status %d", resp.StatusCode)
	}
	if len(est.Estimates) != 2 || est.Estimates[0] != 5 || est.Estimates[1] != 5 {
		t.Fatalf("estimates: %+v", est)
	}
	if est.ActiveCells != 6 {
		t.Fatalf("activeCells: got %d, want 6", est.ActiveCells)
	}

	// Repeated decomposition request: must be a cache hit, visible in
	// /stats.
	before := getStats(t, ts.URL)
	var jv2 jobView
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "k6", "decomposition": "truss", "algorithm": "and"}, &jv2)
	if !jv2.Cached || jv2.State != JobDone {
		t.Fatalf("repeat job not served from cache: %+v", jv2)
	}
	after := getStats(t, ts.URL)
	if after.Cache.Hits != before.Cache.Hits+1 {
		t.Fatalf("cache hits: before=%d after=%d", before.Cache.Hits, after.Cache.Hits)
	}
	if after.Jobs.Done < 2 {
		t.Fatalf("jobs done: %d", after.Jobs.Done)
	}
}

func TestEstimateTrussAndValidation(t *testing.T) {
	ts := testServer(t, Config{})
	postJSON(t, ts.URL+"/graphs/k5/generate", map[string]any{"generator": "complete", "n": 5}, nil)

	// K5: every edge lies in 3 triangles, κ₃ = 3. Edge [0,9] is absent
	// (vertex 9 doesn't exist → 400); [3,4] is present.
	var est estimateResponse
	resp := postJSON(t, ts.URL+"/estimate/truss", map[string]any{"graph": "k5", "edges": [][2]int{{0, 1}, {3, 4}}, "hops": 1}, &est)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: status %d", resp.StatusCode)
	}
	if len(est.Estimates) != 2 || est.Estimates[0] != 3 || est.Estimates[1] != 3 {
		t.Fatalf("truss estimates: %+v", est)
	}

	// Out-of-range vertex.
	resp = postJSON(t, ts.URL+"/estimate/core", map[string]any{"graph": "k5", "vertices": []int{99}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out of range: status %d", resp.StatusCode)
	}
	// Unknown graph.
	resp = postJSON(t, ts.URL+"/estimate/core", map[string]any{"graph": "nope", "vertices": []int{0}}, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d", resp.StatusCode)
	}
	// Empty queries.
	resp = postJSON(t, ts.URL+"/estimate/core", map[string]any{"graph": "k5", "vertices": []int{}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty vertices: status %d", resp.StatusCode)
	}
}

func TestJobValidationAndLifecycle(t *testing.T) {
	ts := testServer(t, Config{})
	postJSON(t, ts.URL+"/graphs/g/generate", map[string]any{"generator": "complete", "n": 5}, nil)

	// Unknown graph → 404.
	resp := postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "nope"}, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d", resp.StatusCode)
	}
	// Bad decomposition → 400.
	resp = postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "g", "decomposition": "quux"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad dec: status %d", resp.StatusCode)
	}
	// Unknown job id → 404.
	if resp := doJSON(t, "GET", ts.URL+"/jobs/j999", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", resp.StatusCode)
	}

	// Result of an unfinished job → 409. Submit against a larger graph so
	// there is a window where the job is queued or running; if it still
	// finishes first, the 200 is fine and we only check the done path.
	var jv jobView
	postJSON(t, ts.URL+"/graphs/big/generate", map[string]any{"generator": "gnm", "n": 20000, "m": 100000}, nil)
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "big", "decomposition": "truss"}, &jv)
	resp = doJSON(t, "GET", ts.URL+"/jobs/"+jv.ID+"/result", nil, nil)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
		t.Fatalf("pending result: status %d", resp.StatusCode)
	}
	if v := waitForJob(t, ts.URL, jv.ID); v.State != JobDone {
		t.Fatalf("big job: %+v", v)
	}

	// Peel and SND also work, and peel shares a cache slot regardless of
	// the sweep budget.
	var pv jobView
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "g", "decomposition": "core", "algorithm": "peel", "maxSweeps": 7}, &pv)
	if v := waitForJob(t, ts.URL, pv.ID); v.State != JobDone || !v.Converged {
		t.Fatalf("peel job: %+v", v)
	}
	var pv2 jobView
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "g", "decomposition": "core", "algorithm": "peel", "maxSweeps": 3}, &pv2)
	if !pv2.Cached {
		t.Fatalf("peel should ignore maxSweeps in the cache key: %+v", pv2)
	}
}

func TestCacheInvalidationOnReupload(t *testing.T) {
	ts := testServer(t, Config{})
	postJSON(t, ts.URL+"/graphs/g/generate", map[string]any{"generator": "complete", "n": 5}, nil)

	var jv jobView
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "g", "decomposition": "core"}, &jv)
	waitForJob(t, ts.URL, jv.ID)

	// Replacing the graph under the same name bumps the version, so the
	// next job must NOT see the old cached κ.
	doJSON(t, "POST", ts.URL+"/graphs/g", strings.NewReader("0 1\n1 2\n"), nil)
	var jv2 jobView
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "g", "decomposition": "core"}, &jv2)
	if jv2.Cached {
		t.Fatal("job after re-upload must not hit the stale cache entry")
	}
	done := waitForJob(t, ts.URL, jv2.ID)
	if done.MaxKappa != 1 || done.Cells != 3 {
		t.Fatalf("path graph decomposition: %+v", done)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	k1 := cacheKey{graph: "a"}
	k2 := cacheKey{graph: "b"}
	k3 := cacheKey{graph: "c"}
	c.put(k1, &decompResult{MaxKappa: 1})
	c.put(k2, &decompResult{MaxKappa: 2})
	if _, ok := c.get(k1); !ok {
		t.Fatal("k1 evicted too early")
	}
	// k1 is now most recent; inserting k3 must evict k2.
	c.put(k3, &decompResult{MaxKappa: 3})
	if _, ok := c.get(k2); ok {
		t.Fatal("k2 should have been evicted")
	}
	if _, ok := c.get(k1); !ok {
		t.Fatal("k1 should survive")
	}
	if c.len() != 2 {
		t.Fatalf("len: %d", c.len())
	}
}

func TestHierarchyNucleiDensest(t *testing.T) {
	ts := testServer(t, Config{})
	// Two K5s joined by a single bridge edge: two dense communities.
	postJSON(t, ts.URL+"/graphs/cc/generate", map[string]any{"generator": "cliquechain", "count": 2, "k": 5}, nil)

	// Truss nuclei at k=3: every K5 edge lies in 3 triangles (κ₃ = 3)
	// while the bridge edge lies in none, so the two cliques separate
	// into two 10-edge nuclei of 5 vertices each.
	var nr nucleiResponse
	resp := doJSON(t, "GET", ts.URL+"/graphs/cc/nuclei?dec=truss&k=3", nil, &nr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nuclei: status %d", resp.StatusCode)
	}
	if len(nr.Nuclei) != 2 {
		t.Fatalf("nuclei: got %d, want 2: %+v", len(nr.Nuclei), nr)
	}
	for _, nuc := range nr.Nuclei {
		if len(nuc.Vertices) != 5 || nuc.Cells != 10 {
			t.Fatalf("nucleus: %+v", nuc)
		}
	}

	// Hierarchy JSON decodes into nested nodes.
	var forest []struct {
		K        int32           `json:"k"`
		Cells    int             `json:"cells"`
		Children json.RawMessage `json:"children"`
	}
	resp = doJSON(t, "GET", ts.URL+"/graphs/cc/hierarchy?dec=truss", nil, &forest)
	if resp.StatusCode != http.StatusOK || len(forest) == 0 {
		t.Fatalf("hierarchy: status %d forest %+v", resp.StatusCode, forest)
	}

	// Densest subgraph: one of the K5s (average degree 4).
	var dr densestResponse
	resp = doJSON(t, "GET", ts.URL+"/graphs/cc/densest", nil, &dr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("densest: status %d", resp.StatusCode)
	}
	if dr.AverageDegree < 4 || len(dr.Vertices) < 5 {
		t.Fatalf("densest: %+v", dr)
	}
	if resp := doJSON(t, "GET", ts.URL+"/graphs/cc/densest?method=nope", nil, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad method: status %d", resp.StatusCode)
	}

	// The nuclei + hierarchy calls above share one cache slot (same
	// graph/dec/alg): the second must have been a hit.
	st := getStats(t, ts.URL)
	if st.Cache.Hits < 1 {
		t.Fatalf("expected a cache hit from the hierarchy endpoints: %+v", st.Cache)
	}
}

func TestConcurrentJobSubmission(t *testing.T) {
	ts := testServer(t, Config{Workers: 4, QueueDepth: 128})
	postJSON(t, ts.URL+"/graphs/g/generate", map[string]any{"generator": "planted", "communities": 6, "size": 20, "p": 0.6, "interEdges": 40, "seed": 7}, nil)

	const goroutines = 16
	decs := []string{"core", "truss", "n34"}
	ids := make([]string, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(map[string]any{"graph": "g", "decomposition": decs[i%len(decs)]})
			resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var jv jobView
			if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("submit %d: status %d", i, resp.StatusCode)
				return
			}
			ids[i] = jv.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	kappas := make(map[string][]int32)
	for _, id := range ids {
		v := waitForJob(t, ts.URL, id)
		if v.State != JobDone {
			t.Fatalf("job %s: %+v", id, v)
		}
		var res jobResultResponse
		doJSON(t, "GET", ts.URL+"/jobs/"+id+"/result?kappa=true", nil, &res)
		dec := v.Decomposition
		if prev, ok := kappas[dec]; ok {
			if fmt.Sprint(prev) != fmt.Sprint(res.Kappa) {
				t.Fatalf("non-deterministic κ for %s", dec)
			}
		} else {
			kappas[dec] = res.Kappa
		}
	}

	// All 16 jobs over 3 distinct cache keys: exactly 3 misses pay the
	// three computations; every other request resolves as a hit (cached
	// at submit, cached at run, or coalesced). Per-request accounting
	// makes this exact: hits + misses == jobs.
	st := getStats(t, ts.URL)
	if st.Jobs.Done != goroutines {
		t.Fatalf("done: %d", st.Jobs.Done)
	}
	if st.Cache.Hits+st.Cache.Misses != goroutines {
		t.Fatalf("cache accounting: %+v", st.Cache)
	}
	if st.Cache.Misses != 3 {
		t.Fatalf("misses = %d, want 3 (one per distinct key): %+v", st.Cache.Misses, st.Cache)
	}
}

func TestGracefulClose(t *testing.T) {
	s := New(Config{Workers: 2})
	// Close twice: must not panic or deadlock.
	s.Close()
	s.Close()
	// Submissions after close are rejected.
	if _, err := s.jobs.submit(jobRequest{Graph: "g"}, "", 0); err == nil {
		t.Fatal("submit after close should fail")
	}
}

func TestUploadSizeLimit(t *testing.T) {
	ts := testServer(t, Config{MaxUploadBytes: 16})
	resp := doJSON(t, "POST", ts.URL+"/graphs/g", strings.NewReader("0 1\n1 2\n2 3\n3 4\n4 5\n5 6\n"), nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: status %d, want 413", resp.StatusCode)
	}
}

func TestGeneratorSizeLimits(t *testing.T) {
	ts := testServer(t, Config{})
	for _, body := range []map[string]any{
		{"generator": "rmat", "scale": 40},
		{"generator": "gnm", "n": 2000000000},
		{"generator": "complete", "n": 1000000},
		{"generator": "ws", "n": 100000000, "k": 64},
		{"generator": "planted", "communities": 1 << 26, "size": 1 << 26},
	} {
		resp := postJSON(t, ts.URL+"/graphs/huge/generate", body, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%v: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestDeletePurgesCache(t *testing.T) {
	ts, s := testServerWith(t, Config{})
	postJSON(t, ts.URL+"/graphs/g/generate", map[string]any{"generator": "complete", "n": 5}, nil)
	var jv jobView
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "g", "decomposition": "core"}, &jv)
	waitForJob(t, ts.URL, jv.ID)
	if s.cache.len() != 1 {
		t.Fatalf("cache entries before delete: %d", s.cache.len())
	}
	doJSON(t, "DELETE", ts.URL+"/graphs/g", nil, nil)
	if s.cache.len() != 0 {
		t.Fatalf("cache entries after delete: %d, want 0", s.cache.len())
	}
}

func TestJobThreadsClamped(t *testing.T) {
	ts := testServer(t, Config{})
	postJSON(t, ts.URL+"/graphs/g/generate", map[string]any{"generator": "complete", "n": 6}, nil)
	var jv jobView
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "g", "decomposition": "core", "threads": 1000000000}, &jv)
	if v := waitForJob(t, ts.URL, jv.ID); v.State != JobDone {
		t.Fatalf("absurd thread count should be clamped, not crash: %+v", v)
	}
}

func TestJobHistoryPruning(t *testing.T) {
	ts := testServer(t, Config{JobHistory: 2})
	postJSON(t, ts.URL+"/graphs/g/generate", map[string]any{"generator": "complete", "n": 5}, nil)

	// Four jobs with distinct cache keys; all finish.
	ids := []string{}
	for _, dec := range []string{"core", "truss", "n34"} {
		var jv jobView
		postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "g", "decomposition": dec}, &jv)
		waitForJob(t, ts.URL, jv.ID)
		ids = append(ids, jv.ID)
	}
	var jv jobView
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "g", "decomposition": "core", "algorithm": "peel"}, &jv)
	waitForJob(t, ts.URL, jv.ID)

	var list []jobView
	doJSON(t, "GET", ts.URL+"/jobs", nil, &list)
	if len(list) > 2 {
		t.Fatalf("job history not pruned: %d jobs retained", len(list))
	}
	// The oldest job has been evicted and now 404s.
	if resp := doJSON(t, "GET", ts.URL+"/jobs/"+ids[0], nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job: status %d", resp.StatusCode)
	}
}

func TestNegativeMaxSweepsSharesCacheSlot(t *testing.T) {
	ts := testServer(t, Config{})
	postJSON(t, ts.URL+"/graphs/g/generate", map[string]any{"generator": "complete", "n": 5}, nil)

	var j1 jobView
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "g", "decomposition": "core", "maxSweeps": -1}, &j1)
	if v := waitForJob(t, ts.URL, j1.ID); !v.Converged {
		t.Fatalf("negative budget should run to convergence: %+v", v)
	}
	var j2 jobView
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "g", "decomposition": "core", "maxSweeps": 0}, &j2)
	if !j2.Cached {
		t.Fatalf("maxSweeps -1 and 0 must share a cache slot: %+v", j2)
	}
}

func TestSingleFlightCoalescing(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	e := s.reg.put("g", "test", mustGenerate(t, generateRequest{Generator: "gnm", N: 2000, M: 16000}))
	key := cacheKey{e.name, e.version, "truss", "and", 0}

	const callers = 8
	results := make([]*decompResult, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := s.computeShared(key, e, 1, 0, nil, nil)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	// All callers must share the single computed result object.
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a distinct result: computation was not coalesced", i)
		}
	}
}

func mustGenerate(t *testing.T, req generateRequest) *graph.Graph {
	t.Helper()
	g, err := generate(req)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGenerateExplicitZeroProbability(t *testing.T) {
	ts := testServer(t, Config{})
	// Watts–Strogatz with p=0 is a pure ring lattice: this generator links
	// each vertex to its k forward neighbors, so exactly n*k distinct
	// edges. With the old "0 means default" handling this got silently
	// rewired with p=0.1 (which collapses some duplicates, m < n*k).
	var gv graphView
	resp := postJSON(t, ts.URL+"/graphs/ring/generate",
		map[string]any{"generator": "ws", "n": 100, "k": 6, "p": 0.0}, &gv)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("generate: status %d", resp.StatusCode)
	}
	if gv.M != 600 {
		t.Fatalf("ring lattice: got m=%d, want exactly 600", gv.M)
	}
}

func TestDensestMemoized(t *testing.T) {
	ts := testServer(t, Config{})
	postJSON(t, ts.URL+"/graphs/g/generate", map[string]any{"generator": "complete", "n": 6}, nil)
	var d1, d2 densestResponse
	doJSON(t, "GET", ts.URL+"/graphs/g/densest", nil, &d1)
	doJSON(t, "GET", ts.URL+"/graphs/g/densest", nil, &d2)
	if d1.AverageDegree != 5 || d2.AverageDegree != 5 {
		t.Fatalf("densest of K6: %+v %+v", d1, d2)
	}
}

func TestEstimateTrussEmptyRegion(t *testing.T) {
	ts := testServer(t, Config{})
	// Path 0-1-2: query the non-edge [0,2] with hops=0. The region {0,2}
	// contains no edge, which used to fall through to a FULL-graph
	// decomposition (nil Subset = all cells); now it must short-circuit
	// to activeCells=0 and still answer -1 for the non-edge.
	doJSON(t, "POST", ts.URL+"/graphs/path", strings.NewReader("0 1\n1 2\n"), nil)
	var est estimateResponse
	resp := postJSON(t, ts.URL+"/estimate/truss",
		map[string]any{"graph": "path", "edges": [][2]int{{0, 2}}, "hops": 0}, &est)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: status %d", resp.StatusCode)
	}
	if est.ActiveCells != 0 || len(est.Estimates) != 1 || est.Estimates[0] != -1 {
		t.Fatalf("empty region estimate: %+v", est)
	}
}

func TestJobViewEmitsConvergedFalse(t *testing.T) {
	ts := testServer(t, Config{})
	postJSON(t, ts.URL+"/graphs/g/generate",
		map[string]any{"generator": "planted", "communities": 4, "size": 24, "p": 0.7, "interEdges": 30, "seed": 3}, nil)
	var jv jobView
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "g", "decomposition": "truss", "maxSweeps": 1}, &jv)
	waitForJob(t, ts.URL, jv.ID)
	// Raw body must contain "converged":false for a sweep-bounded run
	// (field-presence is part of the documented contract).
	resp, err := http.Get(ts.URL + "/jobs/" + jv.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"converged":false`) {
		t.Fatalf("bounded job body missing converged:false: %s", body)
	}
}

func TestGnMRejectsImpossibleEdgeCount(t *testing.T) {
	ts := testServer(t, Config{})
	// Only 1 distinct edge exists on 2 vertices; m=100 used to spin the
	// rejection sampler forever.
	resp := postJSON(t, ts.URL+"/graphs/x/generate", map[string]any{"generator": "gnm", "n": 2, "m": 100}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("impossible gnm: status %d, want 400", resp.StatusCode)
	}
}

func TestNucleiKOutOfInt32Range(t *testing.T) {
	ts := testServer(t, Config{})
	postJSON(t, ts.URL+"/graphs/g/generate", map[string]any{"generator": "complete", "n": 5}, nil)
	for _, k := range []string{"2147483648", "-1"} {
		resp := doJSON(t, "GET", ts.URL+"/graphs/g/nuclei?dec=core&k="+k, nil, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("k=%s: status %d, want 400", k, resp.StatusCode)
		}
	}
}

func TestStaleResultNotCachedAfterReplace(t *testing.T) {
	ts, s := testServerWith(t, Config{})
	postJSON(t, ts.URL+"/graphs/g/generate", map[string]any{"generator": "complete", "n": 5}, nil)
	e1, _ := s.reg.get("g")
	// Replace the graph; e1 is now a dead version.
	postJSON(t, ts.URL+"/graphs/g/generate", map[string]any{"generator": "complete", "n": 6}, nil)

	// A computation that was in flight for the dead version finishes now:
	// the liveness recheck must take its insert back out of the cache.
	key := cacheKey{e1.name, e1.version, "core", "and", 0}
	if _, _, err := s.computeShared(key, e1, 1, 0, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.cache.get(key); ok {
		t.Fatal("stale-version result remained cached after replacement")
	}

	// The live version caches normally.
	e2, _ := s.reg.get("g")
	live := cacheKey{e2.name, e2.version, "core", "and", 0}
	if _, _, err := s.computeShared(live, e2, 1, 0, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.cache.get(live); !ok {
		t.Fatal("live-version result was not cached")
	}
}
