package server

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nucleus/internal/localhi"
	inucleus "nucleus/internal/nucleus"
	"nucleus/internal/peel"
	"nucleus/internal/sched"
)

// JobState is the lifecycle state of a decomposition job:
// queued → running → done | failed | cancelled, with shed as a second
// terminal rejection state: a deadline-tagged job whose ?deadlineMs
// passed (or was predicted to pass) before a worker could start it.
// Cache hits jump straight to done; DELETE /jobs/{id} cancels a queued
// job immediately and a running one cooperatively (at its next sweep
// boundary).
type JobState string

// Job lifecycle states.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
	JobShed      JobState = "shed"
)

// defaultTenant is the tenant of requests without an X-Nucleus-Tenant
// header.
const defaultTenant = "default"

// jobRequest is the JSON body of POST /jobs.
type jobRequest struct {
	// Graph names a registered graph.
	Graph string `json:"graph"`
	// Decomposition is core, truss or n34 (aliases: 12, 23, 34).
	Decomposition string `json:"decomposition"`
	// Algorithm is and (default), snd or peel.
	Algorithm string `json:"algorithm"`
	// Threads is the in-job worker count, honored by every algorithm
	// (local sweeps and parallel peeling alike); 0 uses the server
	// default. The effective value is surfaced in the job status.
	Threads int `json:"threads"`
	// MaxSweeps bounds local iterations; 0 runs to convergence.
	MaxSweeps int `json:"maxSweeps"`
}

// job is one decomposition job. Mutable fields are guarded by mu.
type job struct {
	id    string
	mgr   *jobManager
	req   jobRequest
	entry *graphEntry
	key   cacheKey
	// threads is the effective intra-job worker count, resolved at submit
	// time (request value, else the server default, clamped to the host)
	// and surfaced in the job status. All engines honor it — the local
	// algorithms split sweeps across workers and peel runs the parallel
	// bucket engine.
	threads int
	// Scheduler state, fixed at submit: the submitting tenant, the
	// requested relative deadline (0 = none), its absolute form, the cost
	// model's estimate for the admitted run, and the model inputs needed
	// to feed the completion back (size is n+m).
	tenant      string
	deadlineMs  int
	deadline    time.Time
	predictedMs float64
	costKey     sched.CostKey
	size        int64

	// cancel is the cooperative cancellation flag: DELETE /jobs/{id} sets
	// it, and the running decomposition polls it between sweeps (it is the
	// job's localhi Stop function). Atomic because the engine reads it off
	// the job lock.
	cancel atomic.Bool

	mu        sync.Mutex
	state     JobState
	errMsg    string
	cached    bool
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    *decompResult
	// degraded marks a job the admission policy re-budgeted: its deadline
	// could not survive the predicted queue wait at full cost, so it was
	// admitted with a computed maxSweeps anytime budget instead of being
	// queued to fail.
	degraded bool
	// resolved marks the job's per-request cache accounting (exactly one
	// hit or miss per admitted request) as done. Cancel, shed, shutdown
	// and run paths can race to resolve; the flag keeps it exactly-once.
	resolved bool
	// prog is the progress publisher of the computation currently serving
	// this job (the owning flight's — shared when this job coalesced onto
	// another caller's run). Nil while queued, for peel jobs, for cache
	// hits, and when progress publishing is disabled.
	prog *localhi.Progress
}

// progress returns the job's current progress publisher, if any.
func (j *job) progress() *localhi.Progress {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.prog
}

// jobManager owns the workload-aware scheduler and the worker pool.
type jobManager struct {
	s  *Server
	wg sync.WaitGroup
	// sched is the dispatch queue: deficit-round-robin across tenants,
	// earliest-deadline-first within one, with per-tenant quotas and
	// dispatch-time shedding of expired jobs. cost is the observed-cost
	// model its admission decisions consume.
	sched *sched.Scheduler
	cost  *sched.CostModel

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order, for GET /jobs
	closed bool

	nextID    atomic.Int64
	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	cancelled atomic.Int64
	shed      atomic.Int64
	degraded  atomic.Int64
}

func newJobManager(s *Server) *jobManager {
	cfg := s.cfg
	m := &jobManager{
		s:    s,
		jobs: make(map[string]*job),
		cost: sched.NewCostModel(0),
	}
	m.sched = sched.New(sched.Config{
		Workers:           cfg.Workers,
		MaxQueued:         cfg.QueueDepth,
		TenantMaxQueued:   cfg.TenantQueueDepth,
		TenantMaxInFlight: cfg.TenantInFlight,
		TenantWeights:     cfg.TenantWeights,
	}, sched.RealClock(), m.onShed)
	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m
}

// errQueueFull reports a full job queue; handlers map it to 429.
var errQueueFull = fmt.Errorf("job queue is full")

// errTenantQuota reports a full per-tenant queue (other tenants may
// still have room); handlers map it to 429 like errQueueFull.
var errTenantQuota = fmt.Errorf("tenant queue quota is full")

// errUnknownGraph reports a job naming an unregistered graph; handlers map
// it to 404.
var errUnknownGraph = fmt.Errorf("unknown graph")

// submit validates the request, consults the cache, prices the job with
// the cost model, and runs the admission policy: complete immediately
// (cache hit), shed with 503 (deadline or -max-queue-wait already
// unmeetable — the returned job is in state shed, nil error), degrade to
// a computed anytime budget (deadline tight but not hopeless), or
// enqueue on the tenant-fair scheduler. tenant is the X-Nucleus-Tenant
// header (defaulted); deadlineMs is the ?deadlineMs query (0 = none).
func (m *jobManager) submit(req jobRequest, tenant string, deadlineMs int) (*job, error) {
	dec, err := normalizeDec(req.Decomposition)
	if err != nil {
		return nil, err
	}
	alg, err := normalizeAlg(req.Algorithm)
	if err != nil {
		return nil, err
	}
	req.Decomposition, req.Algorithm = dec, alg
	// Clamp client-supplied intra-job parallelism to the host: an
	// arbitrary request must not be able to spawn unbounded goroutines.
	if max := runtime.GOMAXPROCS(0); req.Threads > max {
		req.Threads = max
	}
	if alg == "peel" || req.MaxSweeps < 0 {
		// Peeling is exact and ignores the sweep budget, and the local
		// algorithms treat any non-positive budget as "run to
		// convergence"; normalize so equivalent requests share one cache
		// slot.
		req.MaxSweeps = 0
	}
	entry, ok := m.s.reg.get(req.Graph)
	if !ok {
		return nil, fmt.Errorf("%w %q", errUnknownGraph, req.Graph)
	}
	if tenant == "" {
		tenant = defaultTenant
	}

	threads := req.Threads
	if threads <= 0 {
		threads = m.s.cfg.JobThreads
	}
	j := &job{
		id:         fmt.Sprintf("j%d", m.nextID.Add(1)),
		mgr:        m,
		req:        req,
		entry:      entry,
		key:        cacheKey{entry.name, entry.version, dec, alg, req.MaxSweeps},
		threads:    threads,
		tenant:     tenant,
		deadlineMs: deadlineMs,
		state:      JobQueued,
		submitted:  time.Now(),
	}
	j.costKey = sched.CostKey{Graph: entry.name, Version: entry.version, Dec: dec, Alg: alg}
	j.size = int64(entry.g.N()) + entry.g.M()

	if m.finishIfCached(j) {
		return j, nil
	}
	// Not counted as a miss yet: whether this request was ultimately a hit
	// (the key got cached, or the run coalesced onto an in-flight
	// computation) or a miss (the worker computed it) is only known when
	// the job runs — run() does the accounting, keeping the per-request
	// invariant hits + misses == resolved requests.

	// Price the job: the full-run estimate, capped by the requested sweep
	// budget when that budget is the binding constraint.
	pred := m.cost.Predict(j.costKey, j.size)
	j.predictedMs = pred.Ms
	if req.MaxSweeps > 0 && float64(req.MaxSweeps) < pred.Sweeps {
		j.predictedMs = float64(req.MaxSweeps) * pred.SweepMs
	}

	wait := m.sched.PredictedWaitMs()
	if deadlineMs > 0 {
		if wait >= float64(deadlineMs) {
			// The deadline cannot survive the queue: shed at submit.
			m.shedAtSubmit(j, fmt.Sprintf(
				"shed at admission: predicted queue wait %.0fms exceeds deadline %dms", wait, deadlineMs))
			return j, nil
		}
		if alg != "peel" && wait+j.predictedMs > float64(deadlineMs) {
			// The job can start before its deadline but not finish a full
			// run: degrade to the anytime budget that fits the slack
			// (PR 5 machinery), re-keying the cache slot for the budgeted
			// result.
			budget := int((float64(deadlineMs) - wait) / pred.SweepMs)
			if budget < 1 {
				budget = 1
			}
			if req.MaxSweeps == 0 || budget < req.MaxSweeps {
				j.req.MaxSweeps = budget
				j.key = cacheKey{entry.name, entry.version, dec, alg, budget}
				j.degraded = true
				j.predictedMs = float64(budget) * pred.SweepMs
				m.degraded.Add(1)
				if m.finishIfCached(j) {
					return j, nil
				}
			}
		}
		if !j.degraded {
			// A degraded job is committed best-effort: its budget was sized
			// to the deadline at admission, so it queues without a dispatch
			// deadline — shedding it later would turn the client's accepted
			// approximation into a refusal.
			j.deadline = j.submitted.Add(time.Duration(deadlineMs) * time.Millisecond)
		}
	} else if maxWait := m.s.cfg.MaxQueueWait; maxWait > 0 && wait > float64(maxWait/time.Millisecond) {
		// Deadline-less overload guard: past the configured queue-wait
		// ceiling, reject with Retry-After instead of growing the queue.
		m.shedAtSubmit(j, fmt.Sprintf(
			"shed at admission: predicted queue wait %.0fms exceeds -max-queue-wait %v", wait, maxWait))
		return j, nil
	}

	it := &sched.Item{
		ID:          j.id,
		Tenant:      tenant,
		PredictedMs: j.predictedMs,
		Deadline:    j.deadline,
		Degraded:    j.degraded,
		Payload:     j,
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, fmt.Errorf("server is shutting down")
	}
	if err := m.sched.Enqueue(it); err != nil {
		m.mu.Unlock()
		switch err {
		case sched.ErrTenantQuota:
			return nil, fmt.Errorf("%w (tenant %q)", errTenantQuota, tenant)
		default:
			// Global bound and the distinct-tenant cap both answer as a
			// full queue: retry later.
			return nil, errQueueFull
		}
	}
	m.trackLocked(j)
	m.mu.Unlock()
	m.submitted.Add(1)
	return j, nil
}

// finishIfCached completes j on the spot when its cache key is already
// resolved, reporting whether it did.
func (m *jobManager) finishIfCached(j *job) bool {
	res, ok := m.s.cache.get(j.key)
	if !ok {
		return false
	}
	m.s.cacheHits.Add(1)
	j.resolved = true
	j.cached = true
	j.state = JobDone
	j.result = slimResult(res)
	j.finished = j.submitted
	m.track(j)
	m.submitted.Add(1)
	m.completed.Add(1)
	m.prune()
	return true
}

// shedAtSubmit finalizes a job the admission policy refused: terminal
// state shed, tracked (so GET /jobs/{id} explains what happened and the
// per-tenant counters reconcile with observed 503s), but never admitted
// to the queue — like a 429, it does not resolve cache accounting.
func (m *jobManager) shedAtSubmit(j *job, msg string) {
	j.resolved = true
	j.state = JobShed
	j.errMsg = msg
	j.finished = j.submitted
	m.track(j)
	m.submitted.Add(1)
	m.shed.Add(1)
	m.sched.RecordShed(j.tenant)
	m.prune()
}

// retryAfterSec derives the Retry-After value for shed responses from
// the predicted time to drain the current backlog, floored at 1s.
func (m *jobManager) retryAfterSec() int {
	sec := int(math.Ceil(m.sched.DrainMs() / 1000))
	if sec < 1 {
		sec = 1
	}
	return sec
}

// onShed is the scheduler's dispatch-time shed callback: a queued item
// whose deadline expired before a worker could take it. Invoked without
// the scheduler lock.
func (m *jobManager) onShed(it *sched.Item) {
	j := it.Payload.(*job)
	j.mu.Lock()
	if j.state == JobQueued {
		j.state = JobShed
		j.errMsg = "shed: deadline expired before a worker was available"
		j.finished = time.Now()
		m.shed.Add(1)
	}
	// The job was admitted (counted toward submitted), so its deferred
	// cache accounting must resolve — as a miss, like a cancelled queued
	// job. resolveMissLocked is idempotent against a racing cancel.
	m.resolveMissLocked(j)
	j.mu.Unlock()
	m.prune()
}

// resolveMissLocked resolves the job's deferred per-request cache
// accounting as a miss, exactly once. Caller holds j.mu.
func (m *jobManager) resolveMissLocked(j *job) {
	if !j.resolved {
		j.resolved = true
		m.s.cacheMisses.Add(1)
	}
}

func (m *jobManager) track(j *job) {
	m.mu.Lock()
	m.trackLocked(j)
	m.mu.Unlock()
}

func (m *jobManager) trackLocked(j *job) {
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
}

func (m *jobManager) get(id string) (*job, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	return j, ok
}

func (m *jobManager) list() []*job {
	m.mu.Lock()
	out := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	m.mu.Unlock()
	return out
}

func (m *jobManager) worker() {
	defer m.wg.Done()
	for {
		it, ok := m.sched.Next()
		if !ok {
			return
		}
		m.run(it)
	}
}

// cancel requests cancellation of a job. A queued job is cancelled
// immediately; a running job is cancelled cooperatively — its engine
// stops at the next sweep boundary, and the partial τ is retained for
// the progress endpoints. running reports whether the job was still
// in flight (so the handler answers 202 rather than 200).
func (m *jobManager) cancel(j *job) (running bool, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case JobQueued:
		j.state = JobCancelled
		j.errMsg = "cancelled before start"
		j.finished = time.Now()
		m.cancelled.Add(1)
		// Release the scheduler slot on the spot so the queue capacity is
		// reusable immediately, not after a worker drains the tombstone.
		// Lock order is j.mu → scheduler, here and in viewJob.
		if _, ok := m.sched.Remove(j.id); ok {
			// The item never reaches a worker: resolve the deferred cache
			// accounting here.
			m.resolveMissLocked(j)
		}
		// Remove can lose the race with a concurrent dispatch or shed of
		// the same item; run()/onShed then observes the cancelled state,
		// drains it, and resolves the accounting instead.
		return false, nil
	case JobRunning:
		j.cancel.Store(true)
		return true, nil
	}
	return false, fmt.Errorf("job %s is already %s", j.id, j.state)
}

func (m *jobManager) run(it *sched.Item) {
	j := it.Payload.(*job)
	// Done releases the dispatch slot (and the tenant's in-flight quota)
	// on every exit path.
	defer m.sched.Done(it)
	j.mu.Lock()
	if j.state != JobQueued {
		// Cancelled while queued (the cancel lost its Remove race to this
		// dispatch); the worker just drains it. Resolve the deferred cache
		// accounting so hits + misses still equals the number of admitted
		// requests.
		m.resolveMissLocked(j)
		j.mu.Unlock()
		m.prune()
		return
	}
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()

	res, shared, err := m.s.computeShared(j.key, j.entry, j.threads, j.req.MaxSweeps,
		j.cancel.Load, // the job's cooperative stop signal
		func(f *flight) {
			// Expose the (possibly shared) computation's live progress to
			// the /jobs/{id}/progress and /stream endpoints.
			j.mu.Lock()
			j.prog = f.prog
			j.mu.Unlock()
		})
	// Deferred per-request cache accounting (see submit): shared covers
	// both a post-submit cache fill and coalescing onto another caller.
	j.mu.Lock()
	if !j.resolved {
		j.resolved = true
		if shared {
			m.s.cacheHits.Add(1)
		} else {
			m.s.cacheMisses.Add(1)
		}
	}
	j.mu.Unlock()

	// Feed the cost model — full uncoalesced runs only. Shared results,
	// cancelled/stopped runs and unconverged budgeted runs measure
	// something other than the full cost of this key, and would teach the
	// admission policy the wrong price.
	if err == nil && !shared && !res.Stopped && (j.req.MaxSweeps == 0 || res.Converged) {
		observedMs := float64(time.Since(j.started)) / float64(time.Millisecond)
		m.cost.Observe(j.costKey, j.size, j.predictedMs, observedMs, res.Sweeps, res.Updates)
	}

	j.mu.Lock()
	j.finished = time.Now()
	if err != nil {
		j.state = JobFailed
		j.errMsg = err.Error()
		j.mu.Unlock()
		m.failed.Add(1)
		m.prune()
		return
	}
	if res.Stopped || j.cancel.Load() {
		// res.Stopped: only this job's own cancel flag can stop its run
		// (coalesced flights whose owner stopped are retried by
		// computeShared), so a stopped result means this job was cancelled
		// mid-run. The second clause covers a cancelled job that coalesced
		// onto (or raced the completion of) a run it could not stop: the
		// DELETE answered 202 promising a transition to cancelled, so
		// honor it even though a full result happens to exist. Either way
		// the partial/complete τ is kept: it is a valid upper bound and
		// the progress endpoints keep serving the final snapshot.
		j.state = JobCancelled
		j.errMsg = "cancelled while running"
		j.result = slimResult(res)
		j.mu.Unlock()
		m.cancelled.Add(1)
		m.prune()
		return
	}
	j.state = JobDone
	j.result = slimResult(res)
	// The key became cached (or another caller computed it) between
	// submission and execution; surface that the worker did no work.
	j.cached = shared
	j.mu.Unlock()
	m.completed.Add(1)
	m.prune()
}

// slimResult strips the Inst reference for storage on a job: the history
// cap should bound κ-array memory, not pin s-clique indices (which live
// in the LRU cache and the per-graph memo instead).
func slimResult(res *decompResult) *decompResult {
	slim := *res
	slim.Inst = nil
	return &slim
}

// prune evicts the oldest finished jobs once the store exceeds the
// configured history cap, bounding memory in a long-running server (each
// done job pins its O(cells) κ array). Queued/running jobs are never
// evicted.
func (m *jobManager) prune() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.jobs) > m.s.cfg.JobHistory {
		evict := -1
		for i, id := range m.order {
			j := m.jobs[id]
			j.mu.Lock()
			st := j.state
			j.mu.Unlock()
			if st == JobDone || st == JobFailed || st == JobCancelled || st == JobShed {
				evict = i
				break
			}
		}
		if evict < 0 {
			return
		}
		delete(m.jobs, m.order[evict])
		m.order = append(m.order[:evict:evict], m.order[evict+1:]...)
	}
}

// close stops accepting submissions, fails still-queued jobs, and waits
// for running jobs to finish.
func (m *jobManager) close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	for _, it := range m.sched.Close() {
		j := it.Payload.(*job)
		j.mu.Lock()
		if j.state == JobQueued {
			j.state = JobFailed
			j.errMsg = "server shut down before the job started"
			j.finished = time.Now()
			m.failed.Add(1)
		}
		// Resolve the deferred accounting even on shutdown, so the
		// hits+misses invariant holds across Close.
		m.resolveMissLocked(j)
		j.mu.Unlock()
	}
	m.wg.Wait()
}

// counts returns the live queued/running totals by scanning retained
// jobs. Done/failed totals come from the cumulative atomics instead, so
// they survive history pruning.
func (m *jobManager) counts() (queued, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		st := j.state
		j.mu.Unlock()
		switch st {
		case JobQueued:
			queued++
		case JobRunning:
			running++
		}
	}
	return
}

// ---------------------------------------------------------------------------
// Decomposition engine glue.

func normalizeDec(s string) (string, error) {
	switch s {
	case "", "core", "kcore", "12":
		return "core", nil
	case "truss", "ktruss", "23":
		return "truss", nil
	case "n34", "34", "nucleus34":
		return "n34", nil
	}
	return "", fmt.Errorf("unknown decomposition %q (want core, truss or n34)", s)
}

func normalizeAlg(s string) (string, error) {
	switch s {
	case "", "and":
		return "and", nil
	case "snd":
		return "snd", nil
	case "peel":
		return "peel", nil
	}
	return "", fmt.Errorf("unknown algorithm %q (want and, snd or peel)", s)
}

// runDecomposition executes one decomposition with the selected engine,
// reusing the entry's memoized (possibly flat-indexed) instance. dec and
// alg must already be normalized. prog (anytime progress publishing) and
// stop (cooperative cancellation / deadlines) apply to the local
// algorithms only; peeling is all-or-nothing and ignores both.
func (s *Server) runDecomposition(entry *graphEntry, dec, alg string, threads, maxSweeps int, prog *localhi.Progress, stop func() bool) (res *decompResult, err error) {
	// A decomposition touches every cell of a user-supplied graph;
	// convert engine panics (e.g. from a hostile input that slipped past
	// parsing) into failed jobs instead of crashing the server.
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("decomposition panicked: %v", r)
		}
	}()
	inst := s.instanceOf(entry, dec)
	switch alg {
	case "peel":
		pr := peel.RunThreads(inst, threads)
		return &decompResult{Kappa: pr.Kappa, MaxKappa: pr.MaxKappa, Converged: true, Inst: inst}, nil
	case "snd":
		lr := localhi.Snd(inst, localhi.Options{Threads: threads, MaxSweeps: maxSweeps, Progress: prog, Stop: stop})
		return localResult(lr, inst), nil
	case "and":
		lr := localhi.And(inst, localhi.Options{Threads: threads, MaxSweeps: maxSweeps, Notification: true, Progress: prog, Stop: stop})
		return localResult(lr, inst), nil
	}
	return nil, fmt.Errorf("unknown algorithm %q", alg)
}

func localResult(lr *localhi.Result, inst inucleus.Instance) *decompResult {
	res := &decompResult{
		Kappa:      lr.Tau,
		Converged:  lr.Converged,
		Stopped:    lr.Stopped,
		Iterations: lr.Iterations,
		Sweeps:     lr.Sweeps,
		Updates:    lr.Updates,
		Inst:       inst,
	}
	if n := len(lr.SweepUpdates); n > 0 {
		res.LastSweepUpdates = lr.SweepUpdates[n-1]
	}
	for _, k := range lr.Tau {
		if k > res.MaxKappa {
			res.MaxKappa = k
		}
	}
	return res
}

// kappaFor returns the κ array for (entry, dec, alg, maxSweeps), serving
// from the LRU cache when possible and computing synchronously (and
// caching) otherwise. The synchronous hierarchy/nuclei endpoints share
// cache slots — and in-flight computations — with the async job path
// through this helper.
func (s *Server) kappaFor(entry *graphEntry, dec, alg string, maxSweeps int) (*decompResult, error) {
	if alg == "peel" || maxSweeps < 0 {
		maxSweeps = 0
	}
	key := cacheKey{entry.name, entry.version, dec, alg, maxSweeps}
	// Fast path without a semaphore slot: a cached result costs nothing.
	if res, ok := s.cache.get(key); ok {
		s.cacheHits.Add(1)
		return res, nil
	}
	s.acquireSync()
	defer s.releaseSync()
	res, shared, err := s.computeShared(key, entry, s.cfg.JobThreads, maxSweeps, nil, nil)
	// Count before the error check so a failed computation still resolves
	// this request's accounting (as a miss).
	if shared {
		s.cacheHits.Add(1)
	} else {
		s.cacheMisses.Add(1)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// computeShared runs the decomposition for key at most once across
// concurrent callers (single-flight): the first caller computes and
// populates the cache; concurrent callers with the same key block until
// it finishes and share the result. shared is true when this caller did
// not do the work itself (cache hit or coalesced onto another caller).
//
// stop is this caller's cooperative stop signal; it is honored only when
// this caller ends up owning the computation (a coalesced caller must
// not kill a run other clients are waiting on). A run the owner's stop
// ended is returned to the owner alone — it is never cached (the partial
// τ depends on timing), and coalesced waiters transparently retry the
// computation. onFlight, when non-nil, is invoked with the flight this
// caller attached to (its own or an existing one) before any blocking
// work, so callers can expose the flight's live progress publisher.
func (s *Server) computeShared(key cacheKey, entry *graphEntry, threads, maxSweeps int, stop func() bool, onFlight func(*flight)) (res *decompResult, shared bool, err error) {
	for {
		if res, ok := s.cache.get(key); ok {
			return res, true, nil
		}
		s.flightMu.Lock()
		if f, ok := s.inflight[key]; ok {
			s.flightMu.Unlock()
			if onFlight != nil {
				onFlight(f)
			}
			<-f.done
			if f.err == nil && f.res != nil && f.res.Stopped {
				// The owner's run was cancelled or hit its deadline; its
				// partial result belongs to the owner, not to this caller.
				// Retry: the flight table slot is free again.
				continue
			}
			return f.res, true, f.err
		}
		f := &flight{done: make(chan struct{})}
		if key.alg != "peel" && s.cfg.ProgressEvery > 0 {
			f.prog = localhi.NewProgress(s.cfg.ProgressEvery)
		}
		s.inflight[key] = f
		s.flightMu.Unlock()
		if onFlight != nil {
			onFlight(f)
		}

		s.coldRuns.Add(1)
		f.res, f.err = s.runDecomposition(entry, key.dec, key.alg, threads, maxSweeps, f.prog, stop)
		if f.prog != nil {
			s.progressSnaps.Add(f.prog.Published())
			// The engine finishes the publisher on every normal exit; a
			// panic converted to err by runDecomposition would leave
			// subscribers hanging, so release them defensively (no-op
			// when already finished).
			f.prog.Abort()
		}
		if f.err == nil && !f.res.Stopped {
			s.cacheIfLive(key, f.res)
		}
		s.flightMu.Lock()
		delete(s.inflight, key)
		s.flightMu.Unlock()
		close(f.done)
		return f.res, false, f.err
	}
}

// cacheIfLive inserts res under key with a liveness recheck: if the
// graph was deleted or replaced while the result was computed, its purge
// may have run before our put — take the dead entry back out. Every
// interleaving removes it: either the purge saw our insert, or this
// recheck sees the changed version.
func (s *Server) cacheIfLive(key cacheKey, res *decompResult) {
	s.cache.put(key, res)
	if cur, ok := s.reg.get(key.graph); !ok || cur.version != key.version {
		s.cache.remove(key)
	}
}

// flight is one in-progress decomposition that concurrent callers wait
// on; res/err are set before done is closed. prog is the run's anytime
// progress publisher (nil for peel runs or when publishing is disabled),
// shared by every job that coalesces onto the flight.
type flight struct {
	done chan struct{}
	res  *decompResult
	err  error
	prog *localhi.Progress
}
