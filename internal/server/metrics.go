package server

import (
	"net/http"
	"time"

	"nucleus/internal/promtext"
	"nucleus/internal/replica"
)

// handleMetrics serves GET /metrics: the /stats counters in Prometheus
// text exposition format (rendered by internal/promtext — no client
// library), plus the replication series a fleet dashboard needs — lag
// in versions and milliseconds, shipped bytes, promotions and fenced
// writes. Series names are stable API; docs/OPERATIONS.md lists the
// ones alerts should watch.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var p promtext.Writer

	p.Gauge("nucleusd_uptime_seconds", "Seconds since the server started.",
		time.Since(s.start).Seconds())
	p.Counter("nucleusd_requests_total", "HTTP requests received.",
		float64(s.requests.Load()))
	p.Gauge("nucleusd_graphs", "Graphs currently registered.",
		float64(s.reg.count()))
	p.Gauge("nucleusd_workers", "Decomposition worker pool size.",
		float64(s.cfg.Workers))

	queued, running := s.jobs.counts()
	p.Counter("nucleusd_jobs_submitted_total", "Jobs submitted.", float64(s.jobs.submitted.Load()))
	p.Counter("nucleusd_jobs_done_total", "Jobs completed.", float64(s.jobs.completed.Load()))
	p.Counter("nucleusd_jobs_failed_total", "Jobs failed.", float64(s.jobs.failed.Load()))
	p.Counter("nucleusd_jobs_cancelled_total", "Jobs cancelled.", float64(s.jobs.cancelled.Load()))
	p.Counter("nucleusd_jobs_shed_total", "Jobs shed by the admission policy or deadline expiry.", float64(s.jobs.shed.Load()))
	p.Counter("nucleusd_jobs_degraded_total", "Jobs re-budgeted to meet their deadline.", float64(s.jobs.degraded.Load()))
	p.Gauge("nucleusd_jobs_queued", "Jobs currently queued.", float64(queued))
	p.Gauge("nucleusd_jobs_running", "Jobs currently running.", float64(running))

	p.Gauge("nucleusd_sched_predicted_wait_ms", "Cost model's queue-wait estimate for a job submitted now.",
		s.jobs.sched.PredictedWaitMs())
	for name, ts := range s.jobs.sched.Stats().PerTenant {
		l := map[string]string{"tenant": name}
		p.LabeledCounter("nucleusd_tenant_admitted_total", "Jobs admitted, per tenant.", l, float64(ts.Admitted))
		p.LabeledCounter("nucleusd_tenant_shed_total", "Jobs shed, per tenant.", l, float64(ts.Shed))
		p.LabeledCounter("nucleusd_tenant_degraded_total", "Jobs degraded, per tenant.", l, float64(ts.Degraded))
		p.LabeledGauge("nucleusd_tenant_queued", "Jobs queued, per tenant.", l, float64(ts.Queued))
		p.LabeledGauge("nucleusd_tenant_in_flight", "Jobs running, per tenant.", l, float64(ts.InFlight))
		p.LabeledGauge("nucleusd_tenant_weight", "Deficit-round-robin weight, per tenant.", l, float64(ts.Weight))
	}

	hits, misses := s.cacheHits.Load(), s.cacheMisses.Load()
	p.Counter("nucleusd_cache_hits_total", "Decomposition cache hits (including coalesced requests).", float64(hits))
	p.Counter("nucleusd_cache_misses_total", "Decomposition cache misses.", float64(misses))
	p.Gauge("nucleusd_cache_entries", "Decomposition cache entries.", float64(s.cache.len()))

	p.Counter("nucleusd_mutation_batches_total", "Edge-mutation batches published.", float64(s.mutBatches.Load()))
	p.Counter("nucleusd_mutation_edits_applied_total", "Edge edits applied.", float64(s.mutApplied.Load()))
	p.Counter("nucleusd_mutation_edits_ignored_total", "No-op edge edits.", float64(s.mutIgnored.Load()))
	p.Counter("nucleusd_warm_runs_total", "Warm-started reconvergence runs.", float64(s.warmRuns.Load()))
	p.Counter("nucleusd_cold_runs_total", "Cold full decompositions executed.", float64(s.coldRuns.Load()))
	p.Counter("nucleusd_warm_sweeps_total", "Sweeps spent by warm runs.", float64(s.warmSweeps.Load()))
	p.Counter("nucleusd_sweeps_saved_total", "Sweeps saved by warm starts vs their cold seeds.", float64(s.sweepsSaved.Load()))

	p.Counter("nucleusd_index_builds_total", "Flat s-clique indexes built.", float64(s.idxBuilds.Load()))
	p.Counter("nucleusd_index_reuses_total", "Instance memo reuses.", float64(s.idxReuses.Load()))
	p.Counter("nucleusd_index_fallbacks_total", "Instances built without a flat index.", float64(s.idxFallbacks.Load()))
	p.Counter("nucleusd_index_bytes_total", "Bytes of flat indexes built.", float64(s.idxBytes.Load()))

	p.Counter("nucleusd_progress_snapshots_total", "Anytime τ snapshots published.", float64(s.progressSnaps.Load()))
	p.Counter("nucleusd_sse_streams_total", "SSE progress streams served.", float64(s.sseStreams.Load()))
	p.Counter("nucleusd_budgeted_queries_total", "Budgeted synchronous decompositions admitted.", float64(s.budgetedQueries.Load()))
	p.Counter("nucleusd_deadline_stops_total", "Budgeted runs ended by their wall-clock deadline.", float64(s.deadlineStops.Load()))

	persistEnabled := 0.0
	if s.store.Durable() {
		persistEnabled = 1
	}
	p.Gauge("nucleusd_persist_enabled", "1 when a durable store backs the registry.", persistEnabled)
	p.Counter("nucleusd_persist_snapshots_total", "Graph snapshots written.", float64(s.snapSaves.Load()))
	p.Counter("nucleusd_persist_wal_appends_total", "WAL frames appended.", float64(s.walAppends.Load()))
	p.Counter("nucleusd_persist_wal_bytes_total", "WAL bytes appended.", float64(s.walBytes.Load()))
	p.Counter("nucleusd_persist_replays_total", "Graphs recovered at startup.", float64(s.replays.Load()))
	p.Counter("nucleusd_persist_replayed_batches_total", "Committed WAL batches re-applied at startup.", float64(s.replayedBatches.Load()))
	p.Counter("nucleusd_persist_compactions_total", "WALs folded into fresh snapshots.", float64(s.compactions.Load()))
	p.Counter("nucleusd_persist_errors_total", "Non-fatal persistence failures.", float64(s.persistErrors.Load()))

	// Replication series (docs/REPLICATION.md). The role is exported
	// info-style: one labeled gauge set to 1 for the active role, so a
	// promotion is visible as a label flip.
	ns := s.nodeStatus()
	for _, role := range []string{replica.RoleStandalone, replica.RolePrimary, replica.RoleReplica} {
		v := 0.0
		if ns.Role == role {
			v = 1
		}
		p.LabeledGauge("nucleusd_replication_role", "1 for the node's active replication role.",
			map[string]string{"role": role}, v)
	}
	p.Gauge("nucleusd_replication_generation", "Cluster generation this node operates under.", float64(ns.Generation))
	p.Gauge("nucleusd_replication_max_version", "Highest published graph version on this node.", float64(ns.MaxVersion))
	p.Gauge("nucleusd_replication_lag_versions", "Committed versions the replica has not yet applied.", float64(ns.LagVersions))
	p.Gauge("nucleusd_replication_lag_ms", "How long the replica has continuously been behind.", ns.LagMs)
	p.Counter("nucleusd_replication_pulls_total", "Pull cycles completed.", float64(ns.Pulls))
	p.Counter("nucleusd_replication_pull_errors_total", "Pull cycles that ended in an error.", float64(ns.PullErrors))
	p.Counter("nucleusd_replication_stale_pulls_total", "Pulls rejected because the source's generation was stale.", float64(ns.StalePulls))
	p.Counter("nucleusd_replication_bytes_pulled_total", "WAL and snapshot bytes shipped to this replica.", float64(ns.BytesPulled))
	p.Counter("nucleusd_replication_snapshots_installed_total", "Full snapshot resyncs applied.", float64(ns.SnapshotsInstalled))
	p.Counter("nucleusd_replication_batches_applied_total", "Replicated batches applied.", float64(ns.BatchesApplied))
	p.Counter("nucleusd_replication_duplicates_skipped_total", "Replicated batches skipped as duplicates.", float64(ns.DuplicatesSkipped))
	p.Counter("nucleusd_replication_fenced_writes_total", "Writes rejected by the generation fence.", float64(s.fencedWrites.Load()))
	p.Counter("nucleusd_replication_promotions_total", "Replica-to-primary promotions performed.", float64(s.promotions.Load()))

	w.Header().Set("Content-Type", promtext.ContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(p.Bytes())
}
