package server

// End-to-end tests for the workload-aware scheduler behind POST /jobs:
// observed-cost admission, deadline shedding with 503 + Retry-After,
// overload degradation to an anytime budget, tenant accounting, and the
// immediate queue-slot release on DELETE of a queued job. The fixtures
// lean on the package's path-graph idiom: SND on an n-vertex path needs
// ~n/2 sweeps, each cheap, so a long path makes a job that runs for
// minutes yet cancels in milliseconds.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"testing"
	"time"

	"nucleus/internal/sched"
)

// submitTenantJob posts a job as a tenant with an optional ?deadlineMs,
// returning the decoded view and the raw response.
func submitTenantJob(t *testing.T, base, tenant string, deadlineMs int, req jobRequest) (jobView, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	url := base + "/jobs"
	if deadlineMs > 0 {
		url += "?deadlineMs=" + strconv.Itoa(deadlineMs)
	}
	httpReq, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		httpReq.Header.Set("X-Nucleus-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding submit response (status %d): %v", resp.StatusCode, err)
	}
	return v, resp
}

// waitRunning polls until the job reports running.
func waitRunning(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		var v jobView
		doJSON(t, "GET", base+"/jobs/"+id, nil, &v)
		if v.State == JobRunning {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never started running", id)
}

func deleteJob(t *testing.T, base, id string, wantStatus int) {
	t.Helper()
	req, _ := http.NewRequest("DELETE", base+"/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("DELETE /jobs/%s: status %d, want %d", id, resp.StatusCode, wantStatus)
	}
}

// TestSchedulerOverloadE2E is the overload scenario from the scheduler
// design: one worker, a trained cost model, then a deadline burst across
// three tenants. Unmeetable deadlines are shed at admission with 503 +
// Retry-After, a tight-but-feasible deadline is degraded to a computed
// anytime budget whose answer comes back approximate, and /stats
// reconciles every outcome exactly.
func TestSchedulerOverloadE2E(t *testing.T) {
	ts, s := testServerWith(t, Config{Workers: 1})

	// Train the cost model with a real completed run: a mid-sized path
	// teaches the global ms-per-cell rate that prices the cold keys below.
	uploadPath(t, ts.URL, "train", 4001)
	trained, resp := submitTenantJob(t, ts.URL, "", 0, jobRequest{Graph: "train", Decomposition: "core", Algorithm: "snd"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("training submit: status %d", resp.StatusCode)
	}
	if v := waitForJob(t, ts.URL, trained.ID); v.State != JobDone || !v.Converged {
		t.Fatalf("training job ended %+v", v)
	}
	if st := getStats(t, ts.URL); st.Scheduler.CostModel.Observations != 1 || st.Scheduler.CostModel.Entries != 1 {
		t.Fatalf("cost model not trained: %+v", st.Scheduler.CostModel)
	}

	// Occupy the single worker with a job that would run for minutes: the
	// backlog behind it is now governed purely by admission policy.
	uploadPath(t, ts.URL, "slow", 40001)
	blocker, resp := submitTenantJob(t, ts.URL, "t1", 0, jobRequest{Graph: "slow", Decomposition: "core", Algorithm: "snd"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker submit: status %d", resp.StatusCode)
	}
	if blocker.Tenant != "t1" || blocker.PredictedCostMs <= 0 {
		t.Fatalf("blocker view missing scheduling facts: %+v", blocker)
	}
	waitRunning(t, ts.URL, blocker.ID)

	// Sanity-check the fixture: the trained prediction for the in-flight
	// blocker must dominate the burst deadlines below, or the shed
	// assertions would be racing the worker.
	wait := s.jobs.sched.PredictedWaitMs()
	if wait < 5 {
		t.Fatalf("fixture too fast: predicted wait %.3fms, want >= 5ms (grow the slow path)", wait)
	}

	// Deadline burst: three tenants, two 1ms-deadline jobs each. All six
	// are unmeetable behind the blocker and must shed at admission.
	shedIDs := []string{}
	for _, tenant := range []string{"t1", "t2", "t3"} {
		for i := 0; i < 2; i++ {
			v, resp := submitTenantJob(t, ts.URL, tenant, 1, jobRequest{
				Graph: "slow", Decomposition: "core", Algorithm: "snd", MaxSweeps: 10 + i,
			})
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("burst submit (%s #%d): status %d, want 503", tenant, i, resp.StatusCode)
			}
			ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
			if err != nil || ra < 1 {
				t.Fatalf("shed response Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
			}
			if v.State != JobShed || v.Tenant != tenant {
				t.Fatalf("shed view: %+v", v)
			}
			shedIDs = append(shedIDs, v.ID)
		}
	}
	// Shed jobs stay inspectable, and their result endpoint repeats the
	// 503 + Retry-After contract.
	for _, id := range shedIDs {
		var v jobView
		doJSON(t, "GET", ts.URL+"/jobs/"+id, nil, &v)
		if v.State != JobShed || v.Error == "" {
			t.Fatalf("shed job %s: %+v", id, v)
		}
		req, _ := http.NewRequest("GET", ts.URL+"/jobs/"+id+"/result", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
			t.Fatalf("shed result: status %d Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
		}
	}

	// Overload degradation: a deadline the job can start but not finish a
	// full run within. The deadline is placed a quarter of the predicted
	// full cost past the current wait, so admission must re-budget the job
	// rather than shed it or accept it whole.
	degKey := s.jobs.cost.Predict(costKeyFor(s, "slow", "core", "and"), pathSize(40001))
	wait = s.jobs.sched.PredictedWaitMs()
	deadlineMs := int(wait+degKey.Ms/4) + 1
	deg, resp := submitTenantJob(t, ts.URL, "t2", deadlineMs, jobRequest{Graph: "slow", Decomposition: "core", Algorithm: "and"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("degraded submit: status %d (deadline %dms, wait %.1fms, pred %.1fms)",
			resp.StatusCode, deadlineMs, wait, degKey.Ms)
	}
	if !deg.Degraded || deg.MaxSweeps < 1 || deg.State != JobQueued {
		t.Fatalf("degraded view: %+v", deg)
	}
	if deg.QueuePosition != 1 {
		t.Fatalf("degraded job queue position = %d, want 1 (only queued job of t2)", deg.QueuePosition)
	}

	// Free the worker; the degraded job must run its budget and answer
	// approximately (converged=false), never be shed.
	deleteJob(t, ts.URL, blocker.ID, http.StatusAccepted)
	if v := waitForJob(t, ts.URL, blocker.ID); v.State != JobCancelled {
		t.Fatalf("blocker ended %s", v.State)
	}
	final := waitForJob(t, ts.URL, deg.ID)
	if final.State != JobDone || !final.Degraded || final.Converged {
		t.Fatalf("degraded job ended %+v, want done, degraded, unconverged", final)
	}
	if final.Sweeps == 0 || final.Sweeps > deg.MaxSweeps {
		t.Fatalf("degraded job ran %d sweeps, budget %d", final.Sweeps, deg.MaxSweeps)
	}

	// /stats reconciles every outcome exactly.
	st := getStats(t, ts.URL)
	if st.Jobs.Submitted != 9 || st.Jobs.Done != 2 || st.Jobs.Cancelled != 1 ||
		st.Jobs.Shed != 6 || st.Jobs.Degraded != 1 || st.Jobs.Queued != 0 || st.Jobs.Running != 0 {
		t.Fatalf("jobs stats do not reconcile: %+v", st.Jobs)
	}
	// Per-request cache accounting: train, blocker and the degraded job
	// resolved (shed jobs were never admitted and resolve nothing).
	if st.Cache.Lookups != 3 || st.Cache.Hits+st.Cache.Misses != st.Cache.Lookups {
		t.Fatalf("cache accounting: %+v", st.Cache)
	}
	perTenant := st.Scheduler.PerTenant
	for tenant, want := range map[string]tenantStatsView{
		"default": {Admitted: 1, Weight: 1},
		"t1":      {Admitted: 1, Shed: 2, Weight: 1},
		"t2":      {Admitted: 1, Shed: 2, Degraded: 1, Weight: 1},
		"t3":      {Shed: 2, Weight: 1},
	} {
		got, ok := perTenant[tenant]
		if !ok {
			t.Fatalf("tenant %s missing from scheduler stats: %+v", tenant, perTenant)
		}
		if got != want {
			t.Fatalf("tenant %s stats = %+v, want %+v", tenant, got, want)
		}
	}
	var shedSum int64
	for _, ts := range perTenant {
		shedSum += ts.Shed
	}
	if shedSum != st.Jobs.Shed {
		t.Fatalf("per-tenant shed sum %d != jobs.shed %d", shedSum, st.Jobs.Shed)
	}
	if st.Scheduler.CostModel.Misses == 0 || st.Scheduler.CostModel.MeanAbsErrPct < 0 {
		t.Fatalf("cost model stats: %+v", st.Scheduler.CostModel)
	}
}

// TestCancelQueuedReleasesSlot pins the DELETE-on-queued fix: cancelling
// a queued job releases its scheduler slot immediately — jobs.queued
// drops on the spot and a previously-rejected submission is admitted
// without waiting for a worker to drain the tombstone.
func TestCancelQueuedReleasesSlot(t *testing.T) {
	ts := testServer(t, Config{Workers: 1, QueueDepth: 2})
	uploadPath(t, ts.URL, "slow", 40001)
	uploadPath(t, ts.URL, "tiny", 51)

	blocker, _ := submitTenantJob(t, ts.URL, "", 0, jobRequest{Graph: "slow", Decomposition: "core", Algorithm: "snd"})
	waitRunning(t, ts.URL, blocker.ID)

	// Fill the queue (distinct sweep budgets keep the cache keys, and so
	// the computations, distinct).
	q1, resp := submitTenantJob(t, ts.URL, "", 0, jobRequest{Graph: "tiny", Decomposition: "core", Algorithm: "snd", MaxSweeps: 101})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("q1: status %d", resp.StatusCode)
	}
	q2, resp := submitTenantJob(t, ts.URL, "", 0, jobRequest{Graph: "tiny", Decomposition: "core", Algorithm: "snd", MaxSweeps: 102})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("q2: status %d", resp.StatusCode)
	}
	if st := getStats(t, ts.URL); st.Jobs.Queued != 2 {
		t.Fatalf("queued = %d, want 2", st.Jobs.Queued)
	}
	// The queue is full: one more is rejected.
	if _, resp := submitTenantJob(t, ts.URL, "", 0, jobRequest{Graph: "tiny", Decomposition: "core", Algorithm: "snd", MaxSweeps: 103}); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: status %d, want 429", resp.StatusCode)
	}

	// Cancel one queued job: the accounting must release immediately, with
	// the worker still pinned by the blocker.
	deleteJob(t, ts.URL, q1.ID, http.StatusOK)
	st := getStats(t, ts.URL)
	if st.Jobs.Queued != 1 {
		t.Fatalf("queued after cancel = %d, want 1 immediately", st.Jobs.Queued)
	}
	var schedQueued int
	for _, tv := range st.Scheduler.PerTenant {
		schedQueued += tv.Queued
	}
	if schedQueued != 1 {
		t.Fatalf("scheduler queued after cancel = %d, want 1 immediately", schedQueued)
	}
	// The freed slot admits a new job on the spot.
	q4, resp := submitTenantJob(t, ts.URL, "", 0, jobRequest{Graph: "tiny", Decomposition: "core", Algorithm: "snd", MaxSweeps: 104})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit into freed slot: status %d, want 202", resp.StatusCode)
	}

	// Drain: unblock the worker and let the queue finish.
	deleteJob(t, ts.URL, blocker.ID, http.StatusAccepted)
	waitForJob(t, ts.URL, blocker.ID)
	if v := waitForJob(t, ts.URL, q2.ID); v.State != JobDone {
		t.Fatalf("q2 ended %s", v.State)
	}
	if v := waitForJob(t, ts.URL, q4.ID); v.State != JobDone {
		t.Fatalf("q4 ended %s", v.State)
	}

	st = getStats(t, ts.URL)
	if st.Jobs.Cancelled != 2 || st.Jobs.Done != 2 || st.Jobs.Queued != 0 {
		t.Fatalf("final stats: %+v", st.Jobs)
	}
	// Every admitted request resolved exactly one hit or miss, cancelled
	// ones included: blocker, q1, q2 and q4 (the rejected submission was
	// never admitted and resolves nothing).
	if st.Cache.Hits+st.Cache.Misses != st.Cache.Lookups || st.Cache.Lookups != 4 {
		t.Fatalf("cache accounting: %+v", st.Cache)
	}
}

// costKeyFor builds the cost-model key the server would use for a job on
// the graph's current version.
func costKeyFor(s *Server, graph, dec, alg string) sched.CostKey {
	e, ok := s.reg.get(graph)
	if !ok {
		panic(fmt.Sprintf("unknown graph %q", graph))
	}
	return sched.CostKey{Graph: e.name, Version: e.version, Dec: dec, Alg: alg}
}

// pathSize is n+m for the uploadPath fixture (an n-vertex path has n-1
// edges).
func pathSize(n int) int64 { return int64(n + n - 1) }
