package server

import (
	"net/http"
	"runtime"
	"testing"
)

// TestPeelJobHonorsThreads is the regression test for peel jobs dropping
// the request's threads parameter: the effective worker count must be
// resolved at submit time, drive the parallel peel engine, and be surfaced
// in the job status — for explicit requests, the server default, and
// host-clamped values alike.
func TestPeelJobHonorsThreads(t *testing.T) {
	ts := testServer(t, Config{JobThreads: 2})
	postJSON(t, ts.URL+"/graphs/g/generate", map[string]any{"generator": "complete", "n": 8}, nil)

	maxProcs := runtime.GOMAXPROCS(0)
	cases := []struct {
		name      string
		requested int
		want      int
	}{
		{"explicit", 2, minInt(2, maxProcs)},
		{"default", 0, 2}, // server JobThreads; not host-clamped (admin-set)
		{"hostClamped", maxProcs + 7, maxProcs},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var jv jobView
			resp := postJSON(t, ts.URL+"/jobs", map[string]any{
				"graph": "g", "decomposition": "truss", "algorithm": "peel", "threads": tc.requested,
			}, &jv)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit: status %d", resp.StatusCode)
			}
			if jv.Threads != tc.want {
				t.Fatalf("submitted job threads = %d, want %d", jv.Threads, tc.want)
			}
			done := waitForJob(t, ts.URL, jv.ID)
			if done.State != JobDone || !done.Converged {
				t.Fatalf("job ended %s (converged=%v)", done.State, done.Converged)
			}
			if done.Threads != tc.want {
				t.Fatalf("finished job threads = %d, want %d", done.Threads, tc.want)
			}
			// K8 truss: every edge is in 6 triangles, κ = 6 throughout.
			if done.MaxKappa != 6 || done.Cells != 28 {
				t.Fatalf("K8 truss peel: maxKappa %d cells %d, want 6 and 28", done.MaxKappa, done.Cells)
			}
		})
	}
}

// TestLocalJobSurfacesThreads covers the non-peel path: the same effective
// value must appear for the local algorithms, including on cache-hit jobs
// (the value the run would use on a miss).
func TestLocalJobSurfacesThreads(t *testing.T) {
	ts := testServer(t, Config{JobThreads: 1})
	postJSON(t, ts.URL+"/graphs/g/generate", map[string]any{"generator": "complete", "n": 6}, nil)

	want := minInt(2, runtime.GOMAXPROCS(0))
	var jv jobView
	postJSON(t, ts.URL+"/jobs", map[string]any{
		"graph": "g", "decomposition": "core", "algorithm": "and", "threads": 2,
	}, &jv)
	if jv.Threads != want {
		t.Fatalf("threads = %d, want %d", jv.Threads, want)
	}
	waitForJob(t, ts.URL, jv.ID)

	// Same key again: a cache-hit job still reports its resolved threads.
	var hit jobView
	postJSON(t, ts.URL+"/jobs", map[string]any{
		"graph": "g", "decomposition": "core", "algorithm": "and", "threads": 2,
	}, &hit)
	if hit.State != JobDone || !hit.Cached {
		t.Fatalf("expected cache-hit job, got state=%s cached=%v", hit.State, hit.Cached)
	}
	if hit.Threads != want {
		t.Fatalf("cache-hit threads = %d, want %d", hit.Threads, want)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
