package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"

	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
	"nucleus/internal/peel"
)

// edgeListBody serializes g as an edge-list upload body, so tests can
// mirror an uploaded graph exactly.
func edgeListBody(g *graph.Graph) string {
	var sb strings.Builder
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "%d %d\n", e[0], e[1])
	}
	return sb.String()
}

func TestMutateGraphBasicAndValidation(t *testing.T) {
	ts := testServer(t, Config{})
	// The 4-cycle 0-1-2-3.
	doJSON(t, "POST", ts.URL+"/graphs/g", strings.NewReader("0 1\n1 2\n2 3\n0 3\n"), nil)
	var gv graphView
	doJSON(t, "GET", ts.URL+"/graphs/g", nil, &gv)

	var mr mutateResponse
	resp := postJSON(t, ts.URL+"/graphs/g/edges", map[string]any{"edits": []map[string]any{
		{"op": "add", "u": 0, "v": 2},    // diagonal
		{"op": "add", "u": 1, "v": 3},    // diagonal → K4
		{"op": "add", "u": 1, "v": 3},    // duplicate → ignored
		{"op": "remove", "u": 0, "v": 9}, // out of range → ignored
		{"op": "add", "u": 4, "v": 0},    // grows to 5 vertices
	}}, &mr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: status %d", resp.StatusCode)
	}
	if mr.Added != 3 || mr.Removed != 0 || mr.Ignored != 2 {
		t.Fatalf("counts: %+v", mr)
	}
	if mr.N != 5 || mr.M != 7 {
		t.Fatalf("shape: n=%d m=%d, want n=5 m=7", mr.N, mr.M)
	}
	if mr.WarmSeeded == nil {
		t.Fatal("warmSeeded must be [] (not null) when nothing was cached to seed from")
	}
	if mr.Version <= gv.Version {
		t.Fatalf("version not bumped: %d -> %d", gv.Version, mr.Version)
	}
	if mr.MaxCore != 3 {
		t.Fatalf("maxCore = %d, want 3 (K4)", mr.MaxCore)
	}

	// The registry view reflects the republished snapshot.
	doJSON(t, "GET", ts.URL+"/graphs/g", nil, &gv)
	if gv.Version != mr.Version || gv.Mutations != 1 || gv.N != 5 || gv.M != 7 {
		t.Fatalf("graph view after mutation: %+v", gv)
	}

	// Maintained point lookups: K4 members at κ=3, the pendant at κ=1.
	var cl coreLookupResponse
	if resp := doJSON(t, "GET", ts.URL+"/graphs/g/core?v=0&v=4", nil, &cl); resp.StatusCode != http.StatusOK {
		t.Fatalf("core lookup: status %d", resp.StatusCode)
	}
	if !cl.Maintained || cl.Version != mr.Version {
		t.Fatalf("core lookup meta: %+v", cl)
	}
	if len(cl.CoreNumbers) != 2 || cl.CoreNumbers[0] != 3 || cl.CoreNumbers[1] != 1 {
		t.Fatalf("core numbers: %+v", cl)
	}

	// A second batch: removals cascade the maintained κ back down.
	postJSON(t, ts.URL+"/graphs/g/edges", map[string]any{"edits": []map[string]any{
		{"op": "remove", "u": 0, "v": 2},
		{"op": "remove", "u": 1, "v": 3},
	}}, &mr)
	if mr.Removed != 2 || mr.MaxCore != 2 {
		t.Fatalf("after removals: %+v", mr)
	}
	doJSON(t, "GET", ts.URL+"/graphs/g", nil, &gv)
	if gv.Mutations != 2 {
		t.Fatalf("mutations count: %d", gv.Mutations)
	}

	// Validation.
	if resp := postJSON(t, ts.URL+"/graphs/nope/edges", map[string]any{"edits": []map[string]any{{"op": "add", "u": 0, "v": 1}}}, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/graphs/g/edges", map[string]any{"edits": []map[string]any{}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty edits: status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/graphs/g/edges", map[string]any{"edits": []map[string]any{{"op": "toggle", "u": 0, "v": 1}}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad op: status %d", resp.StatusCode)
	}
	// A mutation that would grow the graph past the vertex ceiling.
	if resp := postJSON(t, ts.URL+"/graphs/g/edges", map[string]any{"edits": []map[string]any{{"op": "add", "u": 0, "v": 1 << 30}}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized growth: status %d", resp.StatusCode)
	}
	// Bad lookup parameters.
	if resp := doJSON(t, "GET", ts.URL+"/graphs/g/core", nil, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("lookup without v: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, "GET", ts.URL+"/graphs/g/core?v=xyz", nil, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-numeric v: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, "GET", ts.URL+"/graphs/g/core?v=99", nil, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range v: status %d", resp.StatusCode)
	}
}

// TestMutateUnknownGraphDoesNotLeakLocks: junk graph names must 404
// without inserting per-name mutation locks (they are never freed).
func TestMutateUnknownGraphDoesNotLeakLocks(t *testing.T) {
	ts, s := testServerWith(t, Config{})
	for i := 0; i < 5; i++ {
		resp := postJSON(t, fmt.Sprintf("%s/graphs/junk%d/edges", ts.URL, i),
			map[string]any{"edits": []map[string]any{{"op": "add", "u": 0, "v": 1}}}, nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("junk graph: status %d", resp.StatusCode)
		}
	}
	s.reg.mutMu.Lock()
	locks := len(s.reg.mutLocks)
	s.reg.mutMu.Unlock()
	if locks != 0 {
		t.Fatalf("mutation locks leaked for unknown graphs: %d", locks)
	}
}

// TestMutateNoOpBatchDoesNotRepublish: a fully no-op batch (e.g. an
// idempotent client retry) must not bump the version or purge cached
// results.
func TestMutateNoOpBatchDoesNotRepublish(t *testing.T) {
	ts, s := testServerWith(t, Config{})
	postJSON(t, ts.URL+"/graphs/g/generate", map[string]any{"generator": "complete", "n": 5}, nil)
	var jv jobView
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "g", "decomposition": "n34"}, &jv)
	waitForJob(t, ts.URL, jv.ID)
	entries := s.cache.len()

	var gv graphView
	doJSON(t, "GET", ts.URL+"/graphs/g", nil, &gv)
	var mr mutateResponse
	resp := postJSON(t, ts.URL+"/graphs/g/edges", map[string]any{"edits": []map[string]any{
		{"op": "add", "u": 0, "v": 1},    // already present
		{"op": "remove", "u": 0, "v": 9}, // out of range
		{"op": "add", "u": 2, "v": 2},    // self-loop
	}}, &mr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("no-op batch: status %d", resp.StatusCode)
	}
	if mr.Version != gv.Version || mr.Added != 0 || mr.Removed != 0 || mr.Ignored != 3 {
		t.Fatalf("no-op batch republished: %+v (was version %d)", mr, gv.Version)
	}
	if mr.N != 5 || mr.MaxCore != 4 {
		t.Fatalf("no-op batch response: %+v", mr)
	}
	if s.cache.len() != entries {
		t.Fatalf("no-op batch purged the cache: %d -> %d entries", entries, s.cache.len())
	}
	doJSON(t, "GET", ts.URL+"/graphs/g", nil, &gv)
	if gv.Mutations != 0 {
		t.Fatalf("no-op batch counted as a mutation: %+v", gv)
	}
}

// TestMutateSelfLoopDoesNotGrow: a rejected self-loop add must not grow
// the vertex set to cover its endpoint.
func TestMutateSelfLoopDoesNotGrow(t *testing.T) {
	ts := testServer(t, Config{})
	doJSON(t, "POST", ts.URL+"/graphs/g", strings.NewReader("0 1\n1 2\n"), nil)
	var mr mutateResponse
	postJSON(t, ts.URL+"/graphs/g/edges", map[string]any{"edits": []map[string]any{
		{"op": "add", "u": 500000, "v": 500000}, // ignored, must not allocate
		{"op": "add", "u": 0, "v": 2},
	}}, &mr)
	if mr.N != 3 || mr.Added != 1 || mr.Ignored != 1 {
		t.Fatalf("self-loop grew the graph: %+v", mr)
	}
}

func TestCoreLookupOnUnmutatedGraph(t *testing.T) {
	ts := testServer(t, Config{})
	postJSON(t, ts.URL+"/graphs/k5/generate", map[string]any{"generator": "complete", "n": 5}, nil)
	var cl coreLookupResponse
	doJSON(t, "GET", ts.URL+"/graphs/k5/core?v=0&v=3", nil, &cl)
	if cl.Maintained {
		t.Fatal("never-mutated graph must not claim a maintained κ array")
	}
	if len(cl.CoreNumbers) != 2 || cl.CoreNumbers[0] != 4 || cl.CoreNumbers[1] != 4 {
		t.Fatalf("K5 core numbers: %+v", cl)
	}
}

// TestMutationWarmStartE2E is the acceptance flow: upload → decompose →
// mutate → re-decompose. The re-decomposition must serve κ identical to a
// cold peel of the edited graph, in strictly fewer sweeps than a cold
// local run of the same edited graph.
func TestMutationWarmStartE2E(t *testing.T) {
	ts := testServer(t, Config{Workers: 2})
	g := graph.PowerLawCluster(2000, 5, 0.5, 5)
	doJSON(t, "POST", ts.URL+"/graphs/warm", strings.NewReader(edgeListBody(g)), nil)

	// Cold decompositions populate the cache (and give the warm seeder its
	// old-version κ).
	var coreJob, trussJob jobView
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "warm", "decomposition": "core", "algorithm": "and"}, &coreJob)
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "warm", "decomposition": "truss", "algorithm": "and"}, &trussJob)
	coldCore := waitForJob(t, ts.URL, coreJob.ID)
	coldTruss := waitForJob(t, ts.URL, trussJob.ID)
	if !coldCore.Converged || !coldTruss.Converged {
		t.Fatalf("cold jobs: %+v %+v", coldCore, coldTruss)
	}

	// Mutate: a small batch of inserts and one removal.
	edits := []graph.EdgeEdit{
		{Add: true, U: 0, V: 999},
		{Add: true, U: 1, V: 1500},
		{Add: true, U: 2, V: 700},
		{Add: true, U: 3, V: 1999},
		{U: g.Edges()[0][0], V: g.Edges()[0][1]},
	}
	ops := make([]map[string]any, len(edits))
	for i, ed := range edits {
		op := "remove"
		if ed.Add {
			op = "add"
		}
		ops[i] = map[string]any{"op": op, "u": ed.U, "v": ed.V}
	}
	mirror := graph.ApplyEdits(g, 0, edits)
	var mr mutateResponse
	if resp := postJSON(t, ts.URL+"/graphs/warm/edges", map[string]any{"edits": ops}, &mr); resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: status %d", resp.StatusCode)
	}
	if mr.Added != 4 || mr.Removed != 1 {
		t.Fatalf("mutate counts: %+v", mr)
	}
	if len(mr.WarmSeeded) != 2 || mr.WarmSeeded[0] != "core" || mr.WarmSeeded[1] != "truss" {
		t.Fatalf("warmSeeded: %v", mr.WarmSeeded)
	}

	// Re-decompose: served from the warm-seeded cache, converged, and in
	// strictly fewer sweeps than the cold run on the OLD graph...
	var warmJob jobView
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "warm", "decomposition": "core", "algorithm": "and"}, &warmJob)
	if !warmJob.Cached || warmJob.State != JobDone || !warmJob.Converged {
		t.Fatalf("re-decompose not served warm: %+v", warmJob)
	}
	if warmJob.Sweeps >= coldCore.Sweeps {
		t.Fatalf("warm run not faster: %d vs %d cold sweeps", warmJob.Sweeps, coldCore.Sweeps)
	}
	// ...and than a cold local run of the SAME edited graph.
	doJSON(t, "POST", ts.URL+"/graphs/cold", strings.NewReader(edgeListBody(mirror)), nil)
	var coldNewJob jobView
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "cold", "decomposition": "core", "algorithm": "and"}, &coldNewJob)
	coldNew := waitForJob(t, ts.URL, coldNewJob.ID)
	if warmJob.Sweeps >= coldNew.Sweeps {
		t.Fatalf("warm run not faster than cold on the edited graph: %d vs %d sweeps", warmJob.Sweeps, coldNew.Sweeps)
	}

	// κ identical to cold peeling of the edited graph.
	var res jobResultResponse
	doJSON(t, "GET", ts.URL+"/jobs/"+warmJob.ID+"/result?kappa=true", nil, &res)
	wantCore := peel.Run(nucleus.NewCore(mirror)).Kappa
	if len(res.Kappa) != len(wantCore) {
		t.Fatalf("core cells: %d vs %d", len(res.Kappa), len(wantCore))
	}
	for v := range wantCore {
		if res.Kappa[v] != wantCore[v] {
			t.Fatalf("core κ(%d) = %d, want %d", v, res.Kappa[v], wantCore[v])
		}
	}

	// Truss was warm-seeded too, and matches cold peeling.
	var warmTruss jobView
	postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "warm", "decomposition": "truss", "algorithm": "and"}, &warmTruss)
	if !warmTruss.Cached || !warmTruss.Converged {
		t.Fatalf("truss not served warm: %+v", warmTruss)
	}
	doJSON(t, "GET", ts.URL+"/jobs/"+warmTruss.ID+"/result?kappa=true", nil, &res)
	wantTruss := peel.Run(nucleus.NewTruss(mirror)).Kappa
	if len(res.Kappa) != len(wantTruss) {
		t.Fatalf("truss cells: %d vs %d", len(res.Kappa), len(wantTruss))
	}
	for e := range wantTruss {
		if res.Kappa[e] != wantTruss[e] {
			t.Fatalf("truss κ(%d) = %d, want %d", e, res.Kappa[e], wantTruss[e])
		}
	}

	// Stats: one batch, two warm runs, measurable sweep savings, and the
	// accounting invariant.
	st := getStats(t, ts.URL)
	if st.Mutations.Batches != 1 || st.Mutations.Applied != 5 {
		t.Fatalf("mutation stats: %+v", st.Mutations)
	}
	if st.Mutations.WarmRuns != 2 {
		t.Fatalf("warm runs: %+v", st.Mutations)
	}
	if st.Mutations.SweepsSaved <= 0 {
		t.Fatalf("no sweep savings recorded: %+v", st.Mutations)
	}
	if st.Cache.Hits+st.Cache.Misses != st.Cache.Lookups {
		t.Fatalf("cache accounting: %+v", st.Cache)
	}
}

// TestMutationPathMatchesColdPeelProperty drives random insert/remove
// batches through the mutation endpoint and checks, after every batch,
// that the maintained core numbers and the warm-started truss numbers
// exactly match a cold peel of the independently rebuilt static graph.
func TestMutationPathMatchesColdPeelProperty(t *testing.T) {
	ts := testServer(t, Config{Workers: 2, CacheSize: 64})
	rng := rand.New(rand.NewSource(1234))
	cur := graph.GnM(50, 140, 7) // test-side mirror of the server graph
	doJSON(t, "POST", ts.URL+"/graphs/rnd", strings.NewReader(edgeListBody(cur)), nil)

	for batch := 0; batch < 6; batch++ {
		// Keep the current version's core/truss results cached so the
		// mutation warm-seeds both (first round computes, later rounds are
		// the previous round's warm seeds).
		for _, dec := range []string{"core", "truss"} {
			var jv jobView
			postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "rnd", "decomposition": dec, "algorithm": "and"}, &jv)
			if v := waitForJob(t, ts.URL, jv.ID); v.State != JobDone {
				t.Fatalf("batch %d %s job: %+v", batch, dec, v)
			}
		}

		n := cur.N()
		numOps := 4 + rng.Intn(8)
		ops := make([]map[string]any, 0, numOps)
		edits := make([]graph.EdgeEdit, 0, numOps)
		for i := 0; i < numOps; i++ {
			if rng.Intn(10) < 6 || cur.M() == 0 {
				u := uint32(rng.Intn(n + 1)) // id n grows the graph by one
				v := uint32(rng.Intn(n))
				ops = append(ops, map[string]any{"op": "add", "u": u, "v": v})
				edits = append(edits, graph.EdgeEdit{Add: true, U: u, V: v})
			} else {
				e := cur.Edges()[rng.Int63n(cur.M())]
				ops = append(ops, map[string]any{"op": "remove", "u": e[0], "v": e[1]})
				edits = append(edits, graph.EdgeEdit{U: e[0], V: e[1]})
			}
		}

		var mr mutateResponse
		if resp := postJSON(t, ts.URL+"/graphs/rnd/edges", map[string]any{"edits": ops}, &mr); resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: status %d", batch, resp.StatusCode)
		}
		if len(mr.WarmSeeded) != 2 {
			t.Fatalf("batch %d: warmSeeded %v", batch, mr.WarmSeeded)
		}
		cur = graph.ApplyEdits(cur, 0, edits)
		if mr.N != cur.N() || mr.M != cur.M() {
			t.Fatalf("batch %d: server (%d,%d) vs mirror (%d,%d)", batch, mr.N, mr.M, cur.N(), cur.M())
		}

		// Maintained core numbers for every vertex == cold peel.
		wantCore := peel.Run(nucleus.NewCore(cur)).Kappa
		var sb strings.Builder
		for v := 0; v < cur.N(); v++ {
			if v > 0 {
				sb.WriteByte('&')
			}
			fmt.Fprintf(&sb, "v=%d", v)
		}
		var cl coreLookupResponse
		doJSON(t, "GET", ts.URL+"/graphs/rnd/core?"+sb.String(), nil, &cl)
		if !cl.Maintained || len(cl.CoreNumbers) != cur.N() {
			t.Fatalf("batch %d: lookup %+v", batch, cl)
		}
		for v, want := range wantCore {
			if cl.CoreNumbers[v] != want {
				t.Fatalf("batch %d: maintained κ(%d) = %d, want %d", batch, v, cl.CoreNumbers[v], want)
			}
		}

		// Warm-started truss numbers == cold peel on the rebuilt graph.
		var tj jobView
		postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "rnd", "decomposition": "truss", "algorithm": "and"}, &tj)
		if !tj.Cached || tj.State != JobDone {
			t.Fatalf("batch %d: truss not warm-seeded: %+v", batch, tj)
		}
		var res jobResultResponse
		doJSON(t, "GET", ts.URL+"/jobs/"+tj.ID+"/result?kappa=true", nil, &res)
		wantTruss := peel.Run(nucleus.NewTruss(cur)).Kappa
		if len(res.Kappa) != len(wantTruss) {
			t.Fatalf("batch %d: truss cells %d vs %d", batch, len(res.Kappa), len(wantTruss))
		}
		for e, want := range wantTruss {
			if res.Kappa[e] != want {
				t.Fatalf("batch %d: warm truss κ(%d) = %d, want %d", batch, e, res.Kappa[e], want)
			}
		}
	}
}

// TestMutationKeepsOldVersionConsistent: a decomposition racing a mutation
// must be served against the version it was submitted for, and its result
// must not be cached under the new version.
func TestMutationIsolatesInFlightVersion(t *testing.T) {
	ts, s := testServerWith(t, Config{})
	postJSON(t, ts.URL+"/graphs/g/generate", map[string]any{"generator": "complete", "n": 6}, nil)
	e1, _ := s.reg.get("g")

	postJSON(t, ts.URL+"/graphs/g/edges", map[string]any{"edits": []map[string]any{
		{"op": "remove", "u": 0, "v": 1},
	}}, nil)

	// A computation that was in flight for the pre-mutation version
	// finishes now: the liveness recheck must keep it out of the cache.
	key := cacheKey{e1.name, e1.version, "core", "and", 0}
	res, _, err := s.computeShared(key, e1, 1, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// It still computed against the old snapshot (K6: all κ = 5).
	if res.MaxKappa != 5 {
		t.Fatalf("old-version result: maxκ = %d, want 5", res.MaxKappa)
	}
	if _, ok := s.cache.get(key); ok {
		t.Fatal("stale-version result remained cached after mutation")
	}
}

// TestStatsCacheAccountingInvariant pins the per-request invariant
// hits + misses == lookups == resolved decomposition requests, including
// jobs that coalesce onto an in-flight computation or find the key cached
// only after submission (the historical drift).
func TestStatsCacheAccountingInvariant(t *testing.T) {
	ts := testServer(t, Config{Workers: 1})
	postJSON(t, ts.URL+"/graphs/g/generate",
		map[string]any{"generator": "planted", "communities": 4, "size": 24, "p": 0.7, "interEdges": 30, "seed": 3}, nil)

	// Same-key jobs racing on a single worker: exactly one computes; the
	// rest are resolved as hits at submit time, at run time, or by
	// coalescing.
	const jobs = 6
	ids := make([]string, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var jv jobView
			if resp := postJSON(t, ts.URL+"/jobs", map[string]any{"graph": "g", "decomposition": "core"}, &jv); resp.StatusCode != http.StatusAccepted {
				t.Errorf("submit %d: status %d", i, resp.StatusCode)
				return
			}
			ids[i] = jv.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for _, id := range ids {
		if v := waitForJob(t, ts.URL, id); v.State != JobDone {
			t.Fatalf("job %s: %+v", id, v)
		}
	}
	// Two synchronous consumers of the same key.
	doJSON(t, "GET", ts.URL+"/graphs/g/hierarchy?dec=core", nil, nil)
	doJSON(t, "GET", ts.URL+"/graphs/g/hierarchy?dec=core", nil, nil)

	st := getStats(t, ts.URL)
	wantLookups := int64(jobs + 2)
	if st.Cache.Lookups != wantLookups {
		t.Fatalf("lookups = %d, want %d (%+v)", st.Cache.Lookups, wantLookups, st.Cache)
	}
	if st.Cache.Hits+st.Cache.Misses != st.Cache.Lookups {
		t.Fatalf("hits+misses != lookups: %+v", st.Cache)
	}
	if st.Cache.Misses != 1 {
		t.Fatalf("exactly one request should have paid the computation: %+v", st.Cache)
	}
	if st.Mutations.ColdRuns != 1 {
		t.Fatalf("exactly one cold run should have executed: %+v", st.Mutations)
	}
}
