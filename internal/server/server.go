// Package server implements nucleusd, the HTTP/JSON serving layer of the
// nucleus library. It turns the batch decomposition engines into an
// always-on service, mirroring the paper's split between full decomposition
// (Algorithms 1–3, expensive, run asynchronously) and query-driven local
// estimation (§1.2/§5, cheap, answered synchronously):
//
//   - a graph registry of named in-memory graphs, loaded from edge-list,
//     MatrixMarket or METIS uploads or from the built-in generators;
//   - incremental edge mutations: POST /graphs/{name}/edges applies an
//     add/remove batch to a mutable overlay, repairs core numbers locally
//     (subcore traversal, package dynamic), republishes a copy-on-write
//     snapshot under a bumped version, and warm-seeds the new version's
//     cache from the previous κ (Lemma 2) instead of recomputing cold;
//   - an asynchronous decomposition job queue backed by a bounded worker
//     pool over the localhi (AND/SND) and peel engines, with the job
//     lifecycle queued → running → done|failed|cancelled|shed. Dispatch
//     is workload-aware (internal/sched): an observed-cost model prices
//     each job, tenants (X-Nucleus-Tenant) share the pool by deficit
//     round-robin with per-tenant quotas, jobs within a tenant run
//     earliest-deadline-first, and ?deadlineMs submissions that cannot
//     meet their deadline are shed with 503 + Retry-After or degraded to
//     a computed anytime sweep budget;
//   - anytime serving of in-flight jobs: running snd/and decompositions
//     publish copy-on-write τ snapshots with convergence metrics after
//     every sweep (τ ≥ κ pointwise at all times — Theorem 1 makes partial
//     results safe upper bounds), readable by polling GET
//     /jobs/{id}/progress or streaming GET /jobs/{id}/stream (SSE), with
//     cooperative cancellation (DELETE /jobs/{id}) and deadline- or
//     sweep-budgeted synchronous queries (GET /graphs/{name}/decompose);
//   - an LRU result cache keyed by (graph, version, decomposition,
//     algorithm, sweep budget) so repeated decomposition requests are
//     served without recomputation;
//   - synchronous endpoints for query-driven core/truss estimation,
//     hierarchy and nuclei extraction, and densest-subgraph queries.
//
// Construct a Server with New and mount it on any http.Server (it
// implements http.Handler), or run the cmd/nucleusd binary. See
// docs/API.md for the endpoint reference.
package server

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"nucleus/internal/replica"
	"nucleus/internal/store"
)

// Config configures a nucleusd Server.
type Config struct {
	// Workers is the size of the decomposition worker pool. Values <= 0
	// default to 2.
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// submissions beyond it are rejected with 429. Values <= 0 default
	// to 64.
	QueueDepth int
	// TenantQueueDepth bounds the queued jobs of a single tenant, so one
	// client cannot monopolize the shared queue; submissions beyond it are
	// rejected with 429 while other tenants still have room. Values <= 0
	// default to QueueDepth (no per-tenant subdivision).
	TenantQueueDepth int
	// TenantInFlight bounds how many of one tenant's jobs may run
	// concurrently. Values <= 0 default to Workers (no per-tenant bound).
	TenantInFlight int
	// MaxQueueWait, when positive, sheds deadline-less submissions whose
	// predicted queue wait exceeds it: they are answered 503 with a
	// Retry-After instead of joining a queue that is already beyond the
	// acceptable latency. 0 disables the guard (jobs queue until the
	// global/tenant depth bounds reject them). Deadline-tagged jobs are
	// governed by their own ?deadlineMs instead.
	MaxQueueWait time.Duration
	// CacheSize is the capacity (entry count) of the LRU decomposition
	// result cache. Values <= 0 default to 32; use 1 for an effectively
	// single-entry cache (the cache cannot be disabled entirely, which
	// keeps the /stats counters meaningful).
	CacheSize int
	// MaxUploadBytes caps the accepted size of a graph upload body.
	// Values <= 0 default to 256 MiB.
	MaxUploadBytes int64
	// JobThreads is the default worker-thread count passed to the local
	// decomposition algorithms when a job does not specify one. Values
	// <= 0 default to 1 (each pool worker runs its job sequentially).
	JobThreads int
	// JobHistory caps how many finished (done or failed) jobs are
	// retained for GET /jobs/{id}; the oldest are evicted beyond it,
	// bounding the memory pinned by per-job κ arrays. Values <= 0
	// default to 256.
	JobHistory int
	// IndexMemBudget caps the estimated size, in bytes, of one flat
	// s-clique incidence index (see nucleus.Build): instances whose index
	// would exceed it fall back to on-the-fly s-clique discovery. 0
	// defaults to 1 GiB; negative disables flat indexing entirely. Note
	// the sentinel difference from nucleus.Build (where 0 disables and
	// negative means unlimited): a Config zero value must select the
	// default, so "effectively unlimited" is expressed here with a huge
	// positive value.
	IndexMemBudget int64
	// Store is the durable persistence backend: uploads become snapshots,
	// edit batches are write-ahead logged, and New replays both to recover
	// every graph at its exact pre-restart version. nil selects the
	// in-memory null store — the historical behavior where a restart loses
	// everything. The caller retains ownership: Close does not close it.
	Store store.Store
	// WALCompactBytes is the per-graph WAL size beyond which the
	// background compactor folds the log into a fresh snapshot, bounding
	// replay time after a crash. 0 defaults to 4 MiB; negative disables
	// compaction (the WAL then grows until the next upload or snapshot).
	WALCompactBytes int64
	// TenantWeights gives named tenants a deficit-round-robin weight
	// above the default 1: a weight-K tenant's queue earns K quanta per
	// scheduling round, so under contention it drains K× the work of an
	// unweighted one (see internal/sched). Weights below 2 are ignored.
	TenantWeights map[string]int
	// Replication configures the node's role in a replicated deployment
	// (primary / replica / standalone) and, for replicas, the pull
	// source. See docs/REPLICATION.md. The zero value is standalone.
	Replication ReplicationConfig
	// ProgressEvery samples the anytime progress publisher: running
	// snd/and decompositions publish a copy-on-write τ snapshot (plus
	// convergence metrics) every k-th sweep, feeding GET
	// /jobs/{id}/progress and the /jobs/{id}/stream SSE feed. 0 defaults
	// to 1 (every sweep); negative disables progress publishing entirely
	// (jobs then report only their terminal result). Each published
	// snapshot copies the τ array, so on huge graphs a larger k bounds the
	// publishing overhead.
	ProgressEvery int
}

// defaultWALCompactBytes is the compaction threshold applied when
// Config.WALCompactBytes is zero.
const defaultWALCompactBytes = 4 << 20 // 4 MiB

// defaultIndexMemBudget is the per-instance flat-index budget applied when
// Config.IndexMemBudget is zero.
const defaultIndexMemBudget = 1 << 30 // 1 GiB

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.TenantQueueDepth <= 0 {
		c.TenantQueueDepth = c.QueueDepth
	}
	if c.TenantInFlight <= 0 {
		c.TenantInFlight = c.Workers
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 32
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 256 << 20
	}
	if c.JobThreads <= 0 {
		c.JobThreads = 1
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 256
	}
	if c.IndexMemBudget == 0 {
		c.IndexMemBudget = defaultIndexMemBudget
	}
	if c.Store == nil {
		c.Store = store.Null()
	}
	if c.WALCompactBytes == 0 {
		c.WALCompactBytes = defaultWALCompactBytes
	}
	if c.ProgressEvery == 0 {
		c.ProgressEvery = 1
	}
	return c
}

// Server is the nucleusd HTTP serving layer. It is safe for concurrent
// use; create one with New and shut it down with Close.
type Server struct {
	cfg   Config
	reg   *registry
	cache *lruCache
	jobs  *jobManager
	mux   *http.ServeMux
	start time.Time

	// Single-flight table: in-progress decompositions by cache key.
	flightMu sync.Mutex
	inflight map[cacheKey]*flight

	// syncSem bounds graph-sized work running on request goroutines
	// (synchronous decompositions and estimations), which would otherwise
	// bypass the worker-pool bound that gates POST /jobs.
	syncSem chan struct{}

	// Request and cache counters, surfaced by /stats. Hits and misses
	// follow per-request accounting: every admitted decomposition request
	// (async job or synchronous κ consumer) increments exactly one of the
	// two — a hit when it was served from the cache or coalesced onto an
	// in-flight computation, a miss when it paid for the computation — so
	// hits + misses always equals the number of requests resolved.
	requests    atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// Mutation and warm-start counters, surfaced by /stats.
	mutBatches  atomic.Int64 // edit batches published
	mutApplied  atomic.Int64 // edits applied (adds + removes)
	mutIgnored  atomic.Int64 // no-op edits (dupes, absent, self-loops, out of range)
	warmRuns    atomic.Int64 // warm-started reconvergence runs after mutations
	coldRuns    atomic.Int64 // full cold decompositions actually executed
	warmSweeps  atomic.Int64 // sweeps spent by warm runs
	sweepsSaved atomic.Int64 // seed's cold sweeps minus warm sweeps, summed

	// Instance-cache counters, surfaced by /stats. Every request needing
	// an (r,s) instance either reuses the per-(graph version, family) memo
	// (idxReuses) or constructs one: with a flat s-clique incidence index
	// (idxBuilds) or on the fly when the budget declines it or the family
	// needs none (idxFallbacks).
	idxBuilds    atomic.Int64
	idxReuses    atomic.Int64
	idxFallbacks atomic.Int64
	idxBytes     atomic.Int64 // total bytes of flat indexes built since start

	// Anytime-serving counters, surfaced by /stats (see anytime.go and
	// docs/ANYTIME.md).
	progressSnaps   atomic.Int64 // τ snapshots published by completed runs
	sseStreams      atomic.Int64 // GET /jobs/{id}/stream connections served
	budgetedQueries atomic.Int64 // GET /graphs/{name}/decompose requests admitted
	deadlineStops   atomic.Int64 // budgeted runs ended by their wall-clock deadline

	// Persistence state and counters, surfaced by /stats (see persist.go).
	store           store.Store
	snapSaves       atomic.Int64 // snapshots written (uploads + compactions)
	walAppends      atomic.Int64 // WAL frames appended (batch + commit)
	walBytes        atomic.Int64 // WAL bytes appended since start
	replays         atomic.Int64 // graphs recovered at startup
	replayedBatches atomic.Int64 // committed WAL batches re-applied at startup
	compactions     atomic.Int64 // WALs folded into fresh snapshots
	persistErrors   atomic.Int64 // persistence failures (logged, non-fatal)

	// Compactor worker plumbing; compactMu also guards the closed flag so
	// a mutation racing Close cannot send on a closed channel.
	compactMu     sync.Mutex
	compactCh     chan string
	compactClosed bool
	compactWG     sync.WaitGroup

	// Replication state (see replication.go). replMu guards the role and
	// the puller handle — both change at promotion; generation is atomic
	// because the write-fencing check reads it on every mutating request.
	replMu        sync.Mutex
	replRole      string
	puller        *replica.Puller
	pullerRunning bool
	generation    atomic.Uint64
	fencedWrites  atomic.Int64 // writes rejected by the generation fence
	promotions    atomic.Int64 // replica→primary transitions on this node
}

// New constructs a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		reg:      newRegistry(),
		cache:    newLRUCache(cfg.CacheSize),
		inflight: make(map[cacheKey]*flight),
		syncSem:  make(chan struct{}, cfg.Workers),
		store:    cfg.Store,
		start:    time.Now(),
	}
	s.jobs = newJobManager(s)
	if s.store.Durable() {
		// Replay persisted snapshots + WALs before the first request can
		// arrive, then start folding long WALs in the background.
		s.recoverFromStore()
		s.startCompactor()
	}
	// Role, generation and (for replicas) the background puller — after
	// recovery so a restarted replica resumes from its local state.
	s.startReplication()
	s.mux = s.routes()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// Close stops accepting jobs and blocks until in-flight jobs finish.
// Queued jobs that have not started are marked failed. The compactor is
// drained first so no snapshot write races process exit; the Store itself
// stays open (the caller owns it).
func (s *Server) Close() {
	s.stopReplication()
	s.stopCompactor()
	s.jobs.close()
}

// acquireSync/releaseSync bound the number of request goroutines running
// graph-sized computations concurrently.
func (s *Server) acquireSync() { s.syncSem <- struct{}{} }
func (s *Server) releaseSync() { <-s.syncSem }

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)

	// Replication (docs/REPLICATION.md). Always registered: a standalone
	// node answers /replication/status too, and the shipping endpoints
	// refuse cleanly (501) without a durable store.
	mux.HandleFunc("GET /replication/status", s.handleReplStatus)
	mux.HandleFunc("GET /replication/manifest", s.handleReplManifest)
	mux.HandleFunc("GET /replication/snapshot/{name}", s.handleReplSnapshot)
	mux.HandleFunc("GET /replication/wal/{name}", s.handleReplWAL)
	mux.HandleFunc("POST /replication/promote", s.handleReplPromote)
	mux.HandleFunc("POST /replication/repoint", s.handleReplRepoint)
	mux.HandleFunc("POST /replication/pull", s.handleReplPull)

	mux.HandleFunc("GET /graphs", s.handleListGraphs)
	mux.HandleFunc("POST /graphs/{name}", s.handleUploadGraph)
	mux.HandleFunc("POST /graphs/{name}/generate", s.handleGenerateGraph)
	mux.HandleFunc("GET /graphs/{name}", s.handleGetGraph)
	mux.HandleFunc("DELETE /graphs/{name}", s.handleDeleteGraph)
	mux.HandleFunc("POST /graphs/{name}/edges", s.handleMutateGraph)
	mux.HandleFunc("GET /graphs/{name}/core", s.handleCoreLookup)

	mux.HandleFunc("POST /jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /jobs", s.handleListJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /jobs/{id}/progress", s.handleJobProgress)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleJobStream)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancelJob)

	mux.HandleFunc("GET /graphs/{name}/decompose", s.handleDecompose)

	mux.HandleFunc("POST /estimate/core", s.handleEstimateCore)
	mux.HandleFunc("POST /estimate/truss", s.handleEstimateTruss)

	mux.HandleFunc("GET /graphs/{name}/hierarchy", s.handleHierarchy)
	mux.HandleFunc("GET /graphs/{name}/nuclei", s.handleNuclei)
	mux.HandleFunc("GET /graphs/{name}/densest", s.handleDensest)
	return mux
}
