package server

import (
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestDocsRoutesConsistency is the docs drift gate: every route
// registered in routes() must be documented in docs/API.md, and every
// route documented there must still exist. Routes are extracted from the
// source (http.ServeMux patterns are not enumerable at runtime) and from
// the `### `-level headings of API.md, whose convention is a
// backtick-quoted "METHOD /path" per documented route (query strings and
// optional [?...] suffixes are ignored).
func TestDocsRoutesConsistency(t *testing.T) {
	src, err := os.ReadFile("server.go")
	if err != nil {
		t.Fatal(err)
	}
	registered := map[string]bool{}
	for _, m := range regexp.MustCompile(`mux\.HandleFunc\("([A-Z]+ [^"]+)"`).FindAllStringSubmatch(string(src), -1) {
		registered[m[1]] = true
	}
	if len(registered) == 0 {
		t.Fatal("no routes found in server.go; did routes() move?")
	}

	doc, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatal(err)
	}
	documented := map[string]bool{}
	routeRe := regexp.MustCompile("`(GET|POST|PUT|DELETE|PATCH) (/[^`\\s?\\[]*)")
	for _, line := range strings.Split(string(doc), "\n") {
		if !strings.HasPrefix(line, "### ") {
			continue
		}
		for _, m := range routeRe.FindAllStringSubmatch(line, -1) {
			documented[m[1]+" "+m[2]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("no route headings found in docs/API.md; did the heading convention change?")
	}

	var missing, stale []string
	for r := range registered {
		if !documented[r] {
			missing = append(missing, r)
		}
	}
	for r := range documented {
		if !registered[r] {
			stale = append(stale, r)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	if len(missing) > 0 {
		t.Errorf("routes registered in internal/server but missing from docs/API.md headings:\n  %s",
			strings.Join(missing, "\n  "))
	}
	if len(stale) > 0 {
		t.Errorf("routes documented in docs/API.md but not registered in internal/server:\n  %s",
			strings.Join(stale, "\n  "))
	}
}
