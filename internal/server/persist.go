package server

import (
	"log"
	"runtime"

	"nucleus/internal/dynamic"
	"nucleus/internal/par"
	"nucleus/internal/store"
)

// ---------------------------------------------------------------------------
// Durable persistence glue (package store).
//
// The registry's durable state is split the way the store package frames
// it: a snapshot per graph (CSR + metadata + maintained exact κ when
// known) and a WAL of committed edit batches since that snapshot. The
// serving layer owns the ordering guarantees:
//
//   - uploads/generates persist the snapshot BEFORE the 201 response, under
//     the per-name mutation lock, so an acknowledged upload survives a
//     crash and never interleaves with a mutation or compaction;
//   - edit batches append a WAL batch frame before touching the overlay and
//     a commit frame after the new version is published, so replay
//     reconstructs exactly the acknowledged state;
//   - a background compactor folds long WALs into fresh snapshots once they
//     cross Config.WALCompactBytes, bounding replay time;
//   - startup replays snapshot+WAL for every persisted graph, restores the
//     exact pre-restart versions, and warm-seeds the core κ cache via the
//     Lemma 2 path so the first post-restart request reconverges locally
//     instead of decomposing cold.

// recoverFromStore rebuilds the registry from the persistence backend.
// Called from New before the listener can exist, so no request can observe
// a half-recovered registry; the shared structures the workers do touch —
// registry install, result cache, atomic counters — are all internally
// locked, which is what makes the per-graph fan-out below safe.
// Per-graph failures are logged and counted, not fatal: one corrupt graph
// must not take down the other millions.
//
// Graphs recover concurrently across a worker pool (each graph's WAL
// replay is inherently serial — batch order is the contract — but graphs
// are independent), and each snapshot decode additionally fans its CSR
// construction across Config.JobThreads when the backend implements
// store.ThreadedLoader. Recovered versions are bit-identical to the serial
// path: per-graph results do not depend on recovery order, and the final
// version bump takes the max over all of them.
func (s *Server) recoverFromStore() {
	names, err := s.store.List()
	if err != nil {
		log.Printf("nucleusd: listing persisted graphs: %v", err)
		s.persistErrors.Add(1)
		return
	}
	loader, _ := s.store.(store.ThreadedLoader)
	versions := make([]uint64, len(names))
	par.ForEach(len(names), 1, runtime.GOMAXPROCS(0), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			name := names[i]
			var (
				snap    *store.Snapshot
				batches []store.CommittedBatch
				err     error
			)
			if loader != nil {
				snap, batches, err = loader.LoadThreads(name, s.cfg.JobThreads)
			} else {
				snap, batches, err = s.store.Load(name)
			}
			if err != nil {
				log.Printf("nucleusd: recovering graph %q: %v", name, err)
				s.persistErrors.Add(1)
				continue
			}
			e := rebuildEntry(name, snap, batches)
			versions[i] = e.version
			s.reg.install(e)
			s.replays.Add(1)
			s.replayedBatches.Add(int64(len(batches)))
			if e.coreKappa != nil {
				s.warmRecoverCore(e)
			}
		}
	})
	// Future versions must stay above every recovered one, or cache keys
	// from different lifetimes of a name could collide.
	maxVer := uint64(0)
	for _, v := range versions {
		if v > maxVer {
			maxVer = v
		}
	}
	s.reg.bumpVersion(maxVer)
}

// rebuildEntry replays one graph: the snapshot is the base, each committed
// WAL batch is re-applied through the same dynamic-overlay repair the
// mutation handler uses, and the entry lands at the exact version the last
// commit published. When the snapshot carries the maintained exact κ the
// overlay seeds from it (no cold peel even with a non-empty WAL).
func rebuildEntry(name string, snap *store.Snapshot, batches []store.CommittedBatch) *graphEntry {
	e := &graphEntry{
		name:      name,
		g:         snap.Graph,
		version:   snap.Meta.Version,
		source:    snap.Meta.Source,
		created:   snap.Meta.CreatedAt,
		coreKappa: snap.Kappa,
		mutations: snap.Meta.Mutations,
	}
	if len(batches) == 0 {
		return e
	}
	var dyn *dynamic.Graph
	if snap.Kappa != nil {
		dyn = dynamic.FromStaticCores(snap.Graph, snap.Kappa)
	} else {
		// Never-decomposed lineage with a WAL: the overlay needs exact core
		// numbers to repair incrementally, so this one graph pays a peel.
		dyn = dynamic.FromStatic(snap.Graph)
	}
	for _, b := range batches {
		applyBatch(dyn, &b.Batch, int(batchNeedN(dyn.N(), &b.Batch)))
		e.version = b.Version
		e.mutations++
	}
	e.g = dyn.Static()
	e.dyn = dyn
	e.coreKappa = append([]int32(nil), dyn.CoreNumbers()...)
	return e
}

// warmRecoverCore seeds the recovered entry's core cache entry by
// Lemma 2 warm-started reconvergence from the persisted exact κ: the run
// starts at the fixpoint, so it is one certification pass, not a cold
// decomposition (coldRuns stays 0 across a restart).
func (s *Server) warmRecoverCore(e *graphEntry) {
	inst := s.instanceOf(e, "core")
	lr := dynamic.WarmCoreNumbersOn(inst, e.g, e.coreKappa, 0, s.cfg.JobThreads)
	s.warmRuns.Add(1)
	s.warmSweeps.Add(int64(lr.Sweeps))
	s.cache.put(cacheKey{e.name, e.version, "core", "and", 0}, localResult(lr, inst))
}

// persistSnapshot writes the entry's current state as the authoritative
// snapshot (truncating its WAL). Callers hold the per-name mutation lock.
func (s *Server) persistSnapshot(e *graphEntry) error {
	if !s.store.Durable() {
		return nil
	}
	err := s.store.SaveSnapshot(e.name, &store.Snapshot{
		Meta: store.Meta{
			Version:   e.version,
			Source:    e.source,
			CreatedAt: e.created,
			Mutations: e.mutations,
		},
		Graph: e.g,
		Kappa: e.coreKappa,
	})
	if err == nil {
		s.snapSaves.Add(1)
	}
	return err
}

// ---------------------------------------------------------------------------
// Background WAL compaction.

// startCompactor launches the single compaction worker. One worker is
// deliberate: compaction takes the per-name mutation lock and writes a
// full snapshot, so running many concurrently would just contend with
// mutations for disk bandwidth.
func (s *Server) startCompactor() {
	s.compactCh = make(chan string, 64)
	s.compactWG.Add(1)
	go func() {
		defer s.compactWG.Done()
		for name := range s.compactCh {
			s.compactGraph(name)
		}
	}()
}

// stopCompactor shuts the worker down idempotently (Close may run twice).
func (s *Server) stopCompactor() {
	s.compactMu.Lock()
	already := s.compactClosed
	s.compactClosed = true
	s.compactMu.Unlock()
	if already || s.compactCh == nil {
		return
	}
	close(s.compactCh)
	s.compactWG.Wait()
}

// maybeCompact enqueues name for compaction when its WAL has outgrown the
// threshold. Non-blocking: if the queue is full the next batch re-triggers
// it, and a send racing shutdown is simply dropped.
func (s *Server) maybeCompact(name string) {
	if !s.store.Durable() || s.cfg.WALCompactBytes < 0 {
		return
	}
	if s.store.WALSize(name) <= s.cfg.WALCompactBytes {
		return
	}
	s.compactMu.Lock()
	if !s.compactClosed {
		select {
		case s.compactCh <- name:
		default:
		}
	}
	s.compactMu.Unlock()
}

// compactGraph folds name's WAL into a fresh snapshot. The per-name
// mutation lock serializes it against edit batches and re-uploads, so the
// snapshot it writes is a consistent (graph, version, κ) triple and no
// commit frame can land between the state read and the WAL truncation.
func (s *Server) compactGraph(name string) {
	lock := s.reg.mutationLock(name)
	lock.Lock()
	defer lock.Unlock()
	e, ok := s.reg.get(name)
	if !ok {
		return // deleted while queued
	}
	if s.store.WALSize(name) <= s.cfg.WALCompactBytes {
		return // already compacted (or re-uploaded) while queued
	}
	if err := s.persistSnapshot(e); err != nil {
		log.Printf("nucleusd: compacting graph %q: %v", name, err)
		s.persistErrors.Add(1)
		return
	}
	s.compactions.Add(1)
}
