// Black-box tests for the indexed instances and the adaptive Build
// constructor: the external test package lets these property tests run the
// localhi and peel engines (which import nucleus) on both instance
// flavours and demand identical decompositions.
package nucleus_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"nucleus/internal/graph"
	"nucleus/internal/localhi"
	"nucleus/internal/nucleus"
	"nucleus/internal/peel"
)

// propertyGraphs returns the seeded random graphs the agreement properties
// run on: dense, skewed, sparse and degenerate shapes.
func propertyGraphs() []*graph.Graph {
	gs := []*graph.Graph{
		graph.Complete(7),
		graph.Figure2(),
		graph.PlantedCommunities(3, 12, 0.6, 30, 5),
		graph.PowerLawCluster(300, 5, 0.5, 9),
		graph.Path(6),
		graph.Build(0, nil),
	}
	rng := rand.New(rand.NewSource(1234))
	for i := 0; i < 4; i++ {
		n := 30 + rng.Intn(60)
		m := n * (2 + rng.Intn(4))
		gs = append(gs, graph.GnM(n, m, rng.Int63()))
	}
	return gs
}

// sCliqueMultiset renders cell c's s-clique list as a canonical multiset
// (each clique's co-members sorted, then the cliques sorted).
func sCliqueMultiset(inst nucleus.Instance, c int32) []string {
	var out []string
	inst.VisitSCliques(c, func(others []int32) bool {
		cp := append([]int32(nil), others...)
		sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
		out = append(out, fmt.Sprint(cp))
		return true
	})
	sort.Strings(out)
	return out
}

func assertInstancesAgree(t *testing.T, gi int, ref, idx nucleus.Instance) {
	t.Helper()
	if ref.NumCells() != idx.NumCells() {
		t.Fatalf("graph %d: cell counts %d vs %d", gi, ref.NumCells(), idx.NumCells())
	}
	refDeg, idxDeg := ref.Degrees(), idx.Degrees()
	for c := range refDeg {
		if refDeg[c] != idxDeg[c] {
			t.Fatalf("graph %d cell %d: degree %d vs %d", gi, c, refDeg[c], idxDeg[c])
		}
	}
	for c := 0; c < ref.NumCells(); c++ {
		cc := int32(c)
		want, got := sCliqueMultiset(ref, cc), sCliqueMultiset(idx, cc)
		if fmt.Sprint(want) != fmt.Sprint(got) {
			t.Fatalf("graph %d cell %d: s-clique multisets differ:\nref %v\nidx %v", gi, c, want, got)
		}
		if ref.CellLabel(cc) != idx.CellLabel(cc) {
			t.Fatalf("graph %d cell %d: labels %q vs %q", gi, c, ref.CellLabel(cc), idx.CellLabel(cc))
		}
		rv, iv := ref.CellVertices(cc, nil), idx.CellVertices(cc, nil)
		if fmt.Sprint(rv) != fmt.Sprint(iv) {
			t.Fatalf("graph %d cell %d: vertices %v vs %v", gi, c, rv, iv)
		}
	}
	// Final κ agreement under every engine, including the fused fast path
	// the indexed instance triggers inside localhi.
	for name, run := range map[string]func(nucleus.Instance) []int32{
		"peel": func(i nucleus.Instance) []int32 { return peel.Run(i).Kappa },
		"snd":  func(i nucleus.Instance) []int32 { return localhi.Snd(i, localhi.Options{}).Tau },
		"and": func(i nucleus.Instance) []int32 {
			return localhi.And(i, localhi.Options{Notification: true, Preserve: true}).Tau
		},
		"and-par": func(i nucleus.Instance) []int32 {
			return localhi.And(i, localhi.Options{Threads: 4, Notification: true}).Tau
		},
	} {
		want, got := run(ref), run(idx)
		for c := range want {
			if want[c] != got[c] {
				t.Fatalf("graph %d engine %s cell %d: κ %d vs %d", gi, name, c, want[c], got[c])
			}
		}
	}
}

func TestIndexedTrussMatchesTruss(t *testing.T) {
	for gi, g := range propertyGraphs() {
		assertInstancesAgree(t, gi, nucleus.NewTrussThreads(g, 2), nucleus.NewIndexedTruss(g, 2))
	}
}

func TestIndexedN34MatchesN34(t *testing.T) {
	for gi, g := range propertyGraphs() {
		assertInstancesAgree(t, gi, nucleus.NewN34Threads(g, 2), nucleus.NewIndexedN34(g, 2))
	}
}

func TestBuildBudgetAdaptivity(t *testing.T) {
	g := graph.PlantedCommunities(3, 12, 0.6, 30, 5)

	inst, rep := nucleus.Build(g, nucleus.FamilyTruss, -1, 2) // unlimited
	if _, ok := inst.(*nucleus.IndexedTruss); !ok || !rep.Indexed {
		t.Fatalf("unlimited budget: got %T (indexed=%v), want *IndexedTruss", inst, rep.Indexed)
	}
	if rep.IndexBytes != rep.EstimatedBytes {
		t.Fatalf("estimate %d != actual %d", rep.EstimatedBytes, rep.IndexBytes)
	}

	inst, rep = nucleus.Build(g, nucleus.FamilyTruss, 16, 2) // far too small
	if _, ok := inst.(*nucleus.Truss); !ok || rep.Indexed {
		t.Fatalf("tiny budget: got %T (indexed=%v), want on-the-fly *Truss", inst, rep.Indexed)
	}
	if rep.Reason == "" || rep.EstimatedBytes <= 16 {
		t.Fatalf("tiny budget: want an over-budget reason and estimate > 16, got %+v", rep)
	}

	inst, rep = nucleus.Build(g, nucleus.FamilyTruss, 0, 2) // disabled
	if _, ok := inst.(*nucleus.Truss); !ok || rep.Indexed {
		t.Fatalf("disabled: got %T (indexed=%v), want *Truss", inst, rep.Indexed)
	}

	inst, rep = nucleus.Build(g, nucleus.FamilyN34, -1, 2)
	if _, ok := inst.(*nucleus.IndexedN34); !ok || !rep.Indexed {
		t.Fatalf("n34 unlimited: got %T (indexed=%v), want *IndexedN34", inst, rep.Indexed)
	}
	inst, rep = nucleus.Build(g, nucleus.FamilyN34, 16, 2)
	if _, ok := inst.(*nucleus.N34); !ok || rep.Indexed {
		t.Fatalf("n34 tiny budget: got %T (indexed=%v), want *N34", inst, rep.Indexed)
	}

	inst, rep = nucleus.Build(g, nucleus.FamilyCore, -1, 2)
	if _, ok := inst.(*nucleus.Core); !ok || rep.Indexed {
		t.Fatalf("core: got %T (indexed=%v), want *Core", inst, rep.Indexed)
	}
}

func TestParseFamily(t *testing.T) {
	for s, want := range map[string]nucleus.Family{
		"core": nucleus.FamilyCore, "truss": nucleus.FamilyTruss, "n34": nucleus.FamilyN34,
	} {
		got, err := nucleus.ParseFamily(s)
		if err != nil || got != want {
			t.Fatalf("ParseFamily(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("Family(%q).String() = %q", s, got.String())
		}
	}
	if _, err := nucleus.ParseFamily("quux"); err == nil {
		t.Fatal("ParseFamily(quux): want error")
	}
}

// TestFlatIncidenceArrays pins the interface contract the localhi fused
// kernel relies on: rows are contiguous, co-arity sized, and aligned with
// VisitSCliques.
func TestFlatIncidenceArrays(t *testing.T) {
	g := graph.Complete(6)
	for _, tc := range []struct {
		inst    nucleus.FlatIncidence
		coArity int
	}{
		{nucleus.NewIndexedTruss(g, 1), 2},
		{nucleus.NewIndexedN34(g, 1), 3},
	} {
		offs, members, co := tc.inst.FlatIncidenceArrays()
		if co != tc.coArity {
			t.Fatalf("coArity %d, want %d", co, tc.coArity)
		}
		if len(offs) != tc.inst.NumCells()+1 {
			t.Fatalf("offs length %d, want %d", len(offs), tc.inst.NumCells()+1)
		}
		if offs[len(offs)-1] != int64(len(members)) {
			t.Fatalf("final offset %d != members length %d", offs[len(offs)-1], len(members))
		}
		deg := tc.inst.Degrees()
		for c := 0; c < tc.inst.NumCells(); c++ {
			if rowLen := offs[c+1] - offs[c]; rowLen != int64(co)*int64(deg[c]) {
				t.Fatalf("cell %d: row length %d, want %d", c, rowLen, int64(co)*int64(deg[c]))
			}
		}
	}
}
