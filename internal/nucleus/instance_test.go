package nucleus

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"nucleus/internal/cliques"
	"nucleus/internal/graph"
)

func TestCoreInstanceBasics(t *testing.T) {
	g := graph.Figure2()
	inst := NewCore(g)
	if inst.R() != 1 || inst.S() != 2 {
		t.Fatal("wrong (r,s)")
	}
	if inst.NumCells() != 6 {
		t.Fatalf("cells = %d", inst.NumCells())
	}
	deg := inst.Degrees()
	want := []int32{2, 3, 2, 2, 2, 1}
	for i := range want {
		if deg[i] != want[i] {
			t.Fatalf("deg = %v, want %v", deg, want)
		}
	}
	// Visiting s-cliques of b (id 1) yields its 3 neighbors one at a time.
	var others []int32
	inst.VisitSCliques(1, func(o []int32) bool {
		if len(o) != 1 {
			t.Fatalf("core s-clique has %d co-members", len(o))
		}
		others = append(others, o[0])
		return true
	})
	if len(others) != 3 {
		t.Fatalf("b has %d incident edges", len(others))
	}
}

func TestTrussInstanceBasics(t *testing.T) {
	g := graph.Complete(5)
	inst := NewTruss(g)
	if inst.R() != 2 || inst.S() != 3 {
		t.Fatal("wrong (r,s)")
	}
	if inst.NumCells() != 10 {
		t.Fatalf("cells = %d", inst.NumCells())
	}
	for _, d := range inst.Degrees() {
		if d != 3 { // each edge of K5 is in 3 triangles
			t.Fatalf("K5 edge triangle count = %d", d)
		}
	}
	// Each s-clique visit passes exactly two co-member edges that share an
	// endpoint with the cell edge.
	inst.VisitSCliques(0, func(o []int32) bool {
		if len(o) != 2 {
			t.Fatalf("truss s-clique has %d co-members", len(o))
		}
		return true
	})
}

func TestN34InstanceBasics(t *testing.T) {
	g := graph.Complete(6)
	inst := NewN34(g)
	if inst.R() != 3 || inst.S() != 4 {
		t.Fatal("wrong (r,s)")
	}
	if inst.NumCells() != 20 {
		t.Fatalf("cells = %d", inst.NumCells())
	}
	for _, d := range inst.Degrees() {
		if d != 3 { // each triangle of K6 is in 3 four-cliques
			t.Fatalf("K6 triangle K4 count = %d", d)
		}
	}
	inst.VisitSCliques(0, func(o []int32) bool {
		if len(o) != 3 {
			t.Fatalf("(3,4) s-clique has %d co-members", len(o))
		}
		return true
	})
}

func TestHyperMatchesSpecializedDegrees(t *testing.T) {
	quickGraphs(t, 20, func(g *graph.Graph) bool {
		// (1,2): Hyper degrees equal vertex degrees (cells are single
		// vertices; order matches because 1-cliques enumerate in id order).
		h12 := NewHyper(g, 1, 2)
		core := NewCore(g)
		if h12.NumCells() != core.NumCells() {
			return false
		}
		d1, d2 := h12.Degrees(), core.Degrees()
		for i := range d1 {
			if d1[i] != d2[i] {
				return false
			}
		}
		// (2,3): compare triangle counts via vertex-set keys.
		h23 := NewHyper(g, 2, 3)
		truss := NewTruss(g)
		if h23.NumCells() != truss.NumCells() {
			return false
		}
		td := truss.Degrees()
		for c := int32(0); c < int32(h23.NumCells()); c++ {
			vs := h23.CellVertices(c, nil)
			e, ok := g.EdgeID(vs[0], vs[1])
			if !ok || h23.Degrees()[c] != td[e] {
				return false
			}
		}
		return true
	})
}

func TestHyper34MatchesN34(t *testing.T) {
	g := graph.PlantedCommunities(2, 10, 0.7, 5, 3)
	h := NewHyper(g, 3, 4)
	n34 := NewN34(g)
	if h.NumCells() != n34.NumCells() {
		t.Fatalf("cell counts differ: %d vs %d", h.NumCells(), n34.NumCells())
	}
	hd := h.Degrees()
	nd := n34.Degrees()
	byKey := make(map[string]int32)
	for c := 0; c < n34.NumCells(); c++ {
		byKey[vertexKey(n34.CellVertices(int32(c), nil))] = nd[c]
	}
	for c := 0; c < h.NumCells(); c++ {
		key := vertexKey(h.CellVertices(int32(c), nil))
		want, ok := byKey[key]
		if !ok || hd[c] != want {
			t.Fatalf("cell %s: hyper deg %d, n34 deg %d (found=%v)", key, hd[c], want, ok)
		}
	}
}

func TestHyperInvalidArgs(t *testing.T) {
	g := graph.Complete(4)
	for _, rs := range [][2]int{{0, 2}, {2, 2}, {3, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHyper(%d,%d) did not panic", rs[0], rs[1])
				}
			}()
			NewHyper(g, rs[0], rs[1])
		}()
	}
}

func TestVisitNeighborsSymmetryCore(t *testing.T) {
	g := graph.GnM(30, 90, 11)
	inst := NewCore(g)
	for c := int32(0); c < int32(inst.NumCells()); c++ {
		inst.VisitNeighbors(c, func(d int32) bool {
			found := false
			inst.VisitNeighbors(d, func(e int32) bool {
				if e == c {
					found = true
					return false
				}
				return true
			})
			if !found {
				t.Fatalf("neighbor relation asymmetric: %d -> %d", c, d)
			}
			return true
		})
	}
}

func TestVisitSCliquesCountMatchesDegree(t *testing.T) {
	g := graph.PlantedCommunities(2, 12, 0.6, 10, 5)
	for _, inst := range []Instance{NewCore(g), NewTruss(g), NewN34(g), NewHyper(g, 2, 3)} {
		deg := inst.Degrees()
		for c := int32(0); c < int32(inst.NumCells()); c++ {
			count := int32(0)
			inst.VisitSCliques(c, func([]int32) bool {
				count++
				return true
			})
			if count != deg[c] {
				t.Fatalf("(%d,%d) cell %d: %d s-cliques visited, degree %d",
					inst.R(), inst.S(), c, count, deg[c])
			}
		}
	}
}

func TestCellLabels(t *testing.T) {
	g := graph.Complete(4)
	if got := NewCore(g).CellLabel(2); got != "v2" {
		t.Errorf("core label = %q", got)
	}
	truss := NewTruss(g)
	if got := truss.CellLabel(0); got == "" {
		t.Errorf("empty truss label")
	}
	n34 := NewN34(g)
	if got := n34.CellLabel(0); got == "" {
		t.Errorf("empty n34 label")
	}
	h := NewHyper(g, 1, 2)
	if got := h.CellLabel(0); got == "" {
		t.Errorf("empty hyper label")
	}
}

func TestHyperCellID(t *testing.T) {
	g := graph.Complete(4)
	h := NewHyper(g, 2, 3)
	for c := int32(0); c < int32(h.NumCells()); c++ {
		vs := h.CellVertices(c, nil)
		if got := h.CellID([]uint32{vs[1], vs[0]}); got != c {
			t.Fatalf("CellID round trip failed for cell %d", c)
		}
	}
	if got := h.CellID([]uint32{100, 200}); got != -1 {
		t.Fatalf("CellID of absent clique = %d", got)
	}
	if len(h.Cells()) != h.NumCells() {
		t.Fatal("Cells() length mismatch")
	}
}

func TestTrussDegreesMatchCliquePackage(t *testing.T) {
	g := graph.PowerLawCluster(150, 4, 0.5, 9)
	inst := NewTruss(g)
	want := cliques.CountPerEdge(g)
	got := inst.Degrees()
	for e := range want {
		if got[e] != want[e] {
			t.Fatalf("edge %d: %d vs %d", e, got[e], want[e])
		}
	}
}

func vertexKey(vs []uint32) string {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return fmt.Sprint(vs)
}

func quickGraphs(t *testing.T, maxN int, pred func(*graph.Graph) bool) {
	t.Helper()
	err := quick.Check(func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw)%maxN + 4
		m := int(mRaw%100) + 1
		maxM := n * (n - 1) / 2
		if m > maxM {
			m = maxM
		}
		return pred(graph.GnM(n, m, seed))
	}, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(6))})
	if err != nil {
		t.Fatal(err)
	}
}
