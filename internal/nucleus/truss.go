package nucleus

import (
	"fmt"

	"nucleus/internal/cliques"
	"nucleus/internal/graph"
)

// Truss is the k-truss (2,3) instance: cells are edges, s-cliques are the
// triangles containing an edge, discovered on the fly by adjacency
// intersection (the paper's §5 approach — the triangle hypergraph is never
// materialized).
type Truss struct {
	G *graph.Graph
	// deg caches the per-edge triangle counts (the initial s-degrees).
	deg []int32
}

// NewTruss returns the (2,3) instance of g with sequential degree
// initialization; NewTrussThreads parallelizes it.
func NewTruss(g *graph.Graph) *Truss { return NewTrussThreads(g, 1) }

// NewTrussThreads returns the (2,3) instance of g, splitting the per-edge
// triangle count — the instance's only up-front cost — across the given
// number of workers.
func NewTrussThreads(g *graph.Graph, threads int) *Truss {
	return &Truss{G: g, deg: cliques.CountPerEdgeParallel(g, threads)}
}

func (t *Truss) R() int        { return 2 }
func (t *Truss) S() int        { return 3 }
func (t *Truss) NumCells() int { return int(t.G.M()) }

func (t *Truss) Degrees() []int32 {
	return append([]int32(nil), t.deg...)
}

func (t *Truss) VisitSCliques(e int32, fn func(others []int32) bool) {
	var buf [2]int32
	cliques.ForEachTriangleOfEdge(t.G, int64(e), func(_ uint32, euw, evw int64) bool {
		buf[0], buf[1] = int32(euw), int32(evw)
		return fn(buf[:])
	})
}

func (t *Truss) VisitNeighbors(e int32, fn func(int32) bool) {
	cliques.ForEachTriangleOfEdge(t.G, int64(e), func(_ uint32, euw, evw int64) bool {
		return fn(int32(euw)) && fn(int32(evw))
	})
}

func (t *Truss) CellVertices(e int32, buf []uint32) []uint32 {
	u, v := t.G.Edge(int64(e))
	return append(buf, u, v)
}

func (t *Truss) CellLabel(e int32) string {
	u, v := t.G.Edge(int64(e))
	return fmt.Sprintf("e(%d,%d)", u, v)
}

// N34 is the (3,4) nucleus instance: cells are triangles, s-cliques are the
// 4-cliques containing a triangle, discovered on the fly via three-way
// adjacency intersection over a triangle index.
type N34 struct {
	G   *graph.Graph
	Idx *cliques.TriangleIndex
	deg []int32
}

// NewN34 returns the (3,4) instance of g, enumerating and indexing all
// triangles, with sequential degree initialization; NewN34Threads
// parallelizes it.
func NewN34(g *graph.Graph) *N34 { return NewN34Threads(g, 1) }

// NewN34Threads returns the (3,4) instance of g, splitting both the
// triangle enumeration and the per-triangle 4-clique count across the given
// number of workers. Triangle ids stay identical to the sequential build:
// the parallel enumeration reproduces the sequential emission order.
func NewN34Threads(g *graph.Graph, threads int) *N34 {
	idx := cliques.BuildTriangleIndexThreads(g, threads)
	return &N34{G: g, Idx: idx, deg: idx.K4DegreePerTriangleParallel(g, threads)}
}

func (n *N34) R() int        { return 3 }
func (n *N34) S() int        { return 4 }
func (n *N34) NumCells() int { return n.Idx.Len() }

func (n *N34) Degrees() []int32 {
	return append([]int32(nil), n.deg...)
}

func (n *N34) VisitSCliques(t int32, fn func(others []int32) bool) {
	var buf [3]int32
	n.Idx.ForEachK4OfTriangle(n.G, t, func(_ uint32, t1, t2, t3 int32) bool {
		buf[0], buf[1], buf[2] = t1, t2, t3
		return fn(buf[:])
	})
}

func (n *N34) VisitNeighbors(t int32, fn func(int32) bool) {
	n.Idx.ForEachK4OfTriangle(n.G, t, func(_ uint32, t1, t2, t3 int32) bool {
		return fn(t1) && fn(t2) && fn(t3)
	})
}

func (n *N34) CellVertices(t int32, buf []uint32) []uint32 {
	tri := n.Idx.List[t]
	return append(buf, tri[0], tri[1], tri[2])
}

func (n *N34) CellLabel(t int32) string {
	tri := n.Idx.List[t]
	return fmt.Sprintf("t(%d,%d,%d)", tri[0], tri[1], tri[2])
}
