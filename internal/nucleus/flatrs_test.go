package nucleus

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"nucleus/internal/graph"
)

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	edges := make([][2]uint32, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, [2]uint32{uint32(rng.Intn(n)), uint32(rng.Intn(n))})
	}
	return graph.Build(n, edges)
}

// TestFlatRSMatchesHyper asserts FlatRS is Hyper re-laid-out: same cell
// ids (both follow r-clique enumeration order), same degrees, and the same
// multiset of co-member groups per cell, across several (r,s) pairs.
func TestFlatRSMatchesHyper(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pairs := [][2]int{{1, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 4}, {1, 4}}
	for iter := 0; iter < 6; iter++ {
		g := randomGraph(rng, 8+rng.Intn(14), 20+rng.Intn(40))
		for _, rs := range pairs {
			r, s := rs[0], rs[1]
			h := NewHyper(g, r, s)
			f := NewFlatRS(g, r, s, 1+rng.Intn(4))
			if f.NumCells() != h.NumCells() {
				t.Fatalf("(%d,%d): %d cells, hyper has %d", r, s, f.NumCells(), h.NumCells())
			}
			hd, fd := h.Degrees(), f.Degrees()
			for c := 0; c < f.NumCells(); c++ {
				cc := int32(c)
				if fd[c] != hd[c] {
					t.Fatalf("(%d,%d): deg(%d) = %d, hyper %d", r, s, c, fd[c], hd[c])
				}
				if got, want := f.CellVertices(cc, nil), h.CellVertices(cc, nil); !reflect.DeepEqual(got, want) {
					t.Fatalf("(%d,%d): cell %d vertices %v, hyper %v", r, s, c, got, want)
				}
				if got, want := groupSet(f, cc), groupSet(h, cc); !reflect.DeepEqual(got, want) {
					t.Fatalf("(%d,%d): cell %d groups %v, hyper %v", r, s, c, got, want)
				}
			}
		}
	}
}

// groupSet collects the sorted multiset of (sorted) co-member groups of a
// cell, a layout-independent view of its s-clique incidence.
func groupSet(inst Instance, c int32) [][]int32 {
	var out [][]int32
	inst.VisitSCliques(c, func(others []int32) bool {
		grp := append([]int32(nil), others...)
		sort.Slice(grp, func(i, j int) bool { return grp[i] < grp[j] })
		out = append(out, grp)
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// TestFlatRSBuildDeterministicAcrossThreads asserts the built arrays are
// byte-identical at every worker count (slot assignment follows
// enumeration order, not scheduling).
func TestFlatRSBuildDeterministicAcrossThreads(t *testing.T) {
	g := graph.PowerLawCluster(120, 6, 0.5, 3)
	ref := NewFlatRS(g, 2, 3, 1)
	for _, threads := range []int{2, 4, 8} {
		f := NewFlatRS(g, 2, 3, threads)
		if !reflect.DeepEqual(f.offs, ref.offs) || !reflect.DeepEqual(f.members, ref.members) {
			t.Fatalf("threads=%d: arrays differ from sequential build", threads)
		}
	}
}

// TestFlatRSFlatIncidenceContract asserts the FlatIncidence arrays agree
// with the instance's own degree and group views.
func TestFlatRSFlatIncidenceContract(t *testing.T) {
	g := graph.PlantedCommunities(3, 12, 0.5, 20, 9)
	f := NewFlatRS(g, 2, 3, 2)
	var _ FlatIncidence = f
	offs, members, coAr := f.FlatIncidenceArrays()
	if coAr != 2 {
		t.Fatalf("coArity = %d, want 2 for (2,3)", coAr)
	}
	deg := f.Degrees()
	for c := 0; c < f.NumCells(); c++ {
		if got := (offs[c+1] - offs[c]) / int64(coAr); got != int64(deg[c]) {
			t.Fatalf("cell %d: %d groups in CSR, degree says %d", c, got, deg[c])
		}
	}
	if int64(len(members)) != offs[f.NumCells()] {
		t.Fatalf("members length %d, offsets end at %d", len(members), offs[f.NumCells()])
	}
	if f.IndexBytes() <= 0 {
		t.Fatal("IndexBytes not positive on a non-empty index")
	}
}

func TestFlatRSCellID(t *testing.T) {
	g := graph.Complete(5)
	f := NewFlatRS(g, 2, 3, 1)
	for c := 0; c < f.NumCells(); c++ {
		vs := f.CellVertices(int32(c), nil)
		if got := f.CellID([]uint32{vs[1], vs[0]}); got != int32(c) {
			t.Fatalf("CellID(%v) = %d, want %d", vs, got, c)
		}
	}
	if got := f.CellID([]uint32{99, 100}); got != -1 {
		t.Fatalf("CellID of absent cell = %d, want -1", got)
	}
	if f.CellLabel(0) == "" {
		t.Fatal("empty cell label")
	}
}

func TestFlatRSInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFlatRS(g, 3, 2) did not panic")
		}
	}()
	NewFlatRS(graph.Complete(4), 3, 2, 1)
}
