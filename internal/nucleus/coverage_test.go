package nucleus

import (
	"testing"

	"nucleus/internal/graph"
)

// Exercise the early-stop paths of every instance's visitors.

func TestEarlyStopAllInstances(t *testing.T) {
	g := graph.Complete(6)
	for _, inst := range []Instance{NewCore(g), NewTruss(g), NewN34(g), NewHyper(g, 2, 3), Materialize(NewTruss(g))} {
		count := 0
		inst.VisitSCliques(0, func([]int32) bool {
			count++
			return false
		})
		if count != 1 {
			t.Errorf("(%d,%d): VisitSCliques early stop visited %d", inst.R(), inst.S(), count)
		}
		count = 0
		inst.VisitNeighbors(0, func(int32) bool {
			count++
			return false
		})
		if count != 1 {
			t.Errorf("(%d,%d): VisitNeighbors early stop visited %d", inst.R(), inst.S(), count)
		}
	}
}

func TestTrussVisitNeighborsStopOnSecond(t *testing.T) {
	g := graph.Complete(4)
	inst := NewTruss(g)
	count := 0
	inst.VisitNeighbors(0, func(int32) bool {
		count++
		return count < 2 // stop on the second co-edge of the first triangle
	})
	if count != 2 {
		t.Fatalf("visited %d, want 2", count)
	}
}

func TestCellVerticesAllInstances(t *testing.T) {
	g := graph.Complete(5)
	wantLens := map[string]int{}
	for _, tc := range []struct {
		inst Instance
		want int
	}{
		{NewCore(g), 1},
		{NewTruss(g), 2},
		{NewN34(g), 3},
		{NewHyper(g, 4, 5), 4},
	} {
		vs := tc.inst.CellVertices(0, nil)
		if len(vs) != tc.want {
			t.Errorf("(%d,%d): %d vertices, want %d", tc.inst.R(), tc.inst.S(), len(vs), tc.want)
		}
		// Buffer reuse appends.
		buf := []uint32{99}
		vs2 := tc.inst.CellVertices(0, buf)
		if len(vs2) != tc.want+1 || vs2[0] != 99 {
			t.Errorf("(%d,%d): buffer not appended", tc.inst.R(), tc.inst.S())
		}
		_ = wantLens
	}
}

func TestHyperDisconnectedSmallS(t *testing.T) {
	// A graph with no s-cliques at all: every cell has degree 0.
	g := graph.Path(6)
	h := NewHyper(g, 2, 3) // edges as cells, triangles as s-cliques: none
	if h.NumCells() != 5 {
		t.Fatalf("cells = %d", h.NumCells())
	}
	for _, d := range h.Degrees() {
		if d != 0 {
			t.Fatalf("degrees = %v", h.Degrees())
		}
	}
	h.VisitSCliques(0, func([]int32) bool {
		t.Fatal("visited s-clique in triangle-free graph")
		return false
	})
	h.VisitNeighbors(0, func(int32) bool {
		t.Fatal("visited neighbor in triangle-free graph")
		return false
	})
}

func TestMaterializedDegreesCopied(t *testing.T) {
	g := graph.Complete(4)
	m := Materialize(NewCore(g))
	d1 := m.Degrees()
	d1[0] = 99
	d2 := m.Degrees()
	if d2[0] == 99 {
		t.Fatal("Degrees returned aliased storage")
	}
}

func TestCoreDegreesCopied(t *testing.T) {
	g := graph.Complete(4)
	for _, inst := range []Instance{NewTruss(g), NewN34(g), NewHyper(g, 1, 2)} {
		d1 := inst.Degrees()
		orig := d1[0]
		d1[0] = 77
		if inst.Degrees()[0] != orig {
			t.Fatalf("(%d,%d): Degrees aliased", inst.R(), inst.S())
		}
	}
}
