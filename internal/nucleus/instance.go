// Package nucleus defines the cell abstraction shared by all (r,s) nucleus
// decompositions and its concrete instances.
//
// Following the paper, an (r,s) decomposition assigns to every r-clique
// ("cell") the largest k such that the cell belongs to a k-(r,s) nucleus.
// All algorithms (peeling, SND, AND) are written against the Instance
// interface below, which exposes exactly the local structure they need:
// the s-degree of every cell, iteration over the s-cliques containing a
// cell (with the co-member cells), and iteration over neighboring cells.
//
// Concrete instances:
//
//	Core  — (1,2): cells are vertices, s-cliques are edges
//	Truss — (2,3): cells are edges, s-cliques are triangles (on the fly)
//	N34   — (3,4): cells are triangles, s-cliques are 4-cliques (on the fly)
//	Hyper — any (r,s): explicit hypergraph from k-clique enumeration
package nucleus

import (
	"fmt"

	"nucleus/internal/graph"
)

// Instance exposes the cell structure of one (r,s) decomposition.
type Instance interface {
	// R and S identify the decomposition; R < S.
	R() int
	S() int
	// NumCells returns the number of r-cliques.
	NumCells() int
	// Degrees returns the s-degree of every cell (a fresh slice).
	Degrees() []int32
	// VisitSCliques calls fn once per s-clique containing cell c, passing
	// the ids of the other member cells. The slice is reused across calls;
	// fn must not retain it. Iteration stops early when fn returns false.
	VisitSCliques(c int32, fn func(others []int32) bool)
	// VisitNeighbors calls fn for every cell that shares at least one
	// s-clique with c. Cells may be visited more than once. Iteration
	// stops early when fn returns false.
	VisitNeighbors(c int32, fn func(d int32) bool)
	// CellVertices appends the vertices of cell c to buf and returns it.
	CellVertices(c int32, buf []uint32) []uint32
	// CellLabel formats cell c for diagnostics.
	CellLabel(c int32) string
}

// ---------------------------------------------------------------------------
// Core: the (1,2) instance. Cells are vertices; s-cliques are edges; the
// co-member of the edge {u,v} from u's perspective is v.

// Core is the k-core (1,2) instance over a graph.
type Core struct {
	G *graph.Graph
}

// NewCore returns the (1,2) instance of g.
func NewCore(g *graph.Graph) *Core { return &Core{G: g} }

func (c *Core) R() int        { return 1 }
func (c *Core) S() int        { return 2 }
func (c *Core) NumCells() int { return c.G.N() }

func (c *Core) Degrees() []int32 { return c.G.Degrees() }

func (c *Core) VisitSCliques(u int32, fn func(others []int32) bool) {
	var buf [1]int32
	for _, v := range c.G.Neighbors(uint32(u)) {
		buf[0] = int32(v)
		if !fn(buf[:]) {
			return
		}
	}
}

func (c *Core) VisitNeighbors(u int32, fn func(int32) bool) {
	for _, v := range c.G.Neighbors(uint32(u)) {
		if !fn(int32(v)) {
			return
		}
	}
}

func (c *Core) CellVertices(u int32, buf []uint32) []uint32 {
	return append(buf, uint32(u))
}

func (c *Core) CellLabel(u int32) string { return fmt.Sprintf("v%d", u) }
