package nucleus

import (
	"testing"

	"nucleus/internal/graph"
)

func TestMaterializedMatchesBase(t *testing.T) {
	g := graph.PlantedCommunities(3, 12, 0.5, 20, 71)
	for _, base := range []Instance{NewCore(g), NewTruss(g), NewN34(g)} {
		m := Materialize(base)
		if m.R() != base.R() || m.S() != base.S() || m.NumCells() != base.NumCells() {
			t.Fatalf("(%d,%d): shape mismatch", base.R(), base.S())
		}
		bd, md := base.Degrees(), m.Degrees()
		for c := range bd {
			if bd[c] != md[c] {
				t.Fatalf("(%d,%d) cell %d: degree %d vs %d", base.R(), base.S(), c, bd[c], md[c])
			}
		}
		for c := int32(0); c < int32(base.NumCells()); c++ {
			var baseGroups, matGroups [][]int32
			base.VisitSCliques(c, func(o []int32) bool {
				baseGroups = append(baseGroups, append([]int32(nil), o...))
				return true
			})
			m.VisitSCliques(c, func(o []int32) bool {
				matGroups = append(matGroups, append([]int32(nil), o...))
				return true
			})
			if len(baseGroups) != len(matGroups) {
				t.Fatalf("cell %d: group count %d vs %d", c, len(baseGroups), len(matGroups))
			}
			for i := range baseGroups {
				for j := range baseGroups[i] {
					if baseGroups[i][j] != matGroups[i][j] {
						t.Fatalf("cell %d group %d differs", c, i)
					}
				}
			}
			if m.CellLabel(c) != base.CellLabel(c) {
				t.Fatalf("label mismatch at %d", c)
			}
		}
	}
}

func TestMaterializedEarlyStop(t *testing.T) {
	g := graph.Complete(6)
	m := Materialize(NewTruss(g))
	count := 0
	m.VisitSCliques(0, func([]int32) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop ignored: %d", count)
	}
	count = 0
	m.VisitNeighbors(0, func(int32) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("neighbor early stop ignored: %d", count)
	}
}

func TestMaterializedMemory(t *testing.T) {
	g := graph.Complete(5)
	m := Materialize(NewTruss(g))
	// K5: 10 edges × 3 triangles × 2 co-members = 60 entries.
	if got := m.MemoryCells(); got != 60 {
		t.Fatalf("memory cells = %d, want 60", got)
	}
}

func TestMaterializedEmpty(t *testing.T) {
	g := graph.Path(5) // no triangles
	m := Materialize(NewTruss(g))
	if m.NumCells() != 4 {
		t.Fatalf("cells = %d", m.NumCells())
	}
	m.VisitSCliques(0, func([]int32) bool {
		t.Fatal("visited s-clique on triangle-free graph")
		return false
	})
}
