package nucleus

import (
	"fmt"
	"math"

	"nucleus/internal/cliques"
	"nucleus/internal/graph"
)

// FlatIncidence is implemented by instances whose s-clique incidence is
// materialized as flat CSR arrays. Algorithms that iterate VisitSCliques
// many times (the localhi sweep kernels) detect this interface and run a
// fused array-scan fast path instead of the closure-per-s-clique generic
// path.
type FlatIncidence interface {
	Instance
	// FlatIncidenceArrays exposes the index: for cell c,
	// members[offs[c]:offs[c+1]] holds the co-member cell ids of its
	// s-cliques, coArity (= the co-member count of one s-clique, e.g. 2
	// for (2,3), 3 for (3,4)) consecutive ids per s-clique. The arrays are
	// immutable and shared; callers must not modify them.
	FlatIncidenceArrays() (offs []int64, members []int32, coArity int)
}

// IndexedTruss is the (2,3) instance over a flat triangle incidence index:
// identical semantics to Truss, but every VisitSCliques is a contiguous
// array scan instead of a sorted-merge adjacency intersection. Build one
// with NewIndexedTruss or adaptively via Build.
type IndexedTruss struct {
	G   *graph.Graph
	Inc *cliques.EdgeIncidence
	deg []int32
}

// NewIndexedTruss counts triangles per edge and materializes the flat
// incidence index, both in parallel over the given thread count.
func NewIndexedTruss(g *graph.Graph, threads int) *IndexedTruss {
	deg := cliques.CountPerEdgeParallel(g, threads)
	return &IndexedTruss{G: g, Inc: cliques.BuildEdgeIncidence(g, deg, threads), deg: deg}
}

func (t *IndexedTruss) R() int        { return 2 }
func (t *IndexedTruss) S() int        { return 3 }
func (t *IndexedTruss) NumCells() int { return int(t.G.M()) }

func (t *IndexedTruss) Degrees() []int32 {
	return append([]int32(nil), t.deg...)
}

func (t *IndexedTruss) VisitSCliques(e int32, fn func(others []int32) bool) {
	row := t.Inc.Pairs[t.Inc.Offs[e]:t.Inc.Offs[e+1]]
	for i := 0; i+2 <= len(row); i += 2 {
		if !fn(row[i : i+2 : i+2]) {
			return
		}
	}
}

func (t *IndexedTruss) VisitNeighbors(e int32, fn func(int32) bool) {
	row := t.Inc.Pairs[t.Inc.Offs[e]:t.Inc.Offs[e+1]]
	for _, d := range row {
		if !fn(d) {
			return
		}
	}
}

func (t *IndexedTruss) CellVertices(e int32, buf []uint32) []uint32 {
	u, v := t.G.Edge(int64(e))
	return append(buf, u, v)
}

func (t *IndexedTruss) CellLabel(e int32) string {
	u, v := t.G.Edge(int64(e))
	return fmt.Sprintf("e(%d,%d)", u, v)
}

func (t *IndexedTruss) FlatIncidenceArrays() ([]int64, []int32, int) {
	return t.Inc.Offs, t.Inc.Pairs, 2
}

// IndexedN34 is the (3,4) instance over a flat 4-clique incidence index:
// identical semantics to N34, but every VisitSCliques is a contiguous
// array scan instead of a three-way adjacency intersection plus three
// triangle-id map lookups per 4-clique.
type IndexedN34 struct {
	G   *graph.Graph
	Idx *cliques.TriangleIndex
	Inc *cliques.K4Incidence
	deg []int32
}

// NewIndexedN34 enumerates and indexes all triangles, counts 4-cliques per
// triangle in parallel, and materializes the flat incidence index.
func NewIndexedN34(g *graph.Graph, threads int) *IndexedN34 {
	idx := cliques.BuildTriangleIndexThreads(g, threads)
	deg := idx.K4DegreePerTriangleParallel(g, threads)
	return &IndexedN34{G: g, Idx: idx, Inc: cliques.BuildK4Incidence(g, idx, deg, threads), deg: deg}
}

func (n *IndexedN34) R() int        { return 3 }
func (n *IndexedN34) S() int        { return 4 }
func (n *IndexedN34) NumCells() int { return n.Idx.Len() }

func (n *IndexedN34) Degrees() []int32 {
	return append([]int32(nil), n.deg...)
}

func (n *IndexedN34) VisitSCliques(t int32, fn func(others []int32) bool) {
	row := n.Inc.Triples[n.Inc.Offs[t]:n.Inc.Offs[t+1]]
	for i := 0; i+3 <= len(row); i += 3 {
		if !fn(row[i : i+3 : i+3]) {
			return
		}
	}
}

func (n *IndexedN34) VisitNeighbors(t int32, fn func(int32) bool) {
	row := n.Inc.Triples[n.Inc.Offs[t]:n.Inc.Offs[t+1]]
	for _, d := range row {
		if !fn(d) {
			return
		}
	}
}

func (n *IndexedN34) CellVertices(t int32, buf []uint32) []uint32 {
	tri := n.Idx.List[t]
	return append(buf, tri[0], tri[1], tri[2])
}

func (n *IndexedN34) CellLabel(t int32) string {
	tri := n.Idx.List[t]
	return fmt.Sprintf("t(%d,%d,%d)", tri[0], tri[1], tri[2])
}

func (n *IndexedN34) FlatIncidenceArrays() ([]int64, []int32, int) {
	return n.Inc.Offs, n.Inc.Triples, 3
}

// ---------------------------------------------------------------------------
// Adaptive construction.

// Family identifies one of the first-class (r,s) cell families.
type Family int

// The first-class families.
const (
	FamilyCore  Family = iota // (1,2): cells are vertices
	FamilyTruss               // (2,3): cells are edges
	FamilyN34                 // (3,4): cells are triangles
)

func (f Family) String() string {
	switch f {
	case FamilyCore:
		return "core"
	case FamilyTruss:
		return "truss"
	case FamilyN34:
		return "n34"
	}
	return fmt.Sprintf("Family(%d)", int(f))
}

// ParseFamily maps the normalized decomposition names used across the
// library ("core", "truss", "n34") to a Family.
func ParseFamily(s string) (Family, error) {
	switch s {
	case "core":
		return FamilyCore, nil
	case "truss":
		return FamilyTruss, nil
	case "n34":
		return FamilyN34, nil
	}
	return 0, fmt.Errorf("nucleus: unknown family %q (want core, truss or n34)", s)
}

// BuildReport describes what Build constructed.
type BuildReport struct {
	Family Family
	// Indexed is true when a flat incidence index was materialized.
	Indexed bool
	// EstimatedBytes is the pre-build estimate of the flat index size that
	// was compared against the budget (0 for core, which needs no index:
	// its s-clique structure is the CSR adjacency itself).
	EstimatedBytes int64
	// IndexBytes is the memory actually held by the built index arrays
	// (0 when Indexed is false).
	IndexBytes int64
	// Reason explains why no index was built; empty when Indexed.
	Reason string
}

// Build constructs the instance for a family, materializing the flat
// s-clique incidence index when its estimated size fits the memory budget
// and falling back to the on-the-fly instance otherwise (the paper's §5
// stance: never let the index OOM what the intersection-based instance
// could still serve). memBudget is in bytes: 0 never indexes, a negative
// budget is unlimited. The s-degree counting pass — needed by indexed and
// on-the-fly instances alike — runs on the given thread count either way,
// and its counts are reused as the exact index-size estimate, so deciding
// costs nothing beyond what instance construction already pays.
func Build(g *graph.Graph, fam Family, memBudget int64, threads int) (Instance, BuildReport) {
	rep := BuildReport{Family: fam}
	switch fam {
	case FamilyCore:
		rep.Reason = "core needs no index: CSR adjacency already is the (1,2) incidence"
		return NewCore(g), rep
	case FamilyTruss:
		deg := cliques.CountPerEdgeParallel(g, threads)
		if g.M() > math.MaxInt32 {
			rep.Reason = "graph exceeds int32 edge cells"
			return &Truss{G: g, deg: deg}, rep
		}
		rep.EstimatedBytes = cliques.EdgeIncidenceBytes(g.M(), sumInt32(deg))
		if !withinBudget(rep.EstimatedBytes, memBudget) {
			rep.Reason = overBudgetReason(rep.EstimatedBytes, memBudget)
			return &Truss{G: g, deg: deg}, rep
		}
		inst := &IndexedTruss{G: g, Inc: cliques.BuildEdgeIncidence(g, deg, threads), deg: deg}
		rep.Indexed = true
		rep.IndexBytes = inst.Inc.Bytes()
		return inst, rep
	case FamilyN34:
		idx := cliques.BuildTriangleIndexThreads(g, threads)
		deg := idx.K4DegreePerTriangleParallel(g, threads)
		rep.EstimatedBytes = cliques.K4IncidenceBytes(int64(idx.Len()), sumInt32(deg))
		if !withinBudget(rep.EstimatedBytes, memBudget) {
			rep.Reason = overBudgetReason(rep.EstimatedBytes, memBudget)
			return &N34{G: g, Idx: idx, deg: deg}, rep
		}
		inst := &IndexedN34{G: g, Idx: idx, Inc: cliques.BuildK4Incidence(g, idx, deg, threads), deg: deg}
		rep.Indexed = true
		rep.IndexBytes = inst.Inc.Bytes()
		return inst, rep
	}
	panic(fmt.Sprintf("nucleus: unknown family %d", int(fam)))
}

func withinBudget(estimate, budget int64) bool {
	if budget < 0 {
		return true
	}
	return estimate <= budget
}

func overBudgetReason(estimate, budget int64) string {
	if budget == 0 {
		return "indexing disabled (budget 0)"
	}
	return fmt.Sprintf("estimated index size %d exceeds budget %d", estimate, budget)
}

func sumInt32(vals []int32) int64 {
	var s int64
	for _, v := range vals {
		s += int64(v)
	}
	return s
}
