package nucleus

// Materialized wraps any instance with precomputed, flattened s-clique
// membership lists. The paper's §5 notes the trade-off: materializing the
// hypergraph removes the repeated adjacency intersections of the
// on-the-fly instances but requires storing every s-clique — infeasible
// for the largest graphs, profitable below that. Materialize lets callers
// (and the ablation benchmarks) pick per workload.
type Materialized struct {
	base Instance
	// memberships[c] holds the co-member groups of every s-clique of c,
	// flattened in groups of groupSize[c] entries... group sizes are
	// constant per instance (len(others) is fixed by (r,s)), recorded once.
	memberships [][]int32
	groupSize   int
	degrees     []int32
}

// Materialize walks every cell's s-cliques once and stores the co-member
// lists for O(1) re-iteration.
func Materialize(base Instance) *Materialized {
	n := base.NumCells()
	m := &Materialized{
		base:        base,
		memberships: make([][]int32, n),
		degrees:     base.Degrees(),
	}
	for c := 0; c < n; c++ {
		cc := int32(c)
		var flat []int32
		base.VisitSCliques(cc, func(others []int32) bool {
			if m.groupSize == 0 {
				m.groupSize = len(others)
			}
			flat = append(flat, others...)
			return true
		})
		m.memberships[c] = flat
	}
	if m.groupSize == 0 {
		m.groupSize = 1 // degenerate: no s-cliques anywhere
	}
	return m
}

func (m *Materialized) R() int        { return m.base.R() }
func (m *Materialized) S() int        { return m.base.S() }
func (m *Materialized) NumCells() int { return len(m.memberships) }

func (m *Materialized) Degrees() []int32 {
	return append([]int32(nil), m.degrees...)
}

func (m *Materialized) VisitSCliques(c int32, fn func(others []int32) bool) {
	mem := m.memberships[c]
	gs := m.groupSize
	for i := 0; i+gs <= len(mem); i += gs {
		if !fn(mem[i : i+gs]) {
			return
		}
	}
}

func (m *Materialized) VisitNeighbors(c int32, fn func(int32) bool) {
	for _, d := range m.memberships[c] {
		if !fn(d) {
			return
		}
	}
}

func (m *Materialized) CellVertices(c int32, buf []uint32) []uint32 {
	return m.base.CellVertices(c, buf)
}

func (m *Materialized) CellLabel(c int32) string { return m.base.CellLabel(c) }

// MemoryCells returns the total number of stored co-member entries, the
// measure of the materialization's memory cost.
func (m *Materialized) MemoryCells() int64 {
	var total int64
	for _, mem := range m.memberships {
		total += int64(len(mem))
	}
	return total
}
