package nucleus

import (
	"fmt"
	"sort"

	"nucleus/internal/cliques"
	"nucleus/internal/graph"
)

// Hyper is the explicit-hypergraph instance for an arbitrary (r,s) nucleus
// decomposition, r < s. Every r-clique and s-clique of the graph is
// enumerated and materialized: cell c's s-clique list holds, for each
// s-clique containing c, the ids of its other C(s,r)-1 member r-cliques.
//
// The paper notes (§5) that materialization is infeasible for large
// networks; Hyper exists for the generality claim (any r < s), for small
// graphs, and as a correctness oracle for the on-the-fly instances.
type Hyper struct {
	r, s int
	// cells[i] is the sorted vertex set of r-clique i.
	cells [][]uint32
	// memberships[c] lists, for each s-clique containing c, the other
	// member cells, flattened: each group has groupSize entries.
	memberships [][]int32
	groupSize   int
	degrees     []int32
}

// NewHyper enumerates the r-cliques and s-cliques of g and builds the
// explicit instance. Panics if r >= s or r < 1.
func NewHyper(g *graph.Graph, r, s int) *Hyper {
	if r < 1 || r >= s {
		panic(fmt.Sprintf("nucleus: invalid (r,s) = (%d,%d)", r, s))
	}
	h := &Hyper{r: r, s: s}

	// Enumerate and index r-cliques.
	idOf := make(map[string]int32)
	cliques.ForEachKClique(g, r, func(members []uint32) bool {
		cp := append([]uint32(nil), members...)
		idOf[cliqueKey(cp)] = int32(len(h.cells))
		h.cells = append(h.cells, cp)
		return true
	})
	h.memberships = make([][]int32, len(h.cells))
	h.degrees = make([]int32, len(h.cells))
	h.groupSize = binom(s, r) - 1

	// For each s-clique, find its member r-cliques and cross-register.
	sub := make([]uint32, r)
	memberIDs := make([]int32, 0, binom(s, r))
	cliques.ForEachKClique(g, s, func(members []uint32) bool {
		memberIDs = memberIDs[:0]
		forEachSubset(members, r, sub, func() {
			id, ok := idOf[cliqueKey(sub)]
			if !ok {
				panic("nucleus: s-clique subset missing from r-clique index")
			}
			memberIDs = append(memberIDs, id)
		})
		for _, c := range memberIDs {
			h.degrees[c]++
			for _, d := range memberIDs {
				if d != c {
					h.memberships[c] = append(h.memberships[c], d)
				}
			}
		}
		return true
	})
	return h
}

func (h *Hyper) R() int        { return h.r }
func (h *Hyper) S() int        { return h.s }
func (h *Hyper) NumCells() int { return len(h.cells) }

func (h *Hyper) Degrees() []int32 { return append([]int32(nil), h.degrees...) }

func (h *Hyper) VisitSCliques(c int32, fn func(others []int32) bool) {
	mem := h.memberships[c]
	gs := h.groupSize
	for i := 0; i+gs <= len(mem); i += gs {
		if !fn(mem[i : i+gs]) {
			return
		}
	}
}

func (h *Hyper) VisitNeighbors(c int32, fn func(int32) bool) {
	for _, d := range h.memberships[c] {
		if !fn(d) {
			return
		}
	}
}

func (h *Hyper) CellVertices(c int32, buf []uint32) []uint32 {
	return append(buf, h.cells[c]...)
}

func (h *Hyper) CellLabel(c int32) string {
	return fmt.Sprintf("c%v", h.cells[c])
}

// CellID returns the id of the r-clique with the given vertices (any order),
// or -1 if absent. Intended for tests and cross-checks.
func (h *Hyper) CellID(vertices []uint32) int32 {
	cp := append([]uint32(nil), vertices...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	// Linear scan index rebuild would be wasteful; build lazily.
	for i, cell := range h.cells {
		if equalU32(cell, cp) {
			return int32(i)
		}
	}
	return -1
}

// Cells returns the vertex sets of all cells. The outer slice is fresh; the
// inner slices alias internal storage.
func (h *Hyper) Cells() [][]uint32 {
	return append([][]uint32(nil), h.cells...)
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// cliqueKey packs a sorted vertex list into a string key.
func cliqueKey(vs []uint32) string {
	b := make([]byte, 4*len(vs))
	for i, v := range vs {
		b[4*i] = byte(v)
		b[4*i+1] = byte(v >> 8)
		b[4*i+2] = byte(v >> 16)
		b[4*i+3] = byte(v >> 24)
	}
	return string(b)
}

// forEachSubset enumerates the size-k subsets of the sorted set, writing
// each into buf and invoking fn.
func forEachSubset(set []uint32, k int, buf []uint32, fn func()) {
	var rec func(start, picked int)
	rec = func(start, picked int) {
		if picked == k {
			fn()
			return
		}
		for i := start; i+(k-picked) <= len(set); i++ {
			buf[picked] = set[i]
			rec(i+1, picked+1)
		}
	}
	rec(0, 0)
}

// binom computes C(n,k) for the small arguments used here.
func binom(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1
	for i := 1; i <= k; i++ {
		res = res * (n - k + i) / i
	}
	return res
}
