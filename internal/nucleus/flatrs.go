package nucleus

import (
	"fmt"
	"sort"
	"sync"

	"nucleus/internal/cliques"
	"nucleus/internal/graph"
	"nucleus/internal/par"
)

// FlatRS is the generic (r,s) instance over a flat CSR incidence index:
// the same cell structure as Hyper — every r-clique is a cell, every
// s-clique an incidence group — but stored as two flat arrays instead of a
// ragged [][]int32 hypergraph. It implements FlatIncidence, so the generic
// (r,s) decompositions run the exact engines the first-class families use:
// the fused zero-allocation sweep kernel of internal/localhi and the
// parallel frontier peeling of internal/peel.
//
// Enumeration cost is unchanged from Hyper (every r- and s-clique is still
// visited once), but the index is one contiguous allocation per array, the
// per-cell groups are cache-dense, and the scatter pass parallelizes.
type FlatRS struct {
	r, s int
	// cellVerts holds the sorted vertex set of every cell, r entries per
	// cell.
	cellVerts []uint32
	// offs/members is the CSR incidence: cell c's s-clique groups are
	// members[offs[c]:offs[c+1]], coArity co-member cell ids per group.
	offs    []int64
	members []int32
	coArity int
	deg     []int32
}

// NewFlatRS enumerates the r-cliques and s-cliques of g (r < s) and builds
// the flat incidence index. Both enumerations fan out across the given
// number of workers via the chunk-ordered parallel enumerator, which
// reproduces the sequential emission order — so dense cell ids are
// deterministic and identical to Hyper's at every thread count. Panics if
// r >= s or r < 1, like NewHyper.
func NewFlatRS(g *graph.Graph, r, s, threads int) *FlatRS {
	if r < 1 || r >= s {
		panic(fmt.Sprintf("nucleus: invalid (r,s) = (%d,%d)", r, s))
	}
	if threads < 1 {
		threads = 1
	}
	f := &FlatRS{r: r, s: s, coArity: binom(s, r) - 1}

	// Enumerate and index the r-cliques; ids are positions in the flat list.
	f.cellVerts = cliques.KCliquesFlat(g, r, threads)
	n := len(f.cellVerts) / r
	idOf := make(map[string]int32, n)
	for c := 0; c < n; c++ {
		idOf[cliqueKey(f.cellVerts[c*r:(c+1)*r])] = int32(c)
	}
	f.deg = make([]int32, n)

	// Pass 1: enumerate the s-cliques once, resolving each to its member
	// cell ids (groups of groupSize = coArity+1), and count s-degrees. The
	// map is read-only here, so resolution shards over the s-cliques.
	groupSize := f.coArity + 1
	sFlat := cliques.KCliquesFlat(g, s, threads)
	numS := len(sFlat) / s
	var subPool = sync.Pool{New: func() any {
		b := make([]uint32, r)
		return &b
	}}
	groups := par.Collect(numS, 256, threads, func(si int, buf []int32) []int32 {
		sub := *subPool.Get().(*[]uint32)
		forEachSubset(sFlat[si*s:(si+1)*s], r, sub, func() {
			id, ok := idOf[cliqueKey(sub)]
			if !ok {
				panic("nucleus: s-clique subset missing from r-clique index")
			}
			buf = append(buf, id)
		})
		subPool.Put(&sub)
		return buf
	})
	for _, id := range groups {
		f.deg[id]++
	}

	// Pass 2: prefix-sum the degrees into CSR offsets and record each
	// membership's write slot. Slot assignment follows enumeration order,
	// so the built arrays are byte-identical at every thread count.
	f.offs = make([]int64, n+1)
	for c := 0; c < n; c++ {
		f.offs[c+1] = f.offs[c] + int64(f.deg[c])*int64(f.coArity)
	}
	cursor := append([]int64(nil), f.offs[:n]...)
	slots := make([]int64, len(groups))
	for i, c := range groups {
		slots[i] = cursor[c]
		cursor[c] += int64(f.coArity)
	}

	// Pass 3: scatter every group's co-members into its recorded slots,
	// in parallel over s-cliques (disjoint writes).
	f.members = make([]int32, f.offs[n])
	numGroups := len(groups) / groupSize
	par.ForEach(numGroups, 512, threads, func(lo, hi int) {
		for gi := lo; gi < hi; gi++ {
			grp := groups[gi*groupSize : (gi+1)*groupSize]
			for j := range grp {
				w := slots[gi*groupSize+j]
				for m, d := range grp {
					if m == j {
						continue
					}
					f.members[w] = d
					w++
				}
			}
		}
	})
	return f
}

func (f *FlatRS) R() int        { return f.r }
func (f *FlatRS) S() int        { return f.s }
func (f *FlatRS) NumCells() int { return len(f.deg) }

func (f *FlatRS) Degrees() []int32 { return append([]int32(nil), f.deg...) }

func (f *FlatRS) VisitSCliques(c int32, fn func(others []int32) bool) {
	row := f.members[f.offs[c]:f.offs[c+1]]
	ca := f.coArity
	for i := 0; i+ca <= len(row); i += ca {
		if !fn(row[i : i+ca : i+ca]) {
			return
		}
	}
}

func (f *FlatRS) VisitNeighbors(c int32, fn func(int32) bool) {
	for _, d := range f.members[f.offs[c]:f.offs[c+1]] {
		if !fn(d) {
			return
		}
	}
}

func (f *FlatRS) CellVertices(c int32, buf []uint32) []uint32 {
	return append(buf, f.cellVerts[int(c)*f.r:int(c+1)*f.r]...)
}

func (f *FlatRS) CellLabel(c int32) string {
	return fmt.Sprintf("c%v", f.cellVerts[int(c)*f.r:int(c+1)*f.r])
}

func (f *FlatRS) FlatIncidenceArrays() ([]int64, []int32, int) {
	return f.offs, f.members, f.coArity
}

// CellID returns the id of the r-clique with the given vertices (any
// order), or -1 if absent. Intended for tests and cross-checks.
func (f *FlatRS) CellID(vertices []uint32) int32 {
	cp := append([]uint32(nil), vertices...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	for c := 0; c < f.NumCells(); c++ {
		if equalU32(f.cellVerts[c*f.r:(c+1)*f.r], cp) {
			return int32(c)
		}
	}
	return -1
}

// IndexBytes returns the memory held by the flat incidence arrays.
func (f *FlatRS) IndexBytes() int64 {
	return int64(len(f.offs))*8 + int64(len(f.members))*4 + int64(len(f.cellVerts))*4
}
