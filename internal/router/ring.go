package router

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring mapping graph names to shard groups.
// Each group contributes vnodes virtual points (FNV-64a of
// "name#replica-index"), so adding or removing one group remaps only
// ~1/len(groups) of the keyspace instead of rehashing everything. The
// ring is built once at construction and never mutated — failover swaps
// a group's primary, not the group's position in the keyspace.
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	group int
}

func buildRing(groupNames []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &ring{points: make([]ringPoint, 0, len(groupNames)*vnodes)}
	for gi, name := range groupNames {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(name + "#" + strconv.Itoa(v)),
				group: gi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break deterministically so two builds of the same topology
		// route identically even on a 64-bit hash collision.
		return r.points[i].group < r.points[j].group
	})
	return r
}

// groupFor maps a graph name to its owning group index: the first ring
// point at or clockwise of the key's hash, wrapping at the top.
func (r *ring) groupFor(name string) int {
	h := hash64(name)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].group
}

// hash64 is FNV-64a finished with a murmur3-style avalanche. Raw FNV of
// short strings ("shard0#17", "graph-42") leaves the high bits badly
// clumped — measured on a 3-group/64-vnode ring it starved one group of
// its entire keyspace share — and the finalizer restores uniformity.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
