package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"

	"nucleus/internal/replica"
)

// GroupCheck is one group's outcome in a CheckOnce sweep.
type GroupCheck struct {
	Group      string `json:"group"`
	Primary    string `json:"primary"`
	Generation uint64 `json:"generation"`
	// Promoted is set when this sweep failed the old primary over to a
	// replica.
	Promoted bool `json:"promoted"`
	// Degraded is set when the primary is down and no replica could be
	// promoted — the group is read-only at best.
	Degraded bool   `json:"degraded"`
	Error    string `json:"error,omitempty"`
}

// CheckOnce probes every group's primary and fails over the ones that
// are down: the reachable replica with the highest MaxVersion is
// promoted under generation+1 (which fences the deposed primary's
// stamped writes), and the surviving replicas are repointed at it. The
// sweep is synchronous and idempotent — a healthy fleet is a no-op — so
// tests and the POST /router/check endpoint can drive it
// deterministically.
func (rt *Router) CheckOnce() []GroupCheck {
	rt.checks.Add(1)
	out := make([]GroupCheck, len(rt.groups))
	for i, g := range rt.groups {
		out[i] = rt.checkGroup(g)
		if out[i].Error != "" {
			rt.failedChecks.Add(1)
		}
	}
	return out
}

func (rt *Router) checkGroup(g *group) GroupCheck {
	g.mu.Lock()
	primaryIdx := g.primary
	gen := g.generation
	g.mu.Unlock()
	primary := g.nodes[primaryIdx]

	res := GroupCheck{Group: g.name, Primary: primary.name, Generation: gen}

	// Probe everybody; replica statuses double as promotion fitness.
	statuses := make([]*replica.NodeStatus, len(g.nodes))
	for j, n := range g.nodes {
		st, err := rt.nodeStatus(n)
		n.healthy.Store(err == nil)
		if err != nil {
			continue
		}
		statuses[j] = st
		n.mu.Lock()
		n.maxVersion = st.MaxVersion
		n.mu.Unlock()
	}

	if st := statuses[primaryIdx]; st != nil {
		// Primary healthy: adopt any higher generation it reports (e.g.
		// an operator promoted it out-of-band).
		if st.Generation > gen {
			g.mu.Lock()
			if st.Generation > g.generation {
				g.generation = st.Generation
			}
			res.Generation = g.generation
			g.mu.Unlock()
		}
		return res
	}

	// Primary down: pick the most caught-up reachable replica.
	best := -1
	for j, st := range statuses {
		if j == primaryIdx || st == nil || st.Role == replica.RolePrimary {
			continue
		}
		if best < 0 || st.MaxVersion > statuses[best].MaxVersion {
			best = j
		}
	}
	if best < 0 {
		res.Degraded = true
		res.Error = fmt.Sprintf("group %s: primary %s is down and no replica is reachable", g.name, primary.name)
		return res
	}

	candidate := g.nodes[best]
	newGen := gen + 1
	if err := rt.postJSON(candidate, "/replication/promote", promoteBody{Generation: newGen}); err != nil {
		res.Degraded = true
		res.Error = fmt.Sprintf("group %s: promoting %s to generation %d: %v", g.name, candidate.name, newGen, err)
		return res
	}
	g.mu.Lock()
	g.primary = best
	g.generation = newGen
	g.mu.Unlock()
	rt.promotions.Add(1)
	log.Printf("nucleus-router: group %s: promoted %s to primary at generation %d (old primary %s fenced)",
		g.name, candidate.name, newGen, primary.name)

	// Repoint the surviving replicas at the new primary. The deposed
	// primary is NOT repointed: if it resurrects it still claims the
	// primary role, its repoint would 409, and its stale generation
	// fences everything it tries to serve or pull.
	for j, n := range g.nodes {
		if j == best || j == primaryIdx || statuses[j] == nil {
			continue
		}
		if err := rt.postJSON(n, "/replication/repoint", repointBody{Primary: candidate.url.String(), Generation: newGen}); err != nil {
			log.Printf("nucleus-router: group %s: repointing %s at %s: %v", g.name, n.name, candidate.name, err)
		}
	}

	res.Primary = candidate.name
	res.Generation = newGen
	res.Promoted = true
	return res
}

type promoteBody struct {
	Generation uint64 `json:"generation"`
}

type repointBody struct {
	Primary    string `json:"primary"`
	Generation uint64 `json:"generation"`
}

func (rt *Router) nodeStatus(n *node) (*replica.NodeStatus, error) {
	resp, err := rt.probe.Get(n.url.String() + "/replication/status")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status probe: %d", resp.StatusCode)
	}
	var st replica.NodeStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func (rt *Router) postJSON(n *node, path string, body any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := rt.probe.Post(n.url.String()+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", path, resp.StatusCode)
	}
	return nil
}
