package router

import (
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestDocsRoutesConsistency is the router's docs drift gate, the twin
// of internal/server's: every route registered in routes() must appear
// in a `### ` heading of docs/REPLICATION.md's endpoint reference, and
// every route documented there must still be registered. The heading
// convention is one or more backtick-quoted "METHOD /path" per heading
// (query strings ignored).
func TestDocsRoutesConsistency(t *testing.T) {
	src, err := os.ReadFile("router.go")
	if err != nil {
		t.Fatal(err)
	}
	registered := map[string]bool{}
	for _, m := range regexp.MustCompile(`mux\.HandleFunc\("([A-Z]+ [^"]+)"`).FindAllStringSubmatch(string(src), -1) {
		registered[m[1]] = true
	}
	if len(registered) == 0 {
		t.Fatal("no routes found in router.go; did routes() move?")
	}

	doc, err := os.ReadFile("../../docs/REPLICATION.md")
	if err != nil {
		t.Fatal(err)
	}
	documented := map[string]bool{}
	routeRe := regexp.MustCompile("`(GET|POST|PUT|DELETE|PATCH) (/[^`\\s?\\[]*)")
	for _, line := range strings.Split(string(doc), "\n") {
		if !strings.HasPrefix(line, "### ") {
			continue
		}
		for _, m := range routeRe.FindAllStringSubmatch(line, -1) {
			documented[m[1]+" "+m[2]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("no route headings found in docs/REPLICATION.md; did the heading convention change?")
	}

	var missing, stale []string
	for r := range registered {
		if !documented[r] {
			missing = append(missing, r)
		}
	}
	for r := range documented {
		if !registered[r] {
			stale = append(stale, r)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	if len(missing) > 0 {
		t.Errorf("routes registered in internal/router but missing from docs/REPLICATION.md headings:\n  %s",
			strings.Join(missing, "\n  "))
	}
	if len(stale) > 0 {
		t.Errorf("routes documented in docs/REPLICATION.md but not registered in internal/router:\n  %s",
			strings.Join(stale, "\n  "))
	}
}
