package router

import (
	"net/http"
	"time"

	"nucleus/internal/promtext"
	"nucleus/internal/replica"
)

// handleMetrics serves GET /metrics: the router's proxy counters and
// the fleet topology it believes in, in Prometheus text format. A
// promotion shows up as nucleusrouter_group_generation ticking up and
// the role labels flipping on nucleusrouter_node_primary.
func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var p promtext.Writer

	p.Gauge("nucleusrouter_uptime_seconds", "Seconds since the router started.",
		time.Since(rt.start).Seconds())
	p.Counter("nucleusrouter_requests_total", "HTTP requests received.", float64(rt.requests.Load()))
	p.Counter("nucleusrouter_proxied_reads_total", "Read requests proxied to replicas.", float64(rt.proxiedReads.Load()))
	p.Counter("nucleusrouter_proxied_writes_total", "Mutations proxied to group primaries.", float64(rt.proxiedWrites.Load()))
	p.Counter("nucleusrouter_proxy_errors_total", "Proxied requests that failed in transit.", float64(rt.proxyErrors.Load()))
	p.Counter("nucleusrouter_fenced_writes_total", "Proxied writes a node's generation fence rejected.", float64(rt.fencedWrites.Load()))
	p.Counter("nucleusrouter_jobs_routed_total", "Job requests routed by node-suffixed id.", float64(rt.jobsRouted.Load()))
	p.Counter("nucleusrouter_checks_total", "Fleet health sweeps performed.", float64(rt.checks.Load()))
	p.Counter("nucleusrouter_failed_checks_total", "Group checks that ended degraded.", float64(rt.failedChecks.Load()))
	p.Counter("nucleusrouter_promotions_total", "Replica promotions this router performed.", float64(rt.promotions.Load()))
	p.Gauge("nucleusrouter_groups", "Configured shard groups.", float64(len(rt.groups)))

	healthy := 0
	for _, gv := range rt.groupViews() {
		gl := map[string]string{"group": gv.Name}
		p.LabeledGauge("nucleusrouter_group_generation", "Cluster generation the router stamps on this group's writes.", gl, float64(gv.Generation))
		for _, nv := range gv.Nodes {
			if nv.Healthy {
				healthy++
			}
			nl := map[string]string{"group": gv.Name, "node": nv.Name}
			h := 0.0
			if nv.Healthy {
				h = 1
			}
			p.LabeledGauge("nucleusrouter_node_healthy", "1 when the node's last probe or proxy succeeded.", nl, h)
			pr := 0.0
			if nv.Role == replica.RolePrimary {
				pr = 1
			}
			p.LabeledGauge("nucleusrouter_node_primary", "1 for the node the router treats as the group's primary.", nl, pr)
			p.LabeledGauge("nucleusrouter_node_max_version", "Highest graph version the node reported on its last probe.", nl, float64(nv.MaxVersion))
		}
	}
	p.Gauge("nucleusrouter_nodes_healthy", "Fleet nodes whose last contact succeeded.", float64(healthy))

	w.Header().Set("Content-Type", promtext.ContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(p.Bytes())
}
