// Package router implements nucleus-router: a stateless front door for
// a fleet of replicated nucleusd shard groups (docs/REPLICATION.md).
// Graph names are consistent-hashed across groups; within a group,
// mutations are proxied to the primary stamped with the group's cluster
// generation (so a deposed primary fences them), reads fan out
// round-robin across the replicas, and async job traffic sticks to the
// node that owns the job via a node suffix the router folds into the
// job id. A health loop probes each group's primary and, on failure,
// promotes the most caught-up replica under a freshly incremented
// generation and repoints the survivors.
package router

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nucleus/internal/replica"
)

// maxPeekBytes bounds the request bodies the router buffers to discover
// the target graph (POST /jobs, POST /estimate/*). Mutation and upload
// bodies are streamed, never buffered.
const maxPeekBytes = 8 << 20

// GroupConfig declares one shard group: a primary and its read
// replicas, all base URLs.
type GroupConfig struct {
	Name     string   `json:"name"`
	Primary  string   `json:"primary"`
	Replicas []string `json:"replicas"`
}

// Config configures a Router.
type Config struct {
	Groups []GroupConfig
	// VNodes is the virtual-node count per group on the hash ring
	// (default 64).
	VNodes int
	// Client performs all proxied requests (default: http.Client with a
	// 30s timeout). Health probes use ProbeClient.
	Client *http.Client
	// ProbeClient performs health/status probes (default: 2s timeout) —
	// kept separate so a hung primary fails probes fast while long
	// decompose reads keep streaming.
	ProbeClient *http.Client
	// Generation is the starting cluster generation for every group
	// (default 1). Health checks adopt higher generations observed on
	// the nodes themselves.
	Generation uint64
}

// node is one nucleusd backend.
type node struct {
	name    string // "<group>/p0", "<group>/r1" — the job-id suffix
	url     *url.URL
	healthy atomic.Bool

	mu         sync.Mutex
	maxVersion uint64 // from the last status probe
}

// group is one shard: an ordered node list with a current primary.
type group struct {
	name  string
	nodes []*node

	mu         sync.Mutex
	primary    int // index into nodes
	generation uint64

	rr atomic.Uint64 // round-robin cursor over replicas
}

func (g *group) primaryNode() (*node, uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.nodes[g.primary], g.generation
}

// readNode picks a healthy replica round-robin, falling back to the
// primary when no replica is available — a one-node group serves its
// own reads.
func (g *group) readNode() *node {
	g.mu.Lock()
	primary := g.primary
	nodes := g.nodes
	g.mu.Unlock()
	nrep := len(nodes) - 1
	if nrep > 0 {
		start := g.rr.Add(1)
		for i := 0; i < nrep; i++ {
			// Walk indices skipping the primary slot.
			idx := int((start + uint64(i)) % uint64(nrep))
			ri := 0
			for j := range nodes {
				if j == primary {
					continue
				}
				if ri == idx {
					if nodes[j].healthy.Load() {
						return nodes[j]
					}
					break
				}
				ri++
			}
		}
	}
	return nodes[primary]
}

// Router is the http.Handler. Zero value is not usable; construct with
// New.
type Router struct {
	client *http.Client
	probe  *http.Client
	groups []*group
	ring   *ring
	byName map[string]*node
	mux    *http.ServeMux
	start  time.Time

	requests      atomic.Int64
	proxiedReads  atomic.Int64
	proxiedWrites atomic.Int64
	proxyErrors   atomic.Int64
	fencedWrites  atomic.Int64 // 409s the fence returned for proxied writes
	jobsRouted    atomic.Int64
	checks        atomic.Int64
	promotions    atomic.Int64
	failedChecks  atomic.Int64

	running  atomic.Bool
	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}
}

// New builds a Router over the configured groups. Every group needs a
// distinct name free of '@' and '/' (they delimit job-id suffixes) and
// at least a primary URL.
func New(cfg Config) (*Router, error) {
	if len(cfg.Groups) == 0 {
		return nil, errors.New("router: no shard groups configured")
	}
	rt := &Router{
		client: cfg.Client,
		probe:  cfg.ProbeClient,
		byName: map[string]*node{},
		start:  time.Now(),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	if rt.client == nil {
		rt.client = &http.Client{Timeout: 30 * time.Second}
	}
	if rt.probe == nil {
		rt.probe = &http.Client{Timeout: 2 * time.Second}
	}
	gen := cfg.Generation
	if gen == 0 {
		gen = 1
	}
	var names []string
	seen := map[string]bool{}
	for _, gc := range cfg.Groups {
		if gc.Name == "" || strings.ContainsAny(gc.Name, "@/") {
			return nil, fmt.Errorf("router: group name %q must be non-empty and free of '@' and '/'", gc.Name)
		}
		if seen[gc.Name] {
			return nil, fmt.Errorf("router: duplicate group %q", gc.Name)
		}
		seen[gc.Name] = true
		if gc.Primary == "" {
			return nil, fmt.Errorf("router: group %q has no primary", gc.Name)
		}
		g := &group{name: gc.Name, generation: gen}
		add := func(raw, nodeName string) error {
			u, err := url.Parse(raw)
			if err != nil || u.Scheme == "" || u.Host == "" {
				return fmt.Errorf("router: group %q: bad node URL %q", gc.Name, raw)
			}
			n := &node{name: nodeName, url: u}
			n.healthy.Store(true)
			g.nodes = append(g.nodes, n)
			rt.byName[nodeName] = n
			return nil
		}
		if err := add(gc.Primary, gc.Name+"-p0"); err != nil {
			return nil, err
		}
		for i, r := range gc.Replicas {
			if err := add(r, fmt.Sprintf("%s-r%d", gc.Name, i)); err != nil {
				return nil, err
			}
		}
		rt.groups = append(rt.groups, g)
		names = append(names, gc.Name)
	}
	rt.ring = buildRing(names, cfg.VNodes)
	rt.mux = rt.routes()
	return rt, nil
}

func (rt *Router) routes() *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /stats", rt.handleStats)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /router/groups", rt.handleGroups)
	mux.HandleFunc("POST /router/check", rt.handleCheck)

	mux.HandleFunc("GET /graphs", rt.handleListGraphs)
	mux.HandleFunc("POST /graphs/{name}", rt.handleWrite)
	mux.HandleFunc("POST /graphs/{name}/generate", rt.handleWrite)
	mux.HandleFunc("POST /graphs/{name}/edges", rt.handleWrite)
	mux.HandleFunc("DELETE /graphs/{name}", rt.handleWrite)
	mux.HandleFunc("GET /graphs/{name}", rt.handleRead)
	mux.HandleFunc("GET /graphs/{name}/core", rt.handleRead)
	mux.HandleFunc("GET /graphs/{name}/decompose", rt.handleRead)
	mux.HandleFunc("GET /graphs/{name}/hierarchy", rt.handleRead)
	mux.HandleFunc("GET /graphs/{name}/nuclei", rt.handleRead)
	mux.HandleFunc("GET /graphs/{name}/densest", rt.handleRead)

	mux.HandleFunc("POST /estimate/core", rt.handleEstimate)
	mux.HandleFunc("POST /estimate/truss", rt.handleEstimate)

	mux.HandleFunc("POST /jobs", rt.handleSubmitJob)
	mux.HandleFunc("GET /jobs", rt.handleListJobs)
	mux.HandleFunc("GET /jobs/{id}", rt.handleJob)
	mux.HandleFunc("GET /jobs/{id}/result", rt.handleJob)
	mux.HandleFunc("GET /jobs/{id}/progress", rt.handleJob)
	mux.HandleFunc("GET /jobs/{id}/stream", rt.handleJob)
	mux.HandleFunc("DELETE /jobs/{id}", rt.handleJob)

	return mux
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	rt.mux.ServeHTTP(w, r)
}

// Run probes the fleet every interval until Stop. The binary calls
// this; tests drive CheckOnce (or POST /router/check) directly.
func (rt *Router) Run(interval time.Duration) {
	rt.running.Store(true)
	defer close(rt.doneCh)
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-rt.stopCh:
			return
		case <-t.C:
			rt.CheckOnce()
		}
	}
}

// Stop ends Run and waits for it to exit (no-op when Run never ran).
func (rt *Router) Stop() {
	rt.stopOnce.Do(func() { close(rt.stopCh) })
	if rt.running.Load() {
		<-rt.doneCh
	}
}

func (rt *Router) groupFor(name string) *group {
	return rt.groups[rt.ring.groupFor(name)]
}

// ---------------------------------------------------------------------------
// Proxying.

// forward proxies r to n at the same path and query. gen > 0 stamps the
// cluster generation header (mutations). rewrite, when non-nil, buffers
// a 2xx JSON response and transforms it (job-id suffixing); otherwise
// the body streams through with per-chunk flushes so SSE and long
// result payloads flow immediately.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, n *node, gen uint64, body io.Reader, rewrite func([]byte) []byte) {
	target := *n.url
	target.Path = strings.TrimSuffix(n.url.Path, "/") + r.URL.Path
	target.RawQuery = r.URL.RawQuery
	if body == nil {
		body = r.Body
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, target.String(), body)
	if err != nil {
		rt.proxyErrors.Add(1)
		writeError(w, http.StatusBadGateway, "router: building upstream request: %v", err)
		return
	}
	copyHeader(req.Header, r.Header)
	req.Header.Del("Connection")
	if gen > 0 {
		req.Header.Set(replica.GenerationHeader, fmt.Sprint(gen))
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.proxyErrors.Add(1)
		n.healthy.Store(false)
		writeError(w, http.StatusBadGateway, "router: upstream %s: %v", n.name, err)
		return
	}
	defer resp.Body.Close()
	n.healthy.Store(true)
	if gen > 0 && resp.StatusCode == http.StatusConflict {
		rt.fencedWrites.Add(1)
	}

	if rewrite != nil && resp.StatusCode >= 200 && resp.StatusCode < 300 {
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			rt.proxyErrors.Add(1)
			writeError(w, http.StatusBadGateway, "router: reading upstream response: %v", err)
			return
		}
		data = rewrite(data)
		copyHeader(w.Header(), resp.Header)
		w.Header().Del("Content-Length")
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(data)
		return
	}

	copyHeader(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	flushCopy(w, resp.Body)
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// flushCopy streams src to w, flushing after every chunk so SSE events
// and incremental payloads reach the client as they arrive.
func flushCopy(w http.ResponseWriter, src io.Reader) {
	f, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		nr, err := src.Read(buf)
		if nr > 0 {
			if _, werr := w.Write(buf[:nr]); werr != nil {
				return
			}
			if f != nil {
				f.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Graph traffic.

func (rt *Router) handleWrite(w http.ResponseWriter, r *http.Request) {
	g := rt.groupFor(r.PathValue("name"))
	n, gen := g.primaryNode()
	rt.proxiedWrites.Add(1)
	rt.forward(w, r, n, gen, nil, nil)
}

func (rt *Router) handleRead(w http.ResponseWriter, r *http.Request) {
	g := rt.groupFor(r.PathValue("name"))
	rt.proxiedReads.Add(1)
	rt.forward(w, r, g.readNode(), 0, nil, nil)
}

// handleListGraphs fans GET /graphs across every group's read node and
// merges the arrays, sorted by graph name for a stable composite view.
func (rt *Router) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	rt.proxiedReads.Add(1)
	type item struct {
		name string
		raw  json.RawMessage
	}
	var items []item
	for _, g := range rt.groups {
		n := g.readNode()
		list, err := rt.fetchJSONList(r, n)
		if err != nil {
			rt.proxyErrors.Add(1)
			writeError(w, http.StatusBadGateway, "router: listing graphs on %s: %v", n.name, err)
			return
		}
		for _, raw := range list {
			var v struct {
				Name string `json:"name"`
			}
			_ = json.Unmarshal(raw, &v)
			items = append(items, item{v.Name, raw})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].name < items[j].name })
	out := make([]json.RawMessage, len(items))
	for i, it := range items {
		out[i] = it.raw
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) fetchJSONList(r *http.Request, n *node) ([]json.RawMessage, error) {
	target := *n.url
	target.Path = strings.TrimSuffix(n.url.Path, "/") + r.URL.Path
	target.RawQuery = r.URL.RawQuery
	req, err := http.NewRequestWithContext(r.Context(), "GET", target.String(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		n.healthy.Store(false)
		return nil, err
	}
	defer resp.Body.Close()
	n.healthy.Store(true)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var list []json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return nil, err
	}
	return list, nil
}

// ---------------------------------------------------------------------------
// Body-addressed traffic: the graph name lives in the JSON body.

// peekGraph buffers the body (bounded) and extracts the "graph" field.
func peekGraph(w http.ResponseWriter, r *http.Request) (string, []byte, bool) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxPeekBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "router: reading request body: %v", err)
		return "", nil, false
	}
	if len(data) > maxPeekBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "router: request body exceeds the %d-byte routing limit", maxPeekBytes)
		return "", nil, false
	}
	var v struct {
		Graph string `json:"graph"`
	}
	if err := json.Unmarshal(data, &v); err != nil {
		writeError(w, http.StatusBadRequest, "router: parsing request body: %v", err)
		return "", nil, false
	}
	if v.Graph == "" {
		writeError(w, http.StatusBadRequest, "router: request body has no graph field to route on")
		return "", nil, false
	}
	return v.Graph, data, true
}

func (rt *Router) handleEstimate(w http.ResponseWriter, r *http.Request) {
	name, body, ok := peekGraph(w, r)
	if !ok {
		return
	}
	rt.proxiedReads.Add(1)
	rt.forward(w, r, rt.groupFor(name).readNode(), 0, bytes.NewReader(body), nil)
}

// ---------------------------------------------------------------------------
// Jobs: sticky routing by node-suffixed id.

// splitJobID parses "<id>@<group>/<node>" back into its parts.
func (rt *Router) splitJobID(id string) (inner string, n *node, ok bool) {
	i := strings.LastIndex(id, "@")
	if i < 0 {
		return "", nil, false
	}
	n, ok = rt.byName[id[i+1:]]
	return id[:i], n, ok
}

// suffixJobIDs rewrites the "id" field of a job object (or each element
// of a job array) to "<id>@<node>", making the id self-routing.
func suffixJobIDs(data []byte, nodeName string) []byte {
	stamp := func(raw json.RawMessage) json.RawMessage {
		var obj map[string]json.RawMessage
		if err := json.Unmarshal(raw, &obj); err != nil {
			return raw
		}
		var id string
		if err := json.Unmarshal(obj["id"], &id); err != nil || id == "" {
			return raw
		}
		idRaw, _ := json.Marshal(id + "@" + nodeName)
		obj["id"] = idRaw
		out, err := json.Marshal(obj)
		if err != nil {
			return raw
		}
		return out
	}
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var list []json.RawMessage
		if err := json.Unmarshal(trimmed, &list); err != nil {
			return data
		}
		for i, raw := range list {
			list[i] = stamp(raw)
		}
		out, err := json.Marshal(list)
		if err != nil {
			return data
		}
		return out
	}
	return stamp(data)
}

func (rt *Router) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	name, body, ok := peekGraph(w, r)
	if !ok {
		return
	}
	n := rt.groupFor(name).readNode()
	rt.jobsRouted.Add(1)
	rt.forward(w, r, n, 0, bytes.NewReader(body), func(data []byte) []byte {
		return suffixJobIDs(data, n.name)
	})
}

func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	inner, n, ok := rt.splitJobID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "router: job id %q carries no known node suffix", r.PathValue("id"))
		return
	}
	rt.jobsRouted.Add(1)
	// Rebuild the path with the node-local id.
	r2 := r.Clone(r.Context())
	r2.URL.Path = "/jobs/" + inner + strings.TrimPrefix(r.URL.Path, "/jobs/"+r.PathValue("id"))
	rewrite := func(data []byte) []byte { return suffixJobIDs(data, n.name) }
	if strings.HasSuffix(r.URL.Path, "/result") || strings.HasSuffix(r.URL.Path, "/progress") || strings.HasSuffix(r.URL.Path, "/stream") {
		rewrite = nil // stream large/SSE payloads; they carry no routable id
	}
	rt.forward(w, r2, n, 0, nil, rewrite)
}

// handleListJobs fans GET /jobs across every node and merges the job
// arrays, each id suffixed with its owning node.
func (rt *Router) handleListJobs(w http.ResponseWriter, r *http.Request) {
	var out []json.RawMessage
	for _, g := range rt.groups {
		for _, n := range g.nodes {
			if !n.healthy.Load() {
				continue
			}
			list, err := rt.fetchJSONList(r, n)
			if err != nil {
				continue // a dead node's jobs are unreachable, not fatal
			}
			for _, raw := range list {
				out = append(out, json.RawMessage(suffixJobIDs(raw, n.name)))
			}
		}
	}
	rt.jobsRouted.Add(1)
	writeJSON(w, http.StatusOK, out)
}

// ---------------------------------------------------------------------------
// Router introspection.

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// groupView is one group in GET /router/groups and /stats.
type groupView struct {
	Name       string     `json:"name"`
	Generation uint64     `json:"generation"`
	Primary    string     `json:"primary"`
	Nodes      []nodeView `json:"nodes"`
}

type nodeView struct {
	Name       string `json:"name"`
	URL        string `json:"url"`
	Role       string `json:"role"`
	Healthy    bool   `json:"healthy"`
	MaxVersion uint64 `json:"maxVersion"`
}

func (rt *Router) groupViews() []groupView {
	out := make([]groupView, len(rt.groups))
	for i, g := range rt.groups {
		g.mu.Lock()
		gv := groupView{Name: g.name, Generation: g.generation, Primary: g.nodes[g.primary].name}
		for j, n := range g.nodes {
			role := replica.RoleReplica
			if j == g.primary {
				role = replica.RolePrimary
			}
			n.mu.Lock()
			mv := n.maxVersion
			n.mu.Unlock()
			gv.Nodes = append(gv.Nodes, nodeView{
				Name: n.name, URL: n.url.String(), Role: role,
				Healthy: n.healthy.Load(), MaxVersion: mv,
			})
		}
		g.mu.Unlock()
		out[i] = gv
	}
	return out
}

func (rt *Router) handleGroups(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, rt.groupViews())
}

// routerStats is the GET /stats document.
type routerStats struct {
	UptimeSeconds float64     `json:"uptimeSeconds"`
	Requests      int64       `json:"requests"`
	ProxiedReads  int64       `json:"proxiedReads"`
	ProxiedWrites int64       `json:"proxiedWrites"`
	ProxyErrors   int64       `json:"proxyErrors"`
	FencedWrites  int64       `json:"fencedWrites"`
	JobsRouted    int64       `json:"jobsRouted"`
	Checks        int64       `json:"checks"`
	FailedChecks  int64       `json:"failedChecks"`
	Promotions    int64       `json:"promotions"`
	Groups        []groupView `json:"groups"`
}

func (rt *Router) statsView() routerStats {
	return routerStats{
		UptimeSeconds: time.Since(rt.start).Seconds(),
		Requests:      rt.requests.Load(),
		ProxiedReads:  rt.proxiedReads.Load(),
		ProxiedWrites: rt.proxiedWrites.Load(),
		ProxyErrors:   rt.proxyErrors.Load(),
		FencedWrites:  rt.fencedWrites.Load(),
		JobsRouted:    rt.jobsRouted.Load(),
		Checks:        rt.checks.Load(),
		FailedChecks:  rt.failedChecks.Load(),
		Promotions:    rt.promotions.Load(),
		Groups:        rt.groupViews(),
	}
}

func (rt *Router) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, rt.statsView())
}

func (rt *Router) handleCheck(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, rt.CheckOnce())
}

// ---------------------------------------------------------------------------
// Small JSON helpers (mirroring internal/server's, unexported there).

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
