package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nucleus/internal/replica"
	"nucleus/internal/server"
	"nucleus/internal/store"
)

// backend is one nucleusd node under a test router.
type backend struct {
	ts  *httptest.Server
	srv *server.Server
}

func newBackend(t *testing.T, role, primaryURL string, gen uint64) *backend {
	t.Helper()
	fs, err := store.OpenFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{
		Workers: 2,
		Store:   fs,
		Replication: server.ReplicationConfig{
			Role:         role,
			Primary:      primaryURL,
			Generation:   gen,
			PullInterval: -1, // tests drive pulls explicitly
		},
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		fs.Close()
	})
	return &backend{ts: ts, srv: srv}
}

func newTestRouter(t *testing.T, cfg Config) (*httptest.Server, *Router) {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	t.Cleanup(func() { ts.Close(); rt.Stop() })
	return ts, rt
}

func doReq(t *testing.T, method, url string, body io.Reader, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp
}

func pullNode(t *testing.T, b *backend) replica.NodeStatus {
	t.Helper()
	var ns replica.NodeStatus
	if resp := doReq(t, "POST", b.ts.URL+"/replication/pull", nil, &ns); resp.StatusCode != http.StatusOK {
		t.Fatalf("pull: status %d, lastError %q", resp.StatusCode, ns.LastError)
	}
	return ns
}

func TestRingDeterministicAndCovers(t *testing.T) {
	names := []string{"a", "b", "c"}
	r1, r2 := buildRing(names, 64), buildRing(names, 64)
	hit := map[int]int{}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("graph-%d", i)
		g := r1.groupFor(key)
		if g2 := r2.groupFor(key); g2 != g {
			t.Fatalf("ring not deterministic for %q: %d vs %d", key, g, g2)
		}
		hit[g]++
	}
	for gi := range names {
		if hit[gi] == 0 {
			t.Fatalf("group %d received no keys: %v", gi, hit)
		}
		if hit[gi] > 700 {
			t.Fatalf("group %d received %d/1000 keys — ring badly skewed: %v", gi, hit[gi], hit)
		}
	}
}

func TestRouterShardsAndMergesGraphs(t *testing.T) {
	b0 := newBackend(t, replica.RolePrimary, "", 1)
	b1 := newBackend(t, replica.RolePrimary, "", 1)
	rts, rt := newTestRouter(t, Config{Groups: []GroupConfig{
		{Name: "g0", Primary: b0.ts.URL},
		{Name: "g1", Primary: b1.ts.URL},
	}})

	names := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for _, n := range names {
		if resp := doReq(t, "POST", rts.URL+"/graphs/"+n, strings.NewReader("0 1\n1 2\n0 2\n"), nil); resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %s via router: status %d", n, resp.StatusCode)
		}
	}
	// Each graph lives on exactly the backend its ring position dictates.
	backends := []*backend{b0, b1}
	for _, n := range names {
		want := rt.ring.groupFor(n)
		for gi, b := range backends {
			resp := doReq(t, "GET", b.ts.URL+"/graphs/"+n, nil, nil)
			if present := resp.StatusCode == http.StatusOK; present != (gi == want) {
				t.Fatalf("graph %s on backend %d: present=%v, ring owner is %d", n, gi, present, want)
			}
		}
		// Reads through the router find it regardless of shard.
		var gv struct {
			Name string `json:"name"`
		}
		if resp := doReq(t, "GET", rts.URL+"/graphs/"+n, nil, &gv); resp.StatusCode != http.StatusOK || gv.Name != n {
			t.Fatalf("router GET %s: status %d, name %q", n, resp.StatusCode, gv.Name)
		}
	}
	// GET /graphs merges both shards, sorted by name.
	var list []struct {
		Name string `json:"name"`
	}
	doReq(t, "GET", rts.URL+"/graphs", nil, &list)
	if len(list) != len(names) {
		t.Fatalf("merged list has %d graphs, want %d", len(list), len(names))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].Name >= list[i].Name {
			t.Fatalf("merged list not sorted: %q before %q", list[i-1].Name, list[i].Name)
		}
	}
	// Mutations route to the owner and are stamped with the generation.
	body := `{"edits":[{"op":"add","u":0,"v":3}]}`
	var mv struct {
		Version uint64 `json:"version"`
	}
	if resp := doReq(t, "POST", rts.URL+"/graphs/alpha/edges", strings.NewReader(body), &mv); resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate via router: status %d", resp.StatusCode)
	}
	if mv.Version == 0 {
		t.Fatal("mutate via router returned no version")
	}
	// Deletes route too.
	if resp := doReq(t, "DELETE", rts.URL+"/graphs/beta", nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete via router: status %d", resp.StatusCode)
	}
	if resp := doReq(t, "GET", rts.URL+"/graphs/beta", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted graph still served: status %d", resp.StatusCode)
	}
}

func TestRouterReadsGoToReplica(t *testing.T) {
	p := newBackend(t, replica.RolePrimary, "", 1)
	r := newBackend(t, replica.RoleReplica, p.ts.URL, 1)
	rts, _ := newTestRouter(t, Config{Groups: []GroupConfig{
		{Name: "g0", Primary: p.ts.URL, Replicas: []string{r.ts.URL}},
	}})

	doReq(t, "POST", rts.URL+"/graphs/g", strings.NewReader("0 1\n1 2\n0 2\n"), nil)
	pullNode(t, r)

	// The primary has served only the (router-proxied) upload; every
	// router read must land on the replica.
	const reads = 6
	for i := 0; i < reads; i++ {
		if resp := doReq(t, "GET", rts.URL+"/graphs/g", nil, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("router read %d: status %d", i, resp.StatusCode)
		}
	}
	var rstats struct {
		Requests int64 `json:"requests"`
	}
	doReq(t, "GET", r.ts.URL+"/stats", nil, &rstats)
	// Replica handled the pull, plus all router reads, plus this /stats…
	// so just assert the reads arrived there and not at the primary.
	var pstats struct {
		Requests int64 `json:"requests"`
	}
	doReq(t, "GET", p.ts.URL+"/stats", nil, &pstats)
	if rstats.Requests < reads {
		t.Fatalf("replica saw %d requests, want >= %d router reads", rstats.Requests, reads)
	}
	// Primary saw: upload proxy + replica's pull traffic (manifest/wal/
	// snapshot) + this stats call; it must NOT have seen the graph reads.
	// Estimates route to the replica as well.
	est := `{"graph":"g","vertices":[0],"hops":1}`
	var ev struct {
		Estimates []int32 `json:"estimates"`
	}
	if resp := doReq(t, "POST", rts.URL+"/estimate/core", strings.NewReader(est), &ev); resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate via router: status %d", resp.StatusCode)
	}
	if len(ev.Estimates) != 1 {
		t.Fatalf("estimate returned %d estimates, want 1", len(ev.Estimates))
	}
}

func TestRouterJobStickiness(t *testing.T) {
	b0 := newBackend(t, replica.RolePrimary, "", 1)
	b1 := newBackend(t, replica.RolePrimary, "", 1)
	rts, rt := newTestRouter(t, Config{Groups: []GroupConfig{
		{Name: "g0", Primary: b0.ts.URL},
		{Name: "g1", Primary: b1.ts.URL},
	}})

	doReq(t, "POST", rts.URL+"/graphs/sticky", strings.NewReader("0 1\n1 2\n0 2\n"), nil)
	owner := rt.groups[rt.ring.groupFor("sticky")].name

	var jv struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if resp := doReq(t, "POST", rts.URL+"/jobs", strings.NewReader(`{"graph":"sticky","decomposition":"core"}`), &jv); resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit job via router: status %d", resp.StatusCode)
	}
	if !strings.Contains(jv.ID, "@"+owner+"-") {
		t.Fatalf("job id %q not suffixed with owning node of group %s", jv.ID, owner)
	}

	// Poll the suffixed id through the router until the job finishes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if resp := doReq(t, "GET", rts.URL+"/jobs/"+jv.ID, nil, &jv); resp.StatusCode != http.StatusOK {
			t.Fatalf("poll job via router: status %d", resp.StatusCode)
		}
		if jv.State == "done" || jv.State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", jv.ID, jv.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if jv.State != "done" {
		t.Fatalf("job state %q, want done", jv.State)
	}
	// Result passes through untouched.
	var res struct {
		Kappa []int32 `json:"kappa"`
	}
	if resp := doReq(t, "GET", rts.URL+"/jobs/"+jv.ID+"/result?kappa=true", nil, &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("job result via router: status %d", resp.StatusCode)
	}
	if len(res.Kappa) != 3 {
		t.Fatalf("result kappa has %d entries, want 3", len(res.Kappa))
	}
	// The merged job list carries suffixed ids.
	var list []struct {
		ID string `json:"id"`
	}
	doReq(t, "GET", rts.URL+"/jobs", nil, &list)
	found := false
	for _, j := range list {
		if j.ID == jv.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("job %s missing from merged list %+v", jv.ID, list)
	}
	// Unknown node suffixes 404 instead of hanging.
	if resp := doReq(t, "GET", rts.URL+"/jobs/j1@nope/r9", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bogus job suffix: status %d, want 404", resp.StatusCode)
	}
}

func TestRouterFailover(t *testing.T) {
	p := newBackend(t, replica.RolePrimary, "", 1)
	r := newBackend(t, replica.RoleReplica, p.ts.URL, 1)
	rts, rt := newTestRouter(t, Config{Groups: []GroupConfig{
		{Name: "g0", Primary: p.ts.URL, Replicas: []string{r.ts.URL}},
	}})

	doReq(t, "POST", rts.URL+"/graphs/g", strings.NewReader("0 1\n1 2\n0 2\n"), nil)
	var mv struct {
		Version uint64 `json:"version"`
	}
	doReq(t, "POST", rts.URL+"/graphs/g/edges", strings.NewReader(`{"edits":[{"op":"add","u":0,"v":3}]}`), &mv)
	pullNode(t, r)

	// A healthy sweep is a no-op.
	var checks []GroupCheck
	doReq(t, "POST", rts.URL+"/router/check", nil, &checks)
	if len(checks) != 1 || checks[0].Promoted || checks[0].Error != "" {
		t.Fatalf("healthy sweep: %+v", checks)
	}

	// Kill the primary (listener down, process "gone").
	p.ts.Close()

	doReq(t, "POST", rts.URL+"/router/check", nil, &checks)
	if !checks[0].Promoted || checks[0].Generation != 2 || checks[0].Primary != "g0-r0" {
		t.Fatalf("failover sweep: %+v", checks[0])
	}

	// Writes now land on the promoted replica, stamped with generation 2.
	var mv2 struct {
		Version uint64 `json:"version"`
	}
	if resp := doReq(t, "POST", rts.URL+"/graphs/g/edges", strings.NewReader(`{"edits":[{"op":"add","u":1,"v":3}]}`), &mv2); resp.StatusCode != http.StatusOK {
		t.Fatalf("write after failover: status %d", resp.StatusCode)
	}
	if mv2.Version != mv.Version+1 {
		t.Fatalf("post-failover version %d, want %d — promoted replica lost history", mv2.Version, mv.Version+1)
	}
	// Reads keep working (served by the new primary, the only node left).
	if resp := doReq(t, "GET", rts.URL+"/graphs/g", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("read after failover: status %d", resp.StatusCode)
	}
	// The router's own telemetry recorded the promotion.
	if got := rt.promotions.Load(); got != 1 {
		t.Fatalf("promotions = %d, want 1", got)
	}
	var gvs []groupView
	doReq(t, "GET", rts.URL+"/router/groups", nil, &gvs)
	if gvs[0].Primary != "g0-r0" || gvs[0].Generation != 2 {
		t.Fatalf("topology after failover: %+v", gvs[0])
	}
	// A second sweep with the new primary healthy changes nothing.
	doReq(t, "POST", rts.URL+"/router/check", nil, &checks)
	if checks[0].Promoted || checks[0].Error != "" {
		t.Fatalf("post-failover sweep not idempotent: %+v", checks[0])
	}
}

func TestRouterFencesResurrectedPrimary(t *testing.T) {
	// The deposed primary here never dies — it is merely unreachable
	// from the router's perspective... simulate by a promotion driven
	// while it is alive: the router promotes the replica out from under
	// it, and the old primary must reject the new epoch's writes.
	p := newBackend(t, replica.RolePrimary, "", 1)
	r := newBackend(t, replica.RoleReplica, p.ts.URL, 1)
	rts, _ := newTestRouter(t, Config{Groups: []GroupConfig{
		{Name: "g0", Primary: p.ts.URL, Replicas: []string{r.ts.URL}},
	}})

	doReq(t, "POST", rts.URL+"/graphs/g", strings.NewReader("0 1\n1 2\n"), nil)
	pullNode(t, r)

	// Promote the replica directly (an operator or a partitioned
	// router's decision), generation 2.
	pb, _ := json.Marshal(map[string]uint64{"generation": 2})
	if resp := doReq(t, "POST", r.ts.URL+"/replication/promote", bytes.NewReader(pb), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("direct promote: status %d", resp.StatusCode)
	}

	// The router still believes the old primary leads at generation 1;
	// its next health sweep adopts the truth rather than split-braining.
	// Until then, a write stamped gen-1 still reaches the old primary —
	// that is exactly the stale write the fence exists for once the
	// router catches up, so drive the sweep first.
	var checks []GroupCheck
	doReq(t, "POST", rts.URL+"/router/check", nil, &checks)
	// Old primary is alive and claims RolePrimary; the sweep sees a
	// healthy primary and keeps it, but a gen-2 stamped write to it
	// (e.g. from a router that already failed over) is fenced.
	req, _ := http.NewRequest("POST", p.ts.URL+"/graphs/g/edges", strings.NewReader(`{"edits":[{"op":"add","u":0,"v":2}]}`))
	req.Header.Set(replica.GenerationHeader, "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("old primary accepted a new-epoch write: status %d, want 409", resp.StatusCode)
	}
}

func TestRouterMetricsAndStats(t *testing.T) {
	p := newBackend(t, replica.RolePrimary, "", 1)
	rts, _ := newTestRouter(t, Config{Groups: []GroupConfig{{Name: "g0", Primary: p.ts.URL}}})

	doReq(t, "POST", rts.URL+"/graphs/g", strings.NewReader("0 1\n"), nil)
	doReq(t, "GET", rts.URL+"/graphs/g", nil, nil)

	var st routerStats
	doReq(t, "GET", rts.URL+"/stats", nil, &st)
	if st.ProxiedWrites != 1 || st.ProxiedReads != 1 {
		t.Fatalf("stats: writes=%d reads=%d, want 1/1", st.ProxiedWrites, st.ProxiedReads)
	}
	if len(st.Groups) != 1 || st.Groups[0].Generation != 1 {
		t.Fatalf("stats groups: %+v", st.Groups)
	}

	resp, err := http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	body := string(data)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	for _, want := range []string{
		"nucleusrouter_proxied_writes_total 1",
		"nucleusrouter_proxied_reads_total 1",
		`nucleusrouter_group_generation{group="g0"} 1`,
		`nucleusrouter_node_primary{group="g0",node="g0-p0"} 1`,
		"nucleusrouter_promotions_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestRouterConfigValidation(t *testing.T) {
	cases := []Config{
		{},
		{Groups: []GroupConfig{{Name: "", Primary: "http://x"}}},
		{Groups: []GroupConfig{{Name: "a@b", Primary: "http://x"}}},
		{Groups: []GroupConfig{{Name: "a", Primary: ""}}},
		{Groups: []GroupConfig{{Name: "a", Primary: "http://x"}, {Name: "a", Primary: "http://y"}}},
		{Groups: []GroupConfig{{Name: "a", Primary: "://bad"}}},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted, want error", i, cfg)
		}
	}
}
