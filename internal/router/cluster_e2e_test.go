package router

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"nucleus/internal/dynamic"
	"nucleus/internal/graph"
	"nucleus/internal/replica"
	"nucleus/internal/sched"
	"nucleus/internal/server"
	"nucleus/internal/store"
)

// e2eDataDir returns a fresh data directory for a cluster test. When
// NUCLEUS_E2E_DATADIR is set (the CI cluster-e2e job), directories are
// created under it and retained, so a failing run's per-node snapshots
// and WALs can be uploaded as a debugging artifact; otherwise t.TempDir
// cleans up.
func e2eDataDir(t *testing.T) string {
	t.Helper()
	root := os.Getenv("NUCLEUS_E2E_DATADIR")
	if root == "" {
		return t.TempDir()
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		t.Fatal(err)
	}
	dir, err := os.MkdirTemp(root, strings.ReplaceAll(t.Name(), "/", "_")+"-*")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// clusterNode is one nucleusd with its own data directory, which
// survives a "kill" so the node can be resurrected from disk.
type clusterNode struct {
	dir string
	fs  *store.FS
	srv *server.Server
	ts  *httptest.Server
}

func startClusterNode(t *testing.T, dir, role, primaryURL string, gen uint64, clock sched.Clock) *clusterNode {
	t.Helper()
	fs, err := store.OpenFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{
		Workers: 2,
		Store:   fs,
		Replication: server.ReplicationConfig{
			Role:         role,
			Primary:      primaryURL,
			Generation:   gen,
			PullInterval: -1, // the harness drives every pull explicitly
			Clock:        clock,
		},
	})
	return &clusterNode{dir: dir, fs: fs, srv: srv, ts: httptest.NewServer(srv)}
}

// kill is SIGKILL semantics: the listener drops and in-flight
// connections are severed, but nothing is drained or flushed — whatever
// reached the node's disk is what a restart recovers.
func (n *clusterNode) kill() {
	n.ts.CloseClientConnections()
	n.ts.Close()
}

// ledger tracks what the cluster acknowledged: the exact version of
// every acked batch and the resulting edge multiset, from which the
// test derives its independent κ oracle.
type ledger struct {
	edges    map[[2]uint32]bool
	versions []uint64
}

func (l *ledger) apply(edits []map[string]any) {
	for _, e := range edits {
		u, v := e["u"].(uint32), e["v"].(uint32)
		if u > v {
			u, v = v, u
		}
		if e["op"] == "add" {
			l.edges[[2]uint32{u, v}] = true
		} else {
			delete(l.edges, [2]uint32{u, v})
		}
	}
}

func (l *ledger) oracleKappa() []int32 {
	var edges [][2]uint32
	for e := range l.edges {
		edges = append(edges, e)
	}
	return dynamic.FromStatic(graph.Build(-1, edges)).CoreNumbers()
}

// TestClusterKillPromoteE2E is the replication acceptance test: a
// primary is killed mid-mutation-burst, the router promotes the most
// caught-up replica, and the promoted node serves every acknowledged
// batch at its exact version with κ bit-identical to an independently
// computed oracle — warm throughout, with zero cold decompositions on
// either replica — while the resurrected stale primary is fenced. The
// harness is fully deterministic: manual pulls, manual health sweeps, a
// fake clock, no timers.
func TestClusterKillPromoteE2E(t *testing.T) {
	base := e2eDataDir(t)
	for _, d := range []string{"p0", "r0", "r1"} {
		if err := os.MkdirAll(base+"/"+d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	clock := sched.NewFakeClock()

	p0 := startClusterNode(t, base+"/p0", replica.RolePrimary, "", 1, clock)
	r0 := startClusterNode(t, base+"/r0", replica.RoleReplica, p0.ts.URL, 1, clock)
	r1 := startClusterNode(t, base+"/r1", replica.RoleReplica, p0.ts.URL, 1, clock)
	t.Cleanup(func() {
		for _, n := range []*clusterNode{r0, r1} {
			n.ts.Close()
			n.srv.Close()
			n.fs.Close()
		}
		p0.srv.Close() // the killed node's Server object, idle since the kill
		p0.fs.Close()
	})

	rt, err := New(Config{Groups: []GroupConfig{
		{Name: "shard0", Primary: p0.ts.URL, Replicas: []string{r0.ts.URL, r1.ts.URL}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt)
	t.Cleanup(func() { rts.Close(); rt.Stop() })

	led := &ledger{edges: map[[2]uint32]bool{}}

	// --- Seed the graph through the router. ---
	seed := [][2]uint32{{0, 1}, {1, 2}, {0, 2}, {2, 3}}
	var up strings.Builder
	for _, e := range seed {
		fmt.Fprintf(&up, "%d %d\n", e[0], e[1])
		led.edges[e] = true
	}
	if resp := doReq(t, "POST", rts.URL+"/graphs/g", strings.NewReader(up.String()), nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("seed upload: status %d", resp.StatusCode)
	}

	// mutate posts one batch through the router and records the ack.
	mutate := func(edits []map[string]any) uint64 {
		t.Helper()
		var sb strings.Builder
		sb.WriteString(`{"edits":[`)
		for i, e := range edits {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, `{"op":%q,"u":%d,"v":%d}`, e["op"], e["u"], e["v"])
		}
		sb.WriteString(`]}`)
		var mv struct {
			Version uint64 `json:"version"`
		}
		resp := doReq(t, "POST", rts.URL+"/graphs/g/edges", strings.NewReader(sb.String()), &mv)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mutate via router: status %d", resp.StatusCode)
		}
		led.apply(edits)
		led.versions = append(led.versions, mv.Version)
		return mv.Version
	}
	edit := func(op string, u, v uint32) map[string]any {
		return map[string]any{"op": op, "u": u, "v": v}
	}

	// --- Burst phase A: 8 acked batches; r0 pulls often, r1 lags. ---
	for i := 0; i < 8; i++ {
		a, b := uint32(i), uint32(i+4)
		edits := []map[string]any{edit("add", a, b), edit("add", a+1, b)}
		if i == 5 {
			edits = append(edits, edit("remove", 0, 1)) // deletions ship too
		}
		mutate(edits)
		if i%2 == 1 {
			pullNode(t, &backend{ts: r0.ts, srv: r0.srv}) // r0: every 2nd batch
		}
		if i == 3 {
			pullNode(t, &backend{ts: r1.ts, srv: r1.srv}) // r1: once, mid-burst
		}
		clock.Advance(time.Millisecond) // simulated time per batch
	}
	pullNode(t, &backend{ts: r0.ts, srv: r0.srv}) // r0 fully caught up
	vKill := led.versions[len(led.versions)-1]

	// --- SIGKILL the primary between acked batches. ---
	p0.kill()

	// The next write through the router fails — nothing is acked, so the
	// ledger does not record it.
	if resp := doReq(t, "POST", rts.URL+"/graphs/g/edges",
		strings.NewReader(`{"edits":[{"op":"add","u":0,"v":9}]}`), nil); resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("write into dead primary: status %d, want 502", resp.StatusCode)
	}

	// --- One deterministic health sweep: promote and repoint. ---
	checks := rt.CheckOnce()
	if len(checks) != 1 || !checks[0].Promoted {
		t.Fatalf("failover sweep: %+v", checks)
	}
	if checks[0].Primary != "shard0-r0" {
		t.Fatalf("promoted %s; want shard0-r0, the most caught-up replica (r0 at v%d > r1)", checks[0].Primary, vKill)
	}
	if checks[0].Generation != 2 {
		t.Fatalf("post-promotion generation %d, want 2", checks[0].Generation)
	}

	// r1 was repointed at r0; one pull catches it up through the new
	// primary at the exact same versions.
	ns := pullNode(t, &backend{ts: r1.ts, srv: r1.srv})
	if ns.Primary != r0.ts.URL {
		t.Fatalf("r1 pulls from %q, want the promoted primary %q", ns.Primary, r0.ts.URL)
	}
	if ns.LagVersions != 0 {
		t.Fatalf("r1 still lagging after catch-up pull: %+v", ns)
	}

	// --- Burst phase B continues through the router. ---
	for i := 0; i < 4; i++ {
		v := mutate([]map[string]any{edit("add", uint32(i), uint32(i+9))})
		if want := vKill + uint64(i+1); v != want {
			t.Fatalf("post-failover batch %d acked at version %d, want %d — the version history forked", i, v, want)
		}
	}
	pullNode(t, &backend{ts: r1.ts, srv: r1.srv})
	vFinal := led.versions[len(led.versions)-1]

	// --- Every acked batch, at its exact version. ---
	var pg, rg struct {
		N       int    `json:"n"`
		M       int64  `json:"m"`
		Version uint64 `json:"version"`
	}
	doReq(t, "GET", r0.ts.URL+"/graphs/g", nil, &pg)
	doReq(t, "GET", r1.ts.URL+"/graphs/g", nil, &rg)
	if pg.Version != vFinal || rg.Version != vFinal {
		t.Fatalf("versions after burst: promoted=%d replica=%d, want %d", pg.Version, rg.Version, vFinal)
	}
	oracle := led.oracleKappa()
	if pg.N != len(oracle) || int64(len(led.edges)) != pg.M {
		t.Fatalf("promoted graph n=%d m=%d; oracle n=%d m=%d", pg.N, pg.M, len(oracle), len(led.edges))
	}

	// --- κ bit-identical to the oracle, on both surviving nodes. ---
	for _, nd := range []struct {
		label string
		url   string
	}{{"promoted", r0.ts.URL}, {"replica", r1.ts.URL}} {
		var cl struct {
			Maintained  bool    `json:"maintained"`
			CoreNumbers []int32 `json:"coreNumbers"`
		}
		var q strings.Builder
		for v := 0; v < len(oracle); v++ {
			if v > 0 {
				q.WriteByte('&')
			}
			fmt.Fprintf(&q, "v=%d", v)
		}
		if resp := doReq(t, "GET", nd.url+"/graphs/g/core?"+q.String(), nil, &cl); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s core lookup: status %d", nd.label, resp.StatusCode)
		}
		if !cl.Maintained {
			t.Fatalf("%s κ not incrementally maintained", nd.label)
		}
		for i := range oracle {
			if cl.CoreNumbers[i] != oracle[i] {
				t.Fatalf("%s κ[%d] = %d, oracle says %d", nd.label, i, cl.CoreNumbers[i], oracle[i])
			}
		}
	}

	// --- Reads through the router stay warm: zero cold decompositions
	// on both replicas across the whole scenario. ---
	var dec struct {
		Converged bool `json:"converged"`
	}
	if resp := doReq(t, "GET", rts.URL+"/graphs/g/decompose?dec=core&alg=and", nil, &dec); resp.StatusCode != http.StatusOK || !dec.Converged {
		t.Fatalf("decompose through router: status %d converged=%v", resp.StatusCode, dec.Converged)
	}
	for _, nd := range []struct {
		label string
		url   string
	}{{"promoted", r0.ts.URL}, {"replica", r1.ts.URL}} {
		var st struct {
			Mutations struct {
				ColdRuns int64 `json:"coldRuns"`
			} `json:"mutations"`
		}
		doReq(t, "GET", nd.url+"/stats", nil, &st)
		if st.Mutations.ColdRuns != 0 {
			t.Fatalf("%s paid %d cold decompositions; replication must keep κ warm", nd.label, st.Mutations.ColdRuns)
		}
	}

	// --- The stale primary resurrects from its own disk and is fenced. ---
	res := server.New(server.Config{
		Workers: 2,
		Store:   p0.fs, // same store, same disk state — the dead node reborn
		Replication: server.ReplicationConfig{
			Role:       replica.RolePrimary,
			Generation: 1, // it never learned of the promotion
		},
	})
	rests := httptest.NewServer(res)
	t.Cleanup(func() { rests.Close(); res.Close() })

	// It recovered only what reached its disk before the kill.
	var og struct {
		Version uint64 `json:"version"`
	}
	doReq(t, "GET", rests.URL+"/graphs/g", nil, &og)
	if og.Version != vKill {
		t.Fatalf("resurrected primary at version %d, want its pre-kill %d", og.Version, vKill)
	}
	// A generation-2 stamped write — what the router would send now —
	// is fenced with 409 and leaves no trace.
	req, _ := http.NewRequest("POST", rests.URL+"/graphs/g/edges", strings.NewReader(`{"edits":[{"op":"add","u":0,"v":9}]}`))
	req.Header.Set(replica.GenerationHeader, "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("resurrected stale primary accepted a new-epoch write: status %d, want 409", resp.StatusCode)
	}
	doReq(t, "GET", rests.URL+"/graphs/g", nil, &og)
	if og.Version != vKill {
		t.Fatalf("fenced write advanced the stale primary to version %d", og.Version)
	}
	// And pulling from it is refused as a stale source.
	if resp := doReq(t, "POST", r1.ts.URL+"/replication/repoint",
		strings.NewReader(fmt.Sprintf(`{"primary":%q}`, rests.URL)), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("repoint r1 at stale primary: status %d", resp.StatusCode)
	}
	var pns replica.NodeStatus
	if resp := doReq(t, "POST", r1.ts.URL+"/replication/pull", nil, &pns); resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("pull from stale source: status %d, want 502", resp.StatusCode)
	}
	if pns.StalePulls == 0 {
		t.Fatalf("stale-source pull not counted: %+v", pns)
	}
	// Repoint home; the fleet is healthy again.
	if resp := doReq(t, "POST", r1.ts.URL+"/replication/repoint",
		strings.NewReader(fmt.Sprintf(`{"primary":%q,"generation":2}`, r0.ts.URL)), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("repoint r1 home: status %d", resp.StatusCode)
	}
	if ns := pullNode(t, &backend{ts: r1.ts, srv: r1.srv}); ns.LagVersions != 0 {
		t.Fatalf("r1 lagging after rejoining: %+v", ns)
	}
}
