// Testdata for the suppression mechanism itself: a justified ignore is
// consumed silently, a stale ignore and a justification-free ignore are
// both findings (checked by TestSuppressionProblems, not want comments —
// the diagnostics land on the directive's own line).
package suppress

import "os"

// justified suppresses a real finding with a written reason: no output.
func justified(f *os.File) {
	f.Close() //nucleus:lint-ignore syncerr scratch file on a tmpfs; close failure cannot lose durable data
}

// stale guards a line that produces no finding.
func stale(f *os.File) error {
	//nucleus:lint-ignore syncerr the error is propagated, nothing fires here
	return f.Close()
}

// unjustified suppresses a real finding but gives no reason.
func unjustified(f *os.File) {
	f.Close() //nucleus:lint-ignore syncerr
}
