// Testdata for the syncerr analyzer: discarded Sync/Close/Flush errors
// (flagged), checked/propagated/annotated ones and void signatures
// (allowed near-misses).
package syncerr

import "os"

func discarded(f *os.File) {
	f.Sync() // want `error from f.Sync is discarded`
}

func deferred(f *os.File) {
	defer f.Close() // want `error from f.Close is discarded`
}

func blankAssigned(f *os.File) {
	_ = f.Close() // want `error from f.Close is discarded`
}

// propagated is the near-miss: the error leaves the function.
func propagated(f *os.File) error {
	return f.Close()
}

// checked is the near-miss: the error is inspected in place.
func checked(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return nil
}

// annotated discards explicitly, with a written reason.
func annotated(f *os.File) {
	f.Close() //nucleus:ignore-err read-only handle; close error carries no durability signal
}

type notifier struct{}

// Flush returns nothing, so there is no error to lose.
func (notifier) Flush() {}

func voidFlush(n notifier) {
	n.Flush()
}
