// Testdata for the noalloc analyzer: annotated kernels with deliberate
// allocations (flagged) next to unannotated twins and clean kernels
// (allowed near-misses).
package noalloc

import "fmt"

// hot is annotated: every allocating construct inside it is a finding.
//
//nucleus:noalloc
func hot(vals []int32, n int) int32 {
	tmp := make([]int32, n) // want `make with non-constant size allocates`
	vals = append(vals, 1)  // want `append may grow its backing array`
	fmt.Println()           // want `fmt.Println allocates`
	_ = helper(n)           // want `not annotated //nucleus:noalloc`
	var acc int32
	for _, v := range tmp {
		acc += v
	}
	return acc + vals[0]
}

// cold is the unannotated near-miss: identical constructs, no findings.
func cold(n int) []int32 {
	out := make([]int32, n)
	out = append(out, 1)
	return out
}

func helper(n int) int { return n + 1 }

// step carries the annotation, so calling it from another annotated
// kernel is allowed.
//
//nucleus:noalloc
func step(x int32) int32 { return x * 2 }

// clean is an annotated kernel with nothing to flag: index arithmetic,
// an annotated callee, and a constant-size stack array.
//
//nucleus:noalloc
func clean(buf []int32) int32 {
	var scratch [8]int32
	for i := range buf {
		scratch[i&7] += step(buf[i])
	}
	return scratch[0]
}

// grow is the amortized-zero idiom: the one allocation is a grow-once
// scratch resize, suppressed with a written justification.
//
//nucleus:noalloc
func grow(scratch *[]int32, n int) {
	if len(*scratch) < n {
		*scratch = make([]int32, n) //nucleus:lint-ignore noalloc grow-once scratch resize; amortized zero allocations across sweeps
	}
}

// box passes a concrete value to an interface parameter.
//
//nucleus:noalloc
func box(x int) {
	sink(x) // want `passing int to interface parameter boxes` `call to noalloc.sink, which is not annotated`
}

func sink(v any) { _ = v }
