// Testdata for the ctxstop analyzer: unbounded loops that ignore an
// in-scope cancellation signal (flagged) next to polling loops, bounded
// loops, and signal-free functions (allowed).
package ctxstop

import "context"

// options mirrors the anytime-serving Options shape.
type options struct {
	Threads int
	Stop    func() bool
}

func work() {}

// ignoresStop accepts a Stop carrier and spins without consulting it.
func ignoresStop(opts options) {
	for { // want `unbounded loop never polls a stop signal`
		work()
	}
}

// pollsStop is the near-miss: the loop checks Stop each iteration.
func pollsStop(opts options) {
	for {
		if opts.Stop != nil && opts.Stop() {
			return
		}
		work()
	}
}

// ignoresCtx has a context in scope and never looks at it.
func ignoresCtx(ctx context.Context) {
	for { // want `unbounded loop never polls a stop signal`
		work()
	}
}

// pollsCtx consults ctx.Err each iteration.
func pollsCtx(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		work()
	}
}

// counted is bounded by construction: three-clause loops are exempt.
func counted(ctx context.Context) {
	for i := 0; i < 1000; i++ {
		work()
	}
}

// noSignal has nothing to poll: barrier-synchronized workers are the
// legitimate shape here, and the analyzer does not demand a signal
// exist.
func noSignal(done *bool) {
	for {
		work()
		if *done {
			return
		}
	}
}

// stopParam: a bare stop func() bool parameter counts as a signal.
func stopParam(stop func() bool) {
	for { // want `unbounded loop never polls a stop signal`
		work()
	}
}

// stopParamPolled is its near-miss.
func stopParamPolled(stop func() bool) {
	for {
		if stop() {
			return
		}
		work()
	}
}
