// Testdata for the atomicfield analyzer: fields mixed between atomic
// and plain access (flagged), consistently-plain and consistently-atomic
// fields (allowed), and a justified barrier read.
package atomicfield

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	n    int64 // atomically incremented, plainly read: the race
	safe int64 // never touched atomically: plain access is fine
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) read() int64 {
	return c.n // want `field n is accessed with sync/atomic elsewhere`
}

// atomicRead is the near-miss: atomic access to a tracked field.
func (c *counter) atomicRead() int64 {
	return atomic.LoadInt64(&c.n)
}

// plainOnly is the near-miss: safe is never atomic, so plain access
// stays silent.
func (c *counter) plainOnly() int64 {
	c.safe++
	return c.safe
}

// peeler mirrors the parallel peel engine's shape: a slice field whose
// elements workers bump atomically and a barrier reads plainly.
type peeler struct {
	wg    sync.WaitGroup
	delta []int32
}

func (p *peeler) work(i int) {
	atomic.AddInt32(&p.delta[i], 1)
}

func (p *peeler) barrierUnsound(i int) int32 {
	return p.delta[i] // want `field delta is accessed with sync/atomic elsewhere`
}

// barrierJustified documents the happens-before edge that makes the
// plain read sound.
func (p *peeler) barrierJustified(i int) int32 {
	p.wg.Wait()
	return p.delta[i] //nucleus:lint-ignore atomicfield all workers joined at wg.Wait above; the plain read is ordered after every atomic add
}
