// Testdata for the lockdiscipline analyzer: blocking work under a
// registry mutex (flagged), the unlock-first idiom (allowed), and the
// per-name mutation lock with its durable-pipeline allowance.
package lockdiscipline

import "sync"

// store mirrors the durable store interface shape; its method names are
// what the analyzer classifies.
type store interface {
	BeginBatch() error
	CommitBatch() error
}

type reg struct {
	mu    sync.Mutex
	locks map[string]*sync.Mutex
	done  chan struct{}
}

func (r *reg) mutationLock(name string) *sync.Mutex {
	return r.locks[name]
}

// WarmCoreNumbers stands in for a decomposition entry point.
func WarmCoreNumbers() {}

// badStore holds the registry mutex across a store call.
func (r *reg) badStore(s store) {
	r.mu.Lock()
	_ = s.BeginBatch() // want `store/WAL call while holding mutex`
	r.mu.Unlock()
}

// badChan blocks on a channel under the registry mutex — the deadlock
// shape the serving layer once shipped.
func (r *reg) badChan() {
	r.mu.Lock()
	<-r.done // want `channel operation while holding mutex`
	r.mu.Unlock()
}

// goodUnlockFirst is the near-miss: the mutex guards only the map read,
// and the blocking receive happens after Unlock.
func (r *reg) goodUnlockFirst() *sync.Mutex {
	r.mu.Lock()
	v := r.locks["x"]
	r.mu.Unlock()
	<-r.done
	return v
}

// goodSelectDefault: a select with a default clause never blocks, so it
// is fine under the mutex.
func (r *reg) goodSelectDefault(q chan int) {
	r.mu.Lock()
	select {
	case q <- 1:
	default:
	}
	r.mu.Unlock()
}

// mutateAllowed holds the per-name mutation lock across store work —
// serializing the durable pipeline is that lock's purpose.
func (r *reg) mutateAllowed(s store, name string) {
	lock := r.mutationLock(name)
	lock.Lock()
	_ = s.BeginBatch()
	_ = s.CommitBatch()
	lock.Unlock()
}

// mutateBad runs decomposition-sized work under the mutation lock.
func (r *reg) mutateBad(name string) {
	lock := r.mutationLock(name)
	lock.Lock()
	WarmCoreNumbers() // want `decomposition-sized work while holding per-name mutation lock`
	lock.Unlock()
}

// unlockerClosure: calling a closure that unlocks ends the held region,
// so the receive after unlock() is allowed.
func (r *reg) unlockerClosure() {
	r.mu.Lock()
	locked := true
	unlock := func() {
		if locked {
			locked = false
			r.mu.Unlock()
		}
	}
	unlock()
	<-r.done
}

// transitive: blocking through a same-package helper is still caught.
func (r *reg) transitive(s store) {
	r.mu.Lock()
	persist(s) // want `store/WAL call while holding mutex`
	r.mu.Unlock()
}

func persist(s store) {
	_ = s.BeginBatch()
}
