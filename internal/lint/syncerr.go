package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SyncErr enforces the durability contract at the call sites that can
// silently void it: a discarded error from Sync, Close, or Flush in the
// store and serving layers means a write may not have reached disk and
// nobody will ever know. Every such result must be checked, propagated,
// or explicitly discarded with //nucleus:ignore-err <reason>.
//
// Methods whose signature returns no error (httptest.Server.Close,
// http.Flusher.Flush) are naturally exempt; so is the conventional
// `defer resp.Body.Close()` on HTTP response bodies, where the
// transport owns durability.
var SyncErr = &Analyzer{
	Name: "syncerr",
	Doc:  "Sync/Close/Flush errors in store and server code must be checked or explicitly discarded",
	AppliesTo: func(path string) bool {
		return strings.HasPrefix(path, "nucleus/internal/store") ||
			strings.HasPrefix(path, "nucleus/internal/server") ||
			strings.HasPrefix(path, "nucleus/cmd/")
	},
	Run: runSyncErr,
}

var syncErrMethods = map[string]bool{
	"Sync": true, "Close": true, "Flush": true,
}

func runSyncErr(pass *Pass) error {
	for _, f := range pass.Files {
		ignores := ignoreErrLines(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			case *ast.AssignStmt:
				// `_ = f.Close()` and `_, _ = ...` discard explicitly but
				// invisibly; require the annotation for those too.
				if !allBlank(n.Lhs) || len(n.Rhs) != 1 {
					return true
				}
				call, _ = n.Rhs[0].(*ast.CallExpr)
			default:
				return true
			}
			if call == nil {
				return true
			}
			checkSyncErrCall(pass, call, ignores)
			return true
		})
	}
	return nil
}

func checkSyncErrCall(pass *Pass, call *ast.CallExpr, ignores map[int]*directive) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !syncErrMethods[sel.Sel.Name] {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !returnsError(sig) {
		return
	}
	// `defer resp.Body.Close()`: the net/http convention; the body is a
	// read stream, its Close error carries no durability signal.
	if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok && inner.Sel.Name == "Body" {
		return
	}
	pos := pass.Fset.Position(call.Pos())
	if d, ok := ignores[pos.Line]; ok {
		if d.args == "" {
			pass.diags = append(pass.diags, Diagnostic{
				Analyzer: pass.Analyzer.Name,
				Pos:      pass.Fset.Position(d.pos),
				Message:  "ignore-err has no reason; write //nucleus:ignore-err <why the error is safe to drop>",
			})
		}
		return
	}
	pass.Reportf(call.Pos(), "error from %s.%s is discarded; check it or annotate //nucleus:ignore-err <reason>",
		exprString(sel.X), sel.Sel.Name)
}

// ignoreErrLines indexes the file's //nucleus:ignore-err directives by
// the source line they guard (their own line for trailing comments, the
// next line for own-line comments).
func ignoreErrLines(fset *token.FileSet, f *ast.File) map[int]*directive {
	out := map[int]*directive{}
	for _, d := range fileDirectives(fset, f) {
		if d.name != dirIgnoreErr {
			continue
		}
		line := fset.Position(d.pos).Line
		if d.ownLine {
			line++
		}
		dd := d
		out[line] = &dd
	}
	return out
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return true
		}
	}
	return false
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}

// exprString renders a short receiver description for messages.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	default:
		return "receiver"
	}
}
