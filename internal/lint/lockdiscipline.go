package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockDiscipline enforces the serving layer's lock-hold invariant, the
// static form of the PR 4 warm-seed deadlock fix: no blocking work while
// holding a registry-side mutex in internal/server.
//
// Two lock classes with different allowances:
//
//   - The per-name mutation lock (any mutex obtained from a function
//     named "mutationLock") intentionally serializes the durable mutation
//     pipeline — WAL appends, overlay repair, snapshot persistence — so
//     store and overlay work is allowed under it. Decomposition-sized
//     work (localhi/peel runs, warm seeding, instance builds) and channel
//     blocking are not: that is exactly the bug PR 4 shipped and fixed.
//
//   - Every other sync.Mutex/RWMutex in scope is a registry/bookkeeping
//     lock: no blocking effect of any kind may run under it (store or
//     file I/O, decomposition calls, channel operations, WaitGroup.Wait,
//     sleeps).
//
// The analysis is flow-approximate: held regions are tracked through
// statement lists (branch-local unlocks end the region for that branch
// only), defer Unlock holds to function end, and calls to same-package
// functions carry their transitively computed effects (a fixpoint over
// the package's call graph). Function literals launched via go run with
// an empty held set. Deliberate exceptions (e.g. the densest-subgraph
// memo lock single-flighting its computation) carry lint-ignore
// suppressions with written justifications.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "no blocking call while holding a registry or per-name mutex",
	AppliesTo: func(path string) bool {
		return strings.HasPrefix(path, "nucleus/internal/server")
	},
	Run: runLockDiscipline,
}

// effect classifies blocking behavior.
type effect int

const (
	effChan   effect = 1 << iota // channel send/receive/select without default
	effWait                      // sync.WaitGroup.Wait
	effSleep                     // time.Sleep
	effStore                     // durable store / WAL methods
	effIO                        // file or network I/O
	effDecomp                    // decomposition-sized compute (localhi, peel, warm seeding, instance builds)
)

// mutationLockAllowed is the effect set the per-name mutation lock may
// hold across: the durable pipeline is the lock's whole purpose.
const mutationLockAllowed = effStore | effIO

func (e effect) describe() string {
	var parts []string
	for _, x := range []struct {
		e effect
		s string
	}{
		{effChan, "channel operation"},
		{effWait, "WaitGroup.Wait"},
		{effSleep, "sleep"},
		{effStore, "store/WAL call"},
		{effIO, "I/O"},
		{effDecomp, "decomposition-sized work"},
	} {
		if e&x.e != 0 {
			parts = append(parts, x.s)
		}
	}
	return strings.Join(parts, ", ")
}

// storeMethodNames classifies store-interface methods by name, so the
// analyzer works identically against nucleus/internal/store types and
// the fake stores in analyzer testdata.
var storeMethodNames = map[string]bool{
	"BeginBatch": true, "CommitBatch": true, "SaveSnapshot": true,
}

// decompFuncNames classifies decomposition entry points by name
// (package-path classification below catches the rest).
var decompFuncNames = map[string]bool{
	"WarmCoreNumbers": true, "WarmCoreNumbersOn": true,
	"WarmTrussNumbers": true, "WarmTrussNumbersOn": true,
}

// heavyPkgs maps module-internal package suffixes to the effect their
// exported functions carry.
var heavyPkgs = map[string]effect{
	"internal/localhi": effDecomp,
	"internal/peel":    effDecomp,
	"internal/densest": effDecomp,
	"internal/cliques": effDecomp,
	"internal/nucleus": effDecomp,
	"internal/store":   effStore,
}

// osIONames are the os-package entry points that reach the filesystem.
var osIONames = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "Remove": true, "RemoveAll": true,
	"Rename": true, "MkdirAll": true, "Mkdir": true, "Stat": true,
	"ReadDir": true, "Truncate": true,
}

func runLockDiscipline(pass *Pass) error {
	ld := &lockChecker{pass: pass, funcEffects: map[*types.Func]effect{}}
	ld.computeEffects()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				ld.checkFunc(fd.Body)
			}
		}
	}
	return nil
}

type lockChecker struct {
	pass *Pass
	// funcEffects is the fixpoint of blocking effects per same-package
	// function, so a lock held across a local helper that (transitively)
	// appends to the WAL is still caught.
	funcEffects map[*types.Func]effect
}

// computeEffects runs a simple fixpoint over the package's functions:
// each function's effect set is the union of its direct blocking
// operations and the effects of same-package callees.
func (ld *lockChecker) computeEffects() {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range ld.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := ld.pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			e := ld.bodyEffects(fd.Body)
			if e != ld.funcEffects[fn] {
				ld.funcEffects[fn] = e
				changed = true
			}
		}
	}
}

// bodyEffects computes the direct+transitive effects of a statement
// subtree, NOT descending into function literals (a closure only blocks
// when called; calls through closures are approximated as effect-free
// unless launched inline, which the checker walks separately).
func (ld *lockChecker) bodyEffects(body ast.Node) effect {
	var e effect
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			e |= effChan
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				e |= effChan
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				e |= effChan
			}
		case *ast.RangeStmt:
			if t := ld.pass.Info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					e |= effChan
				}
			}
		case *ast.CallExpr:
			e |= ld.callEffect(n)
		}
		return true
	}
	ast.Inspect(body, walk)
	return e
}

// callEffect classifies one call expression.
func (ld *lockChecker) callEffect(call *ast.CallExpr) effect {
	fn := calleeFunc(ld.pass.Info, call)
	if fn == nil {
		return 0
	}
	name := fn.Name()
	pkg := fn.Pkg()
	if pkg == nil {
		return 0
	}
	// Same-package callee: name-based store/decomp classification first
	// (covers interface methods declared in this package and the fakes in
	// analyzer testdata), then transitive effects from the fixpoint.
	if pkg == ld.pass.Pkg {
		if storeMethodNames[name] {
			return effStore
		}
		if decompFuncNames[name] {
			return effDecomp
		}
		return ld.funcEffects[fn]
	}
	path := pkg.Path()
	switch {
	case path == "time" && name == "Sleep":
		return effSleep
	case path == "sync" && name == "Wait":
		return effWait
	case path == "os" && (osIONames[name] || isMethodOf(fn, "File")):
		return effIO
	case path == "net/http" && (name == "Get" || name == "Post" || name == "Do" || name == "Head" || name == "PostForm"):
		return effIO
	case decompFuncNames[name]:
		return effDecomp
	case storeMethodNames[name]:
		return effStore
	}
	if suffix, ok := strings.CutPrefix(path, ld.pass.Prog.ModulePath+"/"); ok {
		// New* constructors in the heavy packages are cheap setup, not the
		// decomposition or store work the classification is after.
		if e, heavy := heavyPkgs[suffix]; heavy && ast.IsExported(name) && !strings.HasPrefix(name, "New") {
			return e
		}
	}
	return 0
}

// heldLock is one mutex the current flow path holds.
type heldLock struct {
	key      string
	pos      token.Pos
	mutation bool // obtained from mutationLock(): the durable-pipeline allowance applies
}

func (h *heldLock) allowed() effect {
	if h.mutation {
		return mutationLockAllowed
	}
	return 0
}

// checkFunc scans one function body with an empty held set; function
// literals reached via go/defer or assignment are scanned independently
// (a goroutine does not inherit its spawner's locks).
func (ld *lockChecker) checkFunc(body *ast.BlockStmt) {
	unlockers := ld.findUnlockerClosures(body)
	ld.scanStmts(body.List, map[string]*heldLock{}, unlockers)
	// Independently scan nested function literals with a fresh held set.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			ld.scanStmts(lit.Body.List, map[string]*heldLock{}, unlockers)
			return false
		}
		return true
	})
}

// findUnlockerClosures maps local closure variables whose body unlocks a
// mutex (the `unlock := func() { ... mu.Unlock() ... }` idiom) to the
// lock key they release.
func (ld *lockChecker) findUnlockerClosures(body *ast.BlockStmt) map[types.Object]string {
	out := map[types.Object]string{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lit, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := ld.pass.Info.Defs[id]
		if obj == nil {
			obj = ld.pass.Info.Uses[id]
		}
		if obj == nil {
			return true
		}
		var key string
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if k, op, isLock := ld.lockOp(call); isLock && (op == "Unlock" || op == "RUnlock") {
					key = k
				}
			}
			return true
		})
		if key != "" {
			out[obj] = key
		}
		return true
	})
	return out
}

// lockOp recognizes X.Lock/RLock/Unlock/RUnlock calls on sync mutexes and
// returns a stable key for X.
func (ld *lockChecker) lockOp(call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := ld.pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return ld.exprKey(sel.X), sel.Sel.Name, true
}

// exprKey renders a canonical key for a lock expression: the root
// object's identity plus the selector path, so e.instMu and f.instMu are
// distinct while two mentions of e.instMu agree.
func (ld *lockChecker) exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := ld.pass.Info.Uses[e]; obj != nil {
			return fmt.Sprintf("%p", obj)
		}
		return e.Name
	case *ast.SelectorExpr:
		return ld.exprKey(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return ld.exprKey(e.X) + "[]"
	case *ast.CallExpr:
		return "call:" + ld.exprKey(e.Fun)
	default:
		return fmt.Sprintf("node@%d", e.Pos())
	}
}

// isMutationLock reports whether the locked expression traces to a call
// of a function named mutationLock (directly, `r.mutationLock(n).Lock()`,
// or via a local variable initialized from one).
func (ld *lockChecker) isMutationLock(e ast.Expr, fn *ast.BlockStmt) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return calleeNamed(e, "mutationLock")
	case *ast.Ident:
		obj := ld.pass.Info.Uses[e]
		if obj == nil {
			return false
		}
		found := false
		ast.Inspect(fn, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || found {
				return !found
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(as.Rhs) {
					continue
				}
				def := ld.pass.Info.Defs[id]
				if def == nil {
					def = ld.pass.Info.Uses[id]
				}
				if def != obj {
					continue
				}
				if call, ok := as.Rhs[i].(*ast.CallExpr); ok && calleeNamed(call, "mutationLock") {
					found = true
				}
			}
			return true
		})
		return found
	}
	return false
}

func calleeNamed(call *ast.CallExpr, name string) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == name
	case *ast.SelectorExpr:
		return fun.Sel.Name == name
	}
	return false
}

// scanStmts walks a statement list tracking the held set. Control-flow
// statements recurse with a copy: an unlock inside a branch ends the
// region for that branch only (the fall-through path conservatively
// keeps holding).
func (ld *lockChecker) scanStmts(stmts []ast.Stmt, held map[string]*heldLock, unlockers map[types.Object]string) {
	enclosing := enclosingBlockOf(stmts)
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if key, op, isLock := ld.lockOp(call); isLock {
					switch op {
					case "Lock", "RLock":
						sel := call.Fun.(*ast.SelectorExpr)
						held[key] = &heldLock{
							key:      key,
							pos:      call.Pos(),
							mutation: ld.isMutationLock(sel.X, enclosing),
						}
					case "Unlock", "RUnlock":
						delete(held, key)
					}
					continue
				}
				if key := ld.unlockerCall(call, unlockers); key != "" {
					delete(held, key)
					continue
				}
			}
			ld.checkBlockingIn(s, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() holds to function end: nothing to update.
			// The deferred call itself runs after the region; skip it.
		case *ast.GoStmt:
			// The goroutine body runs with its own (empty) held set; the
			// spawn itself does not block.
		case *ast.IfStmt:
			ld.checkBlockingIn(s.Cond, held)
			if s.Init != nil {
				ld.checkBlockingIn(s.Init, held)
			}
			ld.scanStmts(s.Body.List, copyHeld(held), unlockers)
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					ld.scanStmts(e.List, copyHeld(held), unlockers)
				case *ast.IfStmt:
					ld.scanStmts([]ast.Stmt{e}, copyHeld(held), unlockers)
				}
			}
		case *ast.ForStmt:
			ld.checkBlockingIn(s.Cond, held)
			ld.scanStmts(s.Body.List, copyHeld(held), unlockers)
		case *ast.RangeStmt:
			ld.checkBlockingIn(s, held) // range over a channel blocks
			ld.scanStmts(s.Body.List, copyHeld(held), unlockers)
		case *ast.SwitchStmt:
			ld.checkBlockingIn(s.Tag, held)
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					ld.scanStmts(cc.Body, copyHeld(held), unlockers)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					ld.scanStmts(cc.Body, copyHeld(held), unlockers)
				}
			}
		case *ast.SelectStmt:
			if !selectHasDefault(s) && len(held) > 0 {
				ld.reportHeld(s.Pos(), effChan, held)
			}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					ld.scanStmts(cc.Body, copyHeld(held), unlockers)
				}
			}
		case *ast.BlockStmt:
			ld.scanStmts(s.List, copyHeld(held), unlockers)
		case *ast.LabeledStmt:
			ld.scanStmts([]ast.Stmt{s.Stmt}, held, unlockers)
		default:
			ld.checkBlockingIn(stmt, held)
		}
	}
}

// unlockerCall resolves a call to a local unlocker closure to the lock
// key it releases.
func (ld *lockChecker) unlockerCall(call *ast.CallExpr, unlockers map[types.Object]string) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	obj := ld.pass.Info.Uses[id]
	if obj == nil {
		return ""
	}
	return unlockers[obj]
}

// checkBlockingIn reports blocking operations within one statement or
// expression subtree (not descending into nested statements' bodies —
// the caller recurses into those with its own held copies — nor into
// function literals).
func (ld *lockChecker) checkBlockingIn(n ast.Node, held map[string]*heldLock) {
	if n == nil || len(held) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit, *ast.BlockStmt:
			return false
		case *ast.SendStmt:
			ld.reportHeld(m.Pos(), effChan, held)
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				ld.reportHeld(m.Pos(), effChan, held)
			}
		case *ast.RangeStmt:
			if t := ld.pass.Info.TypeOf(m.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					ld.reportHeld(m.X.Pos(), effChan, held)
				}
			}
			return false
		case *ast.CallExpr:
			if e := ld.callEffect(m); e != 0 {
				ld.reportHeld(m.Pos(), e, held)
			}
		}
		return true
	})
}

func (ld *lockChecker) reportHeld(pos token.Pos, e effect, held map[string]*heldLock) {
	for _, h := range held {
		if bad := e &^ h.allowed(); bad != 0 {
			kind := "mutex"
			if h.mutation {
				kind = "per-name mutation lock"
			}
			ld.pass.Reportf(pos, "%s while holding %s (locked at line %d)",
				bad.describe(), kind, ld.pass.Fset.Position(h.pos).Line)
		}
	}
}

func copyHeld(held map[string]*heldLock) map[string]*heldLock {
	out := make(map[string]*heldLock, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func isMethodOf(fn *types.Func, typeName string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == typeName
}

// enclosingBlockOf fabricates a block wrapping the statement list so
// isMutationLock can search assignments in scope. (The list is the body
// being scanned; wrapping loses no information for that search.)
func enclosingBlockOf(stmts []ast.Stmt) *ast.BlockStmt {
	return &ast.BlockStmt{List: stmts}
}
