package lint

import (
	"go/ast"
	"go/types"
)

// AtomicField catches mixed atomic/plain access to the same struct
// field — the bug class of the parallel peel engine, where per-bucket
// counters are atomically incremented by workers and read plainly at
// barriers. A field whose address is ever passed to a sync/atomic
// function must be accessed atomically everywhere, or each plain access
// must carry a suppression explaining the happens-before edge (e.g. "all
// workers joined at wg.Wait before this read").
//
// Typed atomics (atomic.Int64 and friends) encapsulate their word and
// are invisible to this analyzer by construction — migrating a flagged
// field to one is the preferred fix.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "a struct field accessed via sync/atomic must be accessed atomically everywhere",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) error {
	// Pass 1: collect fields whose address reaches a sync/atomic call,
	// and remember those argument expressions so they are not re-flagged
	// as plain accesses in pass 2.
	atomicFields := map[*types.Var]bool{}
	insideAtomic := map[ast.Expr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSyncAtomicCall(pass.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				if fld, root := addressedField(pass.Info, arg); fld != nil {
					atomicFields[fld] = true
					insideAtomic[root] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: flag every plain selector access to a tracked field.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if insideAtomic[sel] {
				return false // the atomic call's own argument
			}
			s, ok := pass.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			fld, ok := s.Obj().(*types.Var)
			if !ok || !atomicFields[fld] {
				return true
			}
			pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic elsewhere; this plain access races unless a happens-before edge is documented",
				fld.Name())
			return true
		})
	}
	return nil
}

// isSyncAtomicCall reports whether the call resolves to a sync/atomic
// package function.
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	// Only package functions take addresses; typed-atomic methods manage
	// their own word.
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// addressedField resolves &x.f or &x.f[i] to the struct field object,
// also returning the selector expression so the caller can exempt it.
func addressedField(info *types.Info, arg ast.Expr) (*types.Var, ast.Expr) {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op.String() != "&" {
		return nil, nil
	}
	inner := ast.Unparen(un.X)
	// &x.f[i]: the element is reached through the field; mixing plain
	// element reads with atomic ones is the same race.
	if ix, ok := inner.(*ast.IndexExpr); ok {
		inner = ast.Unparen(ix.X)
	}
	sel, ok := inner.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, nil
	}
	fld, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, nil
	}
	return fld, sel
}
