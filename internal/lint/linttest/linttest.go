// Package linttest runs an analyzer over a testdata directory and
// compares its diagnostics against `// want` expectations embedded in
// the sources — the stdlib-only counterpart of
// golang.org/x/tools/go/analysis/analysistest.
//
// Expectation syntax, trailing the line a diagnostic is expected on:
//
//	x := make([]int, n) // want `make with non-constant size`
//
// Each backquoted group is a regexp matched against one diagnostic's
// message on that line; a line may carry several groups when several
// diagnostics land on it. Lines without a want comment must produce no
// diagnostics — so testdata encodes the allowed near-misses simply by
// containing them unannotated.
package linttest

import (
	"go/ast"
	"regexp"
	"strings"
	"testing"

	"nucleus/internal/lint"
)

// Run loads dir as an ad-hoc package, applies the analyzer (with
// AppliesTo bypassed — testdata package paths never match production
// scopes), and diffs diagnostics against the want comments.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	prog, err := lint.LoadAdHoc(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := lint.Run(prog, []*lint.Analyzer{a}, lint.RunOptions{ForceApply: true})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := collectWants(t, prog)
	for _, d := range diags {
		if !claimWant(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.claimed {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	claimed bool
}

// wantPattern captures each backquoted group of a want comment.
var wantPattern = regexp.MustCompile("`([^`]*)`")

func collectWants(t *testing.T, prog *lint.Program) []*want {
	t.Helper()
	var out []*want
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					out = append(out, parseWant(t, prog, c)...)
				}
			}
		}
	}
	return out
}

func parseWant(t *testing.T, prog *lint.Program, c *ast.Comment) []*want {
	t.Helper()
	rest, ok := strings.CutPrefix(c.Text, "// want ")
	if !ok {
		return nil
	}
	pos := prog.Fset.Position(c.Pos())
	var out []*want
	for _, m := range wantPattern.FindAllStringSubmatch(rest, -1) {
		re, err := regexp.Compile(m[1])
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
		}
		out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
	}
	if len(out) == 0 {
		t.Fatalf("%s:%d: want comment carries no backquoted pattern", pos.Filename, pos.Line)
	}
	return out
}

// claimWant marks the first unclaimed matching expectation for a
// diagnostic, reporting whether one existed.
func claimWant(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.claimed && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.claimed = true
			return true
		}
	}
	return false
}
