// Package lint is nucleuslint's analysis framework: a small, stdlib-only
// reimplementation of the golang.org/x/tools/go/analysis surface
// (Analyzer / Pass / Diagnostic) plus a package loader that type-checks
// the whole dependency universe from source. The toolchain's go/types and
// go/parser do all the heavy lifting; no third-party module is required,
// so the linter builds and runs in the same sandbox as the code it
// checks.
//
// The analyzers themselves (noalloc, lockdiscipline, syncerr,
// atomicfield, ctxstop) encode invariants this codebase's correctness
// arguments rest on — documented in docs/DEVELOPMENT.md — and are wired
// into CI via cmd/nucleuslint. Findings are suppressed per line with
//
//	//nucleus:lint-ignore <analyzer> <justification>
//
// where the justification is mandatory: an unjustified suppression is
// itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check. Run inspects a single package and reports
// findings through the Pass.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //nucleus:lint-ignore comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// AppliesTo, when non-nil, restricts the analyzer to packages whose
	// import path it accepts. The linttest harness bypasses it so testdata
	// packages exercise every analyzer regardless of path.
	AppliesTo func(pkgPath string) bool
	// Run performs the analysis and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees, including in-package _test.go
	// files (external test packages are separate passes).
	Files []*ast.File
	// Path is the import path under analysis ("nucleus/internal/store";
	// external test packages carry a "_test" suffix).
	Path string
	Pkg  *types.Package
	Info *types.Info
	// Prog is the enclosing load: shared annotation indexes and module
	// metadata.
	Prog *Program

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Program is one loaded set of packages plus the cross-package annotation
// indexes analyzers consult.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	Pkgs       []*Package
	// NoallocFuncs marks functions annotated //nucleus:noalloc, keyed by
	// FuncKey. Built across every loaded package so a noalloc function may
	// call an annotated function in another package.
	NoallocFuncs map[string]bool
}

// Package is one package ready for analysis.
type Package struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// FuncKey names a function for cross-package annotation lookups:
// "pkgpath.Func" for package-level functions, "pkgpath.Recv.Method" for
// methods (pointer receivers are stripped).
func FuncKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// funcDeclKey is FuncKey for a declaration in pkgPath (syntax-side
// counterpart, used while building the annotation index).
func funcDeclKey(pkgPath string, fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		switch tt := t.(type) {
		case *ast.Ident:
			return pkgPath + "." + tt.Name + "." + fd.Name.Name
		case *ast.IndexExpr: // generic receiver T[P]
			if id, ok := tt.X.(*ast.Ident); ok {
				return pkgPath + "." + id.Name + "." + fd.Name.Name
			}
		}
	}
	return pkgPath + "." + fd.Name.Name
}

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
