package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxStop enforces the anytime-serving contract from PR 5: a
// long-running loop in code that has a cancellation signal in scope —
// a context.Context parameter, an Options value carrying a `Stop func()
// bool` field, or a plain `stop func() bool` parameter — must consult
// that signal at least once per iteration. A loop that never polls
// turns a cancel request into a wait-for-completion, which is exactly
// the failure mode budgeted queries exist to avoid.
//
// Scope: only unbounded loops (`for {` / `for cond {`) that perform
// calls are candidates; three-clause counting loops and range loops are
// bounded by construction and exempt. Functions with no signal in scope
// (e.g. the peel engine's worker bodies, which synchronize by barrier)
// are exempt — this analyzer enforces use of a signal the author chose
// to accept, it does not demand one exist.
var CtxStop = &Analyzer{
	Name: "ctxstop",
	Doc:  "long-running loops must poll Options.Stop or a context each iteration",
	AppliesTo: func(path string) bool {
		for _, p := range []string{
			"nucleus/internal/localhi", "nucleus/internal/peel",
			"nucleus/internal/server", "nucleus/internal/dynamic",
		} {
			if strings.HasPrefix(path, p) {
				return true
			}
		}
		return false
	},
	Run: runCtxStop,
}

func runCtxStop(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			signals := stopSignals(pass, fd.Type)
			checkCtxStopBody(pass, fd.Body, signals)
		}
	}
	return nil
}

// checkCtxStopBody walks a body, collecting additional signals from
// enclosed function literals' parameters as it descends.
func checkCtxStopBody(pass *Pass, body ast.Node, signals map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			merged := copySignals(signals)
			for obj := range stopSignals(pass, n.Type) {
				merged[obj] = true
			}
			checkCtxStopBody(pass, n.Body, merged)
			return false
		case *ast.ForStmt:
			if n.Init != nil || n.Post != nil {
				return true // counting loop: bounded by construction
			}
			if len(signals) == 0 {
				return true // no signal in scope to poll
			}
			if !loopDoesWork(n.Body) {
				return true
			}
			if !referencesSignal(pass, n, signals) {
				pass.Reportf(n.Pos(), "unbounded loop never polls a stop signal (context or Stop func in scope); check it each iteration")
			}
		}
		return true
	})
}

// stopSignals collects the cancellation carriers among a function type's
// parameters: context.Context values, (pointers to) structs with a
// `Stop func() bool` field, and bare `func() bool` parameters named
// like a stop check.
func stopSignals(pass *Pass, ft *ast.FuncType) map[types.Object]bool {
	out := map[types.Object]bool{}
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := pass.Info.Defs[name]
			if obj == nil {
				continue
			}
			t := obj.Type()
			switch {
			case isContextType(t):
				out[obj] = true
			case hasStopField(t):
				out[obj] = true
			case isStopFunc(t) && strings.Contains(strings.ToLower(name.Name), "stop"):
				out[obj] = true
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasStopField reports whether t (or *t) is a struct with a field
// `Stop func() bool` — the Options pattern.
func hasStopField(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "Stop" && isStopFunc(f.Type()) {
			return true
		}
	}
	return false
}

func isStopFunc(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// loopDoesWork reports whether the loop body contains at least one call
// — a spin over pure arithmetic terminates on its own condition and is
// not a cancellation hazard worth flagging.
func loopDoesWork(body *ast.BlockStmt) bool {
	works := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			works = true
		}
		return !works
	})
	return works
}

// referencesSignal reports whether the loop (condition or body)
// mentions any signal object — a bare use (`stop()`, passing ctx on),
// `.Stop` selection, or `ctx.Done()`/`ctx.Err()` — all count as the
// iteration consulting cancellation.
func referencesSignal(pass *Pass, loop *ast.ForStmt, signals map[types.Object]bool) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && signals[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

func copySignals(m map[types.Object]bool) map[types.Object]bool {
	out := make(map[types.Object]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
