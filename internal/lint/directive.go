package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive names. All project annotations share the "//nucleus:" prefix
// so a grep for `nucleus:` finds every machine-read comment in the tree.
const (
	// dirNoalloc marks a function whose body must not heap-allocate
	// (attached to the function's doc comment).
	dirNoalloc = "noalloc"
	// dirLintIgnore suppresses one analyzer on one line:
	//   //nucleus:lint-ignore <analyzer> <justification>
	dirLintIgnore = "lint-ignore"
	// dirIgnoreErr discards a Sync/Close/Flush error explicitly:
	//   //nucleus:ignore-err <justification>
	dirIgnoreErr = "ignore-err"
)

// directive is one parsed //nucleus:<name> <args> comment.
type directive struct {
	name string
	args string // remainder after the name, space-trimmed
	pos  token.Pos
	// ownLine is true when the comment is alone on its line (it then
	// applies to the following line); false for trailing comments (which
	// apply to their own line).
	ownLine bool
}

// parseDirective extracts a //nucleus: directive from one comment line.
func parseDirective(c *ast.Comment) (directive, bool) {
	text, ok := strings.CutPrefix(c.Text, "//nucleus:")
	if !ok {
		return directive{}, false
	}
	name, args, _ := strings.Cut(text, " ")
	return directive{name: strings.TrimSpace(name), args: strings.TrimSpace(args), pos: c.Pos()}, true
}

// hasDirective reports whether a doc comment group carries the named
// directive.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if d, ok := parseDirective(c); ok && d.name == name {
			return true
		}
	}
	return false
}

// fileDirectives collects every //nucleus: directive of a file, resolving
// whether each sits on its own line or trails code.
func fileDirectives(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, ok := parseDirective(c)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			d.ownLine = pos.Column == 1 || onlyWhitespaceBefore(fset, f, c)
			out = append(out, d)
		}
	}
	return out
}

// onlyWhitespaceBefore reports whether nothing but indentation precedes
// the comment on its line, i.e. no AST node of the file starts or ends on
// the same line before the comment. The start check matters for lines
// like `for {` or `select {`: the statement starts there but nothing ends
// there, yet a comment after the brace plainly trails code.
func onlyWhitespaceBefore(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	own := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !own {
			return false
		}
		switch n.(type) {
		case *ast.File:
			// The file spans every line without owning any.
			return true
		}
		if fset.Position(n.Pos()).Line == line && n.Pos() < c.Pos() {
			own = false
			return false
		}
		// A node ending on the comment's line before the comment means the
		// comment trails code.
		if fset.Position(n.End()).Line == line && n.End() <= c.Pos() {
			switch n.(type) {
			case *ast.BlockStmt, *ast.FuncDecl, *ast.GenDecl:
				// Containers may span the line without owning it.
			default:
				own = false
				return false
			}
		}
		return true
	})
	return own
}

// suppressionIndex answers "is this diagnostic suppressed?" for one file
// set: a //nucleus:lint-ignore <analyzer> comment suppresses matching
// diagnostics on its own line (trailing form) or on the following line
// (own-line form).
type suppressionIndex struct {
	// byLine maps (filename, line, analyzer) to the suppression's
	// justification (may be empty — reported as a finding by the runner).
	byLine map[suppressKey]*suppression
}

type suppressKey struct {
	file     string
	line     int
	analyzer string
}

type suppression struct {
	pos           token.Position
	justification string
	used          bool
}

// buildSuppressions indexes the lint-ignore directives of a package.
func buildSuppressions(fset *token.FileSet, files []*ast.File) *suppressionIndex {
	idx := &suppressionIndex{byLine: map[suppressKey]*suppression{}}
	for _, f := range files {
		for _, d := range fileDirectives(fset, f) {
			if d.name != dirLintIgnore {
				continue
			}
			analyzer, justification, _ := strings.Cut(d.args, " ")
			pos := fset.Position(d.pos)
			line := pos.Line
			if d.ownLine {
				line++ // an own-line comment guards the next line
			}
			idx.byLine[suppressKey{pos.Filename, line, analyzer}] = &suppression{
				pos:           pos,
				justification: strings.TrimSpace(justification),
			}
		}
	}
	return idx
}

// suppressed consumes a matching suppression for the diagnostic, if any.
func (idx *suppressionIndex) suppressed(d Diagnostic) bool {
	s, ok := idx.byLine[suppressKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}]
	if !ok {
		return false
	}
	s.used = true
	return true
}

// problems reports suppression-mechanism findings: every lint-ignore must
// carry a written justification, and must actually suppress something —
// a stale ignore is noise that hides future regressions.
func (idx *suppressionIndex) problems() []Diagnostic {
	var out []Diagnostic
	for key, s := range idx.byLine {
		switch {
		case s.justification == "":
			out = append(out, Diagnostic{
				Analyzer: "lint",
				Pos:      s.pos,
				Message: "lint-ignore for " + key.analyzer +
					" has no justification; write //nucleus:lint-ignore " + key.analyzer + " <why this is safe>",
			})
		case !s.used:
			out = append(out, Diagnostic{
				Analyzer: "lint",
				Pos:      s.pos,
				Message:  "lint-ignore for " + key.analyzer + " suppresses nothing on its line; remove it",
			})
		}
	}
	return out
}
