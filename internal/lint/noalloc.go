package lint

import (
	"go/ast"
	"go/types"
)

// Noalloc enforces the zero-allocation contract of the fused sweep
// kernels: a function annotated //nucleus:noalloc must not contain any
// heap-allocating construct. The runtime counterpart is the allocs/op==0
// CI gate of cmd/benchsweep; this analyzer is the compile-time form, so a
// regression is caught before a benchmark ever runs.
//
// Flagged constructs: append (may grow the backing array), make and new,
// slice/map composite literals and &-literals, capturing closures,
// goroutine launches, fmt calls, string concatenation and string<->[]byte
// conversions, interface boxing (concrete argument to interface
// parameter, or an explicit conversion to an interface type), and calls
// to module-internal functions not themselves annotated noalloc (the
// contract is only as strong as the call tree). Amortized-zero growth
// paths (grow-once scratch buffers) carry per-line lint-ignore
// suppressions with written justifications.
var Noalloc = &Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //nucleus:noalloc must not heap-allocate",
	Run:  runNoalloc,
}

// noallocCalleeAllowed lists std packages whose functions are known not
// to allocate on any path used by the kernels.
var noallocCalleeAllowed = map[string]bool{
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
}

func runNoalloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, dirNoalloc) {
				continue
			}
			checkNoallocBody(pass, fd)
		}
	}
	return nil
}

func checkNoallocBody(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkNoallocCall(pass, fd, n)
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "%s: slice/map composite literal allocates", noallocWhere(fd))
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "%s: &composite literal allocates", noallocWhere(fd))
				}
			}
		case *ast.FuncLit:
			if captured := closureCaptures(pass, n); len(captured) > 0 {
				pass.Reportf(n.Pos(), "%s: closure capturing %s allocates", noallocWhere(fd), captured[0])
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s: go statement allocates a goroutine", noallocWhere(fd))
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if t := info.TypeOf(n); t != nil && isString(t) {
					pass.Reportf(n.Pos(), "%s: string concatenation allocates", noallocWhere(fd))
				}
			}
		}
		return true
	})
}

// checkNoallocCall classifies one call inside a noalloc function.
func checkNoallocCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.Info
	where := noallocWhere(fd)

	// Type conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		to := tv.Type
		if len(call.Args) == 1 {
			from := info.TypeOf(call.Args[0])
			switch {
			case isInterface(to) && from != nil && !isInterface(from) && !isUntypedNil(info, call.Args[0]):
				pass.Reportf(call.Pos(), "%s: conversion to interface type boxes and may allocate", where)
			case isStringBytesConv(from, to):
				pass.Reportf(call.Pos(), "%s: string/[]byte conversion copies and allocates", where)
			}
		}
		return
	}

	callee := calleeFunc(info, call)

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "append":
				pass.Reportf(call.Pos(), "%s: append may grow its backing array and allocate", where)
			case "make":
				if makeHasNonConstSize(info, call) {
					pass.Reportf(call.Pos(), "%s: make with non-constant size allocates", where)
				} else {
					pass.Reportf(call.Pos(), "%s: make allocates; use a caller-owned buffer", where)
				}
			case "new":
				pass.Reportf(call.Pos(), "%s: new allocates", where)
			}
			return
		}
	}

	// Interface boxing through ordinary call arguments.
	if callee != nil || info.TypeOf(call.Fun) != nil {
		reportBoxedArgs(pass, fd, call)
	}

	if callee == nil {
		return // call through a function value or interface method: boxing checked above
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return // error method etc.
	}
	switch {
	case pkg.Path() == "fmt":
		pass.Reportf(call.Pos(), "%s: fmt.%s allocates", where, callee.Name())
	case noallocCalleeAllowed[pkg.Path()]:
		// Known alloc-free std helpers.
	case pkg.Path() == pass.Pkg.Path() || isModulePath(pass.Prog.ModulePath, pkg.Path()):
		// Module-internal call: the callee must carry the annotation too,
		// or the contract silently leaks through the call tree.
		if !pass.Prog.NoallocFuncs[FuncKey(callee)] {
			pass.Reportf(call.Pos(), "%s: call to %s.%s, which is not annotated //nucleus:noalloc", where, pkg.Name(), callee.Name())
		}
	}
}

// reportBoxedArgs flags concrete arguments passed to interface
// parameters.
func reportBoxedArgs(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if s, ok := last.(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		}
		if pt == nil || !isInterface(pt) {
			continue
		}
		at := pass.Info.TypeOf(arg)
		if at != nil && !isInterface(at) && !isUntypedNil(pass.Info, arg) {
			pass.Reportf(arg.Pos(), "%s: passing %s to interface parameter boxes and may allocate", noallocWhere(fd), at)
		}
	}
}

// closureCaptures returns the names of outer variables a func literal
// captures (a capturing closure is heap-allocated; a capture-free one is
// a static singleton and free).
func closureCaptures(pass *Pass, lit *ast.FuncLit) []string {
	inner := map[types.Object]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				inner[obj] = true
			}
		}
		return true
	})
	var captured []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || inner[obj] || seen[obj] || v.IsField() {
			return true
		}
		// Package-level variables are not captures.
		if v.Parent() == pass.Pkg.Scope() || v.Parent() == types.Universe {
			return true
		}
		seen[obj] = true
		captured = append(captured, v.Name())
		return true
	})
	return captured
}

func noallocWhere(fd *ast.FuncDecl) string {
	return fd.Name.Name + " is //nucleus:noalloc"
}

func makeHasNonConstSize(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args[1:] {
		if tv, ok := info.Types[arg]; !ok || tv.Value == nil {
			return true
		}
	}
	return false
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

func isStringBytesConv(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	return (isString(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isString(to))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// calleeFunc resolves the static callee of a call, nil for builtins,
// conversions and calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

func isModulePath(module, path string) bool {
	if module == "" {
		return false
	}
	return path == module || len(path) > len(module) && path[:len(module)] == module && path[len(module)] == '/'
}
