package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader type-checks the entire dependency universe from source: the
// container carries no compiled export data and no module cache, so
// `go list -deps -test -json` supplies the file sets in topological order
// and go/types checks each package against the already-checked results of
// its imports. The whole standard-library closure of this module checks
// in about two seconds; results are cached per Load.

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Standard     bool
	Name         string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// universe resolves import paths to type-checked packages, falling back
// to the "vendor/" prefix the standard library's vendored dependencies
// are listed under.
type universe struct {
	pkgs map[string]*types.Package
}

func (u *universe) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := u.pkgs[path]; ok {
		return p, nil
	}
	if p, ok := u.pkgs["vendor/"+path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("package %q not loaded", path)
}

// goList runs `go list` in dir with CGO disabled (the pure-Go file sets
// are what a source-only type-check can consume) and decodes the JSON
// package stream.
func goList(dir string, args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// loader accumulates parse and check state for one Load call.
type loader struct {
	dir   string
	fset  *token.FileSet
	uni   *universe
	files map[string]*ast.File // absolute path -> parsed file
}

func (l *loader) parse(dir string, names []string) ([]*ast.File, error) {
	var out []*ast.File
	for _, n := range names {
		path := filepath.Join(dir, n)
		if f, ok := l.files[path]; ok {
			out = append(out, f)
			continue
		}
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		l.files[path] = f
		out = append(out, f)
	}
	return out, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// check type-checks one file set as package path, recording it in the
// universe when record is set.
func (l *loader) check(path string, files []*ast.File, info *types.Info, record bool) (*types.Package, error) {
	conf := types.Config{
		Importer: l.uni,
		// Tolerate recoverable errors in the standard library (e.g.
		// platform-specific declarations the pure-Go file set omits);
		// module packages must check cleanly, enforced by the caller.
		Error: func(error) {},
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if record && pkg != nil {
		l.uni.pkgs[path] = pkg
	}
	return pkg, err
}

// universeOf lists deps of the given patterns (tests included) and
// type-checks every plain package in topological order.
func (l *loader) universeOf(patterns []string) error {
	args := append([]string{"-deps", "-test",
		"-json=ImportPath,Dir,Standard,Name,GoFiles,TestGoFiles,XTestGoFiles"}, patterns...)
	pkgs, err := goList(l.dir, args...)
	if err != nil {
		return err
	}
	for _, p := range pkgs {
		// Skip test variants ("pkg [pkg.test]", "pkg.test"): the plain
		// package is what import resolution needs, and target packages are
		// re-checked with their test files separately.
		if strings.Contains(p.ImportPath, " [") || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.ImportPath == "unsafe" {
			continue
		}
		if _, ok := l.uni.pkgs[p.ImportPath]; ok {
			continue
		}
		files, err := l.parse(p.Dir, p.GoFiles)
		if err != nil {
			return fmt.Errorf("parsing %s: %v", p.ImportPath, err)
		}
		if _, err := l.check(p.ImportPath, files, nil, true); err != nil && !p.Standard {
			return fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
	}
	return nil
}

// Load type-checks the packages matching patterns (and their whole
// dependency universe) rooted at dir, returning them ready for analysis.
// In-package test files are folded into their package; external test
// packages are returned as separate entries with a "_test" path suffix.
func Load(dir string, patterns []string) (*Program, error) {
	l := &loader{
		dir:   dir,
		fset:  token.NewFileSet(),
		uni:   &universe{pkgs: map[string]*types.Package{}},
		files: map[string]*ast.File{},
	}
	if err := l.universeOf(patterns); err != nil {
		return nil, err
	}

	targets, err := goList(dir, append([]string{
		"-json=ImportPath,Dir,Standard,Name,GoFiles,TestGoFiles,XTestGoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:         l.fset,
		ModulePath:   modulePath(dir),
		NoallocFuncs: map[string]bool{},
	}

	for _, t := range targets {
		if t.Standard {
			continue
		}
		// The linted view of a package includes its in-package test files:
		// the durability and allocation invariants hold for test helpers
		// too (unchecked Close calls in store tests are exactly the class
		// of finding this suite exists for).
		all := append(append([]string{}, t.GoFiles...), t.TestGoFiles...)
		files, err := l.parse(t.Dir, all)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", t.ImportPath, err)
		}
		info := newInfo()
		pkg, err := l.check(t.ImportPath, files, info, false)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s (with test files): %v", t.ImportPath, err)
		}
		prog.Pkgs = append(prog.Pkgs, &Package{Path: t.ImportPath, Files: files, Pkg: pkg, Info: info})

		if len(t.XTestGoFiles) > 0 {
			xfiles, err := l.parse(t.Dir, t.XTestGoFiles)
			if err != nil {
				return nil, fmt.Errorf("parsing %s external tests: %v", t.ImportPath, err)
			}
			xinfo := newInfo()
			xpkg, err := l.check(t.ImportPath+"_test", xfiles, xinfo, false)
			if err != nil {
				return nil, fmt.Errorf("type-checking %s external tests: %v", t.ImportPath, err)
			}
			prog.Pkgs = append(prog.Pkgs, &Package{Path: t.ImportPath + "_test", Files: xfiles, Pkg: xpkg, Info: xinfo})
		}
	}

	indexNoalloc(prog)
	return prog, nil
}

// LoadAdHoc type-checks the .go files of a single directory as one
// package (plus its import closure), for the linttest harness's testdata
// packages. The package is registered under its directory base name.
func LoadAdHoc(dir string) (*Program, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	l := &loader{
		dir:   dir,
		fset:  token.NewFileSet(),
		uni:   &universe{pkgs: map[string]*types.Package{}},
		files: map[string]*ast.File{},
	}
	files, err := l.parse(dir, names)
	if err != nil {
		return nil, err
	}
	var imports []string
	seen := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p != "unsafe" && !seen[p] {
				seen[p] = true
				imports = append(imports, p)
			}
		}
	}
	if len(imports) > 0 {
		if err := l.universeOf(imports); err != nil {
			return nil, err
		}
	}
	path := filepath.Base(dir)
	info := newInfo()
	pkg, err := l.check(path, files, info, false)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", dir, err)
	}
	prog := &Program{
		Fset:         l.fset,
		ModulePath:   path, // same-package calls resolve as module-internal
		Pkgs:         []*Package{{Path: path, Files: files, Pkg: pkg, Info: info}},
		NoallocFuncs: map[string]bool{},
	}
	indexNoalloc(prog)
	return prog, nil
}

// modulePath reads the module directive of dir's go.mod.
func modulePath(dir string) string {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// indexNoalloc records every function annotated //nucleus:noalloc across
// the loaded packages.
func indexNoalloc(prog *Program) {
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if hasDirective(fd.Doc, dirNoalloc) {
					prog.NoallocFuncs[funcDeclKey(pkg.Path, fd)] = true
				}
			}
		}
	}
}
