package lint_test

import (
	"strings"
	"testing"

	"nucleus/internal/lint"
	"nucleus/internal/lint/linttest"
)

func TestNoalloc(t *testing.T) {
	linttest.Run(t, lint.Noalloc, "testdata/noalloc")
}

func TestLockDiscipline(t *testing.T) {
	linttest.Run(t, lint.LockDiscipline, "testdata/lockdiscipline")
}

func TestSyncErr(t *testing.T) {
	linttest.Run(t, lint.SyncErr, "testdata/syncerr")
}

func TestAtomicField(t *testing.T) {
	linttest.Run(t, lint.AtomicField, "testdata/atomicfield")
}

func TestCtxStop(t *testing.T) {
	linttest.Run(t, lint.CtxStop, "testdata/ctxstop")
}

// TestSuppressionProblems exercises the mechanism findings directly:
// they land on the directive's own line, where a want comment cannot
// sit.
func TestSuppressionProblems(t *testing.T) {
	prog, err := lint.LoadAdHoc("testdata/suppress")
	if err != nil {
		t.Fatalf("loading: %v", err)
	}
	diags, err := lint.Run(prog, []*lint.Analyzer{lint.SyncErr}, lint.RunOptions{ForceApply: true})
	if err != nil {
		t.Fatalf("running: %v", err)
	}
	var stale, unjustified int
	for _, d := range diags {
		switch {
		case d.Analyzer == "lint" && strings.Contains(d.Message, "suppresses nothing"):
			stale++
		case d.Analyzer == "lint" && strings.Contains(d.Message, "no justification"):
			unjustified++
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if stale != 1 {
		t.Errorf("stale-ignore findings = %d, want 1", stale)
	}
	if unjustified != 1 {
		t.Errorf("missing-justification findings = %d, want 1", unjustified)
	}
}
