package lint

import "fmt"

// RunOptions configures one analysis run.
type RunOptions struct {
	// ForceApply runs every analyzer on every package, ignoring
	// Analyzer.AppliesTo (used by the linttest harness, whose testdata
	// package paths never match the production scopes).
	ForceApply bool
}

// Run applies the analyzers to the program's packages, filters
// suppressed findings, and appends suppression-mechanism findings
// (missing justification, stale ignore). The result is sorted by
// position.
func Run(prog *Program, analyzers []*Analyzer, opts RunOptions) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range prog.Pkgs {
		idx := buildSuppressions(prog.Fset, pkg.Files)
		for _, a := range analyzers {
			if !opts.ForceApply && a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     prog.Fset,
				Files:    pkg.Files,
				Path:     pkg.Path,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				Prog:     prog,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if !idx.suppressed(d) {
					all = append(all, d)
				}
			}
		}
		all = append(all, idx.problems()...)
	}
	sortDiagnostics(all)
	return all, nil
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Noalloc,
		LockDiscipline,
		SyncErr,
		AtomicField,
		CtxStop,
	}
}
