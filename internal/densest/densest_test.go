package densest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nucleus/internal/graph"
)

func TestApproxPlantedClique(t *testing.T) {
	// A K20 planted in a sparse random graph: the clique is the densest
	// subgraph and greedy peeling must find (at least) it.
	rng := rand.New(rand.NewSource(25))
	var edges [][2]uint32
	for u := 0; u < 20; u++ {
		for v := u + 1; v < 20; v++ {
			edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		}
	}
	for i := 0; i < 400; i++ {
		u := uint32(rng.Intn(500))
		v := uint32(rng.Intn(500))
		edges = append(edges, [2]uint32{u, v})
	}
	g := graph.Build(500, edges)
	res := Approx(g)
	// The clique's average degree is 19; a sparse G(500,400) region cannot
	// beat it, so the result must include the clique and average >= 19.
	if res.AverageDegree < 19 {
		t.Fatalf("average degree = %v, want >= 19", res.AverageDegree)
	}
	inClique := 0
	for _, v := range res.Vertices {
		if v < 20 {
			inClique++
		}
	}
	if inClique != 20 {
		t.Fatalf("result contains %d of 20 clique vertices", inClique)
	}
}

func TestApproxCompleteGraph(t *testing.T) {
	g := graph.Complete(8)
	res := Approx(g)
	if len(res.Vertices) != 8 || res.AverageDegree != 7 || res.EdgeDensity != 1 {
		t.Fatalf("K8 result = %+v", res)
	}
}

func TestApproxEmpty(t *testing.T) {
	res := Approx(graph.Build(0, nil))
	if len(res.Vertices) != 0 {
		t.Fatal("nonempty result on empty graph")
	}
	res = Approx(graph.Build(3, nil))
	if res.AverageDegree != 0 {
		t.Fatalf("edgeless result = %+v", res)
	}
}

// TestApproxNeverWorseThanWhole: the greedy result's average degree is at
// least the whole graph's (the whole graph is a candidate suffix).
func TestApproxNeverWorseThanWhole(t *testing.T) {
	err := quick.Check(func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%40) + 2
		m := int(mRaw%150) + 1
		if maxM := n * (n - 1) / 2; m > maxM {
			m = maxM
		}
		g := graph.GnM(n, m, seed)
		res := Approx(g)
		whole := 2 * float64(g.M()) / float64(g.N())
		return res.AverageDegree >= whole-1e-9
	}, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(26))})
	if err != nil {
		t.Fatal(err)
	}
}

// TestApproxBeatsBruteForceHalf: 2-approximation guarantee against brute
// force on tiny graphs.
func TestApproxBeatsBruteForceHalf(t *testing.T) {
	err := quick.Check(func(seed int64, mRaw uint8) bool {
		n := 9
		m := int(mRaw%30) + 1
		if maxM := n * (n - 1) / 2; m > maxM {
			m = maxM
		}
		g := graph.GnM(n, m, seed)
		opt := bruteForceDensest(g)
		res := Approx(g)
		return res.AverageDegree >= opt/2-1e-9
	}, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(27))})
	if err != nil {
		t.Fatal(err)
	}
}

func bruteForceDensest(g *graph.Graph) float64 {
	n := g.N()
	best := 0.0
	for mask := 1; mask < 1<<n; mask++ {
		var vs []uint32
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				vs = append(vs, uint32(v))
			}
		}
		res := Measure(g, vs)
		if res.AverageDegree > best {
			best = res.AverageDegree
		}
	}
	return best
}

func TestMaxCore(t *testing.T) {
	// K6 attached to a path: max core is exactly the K6.
	var edges [][2]uint32
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		}
	}
	edges = append(edges, [2]uint32{5, 6}, [2]uint32{6, 7})
	g := graph.Build(8, edges)
	res := MaxCore(g)
	if len(res.Vertices) != 6 || res.EdgeDensity != 1 {
		t.Fatalf("max core = %+v", res)
	}
}

func TestMeasure(t *testing.T) {
	g := graph.Complete(5)
	res := Measure(g, []uint32{4, 0, 2}) // unsorted input
	if res.Edges != 3 || res.AverageDegree != 2 || res.EdgeDensity != 1 {
		t.Fatalf("measure = %+v", res)
	}
	if res.Vertices[0] != 0 || res.Vertices[2] != 4 {
		t.Fatal("vertices not sorted")
	}
}
