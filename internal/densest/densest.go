// Package densest finds approximately densest subgraphs, the motivating
// application of the paper's introduction. It implements Charikar's greedy
// 2-approximation for the maximum average-degree subgraph: peel vertices
// in minimum-degree order and keep the prefix-complement maximizing
// average degree. The peeling order is exactly the k-core order, so this
// rides on the same machinery as the decompositions — and the best core
// (the max-k core) is itself a well-known 2-approximation.
package densest

import (
	"sort"

	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
	"nucleus/internal/peel"
)

// Result describes a dense subgraph.
type Result struct {
	// Vertices of the subgraph, sorted ascending.
	Vertices []uint32
	// Edges is the number of induced edges.
	Edges int64
	// AverageDegree is 2*Edges/|Vertices|, the density objective.
	AverageDegree float64
	// EdgeDensity is Edges / C(|Vertices|, 2).
	EdgeDensity float64
}

// Approx returns Charikar's greedy 2-approximation of the densest
// subgraph (maximum average degree): among all suffixes of the k-core
// peeling order, the one with the highest average degree. The returned
// average degree is at least half the optimum.
func Approx(g *graph.Graph) *Result {
	n := g.N()
	if n == 0 {
		return &Result{}
	}
	pr := peel.Run(nucleus.NewCore(g))

	// Walk the peeling order, removing vertices one at a time and tracking
	// the remaining edge count; the candidate subgraphs are the suffixes.
	removed := make([]bool, n)
	remainingEdges := g.M()
	bestStart, bestEdges := 0, g.M()
	bestAvg := 2 * float64(g.M()) / float64(n)
	for i, c := range pr.Order {
		u := uint32(c)
		removed[u] = true
		for _, v := range g.Neighbors(u) {
			if !removed[v] {
				remainingEdges--
			}
		}
		size := n - i - 1
		if size == 0 {
			break
		}
		avg := 2 * float64(remainingEdges) / float64(size)
		if avg > bestAvg {
			bestAvg, bestStart, bestEdges = avg, i+1, remainingEdges
		}
	}

	vs := make([]uint32, 0, n-bestStart)
	for _, c := range pr.Order[bestStart:] {
		vs = append(vs, uint32(c))
	}
	sortU32(vs)
	res := &Result{Vertices: vs, Edges: bestEdges, AverageDegree: bestAvg}
	if len(vs) >= 2 {
		res.EdgeDensity = 2 * float64(bestEdges) / (float64(len(vs)) * float64(len(vs)-1))
	}
	return res
}

// MaxCore returns the maximum-k core of the graph (all vertices whose core
// number equals the degeneracy) as a dense-subgraph result. Also a
// 2-approximation of the densest subgraph.
func MaxCore(g *graph.Graph) *Result {
	if g.N() == 0 {
		return &Result{}
	}
	pr := peel.Run(nucleus.NewCore(g))
	var vs []uint32
	for v, k := range pr.Kappa {
		if k == pr.MaxKappa {
			vs = append(vs, uint32(v))
		}
	}
	return measure(g, vs)
}

// measure computes the density statistics of a sorted vertex set.
func measure(g *graph.Graph, vs []uint32) *Result {
	in := make(map[uint32]struct{}, len(vs))
	for _, v := range vs {
		in[v] = struct{}{}
	}
	var edges int64
	for _, u := range vs {
		for _, v := range g.Neighbors(u) {
			if v > u {
				if _, ok := in[v]; ok {
					edges++
				}
			}
		}
	}
	res := &Result{Vertices: vs, Edges: edges}
	if len(vs) > 0 {
		res.AverageDegree = 2 * float64(edges) / float64(len(vs))
	}
	if len(vs) >= 2 {
		res.EdgeDensity = 2 * float64(edges) / (float64(len(vs)) * float64(len(vs)-1))
	}
	return res
}

// Measure computes the density statistics of an explicit vertex set.
func Measure(g *graph.Graph, vs []uint32) *Result {
	cp := append([]uint32(nil), vs...)
	sortU32(cp)
	return measure(g, cp)
}

func sortU32(a []uint32) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}
