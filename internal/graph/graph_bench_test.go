package graph

import "testing"

func BenchmarkBuild(b *testing.B) {
	edges := GnM(5000, 40000, 1).Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(5000, edges)
	}
}

func BenchmarkGnM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GnM(5000, 40000, int64(i))
	}
}

func BenchmarkRMAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RMAT(12, 8, 0.57, 0.19, 0.19, int64(i))
	}
}

func BenchmarkPowerLawCluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		PowerLawCluster(4000, 8, 0.5, int64(i))
	}
}

func BenchmarkDegeneracyOrder(b *testing.B) {
	g := RMAT(13, 8, 0.57, 0.19, 0.19, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.DegeneracyOrder()
	}
}

func BenchmarkEdgeID(b *testing.B) {
	g := RMAT(12, 8, 0.57, 0.19, 0.19, 3)
	edges := g.Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		g.EdgeID(e[0], e[1])
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	g := GnM(10000, 30000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ConnectedComponents()
	}
}

func BenchmarkBFSWithin(b *testing.B) {
	g := PowerLawCluster(10000, 6, 0.4, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFSWithin([]uint32{uint32(i % g.N())}, 2)
	}
}
