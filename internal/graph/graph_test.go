package graph

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuildBasic(t *testing.T) {
	g := Build(4, [][2]uint32{{0, 1}, {1, 2}, {2, 3}, {0, 1}, {1, 0}, {2, 2}})
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3 (dups and self-loop removed)", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("missing edge {0,1}")
	}
	if g.HasEdge(0, 3) {
		t.Error("unexpected edge {0,3}")
	}
	if g.HasEdge(2, 2) {
		t.Error("self-loop retained")
	}
	if d := g.Degree(1); d != 2 {
		t.Errorf("deg(1) = %d, want 2", d)
	}
}

func TestBuildInferN(t *testing.T) {
	g := Build(-1, [][2]uint32{{5, 9}})
	if g.N() != 10 {
		t.Fatalf("N = %d, want 10", g.N())
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
}

func TestBuildEmpty(t *testing.T) {
	g := Build(-1, nil)
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph: n=%d m=%d", g.N(), g.M())
	}
	g2 := Build(3, nil)
	if g2.N() != 3 || g2.M() != 0 {
		t.Fatalf("edgeless graph: n=%d m=%d", g2.N(), g2.M())
	}
}

func TestNeighborsSortedUnique(t *testing.T) {
	g := GnM(200, 800, 1)
	for u := 0; u < g.N(); u++ {
		ns := g.Neighbors(uint32(u))
		for i := 1; i < len(ns); i++ {
			if ns[i] <= ns[i-1] {
				t.Fatalf("row %d not sorted/unique at %d: %v", u, i, ns)
			}
		}
		for _, v := range ns {
			if v == uint32(u) {
				t.Fatalf("self-loop on %d", u)
			}
		}
	}
}

func TestEdgeIDsConsistent(t *testing.T) {
	g := GnM(100, 300, 2)
	seen := make(map[int64][2]uint32)
	for u := 0; u < g.N(); u++ {
		ns := g.Neighbors(uint32(u))
		ids := g.EdgeIDs(uint32(u))
		if len(ns) != len(ids) {
			t.Fatalf("row %d: len mismatch", u)
		}
		for i, v := range ns {
			e := ids[i]
			if e < 0 || e >= g.M() {
				t.Fatalf("edge id %d out of range", e)
			}
			lo, hi := uint32(u), v
			if lo > hi {
				lo, hi = hi, lo
			}
			if prev, ok := seen[e]; ok {
				if prev != [2]uint32{lo, hi} {
					t.Fatalf("edge id %d maps to both %v and %v", e, prev, [2]uint32{lo, hi})
				}
			} else {
				seen[e] = [2]uint32{lo, hi}
			}
		}
	}
	if int64(len(seen)) != g.M() {
		t.Fatalf("saw %d distinct ids, want %d", len(seen), g.M())
	}
	// Edge endpoint table agrees with EdgeID lookups.
	for e := int64(0); e < g.M(); e++ {
		u, v := g.Edge(e)
		if u >= v {
			t.Fatalf("edge %d endpoints not ordered: %d %d", e, u, v)
		}
		id, ok := g.EdgeID(u, v)
		if !ok || id != e {
			t.Fatalf("EdgeID(%d,%d) = %d,%v want %d", u, v, id, ok, e)
		}
		id2, ok2 := g.EdgeID(v, u)
		if !ok2 || id2 != e {
			t.Fatalf("EdgeID(%d,%d) = %d,%v want %d", v, u, id2, ok2, e)
		}
	}
}

func TestEdgesList(t *testing.T) {
	g := Complete(5)
	edges := g.Edges()
	if len(edges) != 10 {
		t.Fatalf("K5 has %d edges, want 10", len(edges))
	}
	for e, pair := range edges {
		id, ok := g.EdgeID(pair[0], pair[1])
		if !ok || id != int64(e) {
			t.Fatalf("edge %d inconsistent", e)
		}
	}
}

func TestDegreesAndMaxDegree(t *testing.T) {
	g := Star(7)
	if g.MaxDegree() != 7 {
		t.Fatalf("star max degree = %d, want 7", g.MaxDegree())
	}
	d := g.Degrees()
	if d[0] != 7 {
		t.Fatalf("hub degree = %d", d[0])
	}
	for v := 1; v <= 7; v++ {
		if d[v] != 1 {
			t.Fatalf("leaf %d degree = %d", v, d[v])
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := GnM(60, 150, 3)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestBinaryRoundTrip(t *testing.T) {
	g := GnM(60, 150, 4)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# comment\n% another\n\n0 1\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("0\n")); err == nil {
		t.Error("want error for short line")
	}
	if _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Error("want error for non-numeric")
	}
	if _, err := ReadBinary(strings.NewReader("not a graph file....")); err == nil {
		t.Error("want error for bad magic")
	}
}

func assertSameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("shape mismatch: (%d,%d) vs (%d,%d)", a.N(), a.M(), b.N(), b.M())
	}
	for u := 0; u < a.N(); u++ {
		na, nb := a.Neighbors(uint32(u)), b.Neighbors(uint32(u))
		if len(na) != len(nb) {
			t.Fatalf("vertex %d degree mismatch", u)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("vertex %d adjacency mismatch", u)
			}
		}
	}
}

func TestDegeneracyOrderCompleteGraph(t *testing.T) {
	g := Complete(6)
	_, d := g.DegeneracyOrder()
	if d != 5 {
		t.Fatalf("degeneracy(K6) = %d, want 5", d)
	}
}

func TestDegeneracyOrderTree(t *testing.T) {
	g := Path(50)
	_, d := g.DegeneracyOrder()
	if d != 1 {
		t.Fatalf("degeneracy(path) = %d, want 1", d)
	}
}

func TestDegeneracyOrderIsPermutation(t *testing.T) {
	g := GnM(120, 500, 5)
	rank, d := g.DegeneracyOrder()
	seen := make([]bool, g.N())
	for _, r := range rank {
		if r < 0 || int(r) >= g.N() || seen[r] {
			t.Fatalf("rank not a permutation")
		}
		seen[r] = true
	}
	if d < 1 {
		t.Fatalf("degeneracy = %d", d)
	}
}

// TestDegeneracyMatchesNaive compares against a naive repeated-min removal.
func TestDegeneracyMatchesNaive(t *testing.T) {
	quickCheck(t, func(g *Graph) bool {
		_, fast := g.DegeneracyOrder()
		return fast == naiveDegeneracy(g)
	})
}

func naiveDegeneracy(g *Graph) int {
	n := g.N()
	deg := make([]int, n)
	removed := make([]bool, n)
	for u := 0; u < n; u++ {
		deg[u] = g.Degree(uint32(u))
	}
	degeneracy := 0
	for iter := 0; iter < n; iter++ {
		best := -1
		for u := 0; u < n; u++ {
			if !removed[u] && (best < 0 || deg[u] < deg[best]) {
				best = u
			}
		}
		if deg[best] > degeneracy {
			degeneracy = deg[best]
		}
		removed[best] = true
		for _, v := range g.Neighbors(uint32(best)) {
			if !removed[v] {
				deg[v]--
			}
		}
	}
	return degeneracy
}

func TestDegreeOrderSorted(t *testing.T) {
	g := GnM(80, 300, 6)
	rank := g.DegreeOrder()
	byRank := make([]int, g.N())
	for u, r := range rank {
		byRank[r] = u
	}
	for i := 1; i < len(byRank); i++ {
		a, b := byRank[i-1], byRank[i]
		if g.Degree(uint32(a)) > g.Degree(uint32(b)) {
			t.Fatalf("degree order violated at rank %d", i)
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	g := Build(7, [][2]uint32{{0, 1}, {1, 2}, {3, 4}})
	comp, count := g.ConnectedComponents()
	if count != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("count = %d, want 4", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("component {0,1,2} split")
	}
	if comp[3] != comp[4] {
		t.Error("component {3,4} split")
	}
	if comp[5] == comp[6] {
		t.Error("singletons merged")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(6)
	sub, remap := g.InducedSubgraph([]uint32{0, 2, 4})
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced K3: n=%d m=%d", sub.N(), sub.M())
	}
	if remap[0] != 0 || remap[2] != 1 || remap[4] != 2 {
		t.Fatalf("remap wrong: %v", remap)
	}
	if remap[1] != -1 {
		t.Fatalf("excluded vertex mapped: %v", remap)
	}
}

func TestBFSWithin(t *testing.T) {
	g := Path(10)
	got := g.BFSWithin([]uint32{5}, 2)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []uint32{3, 4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if len(g.BFSWithin([]uint32{0}, 0)) != 1 {
		t.Error("hops=0 should return only seeds")
	}
}

func TestGeneratorsShape(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		n    int
	}{
		{"GnM", GnM(100, 300, 1), 100},
		{"BA", BarabasiAlbert(100, 3, 1), 100},
		{"RMAT", RMAT(7, 4, 0.57, 0.19, 0.19, 1), 128},
		{"WS", WattsStrogatz(100, 3, 0.1, 1), 100},
		{"Planted", PlantedCommunities(4, 10, 0.5, 20, 1), 40},
		{"PLC", PowerLawCluster(100, 3, 0.5, 1), 100},
		{"LogNormal", LogNormalDegrees(100, 1.0, 1.0, 1), 100},
		{"Turan", Turan(12, 4), 12},
		{"CliqueChain", CliqueChain(3, 4), 12},
		{"Cycle", Cycle(9), 9},
	}
	for _, c := range cases {
		if c.g.N() != c.n {
			t.Errorf("%s: n = %d, want %d", c.name, c.g.N(), c.n)
		}
		if c.g.M() == 0 {
			t.Errorf("%s: no edges", c.name)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := RMAT(8, 4, 0.57, 0.19, 0.19, 99)
	b := RMAT(8, 4, 0.57, 0.19, 0.19, 99)
	assertSameGraph(t, a, b)
	c := BarabasiAlbert(200, 4, 7)
	d := BarabasiAlbert(200, 4, 7)
	assertSameGraph(t, c, d)
}

func TestBarabasiAlbertDegrees(t *testing.T) {
	g := BarabasiAlbert(500, 4, 3)
	// Every vertex beyond the seed clique attaches with exactly k edges, so
	// min degree is k.
	for u := 0; u < g.N(); u++ {
		if g.Degree(uint32(u)) < 4 {
			t.Fatalf("vertex %d degree %d < k", u, g.Degree(uint32(u)))
		}
	}
}

func TestFixtures(t *testing.T) {
	fig2 := Figure2()
	if fig2.N() != 6 || fig2.M() != 6 {
		t.Fatalf("Figure2 shape: n=%d m=%d", fig2.N(), fig2.M())
	}
	wantDeg := []int{2, 3, 2, 2, 2, 1} // a..f
	for u, w := range wantDeg {
		if fig2.Degree(uint32(u)) != w {
			t.Errorf("Figure2 deg(%s) = %d, want %d", Figure2Vertices[u], fig2.Degree(uint32(u)), w)
		}
	}
	if g := TrussToy(); g.N() != 7 {
		t.Errorf("TrussToy n = %d", g.N())
	}
	if g := Nucleus34Toy(); g.N() != 8 {
		t.Errorf("Nucleus34Toy n = %d", g.N())
	}
	if g := LevelsToy(); g.N() != 7 {
		t.Errorf("LevelsToy n = %d", g.N())
	}
}

// quickCheck runs the predicate over random graphs via testing/quick.
func quickCheck(t *testing.T, pred func(*Graph) bool) {
	t.Helper()
	err := quick.Check(func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%40) + 2
		m := int(mRaw%100) + 1
		maxM := n * (n - 1) / 2
		if m > maxM {
			m = maxM
		}
		return pred(GnM(n, m, seed))
	}, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
}
