package graph

import (
	"strings"
	"testing"
)

func TestReadMatrixMarket(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
% a triangle plus a pendant
4 4 4
1 2
2 3
1 3
3 4
`
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 3) {
		t.Fatal("edges wrong")
	}
}

func TestReadMatrixMarketWeighted(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
3 3 2
1 2 0.5
2 3 1.5
`
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("m=%d", g.M())
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"not a banner\n1 1 0\n",
		"%%MatrixMarket matrix array real\n",
		"%%MatrixMarket matrix coordinate real general\n2 3 1\n1 2\n",               // non-square
		"%%MatrixMarket matrix coordinate real general\n3 3 1\n9 1\n",               // out of range
		"%%MatrixMarket matrix coordinate real general\n3 3 1\nx y\n",               // non-numeric
		"%%MatrixMarket matrix coordinate real general\nbad size\n",                 // bad size line
		"%%MatrixMarket matrix coordinate real general\n99999999 99999999 1\n1 2\n", // implausible
	}
	for _, c := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(c)); err == nil {
			t.Errorf("no error for %q", c)
		}
	}
}

func TestReadMETIS(t *testing.T) {
	// The classic METIS example: 7 vertices, 11 edges.
	in := `% example graph
7 11
5 3 2
1 3 4
5 4 2 1
2 3 6 7
1 3 6
5 4 7
6 4
`
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 7 || g.M() != 11 {
		t.Fatalf("n=%d m=%d, want 7, 11", g.N(), g.M())
	}
	if !g.HasEdge(0, 4) || !g.HasEdge(3, 6) {
		t.Fatal("edges wrong")
	}
}

func TestReadMETISEdgeWeights(t *testing.T) {
	// fmt=1: each neighbor is followed by an edge weight.
	in := `3 2 1
2 7 3 9
1 7
1 9
`
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("m=%d, want 2", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) {
		t.Fatal("edges wrong")
	}
}

func TestReadMETISErrors(t *testing.T) {
	cases := []string{
		"x y\n",
		"3 1\n2\n",     // missing vertex lines
		"2 1\n9\n1\n",  // neighbor out of range
		"2 1\nzz\n1\n", // non-numeric
		"99999999 1\n", // implausible
	}
	for _, c := range cases {
		if _, err := ReadMETIS(strings.NewReader(c)); err == nil {
			t.Errorf("no error for %q", c)
		}
	}
}

func TestReadMETISSelfLoopDropped(t *testing.T) {
	in := "2 1\n1 2\n1\n"
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 0) {
		t.Fatal("self loop kept")
	}
	if g.M() != 1 {
		t.Fatalf("m=%d", g.M())
	}
}
