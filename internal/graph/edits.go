package graph

// EdgeEdit is one entry of an edit batch: Add inserts {U,V}, otherwise the
// edit removes it. Self-loops and redundant edits (inserting a present
// edge, removing an absent one) are no-ops.
type EdgeEdit struct {
	Add  bool
	U, V uint32
}

// ApplyEdits rebuilds g with an edit batch applied, returning a fresh
// immutable CSR graph. The vertex count grows to cover every inserted
// edge's endpoints and at least n (pass n <= g.N() to keep the current
// count); removals never grow the graph and removals naming out-of-range
// vertices are ignored. This is the cold rebuild path — O(m + edits) —
// used as the reference for the incremental maintenance in package
// dynamic, which repairs core numbers locally instead of rebuilding.
//
// Edge ids of the result are assigned canonically by Build, so two graphs
// with the same edge set get identical ids regardless of edit order.
func ApplyEdits(g *Graph, n int, edits []EdgeEdit) *Graph {
	if n < g.N() {
		n = g.N()
	}
	set := make(map[[2]uint32]struct{}, int(g.M())+len(edits))
	for _, e := range g.Edges() {
		set[e] = struct{}{}
	}
	for _, ed := range edits {
		u, v := ed.U, ed.V
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if ed.Add {
			if int(v) >= n {
				n = int(v) + 1
			}
			set[[2]uint32{u, v}] = struct{}{}
		} else if int(v) < n {
			delete(set, [2]uint32{u, v})
		}
	}
	edges := make([][2]uint32, 0, len(set))
	for e := range set {
		edges = append(edges, e)
	}
	return Build(n, edges)
}
