package graph

import (
	"bytes"
	"testing"
)

// FuzzReadEdgeList checks the text loader never panics and that any graph
// it accepts round-trips through the writer.
func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n"))
	f.Add([]byte("# comment\n5 5\n"))
	f.Add([]byte(""))
	f.Add([]byte("4294967295 0\n"))
	f.Add([]byte("1 2 3 4\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("write failed on accepted graph: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if g2.M() != g.M() {
			t.Fatalf("round trip changed edge count: %d vs %d", g2.M(), g.M())
		}
	})
}

// FuzzBuild checks graph construction tolerates arbitrary edge lists.
func FuzzBuild(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2})
	f.Add([]byte{7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		var edges [][2]uint32
		for i := 0; i+1 < len(data); i += 2 {
			edges = append(edges, [2]uint32{uint32(data[i]), uint32(data[i+1])})
		}
		g := Build(-1, edges)
		// Basic invariants: sorted unique rows, mirrored edges, ids dense.
		var undirected int64
		for u := 0; u < g.N(); u++ {
			ns := g.Neighbors(uint32(u))
			for i, v := range ns {
				if i > 0 && ns[i-1] >= v {
					t.Fatal("row not sorted/unique")
				}
				if v == uint32(u) {
					t.Fatal("self loop survived")
				}
				if !g.HasEdge(v, uint32(u)) {
					t.Fatal("asymmetric edge")
				}
				if v > uint32(u) {
					undirected++
				}
			}
		}
		if undirected != g.M() {
			t.Fatalf("edge count mismatch: %d vs %d", undirected, g.M())
		}
	})
}
