package graph

import (
	"bytes"
	"fmt"
	"testing"
)

// FuzzReadEdgeList checks the text loader never panics and that any graph
// it accepts round-trips through the writer.
func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n"))
	f.Add([]byte("# comment\n5 5\n"))
	f.Add([]byte(""))
	f.Add([]byte("4294967295 0\n"))
	f.Add([]byte("1 2 3 4\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("write failed on accepted graph: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if g2.M() != g.M() {
			t.Fatalf("round trip changed edge count: %d vs %d", g2.M(), g.M())
		}
	})
}

// FuzzBuild checks graph construction tolerates arbitrary edge lists.
func FuzzBuild(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2})
	f.Add([]byte{7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		var edges [][2]uint32
		for i := 0; i+1 < len(data); i += 2 {
			edges = append(edges, [2]uint32{uint32(data[i]), uint32(data[i+1])})
		}
		g := Build(-1, edges)
		// Basic invariants: sorted unique rows, mirrored edges, ids dense.
		var undirected int64
		for u := 0; u < g.N(); u++ {
			ns := g.Neighbors(uint32(u))
			for i, v := range ns {
				if i > 0 && ns[i-1] >= v {
					t.Fatal("row not sorted/unique")
				}
				if v == uint32(u) {
					t.Fatal("self loop survived")
				}
				if !g.HasEdge(v, uint32(u)) {
					t.Fatal("asymmetric edge")
				}
				if v > uint32(u) {
					undirected++
				}
			}
		}
		if undirected != g.M() {
			t.Fatalf("edge count mismatch: %d vs %d", undirected, g.M())
		}
		// The parallel builder must be bit-identical to the sequential one.
		for _, threads := range []int{2, 4, 8} {
			gp := BuildThreads(-1, edges, threads)
			if err := sameGraph(g, gp); err != nil {
				t.Fatalf("BuildThreads(%d) diverges: %v", threads, err)
			}
		}
	})
}

// sameGraph reports the first structural difference between two graphs,
// including edge-id assignment and endpoint tables.
func sameGraph(a, b *Graph) error {
	if a.N() != b.N() || a.M() != b.M() {
		return fmt.Errorf("shape: n %d vs %d, m %d vs %d", a.N(), b.N(), a.M(), b.M())
	}
	for u := 0; u <= a.N(); u++ {
		if a.offs[u] != b.offs[u] {
			return fmt.Errorf("offs[%d]: %d vs %d", u, a.offs[u], b.offs[u])
		}
	}
	for i := range a.adj {
		if a.adj[i] != b.adj[i] {
			return fmt.Errorf("adj[%d]: %d vs %d", i, a.adj[i], b.adj[i])
		}
		if a.eid[i] != b.eid[i] {
			return fmt.Errorf("eid[%d]: %d vs %d", i, a.eid[i], b.eid[i])
		}
	}
	for e := int64(0); e < a.m; e++ {
		if a.edgeU[e] != b.edgeU[e] || a.edgeV[e] != b.edgeV[e] {
			return fmt.Errorf("edge %d endpoints: (%d,%d) vs (%d,%d)", e, a.edgeU[e], a.edgeV[e], b.edgeU[e], b.edgeV[e])
		}
	}
	return nil
}
