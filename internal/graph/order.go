package graph

// DegreeOrder returns a permutation rank such that rank[u] < rank[v] iff
// (deg(u), u) < (deg(v), v). Orienting edges from lower to higher rank
// bounds out-degree by the graph's arboricity-ish degree skew and is the
// standard orientation for triangle enumeration.
func (g *Graph) DegreeOrder() []int32 {
	n := g.N()
	rank := make([]int32, n)
	// Counting sort by degree, ties by vertex id.
	maxDeg := g.MaxDegree()
	cnt := make([]int32, maxDeg+2)
	for u := 0; u < n; u++ {
		cnt[g.Degree(uint32(u))+1]++
	}
	for d := 1; d < len(cnt); d++ {
		cnt[d] += cnt[d-1]
	}
	for u := 0; u < n; u++ {
		d := g.Degree(uint32(u))
		rank[u] = cnt[d]
		cnt[d]++
	}
	return rank
}

// DegeneracyOrder returns (rank, degeneracy): rank is a permutation where
// vertices are removed in minimum-degree-first order (the k-core peeling
// order), and degeneracy is the largest minimum degree seen, i.e. the
// maximum core number. Orienting by degeneracy rank bounds the out-degree
// of every vertex by the degeneracy.
func (g *Graph) DegeneracyOrder() (rank []int32, degeneracy int) {
	n := g.N()
	deg := make([]int32, n)
	maxDeg := 0
	for u := 0; u < n; u++ {
		deg[u] = int32(g.Degree(uint32(u)))
		if int(deg[u]) > maxDeg {
			maxDeg = int(deg[u])
		}
	}
	// Batagelj–Zaversnik bin sort: vert holds vertices sorted by current
	// degree, pos[v] is v's index in vert, bin[d] is the start of degree
	// bucket d.
	bin := make([]int32, maxDeg+2)
	for u := 0; u < n; u++ {
		bin[deg[u]]++
	}
	start := int32(0)
	for d := 0; d <= maxDeg; d++ {
		c := bin[d]
		bin[d] = start
		start += c
	}
	vert := make([]int32, n)
	pos := make([]int32, n)
	for u := 0; u < n; u++ {
		pos[u] = bin[deg[u]]
		vert[pos[u]] = int32(u)
		bin[deg[u]]++
	}
	// Restore bin to bucket starts.
	for d := maxDeg; d >= 1; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	rank = make([]int32, n)
	for i := 0; i < n; i++ {
		v := vert[i]
		rank[v] = int32(i)
		if int(deg[v]) > degeneracy {
			degeneracy = int(deg[v])
		}
		for _, u := range g.Neighbors(uint32(v)) {
			if deg[u] > deg[v] {
				du, pu := deg[u], pos[u]
				pw := bin[du]
				w := vert[pw]
				if int32(u) != w {
					vert[pu], vert[pw] = w, int32(u)
					pos[u], pos[w] = pw, pu
				}
				bin[du]++
				deg[u]--
			}
		}
	}
	return rank, degeneracy
}

// ConnectedComponents labels each vertex with a component id in [0, count).
func (g *Graph) ConnectedComponents() (comp []int32, count int) {
	n := g.N()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []uint32
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = int32(count)
		queue = append(queue[:0], uint32(s))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.Neighbors(u) {
				if comp[v] < 0 {
					comp[v] = int32(count)
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return comp, count
}

// InducedSubgraph returns the subgraph induced by the given vertex set along
// with the mapping old→new vertex id (-1 for excluded vertices).
func (g *Graph) InducedSubgraph(vertices []uint32) (*Graph, []int32) {
	n := g.N()
	remap := make([]int32, n)
	for i := range remap {
		remap[i] = -1
	}
	for i, v := range vertices {
		remap[v] = int32(i)
	}
	var edges [][2]uint32
	for _, u := range vertices {
		for _, v := range g.Neighbors(u) {
			if v > u && remap[v] >= 0 {
				edges = append(edges, [2]uint32{uint32(remap[u]), uint32(remap[v])})
			}
		}
	}
	return Build(len(vertices), edges), remap
}

// BFSWithin returns all vertices within `hops` of any seed vertex (including
// the seeds), in BFS discovery order.
func (g *Graph) BFSWithin(seeds []uint32, hops int) []uint32 {
	dist := make(map[uint32]int, len(seeds)*4)
	var frontier, out []uint32
	for _, s := range seeds {
		if _, ok := dist[s]; !ok {
			dist[s] = 0
			frontier = append(frontier, s)
			out = append(out, s)
		}
	}
	for h := 0; h < hops && len(frontier) > 0; h++ {
		var next []uint32
		for _, u := range frontier {
			for _, v := range g.Neighbors(u) {
				if _, ok := dist[v]; !ok {
					dist[v] = h + 1
					next = append(next, v)
					out = append(out, v)
				}
			}
		}
		frontier = next
	}
	return out
}
