package graph

import (
	"math/rand"
	"testing"
)

// TestBuildThreadsBitIdentical proves the parallel CSR builder reproduces
// the sequential graph — offsets, adjacency, edge ids, endpoint tables —
// at every thread count, over the generator families and messy edge lists
// (duplicates, self-loops, reversed endpoints, n == -1 inference).
func TestBuildThreadsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cases := []struct {
		name  string
		n     int
		edges [][2]uint32
	}{
		{"empty", -1, nil},
		{"selfLoopOnly", -1, [][2]uint32{{7, 7}}},
		{"isolatedTail", 100, [][2]uint32{{0, 1}, {1, 2}}},
	}
	for _, g := range []*Graph{
		Complete(9),
		CliqueChain(5, 6),
		GnM(300, 1200, 3),
		BarabasiAlbert(250, 6, 4),
		RMAT(9, 4, 0.45, 0.22, 0.22, 5),
		WattsStrogatz(200, 8, 0.15, 6),
		PlantedCommunities(4, 20, 0.5, 60, 7),
		PowerLawCluster(220, 5, 0.4, 8),
	} {
		cases = append(cases, struct {
			name  string
			n     int
			edges [][2]uint32
		}{g.String(), -1, g.Edges()})
	}
	// A deliberately messy list: duplicates, both orientations, self-loops.
	var messy [][2]uint32
	for i := 0; i < 2000; i++ {
		u, v := uint32(rng.Intn(150)), uint32(rng.Intn(150))
		messy = append(messy, [2]uint32{u, v})
		if rng.Intn(3) == 0 {
			messy = append(messy, [2]uint32{v, u})
		}
	}
	cases = append(cases, struct {
		name  string
		n     int
		edges [][2]uint32
	}{"messy", -1, messy}, struct {
		name  string
		n     int
		edges [][2]uint32
	}{"messyExplicitN", 200, messy})

	for _, tc := range cases {
		want := BuildThreads(tc.n, tc.edges, 1)
		for _, threads := range []int{2, 4, 8} {
			got := BuildThreads(tc.n, tc.edges, threads)
			if err := sameGraph(want, got); err != nil {
				t.Errorf("%s threads=%d: %v", tc.name, threads, err)
			}
		}
		seq := Build(tc.n, tc.edges)
		if err := sameGraph(want, seq); err != nil {
			t.Errorf("%s: Build != BuildThreads(1): %v", tc.name, err)
		}
	}
}

// TestBuildInfersNFromSelfLoops pins the inference semantics the folded
// degree pass must preserve: self-loop endpoints raise n, add no edges.
func TestBuildInfersNFromSelfLoops(t *testing.T) {
	g := Build(-1, [][2]uint32{{7, 7}})
	if g.N() != 8 || g.M() != 0 {
		t.Fatalf("n=%d m=%d, want n=8 m=0", g.N(), g.M())
	}
}
