package graph

import (
	"math"
	"math/rand"
)

// GnM generates an Erdős–Rényi random graph with n vertices and (up to) m
// distinct undirected edges, using the supplied seed for reproducibility.
// Duplicate samples are collapsed by Build, so the realized edge count can be
// marginally below m on dense parameterizations.
func GnM(n int, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]uint32, 0, m)
	seen := make(map[uint64]struct{}, m)
	for len(edges) < m {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(v)
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		edges = append(edges, [2]uint32{u, v})
	}
	return Build(n, edges)
}

// BarabasiAlbert generates a preferential-attachment graph: each new vertex
// attaches to k existing vertices chosen proportionally to degree. The
// resulting degree distribution is heavy tailed, similar to social networks.
func BarabasiAlbert(n, k int, seed int64) *Graph {
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	// targets holds one entry per edge endpoint: sampling uniformly from it
	// realizes degree-proportional attachment.
	targets := make([]uint32, 0, 2*n*k)
	edges := make([][2]uint32, 0, n*k)
	// Seed with a (k+1)-clique so early attachments have somewhere to go.
	core := k + 1
	if core > n {
		core = n
	}
	for u := 0; u < core; u++ {
		for v := u + 1; v < core; v++ {
			edges = append(edges, [2]uint32{uint32(u), uint32(v)})
			targets = append(targets, uint32(u), uint32(v))
		}
	}
	for u := core; u < n; u++ {
		chosen := make([]uint32, 0, k)
		for len(chosen) < k {
			v := targets[rng.Intn(len(targets))]
			dup := false
			for _, w := range chosen {
				if w == v {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, v)
			}
		}
		for _, v := range chosen {
			edges = append(edges, [2]uint32{uint32(u), v})
			targets = append(targets, uint32(u), v)
		}
	}
	return Build(n, edges)
}

// RMAT generates a recursive-matrix (Kronecker-like) graph with 2^scale
// vertices and roughly edgeFactor*2^scale undirected edges, using the
// classic (a,b,c,d) quadrant probabilities. RMAT graphs have skewed degree
// distributions and community-like structure, making them stand-ins for web
// and social graphs.
func RMAT(scale int, edgeFactor int, a, b, c float64, seed int64) *Graph {
	n := 1 << scale
	m := edgeFactor * n
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]uint32, 0, m)
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: nothing to add
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
	}
	return Build(n, edges)
}

// WattsStrogatz generates a small-world ring lattice with n vertices, each
// connected to its k nearest neighbors on each side, with rewiring
// probability p.
func WattsStrogatz(n, k int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]uint32, 0, n*k)
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + j) % n
			if rng.Float64() < p {
				v = rng.Intn(n)
				if v == u {
					v = (u + 1) % n
				}
			}
			edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		}
	}
	return Build(n, edges)
}

// PlantedCommunities generates a graph of `communities` groups of size
// `size`, with intra-community edge probability pIn and a sparse random
// backbone of interEdges edges between communities. High pIn produces the
// locally dense, globally sparse structure of social networks such as the
// paper's facebook graph, with rich triangle and 4-clique content.
func PlantedCommunities(communities, size int, pIn float64, interEdges int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := communities * size
	var edges [][2]uint32
	for c := 0; c < communities; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if rng.Float64() < pIn {
					edges = append(edges, [2]uint32{uint32(base + i), uint32(base + j)})
				}
			}
		}
	}
	for i := 0; i < interEdges; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u != v {
			edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		}
	}
	return Build(n, edges)
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	edges := make([][2]uint32, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, [2]uint32{uint32(u), uint32(v)})
		}
	}
	return Build(n, edges)
}

// Path returns the path graph P_n.
func Path(n int) *Graph {
	edges := make([][2]uint32, 0, n-1)
	for u := 0; u+1 < n; u++ {
		edges = append(edges, [2]uint32{uint32(u), uint32(u + 1)})
	}
	return Build(n, edges)
}

// Cycle returns the cycle graph C_n.
func Cycle(n int) *Graph {
	edges := make([][2]uint32, 0, n)
	for u := 0; u < n; u++ {
		edges = append(edges, [2]uint32{uint32(u), uint32((u + 1) % n)})
	}
	return Build(n, edges)
}

// Star returns the star graph with n leaves (n+1 vertices, hub = 0).
func Star(n int) *Graph {
	edges := make([][2]uint32, 0, n)
	for v := 1; v <= n; v++ {
		edges = append(edges, [2]uint32{0, uint32(v)})
	}
	return Build(n+1, edges)
}

// CliqueChain returns `count` cliques of size k, consecutive cliques joined
// by a single bridge edge. Useful for hierarchy tests: each clique is a
// (k-1)-core while the whole graph is only a 1-core.
func CliqueChain(count, k int) *Graph {
	var edges [][2]uint32
	for c := 0; c < count; c++ {
		base := c * k
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				edges = append(edges, [2]uint32{uint32(base + i), uint32(base + j)})
			}
		}
		if c > 0 {
			edges = append(edges, [2]uint32{uint32(base - 1), uint32(base)})
		}
	}
	return Build(count*k, edges)
}

// Turan returns the Turán graph T(n,r): the complete r-partite graph on n
// vertices with near-equal parts. It is triangle-rich for r >= 3 and a
// stress case for (3,4) decomposition when r >= 4.
func Turan(n, r int) *Graph {
	part := make([]int, n)
	for i := range part {
		part[i] = i % r
	}
	var edges [][2]uint32
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if part[u] != part[v] {
				edges = append(edges, [2]uint32{uint32(u), uint32(v)})
			}
		}
	}
	return Build(n, edges)
}

// PowerLawCluster is a Holme–Kim style generator: Barabási–Albert
// attachment where each attachment step is followed, with probability p,
// by a triad-formation step (connect to a random neighbor of the previous
// target). It yields heavy tails plus high clustering — triangle-dense.
func PowerLawCluster(n, k int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	targets := make([]uint32, 0, 2*n*k)
	adjList := make([][]uint32, n)
	have := make(map[uint64]struct{}, n*k)
	var edges [][2]uint32
	addEdge := func(u, v uint32) bool {
		if u == v {
			return false
		}
		lo, hi := u, v
		if lo > hi {
			lo, hi = hi, lo
		}
		key := uint64(lo)<<32 | uint64(hi)
		if _, ok := have[key]; ok {
			return false
		}
		have[key] = struct{}{}
		adjList[u] = append(adjList[u], v)
		adjList[v] = append(adjList[v], u)
		edges = append(edges, [2]uint32{u, v})
		targets = append(targets, u, v)
		return true
	}
	core := k + 1
	if core > n {
		core = n
	}
	for u := 0; u < core; u++ {
		for v := u + 1; v < core; v++ {
			addEdge(uint32(u), uint32(v))
		}
	}
	for u := core; u < n; u++ {
		var last uint32
		haveLast := false
		added := 0
		for attempts := 0; added < k && attempts < 20*k; attempts++ {
			var v uint32
			if haveLast && rng.Float64() < p {
				// triad formation: pick a random neighbor of last.
				ns := adjList[last]
				if len(ns) > 0 {
					v = ns[rng.Intn(len(ns))]
				} else {
					v = targets[rng.Intn(len(targets))]
				}
			} else {
				v = targets[rng.Intn(len(targets))]
			}
			if addEdge(uint32(u), v) {
				last, haveLast = v, true
				added++
			}
		}
	}
	return Build(n, edges)
}

// LogNormalDegrees generates a Chung–Lu style random graph whose expected
// degree sequence is log-normal with the given parameters. Mirrors the
// degree skew of web graphs.
func LogNormalDegrees(n int, mu, sigma float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, n)
	total := 0.0
	for i := range w {
		w[i] = math.Exp(mu + sigma*rng.NormFloat64())
		total += w[i]
	}
	// Chung–Lu sampling via weighted endpoint picks.
	cum := make([]float64, n+1)
	for i := 0; i < n; i++ {
		cum[i+1] = cum[i] + w[i]
	}
	pick := func() uint32 {
		r := rng.Float64() * total
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return uint32(lo)
	}
	m := int(total / 2)
	edges := make([][2]uint32, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, [2]uint32{pick(), pick()})
	}
	return Build(n, edges)
}
