// Package graph provides a compact undirected simple-graph representation
// (CSR: compressed sparse rows) together with loaders, generators and the
// ordering utilities required by the nucleus decomposition algorithms.
//
// Vertices are dense integers in [0, N). Neighbor lists are sorted in
// increasing order, contain no duplicates and no self-loops. Each undirected
// edge {u,v} additionally has a dense edge id in [0, M) assigned in the order
// edges appear in the CSR rows of their lower endpoint (u < v); edge ids are
// the cell ids of the (2,3) (k-truss) decomposition.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable undirected simple graph in CSR form.
type Graph struct {
	// offs has length N+1; the neighbors of u are adj[offs[u]:offs[u+1]].
	offs []int64
	// adj holds concatenated sorted neighbor lists.
	adj []uint32
	// eid[i] is the dense edge id of the undirected edge {u, adj[i]} where u
	// owns position i. Both directions of an edge carry the same id.
	eid []int64
	// m is the number of undirected edges.
	m int64
	// edge endpoint tables, indexed by edge id; edgeU[e] < edgeV[e].
	edgeU []uint32
	edgeV []uint32
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.offs) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int64 { return g.m }

// Degree returns the degree of vertex u.
func (g *Graph) Degree(u uint32) int {
	return int(g.offs[u+1] - g.offs[u])
}

// Neighbors returns the sorted neighbor slice of u. The slice aliases the
// graph's internal storage and must not be modified.
func (g *Graph) Neighbors(u uint32) []uint32 {
	return g.adj[g.offs[u]:g.offs[u+1]]
}

// EdgeIDs returns, for vertex u, the edge-id slice parallel to Neighbors(u).
func (g *Graph) EdgeIDs(u uint32) []int64 {
	return g.eid[g.offs[u]:g.offs[u+1]]
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v uint32) bool {
	_, ok := g.EdgeID(u, v)
	return ok
}

// EdgeID returns the dense id of edge {u,v} if present.
func (g *Graph) EdgeID(u, v uint32) (int64, bool) {
	if u == v {
		return 0, false
	}
	// Search the smaller adjacency list.
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	if i < len(ns) && ns[i] == v {
		return g.eid[g.offs[u]+int64(i)], true
	}
	return 0, false
}

// Edge returns the endpoints (u < v) of the edge with dense id e.
// It is O(1) using the edge endpoint table built at construction.
func (g *Graph) Edge(e int64) (u, v uint32) {
	return g.edgeU[e], g.edgeV[e]
}

// Build constructs a Graph from an edge list. Self-loops are dropped and
// duplicate edges collapsed. n must be at least max(endpoint)+1; pass n = -1
// to infer it from the edges.
func Build(n int, edges [][2]uint32) *Graph {
	if n < 0 {
		maxV := uint32(0)
		for _, e := range edges {
			if e[0] > maxV {
				maxV = e[0]
			}
			if e[1] > maxV {
				maxV = e[1]
			}
		}
		if len(edges) == 0 {
			n = 0
		} else {
			n = int(maxV) + 1
		}
	}
	deg := make([]int64, n+1)
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		deg[e[0]+1]++
		deg[e[1]+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	offs := deg
	adj := make([]uint32, offs[n])
	fill := make([]int64, n)
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		u, v := e[0], e[1]
		adj[offs[u]+fill[u]] = v
		fill[u]++
		adj[offs[v]+fill[v]] = u
		fill[v]++
	}
	// Sort each row and dedup in place, compacting the arrays.
	w := int64(0)
	newOffs := make([]int64, n+1)
	for u := 0; u < n; u++ {
		row := adj[offs[u] : offs[u]+fill[u]]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		start := w
		var prev uint32
		first := true
		for _, v := range row {
			if !first && v == prev {
				continue
			}
			adj[w] = v
			w++
			prev, first = v, false
		}
		newOffs[u] = start
	}
	newOffs[n] = w
	// newOffs currently holds row starts; convert to standard offsets.
	offs = make([]int64, n+1)
	copy(offs, newOffs)
	adj = adj[:w]

	g := &Graph{offs: offs, adj: adj}
	g.assignEdgeIDs()
	return g
}

// assignEdgeIDs walks rows in vertex order and numbers each edge {u,v} (u<v)
// at its first appearance, mirroring the id onto the (v,u) direction.
func (g *Graph) assignEdgeIDs() {
	n := g.N()
	g.eid = make([]int64, len(g.adj))
	next := int64(0)
	for u := 0; u < n; u++ {
		uu := uint32(u)
		ns := g.Neighbors(uu)
		base := g.offs[u]
		for i, v := range ns {
			if v > uu {
				g.eid[base+int64(i)] = next
				next++
			}
		}
	}
	g.m = next
	g.edgeU = make([]uint32, next)
	g.edgeV = make([]uint32, next)
	// Mirror ids to the upper-triangle direction and record endpoints.
	for u := 0; u < n; u++ {
		uu := uint32(u)
		ns := g.Neighbors(uu)
		base := g.offs[u]
		for i, v := range ns {
			if v > uu {
				e := g.eid[base+int64(i)]
				g.edgeU[e] = uu
				g.edgeV[e] = v
			} else {
				// Find id on v's row (v < u, already assigned).
				id, ok := g.lookupAssigned(v, uu)
				if !ok {
					panic("graph: missing mirrored edge")
				}
				g.eid[base+int64(i)] = id
			}
		}
	}
}

func (g *Graph) lookupAssigned(u, v uint32) (int64, bool) {
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	if i < len(ns) && ns[i] == v {
		return g.eid[g.offs[u]+int64(i)], true
	}
	return 0, false
}

// Edges returns the edge list with u < v, indexed by edge id.
func (g *Graph) Edges() [][2]uint32 {
	out := make([][2]uint32, g.m)
	for e := int64(0); e < g.m; e++ {
		out[e] = [2]uint32{g.edgeU[e], g.edgeV[e]}
	}
	return out
}

// MaxDegree returns the maximum vertex degree.
func (g *Graph) MaxDegree() int {
	md := 0
	for u := 0; u < g.N(); u++ {
		if d := g.Degree(uint32(u)); d > md {
			md = d
		}
	}
	return md
}

// Degrees returns the degree of every vertex.
func (g *Graph) Degrees() []int32 {
	out := make([]int32, g.N())
	for u := range out {
		out[u] = int32(g.Degree(uint32(u)))
	}
	return out
}

// String implements fmt.Stringer with a short summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.N(), g.M())
}
