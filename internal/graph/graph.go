// Package graph provides a compact undirected simple-graph representation
// (CSR: compressed sparse rows) together with loaders, generators and the
// ordering utilities required by the nucleus decomposition algorithms.
//
// Vertices are dense integers in [0, N). Neighbor lists are sorted in
// increasing order, contain no duplicates and no self-loops. Each undirected
// edge {u,v} additionally has a dense edge id in [0, M) assigned in the order
// edges appear in the CSR rows of their lower endpoint (u < v); edge ids are
// the cell ids of the (2,3) (k-truss) decomposition.
package graph

import (
	"fmt"
	"slices"
	"sort"

	"nucleus/internal/par"
)

// Graph is an immutable undirected simple graph in CSR form.
type Graph struct {
	// offs has length N+1; the neighbors of u are adj[offs[u]:offs[u+1]].
	offs []int64
	// adj holds concatenated sorted neighbor lists.
	adj []uint32
	// eid[i] is the dense edge id of the undirected edge {u, adj[i]} where u
	// owns position i. Both directions of an edge carry the same id.
	eid []int64
	// m is the number of undirected edges.
	m int64
	// edge endpoint tables, indexed by edge id; edgeU[e] < edgeV[e].
	edgeU []uint32
	edgeV []uint32
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.offs) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int64 { return g.m }

// Degree returns the degree of vertex u.
func (g *Graph) Degree(u uint32) int {
	return int(g.offs[u+1] - g.offs[u])
}

// Neighbors returns the sorted neighbor slice of u. The slice aliases the
// graph's internal storage and must not be modified.
func (g *Graph) Neighbors(u uint32) []uint32 {
	return g.adj[g.offs[u]:g.offs[u+1]]
}

// EdgeIDs returns, for vertex u, the edge-id slice parallel to Neighbors(u).
func (g *Graph) EdgeIDs(u uint32) []int64 {
	return g.eid[g.offs[u]:g.offs[u+1]]
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v uint32) bool {
	_, ok := g.EdgeID(u, v)
	return ok
}

// EdgeID returns the dense id of edge {u,v} if present.
func (g *Graph) EdgeID(u, v uint32) (int64, bool) {
	if u == v {
		return 0, false
	}
	// Search the smaller adjacency list.
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	if i < len(ns) && ns[i] == v {
		return g.eid[g.offs[u]+int64(i)], true
	}
	return 0, false
}

// Edge returns the endpoints (u < v) of the edge with dense id e.
// It is O(1) using the edge endpoint table built at construction.
func (g *Graph) Edge(e int64) (u, v uint32) {
	return g.edgeU[e], g.edgeV[e]
}

// Build constructs a Graph from an edge list. Self-loops are dropped and
// duplicate edges collapsed. n must be at least max(endpoint)+1; pass n = -1
// to infer it from the edges. Build is BuildThreads with a single thread.
func Build(n int, edges [][2]uint32) *Graph {
	return BuildThreads(n, edges, 1)
}

// BuildThreads is Build with up to threads workers. The result is
// bit-identical to Build at every thread count: the CSR scatter assigns
// every entry the slot a sequential stable counting sort would (contiguous
// per-worker edge ranges merged vertex-major, worker-minor), rows are then
// normalized by sort/dedup, and edge ids are numbered by a per-row prefix
// sum that reproduces the sequential row walk.
//
// When n == -1 the max-endpoint inference rides along in the degree pass
// (per-worker growable count arrays plus a per-worker running max), so the
// edge list is scanned exactly twice — count, scatter — not three times.
func BuildThreads(n int, edges [][2]uint32, threads int) *Graph {
	ne := len(edges)
	if threads < 1 {
		threads = 1
	}
	if threads > ne && ne > 0 {
		threads = ne
	}

	// Pass 1: per-worker degree counts over contiguous edge ranges. Self-loop
	// endpoints still raise the inferred max (Build(-1, [(7,7)]) has n = 8)
	// but contribute no degree.
	counts := make([][]int64, threads)
	maxVs := make([]uint32, threads)
	workers := par.Ranges(ne, threads, func(w, lo, hi int) {
		var c []int64
		if n >= 0 {
			c = make([]int64, n)
		}
		var maxV uint32
		for _, e := range edges[lo:hi] {
			u, v := e[0], e[1]
			if u > maxV {
				maxV = u
			}
			if v > maxV {
				maxV = v
			}
			if u == v {
				continue
			}
			if n < 0 && int(maxV) >= len(c) {
				want := int(maxV) + 1
				if grow := 2 * len(c); grow > want {
					want = grow
				}
				nc := make([]int64, want)
				copy(nc, c)
				c = nc
			}
			c[u]++
			c[v]++
		}
		counts[w], maxVs[w] = c, maxV
	})
	counts = counts[:workers]
	if n < 0 {
		n = 0
		if ne > 0 {
			m := maxVs[0]
			for _, v := range maxVs[1:workers] {
				if v > m {
					m = v
				}
			}
			n = int(m) + 1
		}
	}
	for w, c := range counts {
		if len(c) < n {
			nc := make([]int64, n)
			copy(nc, c)
			counts[w] = nc
		} else {
			counts[w] = c[:n]
		}
	}

	// Vertex-major, worker-minor merge: offs becomes the CSR offset array and
	// each counts[w][u] the first slot for worker w's entries of row u.
	offs := make([]int64, n+1)
	tot := offs[1:]
	par.ForEach(n, 4096, threads, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			var t int64
			for _, c := range counts {
				t += c[u]
			}
			tot[u] = t
		}
	})
	for u := 1; u <= n; u++ {
		offs[u] += offs[u-1]
	}
	par.ForEach(n, 4096, threads, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			cur := offs[u]
			for _, c := range counts {
				k := c[u]
				c[u] = cur
				cur += k
			}
		}
	})

	// Pass 2: scatter both directions. Ranges re-derives the identical
	// per-worker split, so each worker's cursors cover exactly its entries.
	adj := make([]uint32, offs[n])
	par.Ranges(ne, threads, func(w, lo, hi int) {
		c := counts[w]
		for _, e := range edges[lo:hi] {
			u, v := e[0], e[1]
			if u == v {
				continue
			}
			adj[c[u]] = v
			c[u]++
			adj[c[v]] = u
			c[v]++
		}
	})

	// Sort and dedup every row independently, then compact via prefix sum.
	rowLen := make([]int64, n+1)
	par.ForEach(n, 256, threads, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			row := adj[offs[u]:offs[u+1]]
			slices.Sort(row)
			k := 0
			for _, v := range row {
				if k > 0 && v == row[k-1] {
					continue
				}
				row[k] = v
				k++
			}
			rowLen[u] = int64(k)
		}
	})
	par.PrefixSum(rowLen) // rowLen is now the compacted offset array
	newAdj := make([]uint32, rowLen[n])
	par.ForEach(n, 256, threads, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			copy(newAdj[rowLen[u]:rowLen[u+1]], adj[offs[u]:])
		}
	})

	g := &Graph{offs: rowLen, adj: newAdj}
	g.assignEdgeIDs(threads)
	return g
}

// assignEdgeIDs numbers each edge {u,v} (u<v) at its first appearance in a
// row walk in vertex order, mirroring the id onto the (v,u) direction. The
// sequential walk parallelizes exactly: per-row upper-neighbor counts merge
// into per-row id bases by prefix sum, so every id is independent of the
// thread count.
func (g *Graph) assignEdgeIDs(threads int) {
	n := g.N()
	g.eid = make([]int64, len(g.adj))
	base := make([]int64, n+1)
	par.ForEach(n, 256, threads, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			uu := uint32(u)
			var cnt int64
			ns := g.Neighbors(uu)
			for i := len(ns) - 1; i >= 0 && ns[i] > uu; i-- {
				cnt++
			}
			base[u] = cnt
		}
	})
	g.m = par.PrefixSum(base)
	g.edgeU = make([]uint32, g.m)
	g.edgeV = make([]uint32, g.m)
	par.ForEach(n, 256, threads, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			uu := uint32(u)
			next := base[u]
			off := g.offs[u]
			for i, v := range g.Neighbors(uu) {
				if v > uu {
					g.eid[off+int64(i)] = next
					g.edgeU[next] = uu
					g.edgeV[next] = v
					next++
				}
			}
		}
	})
	// Mirror ids onto the lower-triangle direction. Every upper id is
	// assigned before the barrier above returns, so the lookups only read.
	par.ForEach(n, 256, threads, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			uu := uint32(u)
			off := g.offs[u]
			for i, v := range g.Neighbors(uu) {
				if v >= uu {
					break // rows are sorted: lower neighbors form a prefix
				}
				id, ok := g.lookupAssigned(v, uu)
				if !ok {
					panic("graph: missing mirrored edge")
				}
				g.eid[off+int64(i)] = id
			}
		}
	})
}

func (g *Graph) lookupAssigned(u, v uint32) (int64, bool) {
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	if i < len(ns) && ns[i] == v {
		return g.eid[g.offs[u]+int64(i)], true
	}
	return 0, false
}

// Edges returns the edge list with u < v, indexed by edge id.
func (g *Graph) Edges() [][2]uint32 {
	out := make([][2]uint32, g.m)
	for e := int64(0); e < g.m; e++ {
		out[e] = [2]uint32{g.edgeU[e], g.edgeV[e]}
	}
	return out
}

// MaxDegree returns the maximum vertex degree.
func (g *Graph) MaxDegree() int {
	md := 0
	for u := 0; u < g.N(); u++ {
		if d := g.Degree(uint32(u)); d > md {
			md = d
		}
	}
	return md
}

// Degrees returns the degree of every vertex.
func (g *Graph) Degrees() []int32 {
	out := make([]int32, g.N())
	for u := range out {
		out[u] = int32(g.Degree(uint32(u)))
	}
	return out
}

// String implements fmt.Stringer with a short summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.N(), g.M())
}
