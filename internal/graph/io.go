package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// remapThreshold is the largest max-vertex-id the text loader will use
// directly; above it, ids are treated as sparse labels (e.g. raw Twitter
// user ids) and remapped densely, keeping memory proportional to the edge
// count rather than the id range.
const remapThreshold = 1 << 24

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line).
// Lines starting with '#' or '%' are comments. Vertex ids are used
// directly (vertex count = max id + 1) while the maximum id stays below
// 2^24; beyond that the ids are remapped densely in increasing order.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges [][2]uint32
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected two fields, got %q", line, text)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		edges = append(edges, [2]uint32{uint32(u), uint32(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	maxID := uint32(0)
	for _, e := range edges {
		if e[0] > maxID {
			maxID = e[0]
		}
		if e[1] > maxID {
			maxID = e[1]
		}
	}
	if maxID >= remapThreshold {
		remapDense(edges)
	}
	return Build(-1, edges), nil
}

// remapDense rewrites endpoint ids to 0..k-1 preserving their relative
// order.
func remapDense(edges [][2]uint32) {
	ids := make([]uint32, 0, 2*len(edges))
	for _, e := range edges {
		ids = append(ids, e[0], e[1])
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	remap := make(map[uint32]uint32, len(ids))
	next := uint32(0)
	for _, id := range ids {
		if _, ok := remap[id]; !ok {
			remap[id] = next
			next++
		}
	}
	for i := range edges {
		edges[i][0] = remap[edges[i][0]]
		edges[i][1] = remap[edges[i][1]]
	}
}

// LoadEdgeList reads an edge-list file from disk.
func LoadEdgeList(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// WriteEdgeList writes the graph as "u v" lines with u < v.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for e := int64(0); e < g.m; e++ {
		u, v := g.Edge(e)
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveEdgeList writes the graph to an edge-list file.
func (g *Graph) SaveEdgeList(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return g.WriteEdgeList(f)
}

// binaryMagic identifies the compact binary graph format.
const binaryMagic = uint32(0x4e55434c) // "NUCL"

// WriteBinary writes a compact little-endian binary encoding:
// magic, n, m, then m (u,v) pairs.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{uint64(binaryMagic), uint64(g.N()), uint64(g.m)}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for e := int64(0); e < g.m; e++ {
		u, v := g.Edge(e)
		if err := binary.Write(bw, binary.LittleEndian, [2]uint32{u, v}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads the format produced by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic, n, m uint64
	for _, p := range []*uint64{&magic, &n, &m} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if uint32(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	if n > 1<<32 {
		return nil, fmt.Errorf("graph: implausible vertex count %d", n)
	}
	// Grow incrementally rather than trusting the header's edge count, so a
	// corrupt header cannot trigger a huge allocation.
	capHint := m
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	edges := make([][2]uint32, 0, capHint)
	for i := uint64(0); i < m; i++ {
		var e [2]uint32
		if err := binary.Read(br, binary.LittleEndian, &e); err != nil {
			return nil, fmt.Errorf("graph: truncated edge section: %v", err)
		}
		edges = append(edges, e)
	}
	return Build(int(n), edges), nil
}
