package graph

import (
	"math"
	"testing"
)

func TestDegreeHistogram(t *testing.T) {
	g := Star(4)
	h := g.DegreeHistogram()
	if h[1] != 4 || h[4] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestAverageDegree(t *testing.T) {
	g := Cycle(10)
	if got := g.AverageDegree(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("cycle avg degree = %v", got)
	}
	if got := Build(0, nil).AverageDegree(); got != 0 {
		t.Fatalf("empty avg degree = %v", got)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// Complete graph: transitivity 1.
	if got := Complete(6).GlobalClusteringCoefficient(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("K6 transitivity = %v", got)
	}
	// Triangle-free: 0.
	if got := Star(5).GlobalClusteringCoefficient(); got != 0 {
		t.Fatalf("star transitivity = %v", got)
	}
	// Path (has wedges, no triangles): 0.
	if got := Path(10).GlobalClusteringCoefficient(); got != 0 {
		t.Fatalf("path transitivity = %v", got)
	}
	// A triangle with a pendant: 1 triangle (3 closed wedges), wedges:
	// deg(a)=2,deg(b)=2,deg(c)=3,pendant=1 -> 1+1+3+0 = 5 wedges.
	g := Build(4, [][2]uint32{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	if got := g.GlobalClusteringCoefficient(); math.Abs(got-3.0/5.0) > 1e-9 {
		t.Fatalf("pendant triangle transitivity = %v, want 0.6", got)
	}
}

func TestLargestComponent(t *testing.T) {
	// Triangle plus an edge plus isolated vertex.
	g := Build(6, [][2]uint32{{0, 1}, {1, 2}, {0, 2}, {3, 4}})
	lcc, remap := g.LargestComponent()
	if lcc.N() != 3 || lcc.M() != 3 {
		t.Fatalf("lcc: n=%d m=%d", lcc.N(), lcc.M())
	}
	if remap[0] < 0 || remap[3] != -1 || remap[5] != -1 {
		t.Fatalf("remap = %v", remap)
	}
	// Connected graph: returned as-is.
	conn := Cycle(5)
	same, _ := conn.LargestComponent()
	if same != conn {
		t.Fatal("connected graph should be returned unchanged")
	}
}

func TestDegreePercentiles(t *testing.T) {
	g := Star(9) // degrees: 9 plus nine 1s
	ps := g.DegreePercentiles(0, 50, 100)
	if ps[0] != 1 || ps[1] != 1 || ps[2] != 9 {
		t.Fatalf("percentiles = %v", ps)
	}
}
