package graph

import "testing"

func TestApplyEdits(t *testing.T) {
	g := Build(4, [][2]uint32{{0, 1}, {1, 2}, {2, 3}})

	out := ApplyEdits(g, 0, []EdgeEdit{
		{Add: true, U: 0, V: 2}, // new edge
		{Add: true, U: 2, V: 1}, // duplicate (reversed) — no-op
		{Add: true, U: 3, V: 3}, // self-loop — no-op
		{U: 2, V: 3},            // remove
		{U: 0, V: 3},            // remove absent — no-op
		{U: 9, V: 10},           // remove out of range — no-op, no growth
		{Add: true, U: 5, V: 1}, // grows to 6 vertices
	})
	if out.N() != 6 {
		t.Fatalf("N = %d, want 6", out.N())
	}
	if out.M() != 4 {
		t.Fatalf("M = %d, want 4", out.M())
	}
	for _, e := range [][2]uint32{{0, 1}, {1, 2}, {0, 2}, {1, 5}} {
		if !out.HasEdge(e[0], e[1]) {
			t.Fatalf("missing edge %v", e)
		}
	}
	if out.HasEdge(2, 3) {
		t.Fatal("removed edge survived")
	}
	// Original untouched.
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("input mutated: n=%d m=%d", g.N(), g.M())
	}

	// Explicit vertex-count floor.
	grown := ApplyEdits(g, 10, nil)
	if grown.N() != 10 || grown.M() != 3 {
		t.Fatalf("floor grow: n=%d m=%d", grown.N(), grown.M())
	}
}

// TestApplyEditsCanonicalIDs: the same edge set reached through different
// edit orders yields identical edge ids — the property the warm truss
// seeding and the serving layer's cache rely on.
func TestApplyEditsCanonicalIDs(t *testing.T) {
	g := Build(5, [][2]uint32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	a := ApplyEdits(g, 0, []EdgeEdit{{Add: true, U: 0, V: 4}, {U: 1, V: 2}})
	b := ApplyEdits(g, 0, []EdgeEdit{{U: 2, V: 1}, {Add: true, U: 4, V: 0}})
	if a.M() != b.M() {
		t.Fatalf("edge counts differ: %d vs %d", a.M(), b.M())
	}
	for e := int64(0); e < a.M(); e++ {
		au, av := a.Edge(e)
		bu, bv := b.Edge(e)
		if au != bu || av != bv {
			t.Fatalf("edge id %d: (%d,%d) vs (%d,%d)", e, au, av, bu, bv)
		}
	}
}
