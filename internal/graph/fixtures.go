package graph

// Fixtures: small graphs taken from the paper's illustrative figures, used
// by tests and the documentation examples.

// Figure2Vertices names the vertices of the paper's Figure 2 toy graph in id
// order.
var Figure2Vertices = []string{"a", "b", "c", "d", "e", "f"}

// Figure2 returns the k-core toy graph of the paper's Figure 2:
//
//	f — e — a — b — c
//	             \  |
//	              \ d — c (b,c,d form a triangle)
//
// Degrees: a=2 b=3 c=2 d=2 e=2 f=1. Core numbers: a=e=f=1, b=c=d=2.
// SND converges in two iterations; AND in the order {f,e,a,b,c,d}
// (non-decreasing core numbers) converges in one (Theorem 4).
func Figure2() *Graph {
	const (
		a = iota
		b
		c
		d
		e
		f
	)
	return Build(6, [][2]uint32{
		{a, e}, {a, b},
		{b, c}, {b, d},
		{c, d},
		{e, f},
	})
}

// TrussToy returns the k-truss toy used across the paper's running truss
// example (Figure 5 flavor): a dense block {a,b,c,d,e} where edge ab sits in
// four triangles, plus a pendant triangle structure through i.
//
// Constructed so that edge ab participates in triangles abc, abd, abe, abi.
func TrussToy() *Graph {
	const (
		a = iota
		b
		c
		d
		e
		h
		i
	)
	return Build(7, [][2]uint32{
		{a, b}, {a, c}, {a, d}, {a, e}, {a, i},
		{b, c}, {b, d}, {b, e}, {b, i},
		{c, d},
		{d, e},
		{e, h}, {d, h},
	})
}

// Nucleus34Toy returns the Figure 3 toy graph: two overlapping dense blocks
// {a,b,c,d} and {c,d,e,f,h} plus a pendant vertex g. The two blocks are
// separate 1-(3,4) nuclei (no 4-clique spans both), while k-truss merges
// them into one 2-truss.
func Nucleus34Toy() *Graph {
	const (
		a = iota
		b
		c
		d
		e
		f
		g
		h
	)
	return Build(8, [][2]uint32{
		// K4 on {a,b,c,d}
		{a, b}, {a, c}, {a, d}, {b, c}, {b, d}, {c, d},
		// K4s inside {c,d,e,f,h}: complete on those five vertices minus
		// nothing — make it K5 to be 1-(3,4) rich.
		{c, e}, {c, f}, {c, h},
		{d, e}, {d, f}, {d, h},
		{e, f}, {e, h},
		{f, h},
		// pendant g hanging off h
		{g, h},
	})
}

// LevelsToy returns the Figure 4 degree-levels toy: a 7-vertex graph where
// L0={a}, L1={b}, L2={c,g}, L3={d,e,f} under the k-core (1,2) levels.
//
// Structure: pendant path a—b into c; triangle {d,e,f}; c attaches to d,e
// and g attaches to d,f. Removing a exposes b; removing b leaves c and g
// at the minimum degree 2; removing both leaves the triangle. Built to
// match the paper's recursive level structure, not its exact (illegible)
// adjacency; tests assert the level sizes.
func LevelsToy() *Graph {
	const (
		a = iota
		b
		c
		d
		e
		f
		g
	)
	return Build(7, [][2]uint32{
		{a, b},
		{b, c},
		{c, d}, {c, e},
		{g, d}, {g, f},
		{d, e}, {d, f},
		{e, f},
	})
}
