package graph

import "sort"

// DegreeHistogram returns counts[d] = number of vertices with degree d.
func (g *Graph) DegreeHistogram() []int64 {
	h := make([]int64, g.MaxDegree()+1)
	for u := 0; u < g.N(); u++ {
		h[g.Degree(uint32(u))]++
	}
	return h
}

// AverageDegree returns 2M/N, the mean vertex degree.
func (g *Graph) AverageDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.M()) / float64(g.N())
}

// GlobalClusteringCoefficient returns 3*triangles / open-plus-closed wedges
// (transitivity). Triangle-free graphs return 0.
func (g *Graph) GlobalClusteringCoefficient() float64 {
	var wedges int64
	for u := 0; u < g.N(); u++ {
		d := int64(g.Degree(uint32(u)))
		wedges += d * (d - 1) / 2
	}
	if wedges == 0 {
		return 0
	}
	var closed int64
	// Count closed wedges as 3x the triangle count via a rank-oriented
	// enumeration (inline to avoid an import cycle with cliques).
	rank := g.DegreeOrder()
	out := make([][]uint32, g.N())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(uint32(u)) {
			if rank[v] > rank[u] {
				out[u] = append(out[u], v)
			}
		}
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range out[u] {
			i, j := 0, 0
			a, b := out[u], out[v]
			for i < len(a) && j < len(b) {
				switch {
				case a[i] < b[j]:
					i++
				case a[i] > b[j]:
					j++
				default:
					closed++
					i++
					j++
				}
			}
		}
	}
	return 3 * float64(closed) / float64(wedges)
}

// LargestComponent returns the subgraph induced by the largest connected
// component together with the old→new vertex mapping.
func (g *Graph) LargestComponent() (*Graph, []int32) {
	comp, count := g.ConnectedComponents()
	if count <= 1 {
		remap := make([]int32, g.N())
		for i := range remap {
			remap[i] = int32(i)
		}
		return g, remap
	}
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	var vs []uint32
	for u, c := range comp {
		if int(c) == best {
			vs = append(vs, uint32(u))
		}
	}
	return g.InducedSubgraph(vs)
}

// DegreePercentiles returns the degrees at the requested percentiles
// (0..100), interpolation-free (nearest rank).
func (g *Graph) DegreePercentiles(ps ...float64) []int {
	degs := make([]int, g.N())
	for u := range degs {
		degs[u] = g.Degree(uint32(u))
	}
	sort.Ints(degs)
	out := make([]int, len(ps))
	for i, p := range ps {
		if len(degs) == 0 {
			continue
		}
		idx := int(p / 100 * float64(len(degs)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(degs) {
			idx = len(degs) - 1
		}
		out[i] = degs[idx]
	}
	return out
}
