package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadMatrixMarket parses a MatrixMarket coordinate file as an undirected
// graph. The "%%MatrixMarket" banner and the size line are validated;
// entry values (for weighted/pattern variants) are ignored. MatrixMarket
// indices are 1-based and converted to 0-based vertex ids.
func ReadMatrixMarket(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty MatrixMarket input")
	}
	banner := strings.Fields(strings.ToLower(sc.Text()))
	if len(banner) < 3 || banner[0] != "%%matrixmarket" || banner[1] != "matrix" || banner[2] != "coordinate" {
		return nil, fmt.Errorf("graph: not a MatrixMarket coordinate file: %q", sc.Text())
	}

	// Skip comments, read the size line.
	var n, m int64
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 {
			return nil, fmt.Errorf("graph: bad size line %q", text)
		}
		rows, err1 := strconv.ParseInt(fields[0], 10, 64)
		cols, err2 := strconv.ParseInt(fields[1], 10, 64)
		nnz, err3 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("graph: bad size line %q", text)
		}
		if rows != cols {
			return nil, fmt.Errorf("graph: non-square matrix %dx%d", rows, cols)
		}
		if rows < 0 || rows >= remapThreshold {
			return nil, fmt.Errorf("graph: implausible dimension %d", rows)
		}
		n, m = rows, nnz
		break
	}

	edges := make([][2]uint32, 0, min64(m, 1<<20))
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: entry line %d: %q", line, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: entry line %d: %v", line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: entry line %d: %v", line, err)
		}
		if u < 1 || v < 1 || u > n || v > n {
			return nil, fmt.Errorf("graph: entry line %d: index out of range", line)
		}
		edges = append(edges, [2]uint32{uint32(u - 1), uint32(v - 1)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return Build(int(n), edges), nil
}

// ReadMETIS parses a METIS graph file: a header line "n m [fmt]" followed
// by one line per vertex listing its (1-based) neighbors. Vertex and edge
// weights (fmt values 1/10/11/100...) are skipped.
func ReadMETIS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var n, m int64
	fmtCode := "0"
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: bad METIS header %q", text)
		}
		var err1, err2 error
		n, err1 = strconv.ParseInt(fields[0], 10, 64)
		m, err2 = strconv.ParseInt(fields[1], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graph: bad METIS header %q", text)
		}
		if n < 0 || n >= remapThreshold {
			return nil, fmt.Errorf("graph: implausible vertex count %d", n)
		}
		if len(fields) >= 3 {
			fmtCode = fields[2]
		}
		break
	}
	hasVertexWeights := strings.HasSuffix(fmtCode, "10") || fmtCode == "10" || fmtCode == "11"
	hasEdgeWeights := strings.HasSuffix(fmtCode, "1")
	// The ncon (number of vertex weights) field is 1 when vertex weights
	// are present; we support the common single-constraint files.

	edges := make([][2]uint32, 0, min64(m, 1<<20))
	u := int64(0)
	for sc.Scan() && u < n {
		text := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		idx := 0
		if hasVertexWeights {
			idx++ // skip the vertex weight
		}
		for idx < len(fields) {
			v, err := strconv.ParseInt(fields[idx], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: vertex %d: %v", u+1, err)
			}
			idx++
			if hasEdgeWeights {
				idx++ // skip the edge weight
			}
			if v < 1 || v > n {
				return nil, fmt.Errorf("graph: vertex %d: neighbor %d out of range", u+1, v)
			}
			if int64(v-1) != u { // drop self loops
				edges = append(edges, [2]uint32{uint32(u), uint32(v - 1)})
			}
		}
		u++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if u != n {
		return nil, fmt.Errorf("graph: METIS file has %d of %d vertex lines", u, n)
	}
	return Build(int(n), edges), nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
