// Package hierarchy materializes the nucleus hierarchy (the "forest of
// nuclei") from a κ assignment: every k-(r,s) nucleus is an S-connected
// component of the cells with κ >= k, and nuclei nest — each (k+1)-nucleus
// is contained in exactly one k-nucleus. The forest is built bottom-up with
// a union-find over cells, activating cells in decreasing κ order, the way
// the traversal algorithms of the nucleus decomposition papers do.
//
// Typical use: decompose first, then Build the forest and walk or export
// it —
//
//	forest := hierarchy.Build(inst, kappa)
//	forest.Print(os.Stdout, g, 10)       // text tree, nodes with >= 10 cells
//	forest.WriteJSON(os.Stdout, g)       // nested JSON with densities
//	forest.WriteDOT(os.Stdout, g, 10)    // GraphViz
//
// For single extractions without the full forest, MaxNucleusOf returns the
// maximum nucleus around one cell, KNucleusSubgraphs the nuclei at a fixed
// threshold, and KCoreSubgraph the classic k-core as an induced subgraph.
package hierarchy

import (
	"fmt"
	"io"
	"sort"

	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
)

// Node is one nucleus in the forest.
type Node struct {
	// K is the nucleus threshold: every cell in the subtree has κ >= K.
	K int32
	// Cells lists the cells whose κ equals K inside this nucleus (cells
	// with larger κ live in descendant nodes).
	Cells []int32
	// Children are the nuclei directly nested inside this one.
	Children []*Node
	// SubtreeCells is the total number of cells in the nucleus.
	SubtreeCells int
}

// Forest is the complete nucleus hierarchy of one decomposition.
type Forest struct {
	Roots []*Node
	// Inst is the instance the forest was built from.
	Inst nucleus.Instance
}

// Build constructs the nucleus forest from κ. Cells are activated in
// decreasing κ order; neighbors (cells sharing an s-clique) merge via
// union-find, and every merge or first appearance at level k ensures a node
// with K = k above the merged components.
func Build(inst nucleus.Instance, kappa []int32) *Forest {
	n := inst.NumCells()
	if n != len(kappa) {
		panic("hierarchy: kappa length mismatch")
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool { return kappa[order[a]] > kappa[order[b]] })

	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1 // inactive
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	// node[root] is the current hierarchy node of the component rooted at
	// root, or nil when the component has not been wrapped yet.
	node := make(map[int32]*Node, 64)

	i := 0
	for i < n {
		k := kappa[order[i]]
		// Slice out all cells of κ == k.
		levelCells := order[i:]
		j := 0
		for j < len(levelCells) && kappa[levelCells[j]] == k {
			j++
		}
		levelCells = levelCells[:j]
		i += j

		// touched tracks the current roots affected at this level;
		// pendingChildren accumulates the prior-level nodes merged under
		// each root.
		touched := make(map[int32]struct{})
		pendingChildren := make(map[int32][]*Node)

		union := func(a, b int32) {
			ra, rb := find(a), find(b)
			if ra == rb {
				return
			}
			var kids []*Node
			kids = append(kids, pendingChildren[ra]...)
			kids = append(kids, pendingChildren[rb]...)
			if nd := node[ra]; nd != nil {
				kids = append(kids, nd)
				delete(node, ra)
			}
			if nd := node[rb]; nd != nil {
				kids = append(kids, nd)
				delete(node, rb)
			}
			delete(pendingChildren, ra)
			delete(pendingChildren, rb)
			delete(touched, ra)
			delete(touched, rb)
			parent[rb] = ra
			pendingChildren[ra] = kids
			touched[ra] = struct{}{}
		}

		for _, c := range levelCells {
			parent[c] = c
			touched[c] = struct{}{}
			// Union c through its s-cliques, but only through s-cliques
			// that survive at this level: S-connectedness requires every
			// member of the s-clique to be in the nucleus, i.e. already
			// activated. An s-clique with a not-yet-activated member is
			// processed later, when its last member activates.
			inst.VisitSCliques(c, func(others []int32) bool {
				for _, d := range others {
					if parent[d] < 0 {
						return true // s-clique not alive at this level
					}
				}
				for _, d := range others {
					union(c, d)
				}
				return true
			})
		}

		// Wrap every touched component in a level-k node holding the
		// level's cells of that component.
		cellsOf := make(map[int32][]int32)
		for _, c := range levelCells {
			cellsOf[find(c)] = append(cellsOf[find(c)], c)
		}
		for r := range touched {
			root := find(r)
			nd := &Node{K: k, Cells: cellsOf[root]}
			nd.Children = append(nd.Children, pendingChildren[root]...)
			if prev := node[root]; prev != nil {
				nd.Children = append(nd.Children, prev)
			}
			node[root] = nd
			delete(pendingChildren, root)
			delete(cellsOf, root)
		}
	}

	f := &Forest{Inst: inst}
	seen := make(map[*Node]struct{})
	for _, r := range node {
		if _, ok := seen[r]; ok {
			continue
		}
		seen[r] = struct{}{}
		f.Roots = append(f.Roots, r)
	}
	sort.Slice(f.Roots, func(a, b int) bool { return f.Roots[a].K < f.Roots[b].K })
	for _, r := range f.Roots {
		computeSizes(r)
	}
	return f
}

func computeSizes(n *Node) int {
	total := len(n.Cells)
	for _, c := range n.Children {
		total += computeSizes(c)
	}
	n.SubtreeCells = total
	return total
}

// NumNodes returns the number of nuclei in the forest.
func (f *Forest) NumNodes() int {
	count := 0
	var walk func(*Node)
	walk = func(n *Node) {
		count++
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range f.Roots {
		walk(r)
	}
	return count
}

// Vertices returns the distinct graph vertices covered by the nucleus
// rooted at n (its cells and all descendants').
func (f *Forest) Vertices(n *Node) []uint32 {
	set := make(map[uint32]struct{})
	var buf []uint32
	var walk func(*Node)
	walk = func(nd *Node) {
		for _, c := range nd.Cells {
			buf = f.Inst.CellVertices(c, buf[:0])
			for _, v := range buf {
				set[v] = struct{}{}
			}
		}
		for _, ch := range nd.Children {
			walk(ch)
		}
	}
	walk(n)
	out := make([]uint32, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Density returns the edge density 2|E'|/(|V'|(|V'|-1)) of the subgraph of g
// induced by the nucleus rooted at n.
func (f *Forest) Density(g *graph.Graph, n *Node) float64 {
	vs := f.Vertices(n)
	if len(vs) < 2 {
		return 0
	}
	in := make(map[uint32]struct{}, len(vs))
	for _, v := range vs {
		in[v] = struct{}{}
	}
	edges := 0
	for _, u := range vs {
		for _, v := range g.Neighbors(u) {
			if v > u {
				if _, ok := in[v]; ok {
					edges++
				}
			}
		}
	}
	nv := float64(len(vs))
	return 2 * float64(edges) / (nv * (nv - 1))
}

// Print writes an indented rendering of the forest, largest K first within
// each sibling group, eliding nodes below minSize cells.
func (f *Forest) Print(w io.Writer, g *graph.Graph, minSize int) {
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		if n.SubtreeCells < minSize {
			return
		}
		for i := 0; i < depth; i++ {
			fmt.Fprint(w, "  ")
		}
		vs := f.Vertices(n)
		fmt.Fprintf(w, "k=%d cells=%d vertices=%d density=%.3f\n",
			n.K, n.SubtreeCells, len(vs), f.Density(g, n))
		kids := append([]*Node(nil), n.Children...)
		sort.Slice(kids, func(a, b int) bool { return kids[a].K > kids[b].K })
		for _, c := range kids {
			walk(c, depth+1)
		}
	}
	for _, r := range f.Roots {
		walk(r, 0)
	}
}
