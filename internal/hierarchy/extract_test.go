package hierarchy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
	"nucleus/internal/peel"
)

func TestMaxNucleusOfFigure2(t *testing.T) {
	g := graph.Figure2()
	inst := nucleus.NewCore(g)
	kappa := peel.Run(inst).Kappa // {1,2,2,2,1,1}
	// Max core of b (κ=2): the triangle {b,c,d}.
	got := MaxNucleusOf(inst, kappa, 1)
	want := []int32{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("max core of b = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("max core of b = %v, want %v", got, want)
		}
	}
	// Max core of a (κ=1): the whole connected graph.
	if got := MaxNucleusOf(inst, kappa, 0); len(got) != 6 {
		t.Fatalf("max core of a = %v", got)
	}
}

func TestMaxNucleusOfTruss(t *testing.T) {
	g := graph.Nucleus34Toy()
	inst := nucleus.NewTruss(g)
	kappa := peel.Run(inst).Kappa
	// Max truss of edge ef (κ=3): the 10 edges of the K5 block.
	ef, _ := g.EdgeID(4, 5)
	cells := MaxNucleusOf(inst, kappa, int32(ef))
	if len(cells) != 10 {
		t.Fatalf("max truss of ef has %d edges, want 10", len(cells))
	}
	vs := CellsToVertices(inst, cells)
	want := []uint32{2, 3, 4, 5, 7}
	if len(vs) != len(want) {
		t.Fatalf("vertices = %v", vs)
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("vertices = %v, want %v", vs, want)
		}
	}
}

// TestMaxNucleusInvariants: every cell in the max nucleus has κ >= the
// seed's κ, and the set is exactly one of the k-nucleus components.
func TestMaxNucleusInvariants(t *testing.T) {
	err := quick.Check(func(seed int64, nRaw, mRaw, cellRaw uint8) bool {
		n := int(nRaw%25) + 4
		m := int(mRaw%100) + 1
		if maxM := n * (n - 1) / 2; m > maxM {
			m = maxM
		}
		g := graph.GnM(n, m, seed)
		inst := nucleus.NewCore(g)
		kappa := peel.Run(inst).Kappa
		cell := int32(int(cellRaw) % n)
		got := MaxNucleusOf(inst, kappa, cell)
		k := kappa[cell]
		for _, c := range got {
			if kappa[c] < k {
				return false
			}
		}
		// It must coincide with the k-nucleus component containing cell.
		for _, comp := range KNucleusSubgraphs(inst, kappa, k) {
			for _, c := range comp {
				if c == cell {
					if len(comp) != len(got) {
						return false
					}
					for i := range comp {
						if comp[i] != got[i] {
							return false
						}
					}
					return true
				}
			}
		}
		return false
	}, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(22))})
	if err != nil {
		t.Fatal(err)
	}
}

func TestKNucleusSubgraphs(t *testing.T) {
	// Two K4s joined through a degree-2 bridge vertex (κ=2): the whole
	// graph is one 2-core, but there are two separate 3-cores.
	g := graph.Build(9, [][2]uint32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
		{4, 5}, {4, 6}, {4, 7}, {5, 6}, {5, 7}, {6, 7},
		{3, 8}, {8, 4},
	})
	inst := nucleus.NewCore(g)
	kappa := peel.Run(inst).Kappa
	if kappa[8] != 2 {
		t.Fatalf("bridge κ = %d, want 2", kappa[8])
	}
	threes := KNucleusSubgraphs(inst, kappa, 3)
	if len(threes) != 2 {
		t.Fatalf("3-cores = %d, want 2", len(threes))
	}
	for _, c := range threes {
		if len(c) != 4 {
			t.Fatalf("3-core size = %d, want 4", len(c))
		}
	}
	twos := KNucleusSubgraphs(inst, kappa, 2)
	if len(twos) != 1 || len(twos[0]) != 9 {
		t.Fatalf("2-cores = %v", twos)
	}
	if got := KNucleusSubgraphs(inst, kappa, 99); len(got) != 0 {
		t.Fatalf("99-cores = %v", got)
	}
}

func TestKCoreSubgraph(t *testing.T) {
	g := graph.Figure2()
	kappa := peel.Run(nucleus.NewCore(g)).Kappa
	sub, remap := KCoreSubgraph(g, kappa, 2)
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("2-core subgraph: n=%d m=%d", sub.N(), sub.M())
	}
	if remap[0] != -1 || remap[1] < 0 {
		t.Fatalf("remap = %v", remap)
	}
}
