package hierarchy

import (
	"sort"

	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
)

// MaxNucleusOf returns the cells of the maximum nucleus of the given cell:
// the maximal S-connected set of cells with κ at least κ(cell) reachable
// from it (§2 of the paper: "maximum core of a vertex is the maximal
// subgraph around it that contains vertices with equal or larger core
// numbers", generalized to any instance). The result is sorted and
// includes the cell itself.
func MaxNucleusOf(inst nucleus.Instance, kappa []int32, cell int32) []int32 {
	k := kappa[cell]
	seen := map[int32]struct{}{cell: {}}
	stack := []int32{cell}
	var out []int32
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, c)
		// Move only through s-cliques whose every member has κ >= k: those
		// are the s-cliques that survive inside the k-nucleus, so the
		// traversal respects S-connectedness.
		inst.VisitSCliques(c, func(others []int32) bool {
			for _, d := range others {
				if kappa[d] < k {
					return true
				}
			}
			for _, d := range others {
				if _, ok := seen[d]; !ok {
					seen[d] = struct{}{}
					stack = append(stack, d)
				}
			}
			return true
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// KNucleusSubgraphs returns the cell sets of all k-(r,s) nuclei for the
// given threshold k: the S-connected components of the cells with κ >= k.
func KNucleusSubgraphs(inst nucleus.Instance, kappa []int32, k int32) [][]int32 {
	n := inst.NumCells()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var groups [][]int32
	for s := int32(0); s < int32(n); s++ {
		if kappa[s] < k || comp[s] >= 0 {
			continue
		}
		id := int32(len(groups))
		comp[s] = id
		stack := []int32{s}
		var cells []int32
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cells = append(cells, c)
			inst.VisitSCliques(c, func(others []int32) bool {
				for _, d := range others {
					if kappa[d] < k {
						return true
					}
				}
				for _, d := range others {
					if comp[d] < 0 {
						comp[d] = id
						stack = append(stack, d)
					}
				}
				return true
			})
		}
		sort.Slice(cells, func(a, b int) bool { return cells[a] < cells[b] })
		groups = append(groups, cells)
	}
	return groups
}

// CellsToVertices maps a cell set to its sorted distinct vertex set.
func CellsToVertices(inst nucleus.Instance, cells []int32) []uint32 {
	set := make(map[uint32]struct{})
	var buf []uint32
	for _, c := range cells {
		buf = inst.CellVertices(c, buf[:0])
		for _, v := range buf {
			set[v] = struct{}{}
		}
	}
	out := make([]uint32, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// KCoreSubgraph extracts the induced subgraph of the classic k-core: all
// vertices with core number >= k. kappa must be the (1,2) decomposition.
func KCoreSubgraph(g *graph.Graph, kappa []int32, k int32) (*graph.Graph, []int32) {
	var vs []uint32
	for v, kv := range kappa {
		if kv >= k {
			vs = append(vs, uint32(v))
		}
	}
	return g.InducedSubgraph(vs)
}
