package hierarchy

import (
	"encoding/json"
	"io"

	"nucleus/internal/graph"
)

// jsonNode is the serialized form of one nucleus.
type jsonNode struct {
	K        int32      `json:"k"`
	Cells    int        `json:"cells"`
	Vertices int        `json:"vertices"`
	Density  float64    `json:"density,omitempty"`
	Children []jsonNode `json:"children,omitempty"`
}

// WriteJSON serializes the forest as nested JSON. When g is non-nil, each
// node also carries the density of its induced subgraph.
func (f *Forest) WriteJSON(w io.Writer, g *graph.Graph) error {
	var conv func(n *Node) jsonNode
	conv = func(n *Node) jsonNode {
		jn := jsonNode{
			K:        n.K,
			Cells:    n.SubtreeCells,
			Vertices: len(f.Vertices(n)),
		}
		if g != nil {
			jn.Density = f.Density(g, n)
		}
		for _, c := range n.Children {
			jn.Children = append(jn.Children, conv(c))
		}
		return jn
	}
	roots := make([]jsonNode, 0, len(f.Roots))
	for _, r := range f.Roots {
		roots = append(roots, conv(r))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(roots)
}

// Subgraph extracts the subgraph of g induced by the vertices of the
// nucleus rooted at n, along with the old→new vertex mapping.
func (f *Forest) Subgraph(g *graph.Graph, n *Node) (*graph.Graph, []int32) {
	return g.InducedSubgraph(f.Vertices(n))
}

// NodesAtLevel returns every nucleus with exactly the given K.
func (f *Forest) NodesAtLevel(k int32) []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.K == k {
			out = append(out, n)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range f.Roots {
		walk(r)
	}
	return out
}

// Leaves returns the maximal-K nuclei (nodes without children): the
// densest discovered subgraphs.
func (f *Forest) Leaves() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if len(n.Children) == 0 {
			out = append(out, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range f.Roots {
		walk(r)
	}
	return out
}

// Find returns the deepest nucleus containing the given cell, or nil.
func (f *Forest) Find(cell int32) *Node {
	var best *Node
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		for _, c := range n.Cells {
			if c == cell {
				best = n
				return true
			}
		}
		for _, ch := range n.Children {
			if walk(ch) {
				// The cell lives in a descendant; the deepest node holding
				// it directly was already recorded.
				return true
			}
		}
		return false
	}
	for _, r := range f.Roots {
		if walk(r) {
			break
		}
	}
	return best
}
