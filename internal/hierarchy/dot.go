package hierarchy

import (
	"fmt"
	"io"

	"nucleus/internal/graph"
)

// WriteDOT renders the forest in GraphViz DOT format: one box per nucleus
// labeled with its threshold, cell count and (when g is non-nil) density,
// edges pointing from parent to child. Nodes smaller than minSize cells
// are elided.
func (f *Forest) WriteDOT(w io.Writer, g *graph.Graph, minSize int) error {
	if _, err := fmt.Fprintln(w, "digraph nuclei {"); err != nil {
		return err
	}
	fmt.Fprintln(w, `  node [shape=box, fontname="Helvetica"];`)
	id := 0
	var walk func(n *Node) (int, bool)
	walk = func(n *Node) (int, bool) {
		if n.SubtreeCells < minSize {
			return 0, false
		}
		my := id
		id++
		label := fmt.Sprintf("k=%d\\ncells=%d", n.K, n.SubtreeCells)
		if g != nil {
			label += fmt.Sprintf("\\ndensity=%.2f", f.Density(g, n))
		}
		fmt.Fprintf(w, "  n%d [label=\"%s\"];\n", my, label)
		for _, c := range n.Children {
			child, ok := walk(c)
			if ok {
				fmt.Fprintf(w, "  n%d -> n%d;\n", my, child)
			}
		}
		return my, true
	}
	for _, r := range f.Roots {
		walk(r)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
