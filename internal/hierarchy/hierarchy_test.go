package hierarchy

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
	"nucleus/internal/peel"
)

func coreForest(g *graph.Graph) (*Forest, []int32) {
	inst := nucleus.NewCore(g)
	kappa := peel.Run(inst).Kappa
	return Build(inst, kappa), kappa
}

func TestSingleClique(t *testing.T) {
	g := graph.Complete(5)
	f, _ := coreForest(g)
	if len(f.Roots) != 1 {
		t.Fatalf("roots = %d", len(f.Roots))
	}
	r := f.Roots[0]
	if r.K != 4 || r.SubtreeCells != 5 || len(r.Children) != 0 {
		t.Fatalf("root = {K:%d cells:%d children:%d}", r.K, r.SubtreeCells, len(r.Children))
	}
}

func TestCliqueChainHierarchy(t *testing.T) {
	// Three K5s joined by direct bridges keep min degree 4, so the whole
	// graph is one 4-core: a single flat root.
	g := graph.CliqueChain(3, 5)
	f, _ := coreForest(g)
	if len(f.Roots) != 1 {
		t.Fatalf("roots = %d", len(f.Roots))
	}
	root := f.Roots[0]
	if root.K != 4 || root.SubtreeCells != 15 || len(root.Children) != 0 {
		t.Fatalf("root = {K:%d cells:%d children:%d}", root.K, root.SubtreeCells, len(root.Children))
	}
}

func TestHubAndCliquesHierarchy(t *testing.T) {
	// Three K5s each attached to a central hub by one edge: hub degree 3,
	// the whole graph is a 3-core, and each K5 is a 4-core child.
	var edges [][2]uint32
	hub := uint32(15)
	for c := 0; c < 3; c++ {
		base := uint32(c * 5)
		for i := uint32(0); i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				edges = append(edges, [2]uint32{base + i, base + j})
			}
		}
		edges = append(edges, [2]uint32{hub, base})
	}
	g := graph.Build(16, edges)
	f, kappa := coreForest(g)
	if kappa[hub] != 3 {
		t.Fatalf("hub κ = %d, want 3", kappa[hub])
	}
	if len(f.Roots) != 1 {
		t.Fatalf("roots = %d", len(f.Roots))
	}
	root := f.Roots[0]
	if root.K != 3 {
		t.Fatalf("root K = %d, want 3", root.K)
	}
	if len(root.Children) != 3 {
		t.Fatalf("root children = %d, want 3", len(root.Children))
	}
	for _, c := range root.Children {
		if c.K != 4 || c.SubtreeCells != 5 {
			t.Fatalf("child = {K:%d cells:%d}", c.K, c.SubtreeCells)
		}
	}
	if f.NumNodes() != 4 {
		t.Fatalf("nodes = %d, want 4", f.NumNodes())
	}
}

func TestDisconnectedComponents(t *testing.T) {
	// Two disjoint triangles: two roots, each a 2-core of 3 cells.
	g := graph.Build(6, [][2]uint32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}})
	f, _ := coreForest(g)
	if len(f.Roots) != 2 {
		t.Fatalf("roots = %d, want 2", len(f.Roots))
	}
	for _, r := range f.Roots {
		if r.K != 2 || r.SubtreeCells != 3 {
			t.Fatalf("root = {K:%d cells:%d}", r.K, r.SubtreeCells)
		}
	}
}

func TestFigure2Hierarchy(t *testing.T) {
	// κ = {a:1,b:2,c:2,d:2,e:1,f:1}: a 1-core root with the {b,c,d}
	// 2-core child.
	g := graph.Figure2()
	f, _ := coreForest(g)
	if len(f.Roots) != 1 {
		t.Fatalf("roots = %d", len(f.Roots))
	}
	root := f.Roots[0]
	if root.K != 1 || root.SubtreeCells != 6 || len(root.Children) != 1 {
		t.Fatalf("root = {K:%d cells:%d children:%d}", root.K, root.SubtreeCells, len(root.Children))
	}
	child := root.Children[0]
	if child.K != 2 || child.SubtreeCells != 3 {
		t.Fatalf("child = {K:%d cells:%d}", child.K, child.SubtreeCells)
	}
	vs := f.Vertices(child)
	if len(vs) != 3 || vs[0] != 1 || vs[1] != 2 || vs[2] != 3 {
		t.Fatalf("child vertices = %v, want [1 2 3]", vs)
	}
}

// TestNestingInvariant: along every root-to-leaf path, K strictly
// increases, every cell appears exactly once in the forest, and the κ of
// the cells stored at a node equals the node's K.
func TestNestingInvariant(t *testing.T) {
	quickGraphs(t, func(g *graph.Graph) bool {
		inst := nucleus.NewCore(g)
		kappa := peel.Run(inst).Kappa
		f := Build(inst, kappa)
		seen := make(map[int32]bool)
		ok := true
		var walk func(n *Node, parentK int32)
		walk = func(n *Node, parentK int32) {
			if n.K <= parentK {
				ok = false
			}
			for _, c := range n.Cells {
				if seen[c] || kappa[c] != n.K {
					ok = false
				}
				seen[c] = true
			}
			for _, ch := range n.Children {
				walk(ch, n.K)
			}
		}
		for _, r := range f.Roots {
			walk(r, -1)
		}
		return ok && len(seen) == inst.NumCells()
	})
}

// TestComponentsInvariant: the number of roots equals the number of
// connected components containing at least one cell (for (1,2): all
// vertices).
func TestComponentsInvariant(t *testing.T) {
	quickGraphs(t, func(g *graph.Graph) bool {
		f, _ := coreForest(g)
		_, count := g.ConnectedComponents()
		return len(f.Roots) == count
	})
}

func TestTrussHierarchy(t *testing.T) {
	// Nucleus34Toy under (2,3): the pendant edge gh lies in no triangle, so
	// it is its own S-connected component (a singleton 0-truss root); the
	// two dense blocks are triangle-connected through edge cd and form the
	// second root, whose deepest nucleus is the K5 block (truss 3).
	g := graph.Nucleus34Toy()
	inst := nucleus.NewTruss(g)
	kappa := peel.Run(inst).Kappa
	f := Build(inst, kappa)
	if len(f.Roots) != 2 {
		t.Fatalf("roots = %d, want 2", len(f.Roots))
	}
	// Roots are sorted by K ascending: gh singleton first.
	if f.Roots[0].K != 0 || f.Roots[0].SubtreeCells != 1 {
		t.Fatalf("pendant root = {K:%d cells:%d}", f.Roots[0].K, f.Roots[0].SubtreeCells)
	}
	if f.Roots[1].K != 2 {
		t.Fatalf("block root K = %d, want 2", f.Roots[1].K)
	}
	// Walk to the deepest node; it must be the K5 block's edges.
	deepest := f.Roots[1]
	for len(deepest.Children) > 0 {
		best := deepest.Children[0]
		for _, c := range deepest.Children {
			if c.K > best.K {
				best = c
			}
		}
		deepest = best
	}
	if deepest.K != 3 {
		t.Fatalf("deepest truss K = %d, want 3", deepest.K)
	}
	vs := f.Vertices(deepest)
	want := []uint32{2, 3, 4, 5, 7} // c,d,e,f,h
	if len(vs) != len(want) {
		t.Fatalf("deepest vertices = %v, want %v", vs, want)
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("deepest vertices = %v, want %v", vs, want)
		}
	}
}

func TestN34HierarchySeparateNuclei(t *testing.T) {
	// The paper's Figure 3 point: the two dense blocks are separate
	// 1-(3,4) nuclei, because no 4-clique spans them.
	g := graph.Nucleus34Toy()
	inst := nucleus.NewN34(g)
	kappa := peel.Run(inst).Kappa
	f := Build(inst, kappa)
	// Count nodes with K >= 1: the K4 block (κ=1) and the K5 block's
	// nucleus chain (κ=2).
	var k1Plus []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.K >= 1 {
			k1Plus = append(k1Plus, n)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range f.Roots {
		walk(r)
	}
	// The two blocks must appear under different K>=1 subtrees: collect the
	// top-level K>=1 nodes (those whose parent is K=0 or a root).
	var tops []*Node
	var walkTop func(n *Node)
	walkTop = func(n *Node) {
		if n.K >= 1 {
			tops = append(tops, n)
			return
		}
		for _, c := range n.Children {
			walkTop(c)
		}
	}
	for _, r := range f.Roots {
		walkTop(r)
	}
	if len(tops) != 2 {
		t.Fatalf("top-level (3,4) nuclei = %d, want 2 (separate blocks)", len(tops))
	}
}

func TestDensityIncreasesWithDepth(t *testing.T) {
	g := graph.CliqueChain(3, 6)
	f, _ := coreForest(g)
	root := f.Roots[0]
	rootDensity := f.Density(g, root)
	for _, c := range root.Children {
		if d := f.Density(g, c); d <= rootDensity {
			t.Fatalf("child density %.3f <= root %.3f", d, rootDensity)
		}
		if d := f.Density(g, c); d != 1.0 {
			t.Fatalf("K6 block density = %.3f, want 1.0", d)
		}
	}
}

func TestPrint(t *testing.T) {
	g := graph.CliqueChain(2, 4)
	f, _ := coreForest(g)
	var buf bytes.Buffer
	f.Print(&buf, g, 0)
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
	// minSize elides small nuclei.
	var buf2 bytes.Buffer
	f.Print(&buf2, g, 1<<30)
	if buf2.Len() != 0 {
		t.Fatal("minSize did not elide")
	}
}

func TestDensityEdgeCases(t *testing.T) {
	g := graph.Build(2, [][2]uint32{{0, 1}})
	inst := nucleus.NewCore(g)
	f := Build(inst, peel.Run(inst).Kappa)
	if d := f.Density(g, f.Roots[0]); d != 1.0 {
		t.Fatalf("single edge density = %v", d)
	}
}

func quickGraphs(t *testing.T, pred func(*graph.Graph) bool) {
	t.Helper()
	err := quick.Check(func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%30) + 2
		m := int(mRaw%100) + 1
		maxM := n * (n - 1) / 2
		if m > maxM {
			m = maxM
		}
		return pred(graph.GnM(n, m, seed))
	}, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(15))})
	if err != nil {
		t.Fatal(err)
	}
}
