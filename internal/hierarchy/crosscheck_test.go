package hierarchy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
	"nucleus/internal/peel"
)

// TestForestMatchesComponentsAtEveryLevel cross-validates the union-find
// hierarchy against an independent per-level component computation: for
// every threshold k, grouping the forest's cells by their highest ancestor
// node with K >= k must reproduce exactly the S-connected components of
// {cells : κ >= k}.
func TestForestMatchesComponentsAtEveryLevel(t *testing.T) {
	check := func(g *graph.Graph, inst nucleus.Instance) bool {
		kappa := peel.Run(inst).Kappa
		f := Build(inst, kappa)
		maxK := int32(0)
		for _, k := range kappa {
			if k > maxK {
				maxK = k
			}
		}
		// cellGroup[k][cell] = the subtree id of cell at threshold k.
		for k := int32(0); k <= maxK; k++ {
			want := peelComponents(inst, kappa, k)
			got := forestGroups(f, k, inst.NumCells())
			if !samePartition(want, got) {
				return false
			}
		}
		return true
	}
	err := quick.Check(func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%22) + 3
		m := int(mRaw%90) + 1
		if maxM := n * (n - 1) / 2; m > maxM {
			m = maxM
		}
		g := graph.GnM(n, m, seed)
		return check(g, nucleus.NewCore(g)) && check(g, nucleus.NewTruss(g))
	}, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(23))})
	if err != nil {
		t.Fatal(err)
	}
}

// peelComponents labels cells with κ >= k by S-connected component
// (independent reference implementation); cells below k get -1.
func peelComponents(inst nucleus.Instance, kappa []int32, k int32) []int32 {
	n := inst.NumCells()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	next := int32(0)
	for s := int32(0); s < int32(n); s++ {
		if kappa[s] < k || comp[s] >= 0 {
			continue
		}
		comp[s] = next
		stack := []int32{s}
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			inst.VisitSCliques(c, func(others []int32) bool {
				for _, d := range others {
					if kappa[d] < k {
						return true
					}
				}
				for _, d := range others {
					if comp[d] < 0 {
						comp[d] = next
						stack = append(stack, d)
					}
				}
				return true
			})
		}
		next++
	}
	return comp
}

// forestGroups labels each cell with the id of its highest forest ancestor
// having K >= k; cells whose κ < k get -1.
func forestGroups(f *Forest, k int32, n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = -1
	}
	next := int32(0)
	var assign func(nd *Node, group int32)
	assign = func(nd *Node, group int32) {
		for _, c := range nd.Cells {
			out[c] = group
		}
		for _, ch := range nd.Children {
			assign(ch, group)
		}
	}
	var walk func(nd *Node)
	walk = func(nd *Node) {
		if nd.K >= k {
			assign(nd, next)
			next++
			return
		}
		for _, ch := range nd.Children {
			walk(ch)
		}
	}
	for _, r := range f.Roots {
		walk(r)
	}
	return out
}

// samePartition checks two labelings induce the same partition (labels may
// differ; -1 must match exactly).
func samePartition(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := make(map[int32]int32)
	bwd := make(map[int32]int32)
	for i := range a {
		if (a[i] < 0) != (b[i] < 0) {
			return false
		}
		if a[i] < 0 {
			continue
		}
		if m, ok := fwd[a[i]]; ok {
			if m != b[i] {
				return false
			}
		} else {
			fwd[a[i]] = b[i]
		}
		if m, ok := bwd[b[i]]; ok {
			if m != a[i] {
				return false
			}
		} else {
			bwd[b[i]] = a[i]
		}
	}
	return true
}
