package hierarchy

import (
	"bytes"
	"encoding/json"
	"testing"

	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
	"nucleus/internal/peel"
)

func hubForest(t *testing.T) (*graph.Graph, *Forest) {
	t.Helper()
	var edges [][2]uint32
	hub := uint32(15)
	for c := 0; c < 3; c++ {
		base := uint32(c * 5)
		for i := uint32(0); i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				edges = append(edges, [2]uint32{base + i, base + j})
			}
		}
		edges = append(edges, [2]uint32{hub, base})
	}
	g := graph.Build(16, edges)
	inst := nucleus.NewCore(g)
	return g, Build(inst, peel.Run(inst).Kappa)
}

func TestWriteJSON(t *testing.T) {
	g, f := hubForest(t)
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	var roots []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &roots); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(roots) != 1 {
		t.Fatalf("roots = %d", len(roots))
	}
	if k := roots[0]["k"].(float64); k != 3 {
		t.Fatalf("root k = %v", k)
	}
	kids := roots[0]["children"].([]any)
	if len(kids) != 3 {
		t.Fatalf("children = %d", len(kids))
	}
	// Without a graph, densities are omitted.
	var buf2 bytes.Buffer
	if err := f.WriteJSON(&buf2, nil); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf2.Bytes(), []byte("density")) {
		t.Fatal("density present without graph")
	}
}

func TestSubgraph(t *testing.T) {
	g, f := hubForest(t)
	leaves := f.Leaves()
	if len(leaves) != 3 {
		t.Fatalf("leaves = %d", len(leaves))
	}
	sub, _ := f.Subgraph(g, leaves[0])
	if sub.N() != 5 || sub.M() != 10 {
		t.Fatalf("leaf subgraph: n=%d m=%d, want K5", sub.N(), sub.M())
	}
}

func TestNodesAtLevel(t *testing.T) {
	_, f := hubForest(t)
	if got := len(f.NodesAtLevel(4)); got != 3 {
		t.Fatalf("level-4 nodes = %d", got)
	}
	if got := len(f.NodesAtLevel(3)); got != 1 {
		t.Fatalf("level-3 nodes = %d", got)
	}
	if got := len(f.NodesAtLevel(99)); got != 0 {
		t.Fatalf("level-99 nodes = %d", got)
	}
}

func TestFind(t *testing.T) {
	_, f := hubForest(t)
	// The hub (cell 15) has κ=3 and lives directly in the root.
	n := f.Find(15)
	if n == nil || n.K != 3 {
		t.Fatalf("Find(hub) = %v", n)
	}
	// A clique vertex lives in a κ=4 leaf.
	n = f.Find(0)
	if n == nil || n.K != 4 {
		t.Fatalf("Find(clique vertex) = %v", n)
	}
	if f.Find(9999) != nil {
		t.Fatal("found nonexistent cell")
	}
}
