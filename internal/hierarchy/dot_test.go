package hierarchy

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g, f := hubForest(t)
	var buf bytes.Buffer
	if err := f.WriteDOT(&buf, g, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph nuclei {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatalf("not a DOT document: %q", out)
	}
	// 1 root + 3 children = 4 boxes, 3 edges.
	if got := strings.Count(out, "[label="); got != 4 {
		t.Fatalf("node count = %d, want 4", got)
	}
	if got := strings.Count(out, "->"); got != 3 {
		t.Fatalf("edge count = %d", got)
	}
	if !strings.Contains(out, "density=") {
		t.Fatal("missing density labels")
	}
	// Eliding everything yields an empty digraph.
	var buf2 bytes.Buffer
	if err := f.WriteDOT(&buf2, nil, 1<<30); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf2.String(), "->") {
		t.Fatal("elided forest still has edges")
	}
}
