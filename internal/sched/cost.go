package sched

import "sync"

// CostKey identifies one workload class. Jobs sharing a (graph version,
// decomposition family, algorithm) triple converge alike — same instance,
// same sweep structure — so one cost estimate per key is the right
// granularity. The version is part of the key because an edit batch can
// change a graph's convergence behavior; estimates for dead versions age
// out of the bounded entry table.
type CostKey struct {
	Graph   string
	Version uint64
	Dec     string
	Alg     string
}

// costEntry is the learned per-key state: exponentially weighted moving
// averages of observed run duration, sweeps and τ updates from completed
// runs (the per-run convergence metrics the engines already report).
type costEntry struct {
	ms      float64
	sweeps  float64
	updates float64
}

// Prediction is the model's estimate for one arriving job.
type Prediction struct {
	// Ms is the predicted wall time of a full run in milliseconds.
	Ms float64
	// SweepMs is the predicted cost of a single sweep — the unit the
	// degradation policy budgets in (maxSweeps = available / SweepMs).
	SweepMs float64
	// Sweeps is the predicted sweep count of a full run.
	Sweeps float64
	// Cold is true when no run of this key has been observed and the
	// size-based prior produced the estimate.
	Cold bool
}

// CostModelStats is the /stats snapshot of the model.
type CostModelStats struct {
	Entries      int
	Hits         int64
	Misses       int64
	Observations int64
	// MeanAbsErrPct is the running mean of |observed − predicted| /
	// observed, in percent, over all observed completions (cold-start
	// predictions included — the honest number).
	MeanAbsErrPct float64
}

// Cost-model defaults. The cold-start prior charges priorUnitMs per
// graph unit (n+m): deliberately pessimistic for small graphs so an
// untrained server degrades or sheds conservatively rather than
// over-admitting, and corrected by the learned global rate after the
// first few completions. priorSweeps is the assumed sweep count of a
// cold run (local algorithms on real graphs converge in roughly 5–30
// sweeps; the geometric middle is good enough for a first budget).
const (
	defaultAlpha = 0.3
	priorUnitMs  = 0.002
	priorSweeps  = 8
	// maxEntries bounds the per-key table: graph versions churn with
	// every edit batch, and the model must not grow without bound in a
	// long-running server. Over the cap, an arbitrary entry is evicted
	// (map iteration order): dead-version entries are never consulted
	// again, so which one goes is immaterial.
	maxEntries = 4096
	// minObservedMs floors observations: a cache-adjacent run measured
	// at ~0 ms would otherwise collapse an EWMA (and divide error
	// percentages by zero).
	minObservedMs = 0.01
)

// CostModel predicts job cost from observed completions: one EWMA per
// CostKey, plus a learned global ms-per-(n+m) rate that prices keys
// never seen before (the size-based prior). Safe for concurrent use.
type CostModel struct {
	mu      sync.Mutex
	alpha   float64
	entries map[CostKey]*costEntry
	// unitRate is the global EWMA of observed ms per (n+m) unit,
	// seeding cold predictions; it starts at priorUnitMs.
	unitRate float64

	hits, misses int64
	observations int64
	errPctSum    float64
}

// NewCostModel returns a model with the given EWMA smoothing factor in
// (0, 1]; values outside that range select the default (0.3).
func NewCostModel(alpha float64) *CostModel {
	if alpha <= 0 || alpha > 1 {
		alpha = defaultAlpha
	}
	return &CostModel{
		alpha:    alpha,
		entries:  make(map[CostKey]*costEntry),
		unitRate: priorUnitMs,
	}
}

// Predict estimates the cost of a job with the given key on a graph of
// the given size (n+m). A known key returns its EWMA state; a cold key
// falls back to the size prior: unitRate × size, at priorSweeps sweeps.
func (m *CostModel) Predict(k CostKey, size int64) Prediction {
	if size < 1 {
		size = 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[k]; ok {
		m.hits++
		sweeps := e.sweeps
		if sweeps < 1 {
			// Peel runs report no sweeps; budget as if one monolithic
			// sweep, so a degraded budget can never be zero-priced.
			sweeps = 1
		}
		return Prediction{Ms: e.ms, SweepMs: e.ms / sweeps, Sweeps: sweeps}
	}
	m.misses++
	ms := m.unitRate * float64(size)
	if ms < minObservedMs {
		ms = minObservedMs
	}
	return Prediction{Ms: ms, SweepMs: ms / priorSweeps, Sweeps: priorSweeps, Cold: true}
}

// Observe feeds one completed run back into the model: the per-key EWMAs,
// the global unit rate, and the prediction-error average (predictedMs is
// what Predict returned when the job was admitted). Shed, cancelled and
// failed runs must not be observed — their durations measure policy, not
// workload.
func (m *CostModel) Observe(k CostKey, size int64, predictedMs, observedMs float64, sweeps int, updates int64) {
	if size < 1 {
		size = 1
	}
	if observedMs < minObservedMs {
		observedMs = minObservedMs
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[k]
	if !ok {
		if len(m.entries) >= maxEntries {
			for victim := range m.entries {
				delete(m.entries, victim)
				break
			}
		}
		// First observation initializes the EWMAs outright: blending
		// with a zero start would systematically underpredict.
		e = &costEntry{ms: observedMs, sweeps: float64(sweeps), updates: float64(updates)}
		m.entries[k] = e
	} else {
		e.ms += m.alpha * (observedMs - e.ms)
		e.sweeps += m.alpha * (float64(sweeps) - e.sweeps)
		e.updates += m.alpha * (float64(updates) - e.updates)
	}
	m.unitRate += m.alpha * (observedMs/float64(size) - m.unitRate)
	m.observations++
	if predictedMs > 0 {
		err := predictedMs - observedMs
		if err < 0 {
			err = -err
		}
		m.errPctSum += 100 * err / observedMs
	}
}

// Stats returns a consistent snapshot of the model counters.
func (m *CostModel) Stats() CostModelStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := CostModelStats{
		Entries:      len(m.entries),
		Hits:         m.hits,
		Misses:       m.misses,
		Observations: m.observations,
	}
	if m.observations > 0 {
		st.MeanAbsErrPct = m.errPctSum / float64(m.observations)
	}
	return st
}
