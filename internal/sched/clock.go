package sched

import (
	"sync"
	"time"
)

// Clock abstracts wall time so the scheduler's policy — deadline
// shedding, queue-wait prediction, deficit accounting — is testable
// under a deterministic simulated clock. The server runs on RealClock;
// the simulation harness and property tests drive a FakeClock.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// RealClock returns the wall clock.
func RealClock() Clock { return realClock{} }

// FakeClock is a manually advanced Clock for deterministic tests. The
// zero value starts at the zero time; NewFakeClock picks an arbitrary
// fixed epoch so deadline arithmetic never touches the zero time (which
// Item treats as "no deadline").
type FakeClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewFakeClock returns a FakeClock starting at a fixed non-zero epoch.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

// Now returns the current simulated time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the simulated clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}
