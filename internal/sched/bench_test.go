package sched

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkSchedulerDispatch measures the steady-state dispatch hot
// path — Enqueue, TryNext, Done over warm tenant queues — and is gated
// at zero allocs/op by the benchsweep smoke: scheduling replaced a bare
// channel in front of every job the server runs, and must not tax it.
// The warm-up loop populates the tenant map, heap capacity, ring
// capacity and byID buckets so the timed region exercises only reuse.
func BenchmarkSchedulerDispatch(b *testing.B) {
	clock := NewFakeClock()
	s := New(Config{Workers: 4, MaxQueued: 1024, QuantumMs: 50}, clock, nil)
	const tenants = 3
	items := make([]*Item, tenants)
	for i := range items {
		items[i] = &Item{
			ID:          fmt.Sprintf("bench-%d", i),
			Tenant:      fmt.Sprintf("tenant-%d", i),
			PredictedMs: 10,
			Deadline:    clock.Now().Add(time.Hour),
		}
	}
	cycle := func(it *Item) {
		if err := s.Enqueue(it); err != nil {
			b.Fatal(err)
		}
		out, ok := s.TryNext()
		if !ok {
			b.Fatal("nothing dispatchable")
		}
		s.Done(out)
	}
	for i := 0; i < 1024; i++ {
		cycle(items[i%tenants])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle(items[i%tenants])
	}
}

// BenchmarkSchedulerBacklogDispatch is the same path with standing
// backlogs, so TryNext exercises the DRR rotation and EDF heap repair
// rather than a single-item queue.
func BenchmarkSchedulerBacklogDispatch(b *testing.B) {
	clock := NewFakeClock()
	const tenants = 3
	const depth = 32
	s := New(Config{Workers: 4, MaxQueued: tenants*depth + tenants, QuantumMs: 50}, clock, nil)
	var backlog []*Item
	for tn := 0; tn < tenants; tn++ {
		for d := 0; d < depth; d++ {
			it := &Item{
				ID:          fmt.Sprintf("bl-%d-%d", tn, d),
				Tenant:      fmt.Sprintf("tenant-%d", tn),
				PredictedMs: 10,
				Deadline:    clock.Now().Add(time.Duration(d+1) * time.Hour),
			}
			if err := s.Enqueue(it); err != nil {
				b.Fatal(err)
			}
			backlog = append(backlog, it)
		}
	}
	_ = backlog
	for i := 0; i < 1024; i++ {
		out, ok := s.TryNext()
		if !ok {
			b.Fatal("nothing dispatchable")
		}
		s.Done(out)
		if err := s.Enqueue(out); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, ok := s.TryNext()
		if !ok {
			b.Fatal("nothing dispatchable")
		}
		s.Done(out)
		if err := s.Enqueue(out); err != nil {
			b.Fatal(err)
		}
	}
}
