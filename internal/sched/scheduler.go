// Package sched holds nucleusd's scheduling machinery: the live
// workload-aware job scheduler behind the server's worker pool, and a
// deterministic makespan model of parallel sweep execution used by the
// paper-reproduction experiments (makespan.go).
//
// The scheduler replaces the FIFO job channel with observed-cost
// admission, deadline shedding, and deficit-round-robin tenant
// fairness, designed so the whole policy is exercisable without HTTP:
//
//   - CostModel learns per-(graph version, family, algorithm) run cost
//     as EWMAs over completed runs' duration/sweeps/updates, with a
//     size-based (n+m) prior for keys never seen — the "greedy beats
//     optimal, no statistics" stance: a cheap observed-cost heuristic
//     before anything learned.
//   - Scheduler holds one earliest-deadline-first queue per tenant and
//     dispatches across tenants by deficit round robin (equal weights):
//     each backlogged tenant's turn adds one quantum of predicted-ms
//     credit, and its jobs dispatch while the credit covers their
//     predicted cost, so over any window a backlogged tenant's dispatch
//     share stays within one quantum (plus one job) of its fair share.
//     Queued jobs whose deadline has already passed are shed at
//     dispatch time instead of wasting a worker.
//   - Clock abstracts time, so every policy above runs identically
//     under the deterministic simulation harness in the tests.
//
// Admission (per-tenant queued/in-flight quotas, global bound) is
// enforced by Enqueue; overload degradation — running a job under a
// computed anytime budget when its deadline cannot survive the
// predicted queue wait — is decided by the caller (internal/server)
// from PredictedWaitMs and the CostModel's per-sweep estimate.
package sched

import (
	"errors"
	"sync"
	"time"
)

// Admission errors. The server maps the quota errors to 429 and uses
// DrainMs to derive a Retry-After for load-shed submissions.
var (
	// ErrQueueFull reports the global queued-job bound is reached.
	ErrQueueFull = errors.New("scheduler queue is full")
	// ErrTenantQuota reports the submitting tenant's queued-job quota is
	// reached (other tenants may still have room).
	ErrTenantQuota = errors.New("tenant queue quota is full")
	// ErrTenantLimit reports the distinct-tenant cap: a flood of
	// never-before-seen tenant names must not grow state without bound.
	ErrTenantLimit = errors.New("too many distinct tenants")
	// ErrClosed reports a submission after Close.
	ErrClosed = errors.New("scheduler is closed")
)

// maxTenants bounds the distinct tenant names the scheduler tracks.
const maxTenants = 1024

// Item is one schedulable unit of work.
type Item struct {
	// ID is the caller's identifier (the job id); Remove and Position
	// address items by it.
	ID string
	// Tenant names the submitting tenant (already defaulted by the
	// caller; the scheduler treats it as an opaque queue key).
	Tenant string
	// PredictedMs is the cost estimate charged against the tenant's
	// deficit when the item dispatches.
	PredictedMs float64
	// Deadline is the absolute wall deadline; the zero time means none.
	// A queued item whose deadline passes is shed at dispatch time.
	Deadline time.Time
	// Degraded marks an item the caller admitted under a computed
	// anytime budget; the scheduler only counts it.
	Degraded bool
	// Payload is opaque caller state (the server's *job).
	Payload any

	// Scheduler-internal state, guarded by the scheduler mutex.
	started time.Time
	seq     uint64
	pos     int // index in the tenant heap; -1 once off the queue
}

// Config sizes the scheduler.
type Config struct {
	// Workers is the dispatching worker-pool size; wait and drain
	// predictions divide by it. <= 0 defaults to 1.
	Workers int
	// MaxQueued bounds queued items across all tenants. <= 0 defaults
	// to 64.
	MaxQueued int
	// TenantMaxQueued bounds one tenant's queued items. <= 0 defaults
	// to MaxQueued (no per-tenant constraint beyond the global bound).
	TenantMaxQueued int
	// TenantMaxInFlight bounds one tenant's dispatched-but-unfinished
	// items. <= 0 defaults to Workers (no constraint beyond the pool).
	TenantMaxInFlight int
	// QuantumMs is the deficit-round-robin quantum in predicted-ms.
	// <= 0 defaults to 250. Smaller quanta interleave tenants more
	// finely; the fairness bound is one quantum plus one job.
	QuantumMs float64
	// TenantWeights scales the DRR quantum per tenant: a weight-K tenant
	// earns K quanta of predicted-ms credit per rotation turn, so while
	// backlogged it drains at K× a weight-1 tenant's rate. Unlisted
	// tenants (and weights < 1) get weight 1.
	TenantWeights map[string]int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 64
	}
	if c.TenantMaxQueued <= 0 {
		c.TenantMaxQueued = c.MaxQueued
	}
	if c.TenantMaxInFlight <= 0 {
		c.TenantMaxInFlight = c.Workers
	}
	if c.QuantumMs <= 0 {
		c.QuantumMs = 250
	}
	return c
}

// TenantStats is one tenant's cumulative and live accounting.
type TenantStats struct {
	Admitted int64
	Shed     int64
	Degraded int64
	InFlight int
	Queued   int
	Weight   int
}

// Stats is a consistent snapshot of the scheduler.
type Stats struct {
	Queued    int
	InFlight  int
	Admitted  int64
	Shed      int64
	Degraded  int64
	PerTenant map[string]TenantStats
}

// tenantQueue is one tenant's scheduling state.
type tenantQueue struct {
	name string
	// heap is the EDF min-heap: earliest deadline first, deadline-less
	// items FIFO after every deadlined one.
	heap []*Item
	// deficit is the DRR credit in predicted-ms; turnActive marks that
	// this rotation's quantum has been granted (so a turn spanning
	// several Next calls is topped up exactly once).
	deficit    float64
	turnActive bool
	inFlight   int
	// weight scales the per-turn quantum; resolved once at queue
	// creation so the dispatch hot path stays map-lookup- and
	// allocation-free.
	weight float64

	admitted int64
	shed     int64
	degraded int64
}

// Scheduler is the tenant-fair, deadline-aware dispatch queue. All
// methods are safe for concurrent use. Next blocks; TryNext is the
// non-blocking form the deterministic simulation harness drives.
type Scheduler struct {
	mu    sync.Mutex
	cond  *sync.Cond
	clock Clock
	cfg   Config

	tenants map[string]*tenantQueue
	// ring is the round-robin rotation of tenants with queued work;
	// ringPos is the rotation cursor.
	ring    []*tenantQueue
	ringPos int

	byID     map[string]*Item
	inFlight map[*Item]struct{}
	queued   int
	seq      uint64
	closed   bool

	// onShed is invoked (without the scheduler lock) for each queued
	// item discarded because its deadline passed before dispatch.
	onShed func(*Item)

	admitted int64
	shedded  int64
	degraded int64
}

// New constructs a Scheduler. clock may be nil (wall clock); onShed may
// be nil (shed items are silently dropped) and is never called with the
// scheduler lock held.
func New(cfg Config, clock Clock, onShed func(*Item)) *Scheduler {
	if clock == nil {
		clock = RealClock()
	}
	s := &Scheduler{
		cfg:      cfg.withDefaults(),
		clock:    clock,
		tenants:  make(map[string]*tenantQueue),
		byID:     make(map[string]*Item),
		inFlight: make(map[*Item]struct{}),
		onShed:   onShed,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// weightFor resolves a tenant's configured DRR weight, flooring at 1 so
// a misconfigured zero or negative weight cannot starve the tenant.
func (s *Scheduler) weightFor(tenant string) float64 {
	if w, ok := s.cfg.TenantWeights[tenant]; ok && w > 1 {
		return float64(w)
	}
	return 1
}

// Enqueue admits an item, or rejects it with ErrQueueFull,
// ErrTenantQuota, ErrTenantLimit or ErrClosed. The item must not be
// re-enqueued while it is still queued or in flight.
func (s *Scheduler) Enqueue(it *Item) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.queued >= s.cfg.MaxQueued {
		return ErrQueueFull
	}
	t, ok := s.tenants[it.Tenant]
	if !ok {
		if len(s.tenants) >= maxTenants {
			return ErrTenantLimit
		}
		t = &tenantQueue{name: it.Tenant, weight: s.weightFor(it.Tenant)}
		s.tenants[it.Tenant] = t
	}
	if len(t.heap) >= s.cfg.TenantMaxQueued {
		return ErrTenantQuota
	}
	s.seq++
	it.seq = s.seq
	it.started = time.Time{}
	heapPush(t, it)
	if len(t.heap) == 1 {
		s.ring = append(s.ring, t)
	}
	s.byID[it.ID] = it
	s.queued++
	t.admitted++
	s.admitted++
	if it.Degraded {
		t.degraded++
		s.degraded++
	}
	s.cond.Broadcast()
	return nil
}

// RecordShed accounts a submit-time shed (a job the caller refused with
// 503 before it ever reached the queue) against the tenant's counters,
// so /stats reconciles with observed responses.
func (s *Scheduler) RecordShed(tenantName string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[tenantName]; ok {
		t.shed++
	} else if len(s.tenants) < maxTenants {
		s.tenants[tenantName] = &tenantQueue{name: tenantName, weight: s.weightFor(tenantName), shed: 1}
	}
	s.shedded++
}

// Next blocks until an item is dispatchable (returning it, true) or the
// scheduler is closed (returning nil, false). Expired-deadline items
// encountered on the way are shed via the onShed callback.
func (s *Scheduler) Next() (*Item, bool) {
	s.mu.Lock()
	for {
		it, shed := s.dispatchLocked()
		if len(shed) > 0 {
			s.mu.Unlock()
			s.fireShed(shed)
			if it != nil {
				return it, true
			}
			s.mu.Lock()
			continue
		}
		if it != nil {
			s.mu.Unlock()
			return it, true
		}
		if s.closed {
			s.mu.Unlock()
			return nil, false
		}
		s.cond.Wait()
	}
}

// TryNext is the non-blocking Next: it dispatches an item if one is
// eligible right now, and never waits. ok is false when nothing is
// dispatchable (even if items remain queued behind quotas or deficits).
func (s *Scheduler) TryNext() (*Item, bool) {
	s.mu.Lock()
	it, shed := s.dispatchLocked()
	s.mu.Unlock()
	s.fireShed(shed)
	return it, it != nil
}

func (s *Scheduler) fireShed(shed []*Item) {
	if s.onShed == nil {
		return
	}
	for _, it := range shed {
		s.onShed(it)
	}
}

// dispatchLocked runs the DRR rotation: shed expired heads, grant the
// rotation's quantum to the tenant whose turn it is, and dispatch its
// EDF head once the deficit covers the head's predicted cost. Returns
// the dispatched item (nil if nothing is eligible) and any items shed
// along the way. Terminates because a full pass that tops up no tenant
// and dispatches nothing proves every queue is empty or quota-blocked,
// and any topped-up tenant's deficit reaches its head's cost within
// ceil(cost/quantum) passes.
func (s *Scheduler) dispatchLocked() (*Item, []*Item) {
	var shed []*Item
	now := s.clock.Now()
	for {
		// progress means a pass topped up a deficit or retired a stale
		// active turn (one left hanging when its tenant hit the
		// in-flight quota mid-turn); either way the next pass can get
		// further, so loop. A pass with neither proves every queue is
		// empty or quota-blocked.
		progress := false
		for visits := len(s.ring); visits > 0 && len(s.ring) > 0; visits-- {
			if s.ringPos >= len(s.ring) {
				s.ringPos = 0
			}
			t := s.ring[s.ringPos]
			// Shed expired heads first: EDF order puts the earliest
			// deadline on top, so every expired item surfaces here
			// before any live one dispatches.
			for len(t.heap) > 0 {
				head := t.heap[0]
				if head.Deadline.IsZero() || !now.After(head.Deadline) {
					break
				}
				s.takeLocked(t, head)
				t.shed++
				s.shedded++
				shed = append(shed, head)
			}
			if len(t.heap) == 0 {
				t.deficit = 0
				t.turnActive = false
				s.ringRemoveAt(s.ringPos) // cursor now points at the successor
				continue
			}
			if t.inFlight >= s.cfg.TenantMaxInFlight {
				s.ringPos++
				continue
			}
			if !t.turnActive {
				t.deficit += s.cfg.QuantumMs * t.weight
				t.turnActive = true
				progress = true
			}
			head := t.heap[0]
			if t.deficit >= head.PredictedMs {
				t.deficit -= head.PredictedMs
				s.takeLocked(t, head)
				head.started = now
				t.inFlight++
				s.inFlight[head] = struct{}{}
				if len(t.heap) == 0 {
					// An emptied queue forfeits its remaining credit:
					// deficits must not accrue across idle periods.
					t.deficit = 0
					t.turnActive = false
					s.ringRemoveAt(s.ringPos)
				}
				return head, shed
			}
			// Credit too small for the head job: the turn ends, the
			// deficit carries to the next rotation.
			t.turnActive = false
			progress = true
			s.ringPos++
		}
		if !progress {
			return nil, shed
		}
	}
}

// takeLocked removes a queued item from its tenant heap and the global
// accounting (shared by dispatch, shed and Remove).
func (s *Scheduler) takeLocked(t *tenantQueue, it *Item) {
	heapRemove(t, it.pos)
	delete(s.byID, it.ID)
	s.queued--
}

// Done releases an in-flight item's slot. Callers must invoke it
// exactly once for every item returned by Next/TryNext, whether the run
// succeeded, failed or was skipped.
func (s *Scheduler) Done(it *Item) {
	s.mu.Lock()
	if _, ok := s.inFlight[it]; ok {
		delete(s.inFlight, it)
		if t, tok := s.tenants[it.Tenant]; tok {
			t.inFlight--
		}
		s.cond.Broadcast() // an in-flight quota may have unblocked a queue
	}
	s.mu.Unlock()
}

// Remove takes a still-queued item out of the queue (DELETE /jobs on a
// queued job), releasing its global and tenant accounting immediately.
// It returns false when the id is not queued — never submitted, already
// dispatched, shed, or previously removed.
func (s *Scheduler) Remove(id string) (*Item, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	it, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	t := s.tenants[it.Tenant]
	s.takeLocked(t, it)
	if len(t.heap) == 0 {
		t.deficit = 0
		t.turnActive = false
		s.ringRemove(t)
	}
	return it, true
}

// Position reports an item's 1-based earliest-deadline-first rank
// within its tenant's queue (1 = dispatched next among that tenant's
// jobs), or 0 when the id is not queued.
func (s *Scheduler) Position(id string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	it, ok := s.byID[id]
	if !ok {
		return 0
	}
	rank := 1
	for _, other := range s.tenants[it.Tenant].heap {
		if other != it && edfLess(other, it) {
			rank++
		}
	}
	return rank
}

// PredictedWaitMs estimates how long a job submitted now would wait for
// a worker: the predicted-ms backlog — every queued item plus the
// predicted remainder of every in-flight item — divided across the
// pool. Zero when a worker is idle and nothing is queued. It is an
// estimate in exactly the cost model's error band, which is why the
// degradation policy consuming it prefers budgeted answers over shed
// requests when a deadline is tight but not hopeless.
func (s *Scheduler) PredictedWaitMs() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.queued == 0 && len(s.inFlight) < s.cfg.Workers {
		return 0
	}
	return s.backlogMsLocked() / float64(s.cfg.Workers)
}

// DrainMs estimates the time to drain the current backlog — the basis
// for Retry-After on shed submissions.
func (s *Scheduler) DrainMs() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.backlogMsLocked() / float64(s.cfg.Workers)
}

func (s *Scheduler) backlogMsLocked() float64 {
	now := s.clock.Now()
	var ms float64
	for _, t := range s.tenants {
		for _, it := range t.heap {
			ms += it.PredictedMs
		}
	}
	for it := range s.inFlight {
		remaining := it.PredictedMs - float64(now.Sub(it.started))/float64(time.Millisecond)
		if remaining > 0 {
			ms += remaining
		}
	}
	return ms
}

// Queued returns the number of queued items.
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// Stats returns a consistent snapshot of the scheduler counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Queued:    s.queued,
		InFlight:  len(s.inFlight),
		Admitted:  s.admitted,
		Shed:      s.shedded,
		Degraded:  s.degraded,
		PerTenant: make(map[string]TenantStats, len(s.tenants)),
	}
	for name, t := range s.tenants {
		st.PerTenant[name] = TenantStats{
			Admitted: t.admitted,
			Shed:     t.shed,
			Degraded: t.degraded,
			InFlight: t.inFlight,
			Queued:   len(t.heap),
			Weight:   int(t.weight),
		}
	}
	return st
}

// Close stops admission and drains every still-queued item, returning
// them so the caller can fail their jobs. Blocked Next calls return
// (nil, false); in-flight items finish normally (their Done calls are
// still accepted).
func (s *Scheduler) Close() []*Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var drained []*Item
	for _, t := range s.tenants {
		drained = append(drained, t.heap...)
		for _, it := range t.heap {
			it.pos = -1
			delete(s.byID, it.ID)
		}
		t.heap = nil
		t.deficit = 0
		t.turnActive = false
	}
	s.ring = s.ring[:0]
	s.ringPos = 0
	s.queued = 0
	s.cond.Broadcast()
	return drained
}

// ---------------------------------------------------------------------------
// Ring (round-robin rotation of tenants with queued work).

func (s *Scheduler) ringRemove(t *tenantQueue) {
	for i, rt := range s.ring {
		if rt == t {
			s.ringRemoveAt(i)
			return
		}
	}
}

// ringRemoveAt deletes the ring slot, keeping rotation order and fixing
// the cursor so the rotation continues at the removed slot's successor.
func (s *Scheduler) ringRemoveAt(i int) {
	copy(s.ring[i:], s.ring[i+1:])
	s.ring[len(s.ring)-1] = nil
	s.ring = s.ring[:len(s.ring)-1]
	if s.ringPos > i {
		s.ringPos--
	}
	if s.ringPos >= len(s.ring) {
		s.ringPos = 0
	}
}

// ---------------------------------------------------------------------------
// EDF heap (hand-rolled on the tenant's slice: container/heap would box
// every push through an interface, and the dispatch hot path is gated
// allocation-free by the benchsweep smoke).

// edfLess orders items earliest-deadline-first; the zero deadline sorts
// after every real one, and ties (including deadline-less pairs) break
// FIFO by admission sequence.
func edfLess(a, b *Item) bool {
	az, bz := a.Deadline.IsZero(), b.Deadline.IsZero()
	switch {
	case az && bz:
		return a.seq < b.seq
	case az:
		return false
	case bz:
		return true
	}
	if a.Deadline.Equal(b.Deadline) {
		return a.seq < b.seq
	}
	return a.Deadline.Before(b.Deadline)
}

func heapPush(t *tenantQueue, it *Item) {
	t.heap = append(t.heap, it)
	it.pos = len(t.heap) - 1
	heapUp(t, it.pos)
}

// heapRemove deletes the item at index i, restoring heap order.
func heapRemove(t *tenantQueue, i int) {
	n := len(t.heap) - 1
	it := t.heap[i]
	if i != n {
		heapSwap(t, i, n)
	}
	t.heap[n] = nil
	t.heap = t.heap[:n]
	if i != n {
		heapDown(t, i)
		heapUp(t, i)
	}
	it.pos = -1
}

func heapSwap(t *tenantQueue, i, j int) {
	t.heap[i], t.heap[j] = t.heap[j], t.heap[i]
	t.heap[i].pos = i
	t.heap[j].pos = j
}

func heapUp(t *tenantQueue, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !edfLess(t.heap[i], t.heap[parent]) {
			break
		}
		heapSwap(t, i, parent)
		i = parent
	}
}

func heapDown(t *tenantQueue, i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && edfLess(t.heap[l], t.heap[least]) {
			least = l
		}
		if r < n && edfLess(t.heap[r], t.heap[least]) {
			least = r
		}
		if least == i {
			return
		}
		heapSwap(t, i, least)
		i = least
	}
}
