package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMakespanSingleThread(t *testing.T) {
	work := []int64{3, 1, 4, 1, 5}
	if got := Makespan(work, 1, true, 1); got != 14 {
		t.Fatalf("static 1-thread makespan = %d", got)
	}
	if got := Makespan(work, 1, false, 2); got != 14 {
		t.Fatalf("dynamic 1-thread makespan = %d", got)
	}
}

func TestMakespanStaticImbalance(t *testing.T) {
	// All heavy work at the front: static splitting leaves thread 0 with
	// everything that matters.
	work := []int64{100, 100, 100, 100, 0, 0, 0, 0}
	if got := Makespan(work, 2, true, 1); got != 400 {
		t.Fatalf("static makespan = %d, want 400", got)
	}
	// Dynamic chunk=1 balances: 400 total over 2 threads = 200.
	if got := Makespan(work, 2, false, 1); got != 200 {
		t.Fatalf("dynamic makespan = %d, want 200", got)
	}
}

func TestSpeedupBounds(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(16))}
	err := quick.Check(func(raw []uint8, threadsRaw uint8, chunkRaw uint8, static bool) bool {
		if len(raw) == 0 {
			return true
		}
		work := make([]int64, len(raw))
		for i, r := range raw {
			work[i] = int64(r)
		}
		threads := int(threadsRaw%16) + 1
		chunk := int(chunkRaw%8) + 1
		s := Speedup(work, threads, static, chunk)
		// 1 <= speedup <= threads (within fp tolerance); degenerate all-zero
		// work reports 1.
		return s >= 1-1e-9 && s <= float64(threads)+1e-9
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupMonotoneUniformWork(t *testing.T) {
	work := make([]int64, 10000)
	for i := range work {
		work[i] = 10
	}
	prev := 0.0
	for _, th := range []int{1, 2, 4, 8, 16} {
		s := Speedup(work, th, false, 16)
		if s < prev {
			t.Fatalf("speedup decreased at %d threads: %v < %v", th, s, prev)
		}
		prev = s
	}
	// Uniform work, fine chunks: near-linear.
	if s := Speedup(work, 8, false, 16); math.Abs(s-8) > 0.5 {
		t.Fatalf("uniform dynamic speedup at 8 threads = %v", s)
	}
}

func TestDynamicBeatsStaticOnSkew(t *testing.T) {
	// Skewed work concentrated in one region, like converged cells under
	// the notification mechanism.
	rng := rand.New(rand.NewSource(17))
	work := make([]int64, 4096)
	for i := 0; i < 512; i++ {
		work[i] = int64(rng.Intn(100)) + 50
	}
	for i := 512; i < len(work); i++ {
		work[i] = int64(rng.Intn(2))
	}
	d := Speedup(work, 8, false, 16)
	s := Speedup(work, 8, true, 0)
	if d <= s {
		t.Fatalf("dynamic %v not better than static %v on skewed work", d, s)
	}
}

func TestPeelingModel(t *testing.T) {
	// Enumeration parallelizes; peeling does not.
	t1 := PeelingModel(2400, 1000, 1)
	t24 := PeelingModel(2400, 1000, 24)
	if t1 != 3400 || t24 != 1100 {
		t.Fatalf("peeling model: %d, %d", t1, t24)
	}
	// Amdahl ceiling: no thread count beats the serial part.
	if PeelingModel(2400, 1000, 1<<20) < 1000 {
		t.Fatal("peeling model below serial floor")
	}
}

func TestImbalance(t *testing.T) {
	work := []int64{10, 10, 10, 10}
	if got := Imbalance(work, 2, true, 1); math.Abs(got) > 1e-9 {
		t.Fatalf("balanced imbalance = %v", got)
	}
	skew := []int64{40, 0, 0, 0}
	if got := Imbalance(skew, 2, true, 1); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("skewed imbalance = %v, want 1.0", got)
	}
	if got := Imbalance(nil, 4, true, 1); got != 0 {
		t.Fatalf("empty imbalance = %v", got)
	}
}

func TestMakespanEdgeCases(t *testing.T) {
	if got := Makespan(nil, 4, false, 8); got != 0 {
		t.Fatalf("empty makespan = %d", got)
	}
	if got := Makespan([]int64{5}, 0, false, 0); got != 5 {
		t.Fatalf("degenerate params makespan = %d", got)
	}
}
