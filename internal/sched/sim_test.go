package sched

// The deterministic simulation harness: scripted jobs with known actual
// durations run against the real Scheduler on a FakeClock, with virtual
// workers modeled as busy-until timestamps. Every dispatch and shed is
// recorded with its simulated timestamp, so the property tests assert
// fairness, EDF ordering and shed-only-when-late as exact statements
// about the trace rather than as flaky wall-clock observations.

import (
	"fmt"
	"testing"
	"time"
)

// simJob scripts one job: predMs is what the scheduler is told (the
// cost-model estimate), costMs is how long the virtual worker is busy.
type simJob struct {
	id     string
	tenant string
	predMs float64
	costMs float64
	// deadline is relative to the simulation start; 0 means none.
	deadline time.Duration
}

type simDispatch struct {
	item *Item
	at   time.Time
}

type simShed struct {
	item *Item
	at   time.Time
}

type simResult struct {
	start      time.Time
	dispatches []simDispatch
	shed       []simShed
}

// runSim enqueues every job at simulation start (the backlogged regime
// the fairness property quantifies over) and drives the scheduler event
// by event: finish due workers, fill free workers via TryNext, advance
// the fake clock to the next completion. Deterministic by construction —
// no goroutines, no wall clock.
func runSim(t *testing.T, cfg Config, jobs []simJob) simResult {
	t.Helper()
	clock := NewFakeClock()
	res := simResult{start: clock.Now()}
	s := New(cfg, clock, func(it *Item) {
		res.shed = append(res.shed, simShed{item: it, at: clock.Now()})
	})
	for i := range jobs {
		j := &jobs[i]
		it := &Item{ID: j.id, Tenant: j.tenant, PredictedMs: j.predMs, Payload: j}
		if j.deadline > 0 {
			it.Deadline = res.start.Add(j.deadline)
		}
		if err := s.Enqueue(it); err != nil {
			t.Fatalf("enqueue %s: %v", j.id, err)
		}
	}

	workers := cfg.withDefaults().Workers
	busyUntil := make([]time.Time, workers)
	running := make([]*Item, workers)
	for step := 0; ; step++ {
		if step > 100000 {
			t.Fatal("simulation did not terminate")
		}
		now := clock.Now()
		busy := 0
		for w := range running {
			if running[w] != nil && !busyUntil[w].After(now) {
				s.Done(running[w])
				running[w] = nil
			}
			if running[w] != nil {
				busy++
			}
		}
		dispatched := false
		for w := range running {
			if running[w] != nil {
				continue
			}
			it, ok := s.TryNext()
			if !ok {
				break
			}
			j := it.Payload.(*simJob)
			running[w] = it
			busyUntil[w] = now.Add(time.Duration(j.costMs * float64(time.Millisecond)))
			res.dispatches = append(res.dispatches, simDispatch{item: it, at: now})
			busy++
			dispatched = true
		}
		if dispatched {
			continue // a freed quota may make more work eligible right now
		}
		if busy == 0 {
			if q := s.Queued(); q != 0 {
				t.Fatalf("deadlock: %d queued, no workers busy, nothing dispatchable", q)
			}
			return res
		}
		// Advance to the earliest completion.
		var next time.Time
		for w := range running {
			if running[w] != nil && (next.IsZero() || busyUntil[w].Before(next)) {
				next = busyUntil[w]
			}
		}
		clock.Advance(next.Sub(now))
	}
}

// TestSimFairnessDRR is the fairness property across worker counts
// {1,2,4,8}: three equally weighted tenants, each backlogged with
// equal-cost jobs, must receive dispatch shares whose predicted-ms
// spread never exceeds one quantum plus two max-size jobs (the quantum
// bound at turn boundaries, widened to cover instants mid-turn) for as
// long as all three remain backlogged.
func TestSimFairnessDRR(t *testing.T) {
	const (
		perTenant = 120
		costMs    = 10
		quantum   = 20
	)
	tenants := []string{"a", "b", "c"}
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var jobs []simJob
			// Interleave tenants in arrival order so no tenant owns the
			// queue-front by construction.
			for i := 0; i < perTenant; i++ {
				for _, tn := range tenants {
					jobs = append(jobs, simJob{
						id:     fmt.Sprintf("%s-%d", tn, i),
						tenant: tn,
						predMs: costMs,
						costMs: costMs,
					})
				}
			}
			res := runSim(t, Config{
				Workers:   workers,
				MaxQueued: len(jobs),
				QuantumMs: quantum,
			}, jobs)
			if len(res.shed) != 0 {
				t.Fatalf("deadline-less jobs shed: %d", len(res.shed))
			}
			if len(res.dispatches) != len(jobs) {
				t.Fatalf("dispatched %d of %d", len(res.dispatches), len(jobs))
			}

			served := map[string]float64{"a": 0, "b": 0, "c": 0}
			count := map[string]int{}
			const bound = quantum + 2*costMs
			for _, d := range res.dispatches {
				served[d.item.Tenant] += d.item.PredictedMs
				count[d.item.Tenant]++
				allBacklogged := true
				for _, tn := range tenants {
					if count[tn] >= perTenant {
						allBacklogged = false
					}
				}
				if !allBacklogged {
					continue // drained tenants exit the fairness regime
				}
				lo, hi := served[tenants[0]], served[tenants[0]]
				for _, tn := range tenants[1:] {
					if served[tn] < lo {
						lo = served[tn]
					}
					if served[tn] > hi {
						hi = served[tn]
					}
				}
				if hi-lo > bound {
					t.Fatalf("fairness violated after %d dispatches: served=%v spread=%.0fms > %dms",
						count["a"]+count["b"]+count["c"], served, hi-lo, bound)
				}
			}
			for _, tn := range tenants {
				if count[tn] != perTenant {
					t.Fatalf("tenant %s dispatched %d of %d", tn, count[tn], perTenant)
				}
			}
		})
	}
}

// TestSimFairnessMixedCosts re-checks the fairness bound when tenants
// submit different-sized jobs: the spread bound widens to one quantum
// plus two maximum job costs, but a tenant of small jobs must not be
// starved by a tenant of large ones.
func TestSimFairnessMixedCosts(t *testing.T) {
	const quantum = 25.0
	costs := map[string]float64{"small": 5, "medium": 12, "large": 24}
	perTenant := map[string]int{"small": 240, "medium": 100, "large": 50}
	var jobs []simJob
	for i := 0; i < 240; i++ {
		for tn, n := range perTenant {
			if i < n {
				jobs = append(jobs, simJob{
					id:     fmt.Sprintf("%s-%d", tn, i),
					tenant: tn,
					predMs: costs[tn],
					costMs: costs[tn],
				})
			}
		}
	}
	res := runSim(t, Config{Workers: 2, MaxQueued: len(jobs), QuantumMs: quantum}, jobs)
	if len(res.dispatches) != len(jobs) {
		t.Fatalf("dispatched %d of %d", len(res.dispatches), len(jobs))
	}
	served := map[string]float64{}
	count := map[string]int{}
	maxCost := 24.0
	bound := quantum + 2*maxCost
	for _, d := range res.dispatches {
		served[d.item.Tenant] += d.item.PredictedMs
		count[d.item.Tenant]++
		allBacklogged := true
		for tn, n := range perTenant {
			if count[tn] >= n {
				allBacklogged = false
			}
		}
		if !allBacklogged {
			break
		}
		lo, hi := served["small"], served["small"]
		for _, tn := range []string{"medium", "large"} {
			if served[tn] < lo {
				lo = served[tn]
			}
			if served[tn] > hi {
				hi = served[tn]
			}
		}
		if hi-lo > bound {
			t.Fatalf("mixed-cost fairness violated: served=%v spread=%.0f > %.0f", served, hi-lo, bound)
		}
	}
}

// TestSimEDFWithinTenant: one tenant, scrambled deadlines. Dispatch
// order must be sorted by deadline, with deadline-less jobs last in
// FIFO order. The quantum is made large so DRR never splits the run and
// the ordering observed is purely the EDF heap's.
func TestSimEDFWithinTenant(t *testing.T) {
	jobs := []simJob{
		{id: "none-1", tenant: "t", predMs: 1, costMs: 1},
		{id: "d-300", tenant: "t", predMs: 1, costMs: 1, deadline: 300 * time.Millisecond},
		{id: "d-100", tenant: "t", predMs: 1, costMs: 1, deadline: 100 * time.Millisecond},
		{id: "none-2", tenant: "t", predMs: 1, costMs: 1},
		{id: "d-200", tenant: "t", predMs: 1, costMs: 1, deadline: 200 * time.Millisecond},
		{id: "d-50", tenant: "t", predMs: 1, costMs: 1, deadline: 50 * time.Millisecond},
	}
	res := runSim(t, Config{Workers: 1, MaxQueued: 16, QuantumMs: 1000}, jobs)
	if len(res.shed) != 0 {
		t.Fatalf("unexpected sheds: %d (all deadlines are satisfiable)", len(res.shed))
	}
	want := []string{"d-50", "d-100", "d-200", "d-300", "none-1", "none-2"}
	if len(res.dispatches) != len(want) {
		t.Fatalf("dispatched %d of %d", len(res.dispatches), len(want))
	}
	for i, d := range res.dispatches {
		if d.item.ID != want[i] {
			got := make([]string, len(res.dispatches))
			for j, dd := range res.dispatches {
				got[j] = dd.item.ID
			}
			t.Fatalf("EDF order violated: got %v want %v", got, want)
		}
	}
}

// TestSimShedOnlyWhenLate: with one worker pinned by a long job, queued
// jobs whose deadlines expire mid-wait are shed — and each shed happens
// strictly after its deadline — while every job whose deadline the
// backlog can still meet runs to dispatch.
func TestSimShedOnlyWhenLate(t *testing.T) {
	jobs := []simJob{
		// Pins the worker for 100ms. Its deadline is the earliest so EDF
		// dispatches it first (at +0ms, well before +30ms — deadlines
		// gate queued jobs, not running ones).
		{id: "long", tenant: "t", predMs: 100, costMs: 100, deadline: 30 * time.Millisecond},
		// Expires at +40ms, long before the worker frees: must shed.
		{id: "late-1", tenant: "t", predMs: 5, costMs: 5, deadline: 40 * time.Millisecond},
		{id: "late-2", tenant: "t", predMs: 5, costMs: 5, deadline: 60 * time.Millisecond},
		// Satisfiable: the worker frees at 100ms, deadline is 500ms.
		{id: "ok-1", tenant: "t", predMs: 5, costMs: 5, deadline: 500 * time.Millisecond},
		{id: "ok-2", tenant: "t", predMs: 5, costMs: 5},
	}
	res := runSim(t, Config{Workers: 1, MaxQueued: 16, QuantumMs: 1000}, jobs)

	shedIDs := map[string]bool{}
	for _, sh := range res.shed {
		shedIDs[sh.item.ID] = true
		if !sh.at.After(sh.item.Deadline) {
			t.Fatalf("job %s shed at %v, before its deadline %v",
				sh.item.ID, sh.at.Sub(res.start), sh.item.Deadline.Sub(res.start))
		}
	}
	if !shedIDs["late-1"] || !shedIDs["late-2"] || len(shedIDs) != 2 {
		t.Fatalf("expected exactly {late-1, late-2} shed, got %v", shedIDs)
	}
	dispatchedIDs := map[string]bool{}
	for _, d := range res.dispatches {
		dispatchedIDs[d.item.ID] = true
	}
	for _, id := range []string{"long", "ok-1", "ok-2"} {
		if !dispatchedIDs[id] {
			t.Fatalf("satisfiable job %s was never dispatched (dispatched=%v)", id, dispatchedIDs)
		}
	}
}

// TestSimTenantInFlightQuota: with TenantMaxInFlight=1 and 2 workers, a
// single backlogged tenant never occupies both workers at once, and a
// second tenant's arrival can always find a free slot.
func TestSimTenantInFlightQuota(t *testing.T) {
	var jobs []simJob
	for i := 0; i < 20; i++ {
		jobs = append(jobs, simJob{id: fmt.Sprintf("a-%d", i), tenant: "a", predMs: 10, costMs: 10})
	}
	res := runSim(t, Config{Workers: 2, MaxQueued: 32, TenantMaxInFlight: 1, QuantumMs: 1000}, jobs)
	if len(res.dispatches) != len(jobs) {
		t.Fatalf("dispatched %d of %d", len(res.dispatches), len(jobs))
	}
	// With one slot, dispatches must be strictly serialized: each
	// dispatch time >= previous dispatch time + its cost.
	for i := 1; i < len(res.dispatches); i++ {
		prev, cur := res.dispatches[i-1], res.dispatches[i]
		if cur.at.Sub(prev.at) < 10*time.Millisecond {
			t.Fatalf("dispatch %d at +%v overlaps previous at +%v despite TenantMaxInFlight=1",
				i, cur.at.Sub(res.start), prev.at.Sub(res.start))
		}
	}
}
