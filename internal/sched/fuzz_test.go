package sched

// FuzzSchedulerDispatch drives the scheduler with arbitrary
// arrival/deadline/tenant/clock sequences decoded from the fuzz input
// and checks the invariants the property tests assert on curated
// scripts: conservation (every admitted item ends exactly one of
// completed, shed, removed, or still queued), shed-only-when-late, EDF
// dispatch order within a tenant among coexisting items, per-tenant
// in-flight quotas, and internal-accounting consistency.

import (
	"fmt"
	"testing"
	"time"
)

func FuzzSchedulerDispatch(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x11, 0x80, 0x01, 0x23})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{0x1f, 0x9a, 0x03, 0x77, 0x05, 0x3c, 0x44, 0x08, 0xee, 0x10})
	f.Fuzz(func(t *testing.T, data []byte) {
		clock := NewFakeClock()
		var shed []*Item
		cfg := Config{
			Workers:           2,
			MaxQueued:         32,
			TenantMaxQueued:   16,
			TenantMaxInFlight: 2,
			QuantumMs:         8,
		}
		s := New(cfg, clock, func(it *Item) { shed = append(shed, it) })

		admitted := map[string]*Item{}
		queued := map[string]*Item{}
		inFlight := map[string]*Item{}
		completed := map[string]*Item{}
		removed := map[string]*Item{}
		nextID := 0

		for i := 0; i < len(data); i++ {
			op := data[i] & 0x07
			arg := data[i] >> 3
			switch op {
			case 0, 1, 2: // enqueue (weighted: arrivals dominate real traffic)
				it := &Item{
					ID:          fmt.Sprintf("j%d", nextID),
					Tenant:      fmt.Sprintf("t%d", arg%3),
					PredictedMs: float64(1 + arg%13),
				}
				nextID++
				if arg%4 == 1 {
					// Deadlines from already-expired to comfortably out.
					it.Deadline = clock.Now().Add(time.Duration(int(arg)-8) * time.Millisecond)
				}
				if err := s.Enqueue(it); err == nil {
					admitted[it.ID] = it
					queued[it.ID] = it
				}
			case 3: // advance the clock
				clock.Advance(time.Duration(arg) * time.Millisecond)
			case 4, 5: // dispatch
				shedBefore := len(shed)
				it, ok := s.TryNext()
				for _, sh := range shed[shedBefore:] {
					if sh.Deadline.IsZero() || !clock.Now().After(sh.Deadline) {
						t.Fatalf("shed item %s with live deadline (now=%v deadline=%v)",
							sh.ID, clock.Now(), sh.Deadline)
					}
					delete(queued, sh.ID)
				}
				if !ok {
					continue
				}
				if _, dup := inFlight[it.ID]; dup {
					t.Fatalf("item %s dispatched twice", it.ID)
				}
				if _, known := queued[it.ID]; !known {
					t.Fatalf("dispatched item %s that the model says is not queued", it.ID)
				}
				delete(queued, it.ID)
				// EDF within tenant: the dispatched item must be the EDF
				// minimum of its tenant's still-queued items (DRR picks
				// the tenant; EDF picks the item).
				for _, other := range queued {
					if other.Tenant == it.Tenant && edfLess(other, it) {
						t.Fatalf("EDF violated: dispatched %s (deadline %v) while %s (deadline %v) queued",
							it.ID, it.Deadline, other.ID, other.Deadline)
					}
				}
				inFlight[it.ID] = it
				// Per-tenant in-flight quota.
				perTenant := 0
				for _, other := range inFlight {
					if other.Tenant == it.Tenant {
						perTenant++
					}
				}
				if perTenant > cfg.TenantMaxInFlight {
					t.Fatalf("tenant %s has %d in flight, quota %d",
						it.Tenant, perTenant, cfg.TenantMaxInFlight)
				}
			case 6: // complete one in-flight item (map order is fine: any one)
				for id, it := range inFlight {
					s.Done(it)
					delete(inFlight, id)
					completed[id] = it
					break
				}
			case 7: // remove a queued item by (approximate) id
				if nextID == 0 {
					continue
				}
				id := fmt.Sprintf("j%d", int(arg)%nextID)
				if it, ok := s.Remove(id); ok {
					if _, stillQueued := queued[id]; !stillQueued {
						t.Fatalf("removed %s, which the model says is not queued", id)
					}
					delete(queued, id)
					removed[id] = it
				}
			}

			// Global invariants after every op.
			st := s.Stats()
			accounted := len(inFlight) + len(completed) + len(removed) + len(shed) + st.Queued
			if accounted != len(admitted) {
				t.Fatalf("conservation violated: admitted=%d inFlight=%d completed=%d removed=%d shed=%d queued=%d",
					len(admitted), len(inFlight), len(completed), len(removed), len(shed), st.Queued)
			}
			if st.InFlight != len(inFlight) {
				t.Fatalf("scheduler inFlight=%d, model=%d", st.InFlight, len(inFlight))
			}
			var tenantQueued int
			for _, ts := range st.PerTenant {
				tenantQueued += ts.Queued
				if ts.Queued < 0 || ts.InFlight < 0 {
					t.Fatalf("negative tenant accounting: %+v", ts)
				}
			}
			if tenantQueued != st.Queued {
				t.Fatalf("per-tenant queued %d != global %d", tenantQueued, st.Queued)
			}
			if w := s.PredictedWaitMs(); w < 0 {
				t.Fatalf("negative predicted wait %v", w)
			}
		}

		// Drain: everything still queued must come out (or shed), and
		// conservation must hold at the end. Completing in-flight work
		// first releases the per-tenant quotas a drain can block on.
		for id, it := range inFlight {
			s.Done(it)
			completed[id] = it
			delete(inFlight, id)
		}
		for {
			it, ok := s.TryNext()
			if !ok {
				break
			}
			delete(queued, it.ID)
			s.Done(it)
			completed[it.ID] = it
		}
		for _, sh := range shed {
			delete(queued, sh.ID)
		}
		if st := s.Stats(); st.Queued != 0 || st.InFlight != 0 {
			// Queued may legitimately be nonzero if quotas blocked the
			// drain — but with everything Done, TryNext can only fail on
			// an empty queue.
			t.Fatalf("drain left queued=%d inFlight=%d", st.Queued, st.InFlight)
		}
		if got := len(completed) + len(removed) + len(shed); got != len(admitted) {
			t.Fatalf("final conservation: admitted=%d accounted=%d", len(admitted), got)
		}
		if len(queued) != 0 {
			t.Fatalf("model still holds %d queued items after drain", len(queued))
		}
	})
}
