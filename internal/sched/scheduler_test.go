package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func item(id, tenant string, predMs float64) *Item {
	return &Item{ID: id, Tenant: tenant, PredictedMs: predMs}
}

func TestEnqueueQuotas(t *testing.T) {
	s := New(Config{MaxQueued: 4, TenantMaxQueued: 2}, NewFakeClock(), nil)
	if err := s.Enqueue(item("a1", "a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(item("a2", "a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(item("a3", "a", 1)); err != ErrTenantQuota {
		t.Fatalf("tenant over quota: got %v want ErrTenantQuota", err)
	}
	if err := s.Enqueue(item("b1", "b", 1)); err != nil {
		t.Fatalf("other tenant must still have room: %v", err)
	}
	if err := s.Enqueue(item("b2", "b", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(item("c1", "c", 1)); err != ErrQueueFull {
		t.Fatalf("global bound: got %v want ErrQueueFull", err)
	}
	if got := s.Queued(); got != 4 {
		t.Fatalf("queued = %d, want 4", got)
	}
}

func TestRemoveReleasesAccountingImmediately(t *testing.T) {
	s := New(Config{MaxQueued: 2}, NewFakeClock(), nil)
	if err := s.Enqueue(item("x1", "a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(item("x2", "a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(item("x3", "a", 1)); err != ErrQueueFull {
		t.Fatalf("got %v want ErrQueueFull", err)
	}
	if _, ok := s.Remove("x1"); !ok {
		t.Fatal("remove of queued item failed")
	}
	// The slot must be reusable on the spot, not after a worker skips
	// the cancelled job.
	if err := s.Enqueue(item("x3", "a", 1)); err != nil {
		t.Fatalf("slot not released by Remove: %v", err)
	}
	if _, ok := s.Remove("x1"); ok {
		t.Fatal("double remove succeeded")
	}
	if _, ok := s.Remove("nope"); ok {
		t.Fatal("remove of unknown id succeeded")
	}
	// Removing a dispatched item must fail: it is no longer queued.
	it, ok := s.TryNext()
	if !ok {
		t.Fatal("expected a dispatch")
	}
	if _, ok := s.Remove(it.ID); ok {
		t.Fatal("removed an in-flight item")
	}
}

func TestPositionIsEDFRank(t *testing.T) {
	clock := NewFakeClock()
	s := New(Config{MaxQueued: 8}, clock, nil)
	base := clock.Now()
	mk := func(id string, deadlineMs int) *Item {
		it := item(id, "t", 1)
		if deadlineMs > 0 {
			it.Deadline = base.Add(time.Duration(deadlineMs) * time.Millisecond)
		}
		return it
	}
	for _, it := range []*Item{mk("late", 900), mk("none", 0), mk("soon", 100), mk("mid", 500)} {
		if err := s.Enqueue(it); err != nil {
			t.Fatal(err)
		}
	}
	want := map[string]int{"soon": 1, "mid": 2, "late": 3, "none": 4}
	for id, rank := range want {
		if got := s.Position(id); got != rank {
			t.Fatalf("Position(%s) = %d, want %d", id, got, rank)
		}
	}
	if got := s.Position("absent"); got != 0 {
		t.Fatalf("Position(absent) = %d, want 0", got)
	}
}

func TestPredictedWaitAndDrain(t *testing.T) {
	clock := NewFakeClock()
	s := New(Config{Workers: 2, MaxQueued: 8}, clock, nil)
	if got := s.PredictedWaitMs(); got != 0 {
		t.Fatalf("idle wait = %v, want 0", got)
	}
	for i := 0; i < 4; i++ {
		if err := s.Enqueue(item(fmt.Sprintf("j%d", i), "t", 100)); err != nil {
			t.Fatal(err)
		}
	}
	// 400ms of backlog over 2 workers.
	if got := s.DrainMs(); got != 200 {
		t.Fatalf("drain = %v, want 200", got)
	}
	it, ok := s.TryNext()
	if !ok {
		t.Fatal("expected dispatch")
	}
	// 300ms queued + 100ms in-flight remainder, over 2 workers.
	if got := s.PredictedWaitMs(); got != 200 {
		t.Fatalf("wait = %v, want 200", got)
	}
	// Half the in-flight item's predicted cost elapses; its remainder
	// shrinks accordingly.
	clock.Advance(50 * time.Millisecond)
	if got := s.PredictedWaitMs(); got != 175 {
		t.Fatalf("wait after 50ms = %v, want 175", got)
	}
	s.Done(it)
	// One worker idle, but a backlog remains: still a predicted wait.
	if got := s.PredictedWaitMs(); got != 150 {
		t.Fatalf("wait after done = %v, want 150", got)
	}
}

func TestCloseDrainsQueued(t *testing.T) {
	s := New(Config{MaxQueued: 8}, NewFakeClock(), nil)
	for i := 0; i < 3; i++ {
		if err := s.Enqueue(item(fmt.Sprintf("j%d", i), "t", 1)); err != nil {
			t.Fatal(err)
		}
	}
	it, ok := s.TryNext()
	if !ok {
		t.Fatal("expected dispatch")
	}
	drained := s.Close()
	if len(drained) != 2 {
		t.Fatalf("drained %d, want 2", len(drained))
	}
	if err := s.Enqueue(item("late", "t", 1)); err != ErrClosed {
		t.Fatalf("enqueue after close: got %v want ErrClosed", err)
	}
	if _, ok := s.TryNext(); ok {
		t.Fatal("dispatch after close")
	}
	s.Done(it) // must not panic after close
	if again := s.Close(); again != nil {
		t.Fatalf("second close drained %d items", len(again))
	}
}

func TestNextBlocksUntilEnqueue(t *testing.T) {
	s := New(Config{MaxQueued: 8}, nil, nil)
	got := make(chan *Item, 1)
	go func() {
		it, ok := s.Next()
		if !ok {
			got <- nil
			return
		}
		got <- it
	}()
	time.Sleep(10 * time.Millisecond) // let Next reach the cond wait
	if err := s.Enqueue(item("j1", "t", 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case it := <-got:
		if it == nil || it.ID != "j1" {
			t.Fatalf("Next returned %+v", it)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not wake on enqueue")
	}
}

func TestNextWakesOnClose(t *testing.T) {
	s := New(Config{MaxQueued: 8}, nil, nil)
	done := make(chan bool, 1)
	go func() {
		_, ok := s.Next()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next returned an item from a closed scheduler")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not wake on close")
	}
}

// TestConcurrentSmoke exercises the full API from many goroutines under
// the race detector: producers enqueueing across tenants with deadlines,
// workers looping Next/Done, and a meddler calling Remove, Position,
// Stats and the wait estimators. Correctness here is accounting
// consistency at the end — every admitted item is exactly one of
// completed, shed, removed, or drained by Close.
func TestConcurrentSmoke(t *testing.T) {
	var completed, shedCount atomic.Int64
	s := New(Config{Workers: 4, MaxQueued: 256, QuantumMs: 5}, nil,
		func(*Item) { shedCount.Add(1) })

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				it, ok := s.Next()
				if !ok {
					return
				}
				time.Sleep(time.Duration(it.PredictedMs) * time.Microsecond)
				s.Done(it)
				completed.Add(1)
			}
		}()
	}

	var admitted, removed atomic.Int64
	var prod sync.WaitGroup
	for p := 0; p < 3; p++ {
		prod.Add(1)
		go func(p int) {
			defer prod.Done()
			tenant := fmt.Sprintf("tenant-%d", p)
			for i := 0; i < 200; i++ {
				it := item(fmt.Sprintf("%s-%d", tenant, i), tenant, float64(1+i%7))
				if i%5 == 0 {
					// A mix of already-expired and future deadlines.
					it.Deadline = time.Now().Add(time.Duration(i%3-1) * 10 * time.Millisecond)
				}
				if err := s.Enqueue(it); err != nil {
					continue // quota rejections are fine under burst
				}
				admitted.Add(1)
				if i%17 == 0 {
					if _, ok := s.Remove(it.ID); ok {
						removed.Add(1)
					}
				}
				s.Position(it.ID)
				s.PredictedWaitMs()
			}
		}(p)
	}
	prod.Wait()
	// Drain: wait until everything admitted is accounted for.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := s.Stats()
		if st.Queued == 0 && st.InFlight == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	drained := s.Close()
	wg.Wait()

	total := completed.Load() + shedCount.Load() + removed.Load() + int64(len(drained))
	if total != admitted.Load() {
		t.Fatalf("accounting leak: admitted=%d but completed=%d + shed=%d + removed=%d + drained=%d = %d",
			admitted.Load(), completed.Load(), shedCount.Load(), removed.Load(), len(drained), total)
	}
	st := s.Stats()
	var perTenantAdmitted int64
	for _, ts := range st.PerTenant {
		perTenantAdmitted += ts.Admitted
	}
	if perTenantAdmitted != st.Admitted {
		t.Fatalf("per-tenant admitted %d != total %d", perTenantAdmitted, st.Admitted)
	}
}

func TestStatsPerTenant(t *testing.T) {
	s := New(Config{MaxQueued: 16}, NewFakeClock(), nil)
	for i := 0; i < 3; i++ {
		if err := s.Enqueue(item(fmt.Sprintf("a%d", i), "a", 1)); err != nil {
			t.Fatal(err)
		}
	}
	it := item("b0", "b", 1)
	it.Degraded = true
	if err := s.Enqueue(it); err != nil {
		t.Fatal(err)
	}
	s.RecordShed("c")
	st := s.Stats()
	if st.Admitted != 4 || st.Queued != 4 || st.Shed != 1 || st.Degraded != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if a := st.PerTenant["a"]; a.Admitted != 3 || a.Queued != 3 {
		t.Fatalf("tenant a = %+v", a)
	}
	if b := st.PerTenant["b"]; b.Degraded != 1 {
		t.Fatalf("tenant b = %+v", b)
	}
	if c := st.PerTenant["c"]; c.Shed != 1 || c.Admitted != 0 {
		t.Fatalf("tenant c = %+v", c)
	}
}

func TestTenantLimit(t *testing.T) {
	s := New(Config{MaxQueued: maxTenants + 8, TenantMaxQueued: maxTenants + 8}, NewFakeClock(), nil)
	for i := 0; i < maxTenants; i++ {
		if err := s.Enqueue(item(fmt.Sprintf("j%d", i), fmt.Sprintf("t%d", i), 1)); err != nil {
			t.Fatalf("tenant %d rejected: %v", i, err)
		}
	}
	if err := s.Enqueue(item("over", "one-too-many", 1)); err != ErrTenantLimit {
		t.Fatalf("got %v want ErrTenantLimit", err)
	}
	// A known tenant still gets in.
	if err := s.Enqueue(item("known", "t0", 1)); err != nil {
		t.Fatalf("known tenant rejected: %v", err)
	}
}
