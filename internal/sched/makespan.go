package sched

// This file is the package's older, unrelated-to-serving half: a
// deterministic model of parallel execution. Given per-cell work weights
// it computes the makespan achieved by static or dynamic chunk scheduling
// over T threads. The paper's scalability results (Figure 1b, §4.4)
// depend on how evenly work spreads across threads — especially once the
// notification mechanism leaves islands of active cells — and this model
// reproduces those shapes independent of the host's core count.
//
// Makespan is the primitive; Speedup and Imbalance derive the quantities
// plotted in the paper, and PeelingModel captures why global peeling
// cannot scale: its enumeration phase parallelizes but the bucket loop is
// inherently sequential.

// Makespan simulates scheduling the work items (in index order) over
// `threads` workers and returns the finishing time of the last worker.
//
// static=true pre-splits items into contiguous equal-count chunks, one per
// worker (OpenMP "static"). static=false assigns chunks of `chunk` items to
// the earliest-finishing worker (OpenMP "dynamic").
func Makespan(work []int64, threads int, static bool, chunk int) int64 {
	if threads < 1 {
		threads = 1
	}
	if len(work) == 0 {
		return 0
	}
	if static {
		per := (len(work) + threads - 1) / threads
		var ms int64
		for lo := 0; lo < len(work); lo += per {
			hi := lo + per
			if hi > len(work) {
				hi = len(work)
			}
			var sum int64
			for _, w := range work[lo:hi] {
				sum += w
			}
			if sum > ms {
				ms = sum
			}
		}
		return ms
	}
	if chunk < 1 {
		chunk = 1
	}
	finish := make([]int64, threads)
	for lo := 0; lo < len(work); lo += chunk {
		hi := lo + chunk
		if hi > len(work) {
			hi = len(work)
		}
		var sum int64
		for _, w := range work[lo:hi] {
			sum += w
		}
		// Assign to the earliest-finishing worker.
		best := 0
		for t := 1; t < threads; t++ {
			if finish[t] < finish[best] {
				best = t
			}
		}
		finish[best] += sum
	}
	var ms int64
	for _, f := range finish {
		if f > ms {
			ms = f
		}
	}
	return ms
}

// Speedup returns total(work)/makespan for the given configuration: the
// parallel speedup an ideal machine would achieve.
func Speedup(work []int64, threads int, static bool, chunk int) float64 {
	ms := Makespan(work, threads, static, chunk)
	if ms == 0 {
		return 1
	}
	var total int64
	for _, w := range work {
		total += w
	}
	return float64(total) / float64(ms)
}

// PeelingModel models the paper's "partially parallel peeling" baseline
// (Figure 1b's Peeling-24t): the s-degree computation (clique enumeration)
// parallelizes, but the peeling loop itself is inherently sequential.
// It returns the modeled execution time.
func PeelingModel(enumWork, peelWork int64, threads int) int64 {
	if threads < 1 {
		threads = 1
	}
	return enumWork/int64(threads) + peelWork
}

// Imbalance returns makespan/idealTime - 1: zero for a perfectly balanced
// schedule. idealTime is total/threads.
func Imbalance(work []int64, threads int, static bool, chunk int) float64 {
	var total int64
	for _, w := range work {
		total += w
	}
	if total == 0 {
		return 0
	}
	ideal := float64(total) / float64(threads)
	ms := float64(Makespan(work, threads, static, chunk))
	return ms/ideal - 1
}
