package sched

import (
	"fmt"
	"math"
	"testing"
)

func TestCostModelColdPrior(t *testing.T) {
	m := NewCostModel(0)
	k := CostKey{Graph: "g", Version: 1, Dec: "truss", Alg: "localhi"}
	p := m.Predict(k, 50000)
	if !p.Cold {
		t.Fatal("unseen key must predict cold")
	}
	if want := priorUnitMs * 50000; p.Ms != want {
		t.Fatalf("cold Ms = %v, want %v", p.Ms, want)
	}
	if p.Sweeps != priorSweeps {
		t.Fatalf("cold Sweeps = %v, want %v", p.Sweeps, priorSweeps)
	}
	if want := p.Ms / priorSweeps; p.SweepMs != want {
		t.Fatalf("cold SweepMs = %v, want %v", p.SweepMs, want)
	}
	// A larger graph must never predict cheaper.
	if bigger := m.Predict(k, 500000); bigger.Ms <= p.Ms {
		t.Fatalf("prior not monotone in size: %v <= %v", bigger.Ms, p.Ms)
	}
	// Degenerate sizes are floored, not zero-priced.
	if tiny := m.Predict(k, 0); tiny.Ms < minObservedMs {
		t.Fatalf("zero-size prior %v below floor", tiny.Ms)
	}
	st := m.Stats()
	if st.Hits != 0 || st.Misses != 3 || st.Entries != 0 {
		t.Fatalf("stats after cold predicts = %+v", st)
	}
}

// TestCostModelEWMAConvergence is the table-driven convergence check:
// scripted observation histories and where the per-key estimate must end
// up. The first observation seeds the EWMA outright; later ones blend at
// alpha, so a shifted workload converges geometrically toward the new
// level.
func TestCostModelEWMAConvergence(t *testing.T) {
	cases := []struct {
		name     string
		alpha    float64
		observed []float64 // observed run durations, in order
		wantMs   float64
		tol      float64
	}{
		{name: "constant history is learned exactly", alpha: 0.3,
			observed: []float64{100, 100, 100, 100}, wantMs: 100, tol: 0},
		{name: "single observation seeds outright", alpha: 0.3,
			observed: []float64{42}, wantMs: 42, tol: 0},
		{name: "step change converges to new level", alpha: 0.3,
			observed: append([]float64{100}, repeat(200, 30)...), wantMs: 200, tol: 1},
		{name: "high alpha tracks the last sample closely", alpha: 0.9,
			observed: []float64{100, 10}, wantMs: 19, tol: 0.001},
		{name: "low alpha resists a spike", alpha: 0.1,
			observed: []float64{100, 1000}, wantMs: 190, tol: 0.001},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewCostModel(tc.alpha)
			k := CostKey{Graph: "g", Version: 1, Dec: "core", Alg: "local"}
			for _, obs := range tc.observed {
				p := m.Predict(k, 1000)
				m.Observe(k, 1000, p.Ms, obs, 10, 1000)
			}
			got := m.Predict(k, 1000)
			if got.Cold {
				t.Fatal("observed key predicts cold")
			}
			if math.Abs(got.Ms-tc.wantMs) > tc.tol {
				t.Fatalf("converged Ms = %v, want %v ± %v", got.Ms, tc.wantMs, tc.tol)
			}
		})
	}
}

func TestCostModelSweepsAndUpdatesTracked(t *testing.T) {
	m := NewCostModel(0.3)
	k := CostKey{Graph: "g", Version: 1, Dec: "core", Alg: "local"}
	m.Observe(k, 1000, 0, 120, 12, 5000)
	p := m.Predict(k, 1000)
	if p.Sweeps != 12 {
		t.Fatalf("Sweeps = %v, want 12", p.Sweeps)
	}
	if want := 120.0 / 12; p.SweepMs != want {
		t.Fatalf("SweepMs = %v, want %v", p.SweepMs, want)
	}
	// Peel-style runs report zero sweeps; the per-sweep price must not
	// divide by zero (budgeted degradation depends on it).
	kp := CostKey{Graph: "g", Version: 1, Dec: "core", Alg: "peel"}
	m.Observe(kp, 1000, 0, 80, 0, 0)
	pp := m.Predict(kp, 1000)
	if pp.Sweeps != 1 || pp.SweepMs != 80 {
		t.Fatalf("peel prediction = %+v, want Sweeps=1 SweepMs=80", pp)
	}
}

func TestCostModelVersionIsPartOfKey(t *testing.T) {
	m := NewCostModel(0.3)
	k1 := CostKey{Graph: "g", Version: 1, Dec: "core", Alg: "local"}
	m.Observe(k1, 1000, 0, 500, 10, 0)
	k2 := k1
	k2.Version = 2
	if p := m.Predict(k2, 1000); !p.Cold {
		t.Fatal("new graph version must not reuse the old version's estimate")
	}
}

func TestCostModelEntryBound(t *testing.T) {
	m := NewCostModel(0.3)
	for i := 0; i < maxEntries+64; i++ {
		k := CostKey{Graph: fmt.Sprintf("g%d", i), Version: 1, Dec: "core", Alg: "local"}
		m.Observe(k, 1000, 0, 10, 1, 0)
	}
	if st := m.Stats(); st.Entries > maxEntries {
		t.Fatalf("entries = %d, exceeds bound %d", st.Entries, maxEntries)
	}
}

// TestCostModelTraceReplay replays a recorded-trace-shaped workload over
// the benchsweep graph families (gnm, ba, rmat at a few sizes) with
// deterministic ±20% run-to-run noise and a mid-trace version bump, and
// asserts the model's running MeanAbsErrPct — which includes its
// cold-start guesses — stays within the 50% band the admission policy is
// designed around.
func TestCostModelTraceReplay(t *testing.T) {
	type family struct {
		graph  string
		size   int64   // n+m
		baseMs float64 // true mean cost of a run
		sweeps int
	}
	families := []family{
		{graph: "gnm-small", size: 5000, baseMs: 12, sweeps: 9},
		{graph: "gnm-large", size: 50000, baseMs: 130, sweeps: 11},
		{graph: "ba-small", size: 5000, baseMs: 18, sweeps: 14},
		{graph: "ba-large", size: 50000, baseMs: 210, sweeps: 16},
		{graph: "rmat-10", size: 9216, baseMs: 45, sweeps: 22},
		{graph: "rmat-13", size: 73728, baseMs: 420, sweeps: 25},
	}
	m := NewCostModel(0.3)
	// Deterministic noise in [-20%, +20%]: a small LCG, no math/rand,
	// same trace every run.
	state := uint64(12345)
	noise := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return 0.8 + 0.4*float64(state>>33)/float64(1<<31)
	}
	const runsPerKey = 40
	for run := 0; run < runsPerKey; run++ {
		for _, f := range families {
			version := uint64(1)
			if run >= runsPerKey/2 {
				version = 2 // mid-trace mutation: every key goes cold once more
			}
			for _, alg := range []string{"local", "localhi"} {
				k := CostKey{Graph: f.graph, Version: version, Dec: "truss", Alg: alg}
				p := m.Predict(k, f.size)
				observed := f.baseMs * noise()
				if alg == "localhi" {
					observed *= 0.6 // the indexed kernel is faster on the same instance
				}
				m.Observe(k, f.size, p.Ms, observed, f.sweeps, f.size*int64(f.sweeps))
			}
		}
	}
	st := m.Stats()
	if st.Observations != int64(runsPerKey*len(families)*2) {
		t.Fatalf("observations = %d", st.Observations)
	}
	if st.MeanAbsErrPct > 50 {
		t.Fatalf("meanAbsErrPct = %.1f%%, want <= 50%%", st.MeanAbsErrPct)
	}
	if st.MeanAbsErrPct <= 0 {
		t.Fatalf("meanAbsErrPct = %v: noise must produce nonzero error", st.MeanAbsErrPct)
	}
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
