package sched

// Weighted-DRR fairness properties on the deterministic simulation
// harness (sim_test.go): a weight-K tenant earns K quanta per rotation
// turn, so while backlogged it must drain at K× a weight-1 tenant's
// rate, and the *normalized* service (predicted-ms served divided by
// weight) must stay balanced across tenants at every instant.

import (
	"fmt"
	"testing"
)

// TestSimWeightedDRR is the table-driven fairness property for weighted
// tenants. For every dispatch prefix while all tenants remain
// backlogged, the spread of served-ms/weight must stay within
// 2*quantum + 2*maxCost: each tenant's normalized service advances by
// one quantum per rotation, turn counts differ by at most one, and the
// residual deficit is below one (weighted) quantum plus one job.
func TestSimWeightedDRR(t *testing.T) {
	const (
		perTenant = 120
		costMs    = 10.0
		quantum   = 20.0
	)
	cases := []struct {
		name    string
		weights map[string]int
	}{
		{"2to1", map[string]int{"a": 2, "b": 1}},
		{"3to1", map[string]int{"a": 3, "b": 1}},
		{"equalWeights", map[string]int{"a": 2, "b": 2}},
		{"4to2to1", map[string]int{"a": 4, "b": 2, "c": 1}},
		{"flooredZero", map[string]int{"a": 2, "b": 0}}, // weight 0 floors to 1
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				tenants := make([]string, 0, len(tc.weights))
				for tn := range tc.weights {
					tenants = append(tenants, tn)
				}
				// Deterministic tenant order for job interleaving.
				for i := 1; i < len(tenants); i++ {
					for j := i; j > 0 && tenants[j] < tenants[j-1]; j-- {
						tenants[j], tenants[j-1] = tenants[j-1], tenants[j]
					}
				}
				var jobs []simJob
				for i := 0; i < perTenant; i++ {
					for _, tn := range tenants {
						jobs = append(jobs, simJob{
							id:     fmt.Sprintf("%s-%d", tn, i),
							tenant: tn,
							predMs: costMs,
							costMs: costMs,
						})
					}
				}
				res := runSim(t, Config{
					Workers:       workers,
					MaxQueued:     len(jobs),
					QuantumMs:     quantum,
					TenantWeights: tc.weights,
				}, jobs)
				if len(res.dispatches) != len(jobs) {
					t.Fatalf("dispatched %d of %d", len(res.dispatches), len(jobs))
				}

				weightOf := func(tn string) float64 {
					if w := tc.weights[tn]; w > 1 {
						return float64(w)
					}
					return 1
				}
				served := map[string]float64{}
				count := map[string]int{}
				const bound = 2*quantum + 2*costMs
				for _, d := range res.dispatches {
					served[d.item.Tenant] += d.item.PredictedMs
					count[d.item.Tenant]++
					allBacklogged := true
					for _, tn := range tenants {
						if count[tn] >= perTenant {
							allBacklogged = false
						}
					}
					if !allBacklogged {
						continue
					}
					lo, hi := served[tenants[0]]/weightOf(tenants[0]), served[tenants[0]]/weightOf(tenants[0])
					for _, tn := range tenants[1:] {
						norm := served[tn] / weightOf(tn)
						if norm < lo {
							lo = norm
						}
						if norm > hi {
							hi = norm
						}
					}
					if hi-lo > bound {
						t.Fatalf("weighted fairness violated: served=%v weights=%v normalized spread=%.0fms > %.0fms",
							served, tc.weights, hi-lo, bound)
					}
				}
				for _, tn := range tenants {
					if count[tn] != perTenant {
						t.Fatalf("tenant %s dispatched %d of %d", tn, count[tn], perTenant)
					}
				}
			})
		}
	}
}

// TestSimWeightedDrainRate pins the headline guarantee: a weight-2
// tenant backlogged against a weight-1 tenant drains at 2× the rate, so
// at the moment the weighted tenant's backlog empties, the unweighted
// tenant has received about half as many equal-cost dispatches (within
// the quantum+job slack of the fairness bound).
func TestSimWeightedDrainRate(t *testing.T) {
	const (
		perTenant = 120
		costMs    = 10.0
		quantum   = 20.0
	)
	var jobs []simJob
	for i := 0; i < perTenant; i++ {
		for _, tn := range []string{"fast", "slow"} {
			jobs = append(jobs, simJob{
				id:     fmt.Sprintf("%s-%d", tn, i),
				tenant: tn,
				predMs: costMs,
				costMs: costMs,
			})
		}
	}
	res := runSim(t, Config{
		Workers:       1,
		MaxQueued:     len(jobs),
		QuantumMs:     quantum,
		TenantWeights: map[string]int{"fast": 2},
	}, jobs)
	if len(res.dispatches) != len(jobs) {
		t.Fatalf("dispatched %d of %d", len(res.dispatches), len(jobs))
	}
	count := map[string]int{}
	slowAtFastDrain := -1
	for _, d := range res.dispatches {
		count[d.item.Tenant]++
		if d.item.Tenant == "fast" && count["fast"] == perTenant {
			slowAtFastDrain = count["slow"]
		}
	}
	if slowAtFastDrain < 0 {
		t.Fatal("fast tenant never drained")
	}
	// Exactly 2:1 would leave slow at perTenant/2; allow the fairness
	// bound's slack in jobs.
	slack := int((2*quantum + 2*costMs) / costMs)
	want := perTenant / 2
	if slowAtFastDrain < want-slack || slowAtFastDrain > want+slack {
		t.Fatalf("weight-2 tenant drained with slow at %d dispatches, want %d±%d (not a 2× drain rate)",
			slowAtFastDrain, want, slack)
	}
}

// TestStatsReportsWeight: the per-tenant stats snapshot surfaces the
// resolved weight (floored at 1) so /stats can display it.
func TestStatsReportsWeight(t *testing.T) {
	s := New(Config{Workers: 1, MaxQueued: 8, TenantWeights: map[string]int{"a": 3, "b": 0}}, NewFakeClock(), nil)
	defer s.Close()
	for _, tn := range []string{"a", "b", "c"} {
		if err := s.Enqueue(&Item{ID: tn + "-0", Tenant: tn, PredictedMs: 1}); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
	st := s.Stats()
	if got := st.PerTenant["a"].Weight; got != 3 {
		t.Fatalf("tenant a weight = %d, want 3", got)
	}
	for _, tn := range []string{"b", "c"} {
		if got := st.PerTenant[tn].Weight; got != 1 {
			t.Fatalf("tenant %s weight = %d, want 1", tn, got)
		}
	}
}
