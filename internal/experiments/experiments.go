// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic dataset registry. Each function prints a
// paper-style table or data series to the supplied writer; cmd/experiments
// exposes them on the command line and the repository's EXPERIMENTS.md
// records representative output next to the paper's reported numbers.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"nucleus/internal/dataset"
	"nucleus/internal/densest"
	"nucleus/internal/graph"
	"nucleus/internal/hierarchy"
	"nucleus/internal/localhi"
	"nucleus/internal/metrics"
	"nucleus/internal/nucleus"
	"nucleus/internal/peel"
	"nucleus/internal/sched"
)

// Dec identifies one of the three evaluated decompositions.
type Dec int

// The three instances evaluated in the paper.
const (
	Core Dec = iota
	Truss
	N34
)

func (d Dec) String() string {
	switch d {
	case Core:
		return "(1,2)"
	case Truss:
		return "(2,3)"
	}
	return "(3,4)"
}

// Instance builds the nucleus instance of d over g.
func (d Dec) Instance(g *graph.Graph) nucleus.Instance {
	switch d {
	case Core:
		return nucleus.NewCore(g)
	case Truss:
		return nucleus.NewTruss(g)
	}
	return nucleus.NewN34(g)
}

// Fig1aKeys are the five datasets of the paper's Figure 1a.
var Fig1aKeys = []string{"fb", "sse", "tw", "wn", "wiki"}

// Fig1bKeys are the six datasets of the paper's Figure 1b.
var Fig1bKeys = []string{"ask", "fri", "hg", "ork", "slj", "wiki"}

// Fig1aConvergence prints the Kendall-Tau similarity between the
// intermediate τ of SND and the exact κ, per iteration (Figure 1a; also the
// per-decomposition convergence-rate figures of §5).
func Fig1aConvergence(w io.Writer, d Dec, keys []string, maxIter int) {
	fmt.Fprintf(w, "# Figure 1a style: %s convergence, Kendall-Tau of tau_t vs exact kappa\n", d)
	fmt.Fprintf(w, "%-6s", "iter")
	for _, k := range keys {
		fmt.Fprintf(w, "%10s", k)
	}
	fmt.Fprintln(w)
	series := make([][]float64, len(keys))
	maxLen := 0
	for i, key := range keys {
		g := dataset.Get(key).Graph()
		inst := d.Instance(g)
		exact := peel.Run(inst).Kappa
		localhi.Snd(inst, localhi.Options{MaxSweeps: maxIter, OnSweep: func(_ int, tau []int32) {
			series[i] = append(series[i], metrics.KendallTauB(tau, exact))
		}})
		if len(series[i]) > maxLen {
			maxLen = len(series[i])
		}
	}
	for it := 0; it < maxLen; it++ {
		fmt.Fprintf(w, "%-6d", it+1)
		for i := range keys {
			if it < len(series[i]) {
				fmt.Fprintf(w, "%10.4f", series[i][it])
			} else {
				fmt.Fprintf(w, "%10.4f", series[i][len(series[i])-1])
			}
		}
		fmt.Fprintln(w)
	}
}

// Fig1bScalability prints modeled speedups of the parallel local algorithm
// at several thread counts, against the partially-parallel peeling baseline
// (Figure 1b). The model uses per-cell s-degrees as work weights and the
// deterministic scheduler of internal/sched, so the series shape is
// host-independent (see DESIGN.md §4 on the single-core substitution).
func Fig1bScalability(w io.Writer, d Dec, keys []string, threads []int) {
	fmt.Fprintf(w, "# Figure 1b style: %s modeled speedup vs threads (dynamic chunking)\n", d)
	fmt.Fprintf(w, "%-6s", "thr")
	for _, k := range keys {
		fmt.Fprintf(w, "%10s", k)
	}
	fmt.Fprintln(w, "   (speedup of local sweeps; last row = modeled peeling-24t time ratio)")
	for _, t := range threads {
		fmt.Fprintf(w, "%-6d", t)
		for _, key := range keys {
			work := cellWork(d, key)
			fmt.Fprintf(w, "%10.2f", sched.Speedup(work, t, false, 64))
		}
		fmt.Fprintln(w)
	}
	// Peeling-24t comparison: modeled local time at max threads over modeled
	// peeling time at 24 threads (enumeration parallel, peel loop serial).
	fmt.Fprintf(w, "%-6s", "vs-p24")
	tMax := threads[len(threads)-1]
	for _, key := range keys {
		work := cellWork(d, key)
		var total int64
		for _, v := range work {
			total += v
		}
		// The local algorithms sweep ~I times over the cells; peeling visits
		// each s-clique once after enumeration. Use measured iteration count.
		g := dataset.Get(key).Graph()
		inst := d.Instance(g)
		res := localhi.And(inst, localhi.Options{Notification: true})
		localTime := float64(res.WorkVisits) / float64(tMax)
		peelTime := float64(sched.PeelingModel(total, total/4, 24))
		fmt.Fprintf(w, "%10.2f", peelTime/localTime)
	}
	fmt.Fprintln(w)
}

func cellWork(d Dec, key string) []int64 {
	g := dataset.Get(key).Graph()
	inst := d.Instance(g)
	deg := inst.Degrees()
	work := make([]int64, len(deg))
	for i, dg := range deg {
		work[i] = int64(dg) + 1
	}
	return work
}

// Table3 prints dataset statistics: measured values of the synthetic
// analogues next to the paper's originals.
func Table3(w io.Writer, keys []string) {
	fmt.Fprintln(w, "# Table 3: dataset statistics (measured synthetic analogue | paper original)")
	fmt.Fprintf(w, "%-6s %-22s %12s %12s %12s %12s   %s\n",
		"key", "name", "|V|", "|E|", "|tri|", "|K4|", "paper (V,E,tri,K4)")
	for _, key := range keys {
		d := dataset.Get(key)
		s := dataset.Measure(d.Graph())
		fmt.Fprintf(w, "%-6s %-22s %12d %12d %12d %12d   %s,%s,%s,%s\n",
			d.Key, d.Name, s.V, s.E, s.Tri, s.K4,
			d.Paper.V, d.Paper.E, d.Paper.Tri, d.Paper.K4)
	}
}

// Table4Iterations prints the number of iterations SND and AND need to
// converge (the paper's iteration table; AND converges in roughly half the
// iterations of SND).
func Table4Iterations(w io.Writer, d Dec, keys []string) {
	fmt.Fprintf(w, "# Table 4 style: %s iterations to convergence\n", d)
	fmt.Fprintf(w, "%-6s %10s %10s %10s %12s\n", "key", "SND", "AND", "AND-notif", "levels-bound")
	for _, key := range keys {
		g := dataset.Get(key).Graph()
		inst := d.Instance(g)
		snd := localhi.Snd(inst, localhi.Options{})
		and := localhi.And(inst, localhi.Options{})
		andN := localhi.And(inst, localhi.Options{Notification: true})
		lv := peel.Levels(inst)
		fmt.Fprintf(w, "%-6s %10d %10d %10d %12d\n",
			key, snd.Iterations, and.Iterations, andN.Iterations, lv.Count)
	}
}

// Table5Runtimes prints wall-clock runtimes of peeling, SND and AND
// (sequential on this host) plus AND's s-clique visit counts with and
// without notification — the work the notification mechanism saves.
func Table5Runtimes(w io.Writer, d Dec, keys []string) {
	fmt.Fprintf(w, "# Table 5 style: %s runtimes (sequential wall clock on this host)\n", d)
	fmt.Fprintf(w, "%-6s %12s %12s %12s %14s %14s\n",
		"key", "peel", "SND", "AND+notif", "visits(AND)", "visits(notif)")
	for _, key := range keys {
		g := dataset.Get(key).Graph()
		inst := d.Instance(g)

		t0 := time.Now()
		peel.Run(inst)
		peelT := time.Since(t0)

		t0 = time.Now()
		localhi.Snd(inst, localhi.Options{})
		sndT := time.Since(t0)

		t0 = time.Now()
		notif := localhi.And(inst, localhi.Options{Notification: true})
		andT := time.Since(t0)

		plain := localhi.And(inst, localhi.Options{})
		fmt.Fprintf(w, "%-6s %12v %12v %12v %14d %14d\n",
			key, peelT.Round(time.Millisecond), sndT.Round(time.Millisecond),
			andT.Round(time.Millisecond), plain.WorkVisits, notif.WorkVisits)
	}
}

// Plateaus prints the τ trajectory of the `track` highest-degree cells
// across SND iterations (the paper's Figure 5: wide plateaus during
// convergence).
func Plateaus(w io.Writer, d Dec, key string, track int) {
	g := dataset.Get(key).Graph()
	inst := d.Instance(g)
	deg := inst.Degrees()
	// Track the highest-degree cells: they travel farthest and plateau.
	ids := make([]int32, len(deg))
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool { return deg[ids[a]] > deg[ids[b]] })
	if track > len(ids) {
		track = len(ids)
	}
	tracked := ids[:track]
	fmt.Fprintf(w, "# Figure 5 style: tau trajectories of %d highest-degree %s cells on %s\n", track, d, key)
	fmt.Fprintf(w, "%-6s", "iter")
	for _, c := range tracked {
		fmt.Fprintf(w, "%8s", inst.CellLabel(c))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-6d", 0)
	for _, c := range tracked {
		fmt.Fprintf(w, "%8d", deg[c])
	}
	fmt.Fprintln(w)
	localhi.Snd(inst, localhi.Options{OnSweep: func(s int, tau []int32) {
		fmt.Fprintf(w, "%-6d", s)
		for _, c := range tracked {
			fmt.Fprintf(w, "%8d", tau[c])
		}
		fmt.Fprintln(w)
	}})
}

// PlateauStats quantifies Figure 5: the fraction of cell-sweeps that are
// plateaus (no change), which is exactly the work the notification
// mechanism can skip.
func PlateauStats(w io.Writer, d Dec, keys []string) {
	fmt.Fprintf(w, "# Plateau statistics for %s: fraction of cell-sweeps with unchanged tau\n", d)
	fmt.Fprintf(w, "%-6s %10s %14s %14s %10s\n", "key", "sweeps", "cell-sweeps", "updates", "plateau%")
	for _, key := range keys {
		g := dataset.Get(key).Graph()
		inst := d.Instance(g)
		res := localhi.Snd(inst, localhi.Options{})
		cellSweeps := int64(res.Sweeps) * int64(inst.NumCells())
		plateau := 100 * float64(cellSweeps-res.Updates) / float64(cellSweeps)
		fmt.Fprintf(w, "%-6s %10d %14d %14d %9.1f%%\n",
			key, res.Sweeps, cellSweeps, res.Updates, plateau)
	}
}

// Bound compares the degree-level upper bound of Theorem 3 with observed
// SND iterations and the trivial bound |R| (§3.1).
func Bound(w io.Writer, d Dec, keys []string) {
	fmt.Fprintf(w, "# Theorem 3: convergence bound via degree levels, %s\n", d)
	fmt.Fprintf(w, "%-6s %10s %10s %12s\n", "key", "cells", "levels", "SND-iters")
	for _, key := range keys {
		g := dataset.Get(key).Graph()
		inst := d.Instance(g)
		lv := peel.Levels(inst)
		res := localhi.Snd(inst, localhi.Options{})
		fmt.Fprintf(w, "%-6s %10d %10d %12d\n", key, inst.NumCells(), lv.Count, res.Iterations)
	}
}

// Tradeoff prints the accuracy/runtime trade-off (§5): Kendall-Tau, exact
// fraction and cumulative time after every iteration of SND.
func Tradeoff(w io.Writer, d Dec, key string) {
	g := dataset.Get(key).Graph()
	inst := d.Instance(g)
	exact := peel.Run(inst).Kappa
	fmt.Fprintf(w, "# Accuracy/runtime trade-off: %s on %s\n", d, key)
	fmt.Fprintf(w, "%-6s %12s %12s %12s\n", "iter", "kendall", "exact-frac", "cum-time")
	start := time.Now()
	localhi.Snd(inst, localhi.Options{OnSweep: func(s int, tau []int32) {
		kt := metrics.KendallTauB(tau, exact)
		ef := metrics.ExactFraction(tau, exact)
		fmt.Fprintf(w, "%-6d %12.4f %12.4f %12v\n", s, kt, ef, time.Since(start).Round(time.Millisecond))
	}})
}

// Query prints the query-driven estimation study (§5): mean relative error
// of κ estimates for sampled query cells as the neighborhood radius grows,
// with the fraction of the graph touched.
func Query(w io.Writer, key string, nQueries int, hopsList []int, seed int64) {
	g := dataset.Get(key).Graph()
	instCore := nucleus.NewCore(g)
	exactCore := peel.Run(instCore).Kappa
	rng := rand.New(rand.NewSource(seed))
	queries := make([]uint32, nQueries)
	for i := range queries {
		queries[i] = uint32(rng.Intn(g.N()))
	}
	fmt.Fprintf(w, "# Query-driven estimation on %s: %d random query vertices (core numbers)\n", key, nQueries)
	fmt.Fprintf(w, "%-6s %12s %12s %12s\n", "hops", "mean-rel-err", "exact-frac", "region%")
	for _, hops := range hopsList {
		region := g.BFSWithin(queries, hops)
		cells := make([]int32, len(region))
		for i, v := range region {
			cells[i] = int32(v)
		}
		res := localhi.And(instCore, localhi.Options{Subset: cells, Notification: true})
		est := make([]int32, nQueries)
		want := make([]int32, nQueries)
		for i, q := range queries {
			est[i] = res.Tau[q]
			want[i] = exactCore[q]
		}
		fmt.Fprintf(w, "%-6d %12.4f %12.4f %11.2f%%\n", hops,
			metrics.MeanRelativeError(est, want), metrics.ExactFraction(est, want),
			100*float64(len(region))/float64(g.N()))
	}
}

// OrderAblation prints AND iteration counts under different processing
// orders (Theorem 4 and the paper's worst-case conjecture).
func OrderAblation(w io.Writer, d Dec, keys []string, seed int64) {
	fmt.Fprintf(w, "# AND processing-order ablation, %s: iterations to convergence\n", d)
	fmt.Fprintf(w, "%-6s %10s %10s %10s %10s\n", "key", "natural", "peel", "rev-peel", "random")
	for _, key := range keys {
		g := dataset.Get(key).Graph()
		inst := d.Instance(g)
		pr := peel.Run(inst)
		rev := make([]int32, len(pr.Order))
		for i, c := range pr.Order {
			rev[len(rev)-1-i] = c
		}
		rnd := append([]int32(nil), pr.Order...)
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(rnd), func(i, j int) { rnd[i], rnd[j] = rnd[j], rnd[i] })
		nat := localhi.And(inst, localhi.Options{}).Iterations
		po := localhi.And(inst, localhi.Options{Order: pr.Order}).Iterations
		rp := localhi.And(inst, localhi.Options{Order: rev}).Iterations
		ra := localhi.And(inst, localhi.Options{Order: rnd}).Iterations
		fmt.Fprintf(w, "%-6s %10d %10d %10d %10d\n", key, nat, po, rp, ra)
	}
}

// DensityQuality reproduces the framing claim of §2 (from the nucleus
// decomposition papers the evaluation builds on): the (3,4) hierarchy
// surfaces denser subgraphs than k-core and k-truss. For each
// decomposition it reports the densest leaf nucleus with at least minV
// vertices, plus the densest-subgraph baselines.
func DensityQuality(w io.Writer, key string, minV int) {
	g := dataset.Get(key).Graph()
	fmt.Fprintf(w, "# Density of discovered subgraphs on %s (leaves with >= %d vertices)\n", key, minV)
	fmt.Fprintf(w, "%-10s %10s %10s %12s %12s\n", "method", "vertices", "edges", "avg-degree", "density")
	report := func(name string, r *densest.Result) {
		fmt.Fprintf(w, "%-10s %10d %10d %12.2f %12.3f\n",
			name, len(r.Vertices), r.Edges, r.AverageDegree, r.EdgeDensity)
	}
	report("charikar", densest.Approx(g))
	report("max-core", densest.MaxCore(g))
	for _, d := range []Dec{Core, Truss, N34} {
		inst := d.Instance(g)
		kappa := peel.Run(inst).Kappa
		f := hierarchy.Build(inst, kappa)
		best := &densest.Result{}
		for _, leaf := range f.Leaves() {
			vs := f.Vertices(leaf)
			if len(vs) < minV {
				continue
			}
			r := densest.Measure(g, vs)
			if r.EdgeDensity > best.EdgeDensity {
				best = r
			}
		}
		report(d.String(), best)
	}
}

// SchedulingAblation prints the §4.4 scheduling study: static vs dynamic
// makespan (modeled) on the skewed per-cell work distribution left behind
// by the notification mechanism after the first sweeps.
func SchedulingAblation(w io.Writer, d Dec, key string, threads []int) {
	g := dataset.Get(key).Graph()
	inst := d.Instance(g)
	deg := inst.Degrees()

	// Work profile of a late sweep: only cells that still change (plus
	// their neighbors) are active; everything else was silenced by the
	// notification mechanism. Replay SND and mark the cells updated after
	// the midpoint sweep.
	var snapshots [][]int32
	localhi.Snd(inst, localhi.Options{OnSweep: func(_ int, tau []int32) {
		snapshots = append(snapshots, append([]int32(nil), tau...))
	}})
	mid := len(snapshots) / 2
	active := make([]bool, inst.NumCells())
	if mid >= 1 {
		for c := range active {
			if snapshots[mid][c] != snapshots[mid-1][c] {
				active[c] = true
				inst.VisitNeighbors(int32(c), func(n int32) bool {
					active[n] = true
					return true
				})
			}
		}
	}
	early := make([]int64, len(deg))
	late := make([]int64, len(deg))
	for c := range deg {
		early[c] = int64(deg[c]) + 1
		if active[c] {
			late[c] = int64(deg[c]) + 1
		}
	}
	fmt.Fprintf(w, "# Scheduling ablation (%s on %s): modeled speedup, early vs late sweep work\n", d, key)
	fmt.Fprintf(w, "%-6s %14s %14s %14s %14s\n", "thr",
		"early-static", "early-dynamic", "late-static", "late-dynamic")
	for _, t := range threads {
		fmt.Fprintf(w, "%-6d %14.2f %14.2f %14.2f %14.2f\n", t,
			sched.Speedup(early, t, true, 0), sched.Speedup(early, t, false, 64),
			sched.Speedup(late, t, true, 0), sched.Speedup(late, t, false, 64))
	}
}
