package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// The experiment drivers are exercised on the cheapest dataset ("fb") to
// keep the suite fast; cmd/experiments runs the full sweeps.

func TestFig1aConvergenceOutput(t *testing.T) {
	var sb strings.Builder
	Fig1aConvergence(&sb, Core, []string{"fb"}, 4)
	out := sb.String()
	if !strings.Contains(out, "iter") || !strings.Contains(out, "fb") {
		t.Fatalf("missing header: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 3 {
		t.Fatalf("too few rows: %q", out)
	}
	// Kendall-Tau column must be monotone non-decreasing toward 1.
	var prev float64 = -2
	for _, line := range lines[2:] {
		fields := strings.Fields(line)
		var v float64
		if _, err := fmt.Sscan(fields[len(fields)-1], &v); err != nil {
			t.Fatalf("bad row %q: %v", line, err)
		}
		if v+1e-9 < prev {
			t.Fatalf("Kendall-Tau decreased: %v after %v", v, prev)
		}
		prev = v
	}
}

func TestTable3Output(t *testing.T) {
	var sb strings.Builder
	Table3(&sb, []string{"fb"})
	if !strings.Contains(sb.String(), "facebook") {
		t.Fatalf("missing dataset row: %q", sb.String())
	}
}

func TestTable4Output(t *testing.T) {
	var sb strings.Builder
	Table4Iterations(&sb, Core, []string{"fb"})
	out := sb.String()
	if !strings.Contains(out, "SND") || !strings.Contains(out, "levels-bound") {
		t.Fatalf("missing columns: %q", out)
	}
}

func TestTable5Output(t *testing.T) {
	var sb strings.Builder
	Table5Runtimes(&sb, Core, []string{"fb"})
	if !strings.Contains(sb.String(), "peel") {
		t.Fatalf("missing runtimes: %q", sb.String())
	}
}

func TestPlateausOutput(t *testing.T) {
	var sb strings.Builder
	Plateaus(&sb, Core, "fb", 4)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < 4 {
		t.Fatalf("too few trajectory rows: %q", sb.String())
	}
	var sb2 strings.Builder
	PlateauStats(&sb2, Core, []string{"fb"})
	if !strings.Contains(sb2.String(), "plateau") {
		t.Fatalf("missing plateau stats: %q", sb2.String())
	}
}

func TestBoundOutput(t *testing.T) {
	var sb strings.Builder
	Bound(&sb, Core, []string{"fb"})
	if !strings.Contains(sb.String(), "levels") {
		t.Fatalf("missing bound output: %q", sb.String())
	}
}

func TestTradeoffOutput(t *testing.T) {
	var sb strings.Builder
	Tradeoff(&sb, Core, "fb")
	if !strings.Contains(sb.String(), "kendall") {
		t.Fatalf("missing tradeoff output: %q", sb.String())
	}
}

func TestQueryOutput(t *testing.T) {
	var sb strings.Builder
	Query(&sb, "fb", 8, []int{0, 1}, 1)
	if !strings.Contains(sb.String(), "mean-rel-err") {
		t.Fatalf("missing query output: %q", sb.String())
	}
}

func TestOrderAblationOutput(t *testing.T) {
	var sb strings.Builder
	OrderAblation(&sb, Core, []string{"fb"}, 1)
	out := sb.String()
	if !strings.Contains(out, "peel") || !strings.Contains(out, "random") {
		t.Fatalf("missing ablation columns: %q", out)
	}
	// The peel-order column must be 1 (Theorem 4).
	lines := strings.Split(strings.TrimSpace(out), "\n")
	fields := strings.Fields(lines[len(lines)-1])
	if fields[2] != "1" {
		t.Fatalf("peel-order iterations = %s, want 1", fields[2])
	}
}

func TestSchedulingAblationOutput(t *testing.T) {
	var sb strings.Builder
	SchedulingAblation(&sb, Core, "fb", []int{4, 24})
	if !strings.Contains(sb.String(), "late-dynamic") {
		t.Fatalf("missing scheduling output: %q", sb.String())
	}
}

func TestFig1bScalabilityOutput(t *testing.T) {
	var sb strings.Builder
	Fig1bScalability(&sb, Core, []string{"fb"}, []int{4, 24})
	if !strings.Contains(sb.String(), "speedup") {
		t.Fatalf("missing scalability output: %q", sb.String())
	}
}

func TestDecString(t *testing.T) {
	if Core.String() != "(1,2)" || Truss.String() != "(2,3)" || N34.String() != "(3,4)" {
		t.Fatal("bad Dec names")
	}
}

func TestDensityQualityOutput(t *testing.T) {
	var sb strings.Builder
	DensityQuality(&sb, "fb", 5)
	out := sb.String()
	if !strings.Contains(out, "charikar") || !strings.Contains(out, "(3,4)") {
		t.Fatalf("missing density rows: %q", out)
	}
}
