// Package metrics provides the evaluation measures used in the paper's
// experiments: Kendall-Tau rank correlation between an intermediate τ
// assignment and the exact κ decomposition (Figures 1a and the convergence
// study), plus simple error statistics for the accuracy/runtime trade-off
// and the query-driven experiments.
package metrics

import (
	"math"
	"sort"
)

// KendallTauB computes the tie-aware Kendall τ-b correlation between the
// paired samples x and y in O(n log n) using Knight's algorithm. Both
// slices must have equal length. The result is in [-1, 1]; identical
// orderings (including ties) give 1.
func KendallTauB(x, y []int32) float64 {
	n := len(x)
	if n != len(y) {
		panic("metrics: length mismatch")
	}
	if n < 2 {
		return 1
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if x[ia] != x[ib] {
			return x[ia] < x[ib]
		}
		return y[ia] < y[ib]
	})

	pairs := func(t int64) int64 { return t * (t - 1) / 2 }
	n0 := pairs(int64(n))

	// Tie counts in x, and joint ties in (x,y), over the sorted order.
	var n1, n3 int64
	runX, runXY := int64(1), int64(1)
	for i := 1; i < n; i++ {
		a, b := idx[i-1], idx[i]
		if x[a] == x[b] {
			runX++
			if y[a] == y[b] {
				runXY++
			} else {
				n3 += pairs(runXY)
				runXY = 1
			}
		} else {
			n1 += pairs(runX)
			n3 += pairs(runXY)
			runX, runXY = 1, 1
		}
	}
	n1 += pairs(runX)
	n3 += pairs(runXY)

	// Extract y in x-sorted order and count discordant pairs as merge-sort
	// inversions (ties in x contribute none because y is sorted within each
	// x-tie group).
	ys := make([]int32, n)
	for i, id := range idx {
		ys[i] = y[id]
	}
	nd := countInversions(ys)

	// Tie counts in y.
	sorted := append([]int32(nil), y...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	var n2 int64
	run := int64(1)
	for i := 1; i < n; i++ {
		if sorted[i] == sorted[i-1] {
			run++
		} else {
			n2 += pairs(run)
			run = 1
		}
	}
	n2 += pairs(run)

	s := float64(n0 - n1 - n2 + n3 - 2*nd)
	denom := math.Sqrt(float64(n0-n1)) * math.Sqrt(float64(n0-n2))
	if denom == 0 {
		// At least one sample is constant: correlation is undefined; report
		// perfect agreement only if both are constant.
		if n0-n1 == 0 && n0-n2 == 0 {
			return 1
		}
		return 0
	}
	return s / denom
}

// countInversions counts pairs i<j with a[i] > a[j] via bottom-up merge
// sort. a is overwritten.
func countInversions(a []int32) int64 {
	n := len(a)
	buf := make([]int32, n)
	var inv int64
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if a[i] <= a[j] {
					buf[k] = a[i]
					i++
				} else {
					buf[k] = a[j]
					j++
					inv += int64(mid - i)
				}
				k++
			}
			copy(buf[k:hi], a[i:mid])
			copy(buf[k+(mid-i):hi], a[j:hi])
			copy(a[lo:hi], buf[lo:hi])
		}
	}
	return inv
}

// KendallTauBNaive is the O(n²) reference implementation, used by tests and
// acceptable for small inputs.
func KendallTauBNaive(x, y []int32) float64 {
	n := len(x)
	if n < 2 {
		return 1
	}
	var nc, nd, tx, ty int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := sign(x[i] - x[j])
			dy := sign(y[i] - y[j])
			switch {
			case dx == 0 && dy == 0:
				// joint tie: excluded from all counts
			case dx == 0:
				tx++
			case dy == 0:
				ty++
			case dx == dy:
				nc++
			default:
				nd++
			}
		}
	}
	denom := math.Sqrt(float64(nc+nd+tx)) * math.Sqrt(float64(nc+nd+ty))
	if denom == 0 {
		if nc+nd+tx == 0 && nc+nd+ty == 0 {
			return 1
		}
		return 0
	}
	return float64(nc-nd) / denom
}

func sign(v int32) int {
	switch {
	case v < 0:
		return -1
	case v > 0:
		return 1
	}
	return 0
}

// ExactFraction returns the fraction of positions where approx equals exact.
func ExactFraction(approx, exact []int32) float64 {
	if len(approx) == 0 {
		return 1
	}
	match := 0
	for i := range approx {
		if approx[i] == exact[i] {
			match++
		}
	}
	return float64(match) / float64(len(approx))
}

// MeanRelativeError returns mean(|approx-exact| / max(exact,1)).
func MeanRelativeError(approx, exact []int32) float64 {
	if len(approx) == 0 {
		return 0
	}
	var total float64
	for i := range approx {
		den := float64(exact[i])
		if den < 1 {
			den = 1
		}
		total += math.Abs(float64(approx[i]-exact[i])) / den
	}
	return total / float64(len(approx))
}

// MaxAbsError returns max(|approx-exact|).
func MaxAbsError(approx, exact []int32) int32 {
	var m int32
	for i := range approx {
		d := approx[i] - exact[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
