package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestKendallPerfect(t *testing.T) {
	x := []int32{1, 2, 3, 4, 5}
	if got := KendallTauB(x, x); !almost(got, 1) {
		t.Fatalf("self correlation = %v", got)
	}
}

func TestKendallReversed(t *testing.T) {
	x := []int32{1, 2, 3, 4, 5}
	y := []int32{5, 4, 3, 2, 1}
	if got := KendallTauB(x, y); !almost(got, -1) {
		t.Fatalf("reversed correlation = %v", got)
	}
}

func TestKendallWithTiesKnown(t *testing.T) {
	// Hand-computed: x = {1,1,2}, y = {1,2,2}.
	// Pairs: (0,1): x tied; (0,2): concordant; (1,2): y tied.
	// nc=1 nd=0 tx=1 ty=1 → 1/sqrt(2*2) = 0.5.
	x := []int32{1, 1, 2}
	y := []int32{1, 2, 2}
	if got := KendallTauB(x, y); !almost(got, 0.5) {
		t.Fatalf("tau-b = %v, want 0.5", got)
	}
}

func TestKendallDegenerate(t *testing.T) {
	if got := KendallTauB([]int32{3, 3, 3}, []int32{3, 3, 3}); !almost(got, 1) {
		t.Fatalf("both constant: %v", got)
	}
	if got := KendallTauB([]int32{3, 3, 3}, []int32{1, 2, 3}); !almost(got, 0) {
		t.Fatalf("one constant: %v", got)
	}
	if got := KendallTauB([]int32{7}, []int32{9}); !almost(got, 1) {
		t.Fatalf("singleton: %v", got)
	}
	if got := KendallTauB(nil, nil); !almost(got, 1) {
		t.Fatalf("empty: %v", got)
	}
}

func TestKendallMatchesNaiveQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	err := quick.Check(func(raw []uint8, seed int64) bool {
		n := len(raw)
		if n < 2 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		x := make([]int32, n)
		y := make([]int32, n)
		for i := range raw {
			x[i] = int32(raw[i] % 8) // many ties
			y[i] = int32(rng.Intn(8))
		}
		return almost(KendallTauB(x, y), KendallTauBNaive(x, y))
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestKendallSymmetric(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(4))}
	err := quick.Check(func(raw []uint8, seed int64) bool {
		n := len(raw)
		if n < 2 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		x := make([]int32, n)
		y := make([]int32, n)
		for i := range raw {
			x[i] = int32(raw[i] % 10)
			y[i] = int32(rng.Intn(10))
		}
		return almost(KendallTauB(x, y), KendallTauB(y, x))
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCountInversions(t *testing.T) {
	cases := []struct {
		in   []int32
		want int64
	}{
		{nil, 0},
		{[]int32{1}, 0},
		{[]int32{1, 2, 3}, 0},
		{[]int32{3, 2, 1}, 3},
		{[]int32{2, 1, 3, 1}, 3}, // (2,1),(2,1),(3,1)
		{[]int32{1, 1, 1}, 0},    // ties are not inversions
	}
	for _, c := range cases {
		in := append([]int32(nil), c.in...)
		if got := countInversions(in); got != c.want {
			t.Errorf("inversions(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestCountInversionsQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}
	err := quick.Check(func(raw []uint8) bool {
		a := make([]int32, len(raw))
		for i, r := range raw {
			a[i] = int32(r % 16)
		}
		var want int64
		for i := 0; i < len(a); i++ {
			for j := i + 1; j < len(a); j++ {
				if a[i] > a[j] {
					want++
				}
			}
		}
		cp := append([]int32(nil), a...)
		return countInversions(cp) == want
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestExactFraction(t *testing.T) {
	if got := ExactFraction([]int32{1, 2, 3, 4}, []int32{1, 2, 0, 4}); !almost(got, 0.75) {
		t.Fatalf("exact fraction = %v", got)
	}
	if got := ExactFraction(nil, nil); !almost(got, 1) {
		t.Fatalf("empty = %v", got)
	}
}

func TestMeanRelativeError(t *testing.T) {
	// |2-1|/1 + |4-4|/4 + |0-2|/2 = 1 + 0 + 1 = 2; mean = 2/3.
	got := MeanRelativeError([]int32{2, 4, 0}, []int32{1, 4, 2})
	if !almost(got, 2.0/3.0) {
		t.Fatalf("mre = %v", got)
	}
	// Division guards: exact = 0 uses denominator 1.
	if got := MeanRelativeError([]int32{3}, []int32{0}); !almost(got, 3) {
		t.Fatalf("mre with zero exact = %v", got)
	}
}

func TestMaxAbsError(t *testing.T) {
	if got := MaxAbsError([]int32{1, 9, 3}, []int32{1, 2, 5}); got != 7 {
		t.Fatalf("max abs = %d", got)
	}
	if got := MaxAbsError(nil, nil); got != 0 {
		t.Fatalf("empty = %d", got)
	}
}
