// Package hindex implements the H function of the paper (Definition 5):
// H(K) is the largest h such that at least h elements of K are >= h.
//
// Three implementations are provided, mirroring §4.4 of the paper:
//
//   - Sort:        the textbook O(n log n) sort-then-scan version,
//   - Linear:      the O(n) counting version (values above n are clamped
//     to n since H can never exceed n),
//   - Preserve:    the incremental heuristic used in non-initial local
//     iterations — check whether the previous τ can be kept by
//     counting elements >= τ and stopping at τ of them.
package hindex

import "sort"

// Sort computes H(K) by sorting a copy of vals in non-increasing order and
// scanning for the largest h with vals[h-1] >= h.
func Sort(vals []int32) int32 {
	if len(vals) == 0 {
		return 0
	}
	cp := append([]int32(nil), vals...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] > cp[j] })
	h := int32(0)
	for i, v := range cp {
		if v >= int32(i+1) {
			h = int32(i + 1)
		} else {
			break
		}
	}
	return h
}

// Linear computes H(K) in O(n) with a counting array. Values larger than
// n are treated as n, which cannot change the result.
func Linear(vals []int32) int32 {
	var scratch []int32
	return LinearInto(vals, &scratch)
}

// LinearInto is Linear over a caller-owned counting array: scratch is
// grown (and retained across calls) as needed, so a caller that reuses it
// — e.g. one scratch per sweep worker in the local algorithms — pays zero
// allocations in the steady state. The scratch contents need not be
// zeroed between calls.
//
//nucleus:noalloc
func LinearInto(vals []int32, scratch *[]int32) int32 {
	n := int32(len(vals))
	if n == 0 {
		return 0
	}
	if cap(*scratch) < int(n)+1 {
		*scratch = make([]int32, int(n)+1) //nucleus:lint-ignore noalloc grow-once scratch resize; a reusing caller pays zero allocations in the steady state
	}
	cnt := (*scratch)[:n+1]
	clear(cnt)
	for _, v := range vals {
		if v < 0 {
			continue
		}
		if v > n {
			v = n
		}
		cnt[v]++
	}
	// Scan down: atLeast accumulates the number of values >= h.
	atLeast := int32(0)
	for h := n; h >= 1; h-- {
		atLeast += cnt[h]
		if atLeast >= h {
			return h
		}
	}
	return 0
}

// Accumulator computes H(K) in a single streaming pass without retaining
// the value list, as described in §4.4: keep the running h, the count of
// items equal to h, and a small table of counts above h.
type Accumulator struct {
	h int32
	// above[i] counts items seen with value exactly h+1+i; the table grows
	// on demand and shifts left when h is promoted.
	above []int32
	total int32 // running sum of above (items with value > h)
}

// Add feeds one value into the accumulator.
func (a *Accumulator) Add(v int32) {
	if v <= a.h {
		return // cannot help increase h
	}
	// v > h: it supports a future h of at least h+1.
	idx := v - a.h - 1
	if int(idx) >= len(a.above) {
		grown := make([]int32, idx+1)
		copy(grown, a.above)
		a.above = grown
	}
	a.above[idx]++
	a.total++
	if a.total >= a.h+1 {
		// Promote h by one: items of value exactly h+1 drop out of `above`
		// (they support the new h but not any larger one).
		a.h++
		a.total -= a.above[0]
		a.above = a.above[1:]
	}
}

// H returns the current h-index of the values added so far.
func (a *Accumulator) H() int32 { return a.h }

// Preserve reports whether the previous index tau is preserved by the value
// stream vals: it returns (tau, true) as soon as tau values >= tau have been
// seen — the early-exit heuristic of §4.4 — and (H(vals), false) when the
// stream is exhausted without reaching tau supports, in which case the
// h-index must be recomputed (done here in the same pass data).
func Preserve(tau int32, vals []int32) (int32, bool) {
	if tau <= 0 {
		return 0, true
	}
	support := int32(0)
	for _, v := range vals {
		if v >= tau {
			support++
			if support >= tau {
				return tau, true
			}
		}
	}
	return Linear(vals), false
}
