package hindex

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// reference is the literal Definition 5: largest k with >= k elements >= k.
func reference(vals []int32) int32 {
	for k := int32(len(vals)); k >= 1; k-- {
		count := int32(0)
		for _, v := range vals {
			if v >= k {
				count++
			}
		}
		if count >= k {
			return k
		}
	}
	return 0
}

var cases = [][]int32{
	nil,
	{},
	{0},
	{1},
	{5},
	{0, 0, 0},
	{1, 1, 1},
	{2, 3},       // paper: H({2,3}) = 2
	{2, 2, 2},    // paper: H({2,2,2}) = 2
	{1, 2},       // paper: H({1,2}) = 1
	{4, 3, 3, 2}, // paper: H({4,3,3,2}) = 3
	{2, 2},
	{10, 10, 10},
	{1, 2, 3, 4, 5, 6, 7},
	{7, 6, 5, 4, 3, 2, 1},
	{100},
	{100, 100},
	{0, 5, 0, 5, 0, 5},
}

func TestSortKnownCases(t *testing.T) {
	for _, c := range cases {
		want := reference(c)
		if got := Sort(c); got != want {
			t.Errorf("Sort(%v) = %d, want %d", c, got, want)
		}
	}
}

func TestLinearKnownCases(t *testing.T) {
	for _, c := range cases {
		want := reference(c)
		if got := Linear(c); got != want {
			t.Errorf("Linear(%v) = %d, want %d", c, got, want)
		}
	}
}

func TestAccumulatorKnownCases(t *testing.T) {
	for _, c := range cases {
		want := reference(c)
		var a Accumulator
		for _, v := range c {
			a.Add(v)
		}
		if got := a.H(); got != want {
			t.Errorf("Accumulator(%v) = %d, want %d", c, got, want)
		}
	}
}

func TestPaperFigure2Values(t *testing.T) {
	// τ1(a) = H({2,3}) = 2, τ1(b) = H({2,2,2}) = 2, τ2(a) = H({1,2}) = 1.
	if Linear([]int32{2, 3}) != 2 {
		t.Error("H({2,3}) != 2")
	}
	if Linear([]int32{2, 2, 2}) != 2 {
		t.Error("H({2,2,2}) != 2")
	}
	if Linear([]int32{1, 2}) != 1 {
		t.Error("H({1,2}) != 1")
	}
	// Truss example: L = {4,3,3,2}, τ1(ab) = 3.
	if Linear([]int32{4, 3, 3, 2}) != 3 {
		t.Error("H({4,3,3,2}) != 3")
	}
}

func TestAllAgreeQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}
	err := quick.Check(func(raw []uint16) bool {
		vals := make([]int32, len(raw))
		for i, r := range raw {
			vals[i] = int32(r % 50)
		}
		want := reference(vals)
		if Sort(vals) != want || Linear(vals) != want {
			return false
		}
		var a Accumulator
		for _, v := range vals {
			a.Add(v)
		}
		return a.H() == want
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHIndexBounds(t *testing.T) {
	// H(K) <= |K| and H(K) <= max(K); quick-checked.
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(8))}
	err := quick.Check(func(raw []uint8) bool {
		vals := make([]int32, len(raw))
		var max int32
		for i, r := range raw {
			vals[i] = int32(r)
			if vals[i] > max {
				max = vals[i]
			}
		}
		h := Linear(vals)
		return h <= int32(len(vals)) && h <= max
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHIndexMonotone(t *testing.T) {
	// Decreasing any element cannot increase H (monotonicity of H used in
	// the proof of Theorem 1).
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(9))}
	err := quick.Check(func(raw []uint8, pos uint8, dec uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int32, len(raw))
		for i, r := range raw {
			vals[i] = int32(r % 30)
		}
		lowered := append([]int32(nil), vals...)
		p := int(pos) % len(lowered)
		lowered[p] -= int32(dec % 10)
		if lowered[p] < 0 {
			lowered[p] = 0
		}
		return Linear(lowered) <= Linear(vals)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPreserve(t *testing.T) {
	// tau preserved: 3 values >= 3.
	if got, kept := Preserve(3, []int32{5, 4, 3, 1}); !kept || got != 3 {
		t.Errorf("Preserve(3, ...) = %d,%v", got, kept)
	}
	// Not preserved: recomputes the true h-index.
	if got, kept := Preserve(4, []int32{5, 4, 1}); kept || got != 2 {
		t.Errorf("Preserve(4, {5,4,1}) = %d,%v, want 2,false", got, kept)
	}
	if got, kept := Preserve(0, nil); !kept || got != 0 {
		t.Errorf("Preserve(0, nil) = %d,%v", got, kept)
	}
}

func TestPreserveQuick(t *testing.T) {
	// Preserve(tau, vals) with tau = H(vals) must hold; with tau > H it must
	// return the exact H.
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(10))}
	err := quick.Check(func(raw []uint8, bump uint8) bool {
		vals := make([]int32, len(raw))
		for i, r := range raw {
			vals[i] = int32(r % 20)
		}
		h := reference(vals)
		got, kept := Preserve(h, vals)
		if got != h {
			return false
		}
		if h > 0 && !kept {
			return false
		}
		over := h + 1 + int32(bump%5)
		got2, kept2 := Preserve(over, vals)
		return !kept2 && got2 == h
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSort(b *testing.B)   { benchH(b, Sort) }
func BenchmarkLinear(b *testing.B) { benchH(b, Linear) }

func benchH(b *testing.B, f func([]int32) int32) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int32, 256)
	for i := range vals {
		vals[i] = int32(rng.Intn(300))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(vals)
	}
}

func TestLinearIntoKnownCases(t *testing.T) {
	var scratch []int32 // one dirty scratch shared across all cases
	for _, c := range cases {
		want := reference(c)
		if got := LinearInto(c, &scratch); got != want {
			t.Errorf("LinearInto(%v) = %d, want %d", c, got, want)
		}
	}
}

// TestLinearIntoDirtyScratchQuick reuses one never-cleared scratch across
// random inputs of varying lengths — including shrinking ones, which leave
// stale counts in the tail — and checks agreement with the reference.
func TestLinearIntoDirtyScratchQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var scratch []int32
	for i := 0; i < 2000; i++ {
		vals := make([]int32, rng.Intn(60))
		for j := range vals {
			vals[j] = int32(rng.Intn(80)) - 8 // include negatives
		}
		if got, want := LinearInto(vals, &scratch), reference(vals); got != want {
			t.Fatalf("LinearInto(%v) = %d, want %d", vals, got, want)
		}
	}
}

// TestLinearIntoZeroAlloc proves the steady state allocates nothing once
// the scratch has grown.
func TestLinearIntoZeroAlloc(t *testing.T) {
	vals := make([]int32, 128)
	for i := range vals {
		vals[i] = int32(i % 17)
	}
	scratch := make([]int32, len(vals)+1)
	if allocs := testing.AllocsPerRun(100, func() { LinearInto(vals, &scratch) }); allocs != 0 {
		t.Fatalf("LinearInto allocated %.1f times per run, want 0", allocs)
	}
}
