package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// WAL file format: a sequence of self-checking frames,
//
//	frame   = type byte | uvarint len(payload) | payload | crc32c
//	crc32c  covers the type byte and the payload (little-endian uint32)
//
// with three frame types:
//
//	batch  (1) = uvarint growTo | uvarint nEdits |
//	             nEdits × (op byte | uvarint u | uvarint v)
//	batch frames are appended and synced BEFORE the edits are applied;
//	commit (2) = uvarint version
//	commit frames are appended after the new graph version is published;
//	header (3) = uvarint generation
//	the mandatory FIRST frame of every WAL file, written with the first
//	append: the Meta.Version of the snapshot this log extends.
//
// Replay pairs each commit with the batch frame preceding it. A batch with
// no commit (crash or abort between append and publish) is dropped — it
// was never acknowledged. A frame that fails its checksum or runs past the
// end of the file is a torn tail: everything from it onward is discarded
// and the file truncated there, so later appends continue from a clean
// boundary.
//
// The header generation closes the snapshot-replacement crash window:
// SaveSnapshot makes the new snapshot durable (rename) and then deletes
// the WAL as a separate step. A crash between the two leaves a fresh
// snapshot next to the previous lineage's log — whose batches must NOT be
// replayed onto the new graph. Load compares the header generation with
// the snapshot's version and discards the whole file on mismatch.

const (
	frameBatch  byte = 1
	frameCommit byte = 2
	frameHeader byte = 3
)

// appendUvarint appends v to buf in uvarint encoding.
func appendUvarint(buf []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(buf, tmp[:n]...)
}

// encodeFrame wraps a payload in the typed, length-prefixed, checksummed
// frame format.
func encodeFrame(typ byte, payload []byte) []byte {
	frame := make([]byte, 0, 1+binary.MaxVarintLen64+len(payload)+4)
	frame = append(frame, typ)
	frame = appendUvarint(frame, uint64(len(payload)))
	frame = append(frame, payload...)
	crc := crc32.Update(crc32.Checksum([]byte{typ}, castagnoli), castagnoli, payload)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	return append(frame, tail[:]...)
}

func encodeBatchFrame(b *Batch) []byte {
	payload := make([]byte, 0, 16+10*len(b.Edits))
	growTo := b.GrowTo
	if growTo < 0 {
		growTo = 0
	}
	payload = appendUvarint(payload, uint64(growTo))
	payload = appendUvarint(payload, uint64(len(b.Edits)))
	for _, ed := range b.Edits {
		payload = append(payload, ed.Op)
		payload = appendUvarint(payload, uint64(ed.U))
		payload = appendUvarint(payload, uint64(ed.V))
	}
	return encodeFrame(frameBatch, payload)
}

func encodeCommitFrame(version uint64) []byte {
	return encodeFrame(frameCommit, appendUvarint(nil, version))
}

func encodeHeaderFrame(generation uint64) []byte {
	return encodeFrame(frameHeader, appendUvarint(nil, generation))
}

// decodeFrames parses a WAL image: the mandatory header generation, the
// committed batches, and the byte offset of the first torn or corrupt
// frame (== len(data) when the whole file is intact) so the caller can
// truncate the file there. hasHeader=false means the file does not begin
// with an intact header frame — it is torn at byte 0 or predates the
// current snapshot — and nothing from it may be replayed. A torn tail is
// not an error: it is the expected shape of a crash mid-append.
func decodeFrames(data []byte) (gen uint64, hasHeader bool, batches []CommittedBatch, goodLen int) {
	pos := 0
	if len(data) == 0 {
		return 0, false, nil, 0
	}
	h, ok := decodeOneFrame(data, &pos)
	if !ok || h.typ != frameHeader {
		return 0, false, nil, 0
	}
	gen, err := decodeUvarintPayload(h.payload)
	if err != nil {
		return 0, false, nil, 0
	}
	pos = h.end

	var pending *Batch
	for pos < len(data) {
		b, ok := decodeOneFrame(data, &pos)
		if !ok {
			return gen, true, batches, pos
		}
		switch b.typ {
		case frameBatch:
			batch, err := decodeBatchPayload(b.payload)
			if err != nil {
				return gen, true, batches, pos // checksummed but malformed: treat as torn
			}
			// An earlier pending batch had no commit: aborted or never
			// acknowledged, drop it.
			pending = batch
		case frameCommit:
			version, err := decodeUvarintPayload(b.payload)
			if err != nil || pending == nil {
				return gen, true, batches, pos
			}
			batches = append(batches, CommittedBatch{Batch: *pending, Version: version})
			pending = nil
		default:
			return gen, true, batches, pos
		}
		pos = b.end
	}
	return gen, true, batches, len(data)
}

type rawFrame struct {
	typ     byte
	payload []byte
	end     int
}

// decodeOneFrame reads the frame starting at *pos, verifying its checksum.
// ok=false means the bytes from *pos on are not an intact frame.
func decodeOneFrame(data []byte, pos *int) (rawFrame, bool) {
	p := *pos
	if p >= len(data) {
		return rawFrame{}, false
	}
	typ := data[p]
	plen, n := binary.Uvarint(data[p+1:])
	if n <= 0 {
		return rawFrame{}, false
	}
	payloadStart := p + 1 + n
	if plen > uint64(len(data)-payloadStart) {
		return rawFrame{}, false
	}
	payloadEnd := payloadStart + int(plen)
	if payloadEnd+4 > len(data) {
		return rawFrame{}, false
	}
	payload := data[payloadStart:payloadEnd]
	want := binary.LittleEndian.Uint32(data[payloadEnd : payloadEnd+4])
	got := crc32.Update(crc32.Checksum(data[p:p+1], castagnoli), castagnoli, payload)
	if got != want {
		return rawFrame{}, false
	}
	return rawFrame{typ: typ, payload: payload, end: payloadEnd + 4}, true
}

func decodeBatchPayload(payload []byte) (*Batch, error) {
	r := &byteReader{data: payload}
	growTo, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	nEdits, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Each edit costs at least three bytes (op + two uvarints).
	if nEdits > uint64(len(payload))/3+1 {
		return nil, fmt.Errorf("store: batch claims %d edits in %d bytes", nEdits, len(payload))
	}
	b := &Batch{GrowTo: int(growTo), Edits: make([]BatchOp, 0, nEdits)}
	for i := uint64(0); i < nEdits; i++ {
		op, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		if op != OpAdd && op != OpRemove {
			return nil, fmt.Errorf("store: unknown batch op %d", op)
		}
		u, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		b.Edits = append(b.Edits, BatchOp{Op: op, U: uint32(u), V: uint32(v)})
	}
	if r.pos != len(payload) {
		return nil, fmt.Errorf("store: %d trailing bytes in batch payload", len(payload)-r.pos)
	}
	return b, nil
}

// decodeUvarintPayload reads the single-uvarint payload shared by commit
// (version) and header (generation) frames.
func decodeUvarintPayload(payload []byte) (uint64, error) {
	r := &byteReader{data: payload}
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if r.pos != len(payload) {
		return 0, fmt.Errorf("store: %d trailing bytes in frame payload", len(payload)-r.pos)
	}
	return v, nil
}
