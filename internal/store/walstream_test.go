package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"nucleus/internal/graph"
)

// makeShippableWAL builds a real WAL through the FS store — the same
// bytes a primary would serve to a replica — and returns the raw file
// image, the committed batches it carries, and the header generation.
func makeShippableWAL(t *testing.T, nBatches int) (wal []byte, want []CommittedBatch, gen uint64) {
	t.Helper()
	dir := t.TempDir()
	s, err := OpenFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	gen = 7
	snap := &Snapshot{Meta: Meta{Version: gen}, Graph: graph.Build(4, [][2]uint32{{0, 1}})}
	if err := s.SaveSnapshot("g", snap); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nBatches; i++ {
		b := Batch{Edits: []BatchOp{{Op: OpAdd, U: uint32(i), V: uint32(i + 1)}}, GrowTo: i + 2}
		if _, err := s.BeginBatch("g", &b); err != nil {
			t.Fatal(err)
		}
		v := gen + uint64(i) + 1
		if _, err := s.CommitBatch("g", v); err != nil {
			t.Fatal(err)
		}
		want = append(want, CommittedBatch{Batch: b, Version: v})
	}
	wal, err = os.ReadFile(filepath.Join(dir, "graphs", "g", walFile))
	if err != nil {
		t.Fatal(err)
	}
	return wal, want, gen
}

func sameBatches(t *testing.T, got, want []CommittedBatch) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d batches, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Version != w.Version || g.GrowTo != w.GrowTo || len(g.Edits) != len(w.Edits) {
			t.Fatalf("batch %d: got {v%d grow%d %d edits} want {v%d grow%d %d edits}",
				i, g.Version, g.GrowTo, len(g.Edits), w.Version, w.GrowTo, len(w.Edits))
		}
		for j := range g.Edits {
			if g.Edits[j] != w.Edits[j] {
				t.Fatalf("batch %d edit %d: got %+v want %+v", i, j, g.Edits[j], w.Edits[j])
			}
		}
	}
}

// drainScanner collects every currently decodable batch.
func drainScanner(t *testing.T, sc *WALScanner) []CommittedBatch {
	t.Helper()
	var out []CommittedBatch
	for {
		cb, err := sc.Next()
		if err != nil {
			t.Fatalf("scanner error: %v", err)
		}
		if cb == nil {
			return out
		}
		out = append(out, *cb)
	}
}

// TestWALScannerMatchesFileReplay: scanning a complete WAL image, whole
// or byte-at-a-time, yields exactly the batches file replay does, plus
// the header generation.
func TestWALScannerMatchesFileReplay(t *testing.T) {
	wal, want, gen := makeShippableWAL(t, 5)
	fileGen, hasHeader, fileBatches, goodLen := decodeFrames(wal)
	if !hasHeader || fileGen != gen || goodLen != len(wal) {
		t.Fatalf("file replay: gen=%d hasHeader=%v goodLen=%d/%d", fileGen, hasHeader, goodLen, len(wal))
	}
	sameBatches(t, fileBatches, want)

	whole := NewWALScanner()
	whole.Feed(wal)
	sameBatches(t, drainScanner(t, whole), want)
	if g, ok := whole.Generation(); !ok || g != gen {
		t.Fatalf("whole-scan generation = %d,%v want %d", g, ok, gen)
	}

	chunked := NewWALScanner()
	var got []CommittedBatch
	for i := range wal {
		chunked.Feed(wal[i : i+1])
		got = append(got, drainScanner(t, chunked)...)
	}
	sameBatches(t, got, want)
	if g, ok := chunked.Generation(); !ok || g != gen {
		t.Fatalf("chunked-scan generation = %d,%v want %d", g, ok, gen)
	}
}

// TestWALScannerTornTailResumes: a chunk boundary mid-frame yields the
// complete prefix and (nil, nil); feeding the remainder resumes exactly
// where the stream stopped — the disconnect/reconnect path.
func TestWALScannerTornTailResumes(t *testing.T) {
	wal, want, _ := makeShippableWAL(t, 4)
	for cut := 1; cut < len(wal); cut++ {
		sc := NewWALScanner()
		sc.Feed(wal[:cut])
		head := drainScanner(t, sc)
		sc.Feed(wal[cut:])
		tail := drainScanner(t, sc)
		sameBatches(t, append(head, tail...), want)
	}
}

// TestWALScannerCorruptionIsSticky: a bit flip anywhere in a complete
// image surfaces as ErrCorruptFrame once the damaged frame is reached
// (never as wrong data), and the error is sticky across further feeds.
func TestWALScannerCorruptionIsSticky(t *testing.T) {
	wal, want, _ := makeShippableWAL(t, 3)
	for pos := 0; pos < len(wal); pos += 7 {
		corrupted := bytes.Clone(wal)
		corrupted[pos] ^= 0x40
		sc := NewWALScanner()
		sc.Feed(corrupted)
		var got []CommittedBatch
		var scanErr error
		for {
			cb, err := sc.Next()
			if err != nil {
				scanErr = err
				break
			}
			if cb == nil {
				break
			}
			got = append(got, *cb)
		}
		if scanErr == nil {
			// The flip may land in a frame whose damage only shortens the
			// stream (e.g. the final CRC): then the scanner must simply
			// not fabricate batches.
			if len(got) > len(want) {
				t.Fatalf("flip at %d: %d batches from corrupt image, want <= %d", pos, len(got), len(want))
			}
			continue
		}
		if !errors.Is(scanErr, ErrCorruptFrame) {
			t.Fatalf("flip at %d: err = %v, want ErrCorruptFrame", pos, scanErr)
		}
		for i := range got {
			sameBatches(t, got[i:i+1], want[i:i+1])
		}
		// Sticky: more bytes do not resurrect the stream.
		sc.Feed(wal)
		if _, err := sc.Next(); !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("flip at %d: error not sticky, got %v", pos, err)
		}
	}
}

// TestWALScannerDemandsHeader: a stream that does not begin with the
// header frame (offset drift) is corrupt, not silently applied.
func TestWALScannerDemandsHeader(t *testing.T) {
	wal, _, _ := makeShippableWAL(t, 2)
	header, st := scanOneFrame(wal)
	if st != frameOK || header.typ != frameHeader {
		t.Fatalf("first frame: status=%v typ=%d", st, header.typ)
	}
	sc := NewWALScanner()
	sc.Feed(wal[header.end:])
	if _, err := sc.Next(); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("headerless stream: err = %v, want ErrCorruptFrame", err)
	}
}

// TestFSReplicationSource: the FS store's raw images round-trip — the
// snapshot image decodes to the saved snapshot, and WAL chunks
// reassemble the exact file regardless of the chunk limit.
func TestFSReplicationSource(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	var src ReplicationSource = s

	if _, err := src.SnapshotImage("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("SnapshotImage(missing) err = %v, want ErrNotFound", err)
	}

	snap := &Snapshot{
		Meta:  Meta{Version: 3, Source: "upload:edgelist", Mutations: 1, CreatedAt: time.Unix(1700000000, 0).UTC()},
		Graph: graph.Build(5, [][2]uint32{{0, 1}, {1, 2}, {2, 3}}),
		Kappa: []int32{1, 1, 1, 1, 0},
	}
	if err := s.SaveSnapshot("g", snap); err != nil {
		t.Fatal(err)
	}
	img, err := src.SnapshotImage("g")
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSnapshot(img)
	if err != nil {
		t.Fatalf("decoding shipped snapshot image: %v", err)
	}
	if dec.Meta.Version != snap.Meta.Version || dec.Meta.Source != snap.Meta.Source ||
		dec.Meta.Mutations != snap.Meta.Mutations || !dec.Meta.CreatedAt.Equal(snap.Meta.CreatedAt) ||
		len(dec.Kappa) != len(snap.Kappa) {
		t.Fatalf("shipped snapshot meta %+v, want %+v", dec.Meta, snap.Meta)
	}

	for i := 0; i < 6; i++ {
		b := Batch{Edits: []BatchOp{{Op: OpAdd, U: 0, V: uint32(i)}}}
		if _, err := s.BeginBatch("g", &b); err != nil {
			t.Fatal(err)
		}
		if _, err := s.CommitBatch("g", uint64(4+i)); err != nil {
			t.Fatal(err)
		}
	}
	whole, err := os.ReadFile(filepath.Join(dir, "graphs", "g", walFile))
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int64{0, 1, 7, 1 << 20} {
		var got []byte
		var offset int64
		for {
			chunk, size, err := src.WALImage("g", offset, limit)
			if err != nil {
				t.Fatal(err)
			}
			if size != int64(len(whole)) {
				t.Fatalf("WALImage size = %d, want %d", size, len(whole))
			}
			if len(chunk) == 0 {
				break
			}
			got = append(got, chunk...)
			offset += int64(len(chunk))
		}
		if !bytes.Equal(got, whole) {
			t.Fatalf("limit %d: reassembled WAL differs (%d vs %d bytes)", limit, len(got), len(whole))
		}
	}

	// Past-the-end offsets (a replica ahead of a compacted log) return
	// no data plus the authoritative size.
	if chunk, size, err := src.WALImage("g", int64(len(whole))+100, 0); err != nil || len(chunk) != 0 || size != int64(len(whole)) {
		t.Fatalf("past-end WALImage = %d bytes, size %d, err %v", len(chunk), size, err)
	}

	// Compaction resets the log: the size drops below any old offset.
	if err := s.SaveSnapshot("g", &Snapshot{Meta: Meta{Version: 20}, Graph: snap.Graph}); err != nil {
		t.Fatal(err)
	}
	if _, size, err := src.WALImage("g", 0, 0); err != nil || size != 0 {
		t.Fatalf("post-compaction WAL size = %d, err %v, want 0", size, err)
	}
}

// FuzzWALScanner cross-checks the incremental scanner against the file
// replay decoder on arbitrary byte images and chunkings: identical
// committed batches (up to the first corruption) and identical header
// generations, with no panics.
func FuzzWALScanner(f *testing.F) {
	wal, _, _ := makeShippableWALForFuzz(f)
	f.Add(wal, 1)
	f.Add(wal, 3)
	f.Add(wal[:len(wal)-2], 5)
	f.Add([]byte{}, 1)
	f.Add([]byte{frameHeader, 0, 0, 0, 0, 0}, 2)
	f.Fuzz(func(t *testing.T, data []byte, chunk int) {
		if chunk <= 0 {
			chunk = 1
		}
		_, _, fileBatches, _ := decodeFrames(data)

		scan := func(feedChunk int) ([]CommittedBatch, bool) {
			sc := NewWALScanner()
			var out []CommittedBatch
			for off := 0; off < len(data); off += feedChunk {
				end := off + feedChunk
				if end > len(data) {
					end = len(data)
				}
				sc.Feed(data[off:end])
				for {
					cb, err := sc.Next()
					if err != nil {
						return out, true
					}
					if cb == nil {
						break
					}
					out = append(out, *cb)
				}
			}
			return out, false
		}
		whole, wholeCorrupt := scan(len(data) + 1)
		chunked, chunkedCorrupt := scan(chunk)
		if wholeCorrupt != chunkedCorrupt || len(whole) != len(chunked) {
			t.Fatalf("chunking changed the scan: whole=%d/%v chunked=%d/%v",
				len(whole), wholeCorrupt, len(chunked), chunkedCorrupt)
		}
		// The scanner must never yield more than file replay accepts, and
		// what it yields must match frame for frame.
		if len(whole) > len(fileBatches) {
			t.Fatalf("scanner yielded %d batches, file replay only %d", len(whole), len(fileBatches))
		}
		for i := range whole {
			a, b := whole[i], fileBatches[i]
			if a.Version != b.Version || a.GrowTo != b.GrowTo || len(a.Edits) != len(b.Edits) {
				t.Fatalf("batch %d diverges: scanner %+v file %+v", i, a, b)
			}
			for j := range a.Edits {
				if a.Edits[j] != b.Edits[j] {
					t.Fatalf("batch %d edit %d diverges", i, j)
				}
			}
		}
	})
}

// makeShippableWALForFuzz is makeShippableWAL for a *testing.F seed
// corpus (no *testing.T available).
func makeShippableWALForFuzz(f *testing.F) (wal []byte, want []CommittedBatch, gen uint64) {
	f.Helper()
	dir := f.TempDir()
	s, err := OpenFS(dir)
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() {
		if err := s.Close(); err != nil {
			f.Errorf("close: %v", err)
		}
	})
	gen = 2
	if err := s.SaveSnapshot("g", &Snapshot{Meta: Meta{Version: gen}, Graph: graph.Build(3, [][2]uint32{{0, 1}})}); err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		b := Batch{Edits: []BatchOp{{Op: OpAdd, U: uint32(i), V: uint32(i + 1)}}}
		if _, err := s.BeginBatch("g", &b); err != nil {
			f.Fatal(err)
		}
		v := gen + uint64(i) + 1
		if _, err := s.CommitBatch("g", v); err != nil {
			f.Fatal(err)
		}
		want = append(want, CommittedBatch{Batch: b, Version: v})
	}
	wal, err = os.ReadFile(filepath.Join(dir, "graphs", "g", walFile))
	if err != nil {
		f.Fatal(err)
	}
	return wal, want, gen
}
