package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// FS is the filesystem Store: one directory per graph under
// <root>/graphs/, holding the current snapshot and the WAL,
//
//	<root>/graphs/<encoded-name>/snapshot.nsnap
//	<root>/graphs/<encoded-name>/wal.log
//
// Snapshots are replaced atomically (write to a temp file, fsync, rename,
// fsync the directory), so a crash mid-save leaves the previous snapshot
// intact. WAL appends are fsynced before they return. Graph names are
// percent-encoded into a filesystem-safe alphabet, so any HTTP path
// segment — including ".", ".." and unicode — maps to a distinct,
// traversal-proof directory.
type FS struct {
	root string

	mu     sync.Mutex
	graphs map[string]*fsGraph
}

// fsGraph is the per-name state: a lock serializing file operations, a
// cached WAL size so compaction checks never hit the filesystem, and the
// generation (snapshot Meta.Version) the WAL extends.
type fsGraph struct {
	mu      sync.Mutex
	dir     string
	walSize atomic.Int64
	// gen is the Meta.Version of the snapshot on disk, stamped into the
	// WAL header so replay can reject a log stranded by a crash between a
	// snapshot replacement and its WAL truncation. 0 = not yet known
	// (resolved lazily from the snapshot file on the first append).
	gen uint64
}

const (
	snapshotFile = "snapshot.nsnap"
	walFile      = "wal.log"
)

// OpenFS opens (creating as needed) a filesystem store rooted at dir.
func OpenFS(dir string) (*FS, error) {
	if err := os.MkdirAll(filepath.Join(dir, "graphs"), 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	return &FS{root: dir, graphs: make(map[string]*fsGraph)}, nil
}

// byName returns the per-name state, creating it (and priming the cached
// WAL size from disk) on first use.
func (s *FS) byName(name string) *fsGraph {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.graphs[name]
	if !ok {
		g = &fsGraph{dir: filepath.Join(s.root, "graphs", encodeName(name))}
		if st, err := os.Stat(filepath.Join(g.dir, walFile)); err == nil {
			g.walSize.Store(st.Size())
		}
		s.graphs[name] = g
	}
	return g
}

// SaveSnapshot implements Store. The WAL is truncated after the rename:
// every committed batch is now folded into the snapshot.
func (s *FS) SaveSnapshot(name string, snap *Snapshot) error {
	g := s.byName(name)
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := os.MkdirAll(g.dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(g.dir, snapshotFile+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := EncodeSnapshot(tmp, snap); err != nil {
		tmp.Close() //nucleus:ignore-err the encode already failed; its error is what the caller must see
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close() //nucleus:ignore-err the sync already failed; its error is what the caller must see
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(g.dir, snapshotFile)); err != nil {
		return err
	}
	if err := syncDir(g.dir); err != nil {
		return err
	}
	// The snapshot is durable from here on; record its generation so the
	// next WAL append stamps it. Should the WAL removal below fail (or the
	// process die first), replay detects the stale log by its mismatched
	// header generation and discards it instead of applying the previous
	// lineage's batches to this snapshot.
	g.gen = snap.Meta.Version
	if err := os.Remove(filepath.Join(g.dir, walFile)); err != nil && !os.IsNotExist(err) {
		return err
	}
	g.walSize.Store(0)
	return nil
}

// BeginBatch implements Store.
func (s *FS) BeginBatch(name string, b *Batch) (int, error) {
	return s.appendWAL(name, encodeBatchFrame(b))
}

// CommitBatch implements Store.
func (s *FS) CommitBatch(name string, version uint64) (int, error) {
	return s.appendWAL(name, encodeCommitFrame(version))
}

func (s *FS) appendWAL(name string, frame []byte) (int, error) {
	g := s.byName(name)
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := os.MkdirAll(g.dir, 0o755); err != nil {
		return 0, err
	}
	if g.walSize.Load() == 0 {
		// First frame of a fresh log: prepend the header naming the
		// snapshot generation this WAL extends (one write, one fsync).
		if g.gen == 0 {
			// Generation unknown: this process has neither saved nor loaded
			// the snapshot (possible only for library users driving the
			// store directly). Resolve it from disk once.
			data, err := os.ReadFile(filepath.Join(g.dir, snapshotFile))
			if err != nil {
				return 0, fmt.Errorf("store: WAL append for %q with no known snapshot: %w", name, err)
			}
			snap, err := DecodeSnapshot(data)
			if err != nil {
				return 0, err
			}
			g.gen = snap.Meta.Version
		}
		frame = append(encodeHeaderFrame(g.gen), frame...)
	}
	f, err := os.OpenFile(filepath.Join(g.dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(frame); err != nil {
		f.Close() //nucleus:ignore-err the write already failed; its error is what the caller must see
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close() //nucleus:ignore-err the sync already failed; its error is what the caller must see
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	g.walSize.Add(int64(len(frame)))
	return len(frame), nil
}

// Load implements Store. A corrupt WAL tail is truncated in place so
// future appends continue from the last intact frame. It is LoadThreads
// with a single thread.
func (s *FS) Load(name string) (*Snapshot, []CommittedBatch, error) {
	return s.LoadThreads(name, 1)
}

// LoadThreads implements ThreadedLoader: Load with the snapshot's CSR
// construction fanned across threads. Bit-identical to Load.
func (s *FS) LoadThreads(name string, threads int) (*Snapshot, []CommittedBatch, error) {
	g := s.byName(name)
	g.mu.Lock()
	defer g.mu.Unlock()

	data, err := os.ReadFile(filepath.Join(g.dir, snapshotFile))
	if os.IsNotExist(err) {
		return nil, nil, ErrNotFound
	}
	if err != nil {
		return nil, nil, err
	}
	snap, err := DecodeSnapshotThreads(data, threads)
	if err != nil {
		return nil, nil, fmt.Errorf("decoding snapshot of %q: %w", name, err)
	}

	g.gen = snap.Meta.Version
	walPath := filepath.Join(g.dir, walFile)
	wal, err := os.ReadFile(walPath)
	if os.IsNotExist(err) {
		return snap, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	gen, hasHeader, batches, goodLen := decodeFrames(wal)
	if !hasHeader || gen != snap.Meta.Version {
		// The log does not extend THIS snapshot: either it survived a crash
		// between a snapshot replacement and its WAL truncation (stale
		// generation), or its header is torn. Its batches belong to a dead
		// lineage — discard the file rather than replay them.
		if err := os.Remove(walPath); err != nil && !os.IsNotExist(err) {
			return nil, nil, fmt.Errorf("removing stale WAL of %q: %w", name, err)
		}
		g.walSize.Store(0)
		return snap, nil, nil
	}
	if goodLen < len(wal) {
		if err := os.Truncate(walPath, int64(goodLen)); err != nil {
			return nil, nil, fmt.Errorf("truncating torn WAL tail of %q: %w", name, err)
		}
	}
	g.walSize.Store(int64(goodLen))
	return snap, batches, nil
}

// SnapshotImage implements ReplicationSource: the raw on-disk snapshot
// file, already framed and checksummed by the codec, served byte-for-byte
// to a pulling replica.
func (s *FS) SnapshotImage(name string) ([]byte, error) {
	g := s.byName(name)
	g.mu.Lock()
	defer g.mu.Unlock()
	data, err := os.ReadFile(filepath.Join(g.dir, snapshotFile))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	return data, err
}

// WALImage implements ReplicationSource: up to limit bytes of the WAL
// starting at offset, plus the log's current total size so the replica
// knows whether more bytes remain (and detects a compaction reset when
// the size falls below its offset). Reads hold the same per-graph lock
// as appends, so a chunk never ends inside a partially written frame.
func (s *FS) WALImage(name string, offset, limit int64) ([]byte, int64, error) {
	g := s.byName(name)
	g.mu.Lock()
	defer g.mu.Unlock()
	size := g.walSize.Load()
	if offset < 0 {
		offset = 0
	}
	if offset >= size {
		return nil, size, nil
	}
	data, err := os.ReadFile(filepath.Join(g.dir, walFile))
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, size, err
	}
	// The cached size is authoritative for replication: bytes past it
	// (a torn tail from a crashed predecessor, not yet truncated by
	// Load) must not ship.
	if int64(len(data)) > size {
		data = data[:size]
	}
	end := int64(len(data))
	if limit > 0 && offset+limit < end {
		end = offset + limit
	}
	return data[offset:end], size, nil
}

// List implements Store.
func (s *FS) List() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, "graphs"))
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name, err := decodeName(e.Name())
		if err != nil {
			return nil, fmt.Errorf("store: undecodable graph directory %q: %w", e.Name(), err)
		}
		names = append(names, name)
	}
	return names, nil
}

// Delete implements Store.
func (s *FS) Delete(name string) error {
	g := s.byName(name)
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := os.RemoveAll(g.dir); err != nil {
		return err
	}
	g.walSize.Store(0)
	g.gen = 0
	return nil
}

// WALSize implements Store from the in-memory cache.
func (s *FS) WALSize(name string) int64 {
	return s.byName(name).walSize.Load()
}

// Durable implements Store.
func (s *FS) Durable() bool { return true }

// Close implements Store. The FS store holds no persistent handles —
// every append opens, syncs and closes — so there is nothing to flush.
func (s *FS) Close() error { return nil }

// syncDir fsyncs a directory so a just-renamed file is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// encodeName maps an arbitrary graph name to a filesystem-safe directory
// name: bytes in [a-z0-9_-] pass through, everything else (including
// uppercase, '.', '%' and path separators) becomes %XX. The empty name
// encodes as a bare "%". Escaping uppercase keeps the mapping injective
// even on case-insensitive filesystems (macOS APFS, Windows NTFS), where
// directories "A" and "a" would otherwise collide.
func encodeName(name string) string {
	if name == "" {
		return "%"
	}
	var sb strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_' || c == '-' {
			sb.WriteByte(c)
		} else {
			fmt.Fprintf(&sb, "%%%02X", c)
		}
	}
	return sb.String()
}

// decodeName inverts encodeName.
func decodeName(enc string) (string, error) {
	if enc == "%" {
		return "", nil
	}
	var sb strings.Builder
	for i := 0; i < len(enc); i++ {
		c := enc[i]
		if c != '%' {
			sb.WriteByte(c)
			continue
		}
		if i+2 >= len(enc) {
			return "", fmt.Errorf("truncated %%-escape in %q", enc)
		}
		var b byte
		if _, err := fmt.Sscanf(enc[i+1:i+3], "%02X", &b); err != nil {
			return "", fmt.Errorf("bad %%-escape in %q: %w", enc, err)
		}
		sb.WriteByte(b)
		i += 2
	}
	return sb.String(), nil
}
