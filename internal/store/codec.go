package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"nucleus/internal/graph"
)

// Snapshot file format (all integers varint/uvarint unless noted):
//
//	magic   "NSNP" + 1 format-version byte
//	header  n, m
//	meta    version, mutations, len(source)+source, createdAt (unix nanos,
//	        signed varint)
//	adj     per vertex u in [0,n): count of neighbors v > u, then the
//	        ascending neighbor row delta-encoded (first as v-u-1, then
//	        v_i - v_{i-1} - 1) — the upper triangle in dense edge-id order,
//	        so decoding rebuilds the identical CSR and edge-id assignment
//	checksum CRC-32C (Castagnoli, little-endian uint32) over every byte
//	        above; a torn or bit-flipped snapshot fails decode rather than
//	        serving a silently wrong graph
//
// Varint-delta encoding keeps snapshots at roughly 1–2 bytes per edge on
// real graphs, versus 16+ for the in-memory CSR.

const (
	snapMagic         = "NSNP"
	snapFormatVersion = 1
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// EncodeSnapshot writes snap in the versioned binary format.
func EncodeSnapshot(w io.Writer, snap *Snapshot) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	crc := crc32.New(castagnoli)
	mw := io.MultiWriter(bw, crc)

	var scratch [2 * binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := mw.Write(scratch[:n])
		return err
	}
	putI := func(v int64) error {
		n := binary.PutVarint(scratch[:], v)
		_, err := mw.Write(scratch[:n])
		return err
	}

	g := snap.Graph
	if _, err := mw.Write([]byte(snapMagic)); err != nil {
		return err
	}
	if _, err := mw.Write([]byte{snapFormatVersion}); err != nil {
		return err
	}
	if err := putU(uint64(g.N())); err != nil {
		return err
	}
	if err := putU(uint64(g.M())); err != nil {
		return err
	}
	if err := putU(snap.Meta.Version); err != nil {
		return err
	}
	if err := putU(uint64(snap.Meta.Mutations)); err != nil {
		return err
	}
	if err := putU(uint64(len(snap.Meta.Source))); err != nil {
		return err
	}
	if _, err := io.WriteString(mw, snap.Meta.Source); err != nil {
		return err
	}
	if err := putI(snap.Meta.CreatedAt.UnixNano()); err != nil {
		return err
	}

	for u := 0; u < g.N(); u++ {
		uu := uint32(u)
		ns := g.Neighbors(uu)
		// Upper-triangle row: neighbors are sorted, so the v > u suffix
		// starts after the last v <= u.
		start := len(ns)
		for i, v := range ns {
			if v > uu {
				start = i
				break
			}
		}
		row := ns[start:]
		if err := putU(uint64(len(row))); err != nil {
			return err
		}
		prev := uu
		for _, v := range row {
			if err := putU(uint64(v - prev - 1)); err != nil {
				return err
			}
			prev = v
		}
	}

	if snap.Kappa == nil {
		if _, err := mw.Write([]byte{0}); err != nil {
			return err
		}
	} else {
		if len(snap.Kappa) != g.N() {
			return fmt.Errorf("store: kappa length %d does not match n=%d", len(snap.Kappa), g.N())
		}
		if _, err := mw.Write([]byte{1}); err != nil {
			return err
		}
		for _, k := range snap.Kappa {
			if err := putI(int64(k)); err != nil {
				return err
			}
		}
	}

	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	if _, err := bw.Write(tail[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// byteReader walks an in-memory snapshot image, tracking position for
// error messages.
type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) ReadByte() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, io.ErrUnexpectedEOF
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *byteReader) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("store: truncated snapshot at byte %d", r.pos)
	}
	return v, nil
}

func (r *byteReader) varint() (int64, error) {
	v, err := binary.ReadVarint(r)
	if err != nil {
		return 0, fmt.Errorf("store: truncated snapshot at byte %d", r.pos)
	}
	return v, nil
}

// DecodeSnapshot parses and checksums a snapshot image produced by
// EncodeSnapshot. It is DecodeSnapshotThreads with a single thread.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	return DecodeSnapshotThreads(data, 1)
}

// DecodeSnapshotThreads is DecodeSnapshot with the CPU-bound part of the
// decode — CSR construction from the parsed edge list, the dominant cost on
// large snapshots — fanned across threads. The varint parse itself is
// inherently sequential (each delta's position depends on the previous
// one). The result is bit-identical to DecodeSnapshot at every thread
// count, because graph.BuildThreads is.
func DecodeSnapshotThreads(data []byte, threads int) (*Snapshot, error) {
	if len(data) < len(snapMagic)+1+4 {
		return nil, fmt.Errorf("store: snapshot too short (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("store: snapshot checksum mismatch (got %08x, want %08x)", got, want)
	}
	if string(body[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("store: bad snapshot magic %q", body[:len(snapMagic)])
	}
	if v := body[len(snapMagic)]; v != snapFormatVersion {
		return nil, fmt.Errorf("store: unsupported snapshot format version %d (this build reads %d)", v, snapFormatVersion)
	}
	r := &byteReader{data: body, pos: len(snapMagic) + 1}

	n64, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	m64, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// The vertex count bounds every allocation below; a corrupt header must
	// not be able to demand petabytes before the edge rows disprove it.
	if n64 > uint64(len(body)) {
		return nil, fmt.Errorf("store: snapshot claims n=%d in a %d-byte file", n64, len(body))
	}
	if m64 > uint64(len(body)) {
		return nil, fmt.Errorf("store: snapshot claims m=%d in a %d-byte file", m64, len(body))
	}
	n := int(n64)

	snap := &Snapshot{}
	snap.Meta.Version, err = r.uvarint()
	if err != nil {
		return nil, err
	}
	mut, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	snap.Meta.Mutations = int(mut)
	srcLen, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if srcLen > uint64(len(body)-r.pos) {
		return nil, fmt.Errorf("store: snapshot source length %d overruns the file", srcLen)
	}
	snap.Meta.Source = string(body[r.pos : r.pos+int(srcLen)])
	r.pos += int(srcLen)
	nanos, err := r.varint()
	if err != nil {
		return nil, err
	}
	snap.Meta.CreatedAt = time.Unix(0, nanos)

	edges := make([][2]uint32, 0, m64)
	for u := 0; u < n; u++ {
		cnt, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		// Each delta costs at least one byte, so a row longer than the
		// remaining payload is corrupt.
		if cnt > uint64(len(body)-r.pos) {
			return nil, fmt.Errorf("store: vertex %d row length %d overruns the file", u, cnt)
		}
		prev := uint64(u)
		for i := uint64(0); i < cnt; i++ {
			d, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			v := prev + d + 1
			if v >= n64 {
				return nil, fmt.Errorf("store: edge {%d,%d} out of range (n=%d)", u, v, n)
			}
			edges = append(edges, [2]uint32{uint32(u), uint32(v)})
			prev = v
		}
	}
	if uint64(len(edges)) != m64 {
		return nil, fmt.Errorf("store: snapshot header says m=%d but %d edges encoded", m64, len(edges))
	}
	snap.Graph = graph.BuildThreads(n, edges, threads)

	flag, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("store: truncated snapshot at byte %d", r.pos)
	}
	switch flag {
	case 0:
	case 1:
		snap.Kappa = make([]int32, n)
		for v := 0; v < n; v++ {
			k, err := r.varint()
			if err != nil {
				return nil, err
			}
			snap.Kappa[v] = int32(k)
		}
	default:
		return nil, fmt.Errorf("store: bad kappa flag %d", flag)
	}
	if r.pos != len(body) {
		return nil, fmt.Errorf("store: %d trailing bytes after snapshot payload", len(body)-r.pos)
	}
	return snap, nil
}

// SnapshotInfo is the human-facing summary of one snapshot file, used by
// `nucleus-cli snapshot inspect`.
type SnapshotInfo struct {
	Path          string
	FileBytes     int64
	FormatVersion int
	N             int
	M             int64
	Version       uint64
	Mutations     int
	Source        string
	CreatedAt     time.Time
	HasKappa      bool
	MaxKappa      int32
}

// InspectSnapshot fully decodes (and therefore checksums) the snapshot at
// path and summarizes it. Any corruption surfaces as an error.
func InspectSnapshot(path string) (*SnapshotInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap, err := DecodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	info := &SnapshotInfo{
		Path:          path,
		FileBytes:     int64(len(data)),
		FormatVersion: int(data[len(snapMagic)]),
		N:             snap.Graph.N(),
		M:             snap.Graph.M(),
		Version:       snap.Meta.Version,
		Mutations:     snap.Meta.Mutations,
		Source:        snap.Meta.Source,
		CreatedAt:     snap.Meta.CreatedAt,
		HasKappa:      snap.Kappa != nil,
	}
	for _, k := range snap.Kappa {
		if k > info.MaxKappa {
			info.MaxKappa = k
		}
	}
	return info, nil
}
