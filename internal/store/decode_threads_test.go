package store

import (
	"bytes"
	"testing"
	"time"

	"nucleus/internal/graph"
)

// TestDecodeSnapshotThreadsBitIdentical proves the threaded decode path —
// the one recovery uses — reproduces the single-threaded result exactly:
// same CSR rows, edge ids, endpoint tables, metadata and κ at every thread
// count.
func TestDecodeSnapshotThreadsBitIdentical(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"empty":    graph.Build(0, nil),
		"isolated": graph.Build(23, nil),
		"complete": graph.Complete(11),
		"gnm":      graph.GnM(400, 1600, 9),
		"plc":      graph.PowerLawCluster(350, 4, 0.5, 10),
		"rmat":     graph.RMAT(9, 5, 0.45, 0.22, 0.22, 11),
	}
	for name, g := range graphs {
		kappa := make([]int32, g.N())
		for v := range kappa {
			kappa[v] = int32(v % 7)
		}
		snap := &Snapshot{
			Meta: Meta{
				Version:   42,
				Source:    "upload:edgelist",
				CreatedAt: time.Unix(0, 1234567890),
				Mutations: 3,
			},
			Graph: g,
			Kappa: kappa,
		}
		var buf bytes.Buffer
		if err := EncodeSnapshot(&buf, snap); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		want, err := DecodeSnapshot(buf.Bytes())
		if err != nil {
			t.Fatalf("%s: serial decode: %v", name, err)
		}
		for _, threads := range []int{2, 4, 8} {
			got, err := DecodeSnapshotThreads(buf.Bytes(), threads)
			if err != nil {
				t.Fatalf("%s threads=%d: %v", name, threads, err)
			}
			if got.Meta != want.Meta {
				t.Fatalf("%s threads=%d: meta %+v, want %+v", name, threads, got.Meta, want.Meta)
			}
			sameGraph(t, got.Graph, want.Graph)
			for v := range want.Kappa {
				if got.Kappa[v] != want.Kappa[v] {
					t.Fatalf("%s threads=%d: κ(%d) = %d, want %d", name, threads, v, got.Kappa[v], want.Kappa[v])
				}
			}
		}
	}
}
