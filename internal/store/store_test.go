package store

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"nucleus/internal/graph"
)

// sameGraph asserts bit-exact equality of the CSR representation: vertex
// count, edge count, every adjacency row, every edge-id row, and the edge
// endpoint tables.
func sameGraph(t *testing.T, got, want *graph.Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("shape: got (%d,%d), want (%d,%d)", got.N(), got.M(), want.N(), want.M())
	}
	for u := 0; u < want.N(); u++ {
		gn, wn := got.Neighbors(uint32(u)), want.Neighbors(uint32(u))
		if len(gn) != len(wn) {
			t.Fatalf("vertex %d: degree %d, want %d", u, len(gn), len(wn))
		}
		ge, we := got.EdgeIDs(uint32(u)), want.EdgeIDs(uint32(u))
		for i := range wn {
			if gn[i] != wn[i] {
				t.Fatalf("vertex %d neighbor %d: %d, want %d", u, i, gn[i], wn[i])
			}
			if ge[i] != we[i] {
				t.Fatalf("vertex %d edge id %d: %d, want %d", u, i, ge[i], we[i])
			}
		}
	}
	for e := int64(0); e < want.M(); e++ {
		gu, gv := got.Edge(e)
		wu, wv := want.Edge(e)
		if gu != wu || gv != wv {
			t.Fatalf("edge %d: {%d,%d}, want {%d,%d}", e, gu, gv, wu, wv)
		}
	}
}

func roundTrip(t *testing.T, snap *Snapshot) *Snapshot {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, snap); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeSnapshot(buf.Bytes())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

// TestSnapshotRoundTripProperty is the crash-recovery property test:
// encode→decode must reproduce arbitrary graphs bit-exactly (CSR rows,
// edge-id assignment, metadata, κ array) across generator families, sizes
// and degenerate shapes.
func TestSnapshotRoundTripProperty(t *testing.T) {
	gens := []struct {
		name string
		mk   func(seed int64) *graph.Graph
	}{
		{"empty", func(int64) *graph.Graph { return graph.Build(0, nil) }},
		{"isolated", func(int64) *graph.Graph { return graph.Build(17, nil) }},
		{"singleEdge", func(int64) *graph.Graph { return graph.Build(-1, [][2]uint32{{0, 1}}) }},
		{"trailingIsolated", func(int64) *graph.Graph { return graph.Build(9, [][2]uint32{{3, 4}}) }},
		{"complete", func(int64) *graph.Graph { return graph.Complete(13) }},
		{"gnm", func(seed int64) *graph.Graph { return graph.GnM(200, 700, seed) }},
		{"plc", func(seed int64) *graph.Graph { return graph.PowerLawCluster(300, 4, 0.5, seed) }},
		{"rmat", func(seed int64) *graph.Graph { return graph.RMAT(9, 6, 0.45, 0.22, 0.22, seed) }},
	}
	for _, gen := range gens {
		t.Run(gen.name, func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				g := gen.mk(seed)
				rng := rand.New(rand.NewSource(seed * 31))
				var kappa []int32
				if seed%2 == 1 { // alternate the optional κ section
					kappa = make([]int32, g.N())
					for v := range kappa {
						kappa[v] = int32(rng.Intn(50))
					}
				}
				snap := &Snapshot{
					Meta: Meta{
						Version:   uint64(rng.Int63()),
						Source:    "upload:edgelist",
						CreatedAt: time.Unix(0, rng.Int63()),
						Mutations: rng.Intn(100),
					},
					Graph: g,
					Kappa: kappa,
				}
				got := roundTrip(t, snap)
				if got.Meta != snap.Meta {
					t.Fatalf("seed %d: meta %+v, want %+v", seed, got.Meta, snap.Meta)
				}
				sameGraph(t, got.Graph, g)
				if (got.Kappa == nil) != (kappa == nil) {
					t.Fatalf("seed %d: kappa presence %v, want %v", seed, got.Kappa != nil, kappa != nil)
				}
				for v := range kappa {
					if got.Kappa[v] != kappa[v] {
						t.Fatalf("seed %d: κ(%d) = %d, want %d", seed, v, got.Kappa[v], kappa[v])
					}
				}
			}
		})
	}
}

// TestSnapshotChecksumDetectsCorruption flips every byte of a small
// snapshot in turn; decode must reject all of them (and truncations too).
func TestSnapshotChecksumDetectsCorruption(t *testing.T) {
	snap := &Snapshot{
		Meta:  Meta{Version: 7, Source: "generator:gnm", CreatedAt: time.Unix(0, 12345)},
		Graph: graph.GnM(40, 90, 1),
	}
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := DecodeSnapshot(mut); err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
	for cut := 1; cut < len(data); cut += 7 {
		if _, err := DecodeSnapshot(data[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", cut)
		}
	}
}

// TestFSWALCommitReplay exercises the begin/commit protocol end to end:
// committed batches replay in order, an uncommitted trailing batch is
// dropped, and a torn tail is truncated so later appends still work.
func TestFSWALCommitReplay(t *testing.T) {
	s, err := OpenFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{Meta: Meta{Version: 1, Source: "upload:edgelist"}, Graph: graph.Build(4, [][2]uint32{{0, 1}})}
	if err := s.SaveSnapshot("g", snap); err != nil {
		t.Fatal(err)
	}

	b1 := &Batch{Edits: []BatchOp{{OpAdd, 1, 2}, {OpAdd, 2, 3}}, GrowTo: 6}
	if _, err := s.BeginBatch("g", b1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CommitBatch("g", 2); err != nil {
		t.Fatal(err)
	}
	b2 := &Batch{Edits: []BatchOp{{OpRemove, 0, 1}}}
	if _, err := s.BeginBatch("g", b2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CommitBatch("g", 3); err != nil {
		t.Fatal(err)
	}
	// A batch that began but never committed (crash before publish).
	if _, err := s.BeginBatch("g", &Batch{Edits: []BatchOp{{OpAdd, 0, 3}}}); err != nil {
		t.Fatal(err)
	}

	_, batches, err := s.Load("g")
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("committed batches: %d, want 2 (uncommitted tail dropped)", len(batches))
	}
	if batches[0].Version != 2 || batches[1].Version != 3 {
		t.Fatalf("versions: %d, %d", batches[0].Version, batches[1].Version)
	}
	if batches[0].GrowTo != 6 || len(batches[0].Edits) != 2 || batches[0].Edits[1] != (BatchOp{OpAdd, 2, 3}) {
		t.Fatalf("batch 1 payload: %+v", batches[0])
	}
	if len(batches[1].Edits) != 1 || batches[1].Edits[0] != (BatchOp{OpRemove, 0, 1}) {
		t.Fatalf("batch 2 payload: %+v", batches[1])
	}

	// Torn tail: garbage after the intact frames must be truncated on load,
	// and appends afterwards must still replay.
	walPath := filepath.Join(s.root, "graphs", "g", walFile)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{frameBatch, 0xFF, 0x13, 0x37}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, batches, err = s.Load("g"); err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("after torn tail: %d batches, want 2", len(batches))
	}
	if _, err := s.BeginBatch("g", b1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CommitBatch("g", 9); err != nil {
		t.Fatal(err)
	}
	if _, batches, err = s.Load("g"); err != nil {
		t.Fatal(err)
	}
	if len(batches) != 3 || batches[2].Version != 9 {
		t.Fatalf("append after truncation: %+v", batches)
	}

	// Compaction contract: a fresh snapshot folds the log away.
	if err := s.SaveSnapshot("g", snap); err != nil {
		t.Fatal(err)
	}
	if sz := s.WALSize("g"); sz != 0 {
		t.Fatalf("WAL size after snapshot: %d, want 0", sz)
	}
	if _, batches, err = s.Load("g"); err != nil || len(batches) != 0 {
		t.Fatalf("batches after snapshot: %v, %v", batches, err)
	}
}

// TestFSStaleWALDiscardedOnSnapshotMismatch simulates the crash window
// inside SaveSnapshot: the replacement snapshot became durable (rename)
// but the previous lineage's WAL was never removed. Replay must discard
// the stranded log — its batches belong to the old graph — instead of
// applying them to the new snapshot.
func TestFSStaleWALDiscardedOnSnapshotMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	oldSnap := &Snapshot{Meta: Meta{Version: 1}, Graph: graph.Build(4, [][2]uint32{{0, 1}})}
	if err := s.SaveSnapshot("g", oldSnap); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BeginBatch("g", &Batch{Edits: []BatchOp{{OpAdd, 1, 2}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CommitBatch("g", 2); err != nil {
		t.Fatal(err)
	}

	// Crash-replace: write the new snapshot file directly, bypassing
	// SaveSnapshot's WAL truncation (as if the process died in between).
	newGraph := graph.Build(3, [][2]uint32{{0, 2}})
	f, err := os.Create(filepath.Join(dir, "graphs", "g", snapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := EncodeSnapshot(f, &Snapshot{Meta: Meta{Version: 5}, Graph: newGraph}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFS(dir) // fresh process
	if err != nil {
		t.Fatal(err)
	}
	snap, batches, err := s2.Load("g")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Meta.Version != 5 {
		t.Fatalf("recovered version %d, want 5", snap.Meta.Version)
	}
	if len(batches) != 0 {
		t.Fatalf("stale-generation WAL replayed %d batches onto the new snapshot", len(batches))
	}
	if sz := s2.WALSize("g"); sz != 0 {
		t.Fatalf("stale WAL not discarded: %d bytes", sz)
	}
	// Appends against the new snapshot start a fresh, correctly stamped log.
	if _, err := s2.BeginBatch("g", &Batch{Edits: []BatchOp{{OpAdd, 0, 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.CommitBatch("g", 6); err != nil {
		t.Fatal(err)
	}
	if _, batches, err = s2.Load("g"); err != nil || len(batches) != 1 || batches[0].Version != 6 {
		t.Fatalf("fresh log after discard: %v, %v", batches, err)
	}
}

// TestFSNameCaseSensitivity: "A" and "a" must land in distinct directories
// even on case-insensitive filesystems, so uppercase is escaped.
func TestFSNameCaseSensitivity(t *testing.T) {
	if encodeName("Data") == encodeName("data") {
		t.Fatal("case-folded names collide")
	}
	if strings.ContainsAny(encodeName("Data"), "ABCDEFGHIJKLMNOPQRSTUVWXYZ") {
		t.Fatalf("uppercase leaked into directory name %q", encodeName("Data"))
	}
	s, err := OpenFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSnapshot("A", &Snapshot{Meta: Meta{Version: 1}, Graph: graph.Build(1, nil)}); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSnapshot("a", &Snapshot{Meta: Meta{Version: 2}, Graph: graph.Build(2, nil)}); err != nil {
		t.Fatal(err)
	}
	upper, _, err := s.Load("A")
	if err != nil {
		t.Fatal(err)
	}
	lower, _, err := s.Load("a")
	if err != nil {
		t.Fatal(err)
	}
	if upper.Meta.Version != 1 || lower.Meta.Version != 2 || upper.Graph.N() != 1 || lower.Graph.N() != 2 {
		t.Fatalf("case collision: A=%+v a=%+v", upper.Meta, lower.Meta)
	}
}

// TestFSNamesAndListing: hostile and unicode graph names must round-trip
// through the directory encoding without collisions or traversal.
func TestFSNamesAndListing(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"plain", "..", ".", "a b", "a/b", "ü-graph", "", "%41", "A%41"}
	for i, name := range names {
		snap := &Snapshot{Meta: Meta{Version: uint64(i + 1)}, Graph: graph.Build(1, nil)}
		if err := s.SaveSnapshot(name, snap); err != nil {
			t.Fatalf("save %q: %v", name, err)
		}
	}
	got, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	want := append([]string(nil), names...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("list: %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("list: %q, want %q", got, want)
		}
	}
	// Every directory must live directly under graphs/ (no traversal).
	entries, err := os.ReadDir(filepath.Join(dir, "graphs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(names) {
		t.Fatalf("graph dirs: %d, want %d", len(entries), len(names))
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), "/") || e.Name() == "." || e.Name() == ".." {
			t.Fatalf("unsafe directory name %q", e.Name())
		}
	}

	if err := s.Delete(".."); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(".."); err != ErrNotFound {
		t.Fatalf("load after delete: %v, want ErrNotFound", err)
	}
	if _, _, err := s.Load("never-saved"); err != ErrNotFound {
		t.Fatalf("load of unknown name: %v, want ErrNotFound", err)
	}
}

// TestFSSnapshotReplaceIsAtomic: a failed in-progress save (simulated by
// the temp-file protocol) must never clobber the previous snapshot, and a
// reopened store sees the latest state.
func TestFSSnapshotReplaceAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	g1 := graph.GnM(30, 60, 1)
	if err := s.SaveSnapshot("g", &Snapshot{Meta: Meta{Version: 1}, Graph: g1}); err != nil {
		t.Fatal(err)
	}
	kappa := make([]int32, 50)
	for i := range kappa {
		kappa[i] = int32(i % 5)
	}
	g2 := graph.GnM(50, 120, 2)
	if err := s.SaveSnapshot("g", &Snapshot{Meta: Meta{Version: 4, Mutations: 3}, Graph: g2, Kappa: kappa}); err != nil {
		t.Fatal(err)
	}

	// Reopen: a fresh store instance over the same directory.
	s2, err := OpenFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap, batches, err := s2.Load("g")
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 0 || snap.Meta.Version != 4 || snap.Meta.Mutations != 3 {
		t.Fatalf("reopened: %+v, %d batches", snap.Meta, len(batches))
	}
	sameGraph(t, snap.Graph, g2)
	if len(snap.Kappa) != 50 || snap.Kappa[7] != 2 {
		t.Fatalf("kappa: %v", snap.Kappa)
	}
	// No leftover temp files from the atomic-replace protocol.
	entries, err := os.ReadDir(filepath.Join(dir, "graphs", "g"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file %q", e.Name())
		}
	}
}

// TestNullStore: the default backend accepts everything and retains
// nothing.
func TestNullStore(t *testing.T) {
	s := Null()
	if s.Durable() {
		t.Fatal("null store claims durability")
	}
	if err := s.SaveSnapshot("g", &Snapshot{Graph: graph.Build(1, nil)}); err != nil {
		t.Fatal(err)
	}
	if n, err := s.BeginBatch("g", &Batch{}); n != 0 || err != nil {
		t.Fatalf("BeginBatch: %d, %v", n, err)
	}
	if _, _, err := s.Load("g"); err != ErrNotFound {
		t.Fatalf("Load: %v, want ErrNotFound", err)
	}
	if names, err := s.List(); err != nil || len(names) != 0 {
		t.Fatalf("List: %v, %v", names, err)
	}
}
