// Package store is the durable persistence layer of nucleusd. It splits a
// graph's state the way HTAP-style systems split theirs: an authoritative
// binary *snapshot* (the full CSR graph plus metadata and, when known, the
// maintained exact core numbers) and an append-only *write-ahead log* of
// edge-mutation batches applied since that snapshot. Derived state — flat
// s-clique indices, decomposition caches, hierarchies — is never persisted:
// it is rebuilt (warm-started, not cold) from the recovered κ arrays.
//
// The WAL uses a two-frame protocol per batch. A *batch* frame is appended
// and synced BEFORE the edits touch the in-memory overlay; a *commit* frame
// carrying the published registry version is appended after the new graph
// version is installed. Replay applies only batches with a matching commit
// frame, so a crash anywhere in the window leaves exactly the acknowledged
// state: a batch frame without a commit was never acknowledged to the
// client and is dropped.
//
// Two backends implement Store: the filesystem directory store (OpenFS) and
// the in-memory null store (Null), which discards everything and keeps the
// serving layer's historical restart-loses-all behavior for tests and
// deployments that do not pass -data-dir.
package store

import (
	"errors"
	"time"

	"nucleus/internal/graph"
)

// ErrNotFound reports that a name has no persisted snapshot.
var ErrNotFound = errors.New("store: graph not found")

// Meta is the registry metadata persisted alongside a graph snapshot.
type Meta struct {
	// Version is the registry version the snapshot captures. Recovery
	// restores the graph at exactly this version (plus any committed WAL
	// batches, each carrying its own published version).
	Version uint64
	// Source records how the graph entered the registry ("upload:edgelist",
	// "generator:gnm", ...).
	Source string
	// CreatedAt is the registry creation time of the lineage.
	CreatedAt time.Time
	// Mutations is the number of edit batches applied to reach Version.
	Mutations int
}

// Snapshot is one durable graph snapshot: the immutable CSR graph, its
// registry metadata, and optionally the exact maintained core numbers.
type Snapshot struct {
	Meta  Meta
	Graph *graph.Graph
	// Kappa is the exact per-vertex core-number array maintained by the
	// mutation path, or nil when the lineage has never been mutated (and no
	// exact κ is known). When present, recovery seeds the dynamic overlay
	// and the decomposition cache from it instead of peeling cold.
	Kappa []int32
}

// Edit operations of a WAL batch.
const (
	OpAdd byte = iota
	OpRemove
)

// BatchOp is one edge edit of a mutation batch.
type BatchOp struct {
	Op   byte // OpAdd or OpRemove
	U, V uint32
}

// Batch is one edge-mutation batch as logged to the WAL, mirroring the
// body of POST /graphs/{name}/edges.
type Batch struct {
	Edits []BatchOp
	// GrowTo optionally raises the vertex count beyond the largest edit
	// endpoint; 0 means no explicit growth.
	GrowTo int
}

// CommittedBatch is a replayable WAL batch together with the registry
// version that was published after applying it.
type CommittedBatch struct {
	Batch
	Version uint64
}

// Store is a pluggable persistence backend for the graph registry. All
// methods are safe for concurrent use; operations on the same name are
// serialized internally. Callers (the serving layer) additionally hold the
// per-name mutation lock across a BeginBatch…CommitBatch pair, so the two
// frames of one batch land adjacently in the log.
type Store interface {
	// SaveSnapshot atomically persists snap as the authoritative snapshot
	// of name and truncates its WAL (the snapshot already contains every
	// previously committed batch).
	SaveSnapshot(name string, snap *Snapshot) error
	// BeginBatch durably appends an edit batch BEFORE it is applied,
	// returning the bytes written.
	BeginBatch(name string, b *Batch) (int, error)
	// CommitBatch durably marks the most recently begun batch as published
	// at version, returning the bytes written.
	CommitBatch(name string, version uint64) (int, error)
	// Load reads the snapshot of name and the committed batches appended
	// since it was written, in append order. A corrupt WAL tail (torn
	// write) is truncated at the last intact frame; uncommitted batches
	// are dropped.
	Load(name string) (*Snapshot, []CommittedBatch, error)
	// List returns the names of all persisted graphs.
	List() ([]string, error)
	// Delete removes every trace of name.
	Delete(name string) error
	// WALSize returns the current byte size of name's WAL (0 if none), for
	// compaction scheduling. It must be cheap.
	WALSize(name string) int64
	// Durable reports whether the backend actually persists anything. The
	// serving layer uses it to skip recovery and compaction on the null
	// store and to report persistence as disabled in /stats.
	Durable() bool
	// Close releases backend resources. The store must not be used after.
	Close() error
}

// ReplicationSource is an optional capability a durable Store may
// implement: raw byte-range access to the persisted images, used by the
// replication endpoints to ship a graph's state to pulling replicas
// without re-encoding. SnapshotImage returns the complete snapshot file
// (decodable with DecodeSnapshot); WALImage returns up to limit bytes of
// the WAL from offset (limit <= 0 means no bound) plus the log's total
// size. The serving layer type-asserts for it like ThreadedLoader.
type ReplicationSource interface {
	SnapshotImage(name string) ([]byte, error)
	WALImage(name string, offset, limit int64) ([]byte, int64, error)
}

// ThreadedLoader is an optional capability a Store may implement: Load
// with the CPU-bound part of snapshot decoding (CSR construction) fanned
// across threads. The result is bit-identical to Load at every thread
// count. The serving layer type-asserts for it at startup recovery; plain
// Load remains the portable path, so the public Store surface is unchanged.
type ThreadedLoader interface {
	LoadThreads(name string, threads int) (*Snapshot, []CommittedBatch, error)
}

// nullStore discards everything: the default backend when no data
// directory is configured, and a convenient stand-in for tests.
type nullStore struct{}

var nullSingleton Store = nullStore{}

// Null returns the shared no-op Store.
func Null() Store { return nullSingleton }

func (nullStore) SaveSnapshot(string, *Snapshot) error    { return nil }
func (nullStore) BeginBatch(string, *Batch) (int, error)  { return 0, nil }
func (nullStore) CommitBatch(string, uint64) (int, error) { return 0, nil }
func (nullStore) Load(string) (*Snapshot, []CommittedBatch, error) {
	return nil, nil, ErrNotFound
}
func (nullStore) List() ([]string, error) { return nil, nil }
func (nullStore) Delete(string) error     { return nil }
func (nullStore) WALSize(string) int64    { return 0 }
func (nullStore) Durable() bool           { return false }
func (nullStore) Close() error            { return nil }
