package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// WALScanner is the incremental form of the WAL replay decoder: frames
// arrive in arbitrary chunks (a replica pulling byte ranges of the
// primary's log over HTTP) instead of as one complete file image.
// Feed appends received bytes; Next yields each committed batch as soon
// as its batch+commit frame pair is complete, and (nil, nil) when the
// buffered bytes end mid-frame — the replication analogue of a torn
// tail, resolved by feeding more bytes rather than truncating.
//
// Unlike file replay, a frame that is fully present but fails its
// checksum is NOT a tolerable crash artifact here: the primary serves
// WAL reads under the append lock, so a corrupt frame means the bytes
// were damaged in flight or the offsets have diverged. Next reports it
// as ErrCorruptFrame (sticky), and the caller recovers by full snapshot
// resync, never by applying a guess.
//
// A scanner always starts at byte 0 of a WAL file and therefore demands
// the mandatory header frame first; Generation exposes the header's
// snapshot generation once seen so the consumer can check it against
// the base snapshot it holds.
type WALScanner struct {
	buf     []byte
	gen     uint64
	hasGen  bool
	pending *Batch
	corrupt bool
}

// ErrCorruptFrame reports a complete frame that failed validation
// (checksum, framing, or payload shape) in a replication stream.
var ErrCorruptFrame = errors.New("store: corrupt WAL frame in replication stream")

// maxWALFramePayload bounds a single frame's claimed payload length. A
// length prefix beyond it is treated as corruption immediately instead
// of waiting forever for bytes that will never arrive.
const maxWALFramePayload = 64 << 20

// NewWALScanner returns a scanner positioned at byte 0 of a WAL file.
func NewWALScanner() *WALScanner {
	return &WALScanner{}
}

// Feed appends received WAL bytes to the scan buffer.
func (sc *WALScanner) Feed(p []byte) {
	sc.buf = append(sc.buf, p...)
}

// Generation returns the stream's header generation — the Meta.Version
// of the snapshot this log extends — once the header frame has been
// scanned.
func (sc *WALScanner) Generation() (uint64, bool) {
	return sc.gen, sc.hasGen
}

// Next returns the next committed batch, (nil, nil) when more bytes are
// needed, or ErrCorruptFrame. The error is sticky: a corrupt stream
// cannot be resumed by feeding more bytes.
func (sc *WALScanner) Next() (*CommittedBatch, error) {
	for {
		if sc.corrupt {
			return nil, ErrCorruptFrame
		}
		frame, st := scanOneFrame(sc.buf)
		switch st {
		case frameShort:
			return nil, nil
		case frameCorrupt:
			sc.corrupt = true
			return nil, ErrCorruptFrame
		}
		switch frame.typ {
		case frameHeader:
			// Exactly one header, and it must come first.
			if sc.hasGen {
				sc.corrupt = true
				return nil, ErrCorruptFrame
			}
			gen, err := decodeUvarintPayload(frame.payload)
			if err != nil {
				sc.corrupt = true
				return nil, ErrCorruptFrame
			}
			sc.gen, sc.hasGen = gen, true
		case frameBatch:
			if !sc.hasGen {
				sc.corrupt = true
				return nil, ErrCorruptFrame
			}
			batch, err := decodeBatchPayload(frame.payload)
			if err != nil {
				sc.corrupt = true
				return nil, ErrCorruptFrame
			}
			// A previous pending batch with no commit was aborted on the
			// primary; overwrite it, as file replay does.
			sc.pending = batch
		case frameCommit:
			if !sc.hasGen || sc.pending == nil {
				sc.corrupt = true
				return nil, ErrCorruptFrame
			}
			version, err := decodeUvarintPayload(frame.payload)
			if err != nil {
				sc.corrupt = true
				return nil, ErrCorruptFrame
			}
			b := sc.pending
			sc.pending = nil
			sc.buf = sc.buf[frame.end:]
			return &CommittedBatch{Batch: *b, Version: version}, nil
		default:
			sc.corrupt = true
			return nil, ErrCorruptFrame
		}
		sc.buf = sc.buf[frame.end:]
	}
}

type frameStatus int

const (
	frameOK frameStatus = iota
	// frameShort: the buffer ends before the frame does — feed more.
	frameShort
	// frameCorrupt: a structurally complete frame failed validation.
	frameCorrupt
)

// scanOneFrame inspects the frame starting at buf[0], distinguishing
// "incomplete" (more bytes pending) from "corrupt" (complete but
// invalid) — the distinction file replay does not need, because a file
// image never grows.
func scanOneFrame(buf []byte) (rawFrame, frameStatus) {
	if len(buf) == 0 {
		return rawFrame{}, frameShort
	}
	plen, n := binary.Uvarint(buf[1:])
	if n == 0 {
		return rawFrame{}, frameShort
	}
	if n < 0 || plen > maxWALFramePayload {
		return rawFrame{}, frameCorrupt
	}
	payloadStart := 1 + n
	payloadEnd := payloadStart + int(plen)
	if payloadEnd+4 > len(buf) {
		return rawFrame{}, frameShort
	}
	payload := buf[payloadStart:payloadEnd]
	want := binary.LittleEndian.Uint32(buf[payloadEnd : payloadEnd+4])
	got := crc32.Update(crc32.Checksum(buf[:1], castagnoli), castagnoli, payload)
	if got != want {
		return rawFrame{}, frameCorrupt
	}
	return rawFrame{typ: buf[0], payload: payload, end: payloadEnd + 4}, frameOK
}
