package localhi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
	"nucleus/internal/peel"
)

// TestPreserveExactness: the §4.4 early-exit heuristic must not change the
// fixpoint for any algorithm or instance.
func TestPreserveExactness(t *testing.T) {
	err := quick.Check(func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%25) + 4
		m := int(mRaw%110) + 1
		if maxM := n * (n - 1) / 2; m > maxM {
			m = maxM
		}
		g := graph.GnM(n, m, seed)
		for _, inst := range []nucleus.Instance{nucleus.NewCore(g), nucleus.NewTruss(g)} {
			want := peel.Run(inst).Kappa
			for _, res := range []*Result{
				Snd(inst, Options{Preserve: true}),
				And(inst, Options{Preserve: true}),
				And(inst, Options{Preserve: true, Notification: true}),
			} {
				if !equalInt32(res.Tau, want) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(18))})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPreserveSavesVisits: on a plateau-heavy graph the early exit must cut
// the number of s-clique visits.
func TestPreserveSavesVisits(t *testing.T) {
	g := graph.PowerLawCluster(800, 6, 0.5, 61)
	inst := nucleus.NewTruss(g)
	plain := And(inst, Options{Notification: true})
	fast := And(inst, Options{Notification: true, Preserve: true})
	if !equalInt32(plain.Tau, fast.Tau) {
		t.Fatal("preserve changed the fixpoint")
	}
	if fast.WorkVisits >= plain.WorkVisits {
		t.Errorf("preserve saved nothing: %d vs %d visits", fast.WorkVisits, plain.WorkVisits)
	}
}

// TestPreserveParallel: exactness holds under concurrent sweeps.
func TestPreserveParallel(t *testing.T) {
	g := graph.PowerLawCluster(400, 5, 0.4, 63)
	inst := nucleus.NewTruss(g)
	want := peel.Run(inst).Kappa
	res := And(inst, Options{Threads: 4, Notification: true, Preserve: true})
	if !equalInt32(res.Tau, want) {
		t.Fatal("parallel preserve wrong")
	}
}

// TestPreserveZeroCells: cells at τ=0 skip enumeration entirely.
func TestPreserveZeroCells(t *testing.T) {
	g := graph.Star(6) // no triangles: all truss τ0 = 0
	inst := nucleus.NewTruss(g)
	res := And(inst, Options{Preserve: true})
	if res.WorkVisits != 0 {
		t.Fatalf("zero cells still visited %d s-cliques", res.WorkVisits)
	}
	for _, v := range res.Tau {
		if v != 0 {
			t.Fatal("wrong fixpoint")
		}
	}
}
