package localhi

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
	"nucleus/internal/peel"
)

func coreKappa(g *graph.Graph) []int32 {
	return peel.Run(nucleus.NewCore(g)).Kappa
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFigure2Snd replays the paper's Figure 2 walk-through: τ0 = degrees,
// τ1 = {a:2 b:2 c:2 d:2 e:1 f:1}, τ2 = κ = {1,2,2,2,1,1}; SND converges in
// two iterations.
func TestFigure2Snd(t *testing.T) {
	g := graph.Figure2()
	inst := nucleus.NewCore(g)
	var history [][]int32
	res := Snd(inst, Options{OnSweep: func(_ int, tau []int32) {
		history = append(history, append([]int32(nil), tau...))
	}})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if res.Iterations != 2 {
		t.Fatalf("SND iterations = %d, want 2", res.Iterations)
	}
	wantTau1 := []int32{2, 2, 2, 2, 1, 1}
	wantKappa := []int32{1, 2, 2, 2, 1, 1}
	if !equalInt32(history[0], wantTau1) {
		t.Fatalf("τ1 = %v, want %v", history[0], wantTau1)
	}
	if !equalInt32(res.Tau, wantKappa) {
		t.Fatalf("κ = %v, want %v", res.Tau, wantKappa)
	}
}

// TestFigure2AndAlphabetical: processing {a,b,c,d,e,f} in alphabetical
// (id) order also needs two iterations, exactly as the paper notes:
// τ1(a) = H({τ0(e), τ0(b)}) = 2, fixed to 1 only in the second sweep.
func TestFigure2AndAlphabetical(t *testing.T) {
	g := graph.Figure2()
	res := And(nucleus.NewCore(g), Options{})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if res.Iterations != 2 {
		t.Fatalf("AND alphabetical iterations = %d, want 2", res.Iterations)
	}
	if !equalInt32(res.Tau, []int32{1, 2, 2, 2, 1, 1}) {
		t.Fatalf("κ = %v", res.Tau)
	}
}

// TestFigure2AndKappaOrder verifies Theorem 4 on the toy: the order
// {f,e,a,b,c,d} is non-decreasing in κ, so AND converges in one iteration.
func TestFigure2AndKappaOrder(t *testing.T) {
	g := graph.Figure2()
	order := []int32{5, 4, 0, 1, 2, 3} // f,e,a,b,c,d
	res := And(nucleus.NewCore(g), Options{Order: order})
	if res.Iterations != 1 {
		t.Fatalf("AND κ-order iterations = %d, want 1", res.Iterations)
	}
	if !equalInt32(res.Tau, []int32{1, 2, 2, 2, 1, 1}) {
		t.Fatalf("κ = %v", res.Tau)
	}
}

// TestTheorem4Quick: AND processed in the peeling order — a non-decreasing
// κ order whose tie-breaking guarantees each cell has at most κ unprocessed
// co-members — converges in a single iteration, for all three instances.
// (The paper states the theorem for "non-decreasing κ order"; an arbitrary
// κ-sorted order with different tie-breaking can need extra iterations, so
// the peeling order is the constructive witness.)
func TestTheorem4Quick(t *testing.T) {
	quickGraphs(t, func(g *graph.Graph) bool {
		for _, inst := range []nucleus.Instance{nucleus.NewCore(g), nucleus.NewTruss(g)} {
			pr := peel.Run(inst)
			res := And(inst, Options{Order: pr.Order})
			if res.Iterations > 1 || !equalInt32(res.Tau, pr.Kappa) {
				return false
			}
		}
		return true
	})
}

// TestKappaSortedOrderExact: any non-decreasing κ order still converges to
// the exact decomposition (just not necessarily in one sweep).
func TestKappaSortedOrderExact(t *testing.T) {
	quickGraphs(t, func(g *graph.Graph) bool {
		kappa := coreKappa(g)
		order := make([]int32, g.N())
		for i := range order {
			order[i] = int32(i)
		}
		sort.SliceStable(order, func(a, b int) bool { return kappa[order[a]] < kappa[order[b]] })
		res := And(nucleus.NewCore(g), Options{Order: order})
		return equalInt32(res.Tau, kappa)
	})
}

// TestSndMatchesPeelAllInstances is the central exactness property: the
// synchronous local algorithm converges to the same κ as global peeling for
// (1,2), (2,3) and (3,4).
func TestSndMatchesPeelAllInstances(t *testing.T) {
	quickGraphs(t, func(g *graph.Graph) bool {
		for _, inst := range []nucleus.Instance{nucleus.NewCore(g), nucleus.NewTruss(g), nucleus.NewN34(g)} {
			want := peel.Run(inst).Kappa
			got := Snd(inst, Options{}).Tau
			if !equalInt32(got, want) {
				return false
			}
		}
		return true
	})
}

// TestAndMatchesPeelAllInstances: same for the asynchronous variant, with
// and without notification.
func TestAndMatchesPeelAllInstances(t *testing.T) {
	quickGraphs(t, func(g *graph.Graph) bool {
		for _, inst := range []nucleus.Instance{nucleus.NewCore(g), nucleus.NewTruss(g), nucleus.NewN34(g)} {
			want := peel.Run(inst).Kappa
			if !equalInt32(And(inst, Options{}).Tau, want) {
				return false
			}
			if !equalInt32(And(inst, Options{Notification: true}).Tau, want) {
				return false
			}
		}
		return true
	})
}

// TestHyperGenericMatches: the generic hypergraph instance agrees with
// peeling and local algorithms for an exotic (1,3) decomposition.
func TestHyperGenericMatches(t *testing.T) {
	g := graph.PlantedCommunities(2, 9, 0.7, 6, 21)
	inst := nucleus.NewHyper(g, 1, 3)
	want := peel.Run(inst).Kappa
	if got := Snd(inst, Options{}).Tau; !equalInt32(got, want) {
		t.Fatalf("SND (1,3) = %v, want %v", got, want)
	}
	if got := And(inst, Options{Notification: true}).Tau; !equalInt32(got, want) {
		t.Fatalf("AND (1,3) = %v, want %v", got, want)
	}
}

// TestMonotonicityAndLowerBound checks Theorem 1 sweep by sweep: τ never
// increases and never drops below κ.
func TestMonotonicityAndLowerBound(t *testing.T) {
	quickGraphs(t, func(g *graph.Graph) bool {
		inst := nucleus.NewTruss(g)
		kappa := peel.Run(inst).Kappa
		prev := inst.Degrees()
		ok := true
		Snd(inst, Options{OnSweep: func(_ int, tau []int32) {
			for i := range tau {
				if tau[i] > prev[i] || tau[i] < kappa[i] {
					ok = false
				}
			}
			copy(prev, tau)
		}})
		return ok
	})
}

// TestConvergenceBound checks Theorem 3 / Lemma 2: SND converges within
// the number of degree levels.
func TestConvergenceBound(t *testing.T) {
	quickGraphs(t, func(g *graph.Graph) bool {
		for _, inst := range []nucleus.Instance{nucleus.NewCore(g), nucleus.NewTruss(g)} {
			levels := peel.Levels(inst)
			res := Snd(inst, Options{})
			if res.Iterations > levels.Count {
				return false
			}
		}
		return true
	})
}

// TestAndNeverSlowerThanSnd: in sweeps-with-updates, sequential AND is at
// most SND (Gauss–Seidel dominates Jacobi here because updates only go
// down and AND reads fresher values).
func TestAndNeverSlowerThanSnd(t *testing.T) {
	quickGraphs(t, func(g *graph.Graph) bool {
		inst := nucleus.NewCore(g)
		snd := Snd(inst, Options{})
		and := And(inst, Options{})
		return and.Iterations <= snd.Iterations
	})
}

func TestMaxSweepsApproximation(t *testing.T) {
	g := graph.PowerLawCluster(400, 5, 0.5, 17)
	inst := nucleus.NewCore(g)
	kappa := peel.Run(inst).Kappa
	res := Snd(inst, Options{MaxSweeps: 1})
	if res.Converged && res.Sweeps > 1 {
		t.Fatal("budget ignored")
	}
	// After one sweep τ is the h-index of neighbor degrees: still an upper
	// bound on κ, pointwise.
	for i := range kappa {
		if res.Tau[i] < kappa[i] {
			t.Fatalf("τ below κ at %d", i)
		}
	}
}

func TestNotificationSkipsWork(t *testing.T) {
	g := graph.PowerLawCluster(800, 5, 0.5, 23)
	inst := nucleus.NewCore(g)
	plain := And(inst, Options{})
	notif := And(inst, Options{Notification: true})
	if !equalInt32(plain.Tau, notif.Tau) {
		t.Fatal("notification changed the fixpoint")
	}
	if notif.SkippedCells == 0 {
		t.Error("notification mechanism never skipped a cell")
	}
	// The notified run should do fewer s-clique visits despite the final
	// verification sweep.
	if notif.WorkVisits >= plain.WorkVisits {
		t.Errorf("notification did not save work: %d vs %d visits",
			notif.WorkVisits, plain.WorkVisits)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	g := graph.PowerLawCluster(500, 5, 0.4, 29)
	for _, inst := range []nucleus.Instance{nucleus.NewCore(g), nucleus.NewTruss(g)} {
		want := peel.Run(inst).Kappa
		for _, threads := range []int{2, 4, 8} {
			for _, sched := range []Scheduling{Dynamic, Static} {
				snd := Snd(inst, Options{Threads: threads, Scheduling: sched})
				if !equalInt32(snd.Tau, want) {
					t.Fatalf("parallel SND t=%d sched=%d wrong", threads, sched)
				}
				and := And(inst, Options{Threads: threads, Scheduling: sched, Notification: true})
				if !equalInt32(and.Tau, want) {
					t.Fatalf("parallel AND t=%d sched=%d wrong", threads, sched)
				}
			}
		}
	}
}

func TestSubsetRestrictsComputation(t *testing.T) {
	g := graph.CliqueChain(4, 6) // 4 K6 blocks: core number 5 everywhere
	inst := nucleus.NewCore(g)
	// Restrict to the first block; remaining cells stay at τ0 = degree.
	subset := []int32{0, 1, 2, 3, 4, 5}
	res := And(inst, Options{Subset: subset, Notification: true})
	deg := inst.Degrees()
	for c := 6; c < g.N(); c++ {
		if res.Tau[c] != deg[c] {
			t.Fatalf("cell %d outside subset changed: %d vs %d", c, res.Tau[c], deg[c])
		}
	}
	kappa := coreKappa(g)
	// Inside the block, estimates must stay sandwiched: κ <= τ <= degree.
	for _, c := range subset {
		if res.Tau[c] < kappa[c] || res.Tau[c] > deg[c] {
			t.Fatalf("subset estimate out of range at %d", c)
		}
	}
}

func TestOnSweepObservesProgress(t *testing.T) {
	g := graph.PowerLawCluster(200, 4, 0.5, 31)
	inst := nucleus.NewCore(g)
	sweeps := 0
	res := Snd(inst, Options{OnSweep: func(s int, tau []int32) {
		sweeps++
		if s != sweeps {
			t.Fatalf("sweep index %d, want %d", s, sweeps)
		}
		if len(tau) != inst.NumCells() {
			t.Fatal("tau length wrong in callback")
		}
	}})
	if sweeps != res.Sweeps {
		t.Fatalf("callback saw %d sweeps, result says %d", sweeps, res.Sweeps)
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	empty := graph.Build(0, nil)
	res := Snd(nucleus.NewCore(empty), Options{})
	if len(res.Tau) != 0 || !res.Converged {
		t.Fatal("empty graph mishandled")
	}
	single := graph.Build(1, nil)
	res = And(nucleus.NewCore(single), Options{Notification: true})
	if len(res.Tau) != 1 || res.Tau[0] != 0 {
		t.Fatalf("singleton τ = %v", res.Tau)
	}
	// Graph with edges but no triangles: all truss numbers zero.
	tri := graph.Path(5)
	resT := Snd(nucleus.NewTruss(tri), Options{})
	for _, v := range resT.Tau {
		if v != 0 {
			t.Fatalf("path truss τ = %v", resT.Tau)
		}
	}
}

// TestWorstCaseOrderSlower: processing in non-increasing κ order should
// need at least as many iterations as the κ-sorted order (the paper's
// intuition for the AND worst case).
func TestWorstCaseOrderIterations(t *testing.T) {
	g := graph.PowerLawCluster(300, 4, 0.5, 37)
	inst := nucleus.NewCore(g)
	pr := peel.Run(inst)
	// Peeling order: single iteration (Theorem 4).
	ia := And(inst, Options{Order: pr.Order}).Iterations
	if ia != 1 {
		t.Fatalf("peeling order took %d iterations, want 1", ia)
	}
	// Reversed peeling order is the paper's conjectured worst case; it must
	// be at least as slow.
	desc := make([]int32, len(pr.Order))
	for i, c := range pr.Order {
		desc[len(desc)-1-i] = c
	}
	id := And(inst, Options{Order: desc}).Iterations
	if id < ia {
		t.Fatalf("reverse peeling order (%d iters) faster than peeling order (%d)", id, ia)
	}
}

func quickGraphs(t *testing.T, pred func(*graph.Graph) bool) {
	t.Helper()
	err := quick.Check(func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%25) + 4
		m := int(mRaw%110) + 1
		maxM := n * (n - 1) / 2
		if m > maxM {
			m = maxM
		}
		return pred(graph.GnM(n, m, seed))
	}, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(14))})
	if err != nil {
		t.Fatal(err)
	}
}
