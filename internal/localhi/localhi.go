// Package localhi implements the paper's local algorithms: Snd (Algorithm 2,
// synchronous nucleus decomposition) and And (Algorithm 3, asynchronous
// nucleus decomposition with the notification mechanism of §4.2.1). Both
// iterate h-index computations on the s-degrees of cells until the τ indices
// converge to the κ indices (Theorem 3 / Lemma 2).
//
// The algorithms work against any nucleus.Instance, so the same code
// computes k-core (1,2), k-truss (2,3), the (3,4) nucleus, and the generic
// hypergraph instance. Instances that materialize their s-clique incidence
// as flat CSR arrays (nucleus.FlatIncidence, e.g. IndexedTruss/IndexedN34)
// are detected and run through a fused sweep kernel — pure array scans
// with per-worker reusable scratch and zero steady-state allocations —
// while every other instance takes the generic closure path (see fused.go
// and docs/PERFORMANCE.md). Both algorithms are parallel: cells are
// distributed to workers with either static (contiguous chunk) or dynamic
// (work stealing via a shared cursor) scheduling, mirroring the OpenMP
// discussion in §4.4.
//
// A converged run yields the exact decomposition (Result.Converged);
// bounding Options.MaxSweeps yields an anytime approximation with the
// one-sided guarantee τ ≥ κ. Options.Progress publishes copy-on-write τ
// snapshots with per-sweep convergence metrics while a run is still in
// flight, and Options.Stop supports cooperative cancellation and
// wall-clock deadlines — together they make the anytime property
// observable from outside the run (see docs/ANYTIME.md).
// Options.Subset restricts recomputation to a cell subset (the
// query-driven mode of package query), and Options.InitialTau warm-starts
// reconvergence after graph edits (package dynamic).
package localhi

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"nucleus/internal/hindex"
	"nucleus/internal/nucleus"
)

// Scheduling selects how sweep work is distributed over workers.
type Scheduling int

const (
	// Dynamic hands each idle worker the next chunk of cells (OpenMP
	// "dynamic"); the paper's choice, robust to notification-induced load
	// imbalance.
	Dynamic Scheduling = iota
	// Static pre-splits cells into one contiguous chunk per worker (OpenMP
	// "static").
	Static
)

// Options configures a local decomposition run.
type Options struct {
	// Threads is the worker count; values <= 1 run sequentially.
	Threads int
	// MaxSweeps bounds the number of sweeps; 0 means run to convergence.
	// A bounded run returns the intermediate τ, which is a valid
	// approximation (Theorem 1: τ ≥ κ pointwise, non-increasing).
	MaxSweeps int
	// Order is the cell processing order for And; nil means 0..n-1.
	// Per Theorem 4, processing in the peeling order (non-decreasing final
	// κ with peeling tie-breaks, e.g. peel.Result.Order) converges in a
	// single iteration.
	Order []int32
	// Notification enables the plateau-skipping wakeup mechanism (§4.2.1);
	// only meaningful for And.
	Notification bool
	// Scheduling selects Static or Dynamic chunking for parallel sweeps.
	Scheduling Scheduling
	// ChunkSize is the dynamic scheduling grain; 0 means 64.
	ChunkSize int
	// OnSweep, when non-nil, is invoked after every sweep with the sweep
	// index (1-based) and the current τ array (read-only; valid only for
	// the duration of the call).
	OnSweep func(sweep int, tau []int32)
	// Subset, when non-nil, restricts recomputation to the listed cells
	// (query-driven processing, §1.2); all other cells keep τ = their
	// s-degree.
	Subset []int32
	// Preserve enables the §4.4 early-exit heuristic: while recomputing a
	// cell, stop enumerating s-cliques as soon as τ of them have ρ >= τ —
	// the current index is then certainly preserved. Sound because τ only
	// decreases: H of the full list can never exceed the current τ.
	Preserve bool
	// InitialTau, when non-nil, seeds τ instead of the s-degrees. Lemma 2
	// holds for any start that is pointwise >= κ, so a tight warm start
	// (e.g. the κ of a slightly older version of the graph, bumped by the
	// number of edits) converges in far fewer sweeps. The slice is copied.
	// Values above a cell's s-degree are clamped to it (H can never exceed
	// the s-clique count, so the clamp is free and keeps Preserve sound).
	InitialTau []int32
	// Progress, when non-nil, receives a copy-on-write snapshot of τ plus
	// per-sweep convergence metrics after every sweep, and a Final snapshot
	// when the run ends (see Progress). Publishing runs between sweeps on
	// the coordinating goroutine, so the fused kernels stay untouched.
	Progress *Progress
	// Stop, when non-nil, is polled between sweeps; once it returns true
	// the run ends after the current sweep and returns the intermediate τ
	// (still a valid approximation: τ ≥ κ) with Result.Stopped set.
	// Cooperative cancellation and wall-clock budgets hook in here.
	Stop func() bool
}

// Result reports the outcome of a local decomposition run.
type Result struct {
	// Tau holds the final τ indices; equal to κ when Converged.
	Tau []int32
	// Iterations counts sweeps that updated at least one τ index. This
	// matches the paper's iteration counts (e.g. SND on the Figure 2 toy
	// graph takes 2 iterations).
	Iterations int
	// Sweeps counts all sweeps performed, including the final no-change
	// sweep that detects convergence and any verification sweeps.
	Sweeps int
	// Converged reports whether τ = κ was certified.
	Converged bool
	// Stopped reports that Options.Stop ended the run early (cancellation
	// or a deadline), as opposed to convergence or an exhausted MaxSweeps
	// budget.
	Stopped bool
	// Updates is the total number of τ decrements applied.
	Updates int64
	// SkippedCells counts cell visits avoided by the notification
	// mechanism.
	SkippedCells int64
	// WorkVisits counts s-clique visits performed (the dominant cost).
	WorkVisits int64
	// SweepUpdates[i] is the number of τ decrements in sweep i+1. The
	// update rate decays toward zero as τ approaches κ, giving a
	// ground-truth-free convergence signal for accuracy/runtime decisions
	// (the quality metric of the paper's §1.2).
	SweepUpdates []int64
}

// UpdateRate returns SweepUpdates[sweep-1] divided by the cell count: the
// fraction of cells still changing in that sweep (1-based).
func (r *Result) UpdateRate(sweep int, cells int) float64 {
	if sweep < 1 || sweep > len(r.SweepUpdates) || cells == 0 {
		return 0
	}
	return float64(r.SweepUpdates[sweep-1]) / float64(cells)
}

func (o Options) threads() int {
	if o.Threads <= 0 {
		return 1
	}
	return o.Threads
}

func (o Options) chunk() int {
	if o.ChunkSize <= 0 {
		return 64
	}
	return o.ChunkSize
}

// Snd runs the synchronous algorithm: every sweep computes τ_{t+1} for all
// cells from the frozen τ_t of the previous sweep (Jacobi iteration).
// Instances exposing flat incidence arrays (nucleus.FlatIncidence) run the
// fused zero-allocation sweep kernel; everything else takes the generic
// closure-based path.
func Snd(inst nucleus.Instance, opts Options) *Result {
	n := inst.NumCells()
	tau := initialTau(inst, opts)
	prev := make([]int32, n)
	res := &Result{}
	cells := sweepCells(n, opts)
	fa, flat := flatOf(inst)

	for {
		copy(prev, tau)
		var updates, visits int64
		parallelFor(len(cells), opts, func(lo, hi int, sc *sweepScratch) (int64, int64) {
			var upd, vis int64
			for i := lo; i < hi; i++ {
				c := cells[i]
				var h int32
				var v int64
				switch {
				case flat && opts.Preserve:
					h, v = computeTauFlat(fa, c, prev, sc, prev[c], true, false)
				case flat:
					h, v = computeTauFlat(fa, c, prev, sc, 0, false, false)
				case opts.Preserve:
					h, v = computeTauPreserve(inst, c, prev, sc, prev[c], false)
				default:
					h, v = computeTau(inst, c, prev, sc)
				}
				vis += v
				if h != prev[c] {
					upd++
				}
				tau[c] = h
			}
			return upd, vis
		}, &updates, &visits)
		res.Sweeps++
		res.WorkVisits += visits
		res.SweepUpdates = append(res.SweepUpdates, updates)
		if updates > 0 {
			res.Iterations++
			res.Updates += updates
		}
		if opts.OnSweep != nil {
			opts.OnSweep(res.Sweeps, tau)
		}
		if opts.Progress != nil {
			opts.Progress.observe(res.Sweeps, tau, updates, false, false)
		}
		if updates == 0 {
			res.Converged = true
			break
		}
		if opts.MaxSweeps > 0 && res.Sweeps >= opts.MaxSweeps {
			break
		}
		if opts.Stop != nil && opts.Stop() {
			res.Stopped = true
			break
		}
	}
	res.Tau = tau
	if opts.Progress != nil {
		opts.Progress.finish(res)
	}
	return res
}

// And runs the asynchronous algorithm: cells read the freshest available τ
// values (Gauss–Seidel iteration), optionally skipping cells whose
// neighborhood is unchanged (notification mechanism).
func And(inst nucleus.Instance, opts Options) *Result {
	n := inst.NumCells()
	tau := initialTau(inst, opts)
	res := &Result{}
	cells := sweepCells(n, opts)
	par := opts.threads() > 1
	fa, flat := flatOf(inst)

	var active []int32
	if opts.Notification {
		active = make([]int32, n)
		for _, c := range cells {
			active[c] = 1
		}
	}

	runSweep := func(ignoreFlags bool) (updates int64) {
		var visits, skipped int64
		parallelFor(len(cells), opts, func(lo, hi int, sc *sweepScratch) (int64, int64) {
			var upd, vis int64
			for i := lo; i < hi; i++ {
				c := cells[i]
				if active != nil && !ignoreFlags {
					if atomic.LoadInt32(&active[c]) == 0 {
						atomic.AddInt64(&skipped, 1)
						continue
					}
					// Clear before computing: a notification that arrives
					// mid-compute is preserved for the next sweep, so no
					// wakeup is lost.
					atomic.StoreInt32(&active[c], 0)
				}
				var h int32
				var v int64
				switch {
				case flat && opts.Preserve:
					h, v = computeTauFlat(fa, c, tau, sc, loadTau(par, tau, c), true, par)
				case flat:
					h, v = computeTauFlat(fa, c, tau, sc, 0, false, par)
				case opts.Preserve:
					h, v = computeTauPreserve(inst, c, tau, sc, loadTau(par, tau, c), par)
				case par:
					h, v = computeTauAtomic(inst, c, tau, sc)
				default:
					h, v = computeTau(inst, c, tau, sc)
				}
				vis += v
				old := loadTau(par, tau, c)
				if h < old {
					storeTau(par, tau, c, h)
					upd++
					if active != nil {
						if flat {
							notifyNeighborsFlat(fa, c, active)
						} else {
							inst.VisitNeighbors(c, func(d int32) bool {
								atomic.StoreInt32(&active[d], 1)
								return true
							})
						}
					}
				}
			}
			return upd, vis
		}, &updates, &visits)
		res.Sweeps++
		res.WorkVisits += visits
		res.SkippedCells += skipped
		res.SweepUpdates = append(res.SweepUpdates, updates)
		if updates > 0 {
			res.Iterations++
			res.Updates += updates
		}
		if opts.OnSweep != nil {
			opts.OnSweep(res.Sweeps, tau)
		}
		if opts.Progress != nil {
			opts.Progress.observe(res.Sweeps, tau, updates, false, false)
		}
		return updates
	}

	// Every sweep — notification, certification and repair alike — counts
	// against the budget, so a bounded run can never report
	// Sweeps > MaxSweeps. The check sits at the loop head: when the budget
	// is exhausted the run stops uncertified and returns the intermediate
	// τ, which is still a valid approximation (τ ≥ κ, Theorem 1).
	for {
		if opts.MaxSweeps > 0 && res.Sweeps >= opts.MaxSweeps {
			break
		}
		// Checked only after the first sweep (like Snd): a stop signal can
		// end a run early, but never before there is an intermediate τ
		// worth returning.
		if res.Sweeps > 0 && opts.Stop != nil && opts.Stop() {
			res.Stopped = true
			break
		}
		updates := runSweep(false)
		if updates == 0 {
			if active == nil {
				res.Converged = true
				break
			}
			if opts.MaxSweeps > 0 && res.Sweeps >= opts.MaxSweeps {
				// No budget left for certification: the plateau is very
				// likely the fixpoint, but without the certifying sweep we
				// must not claim convergence.
				break
			}
			// Certify the fixpoint with one full sweep that ignores the
			// notification flags; in the benign-race worst case this
			// degenerates to a synchronous sweep (§4.2.1). A non-zero
			// certification sweep re-enters the loop (and the budget check).
			if runSweep(true) == 0 {
				res.Converged = true
				break
			}
		}
	}
	res.Tau = tau
	if opts.Progress != nil {
		opts.Progress.finish(res)
	}
	return res
}

// computeTau evaluates the update operator U for cell c against the given τ
// array: H over { min τ(co-members of S) : S ∋ c }. Returns the new value
// and the number of s-clique visits.
func computeTau(inst nucleus.Instance, c int32, tau []int32, sc *sweepScratch) (int32, int64) {
	vals := sc.vals[:0]
	var visits int64
	inst.VisitSCliques(c, func(others []int32) bool {
		rho := int32(math.MaxInt32)
		for _, d := range others {
			if tau[d] < rho {
				rho = tau[d]
			}
		}
		vals = append(vals, rho)
		visits++
		return true
	})
	sc.vals = vals
	return hindex.LinearInto(vals, &sc.cnt), visits
}

// computeTauAtomic is computeTau with atomic reads, for concurrent And
// sweeps where other workers may be lowering τ entries. Stale (higher)
// reads are benign: τ stays an upper bound of κ (Theorem 1) and later
// sweeps repair them.
func computeTauAtomic(inst nucleus.Instance, c int32, tau []int32, sc *sweepScratch) (int32, int64) {
	vals := sc.vals[:0]
	var visits int64
	inst.VisitSCliques(c, func(others []int32) bool {
		rho := int32(math.MaxInt32)
		for _, d := range others {
			if v := atomic.LoadInt32(&tau[d]); v < rho {
				rho = v
			}
		}
		vals = append(vals, rho)
		visits++
		return true
	})
	sc.vals = vals
	return hindex.LinearInto(vals, &sc.cnt), visits
}

// computeTauPreserve is computeTau with the §4.4 early-exit: once cur
// s-cliques with ρ >= cur have been seen, the current index is preserved
// and enumeration stops. Monotonicity makes this sound — the h-index of
// the full ρ list cannot exceed cur, and cur supporting s-cliques (each
// with ρ >= cur) certify that it equals cur. Cells already at zero skip
// enumeration entirely.
func computeTauPreserve(inst nucleus.Instance, c int32, tau []int32, sc *sweepScratch, cur int32, par bool) (int32, int64) {
	if cur <= 0 {
		return 0, 0
	}
	vals := sc.vals[:0]
	var visits int64
	support := int32(0)
	preserved := false
	inst.VisitSCliques(c, func(others []int32) bool {
		rho := int32(math.MaxInt32)
		for _, d := range others {
			var v int32
			if par {
				v = atomic.LoadInt32(&tau[d])
			} else {
				v = tau[d]
			}
			if v < rho {
				rho = v
			}
		}
		visits++
		if rho >= cur {
			support++
			if support >= cur {
				preserved = true
				return false
			}
		}
		vals = append(vals, rho)
		return true
	})
	sc.vals = vals
	if preserved {
		return cur, visits
	}
	return hindex.LinearInto(vals, &sc.cnt), visits
}

func loadTau(par bool, tau []int32, c int32) int32 {
	if par {
		return atomic.LoadInt32(&tau[c])
	}
	return tau[c]
}

func storeTau(par bool, tau []int32, c int32, v int32) {
	if par {
		atomic.StoreInt32(&tau[c], v)
		return
	}
	tau[c] = v
}

// initialTau builds the starting τ array: the s-degrees, or the caller's
// warm start clamped to them.
func initialTau(inst nucleus.Instance, opts Options) []int32 {
	tau := inst.Degrees()
	if opts.InitialTau == nil {
		return tau
	}
	if len(opts.InitialTau) != len(tau) {
		panic("localhi: InitialTau length mismatch")
	}
	for i, v := range opts.InitialTau {
		if v < tau[i] {
			tau[i] = v
		}
	}
	return tau
}

// sweepCells resolves the cell visit order for a run.
func sweepCells(n int, opts Options) []int32 {
	if opts.Subset != nil {
		return opts.Subset
	}
	if opts.Order != nil {
		return opts.Order
	}
	cells := make([]int32, n)
	for i := range cells {
		cells[i] = int32(i)
	}
	return cells
}

// parallelFor executes body over [0,n) split across opts.threads() workers,
// accumulating the two int64 outputs of each body invocation into updates
// and visits. Each worker owns one sweepScratch for its whole lifetime, so
// per-cell computations allocate nothing once the scratch has grown to the
// largest row. Sequential when a single thread is requested.
func parallelFor(n int, opts Options, body func(lo, hi int, sc *sweepScratch) (int64, int64), updates, visits *int64) {
	t := opts.threads()
	if t > n {
		t = n
	}
	if t <= 1 {
		sc := &sweepScratch{vals: make([]int32, 0, 64)}
		u, v := body(0, n, sc)
		*updates += u
		*visits += v
		return
	}
	var wg sync.WaitGroup
	var uTotal, vTotal int64
	switch opts.Scheduling {
	case Static:
		per := (n + t - 1) / t
		for w := 0; w < t; w++ {
			lo := w * per
			hi := lo + per
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				sc := &sweepScratch{vals: make([]int32, 0, 64)}
				u, v := body(lo, hi, sc)
				atomic.AddInt64(&uTotal, u)
				atomic.AddInt64(&vTotal, v)
			}(lo, hi)
		}
	default: // Dynamic
		chunk := opts.chunk()
		var cursor int64
		for w := 0; w < t; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := &sweepScratch{vals: make([]int32, 0, 64)}
				var u, v int64
				for { //nucleus:lint-ignore ctxstop steal loop is bounded by the shared cursor reaching n; Stop is honored between sweeps where partial τ stays consistent
					lo := int(atomic.AddInt64(&cursor, int64(chunk))) - chunk
					if lo >= n {
						break
					}
					hi := lo + chunk
					if hi > n {
						hi = n
					}
					du, dv := body(lo, hi, sc)
					u += du
					v += dv
				}
				atomic.AddInt64(&uTotal, u)
				atomic.AddInt64(&vTotal, v)
			}()
		}
	}
	wg.Wait()
	*updates += uTotal
	*visits += vTotal
}

// DefaultThreads returns a sensible worker count for parallel runs.
func DefaultThreads() int { return runtime.GOMAXPROCS(0) }
