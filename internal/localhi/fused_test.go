package localhi

import (
	"fmt"
	"math/rand"
	"testing"

	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
)

// fusedCases pairs an on-the-fly instance (generic closure path) with its
// indexed twin (fused flat path) over the same graph.
func fusedCases(t *testing.T) []struct {
	name    string
	generic nucleus.Instance
	indexed nucleus.Instance
} {
	t.Helper()
	gs := []*graph.Graph{
		graph.Figure2(),
		graph.Complete(7),
		graph.PlantedCommunities(3, 14, 0.5, 40, 11),
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 3; i++ {
		n := 40 + rng.Intn(40)
		gs = append(gs, graph.GnM(n, 4*n, rng.Int63()))
	}
	var out []struct {
		name    string
		generic nucleus.Instance
		indexed nucleus.Instance
	}
	for gi, g := range gs {
		out = append(out, struct {
			name    string
			generic nucleus.Instance
			indexed nucleus.Instance
		}{fmt.Sprintf("truss/g%d", gi), nucleus.NewTruss(g), nucleus.NewIndexedTruss(g, 2)})
		out = append(out, struct {
			name    string
			generic nucleus.Instance
			indexed nucleus.Instance
		}{fmt.Sprintf("n34/g%d", gi), nucleus.NewN34(g), nucleus.NewIndexedN34(g, 2)})
	}
	return out
}

// TestFusedKernelMatchesGeneric demands that the fused flat path computes
// exactly the generic path's results — τ, convergence, and the WorkVisits
// cost accounting — across the option space (Snd/And × Preserve ×
// Notification × threads × bounded sweeps).
func TestFusedKernelMatchesGeneric(t *testing.T) {
	optSets := []Options{
		{},
		{Preserve: true},
		{Notification: true},
		{Notification: true, Preserve: true},
		{Threads: 4, Scheduling: Static},
		{Threads: 4, Notification: true, Preserve: true},
		{MaxSweeps: 2},
	}
	for _, tc := range fusedCases(t) {
		if _, ok := tc.indexed.(nucleus.FlatIncidence); !ok {
			t.Fatalf("%s: indexed instance does not expose flat incidence", tc.name)
		}
		for oi, opts := range optSets {
			for algName, run := range map[string]func(nucleus.Instance, Options) *Result{
				"snd": Snd, "and": And,
			} {
				want := run(tc.generic, opts)
				got := run(tc.indexed, opts)
				if len(want.Tau) != len(got.Tau) {
					t.Fatalf("%s %s opts %d: τ lengths differ", tc.name, algName, oi)
				}
				for c := range want.Tau {
					if want.Tau[c] != got.Tau[c] {
						t.Fatalf("%s %s opts %d cell %d: τ %d vs %d",
							tc.name, algName, oi, c, want.Tau[c], got.Tau[c])
					}
				}
				if want.Converged != got.Converged {
					t.Fatalf("%s %s opts %d: converged %v vs %v",
						tc.name, algName, oi, want.Converged, got.Converged)
				}
				// Deterministic runs must also agree on the visit count —
				// the fused kernel changes the cost of a visit, never the
				// set of visits. (Parallel And is non-deterministic, and
				// notification skips depend on timing; compare only the
				// sequential, notification-free configurations.)
				if opts.Threads <= 1 && !opts.Notification && algName == "snd" {
					if want.WorkVisits != got.WorkVisits {
						t.Fatalf("%s %s opts %d: WorkVisits %d vs %d",
							tc.name, algName, oi, want.WorkVisits, got.WorkVisits)
					}
				}
			}
		}
	}
}

// TestFusedSubsetAndWarmStart covers the query-driven Subset path and the
// InitialTau warm start over the fused kernel.
func TestFusedSubsetAndWarmStart(t *testing.T) {
	g := graph.PlantedCommunities(3, 14, 0.5, 40, 11)
	generic, indexed := nucleus.NewTruss(g), nucleus.NewIndexedTruss(g, 2)

	subset := []int32{0, 1, 2, 10, 11, 12}
	w := And(generic, Options{Subset: subset, Notification: true})
	got := And(indexed, Options{Subset: subset, Notification: true})
	for c := range w.Tau {
		if w.Tau[c] != got.Tau[c] {
			t.Fatalf("subset cell %d: τ %d vs %d", c, w.Tau[c], got.Tau[c])
		}
	}

	exact := Snd(generic, Options{}).Tau
	warm := Snd(indexed, Options{InitialTau: exact})
	for c := range exact {
		if warm.Tau[c] != exact[c] {
			t.Fatalf("warm start cell %d: τ %d vs κ %d", c, warm.Tau[c], exact[c])
		}
	}
	if warm.Sweeps > 2 {
		t.Fatalf("warm start from κ took %d sweeps, want <= 2", warm.Sweeps)
	}
}

// TestFusedKernelZeroAlloc proves the steady-state claim: once the
// per-worker scratch has grown to the largest row, a full fused sweep over
// every cell performs zero heap allocations.
func TestFusedKernelZeroAlloc(t *testing.T) {
	g := graph.PlantedCommunities(3, 14, 0.5, 40, 11)
	inst := nucleus.NewIndexedTruss(g, 1)
	fa, ok := flatOf(inst)
	if !ok {
		t.Fatal("IndexedTruss does not expose flat incidence")
	}
	tau := inst.Degrees()
	sc := &sweepScratch{}
	n := int32(inst.NumCells())
	sweep := func(preserve bool) {
		for c := int32(0); c < n; c++ {
			computeTauFlat(fa, c, tau, sc, tau[c], preserve, false)
		}
	}
	sweep(false) // warm the scratch to the largest row
	for _, preserve := range []bool{false, true} {
		if allocs := testing.AllocsPerRun(10, func() { sweep(preserve) }); allocs != 0 {
			t.Fatalf("preserve=%v: fused sweep allocated %.1f times per run, want 0", preserve, allocs)
		}
	}
}

// TestFlatOfRejectsNonFlat pins the dispatch predicate.
func TestFlatOfRejectsNonFlat(t *testing.T) {
	g := graph.Complete(5)
	if _, ok := flatOf(nucleus.NewTruss(g)); ok {
		t.Fatal("on-the-fly Truss must not take the fused path")
	}
	if _, ok := flatOf(nucleus.NewCore(g)); ok {
		t.Fatal("Core must not take the fused path")
	}
	if fa, ok := flatOf(nucleus.NewIndexedTruss(g, 1)); !ok || fa.co != 2 {
		t.Fatalf("IndexedTruss: flatOf = %+v, %v; want co=2, true", fa, ok)
	}
}
