package localhi

import (
	"testing"

	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
	"nucleus/internal/peel"
)

// TestAndNotificationRespectsSweepBudget is the regression test for the
// certification-sweep budget overrun: And with Notification used to run
// the certifying sweep (and the subsequent repair loop) without consulting
// MaxSweeps, so a bounded run could report Sweeps > MaxSweeps. Every
// bounded run must stay within budget and still return a valid
// approximation (τ ≥ κ pointwise).
func TestAndNotificationRespectsSweepBudget(t *testing.T) {
	graphs := map[string]*graph.Graph{
		// K6: τ starts at the degrees = κ, so the very first sweep is the
		// no-update plateau and the old code immediately overran a budget
		// of 1 with the certification sweep.
		"k6":  graph.Complete(6),
		"plc": graph.PowerLawCluster(300, 4, 0.5, 23),
		"gnm": graph.GnM(200, 900, 11),
	}
	for name, g := range graphs {
		for _, dec := range []string{"core", "truss"} {
			var inst nucleus.Instance
			if dec == "core" {
				inst = nucleus.NewCore(g)
			} else {
				inst = nucleus.NewTruss(g)
			}
			kappa := peel.Run(inst).Kappa
			full := And(inst, Options{Notification: true})
			if !full.Converged {
				t.Fatalf("%s/%s: unbounded run did not converge", name, dec)
			}
			for budget := 1; budget <= full.Sweeps+2; budget++ {
				for _, threads := range []int{1, 4} {
					res := And(inst, Options{
						Notification: true,
						MaxSweeps:    budget,
						Threads:      threads,
					})
					if res.Sweeps > budget {
						t.Fatalf("%s/%s budget=%d threads=%d: %d sweeps exceed the budget",
							name, dec, budget, threads, res.Sweeps)
					}
					if res.Converged && res.Sweeps > budget {
						t.Fatalf("%s/%s budget=%d: converged beyond budget", name, dec, budget)
					}
					for c, k := range kappa {
						if res.Tau[c] < k {
							t.Fatalf("%s/%s budget=%d: τ(%d)=%d below κ=%d — not a valid approximation",
								name, dec, budget, c, res.Tau[c], k)
						}
					}
				}
			}
		}
	}
}

// TestAndBudgetedPreserveStaysBounded covers the warm-start configuration
// (InitialTau + Preserve + Notification) under a budget, the combination
// the serving layer uses for reconvergence after edits.
func TestAndBudgetedPreserveStaysBounded(t *testing.T) {
	g := graph.PowerLawCluster(400, 5, 0.4, 31)
	inst := nucleus.NewCore(g)
	kappa := peel.Run(inst).Kappa
	seed := make([]int32, len(kappa))
	for i, k := range kappa {
		seed[i] = k + 3
	}
	for budget := 1; budget <= 4; budget++ {
		res := And(inst, Options{
			Notification: true,
			Preserve:     true,
			InitialTau:   seed,
			MaxSweeps:    budget,
		})
		if res.Sweeps > budget {
			t.Fatalf("budget=%d: %d sweeps", budget, res.Sweeps)
		}
		for c, k := range kappa {
			if res.Tau[c] < k {
				t.Fatalf("budget=%d: τ(%d)=%d below κ=%d", budget, c, res.Tau[c], k)
			}
		}
	}
}
