package localhi

import (
	"testing"

	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
	"nucleus/internal/peel"
)

func benchTrussInstance() nucleus.Instance {
	return nucleus.NewTruss(graph.PlantedCommunities(20, 80, 0.35, 1500, 42))
}

func BenchmarkSndTruss(b *testing.B) {
	inst := benchTrussInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Snd(inst, Options{})
	}
}

func BenchmarkAndTruss(b *testing.B) {
	inst := benchTrussInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		And(inst, Options{})
	}
}

func BenchmarkAndTrussNotification(b *testing.B) {
	inst := benchTrussInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		And(inst, Options{Notification: true})
	}
}

func BenchmarkAndTrussNotifPreserve(b *testing.B) {
	inst := benchTrussInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		And(inst, Options{Notification: true, Preserve: true})
	}
}

func BenchmarkPeelTruss(b *testing.B) {
	inst := benchTrussInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		peel.Run(inst)
	}
}

func BenchmarkAndBudget3(b *testing.B) {
	inst := benchTrussInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		And(inst, Options{MaxSweeps: 3})
	}
}
