package localhi

import (
	"testing"

	"nucleus/internal/dataset"
	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
	"nucleus/internal/peel"
)

// benchGraph is the bundled truss benchmark dataset: the "fb" analogue of
// the paper's Table 3 (planted communities; triangle- and K4-rich).
func benchGraph() *graph.Graph { return dataset.Get("fb").Graph() }

func benchTrussInstance() nucleus.Instance { return nucleus.NewTruss(benchGraph()) }

func benchIndexedTrussInstance() nucleus.Instance {
	return nucleus.NewIndexedTruss(benchGraph(), 1)
}

// reportWork attaches the s-clique visit count as a custom benchmark
// metric, so the benchsweep artifact can compare the paid work across
// kernel variants. The timer stops before anything else: b.Helper() and
// b.ReportMetric() both allocate, and at small -benchtime (1x) those
// framework allocations would otherwise leak into allocs/op and trip
// the zero-allocation gate.
func reportWork(b *testing.B, visits int64) {
	b.StopTimer()
	b.Helper()
	b.ReportMetric(float64(visits)/float64(b.N), "work-visits/op")
}

// reportConvergence attaches the per-run sweep and τ-decrement counts —
// the convergence metrics behind the anytime progress numbers quoted in
// docs/PERFORMANCE.md, reproducible via cmd/benchsweep.
func reportConvergence(b *testing.B, sweeps int, updates int64) {
	b.StopTimer() // idempotent; see reportWork
	b.Helper()
	b.ReportMetric(float64(sweeps)/float64(b.N), "sweeps/op")
	b.ReportMetric(float64(updates)/float64(b.N), "updates/op")
}

func benchSnd(b *testing.B, inst nucleus.Instance, opts Options) {
	b.Helper()
	var visits, updates int64
	var sweeps int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Snd(inst, opts)
		visits += res.WorkVisits
		sweeps += res.Sweeps
		updates += res.Updates
	}
	reportWork(b, visits)
	reportConvergence(b, sweeps, updates)
}

func benchAnd(b *testing.B, inst nucleus.Instance, opts Options) {
	b.Helper()
	var visits, updates int64
	var sweeps int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := And(inst, opts)
		visits += res.WorkVisits
		sweeps += res.Sweeps
		updates += res.Updates
	}
	reportWork(b, visits)
	reportConvergence(b, sweeps, updates)
}

// SND on the on-the-fly instance (sorted-merge intersection per triangle
// per sweep): the baseline the flat index is measured against.
func BenchmarkSndTruss(b *testing.B) { benchSnd(b, benchTrussInstance(), Options{}) }

// SND on the flat-indexed instance (fused array-scan kernel).
func BenchmarkSndTrussIndexed(b *testing.B) { benchSnd(b, benchIndexedTrussInstance(), Options{}) }

func BenchmarkAndTruss(b *testing.B) { benchAnd(b, benchTrussInstance(), Options{}) }

func BenchmarkAndTrussIndexed(b *testing.B) { benchAnd(b, benchIndexedTrussInstance(), Options{}) }

func BenchmarkAndTrussNotification(b *testing.B) {
	benchAnd(b, benchTrussInstance(), Options{Notification: true})
}

func BenchmarkAndTrussNotifPreserve(b *testing.B) {
	benchAnd(b, benchTrussInstance(), Options{Notification: true, Preserve: true})
}

func BenchmarkAndTrussNotifPreserveIndexed(b *testing.B) {
	benchAnd(b, benchIndexedTrussInstance(), Options{Notification: true, Preserve: true})
}

func BenchmarkPeelTruss(b *testing.B) {
	inst := benchTrussInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		peel.Run(inst)
	}
}

func BenchmarkPeelTrussIndexed(b *testing.B) {
	inst := benchIndexedTrussInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		peel.Run(inst)
	}
}

func BenchmarkAndBudget3(b *testing.B) {
	inst := benchTrussInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		And(inst, Options{MaxSweeps: 3})
	}
}

// BenchmarkSweepKernelFused measures one steady-state fused sweep over
// every cell: the scratch is warmed before the timer starts, so allocs/op
// must be exactly zero (cmd/benchsweep fails CI otherwise).
func BenchmarkSweepKernelFused(b *testing.B) {
	inst := nucleus.NewIndexedTruss(benchGraph(), 1)
	fa, ok := flatOf(inst)
	if !ok {
		b.Fatal("IndexedTruss does not expose flat incidence")
	}
	tau := inst.Degrees()
	sc := &sweepScratch{}
	n := int32(inst.NumCells())
	var visits int64
	for c := int32(0); c < n; c++ { // warm the scratch
		computeTauFlat(fa, c, tau, sc, tau[c], false, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := int32(0); c < n; c++ {
			_, v := computeTauFlat(fa, c, tau, sc, tau[c], false, false)
			visits += v
		}
	}
	reportWork(b, visits)
}

// BenchmarkSweepKernelGeneric is the same single sweep through the generic
// closure path on the on-the-fly instance, for comparison.
func BenchmarkSweepKernelGeneric(b *testing.B) {
	inst := benchTrussInstance()
	tau := inst.Degrees()
	sc := &sweepScratch{}
	n := int32(inst.NumCells())
	var visits int64
	for c := int32(0); c < n; c++ {
		computeTau(inst, c, tau, sc)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := int32(0); c < n; c++ {
			_, v := computeTau(inst, c, tau, sc)
			visits += v
		}
	}
	reportWork(b, visits)
}
