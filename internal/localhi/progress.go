package localhi

import (
	"sync"
	"sync/atomic"
	"time"
)

// The anytime progress publisher: Theorem 1 makes every intermediate τ a
// valid approximation (τ ≥ κ pointwise, non-increasing per sweep), so a
// running decomposition has useful partial results long before it
// converges. Progress turns that property into something a serving layer
// can stream: after each sweep it takes a copy-on-write snapshot of τ
// together with ground-truth-free convergence metrics (fraction of cells
// unchanged, update rate, max τ) and hands immutable snapshots to any
// number of concurrent readers — pollers via Latest, streamers via
// Subscribe — without ever blocking the sweep workers or touching the
// zero-allocation fused kernels (publishing happens between sweeps, on
// the coordinating goroutine).

// Snapshot is one immutable progress observation, taken after a sweep.
// The exact gap τ−κ is unobservable mid-run (κ is the limit), so the
// snapshot carries the paper's §1.2 ground-truth-free signals instead:
// the update rate decays to zero as τ approaches κ, and FractionStable
// is exactly 1 on the sweep that certifies convergence.
type Snapshot struct {
	// Sweep is the 1-based sweep index this snapshot was taken after.
	Sweep int
	// Tau is a private copy of the τ array; safe to retain and read.
	Tau []int32
	// MaxTau is the largest τ value. It upper-bounds the largest κ and is
	// non-increasing across snapshots.
	MaxTau int32
	// TauSum is the sum of all τ values: a scalar, monotonically
	// non-increasing progress measure (it stops moving exactly at κ).
	TauSum int64
	// Updates is the number of τ decrements applied in this sweep.
	Updates int64
	// UpdateRate is Updates divided by the cell count: the fraction of
	// cells still changing.
	UpdateRate float64
	// FractionStable is 1 − UpdateRate: the fraction of cells whose τ the
	// sweep left unchanged (exactly 1.0 on a certifying sweep).
	FractionStable float64
	// Converged is true once τ = κ has been certified; only possible on a
	// Final snapshot.
	Converged bool
	// Final marks the run's last snapshot (converged, budget-exhausted,
	// or stopped).
	Final bool
	// Elapsed is the wall time since the run started.
	Elapsed time.Duration
}

// Progress publishes per-sweep snapshots of a running decomposition. The
// zero value is not usable; construct with NewProgress and set it on
// Options.Progress. One Progress observes one run; do not share across
// runs.
type Progress struct {
	every int
	start time.Time

	latest    atomic.Pointer[Snapshot]
	published atomic.Int64

	mu   sync.Mutex
	subs map[chan *Snapshot]struct{}

	done       chan struct{}
	finishOnce sync.Once
}

// NewProgress constructs a publisher that snapshots every k-th sweep
// (k <= 1 means every sweep). The final sweep is always published
// regardless of k.
func NewProgress(every int) *Progress {
	if every < 1 {
		every = 1
	}
	return &Progress{
		every: every,
		start: time.Now(),
		subs:  make(map[chan *Snapshot]struct{}),
		done:  make(chan struct{}),
	}
}

// Latest returns the most recent snapshot, or nil before the first sweep
// completes.
func (p *Progress) Latest() *Snapshot { return p.latest.Load() }

// Done returns a channel closed when the observed run has finished and
// its Final snapshot is available via Latest.
func (p *Progress) Done() <-chan struct{} { return p.done }

// Published returns how many snapshots have been published so far.
func (p *Progress) Published() int64 { return p.published.Load() }

// Subscribe registers a snapshot channel with the given buffer capacity
// (minimum 1) and returns it with a cancel function. Delivery is
// non-blocking with drop-oldest semantics: a reader that falls behind
// skips intermediate sweeps but always observes the freshest state, and
// the channel is closed after the Final snapshot is delivered. Cancel is
// idempotent and must be called when the reader stops early.
func (p *Progress) Subscribe(buffer int) (<-chan *Snapshot, func()) {
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan *Snapshot, buffer)
	p.mu.Lock()
	select {
	case <-p.done:
		// The run already finished: deliver the final snapshot (if any)
		// and hand back an already-closed channel.
		if s := p.latest.Load(); s != nil {
			ch <- s
		}
		close(ch)
	default:
		p.subs[ch] = struct{}{}
	}
	p.mu.Unlock()
	return ch, func() {
		p.mu.Lock()
		if _, ok := p.subs[ch]; ok {
			delete(p.subs, ch)
			close(ch)
		}
		p.mu.Unlock()
	}
}

// observe builds and publishes the snapshot for a completed sweep.
// final forces publication regardless of the every-k filter.
func (p *Progress) observe(sweep int, tau []int32, updates int64, converged, final bool) {
	if !final && p.every > 1 && sweep%p.every != 0 {
		return
	}
	s := &Snapshot{
		Sweep:     sweep,
		Tau:       append([]int32(nil), tau...),
		Updates:   updates,
		Converged: converged,
		Final:     final,
		Elapsed:   time.Since(p.start),
	}
	for _, v := range s.Tau {
		if v > s.MaxTau {
			s.MaxTau = v
		}
		s.TauSum += int64(v)
	}
	if n := len(s.Tau); n > 0 {
		s.UpdateRate = float64(updates) / float64(n)
	}
	s.FractionStable = 1 - s.UpdateRate
	p.latest.Store(s)
	p.published.Add(1)

	p.mu.Lock()
	for ch := range p.subs {
		select {
		case ch <- s:
		default:
			// Slow reader: drop its oldest pending snapshot and retry, so
			// the channel always holds the freshest state and the sweep
			// never blocks on a subscriber.
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- s:
			default:
			}
		}
		if final {
			delete(p.subs, ch)
			close(ch)
		}
	}
	if final {
		// Close done inside the same critical section that delivered the
		// final snapshot: Subscribe checks done under this mutex, so no
		// subscriber can register in a window where the final delivery
		// already happened but done still looks open (it would hang
		// forever — no future observe will run).
		close(p.done)
	}
	p.mu.Unlock()
}

// finish publishes the run's Final snapshot and closes Done. Idempotent:
// only the first call publishes (the engines call it on every exit path,
// and a serving layer may call it again defensively after a panic).
func (p *Progress) finish(res *Result) {
	p.finishOnce.Do(func() {
		var updates int64
		if n := len(res.SweepUpdates); n > 0 {
			updates = res.SweepUpdates[n-1]
		}
		// The final observe also closes done, atomically with the last
		// delivery (see observe).
		p.observe(res.Sweeps, res.Tau, updates, res.Converged, true)
	})
}

// Abort ends publication without a Final snapshot: subscriber channels
// are closed and Done is released. For the embedding layer's cleanup
// when the observed run died (e.g. panicked) before calling finish;
// a no-op on an already-finished publisher.
func (p *Progress) Abort() {
	p.finishOnce.Do(func() {
		p.mu.Lock()
		for ch := range p.subs {
			delete(p.subs, ch)
			close(ch)
		}
		close(p.done) // under mu, for the same Subscribe race as observe
		p.mu.Unlock()
	})
}
