package localhi

import (
	"sync/atomic"
	"testing"

	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
	"nucleus/internal/peel"
)

// collectSnapshots runs alg with a Progress attached and returns every
// published snapshot in order. The subscriber buffer is sized far beyond
// any test run's sweep count, so the drop-oldest policy never fires and
// the stream is complete.
func collectSnapshots(t *testing.T, alg func(nucleus.Instance, Options) *Result,
	inst nucleus.Instance, opts Options) ([]*Snapshot, *Result) {
	t.Helper()
	p := NewProgress(1)
	opts.Progress = p
	ch, cancel := p.Subscribe(4096)
	defer cancel()
	res := alg(inst, opts)
	var snaps []*Snapshot
	for s := range ch {
		snaps = append(snaps, s)
	}
	return snaps, res
}

// TestProgressSnapshotsMonotone is the anytime property test: across
// Snd and And, on both the generic closure path and the fused flat path,
// the streamed τ snapshots are pointwise monotonically non-increasing,
// max τ never rises, and the Final snapshot of a converged run equals the
// exact κ from peeling.
func TestProgressSnapshotsMonotone(t *testing.T) {
	for _, tc := range fusedCases(t) {
		exact := peel.Run(tc.generic)
		for pathName, inst := range map[string]nucleus.Instance{
			"generic": tc.generic, "indexed": tc.indexed,
		} {
			for algName, run := range map[string]func(nucleus.Instance, Options) *Result{
				"snd": Snd, "and": And,
			} {
				snaps, res := collectSnapshots(t, run, inst, Options{})
				if len(snaps) == 0 {
					t.Fatalf("%s %s %s: no snapshots published", tc.name, pathName, algName)
				}
				for i, s := range snaps {
					if len(s.Tau) != inst.NumCells() {
						t.Fatalf("%s %s %s snap %d: %d cells, want %d",
							tc.name, pathName, algName, i, len(s.Tau), inst.NumCells())
					}
					if s.UpdateRate < 0 || s.UpdateRate > 1 || s.FractionStable < 0 || s.FractionStable > 1 {
						t.Fatalf("%s %s %s snap %d: rates out of range: %+v",
							tc.name, pathName, algName, i, s)
					}
					if i == 0 {
						continue
					}
					prev := snaps[i-1]
					if s.Sweep < prev.Sweep {
						t.Fatalf("%s %s %s: sweep went backwards: %d after %d",
							tc.name, pathName, algName, s.Sweep, prev.Sweep)
					}
					if s.MaxTau > prev.MaxTau {
						t.Fatalf("%s %s %s snap %d: max τ rose %d → %d",
							tc.name, pathName, algName, i, prev.MaxTau, s.MaxTau)
					}
					if s.TauSum > prev.TauSum {
						t.Fatalf("%s %s %s snap %d: τ sum rose %d → %d",
							tc.name, pathName, algName, i, prev.TauSum, s.TauSum)
					}
					for c := range s.Tau {
						if s.Tau[c] > prev.Tau[c] {
							t.Fatalf("%s %s %s snap %d cell %d: τ rose %d → %d",
								tc.name, pathName, algName, i, c, prev.Tau[c], s.Tau[c])
						}
					}
				}
				final := snaps[len(snaps)-1]
				if !final.Final {
					t.Fatalf("%s %s %s: last snapshot not marked Final", tc.name, pathName, algName)
				}
				if !final.Converged || !res.Converged {
					t.Fatalf("%s %s %s: unbudgeted run did not converge", tc.name, pathName, algName)
				}
				for c := range final.Tau {
					if final.Tau[c] != exact.Kappa[c] {
						t.Fatalf("%s %s %s cell %d: final τ %d != κ %d",
							tc.name, pathName, algName, c, final.Tau[c], exact.Kappa[c])
					}
				}
				// Every snapshot upper-bounds κ pointwise (Theorem 1) — the
				// guarantee that makes partial results servable at all.
				for i, s := range snaps {
					for c := range s.Tau {
						if s.Tau[c] < exact.Kappa[c] {
							t.Fatalf("%s %s %s snap %d cell %d: τ %d < κ %d",
								tc.name, pathName, algName, i, c, s.Tau[c], exact.Kappa[c])
						}
					}
				}
			}
		}
	}
}

// TestProgressSnapshotsAreCopies pins the copy-on-write contract: a
// snapshot's τ array is private, so mutating one (as a buggy consumer
// might) cannot corrupt the run or other snapshots.
func TestProgressSnapshotsAreCopies(t *testing.T) {
	inst := nucleus.NewTruss(graph.PlantedCommunities(3, 10, 0.6, 20, 7))
	p := NewProgress(1)
	ch, cancel := p.Subscribe(4096)
	defer cancel()
	exact := peel.Run(inst)
	Snd(inst, Options{Progress: p, OnSweep: func(sweep int, tau []int32) {
		// Vandalize the freshest snapshot mid-run; the live τ must not see it.
		if s := p.Latest(); s != nil {
			for i := range s.Tau {
				s.Tau[i] = -999
			}
		}
	}})
	var final *Snapshot
	for s := range ch {
		final = s
	}
	for c, k := range exact.Kappa {
		if final.Tau[c] != k {
			t.Fatalf("cell %d: final τ %d != κ %d after snapshot vandalism", c, final.Tau[c], k)
		}
	}
}

// TestProgressEveryK checks the sweep-sampling filter: only every k-th
// sweep publishes, but the Final snapshot always does.
func TestProgressEveryK(t *testing.T) {
	inst := nucleus.NewCore(pathGraph(41))
	p := NewProgress(5)
	ch, cancel := p.Subscribe(4096)
	defer cancel()
	res := Snd(inst, Options{Progress: p})
	if res.Sweeps < 10 {
		t.Fatalf("path graph converged in %d sweeps; too fast to exercise sampling", res.Sweeps)
	}
	var snaps []*Snapshot
	for s := range ch {
		snaps = append(snaps, s)
	}
	for _, s := range snaps[:len(snaps)-1] {
		if s.Sweep%5 != 0 {
			t.Fatalf("intermediate snapshot at sweep %d violates every=5", s.Sweep)
		}
	}
	final := snaps[len(snaps)-1]
	if !final.Final || final.Sweep != res.Sweeps {
		t.Fatalf("final snapshot = sweep %d final=%v, want sweep %d", final.Sweep, final.Final, res.Sweeps)
	}
}

// TestStopEndsRunEarly exercises cooperative cancellation on both
// algorithms: the run halts at the next sweep boundary, reports Stopped
// without claiming convergence, and the partial τ still upper-bounds κ.
func TestStopEndsRunEarly(t *testing.T) {
	g := pathGraph(201) // Snd needs ~100 sweeps; And (sequential, in order) is fast but still multi-sweep
	inst := nucleus.NewCore(g)
	exact := peel.Run(inst)
	for algName, run := range map[string]func(nucleus.Instance, Options) *Result{
		"snd": Snd, "and": And,
	} {
		// Stop on the very first poll. Both engines consult Stop only once
		// an intermediate τ exists, so the run still performs >= 1 sweep.
		var polls atomic.Int64
		res := run(inst, Options{Stop: func() bool {
			polls.Add(1)
			return true
		}})
		if !res.Stopped {
			t.Fatalf("%s: Stopped not set", algName)
		}
		if res.Converged {
			t.Fatalf("%s: stopped run claims convergence", algName)
		}
		if res.Sweeps < 1 || res.Sweeps > 2 {
			t.Fatalf("%s: ran %d sweeps under an immediate stop", algName, res.Sweeps)
		}
		if polls.Load() == 0 {
			t.Fatalf("%s: Stop never polled", algName)
		}
		for c := range res.Tau {
			if res.Tau[c] < exact.Kappa[c] {
				t.Fatalf("%s cell %d: stopped τ %d < κ %d", algName, c, res.Tau[c], exact.Kappa[c])
			}
		}
	}
}

// TestLateSubscribeSeesFinal pins the subscribe-after-finish path: a
// reader attaching to a completed run still receives the Final snapshot
// and a closed channel.
func TestLateSubscribeSeesFinal(t *testing.T) {
	inst := nucleus.NewCore(pathGraph(21))
	p := NewProgress(1)
	res := Snd(inst, Options{Progress: p})
	<-p.Done()
	ch, cancel := p.Subscribe(1)
	defer cancel()
	s, ok := <-ch
	if !ok || !s.Final || s.Sweep != res.Sweeps {
		t.Fatalf("late subscriber got %+v ok=%v, want final sweep %d", s, ok, res.Sweeps)
	}
	if _, ok := <-ch; ok {
		t.Fatal("late subscriber channel not closed after final snapshot")
	}
}

// pathGraph builds the n-vertex path 0–1–…–(n−1): the slowest-converging
// core instance per cell count for Snd, since the degree-1 endpoints'
// influence travels one hop per synchronous sweep.
func pathGraph(n int) *graph.Graph {
	edges := make([][2]uint32, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, [2]uint32{uint32(i), uint32(i + 1)})
	}
	return graph.Build(n, edges)
}
