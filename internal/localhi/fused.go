package localhi

import (
	"math"
	"sync/atomic"

	"nucleus/internal/hindex"
	"nucleus/internal/nucleus"
)

// The fused sweep kernel: when an instance exposes its s-clique incidence
// as flat CSR arrays (nucleus.FlatIncidence — the IndexedTruss/IndexedN34
// instances), the per-cell update runs as a pure array scan with no
// closure dispatch, no adjacency intersections, and no per-cell
// allocations: ρ-gather, clamped counting h-index into per-worker
// reusable scratch, and the §4.4 Preserve early-exit are fused into one
// loop. The generic closure-based path below remains the correctness
// reference for arbitrary instances.

// sweepScratch is the per-worker scratch of a sweep: the gathered ρ list
// and the counting array of the linear h-index. Both grow on demand and
// are reused across cells and sweeps, so the steady state allocates
// nothing.
type sweepScratch struct {
	vals []int32
	cnt  []int32
}

// flatArrays caches the FlatIncidenceArrays of an instance for the
// duration of a run.
type flatArrays struct {
	offs []int64
	mem  []int32
	co   int64
}

// flatOf extracts the flat incidence arrays if the instance has them.
func flatOf(inst nucleus.Instance) (flatArrays, bool) {
	f, ok := inst.(nucleus.FlatIncidence)
	if !ok {
		return flatArrays{}, false
	}
	offs, mem, co := f.FlatIncidenceArrays()
	if co < 1 || len(offs) == 0 {
		return flatArrays{}, false
	}
	return flatArrays{offs: offs, mem: mem, co: int64(co)}, true
}

// computeTauFlat evaluates the update operator for cell c against tau by
// scanning the cell's flat incidence row. It fuses the three generic
// variants: preserve enables the §4.4 early-exit against cur (the cell's
// current index), and par uses atomic τ reads for concurrent asynchronous
// sweeps (stale higher reads are benign, exactly as in computeTauAtomic).
// Returns the new index and the number of s-clique visits.
//
//nucleus:noalloc
func computeTauFlat(fa flatArrays, c int32, tau []int32, sc *sweepScratch, cur int32, preserve, par bool) (int32, int64) {
	if preserve && cur <= 0 {
		return 0, 0
	}
	mem := fa.mem
	vals := sc.vals[:0]
	var visits int64
	support := int32(0)
	for p, end := fa.offs[c], fa.offs[c+1]; p < end; p += fa.co {
		rho := int32(math.MaxInt32)
		for q := p; q < p+fa.co; q++ {
			var v int32
			if par {
				v = atomic.LoadInt32(&tau[mem[q]])
			} else {
				v = tau[mem[q]]
			}
			if v < rho {
				rho = v
			}
		}
		visits++
		if preserve && rho >= cur {
			support++
			if support >= cur {
				// cur s-cliques with ρ >= cur certify the index is kept;
				// stop without scanning the rest of the row.
				sc.vals = vals
				return cur, visits
			}
		}
		vals = append(vals, rho) //nucleus:lint-ignore noalloc appends into per-worker scratch retained across cells; grows to the longest row once, then amortized zero
	}
	sc.vals = vals
	return hindex.LinearInto(vals, &sc.cnt), visits
}

// notifyNeighborsFlat wakes every co-member cell of c's s-cliques by
// scanning the flat row directly (the fused counterpart of the
// VisitNeighbors closure in And's notification mechanism).
//
//nucleus:noalloc
func notifyNeighborsFlat(fa flatArrays, c int32, active []int32) {
	for _, d := range fa.mem[fa.offs[c]:fa.offs[c+1]] {
		atomic.StoreInt32(&active[d], 1)
	}
}
