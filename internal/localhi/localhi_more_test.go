package localhi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nucleus/internal/graph"
	"nucleus/internal/nucleus"
	"nucleus/internal/peel"
)

// TestTrussToyFirstSweep checks the running truss example of §4: edge ab
// of the TrussToy graph sits in four triangles and its first h-index
// update follows Definition 6 exactly.
func TestTrussToyFirstSweep(t *testing.T) {
	g := graph.TrussToy()
	inst := nucleus.NewTruss(g)
	deg := inst.Degrees()
	ab, ok := g.EdgeID(0, 1)
	if !ok {
		t.Fatal("edge ab missing")
	}
	if deg[ab] != 4 {
		t.Fatalf("d3(ab) = %d, want 4 (triangles abc, abd, abe, abi)", deg[ab])
	}
	// Manual Definition 6 for ab against τ0 = triangle counts.
	var want []int32
	inst.VisitSCliques(int32(ab), func(others []int32) bool {
		rho := deg[others[0]]
		if deg[others[1]] < rho {
			rho = deg[others[1]]
		}
		want = append(want, rho)
		return true
	})
	if len(want) != 4 {
		t.Fatalf("ab has %d s-cliques", len(want))
	}
	var got int32 = -1
	Snd(inst, Options{MaxSweeps: 1, OnSweep: func(_ int, tau []int32) {
		got = tau[ab]
	}})
	// H of the manual ρ list must equal the sweep's result.
	h := int32(0)
	for k := int32(len(want)); k >= 1; k-- {
		cnt := int32(0)
		for _, v := range want {
			if v >= k {
				cnt++
			}
		}
		if cnt >= k {
			h = k
			break
		}
	}
	if got != h {
		t.Fatalf("τ1(ab) = %d, manual H = %d", got, h)
	}
}

// TestSweepUpdatesDecay: the per-sweep update counts are recorded, sum to
// Updates, and the final entry is zero (the convergence-detecting sweep).
func TestSweepUpdatesDecay(t *testing.T) {
	g := graph.PowerLawCluster(400, 5, 0.5, 87)
	inst := nucleus.NewCore(g)
	res := Snd(inst, Options{})
	if len(res.SweepUpdates) != res.Sweeps {
		t.Fatalf("sweep updates %d entries, %d sweeps", len(res.SweepUpdates), res.Sweeps)
	}
	var total int64
	for _, u := range res.SweepUpdates {
		total += u
	}
	if total != res.Updates {
		t.Fatalf("sweep updates sum %d, total %d", total, res.Updates)
	}
	if res.SweepUpdates[len(res.SweepUpdates)-1] != 0 {
		t.Fatal("final sweep should have no updates")
	}
	if res.UpdateRate(1, inst.NumCells()) <= 0 {
		t.Fatal("first sweep rate should be positive")
	}
	if res.UpdateRate(res.Sweeps, inst.NumCells()) != 0 {
		t.Fatal("final sweep rate should be zero")
	}
	if res.UpdateRate(0, 10) != 0 || res.UpdateRate(999, 10) != 0 || res.UpdateRate(1, 0) != 0 {
		t.Fatal("out-of-range rates should be zero")
	}
}

// TestUpdateRateTracksAccuracy: the ground-truth-free update rate and the
// true exact-fraction improve together — the trade-off signal of §1.2.
func TestUpdateRateTracksAccuracy(t *testing.T) {
	g := graph.PowerLawCluster(600, 5, 0.5, 89)
	inst := nucleus.NewCore(g)
	kappa := peel.Run(inst).Kappa
	var exactAt []float64
	res := Snd(inst, Options{OnSweep: func(_ int, tau []int32) {
		match := 0
		for i := range tau {
			if tau[i] == kappa[i] {
				match++
			}
		}
		exactAt = append(exactAt, float64(match)/float64(len(tau)))
	}})
	// By the time the update rate first drops below 1%, accuracy must
	// already be high (>90% exact).
	for s := 1; s <= res.Sweeps; s++ {
		if res.UpdateRate(s, inst.NumCells()) < 0.01 {
			if exactAt[s-1] < 0.9 {
				t.Fatalf("low update rate at sweep %d but only %.2f exact", s, exactAt[s-1])
			}
			break
		}
	}
}

// TestStaticSchedulingMatches: static chunking computes the same fixpoint.
func TestStaticSchedulingMatches(t *testing.T) {
	g := graph.PowerLawCluster(300, 5, 0.5, 91)
	inst := nucleus.NewTruss(g)
	want := peel.Run(inst).Kappa
	for _, chunk := range []int{1, 7, 1024} {
		res := And(inst, Options{Threads: 3, Scheduling: Static, ChunkSize: chunk, Notification: true})
		if !equalInt32(res.Tau, want) {
			t.Fatalf("static chunk=%d wrong", chunk)
		}
	}
}

// TestThreadsExceedCells: more workers than cells must not break.
func TestThreadsExceedCells(t *testing.T) {
	g := graph.Complete(4)
	inst := nucleus.NewCore(g)
	res := Snd(inst, Options{Threads: 64})
	for _, k := range res.Tau {
		if k != 3 {
			t.Fatalf("K4 τ = %v", res.Tau)
		}
	}
}

// TestSubsetWithOrder: Subset takes precedence over Order.
func TestSubsetWithOrder(t *testing.T) {
	g := graph.Complete(6)
	inst := nucleus.NewCore(g)
	res := And(inst, Options{Subset: []int32{0, 1}, Order: []int32{5, 4, 3, 2, 1, 0}})
	// Only cells 0 and 1 recomputed; all cells of K6 stay at 5 anyway.
	for _, k := range res.Tau {
		if k != 5 {
			t.Fatalf("τ = %v", res.Tau)
		}
	}
}

// TestWarmStartBelowDegreesClamped: InitialTau above the s-degree is
// clamped down (H cannot exceed the s-clique count).
func TestWarmStartClamp(t *testing.T) {
	g := graph.Figure2()
	inst := nucleus.NewCore(g)
	huge := []int32{100, 100, 100, 100, 100, 100}
	res := And(inst, Options{InitialTau: huge})
	want := []int32{1, 2, 2, 2, 1, 1}
	if !equalInt32(res.Tau, want) {
		t.Fatalf("τ = %v, want %v", res.Tau, want)
	}
}

// TestMonotoneUnderEdgeAddition: adding edges never lowers κ (the
// supergraph monotonicity the warm-start maintenance relies on).
func TestMonotoneUnderEdgeAddition(t *testing.T) {
	err := quick.Check(func(seed int64, mRaw uint8) bool {
		n := 20
		m := int(mRaw%60) + 5
		g := graph.GnM(n, m, seed)
		kappa := peel.Run(nucleus.NewCore(g)).Kappa
		// Add 3 fresh edges.
		rng := rand.New(rand.NewSource(seed + 7))
		edges := g.Edges()
		for len(edges) < m+3 {
			u := uint32(rng.Intn(n))
			v := uint32(rng.Intn(n))
			if u != v && !g.HasEdge(u, v) {
				edges = append(edges, [2]uint32{u, v})
			}
		}
		g2 := graph.Build(n, edges)
		kappa2 := peel.Run(nucleus.NewCore(g2)).Kappa
		for i := range kappa {
			if kappa2[i] < kappa[i] {
				return false
			}
			if kappa2[i] > kappa[i]+3 {
				return false // ≤1 per inserted edge
			}
		}
		return true
	}, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(34))})
	if err != nil {
		t.Fatal(err)
	}
}
