package promtext

import (
	"strings"
	"testing"
)

func TestWriterFormat(t *testing.T) {
	var w Writer
	w.Counter("app_requests_total", "Requests served.", 42)
	w.Gauge("app_queue_depth", "Jobs queued.", 3)
	w.LabeledCounter("app_tenant_jobs_total", "Per-tenant jobs.",
		map[string]string{"tenant": "alpha"}, 7)
	w.LabeledCounter("app_tenant_jobs_total", "Per-tenant jobs.",
		map[string]string{"tenant": "beta"}, 9)

	got := string(w.Bytes())
	want := strings.Join([]string{
		"# HELP app_requests_total Requests served.",
		"# TYPE app_requests_total counter",
		"app_requests_total 42",
		"# HELP app_queue_depth Jobs queued.",
		"# TYPE app_queue_depth gauge",
		"app_queue_depth 3",
		"# HELP app_tenant_jobs_total Per-tenant jobs.",
		"# TYPE app_tenant_jobs_total counter",
		`app_tenant_jobs_total{tenant="alpha"} 7`,
		`app_tenant_jobs_total{tenant="beta"} 9`,
		"",
	}, "\n")
	if got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriterSortsLabels(t *testing.T) {
	var w Writer
	w.LabeledGauge("m", "h", map[string]string{"b": "2", "a": "1"}, 1)
	got := string(w.Bytes())
	if !strings.Contains(got, `m{a="1",b="2"} 1`) {
		t.Errorf("labels not sorted: %q", got)
	}
}

func TestWriterEscapesLabelValues(t *testing.T) {
	var w Writer
	w.LabeledGauge("m", "h", map[string]string{"p": "a\\b\"c\nd"}, 1)
	got := string(w.Bytes())
	if !strings.Contains(got, `m{p="a\\b\"c\nd"} 1`) {
		t.Errorf("label value not escaped: %q", got)
	}
}
